package sdrad

import (
	"context"

	"repro/internal/core"
	"repro/internal/detect"
)

// This file implements batched domain execution: many calls amortize one
// domain Enter/Exit, one exit-time heap-integrity sweep, and one
// discard decision, instead of paying the full toll per call. It is the
// execution engine under Domain.DoBatch, Pool.DoBatch, AsyncPool, the
// batched network servers, and the campaign engine's batched backend.
//
// # The replay rule
//
// A batch is executed optimistically: one Enter runs the calls back to
// back, and if every call returns nil and the exit sweep passes, all of
// them commit with the amortized cost. Any deviation falls back to
// serial execution, which is the ground truth:
//
//   - An application error from call i exits the batch early. The sweep
//     still runs; if it passes, calls 0..i-1 commit (the heap is proven
//     corruption-free, so their clean results are the serial results).
//     On pool backends — pristine domain per call — calls i.. are
//     replayed individually, because the error might have been
//     batch-induced (e.g. heap pressure) and call i's first effects are
//     discarded anyway. On persistent (Domain) backends call i already
//     ran once against exactly its serial heap state, so its error
//     commits as-is (replaying would double-apply its in-domain
//     effects) and only the skipped calls i+1.. replay.
//
//   - A detection — violation, in-batch trap, exit-sweep failure, or
//     budget preemption — rewinds and discards the domain, and the
//     ENTIRE batch is replayed individually. Attribution inside an
//     aborted batch is unreliable (a call can smash a canary and return
//     cleanly, with the evidence surfacing only at the shared sweep), so
//     nothing from the aborted attempt is kept; every call's outcome,
//     including retries and fallbacks from its own policy options, comes
//     from its serial replay.
//
// Together with the allocator's reuse-time validation of freed chunks
// (internal/alloc, the tcache-key check) this makes a clean batch commit
// trustworthy: corruption cannot be overwritten unnoticed before the
// shared sweep, so "sweep passed" means "no detector would have fired
// serially either". DESIGN.md §9 develops the full argument.
//
// # Contract for batched calls
//
// Calls in one batch share one domain entry, so call i+1 observes the
// heap state call i left behind (allocations, addresses); calls must not
// depend on starting from a pristine heap beyond what the Runner
// determinism contract already demands. A call that participates in an
// aborted batch is re-executed — the same at-least-once contract that
// WithRetries imposes — so host-side effects of batched calls must
// tolerate re-execution.

// batchCall is one call of a batch: the submitter's context, function,
// resolved per-call policy, and (after execution) its outcome.
type batchCall struct {
	ctx context.Context
	fn  func(*Ctx) error
	set runSettings
	err error
}

// batchBackend binds the batch engine to one warm domain on one
// simulated machine. The caller must hold whatever lock confines that
// machine for the whole batch (including replays).
type batchBackend struct {
	// sys and udi identify the domain, for rewind attribution.
	sys *core.System
	udi core.UDI
	// hz converts context deadlines to cycle budgets.
	hz uint64
	// persistent marks Domain-style backends whose heap survives clean
	// exits; pool-style backends discard after a committed batch, the
	// one discard decision the batch amortizes.
	persistent bool
	// enter runs fn inside the domain with a cycle budget (0 = none).
	enter func(budget uint64, fn func(*Ctx) error) error
	// discard scrubs the domain back to pristine (pool backends).
	discard func() error
	// serial executes one call through the backend's full serial path —
	// per-call budget, retries, fallback — on the same worker.
	serial func(c *batchCall) error
}

// batchReport describes how a batch resolved, for metrics.
type batchReport struct {
	// Committed reports that the optimistic pass stood: every call
	// resolved from the single shared entry.
	Committed bool
	// Replayed is the number of calls that fell back to serial
	// execution.
	Replayed int
}

// BatchReport is the public view of one batch resolution, delivered to
// Domain.OnBatch observers. It is the commit hook durability layers key
// on: a Committed report means the batch's clean results stand exactly
// as the shared entry produced them (the exit sweep passed), while a
// non-committed report means a detection or application error degraded
// part or all of the batch to serial replay — for a write-ahead log,
// the moment to decide which acknowledged effects are part of the
// committed history.
type BatchReport struct {
	// Size is the number of calls submitted in the batch.
	Size int
	// Committed reports a fully clean optimistic pass.
	Committed bool
	// Replayed is the number of calls that re-derived their outcome
	// through the serial path.
	Replayed int
}

// minBudget returns the tightest per-call cycle budget across the batch
// (0 = no call carries one). The batch budget under-approximates: it
// starts at batch entry rather than at the budgeted call's own start, so
// it can only preempt earlier than serial execution would — and a
// preempted batch is replayed serially, where each call gets its exact
// own budget. Safety, not attribution, is the point.
func minBudget(calls []*batchCall, hz uint64) uint64 {
	var budget uint64
	for _, c := range calls {
		if b := c.set.budgetFor(c.ctx, hz); b > 0 && (budget == 0 || b < budget) {
			budget = b
		}
	}
	return budget
}

// run executes calls as one batch under the replay rule above, filling
// each call's err.
func (b *batchBackend) run(calls []*batchCall) batchReport {
	// Calls whose context is already done never enter a domain, exactly
	// like the serial path's pre-attempt check.
	live := calls[:0:0]
	for _, c := range calls {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return batchReport{Committed: true}
	}
	if len(live) == 1 {
		// No amortization possible; take the serial path directly.
		live[0].err = b.serial(live[0])
		return batchReport{Replayed: 1}
	}

	appIdx := -1
	var appErr error
	enterErr := b.enter(minBudget(live, b.hz), func(c *Ctx) error {
		for i, call := range live {
			if err := call.fn(c); err != nil {
				appIdx = i
				if detect.IsViolation(err) {
					// A substrate fault propagated as a return value: hand
					// it to Enter, which classifies and rewinds exactly as
					// the serial path would (runGuarded's conversion).
					return err
				}
				appErr = err
				return nil // exit the batch early; the sweep still runs
			}
		}
		return nil
	})

	if enterErr != nil {
		// A detection aborted the batch (or the enter itself was
		// refused, e.g. quarantine). The domain — if it was entered — has
		// been rewound and discarded; nothing from the attempt is
		// trustworthy, so every call re-derives its outcome serially.
		for _, c := range live {
			c.err = b.serial(c)
		}
		return batchReport{Replayed: len(live)}
	}

	// Clean exit: the sweep passed, so the heap is corruption-free and
	// the clean prefix commits.
	n := len(live)
	if appIdx >= 0 {
		n = appIdx
	}
	for _, c := range live[:n] {
		c.err = nil
	}
	if b.persistent {
		// Persistent (Domain) semantics: the erroring call already ran
		// exactly once against exactly the heap state serial execution
		// would have given it, so its own error IS its result — replaying
		// it would double-apply its in-domain effects. Only the calls the
		// early exit skipped re-derive serially.
		if appIdx < 0 {
			return batchReport{Committed: true}
		}
		live[appIdx].err = appErr
		for _, c := range live[appIdx+1:] {
			c.err = b.serial(c)
		}
		return batchReport{Committed: false, Replayed: len(live) - appIdx - 1}
	}
	// The batch's single discard decision: scrub once for the whole
	// entry (pool semantics scrub after every serial call). A discard
	// failure is an infrastructure error: the committed prefix genuinely
	// ran, so the failure lands on the calls that still have no result —
	// or on the last call when everything committed.
	if derr := b.discard(); derr != nil {
		if n == len(live) {
			live[n-1].err = derr
		}
		for _, c := range live[n:] {
			c.err = derr
		}
		return batchReport{Replayed: 0}
	}
	if appIdx < 0 {
		return batchReport{Committed: true}
	}
	// Pool semantics give every call a pristine domain, so the erroring
	// call re-derives serially too (its error might be batch-induced).
	for _, c := range live[appIdx:] {
		c.err = b.serial(c)
	}
	return batchReport{Committed: false, Replayed: len(live) - appIdx}
}
