package sdrad

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/lifecycle"
	"repro/internal/mem"
	"repro/internal/vclock"
)

// Addr is an address in the simulated address space.
type Addr = mem.Addr

// Ctx is the view of the system that code running inside a domain
// receives: domain-heap allocation, checked loads and stores, canaried
// stack frames, and nested domain entry.
type Ctx = core.DomainCtx

// ViolationError reports that a domain suffered a memory-safety
// violation and was rewound and discarded.
type ViolationError = core.ViolationError

// IsViolation reports whether err is (or wraps) a *ViolationError.
func IsViolation(err error) (*ViolationError, bool) { return core.IsViolation(err) }

// CostModel re-exports the virtual cost model for configuration.
type CostModel = vclock.CostModel

// DefaultCostModel returns the calibrated default cost model.
func DefaultCostModel() CostModel { return vclock.DefaultCostModel() }

// Option configures a Supervisor.
type Option func(*core.Config)

// WithCostModel overrides the virtual machine's cost model.
func WithCostModel(m CostModel) Option {
	return func(c *core.Config) { c.Cost = m }
}

// WithIntegrityCheckOnExit controls the heap canary sweep on clean domain
// exit (default on).
func WithIntegrityCheckOnExit(on bool) Option {
	return func(c *core.Config) { c.IntegrityCheckOnExit = on }
}

// WithZeroOnDiscard controls scrubbing of domain pages during rewind
// (default on; disabling is faster but leaves stale bytes in discarded
// pages).
func WithZeroOnDiscard(on bool) Option {
	return func(c *core.Config) { c.ZeroOnDiscard = on }
}

// Supervisor owns one simulated machine and its domains. It corresponds
// to the per-process SDRaD runtime state in the C library. Create with
// New.
//
// A Supervisor and its Domains are not safe for concurrent use: the
// simulated machine is single-core, so confine each Supervisor to one
// goroutine at a time. For parallel domain execution across goroutines,
// use Pool, which owns one Supervisor per worker.
type Supervisor struct {
	sys *core.System
}

// New creates a Supervisor with the given options.
func New(opts ...Option) *Supervisor {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &Supervisor{sys: core.NewSystem(cfg)}
}

// Attach wraps an existing core system in a Supervisor, so integrations
// layered directly on internal/core (the in-repo network servers and
// experiment harness) can expose their domains through the public
// Runner API. It is the inverse of (*Supervisor).System.
func Attach(sys *core.System) *Supervisor { return &Supervisor{sys: sys} }

// DomainAt returns a handle to the already-initialized domain at udi —
// the companion to Attach for domains created via core.System.InitDomain.
func (s *Supervisor) DomainAt(udi int) (*Domain, error) {
	if _, err := s.sys.Domain(core.UDI(udi)); err != nil {
		return nil, err
	}
	return &Domain{sup: s, udi: core.UDI(udi), lc: servingMachine("sdrad.Domain")}, nil
}

// servingMachine builds a lifecycle machine pre-advanced to Healthy,
// for the eager constructors whose resources are allocated inline
// (NewDomain, DomainAt): the handle they return is already serving.
func servingMachine(name string) *lifecycle.Machine {
	m := lifecycle.NewMachine(name)
	// Both transitions are infallible with nil work functions.
	_ = m.Init(nil)  //lint:errclass fresh machine; Init from StateInitializing cannot fail
	_ = m.Start(nil) //lint:errclass inited machine; Start cannot fail
	return m
}

// DomainOption configures a domain.
type DomainOption func(*core.DomainConfig)

// WithHeapPages sets the domain's initial heap size in 4 KiB pages.
func WithHeapPages(n int) DomainOption {
	return func(c *core.DomainConfig) { c.HeapPages = n }
}

// WithMaxHeapPages bounds domain heap growth.
func WithMaxHeapPages(n int) DomainOption {
	return func(c *core.DomainConfig) { c.MaxHeapPages = n }
}

// WithStackPages sets the domain stack size in pages (a guard page is
// added automatically).
func WithStackPages(n int) DomainOption {
	return func(c *core.DomainConfig) { c.StackPages = n }
}

// NewDomain initializes a fresh isolated domain. Up to 14 domains can be
// live at once: the architecture provides 16 protection keys, one of
// which is the default key and one of which the supervisor reserves for
// root-protected pages (adopted heaps).
func (s *Supervisor) NewDomain(opts ...DomainOption) (*Domain, error) {
	d := s.DeferDomain(opts...)
	if err := d.Init(); err != nil {
		return nil, err
	}
	if err := d.Start(); err != nil {
		return nil, err
	}
	return d, nil
}

// DeferDomain constructs a domain handle without allocating the domain:
// the lifecycle-managed form (DESIGN.md §13). Call Init to allocate the
// domain's pages and protection key and Start to begin serving; until
// then the handle is in StateInitializing.
func (s *Supervisor) DeferDomain(opts ...DomainOption) *Domain {
	var cfg core.DomainConfig
	for _, o := range opts {
		o(&cfg)
	}
	return &Domain{sup: s, cfg: cfg, lc: lifecycle.NewMachine("sdrad.Domain")}
}

// VirtualTime returns the elapsed virtual time on the simulated machine.
func (s *Supervisor) VirtualTime() time.Duration { return s.sys.Clock().Now() }

// VirtualCycles returns the elapsed virtual time in cycles — the exact
// integer the campaign engine's parity oracles compare (durations round
// through the cost model's frequency; cycles do not).
func (s *Supervisor) VirtualCycles() uint64 { return s.sys.Clock().Cycles() }

// DetectionCounts returns, per detection mechanism name, how many
// memory-safety events the supervisor has contained.
func (s *Supervisor) DetectionCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for m := detect.MechDomainViolation; m <= detect.MechSegfault; m++ {
		if n := s.sys.Counters().Count(m); n > 0 {
			out[m.String()] = n
		}
	}
	return out
}

// System exposes the underlying core system. It is intended for the
// in-repo experiment harness and advanced integrations; the methods of
// Supervisor and Domain cover normal use.
func (s *Supervisor) System() *core.System { return s.sys }

// DomainStats reports one domain's lifecycle counters.
type DomainStats struct {
	// Entries counts Run invocations.
	Entries uint64
	// CleanExits counts Runs that returned without a violation.
	CleanExits uint64
	// Violations counts contained memory-safety events.
	Violations uint64
	// Rewinds counts rewind-and-discard recoveries (violations plus
	// budget preemptions).
	Rewinds uint64
	// Preemptions counts runs cancelled by an exhausted cycle budget.
	Preemptions uint64
	// RewindTime is the total virtual time spent recovering.
	RewindTime time.Duration
}

// Domain is an isolated, rewindable domain.
type Domain struct {
	sup *Supervisor
	udi core.UDI
	// cfg is the deferred-construction configuration DeferDomain stored
	// for Init to apply.
	cfg core.DomainConfig
	lc  *lifecycle.Machine
	// onBatch, when set, observes every DoBatch/DoBatchItems resolution
	// on this handle — the batch commit hook (see BatchReport).
	onBatch func(BatchReport)
}

// Init allocates the domain's pages and protection key (lifecycle:
// legal once, from StateInitializing). NewDomain calls it for you; it
// exists for handles built with DeferDomain.
func (d *Domain) Init() error {
	return d.lc.Init(func() error {
		dom, err := d.sup.sys.CreateDomain(d.cfg)
		if err != nil {
			return err
		}
		d.udi = dom.UDI()
		return nil
	})
}

// Start moves the domain to StateHealthy (lifecycle: legal once, after
// Init).
func (d *Domain) Start() error { return d.lc.Start(nil) }

// State returns the domain's lifecycle state.
func (d *Domain) State() lifecycle.State { return d.lc.State() }

// Drain marks the domain as no longer admitting work. A domain has a
// single owner and no queue, so the transition is the whole drain: the
// owner stops submitting, and the state change makes that observable to
// health aggregators. Idempotent; legal after Start.
func (d *Domain) Drain() error { return d.lc.Drain(nil) }

// Stop tears the domain down (lifecycle: legal once; Close is the
// idempotent form).
func (d *Domain) Stop(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return d.lc.Stop(d.teardown)
}

// UDI returns the domain's index (its handle in the C API).
func (d *Domain) UDI() int { return int(d.udi) }

// OnBatch registers fn to observe every batch resolution on this domain
// handle. The report fires after the batch's errors are final, on the
// submitting goroutine. Durability layers use it to align group commits
// with batch boundaries; pass nil to remove the observer.
func (d *Domain) OnBatch(fn func(BatchReport)) { d.onBatch = fn }

// Run executes fn inside the domain.
//
// If fn triggers a memory-safety violation (or panics), the domain is
// rewound and discarded and Run returns a *ViolationError. Errors
// returned by fn pass through unchanged, and the domain's memory persists
// across Runs until a violation or Close. It is Do with a background
// context and no options.
func (d *Domain) Run(fn func(*Ctx) error) error {
	return d.Do(context.Background(), fn)
}

// RunWithFallback executes fn inside the domain; on a violation, the
// domain is rewound and fallback runs with the violation (the paper's
// "alternate action"). It is Do with WithFallback.
func (d *Domain) RunWithFallback(fn func(*Ctx) error, fallback func(*ViolationError) error) error {
	return d.Do(context.Background(), fn, WithFallback(fallback))
}

// Write copies data into the domain's memory at addr with supervisor
// rights — how the trusted side passes inputs in.
func (d *Domain) Write(addr Addr, data []byte) error {
	return d.sup.sys.CopyToDomain(addr, data)
}

// Read copies n bytes at addr out of the domain with supervisor rights —
// how the trusted side extracts results after a clean Run.
func (d *Domain) Read(addr Addr, n int) ([]byte, error) {
	return d.sup.sys.CopyFromDomain(addr, n)
}

// Alloc allocates n bytes in the domain's heap from the trusted side
// (sdrad_malloc with a UDI argument in the C API).
func (d *Domain) Alloc(n int) (Addr, error) {
	dom, err := d.sup.sys.Domain(d.udi)
	if err != nil {
		return 0, err
	}
	return dom.Heap().Alloc(n)
}

// Free releases a domain-heap allocation from the trusted side.
func (d *Domain) Free(addr Addr) error {
	dom, err := d.sup.sys.Domain(d.udi)
	if err != nil {
		return err
	}
	return dom.Heap().Free(addr)
}

// Stats returns the domain's lifecycle counters.
func (d *Domain) Stats() (DomainStats, error) {
	dom, err := d.sup.sys.Domain(d.udi)
	if err != nil {
		return DomainStats{}, err
	}
	st := dom.Stats()
	hz := d.sup.sys.Clock().Model().CPUHz
	return DomainStats{
		Entries:     st.Entries,
		CleanExits:  st.CleanExits,
		Violations:  st.Violations,
		Rewinds:     st.Rewinds,
		Preemptions: st.Preemptions,
		RewindTime:  vclock.CyclesToDuration(st.RewindCycles(), hz),
	}, nil
}

// Discard resets the domain's memory to a pristine state in place: the
// heap is reset (and scrubbed unless WithZeroOnDiscard(false)), while the
// domain's protection key, page mappings, and stack survive. It is the
// explicit half of rewind-and-discard — what a violation does implicitly
// — and is how a warm domain is recycled between requests without paying
// Close+NewDomain.
func (d *Domain) Discard() error {
	return d.sup.sys.DiscardDomain(d.udi)
}

// Close tears the domain down, releasing its pages and protection key.
// Idempotent: later calls return the first outcome.
func (d *Domain) Close() error { return d.lc.Close(d.teardown) }

func (d *Domain) teardown() error {
	if err := d.sup.sys.DeinitDomain(d.udi); err != nil {
		return fmt.Errorf("sdrad: close domain %d: %w", d.udi, err)
	}
	return nil
}

// MemoryStats reports the supervisor's simulated-memory footprint and
// traffic, for operational introspection.
type MemoryStats struct {
	// MappedPages is the number of 4 KiB pages currently mapped across
	// all domains (heaps, stacks, guard pages).
	MappedPages int
	// Loads and Stores count access operations since creation.
	Loads, Stores uint64
	// BytesRead and BytesWritten count payload bytes moved.
	BytesRead, BytesWritten uint64
	// Faults counts denied accesses (all kinds).
	Faults uint64
	// DirtyPages is the number of mapped pages written since they were
	// last known all-zero — the bound on the host-side cost of the next
	// discard scrub.
	DirtyPages int
	// TLBHits and TLBMisses count software-TLB outcomes on the machine's
	// access path (host-side instrumentation of the translation fast
	// path; no virtual cost).
	TLBHits, TLBMisses uint64
	// Domains is the number of live domains.
	Domains int
}

// Interface compliance check.
var _ lifecycle.Component = (*Domain)(nil)

// MemoryStats returns a snapshot of the machine's memory accounting.
func (s *Supervisor) MemoryStats() MemoryStats {
	ms := s.sys.Mem().Stats()
	return MemoryStats{
		MappedPages:  s.sys.Mem().MappedPages(),
		Loads:        ms.Loads,
		Stores:       ms.Stores,
		BytesRead:    ms.BytesRead,
		BytesWritten: ms.BytesWritten,
		Faults:       ms.Faults,
		DirtyPages:   s.sys.Mem().DirtyPages(),
		TLBHits:      ms.TLBHits,
		TLBMisses:    ms.TLBMisses,
		Domains:      s.sys.Domains(),
	}
}
