package sdrad_test

import (
	"bytes"
	"runtime"
	"testing"

	sdrad "repro"
	"repro/internal/campaign"
	"repro/internal/campaign/scenarios"
)

// quickCampaign is the shipped scenario table at a CI-friendly request
// count.
func quickCampaign(seed uint64) campaign.Config {
	return campaign.Config{Seed: seed, Workers: 4, Requests: 120, Scenarios: scenarios.All()}
}

// TestRunCampaignSameSeedBitIdentical is the acceptance contract: two
// runs with the same seed against the real Domain/Pool/Bridge backends
// produce byte-identical JSON traces.
func TestRunCampaignSameSeedBitIdentical(t *testing.T) {
	t1, err := sdrad.RunCampaign(quickCampaign(42))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sdrad.RunCampaign(quickCampaign(42))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := t1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := t2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("same seed produced different traces on the real backends")
	}
}

// TestCampaignOracles runs the full differential-oracle suite — same
// seed, worker counts 1/4/8, benign zero-detection + cycle parity — on
// every shipped scenario against the real backends.
func TestCampaignOracles(t *testing.T) {
	if testing.Short() {
		t.Skip("full oracle suite re-runs every scenario five times")
	}
	cfg := quickCampaign(42)
	cfg.Requests = 80
	results, err := sdrad.CheckCampaignOracles(cfg, 1, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no oracle results")
	}
	for _, r := range campaign.Failures(results) {
		t.Errorf("%s", r)
	}
}

// TestCampaignDeterminismAcrossGOMAXPROCS is the determinism regression
// test from the campaign issue: the same seed must produce identical
// traces whether the Go runtime schedules on one CPU or eight. Under
// `make race` this also proves the engine is race-clean at both
// settings.
func TestCampaignDeterminismAcrossGOMAXPROCS(t *testing.T) {
	cfg := quickCampaign(1234)
	cfg.Requests = 60

	run := func(procs int) []byte {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		tr, err := sdrad.RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		j, err := tr.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	at1 := run(1)
	at8 := run(8)
	again1 := run(1)
	if !bytes.Equal(at1, at8) {
		t.Error("GOMAXPROCS=1 and GOMAXPROCS=8 traces differ")
	}
	if !bytes.Equal(at1, again1) {
		t.Error("repeated GOMAXPROCS=1 runs differ")
	}
}

// TestCampaignContainmentSurvivesEveryScenario asserts the supervisor-
// level claim behind the whole campaign: after every shipped scenario —
// hundreds of injected UAFs, overflows, smashes, crashes, runaway
// requests, and malformed payloads — the executors kept serving and the
// attacked scenarios actually recorded detections.
func TestCampaignContainmentSurvivesEveryScenario(t *testing.T) {
	tr, err := sdrad.RunCampaign(quickCampaign(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Scenarios) != len(scenarios.All()) {
		t.Fatalf("trace has %d scenarios, want %d", len(tr.Scenarios), len(scenarios.All()))
	}
	for _, sc := range scenarios.All() {
		st := tr.Scenario(sc.Name)
		if st == nil {
			t.Errorf("scenario %q missing from trace", sc.Name)
			continue
		}
		if st.OK == 0 {
			t.Errorf("%s: no request survived", sc.Name)
		}
		if sc.Benign() {
			if st.DetectionTotal != 0 || st.Preemptions != 0 || st.Rewinds != 0 {
				t.Errorf("%s: benign scenario recorded det=%d pre=%d rew=%d",
					sc.Name, st.DetectionTotal, st.Preemptions, st.Rewinds)
			}
			continue
		}
		// Attacked scenarios: something must have been injected, and
		// every memory-safety injection must show up as a detection.
		var detected, preempted, injected uint64
		for _, out := range st.Outcomes {
			if out.Fault != "" {
				injected++
			}
			switch out.Outcome {
			case campaign.OutcomeDetected:
				detected++
			case campaign.OutcomePreempted:
				preempted++
			}
		}
		if injected == 0 {
			t.Errorf("%s: schedule injected nothing across %d requests", sc.Name, st.Requests)
		}
		if detected != st.DetectionTotal {
			t.Errorf("%s: outcome stream shows %d detections, executor counted %d",
				sc.Name, detected, st.DetectionTotal)
		}
		if st.Rewinds != detected+preempted {
			t.Errorf("%s: rewinds %d != detections %d + preemptions %d",
				sc.Name, st.Rewinds, detected, preempted)
		}
	}
}

// TestCampaignBatchedOracle is the acceptance check for the batched
// execution layer: driving every shipped scenario through the batched
// pipeline at batch sizes 1, 8, and 32 must reproduce the serial
// campaign's per-request outcomes and survivor digests exactly
// (pool-target scenarios exercise real coalesced batches; domain and
// bridge targets fall back to serial inside the batched pipeline, which
// must be equally invisible).
func TestCampaignBatchedOracle(t *testing.T) {
	cfg := quickCampaign(42)
	cfg.Requests = 100
	base, err := sdrad.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := campaign.CheckBatchedAgainst(base, cfg, sdrad.CampaignFactory(), 1, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3*len(cfg.Scenarios) {
		t.Fatalf("got %d oracle rows, want %d", len(results), 3*len(cfg.Scenarios))
	}
	for _, r := range campaign.Failures(results) {
		t.Errorf("%s", r)
	}
}

// TestCampaignBatchedAmortizesCycles pins the point of batching on the
// simulated machine: a benign pool scenario spends measurably fewer
// virtual cycles per request at batch 32 than serially, because the
// Enter/Exit toll is shared.
func TestCampaignBatchedAmortizesCycles(t *testing.T) {
	cfg := campaign.Config{Seed: 7, Workers: 2, Requests: 200,
		Scenarios: []campaign.Scenario{{
			Name:     "kv-pool-benign",
			Workload: campaign.WorkloadKV,
			Target:   campaign.TargetPool,
		}}}
	serial, err := sdrad.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := sdrad.RunCampaignBatched(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	sc, bc := serial.Scenarios[0].VirtualCycles, batched.Scenarios[0].VirtualCycles
	if bc >= sc {
		t.Errorf("batched campaign spent %d cycles vs %d serial — no amortization", bc, sc)
	}
}
