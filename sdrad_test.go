package sdrad

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/lifecycle"
)

func TestQuickstartFlow(t *testing.T) {
	sup := New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := dom.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	var got []byte
	err = dom.Run(func(c *Ctx) error {
		p := c.MustAlloc(32)
		c.MustStore(p, []byte("hello sdrad"))
		got = make([]byte, 11)
		c.MustLoad(p, got)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(got) != "hello sdrad" {
		t.Errorf("got %q", got)
	}
	st, err := dom.Stats()
	if err != nil || st.Entries != 1 || st.CleanExits != 1 {
		t.Errorf("stats = %+v, %v", st, err)
	}
}

func TestViolationRewindsAndReports(t *testing.T) {
	sup := New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	err = dom.Run(func(c *Ctx) error {
		c.MustStore64(0xdead0000, 1) // wild write
		return nil
	})
	v, ok := IsViolation(err)
	if !ok {
		t.Fatalf("err = %v, want violation", err)
	}
	if v.UDI != 1 {
		t.Errorf("UDI = %d", v.UDI)
	}
	st, _ := dom.Stats()
	if st.Violations != 1 || st.Rewinds != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.RewindTime <= 0 || st.RewindTime > time.Millisecond {
		t.Errorf("rewind time = %v, want µs-scale", st.RewindTime)
	}
	counts := sup.DetectionCounts()
	if counts["segfault"] != 1 {
		t.Errorf("detection counts = %v", counts)
	}
}

func TestRunWithFallback(t *testing.T) {
	sup := New()
	dom, _ := sup.NewDomain()
	var fellBack bool
	err := dom.RunWithFallback(
		func(c *Ctx) error {
			c.Violate(errors.New("bad parse"))
			return nil
		},
		func(v *ViolationError) error {
			fellBack = true
			return nil
		},
	)
	if err != nil || !fellBack {
		t.Errorf("fallback: err=%v ran=%v", err, fellBack)
	}
	// Application errors skip the fallback.
	sentinel := errors.New("app")
	err = dom.RunWithFallback(
		func(*Ctx) error { return sentinel },
		func(*ViolationError) error {
			t.Error("fallback ran for app error")
			return nil
		},
	)
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestTrustedSideDataExchange(t *testing.T) {
	sup := New()
	dom, _ := sup.NewDomain()
	addr, err := dom.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := dom.Write(addr, []byte("input")); err != nil {
		t.Fatal(err)
	}
	err = dom.Run(func(c *Ctx) error {
		buf := make([]byte, 5)
		c.MustLoad(addr, buf)
		c.MustStore(addr, []byte("INPUT"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := dom.Read(addr, 5)
	if err != nil || string(out) != "INPUT" {
		t.Errorf("Read = %q, %v", out, err)
	}
	if err := dom.Free(addr); err != nil {
		t.Errorf("Free: %v", err)
	}
}

func TestDomainOptions(t *testing.T) {
	sup := New()
	dom, err := sup.NewDomain(WithHeapPages(4), WithMaxHeapPages(8), WithStackPages(2))
	if err != nil {
		t.Fatal(err)
	}
	// Max heap 8 pages = 32 KiB: a large allocation must fail.
	err = dom.Run(func(c *Ctx) error {
		_, err := c.Alloc(1 << 20)
		if err == nil {
			return errors.New("oversized alloc succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSupervisorOptions(t *testing.T) {
	m := DefaultCostModel()
	m.WRPKRU = 1000
	sup := New(WithCostModel(m), WithIntegrityCheckOnExit(false), WithZeroOnDiscard(false))
	dom, _ := sup.NewDomain()
	before := sup.VirtualTime()
	_ = dom.Run(func(*Ctx) error { return nil })
	if sup.VirtualTime() <= before {
		t.Error("virtual time did not advance")
	}
	// Integrity sweep off: an overflow goes unnoticed at exit.
	err := dom.Run(func(c *Ctx) error {
		p := c.MustAlloc(16)
		c.MustStore(p, make([]byte, 32))
		return nil
	})
	if err != nil {
		t.Errorf("sweep-off overflow err = %v", err)
	}
}

func TestFourteenDomainLimit(t *testing.T) {
	// 16 keys - key 0 (default) - the root-protected key = 14 domains.
	sup := New()
	var doms []*Domain
	for i := 0; i < 14; i++ {
		d, err := sup.NewDomain(WithHeapPages(1), WithStackPages(1))
		if err != nil {
			t.Fatalf("domain %d: %v", i, err)
		}
		doms = append(doms, d)
	}
	if _, err := sup.NewDomain(); err == nil {
		t.Error("15th domain accepted")
	}
	// Closing one frees a key for reuse.
	if err := doms[7].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.NewDomain(WithHeapPages(1), WithStackPages(1)); err != nil {
		t.Errorf("domain after close: %v", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	sup := New()
	dom, _ := sup.NewDomain()
	if err := dom.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is memoized: the second call is a no-op returning the first
	// call's result, per the lifecycle contract.
	if err := dom.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if got := dom.State(); got != lifecycle.StateStopped {
		t.Errorf("state after close = %v, want %v", got, lifecycle.StateStopped)
	}
	if err := dom.Run(func(*Ctx) error { return nil }); err == nil {
		t.Error("Run on closed domain accepted")
	}
	// Stop after Close is still an illegal transition (strict Stop).
	if err := dom.Stop(context.Background()); err == nil {
		t.Error("Stop after Close accepted")
	}
}

func TestBridgeEndToEnd(t *testing.T) {
	sup := New()
	b, err := sup.NewBridge(CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := b.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	err = b.Register(Foreign{
		Name: "sum",
		Fn: func(_ *Ctx, args []any) ([]any, error) {
			var s int64
			for _, a := range args {
				s += a.(int64)
			}
			return []any{s}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Call("sum", int64(1), int64(2), int64(3))
	if err != nil || res[0] != int64(6) {
		t.Errorf("Call = %v, %v", res, err)
	}
	if b.Stats().Calls != 1 {
		t.Errorf("stats = %+v", b.Stats())
	}
	if b.Domain() == nil {
		t.Error("nil bridge domain")
	}
}

func TestBridgeUnknownCodec(t *testing.T) {
	sup := New()
	if _, err := sup.NewBridge("msgpack"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestBridgeFallback(t *testing.T) {
	sup := New()
	b, err := sup.NewBridge("")
	if err != nil {
		t.Fatal(err)
	}
	_ = b.Register(Foreign{
		Name: "parse",
		Fn: func(c *Ctx, args []any) ([]any, error) {
			c.MustStore64(0, 1) // null write
			return nil, nil
		},
		Fallback: func(args []any, v *ViolationError) ([]any, error) {
			return []any{"fallback"}, nil
		},
	})
	res, err := b.Call("parse")
	if err != nil || res[0] != "fallback" {
		t.Errorf("Call = %v, %v", res, err)
	}
	if b.Stats().Violations != 1 || b.Stats().Fallbacks != 1 {
		t.Errorf("stats = %+v", b.Stats())
	}
}

func TestNestedDomainsViaCtx(t *testing.T) {
	sup := New()
	outer, _ := sup.NewDomain()
	inner, _ := sup.NewDomain()
	err := outer.Run(func(oc *Ctx) error {
		// Nested entry through the inner domain's UDI.
		nerr := oc.Enter(2, func(ic *Ctx) error {
			ic.MustStore64(0xbad000, 1)
			return nil
		})
		if _, ok := IsViolation(nerr); !ok {
			return errors.New("nested violation not delivered")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ist, _ := inner.Stats()
	ost, _ := outer.Stats()
	if ist.Violations != 1 || ost.Violations != 0 {
		t.Errorf("violations: inner=%d outer=%d", ist.Violations, ost.Violations)
	}
}

func TestMemoryStatsIntrospection(t *testing.T) {
	sup := New()
	before := sup.MemoryStats()
	dom, _ := sup.NewDomain()
	mid := sup.MemoryStats()
	if mid.MappedPages <= before.MappedPages || mid.Domains != 1 {
		t.Errorf("stats after domain: %+v", mid)
	}
	_ = dom.Run(func(c *Ctx) error {
		p := c.MustAlloc(128)
		c.MustStore(p, make([]byte, 128))
		return nil
	})
	_ = dom.Run(func(c *Ctx) error {
		c.MustStore64(0xdead0000, 1)
		return nil
	})
	after := sup.MemoryStats()
	if after.Stores <= mid.Stores || after.BytesWritten < 128 {
		t.Errorf("traffic not counted: %+v", after)
	}
	if after.Faults == 0 {
		t.Error("fault not counted")
	}
	if err := dom.Close(); err != nil {
		t.Fatal(err)
	}
	if final := sup.MemoryStats(); final.MappedPages != before.MappedPages || final.Domains != 0 {
		t.Errorf("pages leaked: %+v", final)
	}
}
