package sdrad

import (
	"repro/internal/campaign"
)

// This file wires the campaign engine's multi-tenant gateway runner
// (internal/campaign gateway scenarios) to the production Runner
// backends, mirroring campaign.go's role for the single-tenant engine.
// cmd/sdrad-campaign's -gateway flag is the CLI around these.

// RunGatewayCampaign executes one multi-tenant gateway scenario against
// the real backends: weighted tenant arrivals admitted through a real
// gateway.Gateway (token buckets, quotas, circuit breaker, drain) in
// front of a campaign executor. Same cfg.Seed ⇒ byte-identical
// GatewayTrace.JSON(). See DESIGN.md §12 for the tenant-locality
// argument the trace's determinism rests on.
func RunGatewayCampaign(sc campaign.GatewayScenario, cfg campaign.Config) (*campaign.GatewayTrace, error) {
	return campaign.RunGateway(sc, cfg, CampaignFactory())
}

// RunGatewayCampaignBatched is RunGatewayCampaign through the batched
// pipeline: arrivals admit in waves of batchSize and admitted calls
// coalesce into per-worker batched domain executions.
func RunGatewayCampaignBatched(sc campaign.GatewayScenario, cfg campaign.Config, batchSize int) (*campaign.GatewayTrace, error) {
	return campaign.RunGatewayBatched(sc, cfg, CampaignFactory(), batchSize)
}

// CheckGatewayIsolation runs the gateway isolation oracle against the
// real backends: each non-hostile tenant's per-arrival outcomes and
// survivor digest must be identical with and without the hostile
// tenants' traffic, serially at every worker count and batched at every
// worker-count × batch-size combination (defaults 1/4/8 × 8/32).
func CheckGatewayIsolation(sc campaign.GatewayScenario, cfg campaign.Config, workerCounts, batchSizes []int) ([]campaign.OracleResult, error) {
	return campaign.CheckIsolation(sc, cfg, CampaignFactory(), workerCounts, batchSizes)
}
