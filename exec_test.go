package sdrad_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"unicode/utf8"

	sdrad "repro"
)

var allCodecs = []string{sdrad.CodecRaw, sdrad.CodecBinary, sdrad.CodecJSON}

func newTestDomain(t testing.TB) *sdrad.Domain {
	t.Helper()
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dom.Close() })
	return dom
}

// echo returns its request unchanged from inside the domain.
func echo[T any](c *sdrad.Ctx, req T) (T, error) { return req, nil }

func TestExecStringRoundTrip(t *testing.T) {
	dom := newTestDomain(t)
	for _, codec := range allCodecs {
		got, err := sdrad.Exec(context.Background(), dom, "hello isolated world", echo[string],
			sdrad.WithCodec(codec))
		if err != nil {
			t.Fatalf("codec %s: %v", codec, err)
		}
		if got != "hello isolated world" {
			t.Errorf("codec %s: got %q", codec, got)
		}
	}
}

func TestExecBytesRoundTrip(t *testing.T) {
	dom := newTestDomain(t)
	payload := []byte{0, 1, 2, 0xff, 0xfe}
	for _, codec := range allCodecs {
		got, err := sdrad.Exec(context.Background(), dom, payload, echo[[]byte],
			sdrad.WithCodec(codec))
		if err != nil {
			t.Fatalf("codec %s: %v", codec, err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("codec %s: got %v", codec, got)
		}
	}
}

func TestExecPrimitiveRoundTrips(t *testing.T) {
	dom := newTestDomain(t)
	// Raw carries only bytes/strings; Binary and JSON carry the full set.
	for _, codec := range []string{sdrad.CodecBinary, sdrad.CodecJSON} {
		if got, err := sdrad.Exec(context.Background(), dom, int64(-42), echo[int64], sdrad.WithCodec(codec)); err != nil || got != -42 {
			t.Errorf("codec %s int64: %v %v", codec, got, err)
		}
		if got, err := sdrad.Exec(context.Background(), dom, 42, echo[int], sdrad.WithCodec(codec)); err != nil || got != 42 {
			t.Errorf("codec %s int: %v %v", codec, got, err)
		}
		if got, err := sdrad.Exec(context.Background(), dom, uint64(7), echo[uint64], sdrad.WithCodec(codec)); err != nil || got != 7 {
			t.Errorf("codec %s uint64: %v %v", codec, got, err)
		}
		if got, err := sdrad.Exec(context.Background(), dom, 2.5, echo[float64], sdrad.WithCodec(codec)); err != nil || got != 2.5 {
			t.Errorf("codec %s float64: %v %v", codec, got, err)
		}
		if got, err := sdrad.Exec(context.Background(), dom, true, echo[bool], sdrad.WithCodec(codec)); err != nil || got != true {
			t.Errorf("codec %s bool: %v %v", codec, got, err)
		}
	}
}

type execReq struct {
	Name  string
	N     int64
	Blob  []byte
	Ratio float64
}

func TestExecStructRoundTripAllCodecs(t *testing.T) {
	dom := newTestDomain(t)
	req := execReq{Name: "struct", N: -9, Blob: []byte{1, 2, 3}, Ratio: 0.25}
	// Structs travel in a JSON envelope inside every codec, including Raw.
	for _, codec := range allCodecs {
		got, err := sdrad.Exec(context.Background(), dom, req, echo[execReq], sdrad.WithCodec(codec))
		if err != nil {
			t.Fatalf("codec %s: %v", codec, err)
		}
		if got.Name != req.Name || got.N != req.N || !bytes.Equal(got.Blob, req.Blob) || got.Ratio != req.Ratio {
			t.Errorf("codec %s: got %+v", codec, got)
		}
	}
}

func TestExecRawRejectsNumericPrimitives(t *testing.T) {
	dom := newTestDomain(t)
	if _, err := sdrad.Exec(context.Background(), dom, int64(1), echo[int64], sdrad.WithCodec(sdrad.CodecRaw)); err == nil {
		t.Error("raw codec accepted an int64 primitive")
	}
}

func TestExecUnknownCodec(t *testing.T) {
	dom := newTestDomain(t)
	if _, err := sdrad.Exec(context.Background(), dom, "x", echo[string], sdrad.WithCodec("protobuf")); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestExecOnPool(t *testing.T) {
	pool, err := sdrad.NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	got, err := sdrad.Exec(context.Background(), pool, execReq{Name: "pooled", N: 3}, echo[execReq],
		sdrad.WithWorker(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "pooled" || got.N != 3 {
		t.Errorf("got %+v", got)
	}
	if reqs := pool.Stats().Requests; reqs[1] != 1 || reqs[0] != 0 {
		t.Errorf("affinity not honoured: %v", reqs)
	}
}

func TestExecOnBridge(t *testing.T) {
	sup := sdrad.New()
	bridge, err := sup.NewBridge(sdrad.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = bridge.Close() }()

	got, err := sdrad.Exec(context.Background(), bridge, "via bridge", echo[string])
	if err != nil {
		t.Fatal(err)
	}
	if got != "via bridge" {
		t.Errorf("got %q", got)
	}
}

func TestExecViolationFallback(t *testing.T) {
	dom := newTestDomain(t)
	got, err := sdrad.Exec(context.Background(), dom, "poison",
		func(c *sdrad.Ctx, req string) (string, error) {
			c.MustStore64(0xbad000, 1)
			return "unreachable", nil
		},
		sdrad.WithFallback(func(v *sdrad.ViolationError) error { return nil }))
	if err != nil {
		t.Fatalf("fallback should have absorbed the violation: %v", err)
	}
	if got != "" {
		t.Errorf("got %q, want the zero response after an absorbed violation", got)
	}
}

func TestExecApplicationError(t *testing.T) {
	dom := newTestDomain(t)
	boom := errors.New("domain says no")
	_, err := sdrad.Exec(context.Background(), dom, "x",
		func(c *sdrad.Ctx, req string) (string, error) { return "", boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the application error", err)
	}
}

// TestExecExitSweepViolationYieldsZeroResp: when the violation is only
// detected by the exit-time heap integrity sweep — after fn completed
// and the response was staged — an absorbed fallback must still yield
// the zero Resp, never the bytes staged by the rewound run.
func TestExecExitSweepViolationYieldsZeroResp(t *testing.T) {
	dom := newTestDomain(t)
	got, err := sdrad.Exec(context.Background(), dom, "req",
		func(c *sdrad.Ctx, req string) (string, error) {
			q := c.MustAlloc(16)
			c.MustStore(q, make([]byte, 32)) // smash the chunk redzone
			return "stale", nil
		},
		sdrad.WithFallback(func(v *sdrad.ViolationError) error { return nil }))
	if err != nil {
		t.Fatalf("fallback should have absorbed the sweep violation: %v", err)
	}
	if got != "" {
		t.Errorf("got %q, want the zero Resp after a post-completion violation", got)
	}
	if st, _ := dom.Stats(); st.Violations != 1 {
		t.Errorf("violations = %d, want 1 (exit sweep)", st.Violations)
	}
}

// TestExecErrorPathDoesNotLeakDomainHeap: a long-lived domain's memory
// persists across Execs, so the staged request buffer must be released
// even when fn fails — otherwise repeated failures exhaust the heap and
// surface as spurious violations.
func TestExecErrorPathDoesNotLeakDomainHeap(t *testing.T) {
	sup := sdrad.New()
	dom, err := sup.NewDomain(sdrad.WithHeapPages(2), sdrad.WithMaxHeapPages(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()

	boom := errors.New("always fails")
	payload := make([]byte, 1024)
	for i := 0; i < 100; i++ { // 100 KiB of staged requests vs an 8 KiB heap
		_, err := sdrad.Exec(context.Background(), dom, payload,
			func(c *sdrad.Ctx, req []byte) ([]byte, error) { return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("iteration %d: err = %v, want the application error (heap leak?)", i, err)
		}
	}
	if st, _ := dom.Stats(); st.Violations != 0 {
		t.Errorf("error-path Execs caused %d violations", st.Violations)
	}
}

// FuzzExecRoundTrip fuzzes the typed transfer across all three serde
// codecs: whatever bytes and strings go in must come back bit-identical
// through the domain heap, under every codec, both as primitives and
// embedded in a struct.
func FuzzExecRoundTrip(f *testing.F) {
	f.Add("", []byte{}, int64(0), uint8(0))
	f.Add("hello", []byte{1, 2, 3}, int64(-1), uint8(1))
	f.Add("\x00\xff weird \r\n", []byte{0xde, 0xad, 0xbe, 0xef}, int64(1<<62), uint8(2))
	f.Add("unicode ✓ züge", []byte("payload"), int64(42), uint8(5))

	f.Fuzz(func(t *testing.T, s string, b []byte, n int64, codecSel uint8) {
		codec := allCodecs[int(codecSel)%len(allCodecs)]
		sup := sdrad.New()
		dom, err := sup.NewDomain()
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = dom.Close() }()
		ctx := context.Background()
		opt := sdrad.WithCodec(codec)

		// JSON-borne strings cannot represent invalid UTF-8 (encoding/
		// json substitutes U+FFFD), so string-identity assertions only
		// hold for valid strings on the JSON paths. Bytes always
		// round-trip bit-exactly under every codec.
		validStr := utf8.ValidString(s)

		if codec != sdrad.CodecJSON || validStr {
			gotS, err := sdrad.Exec(ctx, dom, s, echo[string], opt)
			if err != nil {
				t.Fatalf("codec %s string: %v", codec, err)
			}
			if gotS != s {
				t.Errorf("codec %s string: %q != %q", codec, gotS, s)
			}
		}

		gotB, err := sdrad.Exec(ctx, dom, b, echo[[]byte], opt)
		if err != nil {
			t.Fatalf("codec %s bytes: %v", codec, err)
		}
		if !bytes.Equal(gotB, b) {
			t.Errorf("codec %s bytes: %v != %v", codec, gotB, b)
		}

		// Structs travel in a JSON envelope under every codec, and carry
		// the numeric field Raw cannot carry natively.
		req := execReq{Name: s, N: n, Blob: b}
		gotR, err := sdrad.Exec(ctx, dom, req, echo[execReq], opt)
		if err != nil {
			t.Fatalf("codec %s struct: %v", codec, err)
		}
		if validStr && gotR.Name != s {
			t.Errorf("codec %s struct name: %q != %q", codec, gotR.Name, s)
		}
		if gotR.N != n || !bytes.Equal(gotR.Blob, b) {
			t.Errorf("codec %s struct: %+v != %+v", codec, gotR, req)
		}
	})
}
