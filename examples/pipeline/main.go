// Pipeline scenario: multi-domain data flow with the SDRaD extensions —
// read-only sharing, zero-copy heap adoption, quarantine, and lifecycle
// tracing.
//
// A "config" domain owns shared configuration that worker domains may
// read but never write. A worker computes a result and hands its whole
// heap to the trusted runtime with DetachHeap (pkey retag — no copying).
// A misbehaving worker is quarantined after exhausting its violation
// budget. The trace at the end shows the full lifecycle.
//
//	go run ./examples/pipeline
package main

import (
	"errors"
	"fmt"
	"log"

	sdrad "repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("pipeline example: %v", err)
	}
}

func run() error {
	sup := sdrad.New()
	ring := sup.StartTrace(128)

	// 1. The config domain owns shared, read-only configuration.
	config, err := sup.NewDomain()
	if err != nil {
		return err
	}
	var cfgAddr sdrad.Addr
	if err := config.Run(func(c *sdrad.Ctx) error {
		cfgAddr = c.MustAlloc(32)
		c.MustStore(cfgAddr, []byte("max_records=4096"))
		return nil
	}); err != nil {
		return err
	}

	// 2. A worker gets read access (not write) to the configuration.
	worker, err := sup.NewDomain()
	if err != nil {
		return err
	}
	if err := config.ShareReadOnlyWith(worker); err != nil {
		return err
	}
	var resultAddr sdrad.Addr
	if err := worker.Run(func(c *sdrad.Ctx) error {
		cfg := make([]byte, 16)
		c.MustLoad(cfgAddr, cfg) // allowed: read-only grant
		resultAddr = c.MustAlloc(64)
		c.MustStore(resultAddr, append([]byte("processed with "), cfg...))
		return nil
	}); err != nil {
		return err
	}
	fmt.Println("1. worker read shared config and computed a result")

	// A write to the shared config is a contained violation.
	err = worker.Run(func(c *sdrad.Ctx) error {
		c.MustStore(cfgAddr, []byte("tampered"))
		return nil
	})
	if v, ok := sdrad.IsViolation(err); ok {
		fmt.Printf("2. worker write to read-only config contained (%s)\n", v.Mechanism)
	} else {
		return fmt.Errorf("expected violation, got %v", err)
	}

	// 3. Hand the worker's heap to the trusted runtime without copying.
	// NOTE: the violation above discarded the worker heap, so recompute.
	if err := worker.Run(func(c *sdrad.Ctx) error {
		resultAddr = c.MustAlloc(64)
		c.MustStore(resultAddr, []byte("final result: 42"))
		return nil
	}); err != nil {
		return err
	}
	heap, err := worker.DetachHeap()
	if err != nil {
		return err
	}
	_ = heap
	// The result is still at the same address, now root-owned.
	got, err := config.Read(resultAddr, 16) // root-privileged read via any domain handle
	if err != nil {
		return err
	}
	fmt.Printf("3. adopted result without copying: %q\n", got)

	// 4. Quarantine: a crash-looping domain is cut off.
	flaky, err := sup.NewDomain()
	if err != nil {
		return err
	}
	if err := flaky.SetViolationBudget(3); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		//lint:errclass the violation is the point; the budget check below observes its effect
		_ = flaky.Run(func(c *sdrad.Ctx) error {
			c.MustStore64(0, 1) // null write, every time
			return nil
		})
	}
	err = flaky.Run(func(*sdrad.Ctx) error { return nil })
	if errors.Is(err, sdrad.ErrQuarantined) {
		fmt.Println("4. crash-looping domain quarantined after 3 violations")
	} else {
		return fmt.Errorf("expected quarantine, got %v", err)
	}

	fmt.Printf("\nlifecycle trace (%d events):\n%s", ring.Len(), ring.Dump())
	return nil
}
