package main

import (
	"context"
	"errors"
	"testing"

	sdrad "repro"
)

// TestPipelineExample runs the example end to end — it must keep
// working as the API evolves.
func TestPipelineExample(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncSubmitFlushEndToEnd drives the asynchronous pipeline shape
// this example's domains feed into at scale: producers Submit stages
// into an AsyncPool, a misbehaving stage is contained without touching
// its neighbors, backpressure sheds excess load as typed overloads, and
// Flush drains everything before shutdown.
func TestAsyncSubmitFlushEndToEnd(t *testing.T) {
	pool, err := sdrad.NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()
	ap, err := sdrad.NewAsyncPool(pool, sdrad.AsyncConfig{MaxBatch: 8, MaxInflight: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ap.Close() }()

	// Stage 1: fan 40 records through isolated processing, one Submit
	// each; record #13 is the poisoned input.
	futs := make([]*sdrad.Future, 40)
	for i := range futs {
		i := i
		futs[i] = ap.Submit(context.Background(), func(c *sdrad.Ctx) error {
			rec := c.MustAlloc(64)
			c.MustStore(rec, []byte("record-payload"))
			if i == 13 {
				c.MustStore64(0xdead_0000, 1) // wild write: the contained bug
			}
			c.MustFree(rec)
			return nil
		})
	}

	// Stage 2: Flush is the pipeline barrier — after it, every future
	// is resolved and can be harvested without blocking.
	ap.Flush()
	contained, ok := 0, 0
	for i, f := range futs {
		select {
		case <-f.Done():
		default:
			t.Fatalf("future %d unresolved after Flush", i)
		}
		err := f.Err()
		switch {
		case i == 13:
			if _, isV := sdrad.IsViolation(err); !isV {
				t.Fatalf("poisoned record: %v, want contained violation", err)
			}
			contained++
		case err != nil:
			t.Fatalf("record %d poisoned by neighbor: %v", i, err)
		default:
			ok++
		}
	}
	if ok != 39 || contained != 1 {
		t.Fatalf("ok=%d contained=%d, want 39/1", ok, contained)
	}

	// The layer reports its coalescing: batches cannot outnumber calls,
	// and with 40 near-simultaneous submissions some must have coalesced.
	st := ap.Stats()
	if st.Submitted != 40 {
		t.Fatalf("Submitted = %d, want 40", st.Submitted)
	}
	if st.Batches == 0 {
		t.Fatal("no batches executed")
	}

	// After Close the pipeline refuses new work with a typed error.
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ap.Submit(context.Background(), func(*sdrad.Ctx) error { return nil }).Err(); !errors.Is(err, sdrad.ErrAsyncClosed) {
		t.Fatalf("Submit after Close = %v, want ErrAsyncClosed", err)
	}
}
