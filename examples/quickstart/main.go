// Quickstart: create a domain, run work in it with the Execution API v2
// (Do + RunOptions), survive a memory-safety violation, and cancel a
// runaway run with a deterministic cycle budget.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	sdrad "repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	sup := sdrad.New()

	dom, err := sup.NewDomain()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := dom.Close(); cerr != nil {
			log.Printf("close: %v", cerr)
		}
	}()

	// 1. Normal work inside the domain: allocate, write, read back.
	var out []byte
	err = dom.Run(func(c *sdrad.Ctx) error {
		p := c.MustAlloc(64)
		c.MustStore(p, []byte("resilient hello"))
		out = make([]byte, 15)
		c.MustLoad(p, out)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("1. domain computed: %q\n", out)

	// 2. A wild write inside the domain. On a conventional server this is
	// a crash; here the domain is rewound and discarded. The per-call
	// policy rides in RunOptions: retry the run once after a rewind, and
	// if it still violates, take the paper's alternate action.
	attempts := 0
	err = dom.Do(context.Background(), func(c *sdrad.Ctx) error {
		attempts++
		c.MustStore64(0xdeadbeef000, 0x41) // memory-corruption bug fires
		fmt.Println("   (unreachable)")
		return nil
	},
		sdrad.WithRetries(1),
		sdrad.WithFallback(func(v *sdrad.ViolationError) error {
			fmt.Printf("2. contained violation: mechanism=%s (domain %d rewound, %d attempts)\n",
				v.Mechanism, v.UDI, attempts)
			return nil // alternate action: absorb it
		}))
	if err != nil {
		return err
	}

	// 3. The same domain is immediately reusable — that is the
	// availability story of the paper.
	err = dom.Do(context.Background(),
		func(c *sdrad.Ctx) error {
			p := c.MustAlloc(32)
			c.MustStore(p, []byte("back in business"))
			return nil
		},
		sdrad.WithFallback(func(v *sdrad.ViolationError) error {
			return errors.New("unexpected second violation")
		}))
	if err != nil {
		return err
	}
	st, err := dom.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("3. domain healthy again: entries=%d violations=%d rewind-time=%v\n",
		st.Entries, st.Violations, st.RewindTime)

	// 4. A runaway run is cancelled deterministically: the context
	// deadline maps to a virtual-cycle budget (WithCycleBudget sets one
	// explicitly; the tighter of the two applies), and exhausting it
	// rewinds the domain just like a violation — but typed as a
	// *BudgetError.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	scratch := make([]byte, 4096)
	err = dom.Do(ctx, func(c *sdrad.Ctx) error {
		p := c.MustAlloc(len(scratch))
		for { // runaway loop: burns virtual cycles forever
			c.MustStore(p, scratch)
		}
	}, sdrad.WithCycleBudget(2_000_000))
	if b, ok := sdrad.IsBudget(err); ok {
		fmt.Printf("4. runaway run preempted after %d virtual cycles (budget %d)\n", b.Used, b.Budget)
	} else if err != nil {
		return err
	}
	fmt.Printf("   virtual machine time elapsed: %v\n", sup.VirtualTime())
	return nil
}
