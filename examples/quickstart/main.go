// Quickstart: create a domain, run work in it, survive a memory-safety
// violation, and keep going.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	sdrad "repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	sup := sdrad.New()

	dom, err := sup.NewDomain()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := dom.Close(); cerr != nil {
			log.Printf("close: %v", cerr)
		}
	}()

	// 1. Normal work inside the domain: allocate, write, read back.
	var out []byte
	err = dom.Run(func(c *sdrad.Ctx) error {
		p := c.MustAlloc(64)
		c.MustStore(p, []byte("resilient hello"))
		out = make([]byte, 15)
		c.MustLoad(p, out)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("1. domain computed: %q\n", out)

	// 2. A wild write inside the domain. On a conventional server this is
	// a crash; here the domain is rewound and discarded.
	err = dom.Run(func(c *sdrad.Ctx) error {
		c.MustStore64(0xdeadbeef000, 0x41) // memory-corruption bug fires
		fmt.Println("   (unreachable)")
		return nil
	})
	if v, ok := sdrad.IsViolation(err); ok {
		fmt.Printf("2. contained violation: mechanism=%s (domain %d rewound)\n", v.Mechanism, v.UDI)
	} else if err != nil {
		return err
	}

	// 3. The same domain is immediately reusable — that is the
	// availability story of the paper.
	err = dom.RunWithFallback(
		func(c *sdrad.Ctx) error {
			p := c.MustAlloc(32)
			c.MustStore(p, []byte("back in business"))
			return nil
		},
		func(v *sdrad.ViolationError) error {
			return errors.New("unexpected second violation")
		},
	)
	if err != nil {
		return err
	}
	st, err := dom.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("3. domain healthy again: entries=%d violations=%d rewind-time=%v\n",
		st.Entries, st.Violations, st.RewindTime)
	fmt.Printf("   virtual machine time elapsed: %v\n", sup.VirtualTime())
	return nil
}
