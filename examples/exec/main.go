// Exec scenario: typed, codec-backed calls — the Execution API v2
// replacement for manual Alloc/Write/Read address plumbing.
//
// A structured request is encoded with a serde codec, staged through the
// isolated domain's heap, decoded under the domain's protection key,
// processed, and the structured response travels back the same way. The
// demo prices a basket of orders three times: with the binary codec on a
// Domain, with the JSON codec on a parallel Pool (affinity-pinned), and
// once against a poisoned order that makes the pricing code scribble
// through a wild pointer — contained, with the alternate action
// answering instead.
//
//	go run ./examples/exec
package main

import (
	"context"
	"fmt"
	"log"

	sdrad "repro"
)

// Order is the request type; it crosses the domain boundary as encoded
// bytes, never as shared Go memory.
type Order struct {
	SKU      string
	Quantity int64
	Poisoned bool // stands in for a crafted exploit payload
}

// Quote is the response type.
type Quote struct {
	SKU   string
	Total int64
}

// price is the untrusted computation: it runs inside the domain, with
// scratch space on the domain heap.
func price(c *sdrad.Ctx, o Order) (Quote, error) {
	scratch := c.MustAlloc(64)
	c.MustStore(scratch, []byte(o.SKU))
	if o.Poisoned {
		c.MustStore64(0xbad0000, 0x41) // wild pointer: contained
	}
	c.MustFree(scratch)
	return Quote{SKU: o.SKU, Total: o.Quantity * 250}, nil
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("exec example: %v", err)
	}
}

func run() error {
	ctx := context.Background()

	// 1. Typed call on a single Domain, binary codec (the default).
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		return err
	}
	defer func() { _ = dom.Close() }() //lint:errclass example teardown; nothing can act on the error

	q, err := sdrad.Exec(ctx, dom, Order{SKU: "widget", Quantity: 3}, price)
	if err != nil {
		return err
	}
	fmt.Printf("1. domain/binary:  %s = %d\n", q.SKU, q.Total)

	// 2. The same typed call on a Pool: Exec works against any Runner.
	// WithWorker pins the transfer to one shard, WithCodec swaps the
	// wire format.
	pool, err := sdrad.NewPool(2)
	if err != nil {
		return err
	}
	defer func() { _ = pool.Close() }() //lint:errclass example teardown; nothing can act on the error

	q, err = sdrad.Exec(ctx, pool, Order{SKU: "gadget", Quantity: 7}, price,
		sdrad.WithWorker(1), sdrad.WithCodec(sdrad.CodecJSON))
	if err != nil {
		return err
	}
	fmt.Printf("2. pool/json:      %s = %d (worker-pinned)\n", q.SKU, q.Total)

	// 3. A poisoned order: the wild write is contained, the domain is
	// rewound, and the alternate action stands in for the result.
	q, err = sdrad.Exec(ctx, dom, Order{SKU: "bomb", Quantity: 1, Poisoned: true}, price,
		sdrad.WithRetries(1), // re-enter once after the rewind
		sdrad.WithFallback(func(v *sdrad.ViolationError) error {
			fmt.Printf("3. contained:      %s — serving zero quote instead\n", v.Mechanism)
			return nil
		}))
	if err != nil {
		return err
	}
	fmt.Printf("   fallback quote: %+v\n", q)

	st, err := dom.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("   domain: entries=%d violations=%d rewinds=%d\n", st.Entries, st.Violations, st.Rewinds)
	return nil
}
