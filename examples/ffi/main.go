// FFI scenario: §III of the paper — calling memory-unsafe "foreign" code
// from safe code without giving up availability.
//
// A legacy record parser (think: a C library behind Rust FFI) is wrapped
// with sdrad.Foreign registrations — the Go analogue of the proposed
// annotation macro. Arguments are serialized into the foreign domain,
// the parser runs isolated, and results are serialized back. The parser
// contains a Heartbleed-shaped bug: it trusts a length field from the
// input. When an attack record arrives, the out-of-bounds read is
// contained, the domain is rewound, and the registered alternate action
// returns a clean error — the application never crashes and never leaks.
//
//	go run ./examples/ffi
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	sdrad "repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("ffi example: %v", err)
	}
}

// buildRecord frames a payload with a length header. declared > len(data)
// is the attack.
func buildRecord(data []byte, declared int) []byte {
	rec := make([]byte, 2+len(data))
	binary.BigEndian.PutUint16(rec, uint16(declared))
	copy(rec[2:], data)
	return rec
}

func run() error {
	sup := sdrad.New()
	// A small foreign-domain heap, sized to the records it parses: the
	// attack's 60 kB over-read runs off the domain's pages and faults
	// instead of silently leaking neighbouring allocations.
	bridge, err := sup.NewBridge(sdrad.CodecBinary, sdrad.WithHeapPages(4))
	if err != nil {
		return err
	}
	defer func() {
		if cerr := bridge.Close(); cerr != nil {
			log.Printf("close: %v", cerr)
		}
	}()

	// The "legacy C function": parse a record and return its payload.
	// BUG: it trusts the declared length — reads out of bounds for
	// attack records.
	err = bridge.Register(sdrad.Foreign{
		Name: "legacy_parse",
		Fn: func(c *sdrad.Ctx, args []any) ([]any, error) {
			rec := args[0].([]byte)
			if len(rec) < 2 {
				return nil, fmt.Errorf("short record")
			}
			declared := int(binary.BigEndian.Uint16(rec))
			buf := c.MustAlloc(len(rec))
			c.MustStore(buf, rec)
			payload := make([]byte, declared) // attacker-controlled size
			c.MustLoad(buf+2, payload)        // may read far out of bounds
			c.MustFree(buf)
			return []any{payload}, nil
		},
		Fallback: func(args []any, v *sdrad.ViolationError) ([]any, error) {
			// Alternate action: reject the record cleanly.
			return []any{[]byte(nil)}, nil
		},
	})
	if err != nil {
		return err
	}

	// Benign record.
	res, err := bridge.Call("legacy_parse", buildRecord([]byte("hello ffi"), 9))
	if err != nil {
		return err
	}
	fmt.Printf("benign record parsed: %q\n", res[0].([]byte))

	// Heartbleed-style record: declares 60000 bytes, carries 4.
	res, err = bridge.Call("legacy_parse", buildRecord([]byte("evil"), 60000))
	if err != nil {
		return err
	}
	if len(res[0].([]byte)) == 0 {
		fmt.Println("attack record: contained — alternate action returned a clean rejection")
	}

	// The bridge keeps serving after the violation.
	res, err = bridge.Call("legacy_parse", buildRecord([]byte("still alive"), 11))
	if err != nil {
		return err
	}
	fmt.Printf("post-attack record parsed: %q\n", res[0].([]byte))

	st := bridge.Stats()
	fmt.Printf("\nbridge stats: calls=%d violations=%d fallbacks=%d bytes-in=%d bytes-out=%d\n",
		st.Calls, st.Violations, st.Fallbacks, st.BytesIn, st.BytesOut)
	dst, err := bridge.Domain().Stats()
	if err != nil {
		return err
	}
	fmt.Printf("foreign domain: rewinds=%d total-rewind-time=%v\n", dst.Rewinds, dst.RewindTime)
	return nil
}
