// Sustainability scenario: §IV of the paper — what does resilience cost
// the environment?
//
// The demo assesses five resilience strategies for the paper's worked
// example (a 10 GB memcached service, three memory faults per year,
// five-nines availability target) and prints the annual energy and
// carbon footprint of each, including the embodied emissions of the
// extra servers replication provisions.
//
//	go run ./examples/sustainability
package main

import (
	"fmt"
	"log"

	"repro/internal/avail"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/procmodel"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sustainability example: %v", err)
	}
}

func run() error {
	sc := energy.DefaultScenario()
	fmt.Printf("scenario: %d GB state, %.0f memory faults/yr, target %s\n",
		sc.StateBytes/1_000_000_000, sc.FaultsPerYear, avail.FormatAvailability(sc.TargetAvailability))
	fmt.Printf("downtime budget: %s per year\n\n",
		metrics.FormatDuration(avail.DowntimeBudget(sc.TargetAvailability)))

	strategies := procmodel.DefaultStrategies()
	assessments := energy.AssessAll(sc, strategies)

	var twoN energy.Assessment
	for _, a := range assessments {
		if a.Strategy == "active-passive" {
			twoN = a
		}
	}

	table := metrics.NewTable("annual footprint per resilience strategy",
		"strategy", "servers", "recovery", "availability", "meets target",
		"kWh/yr", "total kgCO2e/yr", "CO2e vs 2N")
	for i, a := range assessments {
		table.AddRow(
			a.Strategy,
			fmt.Sprintf("%.2f", a.Servers),
			metrics.FormatDuration(strategies[i].RecoveryTime(sc.StateBytes)),
			avail.FormatAvailability(a.AchievedAvailability),
			a.MeetsTarget,
			fmt.Sprintf("%.0f", a.KWhPerYear),
			fmt.Sprintf("%.0f", a.TotalKgCO2e()),
			fmt.Sprintf("%+.1f%%", -energy.SavingsVs(a, twoN)*100),
		)
	}
	fmt.Println(table.String())

	var rewind energy.Assessment
	for _, a := range assessments {
		if a.Strategy == "sdrad-rewind" {
			rewind = a
		}
	}
	fmt.Printf("SDRaD meets the availability target on one server, saving %.0f kgCO2e/yr\n",
		twoN.TotalKgCO2e()-rewind.TotalKgCO2e())
	fmt.Printf("(%.0f%%) versus an active-passive pair — the paper's over-provisioning argument.\n",
		energy.SavingsVs(rewind, twoN)*100)
	return nil
}
