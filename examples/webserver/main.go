// Webserver scenario: the NGINX use case — per-request parsing domains.
//
// The demo serves a burst of requests, interleaving parser exploits, in
// both native and sdrad modes, then prints each server's fate.
//
//	go run ./examples/webserver
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	sdrad "repro"
	"repro/internal/httpd"
	"repro/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("webserver example: %v", err)
	}
}

func run() error {
	table := metrics.NewTable("webserver under parser exploits",
		"mode", "2xx", "4xx", "503 (down)", "exploits contained", "crashes")
	for _, mode := range []httpd.Mode{httpd.ModeNative, httpd.ModeSDRaD} {
		row, err := drive(mode)
		if err != nil {
			return err
		}
		table.AddRow(row...)
	}
	fmt.Println(table.String())
	fmt.Println("sdrad mode answers every benign request even while being exploited;")
	fmt.Println("native mode spends the restart window returning 503.")
	return nil
}

func drive(mode httpd.Mode) ([]any, error) {
	sup := sdrad.New()
	srv, err := httpd.NewServer(sup.System(), httpd.Config{Mode: mode})
	if err != nil {
		return nil, err
	}
	srv.HandleFunc("/", []byte("<html>welcome</html>"))
	srv.HandleFunc("/app.js", make([]byte, 16<<10))
	// Give the native restart a real warm-up cost.
	srv.HandleFunc("/blob", make([]byte, 8<<20))

	ok2xx, bad4xx, down503 := 0, 0, 0
	for i := 0; i < 5000; i++ {
		var raw []byte
		if i%250 == 100 {
			raw = httpd.BuildRequest("GET", "/", map[string]string{httpd.AttackHeader: "pwn"})
		} else if i%2 == 0 {
			raw = httpd.BuildRequest("GET", "/", nil)
		} else {
			raw = httpd.BuildRequest("GET", "/app.js", nil)
		}
		// Every request carries its own deadline; the server maps it to
		// a virtual-cycle budget, so even a pathological request could
		// not stall the parse domain past it.
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		resp := srv.ServeContext(ctx, i%16, raw)
		cancel()
		switch {
		case errors.Is(resp.Err, httpd.ErrUnavailable):
			down503++
		case resp.Status == 200:
			ok2xx++
		case resp.Status == 400:
			bad4xx++
		}
	}
	st := srv.Stats()
	return []any{mode.String(), ok2xx, bad4xx, down503, st.Violations, st.Crashes}, nil
}
