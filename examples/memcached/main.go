// Memcached scenario: the paper's primary use case, end to end.
//
// A memcached-like server holds a warm cache. Eight benign clients issue
// a zipf-skewed GET/SET mix while a malicious client periodically sends
// exploit payloads. The demo runs the same workload twice — native
// (crash + process restart) and SDRaD (per-connection domains with secure
// rewind) — and prints what the benign clients experienced.
//
//	go run ./examples/memcached
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sdrad "repro"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/workload"
)

const (
	requests    = 30_000
	attackEvery = 500
	clients     = 8
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("memcached example: %v", err)
	}
}

func run() error {
	fmt.Printf("workload: %d requests, %d clients, 1 exploit per %d requests\n\n",
		requests, clients, attackEvery)
	table := metrics.NewTable("benign-client experience",
		"mode", "benign failures", "failure rate", "p99 latency", "attacks contained", "process crashes")
	for _, mode := range []kvstore.Mode{kvstore.ModeNative, kvstore.ModeSDRaD} {
		row, err := drive(mode)
		if err != nil {
			return err
		}
		table.AddRow(row...)
	}
	fmt.Println(table.String())
	fmt.Println("The cache survives every attack in sdrad mode: a malicious request")
	fmt.Println("rewinds only its connection's domain, in microseconds.")
	return nil
}

func drive(mode kvstore.Mode) ([]any, error) {
	sup := sdrad.New()
	cache, err := kvstore.NewCache(sup.System(), 1, 64<<20)
	if err != nil {
		return nil, err
	}
	if _, err := kvstore.Warmup(cache, 16<<20, 4096); err != nil {
		return nil, err
	}
	srv, err := kvstore.NewServer(sup.System(), cache, kvstore.ServerConfig{Mode: mode})
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewKV(workload.KVConfig{Seed: 42, Keys: 4000})
	if err != nil {
		return nil, err
	}
	mal := &workload.MaliciousEvery{G: gen, N: attackEvery}

	var hist metrics.Histogram
	benign, failures := 0, 0
	for i := 0; i < requests; i++ {
		req := mal.Next()
		// Per-request deadline: HandleContext maps it to a virtual-cycle
		// budget bounding the request's in-domain run.
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		resp := srv.HandleContext(ctx, i%clients, req)
		cancel()
		if req.Malicious {
			continue
		}
		benign++
		if resp.Err != nil {
			failures++
			continue
		}
		hist.ObserveDuration(resp.Latency)
	}
	st := srv.Stats()
	return []any{
		mode.String(),
		fmt.Sprintf("%d / %d", failures, benign),
		fmt.Sprintf("%.2f%%", float64(failures)/float64(benign)*100),
		metrics.FormatDuration(time.Duration(hist.P99())),
		st.Violations,
		st.Crashes,
	}, nil
}
