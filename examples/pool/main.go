// Pool scenario: parallel domain execution across simulated cores, via
// the Execution API v2 (Pool.Do with worker affinity and fallbacks).
//
// A single Supervisor is one single-core simulated machine, so servers
// built on it serialize every request. sdrad.Pool runs one Supervisor
// per worker and dispatches to the least-loaded worker, so N goroutines
// execute isolated domains truly in parallel — while violations stay
// contained to the worker that hit them.
//
//	go run ./examples/pool
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"

	sdrad "repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("pool example: %v", err)
	}
}

func run() error {
	pool, err := sdrad.NewPool(runtime.NumCPU())
	if err != nil {
		return err
	}
	defer func() { _ = pool.Close() }() //lint:errclass example teardown; nothing can act on the error

	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	var contained atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("request payload from goroutine %d", g))
			for i := 0; i < perG; i++ {
				attack := i%100 == 99
				// Do is the v2 entry point: least-loaded dispatch by
				// default, and the alternate action composes with it.
				// Every 10th call pins its shard with WithWorker —
				// affinity for related requests — and still gets the
				// fallback if it is the one that violates.
				opts := []sdrad.RunOption{
					sdrad.WithFallback(func(v *sdrad.ViolationError) error {
						contained.Add(1)
						return nil
					}),
				}
				if i%10 == 0 {
					opts = append(opts, sdrad.WithWorker(g))
				}
				err := pool.Do(context.Background(), func(c *sdrad.Ctx) error {
					p := c.MustAlloc(len(payload))
					c.MustStore(p, payload)
					if attack {
						c.MustStore64(0xbad000, 1) // wild pointer: contained
					}
					return nil
				}, opts...)
				if err != nil {
					log.Printf("goroutine %d: %v", g, err)
				}
			}
		}(g)
	}
	wg.Wait()

	fmt.Printf("workers:            %d\n", pool.Workers())
	fmt.Printf("requests:           %d\n", goroutines*perG)
	fmt.Printf("contained attacks:  %d\n", contained.Load())
	fmt.Printf("detections:         %v\n", pool.DetectionCounts())
	par := pool.VirtualTime()
	total := pool.TotalVirtualTime()
	fmt.Printf("virtual makespan:   %v (parallel)\n", par)
	fmt.Printf("virtual CPU time:   %v (sum of workers)\n", total)
	if par > 0 {
		fmt.Printf("parallel speedup:   %.1fx over one simulated core\n",
			float64(total)/float64(par))
	}
	return nil
}
