// Package sdrad is the public API of SDRaD-Go, a reproduction of
// "Secure Rewind and Discard of Isolated Domains" and its
// sustainability evaluation ("Exploring the Environmental Benefits of
// In-Process Isolation for Software Resilience", DSN 2023).
//
// SDRaD lets an application execute untrusted or memory-unsafe work
// inside isolated domains backed by (simulated) Intel Memory Protection
// Keys. A memory-safety violation inside a domain — a cross-domain
// access, smashed stack canary, corrupted heap chunk, wild pointer — does
// not terminate the application: the domain is rewound to its entry
// point and its memory is discarded, in microseconds, and the caller
// takes an alternate action. The application keeps serving.
//
// # Quick start
//
// Every execution backend — Domain, Pool, Bridge — implements Runner:
// one cancellable, policy-carrying entry point, Do. Per-call policy
// rides in RunOptions: retries after rewind, the paper's alternate
// action, pool-worker affinity, and virtual-cycle budgets derived from
// the context deadline.
//
//	sup := sdrad.New()
//	dom, err := sup.NewDomain()
//	if err != nil { ... }
//	defer dom.Close()
//
//	err = dom.Do(ctx, func(c *sdrad.Ctx) error {
//		p := c.MustAlloc(64)
//		c.MustStore(p, payload) // contained: faults rewind the domain
//		return nil
//	},
//		sdrad.WithRetries(2),                               // re-enter after rewind
//		sdrad.WithFallback(func(v *sdrad.ViolationError) error {
//			return nil // alternate action: serve a degraded result
//		}))
//
// A ctx deadline deterministically preempts a runaway run: the deadline
// maps to a virtual-cycle budget, the domain is rewound and discarded
// exactly as for a violation, and Do returns a *BudgetError
// (sdrad.IsBudget). Violations still surface as *ViolationError
// (sdrad.IsViolation) when no fallback is installed.
//
// Typed data transfer goes through Exec, which serializes the request
// into the domain heap with a serde codec, runs isolated, and decodes
// the response back out — no manual Alloc/Write/Read plumbing:
//
//	sum, err := sdrad.Exec(ctx, dom, req,
//		func(c *sdrad.Ctx, r Request) (Response, error) {
//			return handle(c, r), nil // runs inside the domain
//		})
//
// The library runs against a deterministic simulated machine (paged
// memory, software PKRU register, virtual cycle clock), because real PKU
// hardware is not reachable from portable Go; see DESIGN.md §2 for the
// substitution argument. All isolation semantics — 16 protection keys,
// AD/WD bits, per-page key tags, fault classification — follow the
// hardware architecture exactly. DESIGN.md §3 has the v1→v2 API
// migration table (Run/RunOn/RunWithFallback remain as thin wrappers
// over Do).
//
// # Concurrency
//
// A Supervisor simulates one single-core machine: a Supervisor and the
// Domains created from it must be confined to a single goroutine at a
// time. To execute domains in parallel, use Pool, which is safe for
// concurrent use by any number of goroutines: it shards work across N
// workers, each owning a private Supervisor and a warm pre-initialized
// domain that is discarded (not deinitialized) between requests.
//
//	pool, err := sdrad.NewPool(runtime.NumCPU())
//	if err != nil { ... }
//	defer pool.Close()
//
//	err = pool.Do(ctx, func(c *sdrad.Ctx) error {
//		p := c.MustAlloc(64)
//		c.MustStore(p, payload)
//		return nil
//	}, sdrad.WithWorker(shard)) // affinity: pin related calls to one worker
//	if v, ok := sdrad.IsViolation(err); ok {
//		// contained on one worker; all other workers kept serving
//	}
//
// Pool aggregates DetectionCounts, MemoryStats, and virtual time across
// its workers.
//
// # Async & batching
//
// Under load, per-call domain entries leave throughput on the table:
// every Do pays one Enter/Exit, one exit-time heap-integrity sweep, and
// one discard. AsyncPool is the io_uring-style answer — an asynchronous
// submission layer over Pool. Callers Submit calls and receive a
// Future; bounded per-worker queues coalesce up to MaxBatch queued
// calls into ONE domain entry, and admission control rejects excess
// load with a typed *OverloadError instead of queueing unboundedly.
//
//	ap, err := sdrad.NewAsyncPool(pool, sdrad.AsyncConfig{MaxBatch: 32, MaxInflight: 1024})
//	if err != nil { ... }
//	defer ap.Close()
//
//	fut := ap.Submit(ctx, func(c *sdrad.Ctx) error { ... })
//	...
//	if err := fut.Wait(ctx); err != nil {
//		if o, ok := sdrad.IsOverload(err); ok { /* shed load */ }
//	}
//	ap.Flush() // barrier: every admitted call has resolved
//
// Batched execution is transparent: results are exactly what serial Do
// would return. A batch whose calls all return nil commits with the
// amortized cost; any detection rewinds the domain and re-derives every
// call's outcome through the serial path (the replay rule), so fault
// isolation, retries, and fallbacks behave per call. The synchronous
// doors Domain.DoBatch, Domain.DoBatchItems, and Pool.DoBatch expose
// the same engine for callers that already hold a batch. Because an
// aborted batch re-executes its calls, batched fns are under the same
// at-least-once contract as WithRetries. See DESIGN.md §9 for queue
// semantics, the replay rule, and why batched campaign traces are
// oracle-identical to serial ones.
package sdrad
