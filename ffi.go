package sdrad

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/serde"
)

// This file is the public surface of SDRaD-FFI (§III of the paper):
// wrapping "foreign" (memory-unsafe) functions so they run inside an
// isolated, rewindable domain with serialized argument passing and
// alternate actions — the Go analogue of the proposed Rust crate's
// annotation macro.

// ForeignFunc is a wrapped foreign function: it receives the decoded
// argument vector plus a domain context for raw memory work, and returns
// a result vector. Supported argument/result kinds: bool, int64, uint64,
// float64, string, []byte.
type ForeignFunc = ffi.Func

// ForeignFallback is the alternate action invoked with the original
// arguments when the foreign function's domain is rewound.
type ForeignFallback = ffi.Fallback

// Foreign describes one wrapped foreign function.
type Foreign = ffi.Registration

// BridgeStats reports FFI bridge accounting.
type BridgeStats = ffi.Stats

// Codec names accepted by NewBridge.
const (
	// CodecRaw carries only []byte/string arguments, with minimal
	// framing (bytemuck-style).
	CodecRaw = "raw"
	// CodecBinary is the compact type-tagged default (bincode-style).
	CodecBinary = "binary"
	// CodecJSON is the self-describing text codec (serde_json-style).
	CodecJSON = "json"
)

// Bridge runs registered foreign functions inside a dedicated domain,
// marshalling arguments in and results out through the chosen codec.
type Bridge struct {
	b *ffi.Bridge
	d *Domain
}

// NewBridge creates an FFI bridge with its own fresh domain. codec is one
// of CodecRaw, CodecBinary, CodecJSON ("" defaults to CodecBinary).
func (s *Supervisor) NewBridge(codec string, opts ...DomainOption) (*Bridge, error) {
	var c serde.Codec
	if codec != "" {
		var err error
		c, err = serde.ByName(codec)
		if err != nil {
			return nil, fmt.Errorf("sdrad: %w", err)
		}
	}
	d, err := s.NewDomain(opts...)
	if err != nil {
		return nil, fmt.Errorf("sdrad: bridge domain: %w", err)
	}
	b, err := ffi.NewBridge(s.sys, core.UDI(d.UDI()), c)
	if err != nil {
		_ = d.Close() //lint:errclass best-effort unwind; the bridge failure is the error callers must see
		return nil, fmt.Errorf("sdrad: %w", err)
	}
	return &Bridge{b: b, d: d}, nil
}

// Register wraps a foreign function (the annotation-macro analogue).
func (b *Bridge) Register(f Foreign) error { return b.b.Register(f) }

// Call invokes a registered foreign function: arguments are serialized
// into the domain, the function runs isolated, and results are
// serialized back out. On a violation the domain is rewound; if the
// function declared a fallback its results are returned, otherwise the
// *ViolationError is. It is CallContext with a background context.
func (b *Bridge) Call(name string, args ...any) ([]any, error) {
	return b.b.Call(name, args...)
}

// CallContext is Call with cancellation and deadline support: a ctx
// deadline maps to a virtual-cycle budget for the foreign run, so a
// runaway foreign function is deterministically preempted, rewound, and
// reported as a *BudgetError.
func (b *Bridge) CallContext(ctx context.Context, name string, args ...any) ([]any, error) {
	return b.b.CallContext(ctx, name, args...)
}

// Stats returns bridge accounting.
func (b *Bridge) Stats() BridgeStats { return b.b.Stats() }

// Domain returns the bridge's backing domain.
func (b *Bridge) Domain() *Domain { return b.d }

// Close tears down the bridge's domain.
func (b *Bridge) Close() error { return b.d.Close() }
