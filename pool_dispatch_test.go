package sdrad_test

import (
	"sync"
	"testing"
	"time"

	sdrad "repro"
)

// TestPoolDispatchBoundedImbalance is the regression test for the
// pick/runOn occupancy race: least-loaded selection used to read the
// inflight counters before the chosen worker's counter was incremented,
// so a burst of concurrent Dos could all observe the same idle worker
// and serialize on it. With the reservation folded into the pick
// (dispatch.Acquire), N concurrent calls against an N-worker pool must
// land on N distinct workers: each call holds its worker busy until all
// have entered, which is only possible with a perfectly balanced
// placement.
func TestPoolDispatchBoundedImbalance(t *testing.T) {
	const workers = 4
	pool, err := sdrad.NewPool(workers)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	entered := make(chan struct{}, workers)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := pool.Run(func(c *sdrad.Ctx) error {
				entered <- struct{}{}
				<-release
				return nil
			})
			if err != nil {
				t.Errorf("pool.Run: %v", err)
			}
		}()
	}

	// All four must enter concurrently. A pile-up (two calls on one
	// worker) serializes behind that worker's lock and can never reach
	// four simultaneous entries — surface that as a failure, not a hang.
	timeout := time.After(30 * time.Second)
	for got := 0; got < workers; got++ {
		select {
		case <-entered:
		case <-timeout:
			close(release)
			wg.Wait()
			t.Fatalf("only %d of %d concurrent Runs entered distinct workers (dispatch pile-up)", got, workers)
		}
	}
	close(release)
	wg.Wait()

	st := pool.Stats()
	for i, n := range st.Requests {
		if n != 1 {
			t.Errorf("worker %d served %d requests, want exactly 1", i, n)
		}
	}
}
