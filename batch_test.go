package sdrad_test

import (
	"context"
	"errors"
	"testing"

	sdrad "repro"
	"repro/internal/fault"
)

// cheapFn is a benign batched call: alloc, store, free.
func cheapFn(payload []byte) func(*sdrad.Ctx) error {
	return func(c *sdrad.Ctx) error {
		p := c.MustAlloc(len(payload))
		c.MustStore(p, payload)
		c.MustFree(p)
		return nil
	}
}

func TestPoolDoBatchAllCleanAmortizesEntries(t *testing.T) {
	pool, err := sdrad.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	const k = 8
	fns := make([]func(*sdrad.Ctx) error, k)
	for i := range fns {
		fns[i] = cheapFn([]byte("batched-call-payload"))
	}
	errs := pool.DoBatch(context.Background(), fns)
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	st := pool.DomainStats()
	if st.Entries != 1 {
		t.Errorf("batch of %d used %d domain entries, want 1 (amortized Enter)", k, st.Entries)
	}
	if st.CleanExits != 1 || st.Violations != 0 {
		t.Errorf("stats = %+v, want one clean exit, no violations", st)
	}
}

// TestPoolDoBatchViolationIsolation: a violation in the middle of a
// batch must not poison the other calls — they resolve exactly as if
// executed serially.
func TestPoolDoBatchViolationIsolation(t *testing.T) {
	pool, err := sdrad.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	const bad = 3
	fns := make([]func(*sdrad.Ctx) error, 8)
	for i := range fns {
		if i == bad {
			fns[i] = func(c *sdrad.Ctx) error {
				c.MustStore64(0xbad_0000, 1) // wild write: immediate trap
				return nil
			}
			continue
		}
		fns[i] = cheapFn([]byte("benign"))
	}
	errs := pool.DoBatch(context.Background(), fns)
	for i, err := range errs {
		if i == bad {
			if _, ok := sdrad.IsViolation(err); !ok {
				t.Errorf("call %d: %v, want ViolationError", i, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("call %d poisoned by call %d's violation: %v", i, bad, err)
		}
	}
}

// TestPoolDoBatchSweepDetectedFaultIsolation covers the hard
// attribution case: a use-after-free whose evidence only surfaces at a
// heap sweep (not at the faulting store). The whole batch replays
// serially, so the faulting call — and only the faulting call — reports
// the violation, with the same mechanism serial execution reports.
func TestPoolDoBatchSweepDetectedFaultIsolation(t *testing.T) {
	serialMech := func() string {
		pool, err := sdrad.NewPool(1)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = pool.Close() }()
		err = pool.Run(func(c *sdrad.Ctx) error {
			fault.Inject(c, fault.UseAfterFree, 0)
			return nil
		})
		v, ok := sdrad.IsViolation(err)
		if !ok {
			t.Fatalf("serial UAF = %v, want violation", err)
		}
		return v.Mechanism.String()
	}()

	pool, err := sdrad.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	const bad = 2
	fns := make([]func(*sdrad.Ctx) error, 6)
	for i := range fns {
		if i == bad {
			fns[i] = func(c *sdrad.Ctx) error {
				fault.Inject(c, fault.UseAfterFree, 0)
				return nil
			}
			continue
		}
		fns[i] = cheapFn([]byte("benign-after-uaf"))
	}
	errs := pool.DoBatch(context.Background(), fns)
	for i, err := range errs {
		if i == bad {
			v, ok := sdrad.IsViolation(err)
			if !ok {
				t.Fatalf("call %d: %v, want ViolationError", i, err)
			}
			if v.Mechanism.String() != serialMech {
				t.Errorf("batched mechanism %q != serial mechanism %q", v.Mechanism, serialMech)
			}
			continue
		}
		if err != nil {
			t.Errorf("call %d poisoned by sweep-detected UAF: %v", i, err)
		}
	}
}

// TestPoolDoBatchBudgetExhaustionIsolation is the batched
// budget-exhaustion regression test: a *BudgetError in call i of a
// batch must not poison calls i+1..K.
func TestPoolDoBatchBudgetExhaustionIsolation(t *testing.T) {
	pool, err := sdrad.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	const runaway = 2
	fns := make([]func(*sdrad.Ctx) error, 6)
	for i := range fns {
		if i == runaway {
			fns[i] = func(c *sdrad.Ctx) error {
				p := c.MustAlloc(64)
				for j := 0; j < 100_000; j++ {
					_ = c.MustLoad64(p) // burns far more than the budget
				}
				c.MustFree(p)
				return nil
			}
			continue
		}
		fns[i] = cheapFn([]byte("quick"))
	}
	errs := pool.DoBatch(context.Background(), fns, sdrad.WithCycleBudget(50_000))
	for i, err := range errs {
		if i == runaway {
			if _, ok := sdrad.IsBudget(err); !ok {
				t.Errorf("runaway call %d: %v, want BudgetError", i, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("call %d poisoned by call %d's budget exhaustion: %v", i, runaway, err)
		}
	}
	st := pool.DomainStats()
	if st.Preemptions == 0 {
		t.Error("no preemption recorded for the runaway call")
	}
}

// TestPoolDoBatchAppErrorTailReplay: an application error mid-batch
// commits the clean prefix and re-derives the tail serially.
func TestPoolDoBatchAppErrorTailReplay(t *testing.T) {
	pool, err := sdrad.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	appErr := errors.New("rejected payload")
	ran := make([]int, 6)
	fns := make([]func(*sdrad.Ctx) error, 6)
	for i := range fns {
		i := i
		fns[i] = func(c *sdrad.Ctx) error {
			ran[i]++
			if i == 3 {
				return appErr
			}
			p := c.MustAlloc(32)
			c.MustFree(p)
			return nil
		}
	}
	errs := pool.DoBatch(context.Background(), fns)
	for i, err := range errs {
		switch {
		case i == 3 && !errors.Is(err, appErr):
			t.Errorf("call 3 = %v, want application error", err)
		case i != 3 && err != nil:
			t.Errorf("call %d: %v", i, err)
		}
	}
	for i, n := range ran {
		switch {
		case i < 3 && n != 1:
			t.Errorf("clean-prefix call %d executed %d times, want 1", i, n)
		case i >= 3 && n != 1 && i != 3:
			t.Errorf("tail call %d executed %d times, want 1 (replayed once, not run in batch after the error)", i, n)
		}
	}
}

// TestPoolDoBatchMatchesSerial runs the same mixed workload through the
// serial Do path and through DoBatch and asserts identical outcome
// classification per call — the batched==serial contract the campaign
// oracle checks at scale.
func TestPoolDoBatchMatchesSerial(t *testing.T) {
	appErr := errors.New("app error")
	mix := []struct {
		name string
		fn   func(*sdrad.Ctx) error
	}{
		{"clean", cheapFn([]byte("a"))},
		{"uaf", func(c *sdrad.Ctx) error { fault.Inject(c, fault.UseAfterFree, 0); return nil }},
		{"clean2", cheapFn([]byte("bb"))},
		{"apperr", func(*sdrad.Ctx) error { return appErr }},
		{"overflow", func(c *sdrad.Ctx) error { fault.Inject(c, fault.HeapOverflow, 0); return nil }},
		{"clean3", cheapFn([]byte("ccc"))},
		{"crash", func(c *sdrad.Ctx) error { fault.Inject(c, fault.Crash, 0); return nil }},
		{"clean4", cheapFn([]byte("dddd"))},
	}

	classify := func(err error) string {
		switch {
		case err == nil:
			return "ok"
		case errors.Is(err, appErr):
			return "app"
		default:
			if v, ok := sdrad.IsViolation(err); ok {
				return "violation:" + v.Mechanism.String()
			}
			return "other:" + err.Error()
		}
	}

	serial := make([]string, len(mix))
	{
		pool, err := sdrad.NewPool(1)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range mix {
			serial[i] = classify(pool.Do(context.Background(), m.fn))
		}
		_ = pool.Close()
	}
	batched := make([]string, len(mix))
	{
		pool, err := sdrad.NewPool(1)
		if err != nil {
			t.Fatal(err)
		}
		fns := make([]func(*sdrad.Ctx) error, len(mix))
		for i, m := range mix {
			fns[i] = m.fn
		}
		for i, err := range pool.DoBatch(context.Background(), fns) {
			batched[i] = classify(err)
		}
		_ = pool.Close()
	}
	for i := range mix {
		if serial[i] != batched[i] {
			t.Errorf("call %d (%s): serial %q vs batched %q", i, mix[i].name, serial[i], batched[i])
		}
	}
}

// TestDomainDoBatchPersistentHeap: Domain batches keep Domain semantics
// — the heap persists across calls of the batch and across batches.
func TestDomainDoBatchPersistentHeap(t *testing.T) {
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()

	var addr sdrad.Addr
	errs := dom.DoBatch(context.Background(), []func(*sdrad.Ctx) error{
		func(c *sdrad.Ctx) error {
			addr = c.MustAlloc(16)
			c.MustStore(addr, []byte("persist-me-12345"))
			return nil
		},
		func(c *sdrad.Ctx) error {
			buf := make([]byte, 16)
			c.MustLoad(addr, buf) // call 0's allocation is visible
			if string(buf) != "persist-me-12345" {
				return errors.New("lost call 0's data inside the batch")
			}
			return nil
		},
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// A committed Domain batch does not discard: the data survives.
	got, err := dom.Read(addr, 16)
	if err != nil {
		t.Fatalf("Read after batch: %v", err)
	}
	if string(got) != "persist-me-12345" {
		t.Errorf("heap did not persist across a clean Domain batch: %q", got)
	}
}

// TestPoolDoBatchCancelledContext: calls under an already-cancelled
// context never enter a domain, like serial Do.
func TestPoolDoBatchCancelledContext(t *testing.T) {
	pool, err := sdrad.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs := pool.DoBatch(ctx, []func(*sdrad.Ctx) error{
		cheapFn([]byte("x")), cheapFn([]byte("y")),
	})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("call %d = %v, want context.Canceled", i, err)
		}
	}
	if st := pool.DomainStats(); st.Entries != 0 {
		t.Errorf("%d domain entries for cancelled batch, want 0", st.Entries)
	}
}

// TestPoolDoBatchWithFallback: per-call policy options survive the
// batch path — the fallback applies to the faulting call's replay only.
func TestPoolDoBatchWithFallback(t *testing.T) {
	pool, err := sdrad.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	fellBack := 0
	fns := []func(*sdrad.Ctx) error{
		cheapFn([]byte("a")),
		func(c *sdrad.Ctx) error { c.MustStore64(0, 1); return nil }, // null deref
		cheapFn([]byte("b")),
	}
	errs := pool.DoBatch(context.Background(), fns,
		sdrad.WithFallback(func(v *sdrad.ViolationError) error {
			fellBack++
			return nil // alternate action: degrade gracefully
		}))
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v (fallback should have absorbed the violation)", i, err)
		}
	}
	if fellBack != 1 {
		t.Errorf("fallback ran %d times, want exactly 1 (the faulting call)", fellBack)
	}
}

// TestDomainDoBatchAppErrorRunsOnce is the double-apply regression
// test: on a persistent (Domain) backend, a call that returns an
// application error after mutating domain state must NOT be replayed —
// its first execution already happened against exactly its serial heap
// state. Only the calls the early exit skipped re-derive serially.
func TestDomainDoBatchAppErrorRunsOnce(t *testing.T) {
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()

	appErr := errors.New("validation failed")
	var counter sdrad.Addr
	if err := dom.Run(func(c *sdrad.Ctx) error {
		counter = c.MustAlloc(8)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	bump := func(c *sdrad.Ctx) {
		c.MustStore64(counter, c.MustLoad64(counter)+1)
	}
	runs := make([]int, 4)
	errs := dom.DoBatch(context.Background(), []func(*sdrad.Ctx) error{
		func(c *sdrad.Ctx) error { runs[0]++; bump(c); return nil },
		func(c *sdrad.Ctx) error { runs[1]++; bump(c); return appErr },
		func(c *sdrad.Ctx) error { runs[2]++; bump(c); return nil },
		func(c *sdrad.Ctx) error { runs[3]++; bump(c); return nil },
	})
	if !errors.Is(errs[1], appErr) {
		t.Fatalf("call 1 = %v, want its application error", errs[1])
	}
	for _, i := range []int{0, 2, 3} {
		if errs[i] != nil {
			t.Errorf("call %d: %v", i, errs[i])
		}
	}
	for i, n := range runs {
		if n != 1 {
			t.Errorf("call %d executed %d times, want exactly 1", i, n)
		}
	}
	got, err := dom.Read(counter, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 {
		t.Errorf("counter = %d, want 4 (each call's in-domain effect applied once)", got[0])
	}
}
