// Command sdradlint runs the SDRaD invariant analyzers (wallclock,
// unchargedmem, detorder, errclass, docexport) over Go packages and
// reports findings in file:line:col form. It exits 0 when clean, 1 on
// findings, 2 on load or usage errors.
//
// Usage:
//
//	sdradlint [-analyzers a,b] [-list] [-json-out file] [packages...]
//
// Packages default to ./... in the current directory. -json-out writes
// the findings as a JSON array (empty on a clean run) for CI artifact
// upload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list analyzers and exit")
		names   = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		jsonOut = flag.String("json-out", "", "write findings as JSON to this file")
		dir     = flag.String("dir", ".", "directory to resolve packages from")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analysis.All()
	if *names != "" {
		suite = suite[:0]
		for _, n := range strings.Split(*names, ",") {
			a := analysis.ByName(strings.TrimSpace(n))
			if a == nil {
				fmt.Fprintf(os.Stderr, "sdradlint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	u, err := analysis.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdradlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(suite, u)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdradlint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut != "" {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		data, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdradlint: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sdradlint: %v\n", err)
			os.Exit(2)
		}
	}

	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sdradlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
