// Command benchjson runs the repository's E1–E8 benchmark suite (plus
// the ablations) with fixed flags and emits a machine-readable JSON
// report, so successive PRs can diff performance. A previous report can
// be embedded as the baseline:
//
//	go run ./cmd/benchjson -out BENCH_PR3.json -baseline BENCH_PR2.json
//
// The report records, per benchmark: iterations, ns/op, and every extra
// metric the benchmark reports (vops/s, B/op, ...). Wall-clock numbers
// measure the simulator's host-side speed; vops/s measures requests per
// second of simulated machine time (the paper-shaped metric, invariant
// under host-side optimization).
//
//lint:allow wallclock benchmark harness: host-side wall timings are the product here, not simulated state
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultBench covers the E1–E8 suite and the ablations.
const defaultBench = "E1|E2|E3|E4|E6|E7|E8|Ablation|PoolRoundTrip|FFICallRoundTrip"

// Result is one benchmark's parsed outcome.
type Result struct {
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	GeneratedUnix int64             `json:"generated_unix"`
	GoVersion     string            `json:"go_version"`
	CPU           string            `json:"cpu,omitempty"`
	BenchRegexp   string            `json:"bench_regexp"`
	BenchTime     string            `json:"bench_time"`
	Count         int               `json:"count"`
	Results       map[string]Result `json:"results"`
	// Baseline is a previous report (its own baseline stripped), embedded
	// verbatim for before/after diffing.
	Baseline json.RawMessage `json:"baseline,omitempty"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)
	cpuLine   = regexp.MustCompile(`^cpu:\s*(.*)$`)
	// metricPair matches "<value> <unit>" segments of a benchmark line.
	metricPair = regexp.MustCompile(`([0-9][0-9.e+\-]*)\s+([^\s]+)`)
)

// parseBenchOutput extracts results from `go test -bench` output. When a
// benchmark appears multiple times (-count > 1), the fastest ns/op run
// wins (the usual noise-floor convention).
func parseBenchOutput(out string) (map[string]Result, string) {
	results := make(map[string]Result)
	cpu := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if m := cpuLine.FindStringSubmatch(line); m != nil {
			cpu = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Iters: iters}
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			if pair[2] == "ns/op" {
				r.NsPerOp = v
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[pair[2]] = v
		}
		if prev, ok := results[name]; !ok || r.NsPerOp < prev.NsPerOp {
			results[name] = r
		}
	}
	return results, cpu
}

func run() error {
	var (
		bench     = flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value (e.g. 1s, 100x, 1x)")
		count     = flag.Int("count", 1, "go test -count value")
		outPath   = flag.String("out", "BENCH_PR3.json", "output JSON path")
		baseline  = flag.String("baseline", "", "previous report to embed as baseline (optional)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg}
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench: %w\n%s", err, out)
	}
	results, cpu := parseBenchOutput(string(out))
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results parsed from output:\n%s", out)
	}

	rep := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		CPU:           cpu,
		BenchRegexp:   *bench,
		BenchTime:     *benchtime,
		Count:         *count,
		Results:       results,
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		// Strip the baseline's own baseline so reports do not nest
		// unboundedly.
		var prev map[string]json.RawMessage
		if err := json.Unmarshal(raw, &prev); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		delete(prev, "baseline")
		flat, err := json.Marshal(prev)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		rep.Baseline = flat
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(results), *outPath)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
