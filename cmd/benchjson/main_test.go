package main

import "testing"

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE1KVSDRaD-8             850454          1554 ns/op        460913 vops/s
BenchmarkE1KVSDRaD-8             900000          1500 ns/op        460913 vops/s
BenchmarkAblationDiscardZeroing/zero=true/dirty=8-8   97687   3687 ns/op
BenchmarkE8Codec/raw/16B-8     12345678            95.31 ns/op     167.9 MB/s
PASS
ok      repro   11.109s
`

func TestParseBenchOutput(t *testing.T) {
	results, cpu := parseBenchOutput(sample)
	if cpu == "" {
		t.Error("cpu line not parsed")
	}
	kv, ok := results["BenchmarkE1KVSDRaD"]
	if !ok {
		t.Fatalf("E1KVSDRaD missing: %v", results)
	}
	// -count collapsing keeps the fastest run.
	if kv.NsPerOp != 1500 || kv.Iters != 900000 {
		t.Errorf("E1KVSDRaD = %+v, want fastest of the two runs", kv)
	}
	if kv.Metrics["vops/s"] != 460913 {
		t.Errorf("vops/s = %v", kv.Metrics)
	}
	abl, ok := results["BenchmarkAblationDiscardZeroing/zero=true/dirty=8"]
	if !ok || abl.NsPerOp != 3687 {
		t.Errorf("sub-benchmark with GOMAXPROCS suffix: %+v (ok=%v)", abl, ok)
	}
	codec, ok := results["BenchmarkE8Codec/raw/16B"]
	if !ok || codec.NsPerOp != 95.31 || codec.Metrics["MB/s"] != 167.9 {
		t.Errorf("fractional ns/op + MB/s: %+v (ok=%v)", codec, ok)
	}
	if len(results) != 3 {
		t.Errorf("parsed %d results, want 3", len(results))
	}
}
