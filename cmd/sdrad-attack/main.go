// Command sdrad-attack load-tests a running sdrad-kvd server over TCP
// with a mixed benign/malicious workload and reports the benign clients'
// experience — the live-network version of experiment E4.
//
// Usage:
//
//	sdrad-attack [-addr 127.0.0.1:11211] [-n 2000] [-every 50] [-clients 4]
//
// Run `sdrad-kvd` in one terminal (try both -mode=sdrad and
// -mode=native), then run sdrad-attack in another and compare the benign
// failure rates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/attackgen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "sdrad-kvd address")
	n := flag.Int("n", 2000, "total requests")
	every := flag.Int("every", 50, "one malicious request per N (0 disables attacks)")
	clients := flag.Int("clients", 4, "concurrent benign client connections")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	report, err := attackgen.Run(attackgen.Config{
		Addr:        *addr,
		Requests:    *n,
		AttackEvery: *every,
		Clients:     *clients,
		Seed:        *seed,
	})
	if err != nil {
		log.SetFlags(0)
		log.Fatalf("sdrad-attack: %v", err)
	}
	fmt.Print(report.String())
	if report.BenignFailures > 0 {
		os.Exit(1)
	}
}
