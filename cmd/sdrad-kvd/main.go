// Command sdrad-kvd is a resilient memcached-like server over TCP,
// demonstrating SDRaD containment end to end.
//
// It speaks a subset of the memcached text protocol (get/set/delete/
// stats/quit). Request handling runs inside per-connection SDRaD domains:
// a value whose payload starts with the attack marker "!!exploit" makes
// the parser trigger a heap overflow, which is contained — the connection
// gets SERVER_ERROR, the cache and every other connection keep working,
// and `stats` shows the contained_violations counter climbing. In
// -mode=native the same payload crashes the worker and the service drops
// requests for the modeled restart window.
//
// Request handling is sharded across -workers parallel supervisors, each
// its own simulated machine; keys map to shards by hash, so related
// requests serialize on one shard while the rest run concurrently.
// Concurrent connections pipeline through bounded per-shard submission
// queues that coalesce requests into batched domain executions;
// -max-inflight bounds the admitted backlog (overload answers
// SERVER_ERROR immediately) and -max-inflight=0 disables the async
// layer entirely (one domain entry per request, as before).
//
// With -data-dir the cache becomes durable: every committed batch is
// group-committed to a per-shard write-ahead log (one append — and with
// -fsync one fsync — per batch, not per request), periodic incremental
// snapshots bound replay time, and a restart recovers exactly the
// acknowledged writes. Leaving -data-dir unset keeps today's
// memory-only behavior, byte for byte.
//
// Usage:
//
//	sdrad-kvd [-addr 127.0.0.1:11211] [-mode sdrad|native] [-capacity 67108864] [-workers N] [-req-timeout 0] [-max-inflight 1024] [-max-batch 32]
//	          [-data-dir DIR] [-fsync] [-snapshot-every N]
//
// Try it:
//
//	printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 11211
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "listen address")
	mode := flag.String("mode", "sdrad", "resilience mode: sdrad or native")
	capacity := flag.Uint64("capacity", 64<<20, "cache capacity in bytes")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel supervisor shards (key-hashed)")
	reqTimeout := flag.Duration("req-timeout", 0, "per-request deadline, mapped to a deterministic virtual-cycle budget (0 = none)")
	maxInflight := flag.Int("max-inflight", 1024, "admission bound on queued+executing requests across all shards; overload answers SERVER_ERROR (0 = serial path, no batching)")
	maxBatch := flag.Int("max-batch", 32, "max pipelined requests coalesced into one batched domain execution")
	dataDir := flag.String("data-dir", "", "durability root: per-shard WAL + snapshots under this directory (empty = memory-only)")
	fsync := flag.Bool("fsync", true, "fsync the WAL on every group commit (only with -data-dir)")
	snapshotEvery := flag.Int("snapshot-every", 64, "take an incremental snapshot every N committed batches per shard (only with -data-dir; 0 = WAL only)")
	flag.Parse()

	var pcfg *kvstore.PersistConfig
	if *dataDir != "" {
		pcfg = &kvstore.PersistConfig{Dir: *dataDir, Fsync: *fsync, SnapshotEvery: *snapshotEvery}
	}
	if err := run(*addr, *mode, *capacity, *workers, *reqTimeout, *maxInflight, *maxBatch, pcfg); err != nil {
		log.SetFlags(0)
		log.Fatalf("sdrad-kvd: %v", err)
	}
}

func run(addr, modeName string, capacity uint64, workers int, reqTimeout time.Duration, maxInflight, maxBatch int, pcfg *kvstore.PersistConfig) error {
	var mode kvstore.Mode
	switch modeName {
	case "sdrad":
		mode = kvstore.ModeSDRaD
	case "native":
		mode = kvstore.ModeNative
	default:
		return fmt.Errorf("unknown mode %q (want sdrad or native)", modeName)
	}

	pool, err := kvstore.NewPool(core.DefaultConfig(), kvstore.ServerConfig{Mode: mode, Persist: pcfg}, workers, capacity)
	if err != nil {
		return err
	}
	if pcfg != nil {
		defer func() {
			if cerr := pool.Close(); cerr != nil {
				log.Printf("close pool: %v", cerr)
			}
		}()
		log.Printf("durability on (data-dir=%s, fsync=%v, snapshot-every=%d)", pcfg.Dir, pcfg.Fsync, pcfg.SnapshotEvery)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("sdrad-kvd listening on %s (mode=%s, capacity=%d, workers=%d)",
		ln.Addr(), mode, pool.Capacity(), pool.Workers())
	if eff := pool.Capacity(); eff != capacity {
		log.Printf("note: effective capacity %d differs from requested %d (capacity divides across %d shards, each floored at the %d-byte max item size)",
			eff, capacity, pool.Workers(), kvstore.MaxValueSize)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Print("shutting down")
		if cerr := ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			log.Printf("close listener: %v", cerr)
		}
	}()

	var srv *kvstore.NetServer
	if maxInflight > 0 {
		srv, err = kvstore.NewBatchedNetServerPool(pool, log.Default(), maxInflight, maxBatch)
		if err != nil {
			return err
		}
		defer srv.Close()
		log.Printf("async submission queues on (max-inflight=%d, max-batch=%d)", maxInflight, maxBatch)
	} else {
		srv = kvstore.NewNetServerPool(pool, log.Default())
	}
	srv.SetRequestTimeout(reqTimeout)
	return srv.Serve(ln)
}
