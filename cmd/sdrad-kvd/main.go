// Command sdrad-kvd is a resilient memcached-like server over TCP,
// demonstrating SDRaD containment end to end.
//
// It speaks a subset of the memcached text protocol (get/set/delete/
// stats/quit). Request handling runs inside per-connection SDRaD domains:
// a value whose payload starts with the attack marker "!!exploit" makes
// the parser trigger a heap overflow, which is contained — the connection
// gets SERVER_ERROR, the cache and every other connection keep working,
// and `stats` shows the contained_violations counter climbing. In
// -mode=native the same payload crashes the worker and the service drops
// requests for the modeled restart window.
//
// Usage:
//
//	sdrad-kvd [-addr 127.0.0.1:11211] [-mode sdrad|native] [-capacity 67108864]
//
// Try it:
//
//	printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 11211
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/kvstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "listen address")
	mode := flag.String("mode", "sdrad", "resilience mode: sdrad or native")
	capacity := flag.Uint64("capacity", 64<<20, "cache capacity in bytes")
	flag.Parse()

	if err := run(*addr, *mode, *capacity); err != nil {
		log.SetFlags(0)
		log.Fatalf("sdrad-kvd: %v", err)
	}
}

func run(addr, modeName string, capacity uint64) error {
	var mode kvstore.Mode
	switch modeName {
	case "sdrad":
		mode = kvstore.ModeSDRaD
	case "native":
		mode = kvstore.ModeNative
	default:
		return fmt.Errorf("unknown mode %q (want sdrad or native)", modeName)
	}

	sys := core.NewSystem(core.DefaultConfig())
	cache, err := kvstore.NewCache(sys, 1, capacity)
	if err != nil {
		return err
	}
	srv, err := kvstore.NewServer(sys, cache, kvstore.ServerConfig{Mode: mode})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("sdrad-kvd listening on %s (mode=%s, capacity=%d)", ln.Addr(), mode, capacity)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Print("shutting down")
		if cerr := ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			log.Printf("close listener: %v", cerr)
		}
	}()

	return kvstore.NewNetServer(srv, log.Default()).Serve(ln)
}
