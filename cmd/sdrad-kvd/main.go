// Command sdrad-kvd is a resilient memcached-like server over TCP,
// demonstrating SDRaD containment end to end.
//
// It speaks a subset of the memcached text protocol (get/set/delete/
// stats/quit). Request handling runs inside per-connection SDRaD domains:
// a value whose payload starts with the attack marker "!!exploit" makes
// the parser trigger a heap overflow, which is contained — the connection
// gets SERVER_ERROR, the cache and every other connection keep working,
// and `stats` shows the contained_violations counter climbing. In
// -mode=native the same payload crashes the worker and the service drops
// requests for the modeled restart window.
//
// Request handling is sharded across -workers parallel supervisors, each
// its own simulated machine; keys map to shards by hash, so related
// requests serialize on one shard while the rest run concurrently.
// Concurrent connections pipeline through bounded per-shard submission
// queues that coalesce requests into batched domain executions;
// -max-inflight bounds the admitted backlog (overload answers
// SERVER_ERROR immediately) and -max-inflight=0 disables the async
// layer entirely (one domain entry per request, as before).
//
// With -data-dir the cache becomes durable: every committed batch is
// group-committed to a per-shard write-ahead log (one append — and with
// -fsync one fsync — per batch, not per request), periodic incremental
// snapshots bound replay time, and a restart recovers exactly the
// acknowledged writes. Leaving -data-dir unset keeps today's
// memory-only behavior, byte for byte.
//
// With -tenants FILE the gateway tier comes on: data commands need a
// prior "auth <token>" on the connection (tokens from the file,
// "<tenant> <token>" per line), per-tenant token buckets and inflight
// quotas answer SERVER_ERROR with a deterministic retry hint, repeat
// offenders are quarantined, and the "health" command reports shard +
// tenant state. SIGINT/SIGTERM drains gracefully: admission stops,
// queued requests finish, the WAL commits, a final snapshot lands, and
// no acknowledged write is lost.
//
// With -elastic the per-shard parser worker-domain sets autoscale
// between -min-workers and -max-workers: the set doubles when the
// submission queues back up and halves again after a sustained idle
// stretch (requires the batched path, -max-inflight > 0).
//
// Usage:
//
//	sdrad-kvd [-addr 127.0.0.1:11211] [-mode sdrad|native] [-capacity 67108864] [-workers N] [-req-timeout 0] [-max-inflight 1024] [-max-batch 32]
//	          [-data-dir DIR] [-fsync] [-snapshot-every N]
//	          [-tenants FILE] [-tenant-burst 8] [-tenant-refill-every 2] [-tenant-max-inflight 64] [-quarantine-after 3]
//	          [-elastic] [-min-workers 1] [-max-workers 8]
//
// Try it:
//
//	printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 11211
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/kvstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "listen address")
	mode := flag.String("mode", "sdrad", "resilience mode: sdrad or native")
	capacity := flag.Uint64("capacity", 64<<20, "cache capacity in bytes")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel supervisor shards (key-hashed)")
	reqTimeout := flag.Duration("req-timeout", 0, "per-request deadline, mapped to a deterministic virtual-cycle budget (0 = none)")
	maxInflight := flag.Int("max-inflight", 1024, "admission bound on queued+executing requests across all shards; overload answers SERVER_ERROR (0 = serial path, no batching)")
	maxBatch := flag.Int("max-batch", 32, "max pipelined requests coalesced into one batched domain execution")
	dataDir := flag.String("data-dir", "", "durability root: per-shard WAL + snapshots under this directory (empty = memory-only)")
	fsync := flag.Bool("fsync", true, "fsync the WAL on every group commit (only with -data-dir)")
	snapshotEvery := flag.Int("snapshot-every", 64, "take an incremental snapshot every N committed batches per shard (only with -data-dir; 0 = WAL only)")
	tenants := flag.String("tenants", "", "tenant table file (\"<tenant> <token>\" per line); enables the gateway tier")
	tenantBurst := flag.Int("tenant-burst", 8, "per-tenant token-bucket burst (with -tenants)")
	tenantRefill := flag.Uint64("tenant-refill-every", 2, "grant one admission token per N tenant arrivals (with -tenants)")
	tenantInflight := flag.Int("tenant-max-inflight", 64, "per-tenant inflight quota (with -tenants)")
	quarantineAfter := flag.Int("quarantine-after", 3, "detections in the sliding window that quarantine a tenant (with -tenants; -1 disables)")
	elastic := flag.Bool("elastic", false, "autoscale the per-shard parser worker domains between -min-workers and -max-workers from queue backlog (needs the batched path, -max-inflight > 0)")
	minWorkers := flag.Int("min-workers", 1, "elastic lower bound on parser workers per shard (with -elastic)")
	maxWorkers := flag.Int("max-workers", 8, "elastic upper bound on parser workers per shard (with -elastic)")
	flag.Parse()

	var pcfg *kvstore.PersistConfig
	if *dataDir != "" {
		pcfg = &kvstore.PersistConfig{Dir: *dataDir, Fsync: *fsync, SnapshotEvery: *snapshotEvery}
	}
	var gcfg *gateway.Config
	if *tenants != "" {
		gcfg = &gateway.Config{
			Limits:          gateway.Limits{Burst: *tenantBurst, RefillEvery: *tenantRefill, MaxInflight: *tenantInflight},
			QuarantineAfter: *quarantineAfter,
		}
	}
	var ecfg *elasticBounds
	if *elastic {
		ecfg = &elasticBounds{min: *minWorkers, max: *maxWorkers}
	}
	if err := run(*addr, *mode, *capacity, *workers, *reqTimeout, *maxInflight, *maxBatch, pcfg, *tenants, gcfg, ecfg); err != nil {
		log.SetFlags(0)
		log.Fatalf("sdrad-kvd: %v", err)
	}
}

// elasticBounds carries the -elastic autoscaling bounds.
type elasticBounds struct{ min, max int }

// loadGateway parses the tenant table file and builds the gateway.
func loadGateway(path string, gcfg *gateway.Config) (*gateway.Gateway, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			log.Printf("close tenants file: %v", cerr)
		}
	}()
	table, err := gateway.ParseTable(f)
	if err != nil {
		return nil, err
	}
	gcfg.Table = table
	return gateway.New(*gcfg)
}

func run(addr, modeName string, capacity uint64, workers int, reqTimeout time.Duration, maxInflight, maxBatch int, pcfg *kvstore.PersistConfig, tenantsFile string, gcfg *gateway.Config, ecfg *elasticBounds) error {
	var mode kvstore.Mode
	switch modeName {
	case "sdrad":
		mode = kvstore.ModeSDRaD
	case "native":
		mode = kvstore.ModeNative
	default:
		return fmt.Errorf("unknown mode %q (want sdrad or native)", modeName)
	}

	pool, err := kvstore.NewPool(core.DefaultConfig(), kvstore.ServerConfig{Mode: mode, Persist: pcfg}, workers, capacity)
	if err != nil {
		return err
	}
	if pcfg != nil {
		defer func() {
			if cerr := pool.Close(); cerr != nil {
				log.Printf("close pool: %v", cerr)
			}
		}()
		log.Printf("durability on (data-dir=%s, fsync=%v, snapshot-every=%d)", pcfg.Dir, pcfg.Fsync, pcfg.SnapshotEvery)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("sdrad-kvd listening on %s (mode=%s, capacity=%d, workers=%d)",
		ln.Addr(), mode, pool.Capacity(), pool.Workers())
	if eff := pool.Capacity(); eff != capacity {
		log.Printf("note: effective capacity %d differs from requested %d (capacity divides across %d shards, each floored at the %d-byte max item size)",
			eff, capacity, pool.Workers(), kvstore.MaxValueSize)
	}

	var srv *kvstore.NetServer
	if maxInflight > 0 {
		srv, err = kvstore.NewBatchedNetServerPool(pool, log.Default(), maxInflight, maxBatch)
		if err != nil {
			return err
		}
		log.Printf("async submission queues on (max-inflight=%d, max-batch=%d)", maxInflight, maxBatch)
	} else {
		srv = kvstore.NewNetServerPool(pool, log.Default())
	}
	if ecfg != nil {
		if err := srv.EnableElastic(ecfg.min, ecfg.max); err != nil {
			return err
		}
		log.Printf("elastic parser workers on (min=%d, max=%d per shard)", ecfg.min, ecfg.max)
	}
	// NetServer.Close closes the pool too (idempotently), so it subsumes
	// the pool's own deferred close above.
	defer func() {
		if cerr := srv.Close(); cerr != nil {
			log.Printf("close server: %v", cerr)
		}
	}()
	if gcfg != nil {
		gw, gerr := loadGateway(tenantsFile, gcfg)
		if gerr != nil {
			return gerr
		}
		srv.SetGateway(gw)
		log.Printf("gateway tier on (tenants=%s): auth command, per-tenant limits, health command", tenantsFile)
	}
	srv.SetRequestTimeout(reqTimeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Print("draining")
		// Graceful drain: stop admission, flush queues (every ack made
		// durable by its batch's WAL commit), final snapshot, release
		// stores — then close the listener to let Serve return.
		if derr := srv.Drain(); derr != nil {
			log.Printf("drain: %v", derr)
		}
		if cerr := ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			log.Printf("close listener: %v", cerr)
		}
	}()
	return srv.Serve(ln)
}
