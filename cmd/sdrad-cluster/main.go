// Command sdrad-cluster fronts a fleet of in-process sdrad-kvd shard
// nodes with a cluster router: keys place onto nodes by rendezvous
// hashing over 64 virtual slots, acked mutations replicate
// synchronously to each slot's -replicas extra holders, and node health
// is tracked by arrival-counted leases (-lease-cycles) — the same
// deterministic membership clock the differential oracle replays.
//
// It speaks the same memcached text subset as sdrad-kvd
// (get/set/delete/stats/scan/quit) plus two cluster extensions on the
// health command: per-node lease state and placement epoch.
//
// Usage:
//
//	sdrad-cluster [-addr 127.0.0.1:11311] [-nodes 3] [-replicas 1]
//	              [-lease-cycles 8] [-shards-per-node 1]
//	              [-capacity 67108864] [-read-replicas]
//
// Try it:
//
//	printf 'set k 0 0 5\r\nhello\r\nget k\r\nhealth\r\nquit\r\n' | nc 127.0.0.1 11311
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/lifecycle"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11311", "listen address")
	nodes := flag.Int("nodes", 3, "shard node count (node ids 0..N-1)")
	replicas := flag.Int("replicas", 1, "extra synchronous copies per slot beyond the primary (clamped to nodes-1)")
	leaseCycles := flag.Uint64("lease-cycles", cluster.DefaultLeaseCycles, "membership lease in arrival-counted cycles (health degrades past 1x, dies past 2x)")
	shardsPerNode := flag.Int("shards-per-node", 1, "local kvstore shards inside each node")
	capacity := flag.Uint64("capacity", 64<<20, "per-node cache capacity in bytes")
	readReplicas := flag.Bool("read-replicas", false, "round-robin GETs across a slot's holders instead of pinning to the primary")
	flag.Parse()

	if err := run(*addr, cluster.RouterConfig{
		Nodes:         *nodes,
		Replicas:      *replicas,
		LeaseCycles:   *leaseCycles,
		Sys:           core.DefaultConfig(),
		Server:        kvstore.ServerConfig{Mode: kvstore.ModeSDRaD, InterArrival: time.Microsecond},
		ShardsPerNode: *shardsPerNode,
		Capacity:      *capacity,
		ReadReplicas:  *readReplicas,
	}); err != nil {
		log.SetFlags(0)
		log.Fatalf("sdrad-cluster: %v", err)
	}
}

func run(addr string, cfg cluster.RouterConfig) error {
	router, err := cluster.NewRouter(cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := router.Close(); cerr != nil {
			log.Printf("close router: %v", cerr)
		}
	}()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("sdrad-cluster listening on %s (nodes=%d, replicas=%d, lease-cycles=%d, read-replicas=%v)",
		ln.Addr(), cfg.Nodes, cfg.Replicas, cfg.LeaseCycles, cfg.ReadReplicas)

	var draining atomic.Bool
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Print("draining")
		draining.Store(true)
		if derr := router.Drain(); derr != nil {
			log.Printf("drain: %v", derr)
		}
		if cerr := ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			log.Printf("close listener: %v", cerr)
		}
	}()

	var wg sync.WaitGroup
	var connID int
	for {
		conn, aerr := ln.Accept()
		if aerr != nil {
			wg.Wait()
			if draining.Load() || errors.Is(aerr, net.ErrClosed) {
				return nil
			}
			return aerr
		}
		connID++
		wg.Add(1)
		go func(id int, c net.Conn) {
			defer wg.Done()
			defer func() {
				if cerr := c.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
					log.Printf("conn %d: close: %v", id, cerr)
				}
			}()
			serveConn(router, id, c)
		}(connID, conn)
	}
}

// serveConn runs the text protocol loop for one connection against the
// cluster router.
func serveConn(router *cluster.Router, id int, conn io.ReadWriter) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	defer func() {
		if err := w.Flush(); err != nil {
			log.Printf("conn %d: flush: %v", id, err)
		}
	}()
	for {
		cmd, err := kvstore.ReadCommand(r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			if errors.Is(err, kvstore.ErrProtocol) {
				fmt.Fprintf(w, "CLIENT_ERROR %s\r\n", err)
				if ferr := w.Flush(); ferr != nil {
					return
				}
				continue
			}
			return
		}
		switch {
		case cmd.Quit:
			return
		case cmd.Stats:
			err = writeClusterStats(w, router)
		case cmd.Health:
			err = writeClusterHealth(w, router)
		case cmd.Auth:
			_, err = io.WriteString(w, "CLIENT_ERROR auth not supported by the cluster router\r\n")
		case cmd.Scan:
			var res kvstore.ScanResult
			res, err = router.Scan(cmd.ScanPrefix, cmd.ScanCursor, cmd.ScanLimit)
			if err != nil {
				err = writeServerError(w, err)
			} else {
				err = kvstore.WriteScanResponse(w, res)
			}
		default:
			resp := router.HandleContext(context.Background(), id, cmd.Req)
			if resp.Err != nil {
				err = writeServerError(w, resp.Err)
			} else {
				err = kvstore.WriteResponse(w, cmd.Req, resp)
			}
		}
		if err != nil {
			log.Printf("conn %d: write: %v", id, err)
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// writeServerError renders an error line; unavailable slots carry the
// router's deterministic retry hint so clients can back off precisely.
func writeServerError(w io.Writer, err error) error {
	var ue *cluster.UnavailableError
	if errors.As(err, &ue) {
		_, werr := fmt.Fprintf(w, "SERVER_ERROR %s (retry-cycles %d)\r\n", ue, ue.RetryCycles)
		return werr
	}
	_, werr := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", err)
	return werr
}

// writeClusterStats renders the stats command: aggregate request
// accounting plus the cluster counters.
func writeClusterStats(w io.Writer, router *cluster.Router) error {
	st := router.Stats()
	rows := []struct {
		k string
		v uint64
	}{
		{"cmd_total", st.Requests},
		{"contained_violations", st.Violations},
		{"crashes", st.Crashes},
		{"dropped", st.Dropped},
		{"preempted", st.Preempted},
		{"cluster_nodes", uint64(len(router.NodeIDs()))},
		{"cluster_epoch", router.Epoch()},
		{"cluster_dispatched", router.Dispatched()},
		{"cluster_handoffs", router.Handoffs()},
		{"cluster_unavailable", router.Unavailable()},
		{"cluster_virtual_ns", uint64(router.VirtualTime())},
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "STAT %s %d\r\n", row.k, row.v); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "END\r\n")
	return err
}

// writeClusterHealth renders the health command: one STAT line per node
// with its lease-derived state and age, plus the placement epoch.
func writeClusterHealth(w io.Writer, router *cluster.Router) error {
	if _, err := fmt.Fprintf(w, "STAT cluster_epoch %d\r\n", router.Epoch()); err != nil {
		return err
	}
	for _, m := range router.Members() {
		state := "healthy"
		switch m.State {
		case lifecycle.StateDegraded:
			state = "degraded"
		case lifecycle.StateStopped:
			state = "dead"
		}
		if _, err := fmt.Fprintf(w, "STAT node%d %s age=%d\r\n", m.ID, state, m.Age); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "END\r\n")
	return err
}
