package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if code := run([]string{"-quick", "-exp", "E3"}); code != 0 {
		t.Errorf("exit code = %d", code)
	}
}

func TestRunMarkdown(t *testing.T) {
	if code := run([]string{"-quick", "-exp", "E5", "-markdown"}); code != 0 {
		t.Errorf("exit code = %d", code)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if code := run([]string{"-exp", "E99"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}

func TestRunLowercaseIDsAccepted(t *testing.T) {
	if code := run([]string{"-quick", "-exp", "e6, a1"}); code != 0 {
		t.Errorf("exit code = %d", code)
	}
}
