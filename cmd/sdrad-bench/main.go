// Command sdrad-bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	sdrad-bench [-exp E1,E4] [-quick] [-seed N] [-markdown]
//
// With no -exp flag every experiment (E1..E8) runs in order. Each
// experiment prints the paper claim it checks followed by the
// regenerated table; see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured records.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sdrad-bench", flag.ContinueOnError)
	expFlag := fs.String("exp", "", "comma-separated experiment ids (default: all of E1..E8)")
	quick := fs.Bool("quick", false, "run reduced-size experiments (same shapes, ~10x faster)")
	seed := fs.Uint64("seed", 1, "workload seed")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	runner := exp.Runner{Quick: *quick, Seed: *seed}
	ids := exp.IDs()
	if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(strings.ToUpper(ids[i]))
		}
	}

	for _, id := range ids {
		res, err := runner.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdrad-bench: %v\n", err)
			return 1
		}
		fmt.Printf("[%s] claim: %s\n\n", res.ID, res.Claim)
		if *markdown {
			fmt.Println(res.Table.Markdown())
		} else {
			fmt.Println(res.Table.String())
		}
		if res.Notes != "" {
			fmt.Printf("note: %s\n", res.Notes)
		}
		checks := exp.Verify(res)
		fail := 0
		for _, c := range checks {
			if !c.Pass {
				fail++
				fmt.Printf("shape FAIL: %s (%s)\n", c.Name, c.Detail)
			}
		}
		if fail == 0 {
			fmt.Printf("shape: %d/%d checks pass\n\n", len(checks), len(checks))
		} else {
			fmt.Println()
		}
	}
	return 0
}
