// Command sdrad-httpd is a resilient static web server over TCP,
// demonstrating per-request domain isolation for an NGINX-style workload.
//
// Requests are parsed inside SDRaD domains. Sending the "x-exploit"
// header triggers the injected parser bug: in sdrad mode the request gets
// a 400 and the server keeps running; in native mode the worker crashes
// and the service returns 503 for the modeled restart window.
//
// Requests are dispatched least-loaded across -workers parallel
// supervisors, each its own simulated machine with private parsing
// domains. Concurrent connections pipeline through bounded per-worker
// submission queues that coalesce requests into batched domain
// executions; -max-inflight bounds the admitted backlog (overload
// answers 503 immediately) and -max-inflight=0 disables the async layer
// entirely (one domain entry per request, as before).
//
// With -tenants FILE the gateway tier comes on: every request needs an
// Authorization: Bearer token from the file ("<tenant> <token>" per
// line), per-tenant token buckets and inflight quotas answer 429 with a
// deterministic Retry-After, repeat offenders are quarantined, and the
// /healthz and /drainz lifecycle endpoints come alive (SIGINT/SIGTERM
// also drains gracefully).
//
// With -elastic the per-worker parsing-domain sets autoscale between
// -min-workers and -max-workers: the set doubles when the submission
// queues back up and halves again after a sustained idle stretch
// (requires the batched path, -max-inflight > 0).
//
// Usage:
//
//	sdrad-httpd [-addr 127.0.0.1:8080] [-mode sdrad|native] [-workers N] [-req-timeout 0] [-max-inflight 1024] [-max-batch 32]
//	            [-tenants FILE] [-tenant-burst 8] [-tenant-refill-every 2] [-tenant-max-inflight 64] [-quarantine-after 3]
//	            [-elastic] [-min-workers 1] [-max-workers 8]
//
// Try it:
//
//	curl -i http://127.0.0.1:8080/
//	curl -i -H 'x-exploit: 1' http://127.0.0.1:8080/
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/httpd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	mode := flag.String("mode", "sdrad", "resilience mode: sdrad or native")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel supervisor shards (least-loaded dispatch)")
	reqTimeout := flag.Duration("req-timeout", 0, "per-request deadline, mapped to a deterministic virtual-cycle budget (0 = none)")
	maxInflight := flag.Int("max-inflight", 1024, "admission bound on queued+executing requests across all workers; overload answers 503 (0 = serial path, no batching)")
	maxBatch := flag.Int("max-batch", 32, "max pipelined requests coalesced into one batched domain execution")
	tenants := flag.String("tenants", "", "tenant table file (\"<tenant> <token>\" per line); enables the gateway tier")
	tenantBurst := flag.Int("tenant-burst", 8, "per-tenant token-bucket burst (with -tenants)")
	tenantRefill := flag.Uint64("tenant-refill-every", 2, "grant one admission token per N tenant arrivals (with -tenants)")
	tenantInflight := flag.Int("tenant-max-inflight", 64, "per-tenant inflight quota (with -tenants)")
	quarantineAfter := flag.Int("quarantine-after", 3, "detections in the sliding window that quarantine a tenant (with -tenants; -1 disables)")
	elastic := flag.Bool("elastic", false, "autoscale the per-worker parsing domains between -min-workers and -max-workers from queue backlog (needs the batched path, -max-inflight > 0)")
	minWorkers := flag.Int("min-workers", 1, "elastic lower bound on parsing domains per worker (with -elastic)")
	maxWorkers := flag.Int("max-workers", 8, "elastic upper bound on parsing domains per worker (with -elastic)")
	flag.Parse()

	var gcfg *gateway.Config
	if *tenants != "" {
		gcfg = &gateway.Config{
			Limits:          gateway.Limits{Burst: *tenantBurst, RefillEvery: *tenantRefill, MaxInflight: *tenantInflight},
			QuarantineAfter: *quarantineAfter,
		}
	}
	var ecfg *elasticBounds
	if *elastic {
		ecfg = &elasticBounds{min: *minWorkers, max: *maxWorkers}
	}
	if err := run(*addr, *mode, *workers, *reqTimeout, *maxInflight, *maxBatch, *tenants, gcfg, ecfg); err != nil {
		log.SetFlags(0)
		log.Fatalf("sdrad-httpd: %v", err)
	}
}

// elasticBounds carries the -elastic autoscaling bounds.
type elasticBounds struct{ min, max int }

// loadGateway parses the tenant table file and builds the gateway.
func loadGateway(path string, gcfg *gateway.Config) (*gateway.Gateway, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			log.Printf("close tenants file: %v", cerr)
		}
	}()
	table, err := gateway.ParseTable(f)
	if err != nil {
		return nil, err
	}
	gcfg.Table = table
	return gateway.New(*gcfg)
}

func run(addr, modeName string, workers int, reqTimeout time.Duration, maxInflight, maxBatch int, tenantsFile string, gcfg *gateway.Config, ecfg *elasticBounds) error {
	var mode httpd.Mode
	switch modeName {
	case "sdrad":
		mode = httpd.ModeSDRaD
	case "native":
		mode = httpd.ModeNative
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}

	pool, err := httpd.NewPool(core.DefaultConfig(), httpd.Config{Mode: mode}, workers)
	if err != nil {
		return err
	}
	pool.HandleFunc("/", []byte("<html><body><h1>sdrad-httpd</h1><p>resilient static server</p></body></html>\n"))
	pool.HandleFunc("/health", []byte("ok\n"))

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("sdrad-httpd listening on %s (mode=%s, workers=%d)", ln.Addr(), mode, pool.Workers())

	var srv *httpd.NetServer
	if maxInflight > 0 {
		srv, err = httpd.NewBatchedNetServerPool(pool, log.Default(), maxInflight, maxBatch)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := srv.Close(); cerr != nil {
				log.Printf("close server: %v", cerr)
			}
		}()
		log.Printf("async submission queues on (max-inflight=%d, max-batch=%d)", maxInflight, maxBatch)
	} else {
		srv = httpd.NewNetServerPool(pool, log.Default())
	}
	if ecfg != nil {
		if err := srv.EnableElastic(ecfg.min, ecfg.max); err != nil {
			return err
		}
		log.Printf("elastic parsing domains on (min=%d, max=%d per worker)", ecfg.min, ecfg.max)
	}
	if gcfg != nil {
		gw, gerr := loadGateway(tenantsFile, gcfg)
		if gerr != nil {
			return gerr
		}
		srv.SetGateway(gw)
		log.Printf("gateway tier on (tenants=%s): bearer auth, per-tenant limits, /healthz, /drainz", tenantsFile)
	}
	srv.SetRequestTimeout(reqTimeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Print("draining")
		if derr := srv.Drain(); derr != nil {
			log.Printf("drain: %v", derr)
		}
		if cerr := ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			log.Printf("close listener: %v", cerr)
		}
	}()
	return srv.Serve(ln)
}
