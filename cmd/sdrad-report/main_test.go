package main

import (
	"strings"
	"testing"

	"repro/internal/exp"
)

func TestBuildReport(t *testing.T) {
	report, err := build(exp.Runner{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# EXPERIMENTS",
		"## E1", "## E2", "## E3", "## E4",
		"## E5", "## E6", "## E7", "## E8",
		"## A1", "## A2", "## A3",
		"quick, seed 1",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(report) < 2000 {
		t.Errorf("report suspiciously short: %d bytes", len(report))
	}
}
