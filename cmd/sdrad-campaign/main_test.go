package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs main's run() with stdout redirected to a pipe-backed
// file and returns (exit code, output).
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, f)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out)
}

func TestRunIsDeterministic(t *testing.T) {
	args := []string{"-seed", "42", "-requests", "40", "-json"}
	code1, out1 := capture(t, args...)
	code2, out2 := capture(t, args...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exit codes %d, %d", code1, code2)
	}
	if out1 != out2 {
		t.Fatal("same flags produced different output")
	}
	if !strings.Contains(out1, `"survivor_digest"`) {
		t.Error("JSON trace missing survivor digests")
	}
}

func TestSummaryOutput(t *testing.T) {
	code, out := capture(t, "-seed", "7", "-requests", "30", "-scenarios", "kv-pool-mixed,kv-pool-benign")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"campaign seed=7", "kv-pool-mixed", "kv-pool-benign", "digest="} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q in:\n%s", want, out)
		}
	}
}

func TestListScenarios(t *testing.T) {
	code, out := capture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"kv-pool-mixed", "http-domain-benign", "ffi-bridge-binary", "attack 1/", "benign"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	code, _ := capture(t, "-scenarios", "no-such-scenario")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}

func TestGatewaySummaryOutput(t *testing.T) {
	code, out := capture(t, "-seed", "5", "-requests", "40",
		"-scenarios", "kv-pool-benign", "-gateway", "gw-attack-tenants")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"gateway gw-attack-tenants", "steady", "attacker", "hostile"} {
		if !strings.Contains(out, want) {
			t.Errorf("gateway summary missing %q in:\n%s", want, out)
		}
	}
}

func TestGatewayListed(t *testing.T) {
	code, out := capture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "gw-noisy-neighbor") || !strings.Contains(out, "hostile") {
		t.Errorf("list missing gateway scenarios:\n%s", out)
	}
}

func TestUnknownGatewayScenarioFails(t *testing.T) {
	code, _ := capture(t, "-scenarios", "kv-pool-benign", "-gateway", "no-such-gateway")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}

func TestGatewayIsolationOracleWired(t *testing.T) {
	code, out := capture(t, "-seed", "11", "-requests", "40",
		"-scenarios", "kv-pool-benign", "-gateway", "gw-noisy-neighbor", "-oracles")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		`PASS oracle "isolation" scenario "gw-noisy-neighbor(w=1)"`,
		`PASS oracle "isolation(batch=32)" scenario "gw-noisy-neighbor(w=8)"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("oracle output missing %q in:\n%s", want, out)
		}
	}
}

func TestOutFileAndOracles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, out := capture(t, "-seed", "3", "-requests", "30",
		"-scenarios", "kv-pool-benign,ffi-pool-runaway", "-oracles", "-out", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"scenario": "kv-pool-benign"`) {
		t.Error("trace file missing scenario")
	}
	if !strings.Contains(out, "oracles: ") || strings.Contains(out, "FAILED") {
		t.Errorf("oracle output unexpected:\n%s", out)
	}
}
