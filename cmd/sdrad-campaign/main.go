// Command sdrad-campaign runs the deterministic resilience-campaign
// engine: seeded scenario schedules that mix benign kvstore/httpd/FFI
// traffic with injected memory-safety faults across the Domain, Pool,
// and Bridge backends, recording a structured outcome trace.
//
// Usage:
//
//	sdrad-campaign [-seed N] [-scenarios a,b|all] [-workers N]
//	               [-requests N] [-batch K] [-gateway a,b|all] [-json] [-oracles] [-cluster] [-list] [-out FILE]
//
// The trace is a pure function of the flags: the same invocation
// produces byte-identical output, which is the property the campaign's
// differential oracles (-oracles) verify — same-seed determinism,
// worker-count invariance (1/4/8), benign cycle parity, batched==serial
// outcome/digest equality at batch sizes 8 and 32, and crash recovery
// (a durable server killed mid-group-commit must recover exactly the
// acknowledged prefix, across worker counts 1/4/8 and batches 8/32).
// -batch K drives the campaign itself through the batched execution
// pipeline (coalesced domain entries on pool targets). -gateway runs
// the selected multi-tenant gateway scenarios (noisy neighbor, tenant
// attacks, mid-run drain, quarantine/probe) and, with -oracles, their
// isolation oracle: every benign tenant's outcomes and survivor digest
// must be byte-identical with and without the hostile co-tenant, across
// worker counts 1/4/8 serially and batch sizes 8/32. -cluster (with
// -oracles) adds the cluster==single-pool differential oracle: an
// N-node sharded cluster fed the same seeded schedule — through node
// crashes, rolling restarts, and partitions — must produce the same
// per-request outcomes and survivor digest as one pool, at node counts
// 1/2/4, serial and batched 8/32. Exit status is 1 if any oracle fails.
package main

import (
	"flag"
	"fmt"
	"os"

	sdrad "repro"
	"repro/internal/campaign"
	"repro/internal/campaign/scenarios"
	"repro/internal/cluster"
	"repro/internal/kvstore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("sdrad-campaign", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "campaign seed (same seed, same trace bytes)")
	list := fs.String("scenarios", "all", "comma-separated scenario names, or 'all'")
	workers := fs.Int("workers", 4, "isolated workers per scenario")
	requests := fs.Int("requests", 400, "requests per scenario")
	asJSON := fs.Bool("json", false, "emit the full JSON trace instead of the text summary")
	batch := fs.Int("batch", 0, "drive requests through the batched pipeline in waves of this size (0 = serial)")
	oracles := fs.Bool("oracles", false, "also run the differential oracles (same-seed, worker counts 1/4/8, benign parity, batched==serial, crash recovery, gateway isolation)")
	clusterOracle := fs.Bool("cluster", false, "with -oracles, also run the cluster==single-pool differential oracle (node counts 1/2/4, serial and batched 8/32, including node-crash, rolling-restart, and partition scenarios)")
	gatewayList := fs.String("gateway", "", "comma-separated gateway scenario names, or 'all' (empty = skip the gateway tier)")
	showList := fs.Bool("list", false, "list shipped scenarios and exit")
	out := fs.String("out", "", "also write the JSON trace to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *showList {
		for _, sc := range scenarios.All() {
			kind := "benign"
			if !sc.Benign() {
				kind = fmt.Sprintf("attack 1/%d", sc.AttackEvery)
			}
			fmt.Fprintf(stdout, "%-28s %-6s %-6s %s\n", sc.Name, sc.Workload, sc.Target, kind)
		}
		for _, sc := range scenarios.Gateway() {
			hostile := 0
			for _, t := range sc.Tenants {
				if t.Hostile {
					hostile++
				}
			}
			fmt.Fprintf(stdout, "%-28s %-6s %-6s gateway: %d tenants (%d hostile)\n",
				sc.Name, "multi", sc.Target, len(sc.Tenants), hostile)
		}
		return 0
	}

	scs, err := scenarios.Select(*list)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdrad-campaign: %v\n", err)
		return 2
	}
	cfg := campaign.Config{Seed: *seed, Workers: *workers, Requests: *requests, Scenarios: scs}

	var trace *campaign.Trace
	if *batch > 0 {
		trace, err = sdrad.RunCampaignBatched(cfg, *batch)
	} else {
		trace, err = sdrad.RunCampaign(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdrad-campaign: %v\n", err)
		return 1
	}
	blob, err := trace.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdrad-campaign: %v\n", err)
		return 1
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sdrad-campaign: %v\n", err)
			return 1
		}
	}
	if *asJSON {
		fmt.Fprintf(stdout, "%s\n", blob)
	} else {
		fmt.Fprint(stdout, trace.Summary())
	}

	// Gateway tier: run the selected multi-tenant scenarios at the
	// configured worker count and print their per-tenant summaries.
	var gscs []campaign.GatewayScenario
	if *gatewayList != "" {
		gscs, err = scenarios.SelectGateway(*gatewayList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdrad-campaign: %v\n", err)
			return 2
		}
		for _, gsc := range gscs {
			var gtr *campaign.GatewayTrace
			if *batch > 0 {
				gtr, err = sdrad.RunGatewayCampaignBatched(gsc, cfg, *batch)
			} else {
				gtr, err = sdrad.RunGatewayCampaign(gsc, cfg)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "sdrad-campaign: %v\n", err)
				return 1
			}
			fmt.Fprint(stdout, gtr.Summary())
		}
	}

	if !*oracles {
		return 0
	}
	var results []campaign.OracleResult
	if *batch > 0 {
		// The printed trace is batched; the oracle suite needs a serial
		// base (the same-seed check compares serial trace bytes).
		results, err = sdrad.CheckCampaignOracles(cfg, 1, 4, 8)
	} else {
		results, err = sdrad.CheckCampaignOraclesAgainst(trace, cfg, 1, 4, 8)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdrad-campaign: oracles: %v\n", err)
		return 1
	}
	// Crash-recovery oracle: seeded mid-commit kills over a durable
	// server, recovered state diffed against the acknowledged prefix,
	// across worker counts 1/4/8 and batch sizes 8/32.
	recDir, err := os.MkdirTemp("", "sdrad-recovery-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdrad-campaign: oracles: %v\n", err)
		return 1
	}
	defer func() {
		if rerr := os.RemoveAll(recDir); rerr != nil {
			fmt.Fprintf(os.Stderr, "sdrad-campaign: cleanup: %v\n", rerr)
		}
	}()
	recResults, err := campaign.CheckRecovery(
		&kvstore.RecoveryHarness{Dir: recDir}, *seed, *requests, nil, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdrad-campaign: oracles: %v\n", err)
		return 1
	}
	results = append(results, recResults...)
	// Gateway isolation oracle: benign tenants' outcomes and survivor
	// digests must be byte-identical with and without the hostile
	// co-tenant, serially at worker counts 1/4/8 and batched at 8/32.
	for _, gsc := range gscs {
		isoResults, err := sdrad.CheckGatewayIsolation(gsc, cfg, nil, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdrad-campaign: oracles: %v\n", err)
			return 1
		}
		results = append(results, isoResults...)
	}
	// Cluster differential oracle: an N-node cluster and a single pool
	// fed the same seeded schedule must produce identical per-request
	// outcomes and survivor digests — across node counts 1/2/4, serial
	// and batched 8/32, through node-crash, rolling-restart, and
	// partition membership schedules.
	if *clusterOracle {
		clResults, err := campaign.CheckCluster(&cluster.Harness{}, *seed, *requests, nil, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdrad-campaign: oracles: %v\n", err)
			return 1
		}
		results = append(results, clResults...)
	}
	failed := 0
	for _, r := range results {
		fmt.Fprintf(stdout, "%s\n", r)
		if !r.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(stdout, "oracles: %d/%d FAILED\n", failed, len(results))
		return 1
	}
	fmt.Fprintf(stdout, "oracles: %d/%d pass\n", len(results), len(results))
	return 0
}
