package sdrad

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
)

// This file implements Pool, the concurrency layer of the public API.
//
// A Supervisor simulates one single-core machine, so it and its domains
// must stay on one goroutine. Pool lifts that restriction the way a
// multi-socket deployment would: it owns N independent workers, each with
// a private Supervisor (its own simulated machine, PKU keyset, and
// virtual clock) and a warm, pre-initialized domain. Requests dispatch to
// the least-loaded worker (round-robin tiebreak), run in that worker's
// warm domain, and the domain is discarded on return, so every Run starts
// from pristine memory without paying domain init/deinit per request.

// ErrPoolClosed is returned by Run/RunOn after Close.
var ErrPoolClosed = errors.New("sdrad: pool is closed")

// poolWorker is one shard: a private simulated machine plus its warm
// domain. The mutex serializes all access to the worker's Supervisor,
// upholding the single-goroutine contract per shard.
type poolWorker struct {
	mu  sync.Mutex
	sup *Supervisor
	dom *Domain
	// inflight counts requests dispatched to this worker that have not
	// finished (including those waiting on mu); it drives least-loaded
	// dispatch and is read without the lock.
	inflight atomic.Int64
	requests atomic.Uint64
	// closedStats snapshots the warm domain's lifecycle counters just
	// before Close tears it down, so post-Close accounting (DomainStats)
	// reports the work done instead of silently reading zero. Written
	// and read under mu.
	closedStats      DomainStats
	closedStatsValid bool
}

// Pool executes isolated domains on N parallel workers. Unlike Supervisor
// and Domain, a Pool is safe for concurrent use by any number of
// goroutines. Create with NewPool.
type Pool struct {
	workers []*poolWorker
	rr      atomic.Uint64
	closed  atomic.Bool
}

// NewPool creates a pool of n workers (n <= 0 means runtime.NumCPU()),
// each owning a private Supervisor built with opts and one warm domain
// with the default configuration; use NewPoolWithDomain to size the
// warm domains.
func NewPool(n int, opts ...Option) (*Pool, error) {
	return NewPoolWithDomain(n, nil, opts...)
}

// testHookWorkerCreated, when non-nil, observes each worker as pool
// construction brings it up. It is a test seam: the partial-failure
// cleanup test uses it to reach workers that a failed NewPoolWithDomain
// never returns.
var testHookWorkerCreated func(i int, w *poolWorker)

// NewPoolWithDomain is NewPool with explicit configuration for the warm
// domain of every worker (heap pages, stack pages, ...). If any worker
// fails to initialize, the domains of the workers already brought up are
// closed before the error returns.
func NewPoolWithDomain(n int, domOpts []DomainOption, opts ...Option) (*Pool, error) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p := &Pool{workers: make([]*poolWorker, n)}
	for i := range p.workers {
		sup := New(opts...)
		dom, err := sup.NewDomain(domOpts...)
		if err != nil {
			for _, w := range p.workers[:i] {
				_ = w.dom.Close() //lint:errclass best-effort unwind; the construction failure is the error callers must see
			}
			return nil, fmt.Errorf("sdrad: pool worker %d: %w", i, err)
		}
		p.workers[i] = &poolWorker{sup: sup, dom: dom}
		if testHookWorkerCreated != nil {
			testHookWorkerCreated(i, p.workers[i])
		}
	}
	return p, nil
}

// Workers returns the number of parallel workers.
func (p *Pool) Workers() int { return len(p.workers) }

// pick chooses the least-loaded worker, breaking ties round-robin so
// idle workers rotate instead of piling onto worker 0, and reserves an
// inflight slot on the winner in the same atomic step. Reserving inside
// the pick (dispatch.Acquire) rather than later in runOn closes the
// window where a burst of concurrent Dos all observed the same idle
// worker and piled onto it; the caller owns the reservation and runOn
// releases it.
func (p *Pool) pick() int {
	return dispatch.Acquire(len(p.workers), int(p.rr.Add(1)-1), func(i int) *atomic.Int64 {
		return &p.workers[i].inflight
	})
}

// Do implements Runner: it executes fn inside a pristine isolated domain
// under the given per-call policy. Without WithWorker, every attempt
// dispatches to the least-loaded worker; WithWorker pins all attempts
// (including retries) to one worker, composing with WithFallback so an
// affinity-bound call still gets the paper's alternate action.
// Violations rewind and discard the worker's domain, exactly like
// Domain.Do; on every other return path the domain is discarded too, so
// state never leaks between calls.
func (p *Pool) Do(ctx context.Context, fn func(*Ctx) error, opts ...RunOption) error {
	set := applyRunOptions(opts)
	if p.closed.Load() {
		return ErrPoolClosed
	}
	hz := p.workers[0].sup.sys.Clock().Model().CPUHz
	return runPolicy(ctx, set, hz, func(budget uint64) (*core.System, core.UDI, error) {
		var idx int
		if set.hasWorker {
			idx = set.worker % len(p.workers)
			if idx < 0 {
				idx += len(p.workers)
			}
			p.workers[idx].inflight.Add(1)
		} else {
			idx = p.pick()
		}
		w := p.workers[idx]
		return w.sup.sys, w.dom.udi, p.runOn(idx, budget, fn)
	})
}

// runOn executes one attempt on worker idx with the given cycle budget,
// upholding the worker's single-goroutine contract and the discard-on-
// return invariant. The caller has already reserved the worker's
// inflight slot (pick for least-loaded dispatch, an explicit Add for
// pinned calls); runOn releases it.
func (p *Pool) runOn(idx int, budget uint64, fn func(*Ctx) error) error {
	w := p.workers[idx]
	defer w.inflight.Add(-1)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.requests.Add(1)
	return p.attemptLocked(w, budget, fn)
}

// attemptLocked is one domain entry plus the discard-on-return
// invariant, with worker w's lock already held (runOn for serial calls,
// execBatchOn for batch replays).
func (p *Pool) attemptLocked(w *poolWorker, budget uint64, fn func(*Ctx) error) error {
	if p.closed.Load() {
		return ErrPoolClosed
	}
	err := w.sup.sys.EnterWithBudget(w.dom.udi, budget, fn)
	// Discard-on-return: if the worker's own domain was rewound (by a
	// violation or a budget preemption), it was already discarded; every
	// other exit scrubs it here. The UDI check inside RewoundBy matters:
	// a nested or foreign domain's rewind error propagating through fn
	// does not rewind the worker domain, which must then still be
	// discarded.
	if !core.RewoundBy(err, w.sup.sys, w.dom.udi) {
		if derr := w.dom.Discard(); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// execBatchOn executes calls as one batch on worker idx under the
// replay rule of batch.go, returning the batch report and the virtual
// cycles the worker's machine spent on it. The caller has reserved the
// worker's inflight slot; execBatchOn releases it.
func (p *Pool) execBatchOn(idx int, calls []*batchCall) (batchReport, uint64) {
	w := p.workers[idx]
	defer w.inflight.Add(-1)
	w.mu.Lock()
	defer w.mu.Unlock()
	if p.closed.Load() {
		for _, c := range calls {
			c.err = ErrPoolClosed
		}
		return batchReport{}, 0
	}
	// Count only calls that will actually be attempted: a call whose
	// context is already done never enters a domain on the serial path
	// and is not a dispatched request here either.
	var attempted uint64
	for _, c := range calls {
		if c.ctx.Err() == nil {
			attempted++
		}
	}
	w.requests.Add(attempted)
	hz := w.sup.sys.Clock().Model().CPUHz
	b := &batchBackend{
		sys: w.sup.sys,
		udi: w.dom.udi,
		hz:  hz,
		enter: func(budget uint64, fn func(*Ctx) error) error {
			return w.sup.sys.EnterWithBudget(w.dom.udi, budget, fn)
		},
		discard: w.dom.Discard,
		serial: func(c *batchCall) error {
			return runPolicy(c.ctx, c.set, hz, func(budget uint64) (*core.System, core.UDI, error) {
				return w.sup.sys, w.dom.udi, p.attemptLocked(w, budget, c.fn)
			})
		},
	}
	start := w.sup.sys.Clock().Cycles()
	rep := b.run(calls)
	return rep, w.sup.sys.Clock().Cycles() - start
}

// DoBatch executes fns as one coalesced batch on a single worker: one
// Enter/Exit, one integrity sweep, and one discard decision for the
// whole batch instead of per call. Results are positional — errs[i] is
// what Do(ctx, fns[i], opts...) would have returned, including the
// pristine-domain-per-call semantics: a faulting batch is transparently
// re-executed serially (see the replay rule in batch.go), so calls must
// tolerate re-execution exactly as with WithRetries. Without WithWorker
// the batch goes to the least-loaded worker; all fns run on that one
// worker.
func (p *Pool) DoBatch(ctx context.Context, fns []func(*Ctx) error, opts ...RunOption) []error {
	set := applyRunOptions(opts)
	errs := make([]error, len(fns))
	if len(fns) == 0 {
		return errs
	}
	if p.closed.Load() {
		for i := range errs {
			errs[i] = ErrPoolClosed
		}
		return errs
	}
	var idx int
	if set.hasWorker {
		idx = set.worker % len(p.workers)
		if idx < 0 {
			idx += len(p.workers)
		}
		p.workers[idx].inflight.Add(1)
	} else {
		idx = p.pick()
	}
	calls := make([]*batchCall, len(fns))
	for i, fn := range fns {
		calls[i] = &batchCall{ctx: ctx, fn: fn, set: set}
	}
	p.execBatchOn(idx, calls)
	for i, c := range calls {
		errs[i] = c.err
	}
	return errs
}

// Run executes fn inside a pristine isolated domain on the least-loaded
// worker. It is Do with a background context and no options.
func (p *Pool) Run(fn func(*Ctx) error) error {
	return p.Do(context.Background(), fn)
}

// RunOn is Run pinned to worker (modulo the pool size). It is Do with
// WithWorker; new code should use Do directly.
func (p *Pool) RunOn(worker int, fn func(*Ctx) error) error {
	return p.Do(context.Background(), fn, WithWorker(worker))
}

// RunWithFallback is Run with the paper's alternate action: on a
// violation, fallback runs with the *ViolationError. It is Do with
// WithFallback.
func (p *Pool) RunWithFallback(fn func(*Ctx) error, fallback func(*ViolationError) error) error {
	return p.Do(context.Background(), fn, WithFallback(fallback))
}

// Close tears down every worker's warm domain. Runs that lost the race
// return ErrPoolClosed.
func (p *Pool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	var first error
	for i, w := range p.workers {
		w.mu.Lock()
		if st, err := w.dom.Stats(); err == nil {
			w.closedStats, w.closedStatsValid = st, true
		}
		err := w.dom.Close()
		w.mu.Unlock()
		if err != nil && first == nil {
			first = fmt.Errorf("sdrad: pool worker %d: %w", i, err)
		}
	}
	return first
}

// DetectionCounts aggregates the per-mechanism containment counters
// across all workers.
func (p *Pool) DetectionCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for _, w := range p.workers {
		w.mu.Lock()
		//lint:detorder commutative per-mechanism sums into a map; no order-dependent state
		for mech, n := range w.sup.DetectionCounts() {
			out[mech] += n
		}
		w.mu.Unlock()
	}
	return out
}

// WorkerDetectionCounts returns each worker's containment counters
// individually (index = worker); summing them gives DetectionCounts.
func (p *Pool) WorkerDetectionCounts() []map[string]uint64 {
	out := make([]map[string]uint64, len(p.workers))
	for i, w := range p.workers {
		w.mu.Lock()
		out[i] = w.sup.DetectionCounts()
		w.mu.Unlock()
	}
	return out
}

// MemoryStats aggregates the simulated-memory accounting across all
// workers' machines.
func (p *Pool) MemoryStats() MemoryStats {
	var agg MemoryStats
	for _, w := range p.workers {
		w.mu.Lock()
		ms := w.sup.MemoryStats()
		w.mu.Unlock()
		agg.MappedPages += ms.MappedPages
		agg.Loads += ms.Loads
		agg.Stores += ms.Stores
		agg.BytesRead += ms.BytesRead
		agg.BytesWritten += ms.BytesWritten
		agg.Faults += ms.Faults
		agg.DirtyPages += ms.DirtyPages
		agg.TLBHits += ms.TLBHits
		agg.TLBMisses += ms.TLBMisses
		agg.Domains += ms.Domains
	}
	return agg
}

// VirtualTime returns the elapsed virtual time of the pool as a parallel
// machine: the maximum across workers (they run concurrently, so the
// slowest worker bounds the makespan).
func (p *Pool) VirtualTime() time.Duration {
	var max time.Duration
	for _, w := range p.workers {
		w.mu.Lock()
		vt := w.sup.VirtualTime()
		w.mu.Unlock()
		if vt > max {
			max = vt
		}
	}
	return max
}

// TotalVirtualTime returns the summed virtual time across workers — the
// aggregate simulated CPU time consumed, the basis of the sustainability
// accounting. TotalVirtualTime/VirtualTime measures achieved parallelism.
func (p *Pool) TotalVirtualTime() time.Duration {
	var sum time.Duration
	for _, w := range p.workers {
		w.mu.Lock()
		sum += w.sup.VirtualTime()
		w.mu.Unlock()
	}
	return sum
}

// VirtualCycles returns the summed virtual cycles across all workers'
// machines — the aggregate simulated CPU time as an exact integer
// (TotalVirtualTime rounds through the cost model's frequency; the
// campaign engine's parity oracles need the cycles themselves).
func (p *Pool) VirtualCycles() uint64 {
	var sum uint64
	for _, w := range p.workers {
		w.mu.Lock()
		sum += w.sup.sys.Clock().Cycles()
		w.mu.Unlock()
	}
	return sum
}

// DomainStats aggregates the warm domains' lifecycle counters across all
// workers (entries, clean exits, violations, rewinds, preemptions).
// After Close it returns the counters snapshotted at teardown, so final
// accounting still reflects the work done.
func (p *Pool) DomainStats() DomainStats {
	var agg DomainStats
	for _, w := range p.workers {
		w.mu.Lock()
		st, err := w.dom.Stats()
		if err != nil && w.closedStatsValid {
			st, err = w.closedStats, nil
		}
		w.mu.Unlock()
		if err != nil {
			continue
		}
		agg.Entries += st.Entries
		agg.CleanExits += st.CleanExits
		agg.Violations += st.Violations
		agg.Rewinds += st.Rewinds
		agg.Preemptions += st.Preemptions
		agg.RewindTime += st.RewindTime
	}
	return agg
}

// PoolStats reports per-worker dispatch accounting.
type PoolStats struct {
	// Requests counts calls dispatched per worker: one per serial Do
	// attempt (retries count each attempt) and one per batched call
	// admitted with a live context (a batch's serial replays do not
	// count again).
	Requests []uint64
}

// Stats returns a snapshot of the dispatch counters.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{Requests: make([]uint64, len(p.workers))}
	for i, w := range p.workers {
		st.Requests[i] = w.requests.Load()
	}
	return st
}
