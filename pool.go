package sdrad

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/lifecycle"
)

// This file implements Pool, the concurrency layer of the public API.
//
// A Supervisor simulates one single-core machine, so it and its domains
// must stay on one goroutine. Pool lifts that restriction the way a
// multi-socket deployment would: it owns N independent workers, each with
// a private Supervisor (its own simulated machine, PKU keyset, and
// virtual clock) and a warm, pre-initialized domain. Requests dispatch to
// the least-loaded worker (round-robin tiebreak), run in that worker's
// warm domain, and the domain is discarded on return, so every Run starts
// from pristine memory without paying domain init/deinit per request.
//
// The worker set is elastic (DESIGN.md §13): Resize publishes a new
// worker-set snapshot atomically. A hot-added worker enters dispatch
// only after a clean warm-up Enter/sweep proved its fresh domain
// pristine; a removed worker is first unpublished (no new dispatch can
// reach it), then its in-flight work finishes under its lock, its
// domain closes, and the husk is retired — kept for stats aggregation so
// DetectionCounts/DomainStats never lose the work it did.

// ErrPoolClosed is returned by Run/RunOn after Close (and while the pool
// is draining: admission has stopped).
var ErrPoolClosed = errors.New("sdrad: pool is closed")

// errWorkerRetired is the internal re-dispatch signal: a call raced a
// shrink onto a worker that was retired before the call acquired its
// lock. The dispatcher retries against the current worker set; the
// sentinel never escapes to callers.
var errWorkerRetired = errors.New("sdrad: pool worker retired")

// poolWorker is one shard: a private simulated machine plus its warm
// domain. The mutex serializes all access to the worker's Supervisor,
// upholding the single-goroutine contract per shard.
type poolWorker struct {
	mu  sync.Mutex
	sup *Supervisor
	dom *Domain
	// inflight counts requests dispatched to this worker that have not
	// finished (including those waiting on mu); it drives least-loaded
	// dispatch and is read without the lock.
	inflight atomic.Int64
	requests atomic.Uint64
	// retired marks a worker removed by Resize or Close: its domain is
	// gone and it must never execute again — a racing call that lands
	// here re-dispatches. Written and read under mu.
	retired bool
	// closedStats snapshots the warm domain's lifecycle counters just
	// before the domain is torn down (Close or a shrink), so post-Close
	// accounting (DomainStats) reports the work done instead of silently
	// reading zero. Written and read under mu.
	closedStats      DomainStats
	closedStatsValid bool
}

// Pool executes isolated domains on N parallel workers. Unlike Supervisor
// and Domain, a Pool is safe for concurrent use by any number of
// goroutines. Create with NewPool (or NewDeferredPool for the
// lifecycle-managed form); Resize grows or shrinks the worker set at
// runtime.
type Pool struct {
	lc *lifecycle.Machine
	// construction parameters, kept so Resize can build new workers
	// identical to the originals.
	supOpts []Option
	domOpts []DomainOption
	n       int

	// workers is the published worker-set snapshot: dispatch paths load
	// it atomically; Resize/teardown swap it under retireMu.
	workers  atomic.Pointer[[]*poolWorker]
	rr       atomic.Uint64
	closed   atomic.Bool
	draining atomic.Bool

	// calls counts whole pool calls in flight (Do, DoBatch, and external
	// dispatchBatch entries) — unlike the per-worker inflight slots it
	// covers a call between retry attempts, when no worker is reserved.
	// Drain waits on it through drainCond (on drainMu), signalled when
	// the count hits zero while draining.
	calls     atomic.Int64
	drainMu   sync.Mutex
	drainCond *sync.Cond

	// retireMu serializes worker-set mutations (Resize, teardown) and
	// guards retired.
	retireMu sync.Mutex
	// retired holds workers removed by shrinks, for stats aggregation.
	retired []*poolWorker
}

// NewPool creates a pool of n workers (n <= 0 means runtime.NumCPU()),
// each owning a private Supervisor built with opts and one warm domain
// with the default configuration; use NewPoolWithDomain to size the
// warm domains.
func NewPool(n int, opts ...Option) (*Pool, error) {
	return NewPoolWithDomain(n, nil, opts...)
}

// testHookWorkerCreated, when non-nil, observes each worker as pool
// construction (or a grow) brings it up. It is a test seam: the
// partial-failure cleanup test uses it to reach workers that a failed
// NewPoolWithDomain never returns.
var testHookWorkerCreated func(i int, w *poolWorker)

// testHookDispatchAttempt, when non-nil, observes each dispatch attempt
// of Pool.Do before a worker is picked (attempt starts at 1; policy
// retries and errWorkerRetired re-dispatches each count). It is a test
// seam: the drain regression uses it to park a call between attempts —
// the window in which it holds no worker inflight slot.
var testHookDispatchAttempt func(attempt int)

// NewPoolWithDomain is NewPool with explicit configuration for the warm
// domain of every worker (heap pages, stack pages, ...). If any worker
// fails to initialize, the domains of the workers already brought up are
// closed before the error returns. The returned pool is already serving
// (Init and Start have run).
func NewPoolWithDomain(n int, domOpts []DomainOption, opts ...Option) (*Pool, error) {
	p := NewDeferredPool(n, domOpts, opts...)
	if err := p.Init(); err != nil {
		return nil, err
	}
	if err := p.Start(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewDeferredPool constructs a pool without allocating its workers: the
// lifecycle-managed form (DESIGN.md §13). Call Init to build the worker
// machines and Start to begin serving; until then the pool is in
// StateInitializing and rejects work.
func NewDeferredPool(n int, domOpts []DomainOption, opts ...Option) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p := &Pool{
		lc:      lifecycle.NewMachine("sdrad.Pool"),
		supOpts: opts,
		domOpts: domOpts,
		n:       n,
	}
	p.drainCond = sync.NewCond(&p.drainMu)
	return p
}

// newWorker builds one worker: a private Supervisor plus its warm
// domain, from the pool's construction parameters.
func (p *Pool) newWorker() (*poolWorker, error) {
	sup := New(p.supOpts...)
	dom, err := sup.NewDomain(p.domOpts...)
	if err != nil {
		return nil, err
	}
	return &poolWorker{sup: sup, dom: dom}, nil
}

// warmUp is the clean warm-up pass a hot-added worker must survive
// before entering dispatch: one Enter with a trivial body (paying entry,
// integrity sweep, and exit on the worker's own virtual clock) followed
// by the same discard-on-return scrub real calls get, proving the fresh
// domain starts pristine.
func (w *poolWorker) warmUp() error {
	err := w.sup.sys.EnterWithBudget(w.dom.udi, 0, func(*Ctx) error { return nil })
	if !core.RewoundBy(err, w.sup.sys, w.dom.udi) {
		if derr := w.dom.Discard(); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// Init allocates the pool's workers (lifecycle: legal once, from
// StateInitializing). NewPool calls it for you; it exists for deferred
// pools.
func (p *Pool) Init() error {
	return p.lc.Init(func() error {
		ws := make([]*poolWorker, p.n)
		for i := range ws {
			w, err := p.newWorker()
			if err != nil {
				for _, u := range ws[:i] {
					_ = u.dom.Close() //lint:errclass best-effort unwind; the construction failure is the error callers must see
				}
				return fmt.Errorf("sdrad: pool worker %d: %w", i, err)
			}
			ws[i] = w
			if testHookWorkerCreated != nil {
				testHookWorkerCreated(i, w)
			}
		}
		p.workers.Store(&ws)
		return nil
	})
}

// Start moves the pool to StateHealthy and opens dispatch (lifecycle:
// legal once, after Init).
func (p *Pool) Start() error { return p.lc.Start(nil) }

// State returns the pool's lifecycle state.
func (p *Pool) State() lifecycle.State { return p.lc.State() }

// Drain stops admission (new calls return ErrPoolClosed) and blocks
// until every in-flight call has returned — whole calls, not attempts:
// a call parked between retry attempts (or between an errWorkerRetired
// re-dispatch) holds no worker slot, but Drain still waits for it, so
// no admitted call can execute after Drain returns. Batches arriving
// through dispatchBatch once draining has begun are shed with
// ErrPoolClosed, so an async layer still feeding the pool cannot extend
// the drain indefinitely; for the graceful order, drain the AsyncPool
// first (its backlog then executes before admission closes here).
// Idempotent; legal after Start.
func (p *Pool) Drain() error {
	return p.lc.Drain(func() error {
		p.draining.Store(true)
		p.drainMu.Lock()
		defer p.drainMu.Unlock()
		for p.calls.Load() != 0 {
			p.drainCond.Wait()
		}
		return nil
	})
}

// beginCall registers one whole pool call for drain accounting. It must
// run before the admission check: Drain stores the draining flag and
// then reads the counter, so a call that incremented first is either
// observed by that read or itself observes draining and rejects — the
// pair closes the window where a call admitted before Drain holds no
// worker slot between attempts.
func (p *Pool) beginCall() { p.calls.Add(1) }

// endCall retires a whole pool call and wakes a waiting Drain when the
// last one leaves.
func (p *Pool) endCall() {
	if p.calls.Add(-1) == 0 && p.draining.Load() {
		p.drainMu.Lock()
		p.drainCond.Broadcast()
		p.drainMu.Unlock()
	}
}

// Stop tears down every worker's warm domain (lifecycle: legal once;
// Close is the idempotent form legacy call sites use).
func (p *Pool) Stop(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return p.lc.Stop(p.teardown)
}

// Close tears down every worker's warm domain. Runs that lost the race
// return ErrPoolClosed. Idempotent: later calls return the first
// outcome.
func (p *Pool) Close() error { return p.lc.Close(p.teardown) }

// teardown closes every live worker's domain (retired workers already
// closed theirs during the shrink that removed them).
func (p *Pool) teardown() error {
	p.retireMu.Lock()
	defer p.retireMu.Unlock()
	p.closed.Store(true)
	var first error
	for i, w := range p.snapshot() {
		if err := retireWorker(w); err != nil && first == nil {
			first = fmt.Errorf("sdrad: pool worker %d: %w", i, err)
		}
	}
	return first
}

// retireWorker waits out the worker's current call, snapshots its
// domain counters, closes the domain, and marks it retired.
func retireWorker(w *poolWorker) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.retired {
		return nil
	}
	if st, err := w.dom.Stats(); err == nil {
		w.closedStats, w.closedStatsValid = st, true
	}
	w.retired = true
	return w.dom.Close()
}

// snapshot returns the published worker set (nil before Init).
func (p *Pool) snapshot() []*poolWorker {
	ws := p.workers.Load()
	if ws == nil {
		return nil
	}
	return *ws
}

// allWorkers returns the live workers plus the retired husks, for stats
// aggregators: a shrink must never make completed work disappear from
// DetectionCounts/DomainStats/VirtualCycles.
func (p *Pool) allWorkers() []*poolWorker {
	ws := p.snapshot()
	p.retireMu.Lock()
	if len(p.retired) > 0 {
		all := make([]*poolWorker, 0, len(ws)+len(p.retired))
		all = append(all, ws...)
		all = append(all, p.retired...)
		ws = all
	}
	p.retireMu.Unlock()
	return ws
}

// Workers returns the current number of parallel workers.
func (p *Pool) Workers() int { return len(p.snapshot()) }

// Resize grows or shrinks the worker set to n (lifecycle: legal only
// while serving — Healthy or Degraded). Growing builds fresh workers
// from the pool's construction parameters and publishes them only after
// each passes its clean warm-up Enter/sweep. Shrinking removes workers
// from the tail: the worker is first unpublished (new dispatch cannot
// reach it; a racing call that already picked it transparently
// re-dispatches), then its in-flight call finishes, its domain closes,
// and the husk is retired into the stats aggregation set. Worker
// indices of the surviving prefix are stable, so WithWorker affinity
// keys stay meaningful across resizes.
func (p *Pool) Resize(n int) error {
	if n < 1 {
		return fmt.Errorf("sdrad: pool resize to %d workers (want >= 1)", n)
	}
	if err := p.lc.Resizable(); err != nil {
		return err
	}
	p.retireMu.Lock()
	defer p.retireMu.Unlock()
	if p.closed.Load() {
		return ErrPoolClosed
	}
	cur := p.snapshot()
	if n == len(cur) {
		return nil
	}
	if n > len(cur) {
		added := make([]*poolWorker, 0, n-len(cur))
		for i := len(cur); i < n; i++ {
			w, err := p.newWorker()
			if err == nil {
				err = w.warmUp()
			}
			if err != nil {
				for _, u := range added {
					_ = u.dom.Close() //lint:errclass best-effort unwind; the grow failure is the error callers must see
				}
				return fmt.Errorf("sdrad: pool grow worker %d: %w", i, err)
			}
			if testHookWorkerCreated != nil {
				testHookWorkerCreated(i, w)
			}
			added = append(added, w)
		}
		next := make([]*poolWorker, 0, n)
		next = append(next, cur...)
		next = append(next, added...)
		p.workers.Store(&next)
		return nil
	}
	next := make([]*poolWorker, n)
	copy(next, cur[:n])
	p.workers.Store(&next)
	var first error
	for i, w := range cur[n:] {
		if err := retireWorker(w); err != nil && first == nil {
			first = fmt.Errorf("sdrad: pool shrink worker %d: %w", n+i, err)
		}
		p.retired = append(p.retired, w)
	}
	return first
}

// pickFrom chooses the least-loaded worker of ws, breaking ties
// round-robin so idle workers rotate instead of piling onto worker 0,
// and reserves an inflight slot on the winner in the same atomic step.
// Reserving inside the pick (dispatch.Acquire) rather than later in
// runOn closes the window where a burst of concurrent Dos all observed
// the same idle worker and piled onto it; the caller owns the
// reservation and runOn releases it.
func (p *Pool) pickFrom(ws []*poolWorker) *poolWorker {
	return ws[dispatch.Acquire(len(ws), int(p.rr.Add(1)-1), func(i int) *atomic.Int64 {
		return &ws[i].inflight
	})]
}

// pin maps a WithWorker affinity key onto ws and reserves the worker's
// inflight slot.
func pin(ws []*poolWorker, worker int) *poolWorker {
	idx := worker % len(ws)
	if idx < 0 {
		idx += len(ws)
	}
	w := ws[idx]
	w.inflight.Add(1)
	return w
}

// admit loads the current worker set, rejecting when the pool is not
// serving.
func (p *Pool) admit() ([]*poolWorker, error) {
	if p.closed.Load() || p.draining.Load() {
		return nil, ErrPoolClosed
	}
	ws := p.snapshot()
	if len(ws) == 0 {
		return nil, &lifecycle.LifecycleError{Component: "sdrad.Pool", Op: "Do", From: p.lc.State(), Reason: "before Init"}
	}
	return ws, nil
}

// Do implements Runner: it executes fn inside a pristine isolated domain
// under the given per-call policy. Without WithWorker, every attempt
// dispatches to the least-loaded worker; WithWorker pins all attempts
// (including retries) to one worker, composing with WithFallback so an
// affinity-bound call still gets the paper's alternate action.
// Violations rewind and discard the worker's domain, exactly like
// Domain.Do; on every other return path the domain is discarded too, so
// state never leaks between calls.
func (p *Pool) Do(ctx context.Context, fn func(*Ctx) error, opts ...RunOption) error {
	set := applyRunOptions(opts)
	p.beginCall()
	defer p.endCall()
	ws, err := p.admit()
	if err != nil {
		return err
	}
	hz := ws[0].sup.sys.Clock().Model().CPUHz
	attempt := 0
	return runPolicy(ctx, set, hz, func(budget uint64) (*core.System, core.UDI, error) {
		for {
			attempt++
			if testHookDispatchAttempt != nil {
				testHookDispatchAttempt(attempt)
			}
			cur := p.snapshot()
			if len(cur) == 0 || p.closed.Load() {
				return nil, 0, ErrPoolClosed
			}
			var w *poolWorker
			if set.hasWorker {
				w = pin(cur, set.worker)
			} else {
				w = p.pickFrom(cur)
			}
			err := p.runOn(w, budget, fn)
			if errors.Is(err, errWorkerRetired) {
				// The worker was removed by a shrink between pick and
				// lock; re-dispatch against the current set.
				continue
			}
			return w.sup.sys, w.dom.udi, err
		}
	})
}

// runOn executes one attempt on worker w with the given cycle budget,
// upholding the worker's single-goroutine contract and the discard-on-
// return invariant. The caller has already reserved the worker's
// inflight slot (pickFrom for least-loaded dispatch, pin for pinned
// calls); runOn releases it.
func (p *Pool) runOn(w *poolWorker, budget uint64, fn func(*Ctx) error) error {
	defer w.inflight.Add(-1)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.retired {
		return errWorkerRetired
	}
	w.requests.Add(1)
	return p.attemptLocked(w, budget, fn)
}

// attemptLocked is one domain entry plus the discard-on-return
// invariant, with worker w's lock already held (runOn for serial calls,
// execBatchOn for batch replays).
func (p *Pool) attemptLocked(w *poolWorker, budget uint64, fn func(*Ctx) error) error {
	if p.closed.Load() {
		return ErrPoolClosed
	}
	err := w.sup.sys.EnterWithBudget(w.dom.udi, budget, fn)
	// Discard-on-return: if the worker's own domain was rewound (by a
	// violation or a budget preemption), it was already discarded; every
	// other exit scrubs it here. The UDI check inside RewoundBy matters:
	// a nested or foreign domain's rewind error propagating through fn
	// does not rewind the worker domain, which must then still be
	// discarded.
	if !core.RewoundBy(err, w.sup.sys, w.dom.udi) {
		if derr := w.dom.Discard(); derr != nil && err == nil {
			err = derr
		}
	}
	return err
}

// dispatchBatch resolves a batch's worker against the current worker
// set and executes it, transparently re-dispatching if a shrink retires
// the chosen worker first. With hasWorker, worker is the stable
// affinity key (modulo the live size); otherwise the least-loaded
// worker wins. It is the single batch entry point for DoBatch,
// AsyncPool, and the campaign executors. A batch arriving after Drain
// began is shed with ErrPoolClosed: unlike serial Do calls (admitted
// before the drain, allowed to finish their retries), batch traffic
// reaches here without pool admission — the async layer feeds batches
// for as long as it lives, and a drain that honored them would never
// terminate. A batch already executing on a worker still completes.
func (p *Pool) dispatchBatch(worker int, hasWorker bool, calls []*batchCall) (batchReport, uint64) {
	p.beginCall()
	defer p.endCall()
	for {
		ws := p.snapshot()
		if len(ws) == 0 || p.closed.Load() || p.draining.Load() {
			for _, c := range calls {
				c.err = ErrPoolClosed
			}
			return batchReport{}, 0
		}
		var w *poolWorker
		if hasWorker {
			w = pin(ws, worker)
		} else {
			w = p.pickFrom(ws)
		}
		if rep, cycles, ok := p.execBatchOn(w, calls); ok {
			return rep, cycles
		}
	}
}

// execBatchOn executes calls as one batch on worker w under the replay
// rule of batch.go, returning the batch report and the virtual cycles
// the worker's machine spent on it. The caller has reserved the
// worker's inflight slot; execBatchOn releases it. ok is false when the
// worker was retired before the batch acquired its lock (the caller
// re-dispatches; nothing ran).
func (p *Pool) execBatchOn(w *poolWorker, calls []*batchCall) (rep batchReport, cycles uint64, ok bool) {
	defer w.inflight.Add(-1)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.retired {
		return batchReport{}, 0, false
	}
	if p.closed.Load() {
		for _, c := range calls {
			c.err = ErrPoolClosed
		}
		return batchReport{}, 0, true
	}
	// Count only calls that will actually be attempted: a call whose
	// context is already done never enters a domain on the serial path
	// and is not a dispatched request here either.
	var attempted uint64
	for _, c := range calls {
		if c.ctx.Err() == nil {
			attempted++
		}
	}
	w.requests.Add(attempted)
	hz := w.sup.sys.Clock().Model().CPUHz
	b := &batchBackend{
		sys: w.sup.sys,
		udi: w.dom.udi,
		hz:  hz,
		enter: func(budget uint64, fn func(*Ctx) error) error {
			return w.sup.sys.EnterWithBudget(w.dom.udi, budget, fn)
		},
		discard: w.dom.Discard,
		serial: func(c *batchCall) error {
			return runPolicy(c.ctx, c.set, hz, func(budget uint64) (*core.System, core.UDI, error) {
				return w.sup.sys, w.dom.udi, p.attemptLocked(w, budget, c.fn)
			})
		},
	}
	start := w.sup.sys.Clock().Cycles()
	rep = b.run(calls)
	return rep, w.sup.sys.Clock().Cycles() - start, true
}

// DoBatch executes fns as one coalesced batch on a single worker: one
// Enter/Exit, one integrity sweep, and one discard decision for the
// whole batch instead of per call. Results are positional — errs[i] is
// what Do(ctx, fns[i], opts...) would have returned, including the
// pristine-domain-per-call semantics: a faulting batch is transparently
// re-executed serially (see the replay rule in batch.go), so calls must
// tolerate re-execution exactly as with WithRetries. Without WithWorker
// the batch goes to the least-loaded worker; all fns run on that one
// worker.
func (p *Pool) DoBatch(ctx context.Context, fns []func(*Ctx) error, opts ...RunOption) []error {
	set := applyRunOptions(opts)
	errs := make([]error, len(fns))
	if len(fns) == 0 {
		return errs
	}
	if _, err := p.admit(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	calls := make([]*batchCall, len(fns))
	for i, fn := range fns {
		calls[i] = &batchCall{ctx: ctx, fn: fn, set: set}
	}
	p.dispatchBatch(set.worker, set.hasWorker, calls)
	for i, c := range calls {
		errs[i] = c.err
	}
	return errs
}

// Run executes fn inside a pristine isolated domain on the least-loaded
// worker. It is Do with a background context and no options.
func (p *Pool) Run(fn func(*Ctx) error) error {
	return p.Do(context.Background(), fn)
}

// RunOn is Run pinned to worker (modulo the pool size). It is Do with
// WithWorker; new code should use Do directly.
func (p *Pool) RunOn(worker int, fn func(*Ctx) error) error {
	return p.Do(context.Background(), fn, WithWorker(worker))
}

// RunWithFallback is Run with the paper's alternate action: on a
// violation, fallback runs with the *ViolationError. It is Do with
// WithFallback.
func (p *Pool) RunWithFallback(fn func(*Ctx) error, fallback func(*ViolationError) error) error {
	return p.Do(context.Background(), fn, WithFallback(fallback))
}

// DetectionCounts aggregates the per-mechanism containment counters
// across all workers, including workers retired by shrinks.
func (p *Pool) DetectionCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for _, w := range p.allWorkers() {
		w.mu.Lock()
		//lint:detorder commutative per-mechanism sums into a map; no order-dependent state
		for mech, n := range w.sup.DetectionCounts() {
			out[mech] += n
		}
		w.mu.Unlock()
	}
	return out
}

// WorkerDetectionCounts returns each live worker's containment counters
// individually (index = worker). Workers retired by shrinks are not
// listed here — their counters remain in the DetectionCounts aggregate.
func (p *Pool) WorkerDetectionCounts() []map[string]uint64 {
	ws := p.snapshot()
	out := make([]map[string]uint64, len(ws))
	for i, w := range ws {
		w.mu.Lock()
		out[i] = w.sup.DetectionCounts()
		w.mu.Unlock()
	}
	return out
}

// MemoryStats aggregates the simulated-memory accounting across all
// workers' machines, including workers retired by shrinks.
func (p *Pool) MemoryStats() MemoryStats {
	var agg MemoryStats
	for _, w := range p.allWorkers() {
		w.mu.Lock()
		ms := w.sup.MemoryStats()
		w.mu.Unlock()
		agg.MappedPages += ms.MappedPages
		agg.Loads += ms.Loads
		agg.Stores += ms.Stores
		agg.BytesRead += ms.BytesRead
		agg.BytesWritten += ms.BytesWritten
		agg.Faults += ms.Faults
		agg.DirtyPages += ms.DirtyPages
		agg.TLBHits += ms.TLBHits
		agg.TLBMisses += ms.TLBMisses
		agg.Domains += ms.Domains
	}
	return agg
}

// VirtualTime returns the elapsed virtual time of the pool as a parallel
// machine: the maximum across workers (they run concurrently, so the
// slowest worker bounds the makespan). Retired workers count: their
// elapsed time bounded the makespan while they were live.
func (p *Pool) VirtualTime() time.Duration {
	var max time.Duration
	for _, w := range p.allWorkers() {
		w.mu.Lock()
		vt := w.sup.VirtualTime()
		w.mu.Unlock()
		if vt > max {
			max = vt
		}
	}
	return max
}

// TotalVirtualTime returns the summed virtual time across workers
// (including retired ones) — the aggregate simulated CPU time consumed,
// the basis of the sustainability accounting. TotalVirtualTime/
// VirtualTime measures achieved parallelism.
func (p *Pool) TotalVirtualTime() time.Duration {
	var sum time.Duration
	for _, w := range p.allWorkers() {
		w.mu.Lock()
		sum += w.sup.VirtualTime()
		w.mu.Unlock()
	}
	return sum
}

// VirtualCycles returns the summed virtual cycles across all workers'
// machines (including retired ones) — the aggregate simulated CPU time
// as an exact integer (TotalVirtualTime rounds through the cost model's
// frequency; the campaign engine's parity oracles need the cycles
// themselves).
func (p *Pool) VirtualCycles() uint64 {
	var sum uint64
	for _, w := range p.allWorkers() {
		w.mu.Lock()
		sum += w.sup.sys.Clock().Cycles()
		w.mu.Unlock()
	}
	return sum
}

// DomainStats aggregates the warm domains' lifecycle counters across all
// workers, including retired ones (entries, clean exits, violations,
// rewinds, preemptions). After a worker's domain is torn down (Close or
// a shrink) its counters come from the snapshot taken at teardown, so
// final accounting still reflects the work done.
func (p *Pool) DomainStats() DomainStats {
	var agg DomainStats
	for _, w := range p.allWorkers() {
		w.mu.Lock()
		st, err := w.dom.Stats()
		if err != nil && w.closedStatsValid {
			st, err = w.closedStats, nil
		}
		w.mu.Unlock()
		if err != nil {
			continue
		}
		agg.Entries += st.Entries
		agg.CleanExits += st.CleanExits
		agg.Violations += st.Violations
		agg.Rewinds += st.Rewinds
		agg.Preemptions += st.Preemptions
		agg.RewindTime += st.RewindTime
	}
	return agg
}

// PoolStats reports per-worker dispatch accounting.
type PoolStats struct {
	// Requests counts calls dispatched per live worker: one per serial
	// Do attempt (retries count each attempt) and one per batched call
	// admitted with a live context (a batch's serial replays do not
	// count again).
	Requests []uint64
}

// Stats returns a snapshot of the dispatch counters for the live
// workers.
func (p *Pool) Stats() PoolStats {
	ws := p.snapshot()
	st := PoolStats{Requests: make([]uint64, len(ws))}
	for i, w := range ws {
		st.Requests[i] = w.requests.Load()
	}
	return st
}
