package sdrad_test

import (
	"errors"
	"fmt"
	"testing"

	sdrad "repro"
	"repro/internal/workload"
)

// TestSoakMixedWorkload drives a long, deterministic mixed workload
// through the public API: several domains, interleaved benign work,
// injected bugs of rotating classes, FFI calls, sharing, and periodic
// domain churn. The invariants: no benign work is ever lost, every
// injected bug is contained, accounting is exact, and the supervisor's
// virtual clock only moves forward.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const iterations = 5_000

	sup := sdrad.New()
	rng := workload.NewRNG(2023)

	// Long-lived domains.
	var doms []*sdrad.Domain
	for i := 0; i < 4; i++ {
		d, err := sup.NewDomain()
		if err != nil {
			t.Fatal(err)
		}
		doms = append(doms, d)
	}

	// An FFI bridge with a checksum function.
	bridge, err := sup.NewBridge(sdrad.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if err := bridge.Register(sdrad.Foreign{
		Name: "checksum",
		Fn: func(c *sdrad.Ctx, args []any) ([]any, error) {
			data := args[0].([]byte)
			buf := c.MustAlloc(len(data) + 1)
			c.MustStore(buf, data)
			tmp := make([]byte, len(data))
			c.MustLoad(buf, tmp)
			c.MustFree(buf)
			var sum int64
			for _, b := range tmp {
				sum += int64(b)
			}
			return []any{sum}, nil
		},
		Fallback: func([]any, *sdrad.ViolationError) ([]any, error) {
			return []any{int64(-1)}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	var wantViolations, benignRuns, ffiCalls uint64
	lastTime := sup.VirtualTime()

	for i := 0; i < iterations; i++ {
		d := doms[rng.Intn(len(doms))]
		switch rng.Intn(10) {
		case 0: // injected bug (rotating class via address pattern)
			err := d.Run(func(c *sdrad.Ctx) error {
				switch i % 3 {
				case 0:
					c.MustStore64(0xdead_0000_0000, 1) // wild write
				case 1:
					p := c.MustAlloc(16)
					c.MustStore(p, make([]byte, 32)) // heap overflow
					c.MustFree(p)                    // detected here
				default:
					c.Violate(errors.New("logic-detected corruption"))
				}
				return nil
			})
			if _, ok := sdrad.IsViolation(err); !ok {
				t.Fatalf("iteration %d: bug not contained: %v", i, err)
			}
			wantViolations++
		case 1, 2: // FFI call
			payload := make([]byte, rng.Intn(512)+1)
			rng.Bytes(payload)
			res, err := bridge.Call("checksum", payload)
			if err != nil {
				t.Fatalf("iteration %d: ffi: %v", i, err)
			}
			var want int64
			for _, b := range payload {
				want += int64(b)
			}
			if res[0] != want {
				t.Fatalf("iteration %d: checksum %v != %v", i, res[0], want)
			}
			ffiCalls++
		case 3: // domain churn: close and replace
			idx := rng.Intn(len(doms))
			if err := doms[idx].Close(); err != nil {
				t.Fatalf("iteration %d: close: %v", i, err)
			}
			nd, err := sup.NewDomain()
			if err != nil {
				t.Fatalf("iteration %d: recreate: %v", i, err)
			}
			doms[idx] = nd
		default: // benign work with verification
			tag := byte(i)
			err := d.Run(func(c *sdrad.Ctx) error {
				n := rng.Intn(1024) + 1
				p := c.MustAlloc(n)
				data := make([]byte, n)
				for j := range data {
					data[j] = tag
				}
				c.MustStore(p, data)
				back := make([]byte, n)
				c.MustLoad(p, back)
				for j := range back {
					if back[j] != tag {
						return fmt.Errorf("data corruption at %d", j)
					}
				}
				c.MustFree(p)
				return nil
			})
			if err != nil {
				t.Fatalf("iteration %d: benign work: %v", i, err)
			}
			benignRuns++
		}

		if now := sup.VirtualTime(); now < lastTime {
			t.Fatalf("iteration %d: virtual time went backwards", i)
		} else {
			lastTime = now
		}
	}

	// Accounting: supervisor-level detections equal injected bugs (the
	// FFI fallback path contributes its own violations on top, but this
	// workload's checksum function never faults).
	var total uint64
	for _, n := range sup.DetectionCounts() {
		total += n
	}
	if total != wantViolations {
		t.Errorf("detections = %d, want %d", total, wantViolations)
	}
	if benignRuns == 0 || ffiCalls == 0 || wantViolations == 0 {
		t.Errorf("workload mix degenerate: benign=%d ffi=%d bugs=%d", benignRuns, ffiCalls, wantViolations)
	}
	t.Logf("soak: %d iterations, %d benign, %d ffi, %d contained bugs, %v virtual time",
		iterations, benignRuns, ffiCalls, wantViolations, sup.VirtualTime())
}
