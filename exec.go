package sdrad

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/serde"
)

// This file implements typed transfer on top of Runner: Exec encodes a
// request value into the domain heap with a serde codec, runs the
// function isolated, and decodes the response back out — replacing the
// hand-rolled Alloc/Write/Read address plumbing that every data-carrying
// call previously needed.

// Value tags of the Exec wire vector: ["v", primitive] carries one of
// the codec-native kinds (bool, int64, uint64, float64, string, []byte),
// ["j", bytes] carries any other Go value as JSON. The JSON envelope
// rides inside every codec — including Raw, whose payloads must be
// bytes — so struct requests work with all three.
const (
	execTagValue = "v"
	execTagJSON  = "j"
)

// ErrExecCorrupt is returned when an Exec transfer decodes to something
// other than a tagged value vector.
var ErrExecCorrupt = fmt.Errorf("sdrad: corrupt exec transfer")

// Exec runs fn isolated on any Runner with a typed request and response.
//
// The full SDRaD-FFI transfer pipeline runs inside the domain: the
// encoded request is staged in the domain heap, loaded and decoded under
// the domain's protection key, fn computes, and the encoded response is
// staged back through the heap — so the simulated machine charges every
// cross-boundary byte, while the call site stays free of address
// plumbing. All RunOptions apply; WithCodec selects the transfer codec
// (CodecBinary by default; CodecRaw restricts Req/Resp primitives to
// string/[]byte, though structs always work via the JSON envelope).
//
// Violations, retries, budgets, and deadlines behave as in Do. If a
// WithFallback alternate action swallows a violation (returns nil), Exec
// returns the zero Resp with a nil error.
func Exec[Req, Resp any](ctx context.Context, r Runner, req Req, fn func(*Ctx, Req) (Resp, error), opts ...RunOption) (Resp, error) {
	var zero Resp
	set := applyRunOptions(opts)
	codec, err := set.resolveCodec()
	if err != nil {
		return zero, fmt.Errorf("sdrad: exec: %w", err)
	}
	enc, err := encodeValue(codec, req)
	if err != nil {
		return zero, fmt.Errorf("sdrad: exec: encode request: %w", err)
	}

	// The violation fallback is applied here, not inside Do: Exec must
	// return the zero Resp whenever the run was violated — including a
	// violation detected after the closure completed (the exit-time heap
	// integrity sweep) — and never decode bytes staged by a rewound run.
	// The target probe tells us which domain Do entered, so the fallback
	// fires only for that domain's own violations, matching Do's
	// contract.
	var target runTarget
	doOpts := make([]RunOption, 0, len(opts)+2)
	doOpts = append(doOpts, opts...)
	doOpts = append(doOpts, WithFallback(nil), withTargetProbe(&target))

	var out []byte
	err = r.Do(ctx, func(c *Ctx) error {
		// A retried attempt starts from scratch: drop any bytes a prior
		// attempt staged before it was rewound.
		out = nil
		// Copy-in: the encoded request lands in the domain heap and is
		// loaded back under the domain's own protection key. The buffer
		// is freed as soon as it is decoded, so error returns below
		// cannot leak it across runs on a long-lived domain.
		in := c.MustAlloc(len(enc) + 1)
		c.MustStore(in, enc)
		raw := make([]byte, len(enc))
		c.MustLoad(in, raw)
		c.MustFree(in)
		decoded, err := decodeValue[Req](codec, raw)
		if err != nil {
			return fmt.Errorf("sdrad: exec: decode request in domain: %w", err)
		}

		resp, err := fn(c, decoded)
		if err != nil {
			return err
		}

		// Copy-out: the encoded response is staged through the domain
		// heap before crossing back to the trusted side.
		renc, err := encodeValue(codec, resp)
		if err != nil {
			return fmt.Errorf("sdrad: exec: encode response: %w", err)
		}
		p := c.MustAlloc(len(renc))
		c.MustStore(p, renc)
		out = make([]byte, len(renc))
		c.MustLoad(p, out)
		c.MustFree(p)
		return nil
	}, doOpts...)
	if err != nil {
		if v, ok := IsViolation(err); ok && set.fallback != nil &&
			core.RewoundBy(err, target.sys, target.udi) {
			return zero, set.fallback(v)
		}
		return zero, err
	}
	if out == nil {
		// Defensive: a clean exit always stages a response; never decode
		// without one.
		return zero, nil
	}
	return decodeValue[Resp](codec, out)
}

// encodeValue serializes one Go value as a tagged codec vector.
func encodeValue(codec serde.Codec, v any) ([]byte, error) {
	switch x := v.(type) {
	case bool, int64, uint64, float64, string, []byte:
		return codec.Encode([]any{execTagValue, x})
	case int:
		return codec.Encode([]any{execTagValue, int64(x)})
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		return codec.Encode([]any{execTagJSON, b})
	}
}

// decodeValue reverses encodeValue into a T.
func decodeValue[T any](codec serde.Codec, data []byte) (T, error) {
	var zero T
	vec, err := codec.Decode(data)
	if err != nil {
		return zero, err
	}
	if len(vec) != 2 {
		return zero, fmt.Errorf("%w: %d-element vector", ErrExecCorrupt, len(vec))
	}
	tag, err := coerceValue[string](vec[0])
	if err != nil {
		return zero, fmt.Errorf("%w: tag: %v", ErrExecCorrupt, err)
	}
	switch tag {
	case execTagJSON:
		b, err := coerceValue[[]byte](vec[1])
		if err != nil {
			return zero, fmt.Errorf("%w: json payload: %v", ErrExecCorrupt, err)
		}
		var out T
		if err := json.Unmarshal(b, &out); err != nil {
			return zero, fmt.Errorf("%w: %v", ErrExecCorrupt, err)
		}
		return out, nil
	case execTagValue:
		return coerceValue[T](vec[1])
	default:
		return zero, fmt.Errorf("%w: unknown tag %q", ErrExecCorrupt, tag)
	}
}

// coerceValue converts a decoded codec value to T, bridging the
// representation differences between codecs (Raw decodes everything to
// []byte; int travels as int64).
func coerceValue[T any](v any) (T, error) {
	if t, ok := v.(T); ok {
		return t, nil
	}
	var zero T
	switch any(zero).(type) {
	case string:
		if b, ok := v.([]byte); ok {
			return any(string(b)).(T), nil
		}
	case []byte:
		if s, ok := v.(string); ok {
			return any([]byte(s)).(T), nil
		}
	case int:
		if i, ok := v.(int64); ok {
			return any(int(i)).(T), nil
		}
	}
	return zero, fmt.Errorf("sdrad: exec: cannot convert %T to %T", v, zero)
}
