package sdrad

import (
	"errors"
	"testing"
)

func TestPublicReadOnlySharing(t *testing.T) {
	sup := New()
	owner, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	viewer, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}

	var cfg Addr
	if err := owner.Run(func(c *Ctx) error {
		cfg = c.MustAlloc(16)
		c.MustStore(cfg, []byte("read-only data"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := owner.ShareReadOnlyWith(viewer); err != nil {
		t.Fatal(err)
	}

	err = viewer.Run(func(c *Ctx) error {
		buf := make([]byte, 14)
		c.MustLoad(cfg, buf)
		if string(buf) != "read-only data" {
			t.Errorf("read %q", buf)
		}
		c.MustStore(cfg, []byte("tamper")) // must trap
		return nil
	})
	if _, ok := IsViolation(err); !ok {
		t.Fatalf("write through read grant = %v, want violation", err)
	}

	if err := owner.RevokeReadFrom(viewer); err != nil {
		t.Fatal(err)
	}
	err = viewer.Run(func(c *Ctx) error {
		buf := make([]byte, 1)
		c.MustLoad(cfg, buf)
		return nil
	})
	if _, ok := IsViolation(err); !ok {
		t.Errorf("read after revoke = %v, want violation", err)
	}
}

func TestPublicQuarantine(t *testing.T) {
	sup := New()
	dom, _ := sup.NewDomain()
	if err := dom.SetViolationBudget(2); err != nil {
		t.Fatal(err)
	}
	crash := func(c *Ctx) error {
		c.Violate(errors.New("bug"))
		return nil
	}
	for i := 0; i < 2; i++ {
		if _, ok := IsViolation(dom.Run(crash)); !ok {
			t.Fatal("violation not delivered")
		}
	}
	q, err := dom.Quarantined()
	if err != nil || !q {
		t.Fatalf("Quarantined = %v, %v", q, err)
	}
	if err := dom.Run(crash); !errors.Is(err, ErrQuarantined) {
		t.Errorf("err = %v, want ErrQuarantined", err)
	}
}

func TestPublicDetachHeap(t *testing.T) {
	sup := New()
	dom, _ := sup.NewDomain()
	var result Addr
	if err := dom.Run(func(c *Ctx) error {
		result = c.MustAlloc(32)
		c.MustStore(result, []byte("zero-copy result"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	h, err := dom.DetachHeap()
	if err != nil {
		t.Fatal(err)
	}
	if h == nil {
		t.Fatal("nil heap")
	}
	// The domain is closed now.
	if err := dom.Run(func(*Ctx) error { return nil }); err == nil {
		t.Error("Run on detached domain accepted")
	}
	// A new domain can take the freed key and cannot touch the adopted
	// data (which is root-owned now).
	dom2, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	err = dom2.Run(func(c *Ctx) error {
		c.MustStore(result, []byte("overwrite"))
		return nil
	})
	// Adopted pages carry the root-protected key: domain code cannot
	// touch them.
	if _, ok := IsViolation(err); !ok {
		t.Errorf("domain write to adopted page = %v, want violation", err)
	}
	got, rerr := dom2.Read(result, 16)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(got) != 16 {
		t.Errorf("adopted data length %d", len(got))
	}
}
