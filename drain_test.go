package sdrad_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sdrad "repro"
)

// TestAsyncDrainWithBusyElasticController pins the teardown liveness of
// the elastic layer: AsyncPool.Drain runs stopController inside the
// lifecycle machine transition and waits for the controller loop to
// exit, while the loop may concurrently be inside Resize probing the
// same machine. With a mutex-taking Resizable that probe blocked on the
// mutex the drain held — a permanent deadlock of every graceful
// shutdown. The config oscillates the controller (grow on any depth,
// shrink after one idle evaluation) so it is almost always mid-
// evaluation when the drain lands; the watchdog turns a regression into
// a test failure with stacks instead of a hung suite.
func TestAsyncDrainWithBusyElasticController(t *testing.T) {
	for round := 0; round < 8; round++ {
		pool, err := sdrad.NewPool(1)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := sdrad.NewAsyncPool(pool, sdrad.AsyncConfig{MaxBatch: 2, MaxInflight: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := ap.EnableElastic(sdrad.ElasticConfig{Min: 1, Max: 4, GrowDepthPerWorker: 1, ShrinkIdleEvals: 1}); err != nil {
			t.Fatal(err)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					// Errors are expected once the drain lands (typed
					// overload/closed rejections); the producers only
					// exist to keep the controller's kick channel hot.
					_ = ap.Do(context.Background(), func(c *sdrad.Ctx) error { return nil })
					if i%64 == 0 {
						runtime.Gosched() // let depth collapse so shrink evaluations fire too
					}
				}
			}()
		}
		for i := 0; i < 200; i++ {
			runtime.Gosched()
		}

		done := make(chan error, 1)
		go func() { done <- ap.Drain() }()
		select {
		case derr := <-done:
			if derr != nil {
				t.Fatalf("round %d: Drain: %v", round, derr)
			}
		case <-time.After(60 * time.Second):
			buf := make([]byte, 1<<20)
			t.Fatalf("round %d: Drain deadlocked against the elastic controller:\n%s",
				round, buf[:runtime.Stack(buf, true)])
		}
		close(stop)
		wg.Wait()
		if err := ap.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		if err := pool.Close(); err != nil {
			t.Fatalf("round %d: pool Close: %v", round, err)
		}
	}
}

// TestPoolDrainUnderSustainedAsyncTraffic pins the two halves of the
// hardened Pool.Drain contract against a still-serving async layer:
// the drain terminates even though the layer keeps feeding batches
// (they are shed with ErrPoolClosed instead of extending the drain
// forever), and once Drain has returned no batched call executes.
func TestPoolDrainUnderSustainedAsyncTraffic(t *testing.T) {
	pool, err := sdrad.NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pool.Close() })
	ap, err := sdrad.NewAsyncPool(pool, sdrad.AsyncConfig{MaxBatch: 4, MaxInflight: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ap.Close() })

	var executed atomic.Int64
	var executedAfterDrain atomic.Int64
	var drainReturned atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = ap.Do(context.Background(), func(c *sdrad.Ctx) error {
					if drainReturned.Load() {
						executedAfterDrain.Add(1)
					}
					executed.Add(1)
					return nil
				})
			}
		}()
	}
	for i := 0; i < 1_000_000 && executed.Load() == 0; i++ {
		runtime.Gosched()
	}
	if executed.Load() == 0 {
		t.Fatal("no batched call ever executed")
	}

	done := make(chan error, 1)
	go func() { done <- pool.Drain() }()
	select {
	case derr := <-done:
		drainReturned.Store(true)
		if derr != nil {
			t.Fatalf("Drain: %v", derr)
		}
	case <-time.After(60 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("Pool.Drain never terminated under sustained async batch traffic:\n%s",
			buf[:runtime.Stack(buf, true)])
	}

	// The drained pool sheds fresh batches without executing them.
	var ran atomic.Bool
	perr := ap.Do(context.Background(), func(c *sdrad.Ctx) error {
		ran.Store(true)
		return nil
	})
	if !errors.Is(perr, sdrad.ErrPoolClosed) {
		t.Errorf("post-drain batched call: err = %v, want ErrPoolClosed", perr)
	}
	if ran.Load() {
		t.Error("post-drain batched call executed")
	}

	close(stop)
	wg.Wait()
	if n := executedAfterDrain.Load(); n != 0 {
		t.Errorf("%d batched calls executed after Drain returned", n)
	}
}
