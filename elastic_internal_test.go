package sdrad

import (
	"context"
	"testing"
)

// TestRetiredWorkerNeverRedispatched pins the shrink contract from the
// inside: once Resize unpublishes a worker, no dispatch path — least-
// loaded, affinity-pinned, or batched — can reach it again. Its request
// counter is frozen and its retired flag is terminal.
func TestRetiredWorkerNeverRedispatched(t *testing.T) {
	p, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })

	// Touch every worker so each has a non-zero request history.
	for w := 0; w < 4; w++ {
		if err := p.RunOn(w, func(c *Ctx) error { return nil }); err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	victims := p.snapshot()[2:] // shrink removes the tail
	if err := p.Resize(2); err != nil {
		t.Fatalf("Resize(2): %v", err)
	}
	frozen := make([]uint64, len(victims))
	for i, v := range victims {
		v.mu.Lock()
		if !v.retired {
			t.Errorf("victim %d not marked retired after shrink", i)
		}
		v.mu.Unlock()
		frozen[i] = v.requests.Load()
	}

	// Hammer every dispatch path, including affinity indices that used
	// to map onto the retired workers (they now wrap modulo the live
	// set) and batched execution.
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if err := p.Do(ctx, func(c *Ctx) error { return nil }); err != nil {
			t.Fatalf("Do %d: %v", i, err)
		}
		if err := p.Do(ctx, func(c *Ctx) error { return nil }, WithWorker(2+i%2)); err != nil {
			t.Fatalf("pinned Do %d: %v", i, err)
		}
	}
	fns := make([]func(*Ctx) error, 8)
	for i := range fns {
		fns[i] = func(c *Ctx) error { return nil }
	}
	for _, err := range p.DoBatch(ctx, fns, WithWorker(3)) {
		if err != nil {
			t.Fatalf("batched call: %v", err)
		}
	}

	for i, v := range victims {
		if got := v.requests.Load(); got != frozen[i] {
			t.Errorf("retired worker %d executed %d new requests after shrink", i, got-frozen[i])
		}
		if got := v.inflight.Load(); got != 0 {
			t.Errorf("retired worker %d reports %d inflight", i, got)
		}
	}
}
