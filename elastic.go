package sdrad

import (
	"fmt"
	"sync"
)

// This file implements the optional elastic-worker controller for
// AsyncPool (DESIGN.md §13). The controller is event-driven rather than
// timer-driven — the virtual-clock discipline bans wall-clock pacing —
// so it re-evaluates on the signals that carry the load information
// anyway: a batch finishing (queue depth just changed) and an overload
// rejection (admission control just fired). From those it reads the two
// pressure signals the ISSUE names: summed submission-queue depth from
// internal/submit and the per-batch p99 virtual-cycle latency from the
// internal/metrics histograms, growing the worker set under pressure
// and shrinking it back after sustained idleness.

// ElasticConfig configures the elastic-worker controller.
type ElasticConfig struct {
	// Min and Max bound the worker count the controller may set
	// (defaults: the current worker count for both, which disables
	// scaling in that direction).
	Min, Max int
	// GrowDepthPerWorker is the queue-depth pressure threshold: when the
	// summed queue depth reaches this many calls per live worker, the
	// controller doubles the worker set (capped at Max). Default: the
	// configured MaxBatch — a full batch already waiting per worker.
	GrowDepthPerWorker int
	// GrowLatencyP99 additionally grows when the p99 per-call virtual-
	// cycle latency at any observed batch size exceeds this many cycles
	// (0 disables the latency signal).
	GrowLatencyP99 uint64
	// ShrinkIdleEvals is how many consecutive low-pressure evaluations
	// (total depth at most one call per worker) must pass before the
	// controller halves the worker set (floored at Min). Default 8.
	ShrinkIdleEvals int
}

func (c *ElasticConfig) fill(a *AsyncPool) error {
	workers := a.Workers()
	if c.Min <= 0 {
		c.Min = workers
	}
	if c.Max <= 0 {
		c.Max = workers
	}
	if c.Min > c.Max {
		return fmt.Errorf("sdrad: elastic Min %d > Max %d", c.Min, c.Max)
	}
	if c.GrowDepthPerWorker <= 0 {
		c.GrowDepthPerWorker = a.cfg.MaxBatch
	}
	if c.ShrinkIdleEvals <= 0 {
		c.ShrinkIdleEvals = 8
	}
	return nil
}

// elasticController owns the scaling loop. Signals arrive on kick (a
// capacity-1 channel: coalescing bursts is exactly right — the
// controller only needs to know "pressure may have changed", not how
// many times); the loop re-reads the live signals on every kick so a
// coalesced burst is never under-observed.
type elasticController struct {
	a   *AsyncPool
	cfg ElasticConfig

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	// idle counts consecutive low-pressure evaluations (loop-local use
	// only, but kept here for Stats).
	mu         sync.Mutex
	idle       int
	grown      uint64
	shrunk     uint64
	maxWorkers int
}

// ElasticStats reports the controller's scaling activity.
type ElasticStats struct {
	// Grown and Shrunk count resize operations in each direction.
	Grown, Shrunk uint64
	// MaxWorkers is the high-water worker count the controller reached.
	MaxWorkers int
	// Workers is the current worker count.
	Workers int
}

// EnableElastic starts the elastic controller with cfg. Legal once,
// while the async layer is serving; the controller stops automatically
// on Drain/Stop/Close. Manual Resize calls still work and compose with
// the controller (both go through the same serialized Resize).
func (a *AsyncPool) EnableElastic(cfg ElasticConfig) error {
	if err := a.lc.Resizable(); err != nil {
		return err
	}
	if err := cfg.fill(a); err != nil {
		return err
	}
	a.ctrlMu.Lock()
	defer a.ctrlMu.Unlock()
	// Re-check now that ctrlMu is held: Drain/Stop publish the machine
	// state before running stopController (which also takes ctrlMu), so
	// either this check observes Draining/Stopped and refuses, or the
	// teardown's stopController has yet to take ctrlMu and will stop
	// whatever is installed here. Without the re-check a controller
	// installed in the window between the gate above and a completed
	// Drain would leak its loop onto a drained layer.
	if err := a.lc.Resizable(); err != nil {
		return err
	}
	if a.ctrl != nil {
		return fmt.Errorf("sdrad: elastic controller already enabled")
	}
	c := &elasticController{
		a:          a,
		cfg:        cfg,
		kick:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		maxWorkers: a.Workers(),
	}
	a.ctrl = c
	go c.loop()
	return nil
}

// ElasticStats returns the controller's scaling counters (zero value
// when EnableElastic was never called).
func (a *AsyncPool) ElasticStats() ElasticStats {
	a.ctrlMu.Lock()
	c := a.ctrl
	a.ctrlMu.Unlock()
	st := ElasticStats{Workers: a.Workers()}
	if c == nil {
		return st
	}
	c.mu.Lock()
	st.Grown, st.Shrunk, st.MaxWorkers = c.grown, c.shrunk, c.maxWorkers
	c.mu.Unlock()
	return st
}

// kickController nudges the controller to re-evaluate (no-op when the
// controller is not enabled; bursts coalesce in the 1-slot channel).
func (a *AsyncPool) kickController() {
	a.ctrlMu.Lock()
	c := a.ctrl
	a.ctrlMu.Unlock()
	if c == nil {
		return
	}
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// stopController stops the controller and waits for its loop to exit,
// so no resize can race teardown. Idempotent.
func (a *AsyncPool) stopController() {
	a.ctrlMu.Lock()
	c := a.ctrl
	a.ctrl = nil
	a.ctrlMu.Unlock()
	if c == nil {
		return
	}
	close(c.stop)
	<-c.done
}

func (c *elasticController) loop() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
		}
		c.evaluate()
	}
}

// evaluate reads the pressure signals and resizes if warranted.
func (c *elasticController) evaluate() {
	a := c.a
	q := a.queues()
	if q == nil {
		return
	}
	workers := q.Workers()
	depth := q.TotalLoad()

	grow := depth >= int64(c.cfg.GrowDepthPerWorker)*int64(workers)
	if !grow && c.cfg.GrowLatencyP99 > 0 {
		for _, s := range a.BatchLatency() {
			if s.P99 > 0 && uint64(s.P99) > c.cfg.GrowLatencyP99 {
				grow = true
				break
			}
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case grow && workers < c.cfg.Max:
		n := workers * 2
		if n > c.cfg.Max {
			n = c.cfg.Max
		}
		c.idle = 0
		c.mu.Unlock()
		err := a.Resize(n)
		c.mu.Lock()
		if err == nil {
			c.grown++
			if n > c.maxWorkers {
				c.maxWorkers = n
			}
		}
	case depth <= int64(workers):
		c.idle++
		if c.idle >= c.cfg.ShrinkIdleEvals && workers > c.cfg.Min {
			n := workers / 2
			if n < c.cfg.Min {
				n = c.cfg.Min
			}
			c.idle = 0
			c.mu.Unlock()
			err := a.Resize(n)
			c.mu.Lock()
			if err == nil {
				c.shrunk++
			}
		}
	default:
		c.idle = 0
	}
}
