// Benchmarks for the cluster tier (DESIGN.md §14): routed dispatch
// through the rendezvous placement + lease heartbeat + synchronous
// replication path at 1/2/4 nodes, reported in the same vops/s metric
// as the single-pool E1 baselines so `make bench-cluster` can diff the
// routing overhead directly.
package sdrad_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/workload"
)

func benchCluster(b *testing.B, nodes, replicas int) {
	b.Helper()
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Nodes:    nodes,
		Replicas: replicas,
		Sys:      core.DefaultConfig(),
		Server:   kvstore.ServerConfig{Mode: kvstore.ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond},
		Capacity: 64 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if cerr := router.Close(); cerr != nil {
			b.Fatal(cerr)
		}
	}()
	gen, err := workload.NewKV(workload.KVConfig{Seed: 1, Keys: 5000})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	startVT := router.VirtualTime() // exclude setup from the virtual metric
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := router.HandleContext(ctx, i%8, gen.Next()); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.StopTimer()
	// The cluster's virtual makespan is the max across nodes, which run
	// concurrently — the same parallel-time convention Pool uses.
	if vt := time.Duration(router.VirtualTime() - startVT); vt > 0 {
		b.ReportMetric(float64(b.N)/vt.Seconds(), "vops/s")
	}
}

func BenchmarkClusterRouter1Node(b *testing.B)  { benchCluster(b, 1, 0) }
func BenchmarkClusterRouter2Nodes(b *testing.B) { benchCluster(b, 2, 1) }
func BenchmarkClusterRouter4Nodes(b *testing.B) { benchCluster(b, 4, 1) }
