package sdrad

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
)

// This file wires the resilience-campaign engine (internal/campaign) to
// the three public Runner implementations. The engine is deliberately
// backend-agnostic — it sees only campaign.Executor — and this file
// provides the production executors: per-worker Domains on one
// Supervisor, a Pool with worker-pinned dispatch, and per-worker FFI
// Bridges. RunCampaign is the public entry point; cmd/sdrad-campaign is
// the CLI around it.

// RunCampaign executes a deterministic resilience campaign against the
// real Domain/Pool/Bridge backends and returns its structured trace.
// Same cfg.Seed ⇒ byte-identical Trace.JSON(). See DESIGN.md §8 for the
// scenario schema and the differential oracles built on this entry
// point.
func RunCampaign(cfg campaign.Config) (*campaign.Trace, error) {
	return campaign.Run(cfg, CampaignFactory())
}

// RunCampaignBatched is RunCampaign through the batched execution
// pipeline: requests coalesce into per-worker batches of batchSize, so
// pool-target scenarios exercise the amortized batch entry. Per-request
// outcomes and survivor digests are oracle-identical to RunCampaign
// (campaign.CheckBatched asserts this); virtual cycles differ — that is
// the amortization.
func RunCampaignBatched(cfg campaign.Config, batchSize int) (*campaign.Trace, error) {
	return campaign.RunBatched(cfg, CampaignFactory(), batchSize)
}

// CheckCampaignOracles runs every differential oracle (same-seed
// determinism, worker-count invariance, benign cycle parity, and
// batched==serial outcome/digest equality) for cfg against the real
// backends.
func CheckCampaignOracles(cfg campaign.Config, workerCounts ...int) ([]campaign.OracleResult, error) {
	return campaign.CheckAll(cfg, CampaignFactory(), workerCounts...)
}

// CheckCampaignOraclesAgainst is CheckCampaignOracles reusing a trace
// already produced by RunCampaign(cfg), saving one campaign execution.
func CheckCampaignOraclesAgainst(trace *campaign.Trace, cfg campaign.Config, workerCounts ...int) ([]campaign.OracleResult, error) {
	return campaign.CheckAllAgainst(trace, cfg, CampaignFactory(), workerCounts...)
}

// CampaignFactory provisions campaign executors over the public Runner
// implementations. Campaign domains use a fixed 8-page heap / 4-page
// stack (the servers' worker shape), so traces are comparable across
// backends.
func CampaignFactory() campaign.ExecutorFactory {
	domOpts := []DomainOption{WithHeapPages(8), WithStackPages(4)}
	return func(target campaign.Target, workers int) (campaign.Executor, error) {
		if workers <= 0 {
			return nil, fmt.Errorf("sdrad: campaign executor needs workers > 0, got %d", workers)
		}
		switch target {
		case campaign.TargetDomain:
			sup := New()
			doms := make([]*Domain, workers)
			for i := range doms {
				d, err := sup.NewDomain(domOpts...)
				if err != nil {
					return nil, fmt.Errorf("sdrad: campaign domain %d: %w", i, err)
				}
				doms[i] = d
			}
			return &domainExecutor{sup: sup, doms: doms}, nil
		case campaign.TargetPool:
			p, err := NewPoolWithDomain(workers, domOpts)
			if err != nil {
				return nil, fmt.Errorf("sdrad: campaign pool: %w", err)
			}
			return &poolExecutor{pool: p}, nil
		case campaign.TargetBridge:
			sup := New()
			bridges := make([]*Bridge, workers)
			for i := range bridges {
				b, err := sup.NewBridge(CodecBinary, domOpts...)
				if err != nil {
					return nil, fmt.Errorf("sdrad: campaign bridge %d: %w", i, err)
				}
				bridges[i] = b
			}
			return &bridgeExecutor{sup: sup, bridges: bridges}, nil
		default:
			return nil, fmt.Errorf("sdrad: unknown campaign target %v", target)
		}
	}
}

// budgetOpts translates the engine's explicit cycle budget into run
// options (0 = none).
func budgetOpts(budget uint64, extra ...RunOption) []RunOption {
	opts := extra
	if budget > 0 {
		opts = append(opts, WithCycleBudget(budget))
	}
	return opts
}

// domainExecutor runs requests on per-worker Domains of one Supervisor:
// one simulated machine, persistent domain heaps across requests.
type domainExecutor struct {
	sup  *Supervisor
	doms []*Domain
}

func (e *domainExecutor) Exec(worker int, budget uint64, fn func(*core.DomainCtx) error) error {
	return e.doms[worker%len(e.doms)].Do(context.Background(), fn, budgetOpts(budget)...)
}

func (e *domainExecutor) Detections() map[string]uint64 { return e.sup.DetectionCounts() }

func (e *domainExecutor) Rewinds() uint64 {
	var n uint64
	for _, d := range e.doms {
		if st, err := d.Stats(); err == nil {
			n += st.Rewinds
		}
	}
	return n
}

func (e *domainExecutor) VirtualCycles() uint64 { return e.sup.VirtualCycles() }

func (e *domainExecutor) Close() error {
	var first error
	for _, d := range e.doms {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// poolExecutor runs requests on a Pool, pinning each request to its
// scheduled worker so the engine's dispatch stream fully determines
// placement.
type poolExecutor struct {
	pool *Pool
}

func (e *poolExecutor) Exec(worker int, budget uint64, fn func(*core.DomainCtx) error) error {
	return e.pool.Do(context.Background(), fn, budgetOpts(budget, WithWorker(worker))...)
}

// ExecBatch implements campaign.BatchExecutor: same-worker calls
// coalesce into one batched domain execution (pool.dispatchBatch),
// whose replay rule guarantees the positional results match serial
// Exec.
func (e *poolExecutor) ExecBatch(worker int, calls []campaign.BatchCall) []error {
	bcalls := make([]*batchCall, len(calls))
	for i, c := range calls {
		bcalls[i] = &batchCall{
			ctx: context.Background(),
			fn:  c.Fn,
			set: runSettings{budget: c.Budget, worker: worker, hasWorker: true},
		}
	}
	e.pool.dispatchBatch(worker, true, bcalls)
	errs := make([]error, len(calls))
	for i, c := range bcalls {
		errs[i] = c.err
	}
	return errs
}

// Resize implements campaign.ResizableExecutor: the engine's resize
// schedule maps directly onto the pool's elastic worker set. The
// engine's dispatch stream stays keyed by the configured worker count
// (scheduled worker indices are affinity keys, mapped onto the live set
// modulo its size), which is what makes a resize behaviorally invisible
// — the resize oracle proves it.
func (e *poolExecutor) Resize(n int) error { return e.pool.Resize(n) }

// Workers returns the pool's live worker count.
func (e *poolExecutor) Workers() int { return e.pool.Workers() }

// Interface compliance checks: the pool backend supports batching and
// elastic resizing.
var (
	_ campaign.BatchExecutor     = (*poolExecutor)(nil)
	_ campaign.ResizableExecutor = (*poolExecutor)(nil)
)

func (e *poolExecutor) Detections() map[string]uint64 { return e.pool.DetectionCounts() }

func (e *poolExecutor) Rewinds() uint64 { return e.pool.DomainStats().Rewinds }

func (e *poolExecutor) VirtualCycles() uint64 { return e.pool.VirtualCycles() }

func (e *poolExecutor) Close() error { return e.pool.Close() }

// bridgeExecutor runs requests on the backing domains of per-worker FFI
// bridges: one simulated machine, the Bridge Runner surface.
type bridgeExecutor struct {
	sup     *Supervisor
	bridges []*Bridge
}

func (e *bridgeExecutor) Exec(worker int, budget uint64, fn func(*core.DomainCtx) error) error {
	return e.bridges[worker%len(e.bridges)].Do(context.Background(), fn, budgetOpts(budget)...)
}

func (e *bridgeExecutor) Detections() map[string]uint64 { return e.sup.DetectionCounts() }

func (e *bridgeExecutor) Rewinds() uint64 {
	var n uint64
	for _, b := range e.bridges {
		if st, err := b.Domain().Stats(); err == nil {
			n += st.Rewinds
		}
	}
	return n
}

func (e *bridgeExecutor) VirtualCycles() uint64 { return e.sup.VirtualCycles() }

func (e *bridgeExecutor) Close() error {
	var first error
	for _, b := range e.bridges {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
