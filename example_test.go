package sdrad_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	sdrad "repro"
)

// The basic lifecycle: create a domain, run work, survive a violation.
func Example() {
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		fmt.Println("init:", err)
		return
	}
	defer func() { _ = dom.Close() }()

	// Work inside the domain touches only domain memory.
	err = dom.Run(func(c *sdrad.Ctx) error {
		p := c.MustAlloc(32)
		c.MustStore(p, []byte("hello"))
		return nil
	})
	fmt.Println("clean run:", err)

	// A memory bug is contained: the domain rewinds, the program lives.
	err = dom.Run(func(c *sdrad.Ctx) error {
		c.MustStore64(0xdead0000, 1)
		return nil
	})
	if v, ok := sdrad.IsViolation(err); ok {
		fmt.Println("contained:", v.Mechanism)
	}
	// Output:
	// clean run: <nil>
	// contained: segfault
}

// RunWithFallback is the paper's "alternate action": the caller supplies
// what to do when the domain is rewound.
func ExampleDomain_RunWithFallback() {
	sup := sdrad.New()
	dom, _ := sup.NewDomain()
	err := dom.RunWithFallback(
		func(c *sdrad.Ctx) error {
			c.Violate(errors.New("corrupt input detected"))
			return nil
		},
		func(v *sdrad.ViolationError) error {
			fmt.Println("alternate action after rewind")
			return nil
		},
	)
	fmt.Println("err:", err)
	// Output:
	// alternate action after rewind
	// err: <nil>
}

// The FFI bridge wraps memory-unsafe "foreign" functions with serialized
// argument passing and containment.
func ExampleSupervisor_NewBridge() {
	sup := sdrad.New()
	bridge, _ := sup.NewBridge(sdrad.CodecBinary)
	_ = bridge.Register(sdrad.Foreign{
		Name: "length",
		Fn: func(_ *sdrad.Ctx, args []any) ([]any, error) {
			return []any{int64(len(args[0].(string)))}, nil
		},
	})
	res, _ := bridge.Call("length", "hello ffi")
	fmt.Println("result:", res[0])
	// Output:
	// result: 9
}

// Read-only sharing lets one domain publish data another may read but
// not write.
func ExampleDomain_ShareReadOnlyWith() {
	sup := sdrad.New()
	owner, _ := sup.NewDomain()
	viewer, _ := sup.NewDomain()

	var addr sdrad.Addr
	_ = owner.Run(func(c *sdrad.Ctx) error {
		addr = c.MustAlloc(8)
		c.MustStore(addr, []byte("shared"))
		return nil
	})
	_ = owner.ShareReadOnlyWith(viewer)

	_ = viewer.Run(func(c *sdrad.Ctx) error {
		buf := make([]byte, 6)
		c.MustLoad(addr, buf)
		fmt.Printf("viewer read: %s\n", buf)
		return nil
	})
	err := viewer.Run(func(c *sdrad.Ctx) error {
		c.MustStore(addr, []byte("tamper"))
		return nil
	})
	_, isViolation := sdrad.IsViolation(err)
	fmt.Println("write contained:", isViolation)
	// Output:
	// viewer read: shared
	// write contained: true
}

// Quarantine cuts off a domain that keeps violating.
func ExampleDomain_SetViolationBudget() {
	sup := sdrad.New()
	dom, _ := sup.NewDomain()
	_ = dom.SetViolationBudget(2)
	for i := 0; i < 2; i++ {
		_ = dom.Run(func(c *sdrad.Ctx) error {
			c.MustStore64(0, 1)
			return nil
		})
	}
	err := dom.Run(func(*sdrad.Ctx) error { return nil })
	fmt.Println("quarantined:", errors.Is(err, sdrad.ErrQuarantined))
	// Output:
	// quarantined: true
}

// Pool executes domains in parallel: N workers, each a private simulated
// machine with a warm domain, safe to share across goroutines.
func ExampleNewPool() {
	pool, _ := sdrad.NewPool(4)
	defer func() { _ = pool.Close() }()

	var wg sync.WaitGroup
	var contained atomic.Uint64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			err := pool.Run(func(c *sdrad.Ctx) error {
				p := c.MustAlloc(32)
				c.MustStore(p, []byte("parallel work"))
				if g == 0 {
					c.MustStore64(0xbad000, 1) // one goroutine misbehaves
				}
				return nil
			})
			if _, ok := sdrad.IsViolation(err); ok {
				contained.Add(1)
			}
		}(g)
	}
	wg.Wait()

	fmt.Println("workers:", pool.Workers())
	fmt.Println("contained:", contained.Load())
	// Output:
	// workers: 4
	// contained: 1
}
