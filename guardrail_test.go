package sdrad_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestNoWallClockInLibraryCode is the clock guardrail: non-test library
// code must never consult the wall clock, or virtual time stops being
// deterministic. Only internal/vclock (which owns the one sanctioned
// deadline-to-cycles conversion) and cmd/ binaries may call time.Now,
// time.Since, or time.Until. The check parses every library source file,
// so comments and strings cannot trip it and import aliases cannot dodge
// it.
func TestNoWallClockInLibraryCode(t *testing.T) {
	forbidden := map[string]bool{"Now": true, "Since": true, "Until": true}

	var violations []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			// Exempt: cmd binaries and the virtual clock itself.
			if path == "cmd" || path == filepath.Join("internal", "vclock") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}

		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		// Resolve the local name(s) of the "time" package in this file.
		timeNames := map[string]bool{}
		for _, imp := range file.Imports {
			p, perr := strconv.Unquote(imp.Path.Value)
			if perr != nil || p != "time" {
				continue
			}
			name := "time"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			timeNames[name] = true
		}
		if len(timeNames) == 0 {
			return nil
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[ident.Name] || !forbidden[sel.Sel.Name] {
				return true
			}
			violations = append(violations,
				fset.Position(sel.Pos()).String()+": time."+sel.Sel.Name)
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("wall clock call in library code: %s (route it through internal/vclock)", v)
	}
}

// TestExportedSymbolsDocumented is the docs guardrail: every exported
// top-level declaration of the public root package must carry a doc
// comment, so `go doc repro` actually explains the API. The check
// parses declarations (not text), so build tags, grouped declarations,
// and factored var/const blocks are handled; fields and methods are
// covered transitively by reviewers, not this lint.
func TestExportedSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	matches, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	var undocumented []string
	for _, path := range matches {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		report := func(pos token.Pos, kind, name string) {
			undocumented = append(undocumented,
				fmt.Sprintf("%s: exported %s %s", fset.Position(pos), kind, name))
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods count: an exported method on an exported type is
				// API surface too. Unexported receivers are skipped.
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				if d.Doc == nil {
					report(d.Pos(), "func", d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && !groupDoc {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && s.Doc == nil && !groupDoc {
								report(n.Pos(), "var/const", n.Name)
							}
						}
					}
				}
			}
		}
	}
	for _, u := range undocumented {
		t.Errorf("%s has no doc comment", u)
	}
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
