package sdrad_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestNoWallClockInLibraryCode is the clock guardrail: non-test library
// code must never consult the wall clock, or virtual time stops being
// deterministic. Only internal/vclock (which owns the one sanctioned
// deadline-to-cycles conversion) and cmd/ binaries may call time.Now,
// time.Since, or time.Until. The check parses every library source file,
// so comments and strings cannot trip it and import aliases cannot dodge
// it.
func TestNoWallClockInLibraryCode(t *testing.T) {
	forbidden := map[string]bool{"Now": true, "Since": true, "Until": true}

	var violations []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			// Exempt: cmd binaries and the virtual clock itself.
			if path == "cmd" || path == filepath.Join("internal", "vclock") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}

		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		// Resolve the local name(s) of the "time" package in this file.
		timeNames := map[string]bool{}
		for _, imp := range file.Imports {
			p, perr := strconv.Unquote(imp.Path.Value)
			if perr != nil || p != "time" {
				continue
			}
			name := "time"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			timeNames[name] = true
		}
		if len(timeNames) == 0 {
			return nil
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[ident.Name] || !forbidden[sel.Sel.Name] {
				return true
			}
			violations = append(violations,
				fset.Position(sel.Pos()).String()+": time."+sel.Sel.Name)
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("wall clock call in library code: %s (route it through internal/vclock)", v)
	}
}
