// Guardrail tests: repo-wide invariants enforced by running the
// sdradlint analyzers (internal/analysis) over the whole module. These
// replace the single-purpose AST walkers that used to live here. The
// analyzers are type-aware — aliased imports, dot-imports, and
// function-value indirection cannot dodge the wall-clock ban — and
// their exemptions travel as //lint:allow package directives instead of
// path lists, so moving a package never silently changes coverage.
// TestSeededViolationsAreCaught keeps the zero-findings assertions from
// rotting into vacuous passes.
package sdrad_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	lintOnce sync.Once
	lintU    *analysis.Universe
	lintErr  error
)

// moduleUniverse loads and type-checks every module package once for
// all guardrail tests.
func moduleUniverse(t *testing.T) *analysis.Universe {
	t.Helper()
	lintOnce.Do(func() { lintU, lintErr = analysis.LoadPackages(".", "./...") })
	if lintErr != nil {
		t.Fatalf("loading module packages: %v", lintErr)
	}
	return lintU
}

// expectClean runs one analyzer over the module and reports every
// finding as a failure.
func expectClean(t *testing.T, a *analysis.Analyzer) {
	t.Helper()
	findings, err := analysis.Run([]*analysis.Analyzer{a}, moduleUniverse(t))
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
}

// TestNoWallClockInLibraryCode asserts no library package reads the
// wall clock: virtual time must be the only clock, or same-seed runs
// stop producing byte-identical traces. The only exemptions are the
// packages carrying a "//lint:allow wallclock <reason>" directive
// (internal/vclock's deadline conversion and the benchmark harness).
func TestNoWallClockInLibraryCode(t *testing.T) {
	expectClean(t, analysis.Wallclock)
}

// TestExportedSymbolsDocumented asserts every exported symbol of the
// publicly importable packages carries a doc comment.
func TestExportedSymbolsDocumented(t *testing.T) {
	expectClean(t, analysis.DocExport)
}

// TestUnchargedAccessorsContained asserts the uncharged Peek64/Poke64
// accessors are reached only from their defining package and the
// sanctioned allocator sweep, keeping cycle accounting exact.
func TestUnchargedAccessorsContained(t *testing.T) {
	expectClean(t, analysis.UnchargedMem)
}

// TestSeededViolationsAreCaught writes a deliberately violating package
// to a temporary fixture tree and asserts each module-gating analyzer
// still flags it: proof the clean runs above cannot pass vacuously.
func TestSeededViolationsAreCaught(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "seeded")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package seeded

import "time"

func Stamp() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	u, err := analysis.LoadFixtureTree(root, "seeded")
	if err != nil {
		t.Fatalf("loading seeded fixture: %v", err)
	}
	for _, a := range []*analysis.Analyzer{analysis.Wallclock, analysis.DocExport} {
		findings, err := analysis.Run([]*analysis.Analyzer{a}, u)
		if err != nil {
			t.Fatalf("running %s over seeded fixture: %v", a.Name, err)
		}
		if len(findings) == 0 {
			t.Errorf("%s missed the seeded violation", a.Name)
		}
	}
}
