# SDRaD-Go development targets. `make check` is the full gate: the
# tier-1 verify (build + test) plus formatting, vet, and the race
# detector over the concurrent Supervisor-pool paths.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Throughput-scaling benchmarks for the supervisor pools (E1 parallel).
bench:
	$(GO) test -run '^$$' -bench 'E1KVSDRaDParallel|E1HTTPSDRaDParallel' -benchtime 1s .
