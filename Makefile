# SDRaD-Go development targets. `make check` is the full gate: the
# tier-1 verify (build + test) plus formatting, vet, the sdradlint
# invariant analyzers, and the race detector over the concurrent
# Supervisor-pool and submission-queue paths.

GO ?= go

.PHONY: check fmt vet lint docs build test race test-lifecycle test-cluster bench bench-pools bench-batched bench-durable bench-elastic bench-cluster bench-smoke campaign-smoke

check: fmt vet lint build test race test-lifecycle test-cluster

# Lifecycle/elasticity conformance tier (DESIGN.md §13): the shared
# lifecycletest battery against every component (Domain, Pool,
# AsyncPool, kvstore.Pool, both NetServers), the -race elasticity
# hammers (concurrent Resize under load with a mid-run drain), the
# retired-worker and durable-acked-write regressions, the controller
# grow/shrink cycle, and the drain regressions (whole-call drain
# accounting, controller-teardown deadlock freedom, batch shedding).
test-lifecycle:
	$(GO) test -race -run 'TestLifecycleConformance|TestElastic|TestResiz|TestRetiredWorkerNeverRedispatched|Drain' ./...

# Cluster tier gate (DESIGN.md §14): rendezvous placement, lease
# membership, crash/rolling/partition state-machine tests, the wire
# fuzz seeds, the churn dispatch hammer (no acked write lost, no nacked
# write executed), and the cluster==single-pool differential oracle —
# all under the race detector.
test-cluster:
	$(GO) test -race -count=1 ./internal/cluster/...

# Lint gate: the sdradlint invariant analyzers (internal/analysis) over
# every package — wall-clock ban, uncharged-accessor containment,
# deterministic map iteration, typed-error classification, and
# exported-symbol docs (DESIGN.md §10 maps each to its soundness
# argument). Findings land in LINT_FINDINGS.json; CI publishes the file
# when the gate fails.
lint:
	$(GO) run ./cmd/sdradlint -json-out LINT_FINDINGS.json ./...

# Back-compat alias: the old docs gate is subsumed by lint (docexport
# now covers every publicly importable package, not just the root).
docs: lint

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full E1-E8 + ablation suite with fixed flags, emitting BENCH_PR5.json
# (name -> iters, ns/op, vops/s, ...) for PR-over-PR perf diffing. The
# suite includes the batched E1 pair (batch sizes 1/8/32). Pass
# BASELINE=<prev.json> to embed a previous report for comparison.
BASELINE ?=
bench:
	$(GO) run ./cmd/benchjson -out BENCH_PR5.json $(if $(BASELINE),-baseline $(BASELINE))

# Throughput-scaling benchmarks for the supervisor pools (E1 parallel).
bench-pools:
	$(GO) test -run '^$$' -bench 'E1KVSDRaDParallel|E1HTTPSDRaDParallel' -benchtime 1s .

# Batched-execution benchmarks only: serial-vs-batched E1 at batch
# sizes 1/8/32 plus the AsyncPool submission path, emitted as JSON (CI
# uploads BENCH_BATCHED_CI.json as an artifact).
bench-batched:
	$(GO) run ./cmd/benchjson -bench 'E1KVSDRaD$$|E1HTTPSDRaD$$|E1KVSDRaDBatched|E1HTTPSDRaDBatched|AsyncPoolSubmit' \
		-benchtime 1x -out BENCH_BATCHED_CI.json

# Durability cost on the E1 hot path: the serial/batched SDRaD pair
# against BenchmarkE1KVSDRaDDurable (fsync on/off x batch 1/8/32 plus a
# snapshot-cadence sweep), emitted as BENCH_PR7.json with the PR 5
# report embedded as baseline. The fsyncs/req metric records the
# group-commit amortization; vops/s is host-independent.
bench-durable:
	$(GO) run ./cmd/benchjson -bench 'E1KVSDRaD$$|E1KVSDRaDBatched|E1KVSDRaDDurable' \
		-benchtime 200x -out BENCH_PR7.json -baseline BENCH_PR5.json

# Elastic-controller burst benchmark plus the AsyncPool submission
# baseline, emitted as BENCH_PR9.json with the PR 7 report embedded for
# comparison. 2000 iterations are needed for real controller activity:
# the custom metrics (workers_max/workers_final, grown/shrunk,
# sheds/op) pin the grow-under-burst / shrink-back-to-Min cycle.
bench-elastic:
	$(GO) run ./cmd/benchjson -bench 'ElasticBurst|AsyncPoolSubmit' \
		-benchtime 2000x -out BENCH_PR9.json -baseline BENCH_PR7.json

# Cluster routing overhead on the E1 hot path: routed dispatch at
# 1/2/4 nodes (rendezvous placement + lease heartbeat + synchronous
# replication) against the single-pool E1 SDRaD baseline, emitted as
# BENCH_PR10.json with the PR 9 report embedded for comparison. The
# vops/s metric uses the cluster's parallel makespan (max across
# nodes), matching the pool convention.
bench-cluster:
	$(GO) run ./cmd/benchjson -bench 'ClusterRouter|E1KVSDRaD$$' \
		-benchtime 200x -out BENCH_PR10.json -baseline BENCH_PR9.json

# One-iteration smoke pass over the suite (CI: proves the benches run).
bench-smoke:
	$(GO) run ./cmd/benchjson -benchtime 1x -out BENCH_CI.json

# Deterministic resilience-campaign smoke (CI): fixed seed, three
# attacked scenarios plus one benign control (so every oracle — same
# seed, worker counts, benign cycle parity — actually runs) plus the
# elastic-resize scenario (so the resize oracle replays its grow/shrink
# schedule), plus the cluster==single-pool differential oracle at node
# counts 1/2/4, serial and batched 8/32, through node-crash,
# rolling-restart, and partition schedules. Writes the JSON trace to
# CAMPAIGN_CI.json for artifact upload; two runs of this target produce
# byte-identical traces.
campaign-smoke:
	$(GO) run ./cmd/sdrad-campaign -seed 42 -requests 100 \
		-scenarios kv-pool-mixed,http-domain-malformed,ffi-bridge-binary,kv-pool-benign,kv-pool-resize \
		-gateway gw-attack-tenants \
		-oracles -cluster -out CAMPAIGN_CI.json
