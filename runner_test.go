package sdrad_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sdrad "repro"
	"repro/internal/core"
)

// slowCostModel returns a cost model with a 1 MHz simulated core, so
// budget tests preempt after a small amount of simulated work.
func slowCostModel() sdrad.CostModel {
	m := sdrad.DefaultCostModel()
	m.CPUHz = 1_000_000
	return m
}

// runawayUntilPreempted runs an unbounded store loop under ctx on a
// fresh supervisor and returns the resulting BudgetError and the number
// of loop iterations that executed.
func runawayUntilPreempted(t *testing.T, ctx context.Context, opts ...sdrad.RunOption) (*sdrad.BudgetError, int) {
	t.Helper()
	sup := sdrad.New(sdrad.WithCostModel(slowCostModel()))
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()

	iters := 0
	payload := make([]byte, 4096)
	err = dom.Do(ctx, func(c *sdrad.Ctx) error {
		p := c.MustAlloc(len(payload))
		for { // runaway: never returns on its own
			c.MustStore(p, payload)
			iters++
		}
	}, opts...)
	b, ok := sdrad.IsBudget(err)
	if !ok {
		t.Fatalf("runaway run returned %v, want *BudgetError", err)
	}
	return b, iters
}

// TestDoDeadlineDeterministicBudget is the acceptance test for deadline
// mapping: a context deadline aborts a runaway domain run with a
// *BudgetError at the same virtual cycle count on every run. The wall
// deadline is quantized (vclock.DeadlineQuantum) before it becomes a
// cycle budget, so host scheduling jitter cannot shift the preemption
// point.
func TestDoDeadlineDeterministicBudget(t *testing.T) {
	run := func() (*sdrad.BudgetError, int) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		return runawayUntilPreempted(t, ctx)
	}
	b1, iters1 := run()
	b2, iters2 := run()

	if b1.Used == 0 || b1.Budget == 0 {
		t.Fatalf("BudgetError not populated: %+v", b1)
	}
	if b1.Used < b1.Budget {
		t.Errorf("Used %d < Budget %d: preempted early", b1.Used, b1.Budget)
	}
	if b1.Budget != b2.Budget {
		t.Errorf("budget differs across runs: %d vs %d", b1.Budget, b2.Budget)
	}
	if b1.Used != b2.Used {
		t.Errorf("preemption cycle differs across runs: %d vs %d", b1.Used, b2.Used)
	}
	if iters1 != iters2 {
		t.Errorf("iterations differ across runs: %d vs %d", iters1, iters2)
	}
}

func TestDoExplicitCycleBudget(t *testing.T) {
	const budget = 500_000
	b, _ := runawayUntilPreempted(t, context.Background(), sdrad.WithCycleBudget(budget))
	if b.Budget != budget {
		t.Errorf("Budget = %d, want %d", b.Budget, budget)
	}
	if b.Used < budget {
		t.Errorf("Used = %d, want >= %d", b.Used, budget)
	}
}

// TestDoCycleBudgetTightensDeadline: with both a deadline and an
// explicit budget, the tighter one applies.
func TestDoCycleBudgetTightensDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	const budget = 250_000
	b, _ := runawayUntilPreempted(t, ctx, sdrad.WithCycleBudget(budget))
	if b.Budget != budget {
		t.Errorf("Budget = %d, want explicit %d to win over the deadline", b.Budget, budget)
	}
}

// TestDoBudgetRewindsAndDiscards: a preempted domain is rewound and
// discarded like a violated one — its memory is pristine afterwards and
// the event is accounted as a preemption, not a violation.
func TestDoBudgetRewindsAndDiscards(t *testing.T) {
	sup := sdrad.New(sdrad.WithCostModel(slowCostModel()))
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()

	var addr sdrad.Addr
	err = dom.Do(context.Background(), func(c *sdrad.Ctx) error {
		addr = c.MustAlloc(64)
		c.MustStore(addr, []byte("sticky"))
		for {
			c.MustStore(addr, make([]byte, 64))
		}
	}, sdrad.WithCycleBudget(200_000))
	if _, ok := sdrad.IsBudget(err); !ok {
		t.Fatalf("err = %v, want *BudgetError", err)
	}

	// The allocation was discarded: the same address is free again, so a
	// fresh alloc reuses the heap from its pristine state.
	err = dom.Run(func(c *sdrad.Ctx) error {
		p := c.MustAlloc(64)
		if p != addr {
			t.Errorf("post-rewind alloc at %v, want pristine heap reusing %v", p, addr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	st, err := dom.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Preemptions != 1 || st.Violations != 0 || st.Rewinds != 1 {
		t.Errorf("stats = %+v, want 1 preemption, 0 violations, 1 rewind", st)
	}
	if n := len(sup.DetectionCounts()); n != 0 {
		t.Errorf("preemption counted as a detection: %v", sup.DetectionCounts())
	}
}

func TestDoCancelledContext(t *testing.T) {
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err = dom.Do(ctx, func(c *sdrad.Ctx) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("fn ran despite cancelled context")
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()

	attempts := 0
	err = dom.Do(context.Background(), func(c *sdrad.Ctx) error {
		attempts++
		if attempts <= 2 {
			c.MustStore64(0xdead0000, 1) // violate on the first two attempts
		}
		return nil
	}, sdrad.WithRetries(2))
	if err != nil {
		t.Fatalf("Do = %v, want success on third attempt", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
}

func TestDoRetriesExhaustedFallback(t *testing.T) {
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()

	attempts := 0
	fallbackErr := errors.New("alternate action result")
	err = dom.Do(context.Background(), func(c *sdrad.Ctx) error {
		attempts++
		c.MustStore64(0xdead0000, 1)
		return nil
	},
		sdrad.WithRetries(2),
		sdrad.WithFallback(func(v *sdrad.ViolationError) error {
			if v == nil {
				t.Error("fallback got nil violation")
			}
			return fallbackErr
		}))
	if !errors.Is(err, fallbackErr) {
		t.Errorf("err = %v, want fallback result", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries) before the fallback", attempts)
	}
}

// TestPoolDoWorkerAffinityWithFallback proves the satellite requirement:
// affinity and the alternate action compose. Every attempt of a pinned
// call lands on the chosen worker, and when the run keeps violating, the
// fallback fires while the violation stays accounted to that worker.
func TestPoolDoWorkerAffinityWithFallback(t *testing.T) {
	pool, err := sdrad.NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	const pinned = 2
	fellBack := false
	err = pool.Do(context.Background(), func(c *sdrad.Ctx) error {
		c.MustStore64(0xdead0000, 1) // violates on every attempt
		return nil
	},
		sdrad.WithWorker(pinned),
		sdrad.WithRetries(2),
		sdrad.WithFallback(func(v *sdrad.ViolationError) error {
			fellBack = true
			return nil
		}))
	if err != nil {
		t.Fatalf("Do = %v, want fallback to absorb the violation", err)
	}
	if !fellBack {
		t.Error("fallback did not run")
	}

	// All three attempts — and therefore all three violations — must be
	// on the pinned worker; the others never saw a request.
	perWorker := pool.WorkerDetectionCounts()
	for i, counts := range perWorker {
		var total uint64
		for _, n := range counts {
			total += n
		}
		want := uint64(0)
		if i == pinned {
			want = 3
		}
		if total != want {
			t.Errorf("worker %d detections = %d, want %d", i, total, want)
		}
	}
	if reqs := pool.Stats().Requests; reqs[pinned] != 3 {
		t.Errorf("pinned worker served %d requests, want 3 (dispatch leaked off-worker: %v)", reqs[pinned], reqs)
	}
}

// TestDoRetryIntoQuarantineStillFallsBack: when a retry finds the
// domain quarantined (its violation budget was exhausted by the very
// violations being retried), the run's outcome is still the violation,
// so the alternate action must fire rather than surfacing a bare
// ErrQuarantined.
func TestDoRetryIntoQuarantineStillFallsBack(t *testing.T) {
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()
	if err := sup.System().SetViolationBudget(core.UDI(dom.UDI()), 1); err != nil {
		t.Fatal(err)
	}

	fellBack := false
	err = dom.Do(context.Background(), func(c *sdrad.Ctx) error {
		c.MustStore64(0xdead0000, 1) // violates; quarantines after 1
		return nil
	},
		sdrad.WithRetries(3),
		sdrad.WithFallback(func(v *sdrad.ViolationError) error {
			fellBack = true
			return nil
		}))
	if err != nil {
		t.Fatalf("Do = %v, want the fallback to absorb the quarantined violation", err)
	}
	if !fellBack {
		t.Error("fallback did not run after retry hit quarantine")
	}
}

// TestDoForeignViolationNotRetriedOrAbsorbed: a *ViolationError of a
// DIFFERENT domain returned by fn is an application error — the entered
// domain was never rewound — so it must pass through untouched: no
// retries against dirty state, no fallback under a false contract.
func TestDoForeignViolationNotRetriedOrAbsorbed(t *testing.T) {
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()

	foreign := &sdrad.ViolationError{UDI: 99}
	attempts := 0
	err = dom.Do(context.Background(), func(c *sdrad.Ctx) error {
		attempts++
		return foreign
	},
		sdrad.WithRetries(3),
		sdrad.WithFallback(func(v *sdrad.ViolationError) error {
			t.Error("fallback ran for a foreign domain's violation")
			return nil
		}))
	if v, ok := sdrad.IsViolation(err); !ok || v != foreign {
		t.Errorf("err = %v, want the foreign violation passed through", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retries for foreign violations)", attempts)
	}
}

// TestDoHugeCycleBudgetDoesNotOverflow: a budget near 2^64 means
// "effectively unlimited", not "wrapped past the clock, preempt at the
// first operation".
func TestDoHugeCycleBudgetDoesNotOverflow(t *testing.T) {
	sup := sdrad.New()
	dom, err := sup.NewDomain()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dom.Close() }()

	err = dom.Do(context.Background(), func(c *sdrad.Ctx) error {
		p := c.MustAlloc(64)
		c.MustStore(p, make([]byte, 64))
		return nil
	}, sdrad.WithCycleBudget(math.MaxUint64))
	if err != nil {
		t.Fatalf("huge budget preempted a tiny run: %v", err)
	}
}

// TestPoolDoForeignRewindErrorStillDiscards: when fn propagates a
// *BudgetError or *ViolationError that belongs to a DIFFERENT domain
// (e.g. a nested or foreign domain that was rewound inside fn), the
// pool worker's own domain was NOT rewound — discard-on-return must
// still scrub it so no state leaks to the next caller.
func TestPoolDoForeignRewindErrorStillDiscards(t *testing.T) {
	pool, err := sdrad.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	var first sdrad.Addr
	foreign := &sdrad.BudgetError{UDI: 99, Budget: 1, Used: 2}
	err = pool.Do(context.Background(), func(c *sdrad.Ctx) error {
		first = c.MustAlloc(64)
		c.MustStore(first, []byte("worker-domain state"))
		return foreign // a foreign domain's rewind error, passed through
	})
	if b, ok := sdrad.IsBudget(err); !ok || b != foreign {
		t.Fatalf("err = %v, want the propagated foreign BudgetError", err)
	}

	// The worker domain must have been discarded on return: a fresh call
	// re-allocates from the pristine heap base.
	err = pool.Do(context.Background(), func(c *sdrad.Ctx) error {
		p := c.MustAlloc(64)
		if p != first {
			t.Errorf("alloc at %v, want pristine heap reusing %v (discard skipped)", p, first)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolDoHammer is the -race hammer over one Pool: concurrent Do
// calls mixing cancellation, deadlines, retries, affinity, budget
// preemption, and violations.
func TestPoolDoHammer(t *testing.T) {
	pool, err := sdrad.NewPool(4, sdrad.WithCostModel(slowCostModel()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	goroutines, iters := 8, 60
	if testing.Short() {
		goroutines, iters = 4, 20
	}
	var wg sync.WaitGroup
	var clean, contained, preempted, cancelled atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := make([]byte, 512)
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				var opts []sdrad.RunOption
				mode := i % 4
				switch mode {
				case 1:
					opts = append(opts, sdrad.WithWorker(g), sdrad.WithRetries(1))
				case 2:
					opts = append(opts, sdrad.WithCycleBudget(10_000))
				case 3:
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(context.Background())
					cancel()
				}
				err := pool.Do(ctx, func(c *sdrad.Ctx) error {
					p := c.MustAlloc(len(payload))
					c.MustStore(p, payload)
					if mode == 1 && i%8 == 1 {
						c.MustStore64(0xbad000, 1) // violation under retry+affinity
					}
					for mode == 2 { // runaway under a tiny budget
						c.MustStore(p, payload)
					}
					return nil
				}, opts...)
				switch {
				case err == nil:
					clean.Add(1)
				case errors.Is(err, context.Canceled):
					cancelled.Add(1)
				default:
					if _, ok := sdrad.IsBudget(err); ok {
						preempted.Add(1)
						break
					}
					if _, ok := sdrad.IsViolation(err); ok {
						contained.Add(1)
						break
					}
					t.Errorf("goroutine %d iter %d: unexpected error %v", g, i, err)
				}
			}
		}(g)
	}
	wg.Wait()

	if cancelled.Load() == 0 || preempted.Load() == 0 || contained.Load() == 0 || clean.Load() == 0 {
		t.Errorf("hammer did not exercise all outcomes: clean=%d contained=%d preempted=%d cancelled=%d",
			clean.Load(), contained.Load(), preempted.Load(), cancelled.Load())
	}
}
