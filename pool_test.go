package sdrad_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	sdrad "repro"
)

// TestPoolConcurrentMixedWorkload hammers a 4-worker pool from 8
// goroutines with a mixed benign/attack workload (run under -race). It
// asserts that every attack is contained, every benign request succeeds,
// and no cross-worker state leaks: the per-worker detection counts sum
// exactly to the aggregate, which equals the number of attacks sent.
func TestPoolConcurrentMixedWorkload(t *testing.T) {
	const (
		workers    = 4
		goroutines = 8
		iterations = 120
		attackMod  = 6 // every 6th request is an attack
	)
	pool, err := sdrad.NewPool(workers)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := pool.Close(); cerr != nil {
			t.Errorf("Close: %v", cerr)
		}
	}()

	var (
		wg        sync.WaitGroup
		attacks   atomic.Uint64
		contained atomic.Uint64
		failures  atomic.Uint64
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := []byte("goroutine payload data 0123456789abcdef")
			for i := 0; i < iterations; i++ {
				attack := i%attackMod == g%attackMod
				if attack {
					attacks.Add(1)
				}
				err := pool.Run(func(c *sdrad.Ctx) error {
					p := c.MustAlloc(len(payload))
					c.MustStore(p, payload)
					if attack {
						// Wild store outside any mapping: a contained
						// memory-safety violation.
						c.MustStore64(0xbad000, uint64(g))
					}
					buf := make([]byte, len(payload))
					c.MustLoad(p, buf)
					c.MustFree(p)
					return nil
				})
				switch _, isViolation := sdrad.IsViolation(err); {
				case attack && isViolation:
					contained.Add(1)
				case attack:
					t.Errorf("goroutine %d iter %d: attack not contained: %v", g, i, err)
					failures.Add(1)
				case err != nil:
					t.Errorf("goroutine %d iter %d: benign request failed: %v", g, i, err)
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	if failures.Load() > 0 {
		t.Fatalf("%d requests misbehaved", failures.Load())
	}
	if contained.Load() != attacks.Load() {
		t.Fatalf("contained %d of %d attacks", contained.Load(), attacks.Load())
	}

	// Aggregation invariant: per-worker counts sum to the aggregate, and
	// the aggregate matches the attacks sent.
	agg := pool.DetectionCounts()
	var aggTotal uint64
	for _, n := range agg {
		aggTotal += n
	}
	if aggTotal != attacks.Load() {
		t.Errorf("aggregate detections = %d, want %d", aggTotal, attacks.Load())
	}
	var shardTotal uint64
	perWorker := pool.WorkerDetectionCounts()
	if len(perWorker) != workers {
		t.Fatalf("WorkerDetectionCounts len = %d, want %d", len(perWorker), workers)
	}
	for _, counts := range perWorker {
		for _, n := range counts {
			shardTotal += n
		}
	}
	if shardTotal != aggTotal {
		t.Errorf("per-worker detections sum to %d, aggregate says %d", shardTotal, aggTotal)
	}

	// Every dispatched request is accounted to exactly one worker.
	var dispatched uint64
	for _, n := range pool.Stats().Requests {
		dispatched += n
	}
	if want := uint64(goroutines * iterations); dispatched != want {
		t.Errorf("dispatched = %d, want %d", dispatched, want)
	}

	// Each worker machine carries exactly its one warm domain.
	if ms := pool.MemoryStats(); ms.Domains != workers {
		t.Errorf("aggregate Domains = %d, want %d", ms.Domains, workers)
	}
	if pool.TotalVirtualTime() < pool.VirtualTime() {
		t.Error("total virtual time below parallel makespan")
	}
}

// TestPoolDiscardOnReturn verifies request isolation on the warm domain:
// state written by one Run is discarded before the next Run on the same
// worker.
func TestPoolDiscardOnReturn(t *testing.T) {
	pool, err := sdrad.NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()

	var first sdrad.Addr
	if err := pool.RunOn(0, func(c *sdrad.Ctx) error {
		first = c.MustAlloc(64)
		c.MustStore(first, []byte("secret from request 1"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := pool.RunOn(0, func(c *sdrad.Ctx) error {
		p := c.MustAlloc(64)
		if p != first {
			t.Errorf("second Run alloc = %#x, want recycled %#x", p, first)
		}
		buf := make([]byte, 64)
		c.MustLoad(p, buf)
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("stale byte %#x at offset %d leaked across Runs", b, i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolFallbackAndClose covers the alternate action path and
// post-Close behavior.
func TestPoolFallbackAndClose(t *testing.T) {
	pool, err := sdrad.NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	fellBack := false
	err = pool.RunWithFallback(
		func(c *sdrad.Ctx) error { c.MustStore64(0xbad000, 1); return nil },
		func(v *sdrad.ViolationError) error { fellBack = true; return nil },
	)
	if err != nil || !fellBack {
		t.Errorf("fallback: err=%v fellBack=%v", err, fellBack)
	}

	appErr := errors.New("app error")
	if err := pool.Run(func(*sdrad.Ctx) error { return appErr }); !errors.Is(err, appErr) {
		t.Errorf("app error = %v, want passthrough", err)
	}

	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := pool.Run(func(*sdrad.Ctx) error { return nil }); !errors.Is(err, sdrad.ErrPoolClosed) {
		t.Errorf("run after close = %v, want ErrPoolClosed", err)
	}
}

// TestPoolDefaultSize checks the NumCPU default and worker wrap-around.
func TestPoolDefaultSize(t *testing.T) {
	pool, err := sdrad.NewPool(0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pool.Close() }()
	if pool.Workers() < 1 {
		t.Errorf("Workers = %d", pool.Workers())
	}
	// RunOn wraps modulo the pool size, including negative workers (a
	// signed key hash is a natural caller).
	if err := pool.RunOn(pool.Workers()+1, func(*sdrad.Ctx) error { return nil }); err != nil {
		t.Errorf("RunOn wrap: %v", err)
	}
	if err := pool.RunOn(-3, func(*sdrad.Ctx) error { return nil }); err != nil {
		t.Errorf("RunOn negative: %v", err)
	}
}

// TestPoolDomainStatsSurviveClose pins the teardown-accounting
// contract: DomainStats after Close reports the counters snapshotted at
// teardown, not a silent all-zero aggregate.
func TestPoolDomainStatsSurviveClose(t *testing.T) {
	pool, err := sdrad.NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := pool.Run(func(c *sdrad.Ctx) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	before := pool.DomainStats()
	if before.Entries != 6 || before.CleanExits != 6 {
		t.Fatalf("pre-close stats: %+v", before)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	after := pool.DomainStats()
	if after != before {
		t.Errorf("stats changed across Close: before %+v, after %+v", before, after)
	}
}
