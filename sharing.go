package sdrad

import (
	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/trace"
)

// This file exposes the data-passing and policy extensions of SDRaD:
// read-only sharing between domains, zero-copy heap adoption, and
// violation quarantine.

// Heap is a domain heap handle, returned by DetachHeap after the heap's
// pages have been adopted by the trusted runtime.
type Heap = alloc.Heap

// ErrQuarantined is returned by Run for domains that exceeded their
// violation budget.
var ErrQuarantined = core.ErrQuarantined

// ShareReadOnlyWith grants viewer read-only access to this domain's
// pages. Writes by the viewer still fault as domain violations. The
// grant is a PKRU register configuration — no pages are copied or
// re-tagged — and it survives the viewer's rewinds until revoked.
func (d *Domain) ShareReadOnlyWith(viewer *Domain) error {
	return d.sup.sys.GrantRead(viewer.udi, d.udi)
}

// RevokeReadFrom removes a grant installed by ShareReadOnlyWith.
func (d *Domain) RevokeReadFrom(viewer *Domain) error {
	return d.sup.sys.RevokeRead(viewer.udi, d.udi)
}

// SetViolationBudget quarantines the domain after max contained
// violations; Run then fails with ErrQuarantined until the budget is
// raised or cleared (max <= 0 disables the limit).
func (d *Domain) SetViolationBudget(max int) error {
	return d.sup.sys.SetViolationBudget(d.udi, max)
}

// Quarantined reports whether the domain exhausted its violation budget.
func (d *Domain) Quarantined() (bool, error) {
	return d.sup.sys.Quarantined(d.udi)
}

// DetachHeap tears the domain down but adopts its heap: the heap's pages
// are re-tagged to the default protection key (per-page metadata updates,
// no data copies), so every result the domain computed stays readable at
// its original address. The domain itself is closed — its stack is
// released and its protection key freed for reuse.
func (d *Domain) DetachHeap() (*Heap, error) {
	return d.sup.sys.AdoptHeap(d.udi)
}

// TraceEvent is one lifecycle record produced when tracing is enabled.
type TraceEvent = trace.Event

// TraceRing is a fixed-capacity ring buffer of lifecycle events.
type TraceRing = trace.Ring

// StartTrace enables lifecycle tracing into a fresh ring buffer holding
// up to capacity events (init, enter, exit, violation, rewind, deinit,
// grant, revoke, adopt) and returns it.
func (s *Supervisor) StartTrace(capacity int) *TraceRing {
	ring := trace.NewRing(capacity)
	s.sys.SetTracer(ring)
	return ring
}

// StopTrace disables lifecycle tracing.
func (s *Supervisor) StopTrace() { s.sys.SetTracer(nil) }
