package sdrad

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lifecycle"
)

// TestDrainWaitsForMidRetryCall pins the whole-call drain contract: a
// call admitted before Drain that is parked between retry attempts —
// holding no worker inflight slot — must still be covered by Drain.
// Before the pool counted whole calls, Drain watched only the
// per-worker inflight slots, observed an idle pool while the call sat
// between attempts, and returned; the call then executed its retry
// after the drain had completed.
func TestDrainWaitsForMidRetryCall(t *testing.T) {
	p, err := NewPool(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })

	retryReady := make(chan struct{})
	resume := make(chan struct{})
	var hookOnce sync.Once
	testHookDispatchAttempt = func(attempt int) {
		if attempt == 2 {
			hookOnce.Do(func() { close(retryReady) })
			<-resume
		}
	}
	t.Cleanup(func() { testHookDispatchAttempt = nil })

	var drainReturned atomic.Bool
	var ranAfterDrain atomic.Bool
	var entries atomic.Int32
	doDone := make(chan error, 1)
	go func() {
		doDone <- p.Do(context.Background(), func(c *Ctx) error {
			if drainReturned.Load() {
				ranAfterDrain.Store(true)
			}
			if entries.Add(1) == 1 {
				c.MustStore64(0xdead0000, 1) // violate: rewound, then retried
			}
			return nil
		}, WithRetries(1))
	}()
	<-retryReady // the call now sits between attempts: no inflight slot held

	drainDone := make(chan error, 1)
	go func() {
		derr := p.Drain()
		drainReturned.Store(true)
		drainDone <- derr
	}()
	for !p.draining.Load() {
		runtime.Gosched()
	}
	// Admission is closed and every worker is idle. A Drain watching
	// only worker inflight slots would return now; give it every chance
	// to expose itself before the parked call resumes.
	early := false
	for i := 0; i < 500 && !early; i++ {
		select {
		case derr := <-drainDone:
			if derr != nil {
				t.Errorf("Drain: %v", derr)
			}
			early = true
		default:
			runtime.Gosched()
		}
	}
	close(resume)
	if derr := <-doDone; derr != nil {
		t.Errorf("admitted call: %v", derr)
	}
	if !early {
		if derr := <-drainDone; derr != nil {
			t.Errorf("Drain: %v", derr)
		}
	}
	if early {
		t.Error("Drain returned while an admitted call was parked between retry attempts")
	}
	if ranAfterDrain.Load() {
		t.Error("admitted call executed after Drain returned")
	}
}

// TestEnableElasticDrainRaceLeavesNoController races EnableElastic
// against Drain and asserts the teardown invariant both orders must
// preserve: once Drain has returned, no controller is installed (and
// therefore no controller loop is live). EnableElastic re-checks the
// machine under ctrlMu, so it either observes Draining and refuses, or
// installs before the drain's stopController runs — which then stops
// it. Without the re-check, a controller installed in the window after
// the admission gate could leak its loop onto a drained layer.
func TestEnableElasticDrainRaceLeavesNoController(t *testing.T) {
	for round := 0; round < 32; round++ {
		pool, err := NewPool(1)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := NewAsyncPool(pool, AsyncConfig{MaxBatch: 2, MaxInflight: 8})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if eerr := ap.EnableElastic(ElasticConfig{Min: 1, Max: 2}); eerr != nil {
				if _, ok := lifecycle.IsLifecycle(eerr); !ok {
					t.Errorf("round %d: EnableElastic: %v", round, eerr)
				}
			}
		}()
		go func() {
			defer wg.Done()
			if derr := ap.Drain(); derr != nil {
				t.Errorf("round %d: Drain: %v", round, derr)
			}
		}()
		wg.Wait()

		ap.ctrlMu.Lock()
		leaked := ap.ctrl != nil
		ap.ctrlMu.Unlock()
		if leaked {
			t.Fatalf("round %d: elastic controller survived a completed Drain", round)
		}
		if cerr := ap.Close(); cerr != nil {
			t.Fatalf("round %d: Close: %v", round, cerr)
		}
		if cerr := pool.Close(); cerr != nil {
			t.Fatalf("round %d: pool Close: %v", round, cerr)
		}
	}
}
