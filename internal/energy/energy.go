// Package energy implements the environmental-sustainability model the
// paper calls for in §IV: operational energy, power-usage effectiveness,
// and embodied ("grey") carbon of the hardware footprint each resilience
// strategy requires.
//
// The paper's argument: replication achieves availability by
// over-provisioning hardware, which costs both operational energy
// (running 2N servers) and embodied emissions (manufacturing them);
// SDRaD reaches comparable availability on a single instance with only a
// small runtime overhead. This package turns that argument into numbers.
// Constants follow published LCA figures for a commodity 2-socket server
// (≈1.3 tCO₂e embodied, 4–5 year life, ~200 W average draw) and typical
// datacentre PUE ≈1.4; all are configurable.
package energy

import (
	"time"

	"repro/internal/avail"
	"repro/internal/procmodel"
)

// ServerModel describes one server's power and embodied-carbon profile.
type ServerModel struct {
	// IdleWatts is the power draw at zero load.
	IdleWatts float64
	// PeakWatts is the draw at full utilization; actual draw is
	// interpolated linearly with utilization.
	PeakWatts float64
	// PUE is the datacentre power-usage effectiveness multiplier.
	PUE float64
	// EmbodiedKgCO2e is the cradle-to-gate manufacturing footprint.
	EmbodiedKgCO2e float64
	// LifetimeYears amortizes the embodied footprint.
	LifetimeYears float64
	// GridGCO2ePerKWh is the carbon intensity of the electricity supply.
	GridGCO2ePerKWh float64
}

// DefaultServer returns the calibrated server model described in the
// package comment.
func DefaultServer() ServerModel {
	return ServerModel{
		IdleWatts:       110,
		PeakWatts:       350,
		PUE:             1.4,
		EmbodiedKgCO2e:  1300,
		LifetimeYears:   4,
		GridGCO2ePerKWh: 350,
	}
}

// PowerAt returns wall power (including PUE) at a utilization in [0,1].
func (s ServerModel) PowerAt(util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return (s.IdleWatts + (s.PeakWatts-s.IdleWatts)*util) * s.PUE
}

// KWhPerYear returns annual electricity for one server at a utilization.
func (s ServerModel) KWhPerYear(util float64) float64 {
	hours := avail.Year.Hours()
	return s.PowerAt(util) * hours / 1000
}

// OperationalKgCO2ePerYear returns annual operational emissions for one
// server at a utilization.
func (s ServerModel) OperationalKgCO2ePerYear(util float64) float64 {
	return s.KWhPerYear(util) * s.GridGCO2ePerKWh / 1000
}

// EmbodiedKgCO2ePerYear returns the amortized embodied emissions of one
// server.
func (s ServerModel) EmbodiedKgCO2ePerYear() float64 {
	if s.LifetimeYears <= 0 {
		return s.EmbodiedKgCO2e
	}
	return s.EmbodiedKgCO2e / s.LifetimeYears
}

// Assessment is the annual footprint of running one logical service with
// a given resilience strategy.
type Assessment struct {
	// Strategy names the assessed strategy.
	Strategy string
	// Servers is the hardware replication factor.
	Servers float64
	// Utilization is the effective per-server utilization, including the
	// strategy's steady-state overhead.
	Utilization float64
	// KWhPerYear is total annual electricity across all servers.
	KWhPerYear float64
	// OperationalKgCO2e and EmbodiedKgCO2e are annual emissions.
	OperationalKgCO2e float64
	EmbodiedKgCO2e    float64
	// AchievedAvailability under the assessed fault model.
	AchievedAvailability float64
	// MeetsTarget reports whether the availability target is met.
	MeetsTarget bool
}

// TotalKgCO2e returns operational plus embodied annual emissions.
func (a Assessment) TotalKgCO2e() float64 {
	return a.OperationalKgCO2e + a.EmbodiedKgCO2e
}

// Scenario describes the service being assessed.
type Scenario struct {
	// Server is the hardware model.
	Server ServerModel
	// BaseUtilization is the utilization of one unreplicated instance
	// serving the whole workload (default 0.6).
	BaseUtilization float64
	// StateBytes is the in-memory application state (drives restart
	// recovery time).
	StateBytes uint64
	// FaultsPerYear is the memory-corruption fault rate.
	FaultsPerYear float64
	// TargetAvailability is the availability target fraction.
	TargetAvailability float64
}

// DefaultScenario returns the paper's worked example: a 10 GB memcached
// instance, three faults per year, five-nines target.
func DefaultScenario() Scenario {
	return Scenario{
		Server:             DefaultServer(),
		BaseUtilization:    0.6,
		StateBytes:         10_000_000_000,
		FaultsPerYear:      3,
		TargetAvailability: avail.NinesTarget(5),
	}
}

// Assess computes the annual footprint and achieved availability of one
// strategy under the scenario.
//
// Replicated strategies (Servers > 1) spread the same work over more
// machines, so per-server utilization drops but idle draw multiplies —
// this is the over-provisioning cost §IV describes. Steady-state overhead
// (SDRaD's 2–4%) raises effective utilization instead.
func Assess(sc Scenario, st procmodel.Strategy) Assessment {
	if sc.BaseUtilization <= 0 {
		sc.BaseUtilization = 0.6
	}
	servers := st.Servers()
	if servers < 1 {
		servers = 1
	}
	util := sc.BaseUtilization * (1 + st.SteadyOverhead()) / servers
	if util > 1 {
		util = 1
	}

	recovery := st.RecoveryTime(sc.StateBytes)
	downtime := avail.Downtime(sc.FaultsPerYear, recovery)
	achieved := avail.Availability(downtime)

	kwh := sc.Server.KWhPerYear(util) * servers
	op := sc.Server.OperationalKgCO2ePerYear(util) * servers
	emb := sc.Server.EmbodiedKgCO2ePerYear() * servers

	return Assessment{
		Strategy:             st.Name(),
		Servers:              servers,
		Utilization:          util,
		KWhPerYear:           kwh,
		OperationalKgCO2e:    op,
		EmbodiedKgCO2e:       emb,
		AchievedAvailability: achieved,
		MeetsTarget:          achieved >= sc.TargetAvailability,
	}
}

// AssessAll runs Assess for each strategy.
func AssessAll(sc Scenario, sts []procmodel.Strategy) []Assessment {
	out := make([]Assessment, len(sts))
	for i, st := range sts {
		out[i] = Assess(sc, st)
	}
	return out
}

// SavingsVs returns the fractional total-CO₂e saving of a relative to b
// (positive when a emits less).
func SavingsVs(a, b Assessment) float64 {
	tb := b.TotalKgCO2e()
	if tb == 0 {
		return 0
	}
	return 1 - a.TotalKgCO2e()/tb
}

// RecoveryEnergy returns the energy in joules consumed by one recovery of
// the given duration at recovery-time utilization (the server is up but
// not serving — we charge full power as the machine spins on warm-up).
func RecoveryEnergy(s ServerModel, recovery time.Duration) float64 {
	return s.PowerAt(1) * recovery.Seconds()
}
