package energy

import (
	"testing"
	"time"

	"repro/internal/avail"
	"repro/internal/procmodel"
)

func TestPowerInterpolation(t *testing.T) {
	s := DefaultServer()
	idle := s.PowerAt(0)
	full := s.PowerAt(1)
	if idle != s.IdleWatts*s.PUE {
		t.Errorf("idle power = %v", idle)
	}
	if full != s.PeakWatts*s.PUE {
		t.Errorf("full power = %v", full)
	}
	mid := s.PowerAt(0.5)
	if mid <= idle || mid >= full {
		t.Errorf("mid power = %v not between %v and %v", mid, idle, full)
	}
	// Clamping.
	if s.PowerAt(-1) != idle || s.PowerAt(2) != full {
		t.Error("utilization not clamped")
	}
}

func TestKWhPerYearPlausible(t *testing.T) {
	s := DefaultServer()
	kwh := s.KWhPerYear(0.6)
	// ~250W*1.4 ≈ 350W wall → ≈3070 kWh/yr; accept a broad plausible band.
	if kwh < 1000 || kwh > 10000 {
		t.Errorf("kWh/yr = %v, implausible", kwh)
	}
}

func TestEmbodiedAmortization(t *testing.T) {
	s := DefaultServer()
	if got := s.EmbodiedKgCO2ePerYear(); got != s.EmbodiedKgCO2e/s.LifetimeYears {
		t.Errorf("embodied/yr = %v", got)
	}
	z := s
	z.LifetimeYears = 0
	if z.EmbodiedKgCO2ePerYear() != z.EmbodiedKgCO2e {
		t.Error("zero lifetime should not divide by zero")
	}
}

func TestAssessDefaultScenario(t *testing.T) {
	sc := DefaultScenario()

	restart := Assess(sc, procmodel.ProcessRestart{})
	rewind := Assess(sc, procmodel.SDRaDRewind{ZeroOnDiscard: true})
	ap := Assess(sc, procmodel.ActivePassive{})

	// Paper claim C3: restart-only cannot meet five nines at 3 faults/yr.
	if restart.MeetsTarget {
		t.Error("process restart should violate five nines")
	}
	// SDRaD meets it on one server.
	if !rewind.MeetsTarget {
		t.Errorf("SDRaD should meet five nines: achieved %v", rewind.AchievedAvailability)
	}
	if rewind.Servers != 1 {
		t.Errorf("SDRaD servers = %v", rewind.Servers)
	}
	// Active-passive also meets it, but at 2x hardware.
	if !ap.MeetsTarget {
		t.Errorf("active-passive should meet five nines: %v", ap.AchievedAvailability)
	}
	if ap.Servers != 2 {
		t.Errorf("active-passive servers = %v", ap.Servers)
	}
	// Paper claim C7: SDRaD emits substantially less than replication at
	// equal availability. Require >25% total-CO2e savings.
	if s := SavingsVs(rewind, ap); s < 0.25 {
		t.Errorf("CO2e savings vs active-passive = %.2f, want > 0.25", s)
	}
	if rewind.KWhPerYear >= ap.KWhPerYear {
		t.Errorf("SDRaD kWh (%v) should be below active-passive (%v)", rewind.KWhPerYear, ap.KWhPerYear)
	}
}

func TestSDRaDOverheadCostsSomething(t *testing.T) {
	sc := DefaultScenario()
	rewind := Assess(sc, procmodel.SDRaDRewind{ZeroOnDiscard: true})
	restart := Assess(sc, procmodel.ProcessRestart{})
	// Single server each, but SDRaD runs 2–4% hotter.
	if rewind.KWhPerYear <= restart.KWhPerYear {
		t.Error("SDRaD steady overhead should cost energy vs plain restart")
	}
	// Yet the premium is small (<5%).
	if ratio := rewind.KWhPerYear / restart.KWhPerYear; ratio > 1.05 {
		t.Errorf("SDRaD energy premium = %.3f, want < 1.05", ratio)
	}
}

func TestAssessAllCoversStrategies(t *testing.T) {
	sc := DefaultScenario()
	as := AssessAll(sc, procmodel.DefaultStrategies())
	if len(as) != 6 {
		t.Fatalf("assessments = %d", len(as))
	}
	for _, a := range as {
		if a.Strategy == "" || a.KWhPerYear <= 0 || a.TotalKgCO2e() <= 0 {
			t.Errorf("incomplete assessment: %+v", a)
		}
		if a.Utilization <= 0 || a.Utilization > 1 {
			t.Errorf("%s: utilization = %v", a.Strategy, a.Utilization)
		}
	}
}

func TestUtilizationDividesAcrossReplicas(t *testing.T) {
	sc := DefaultScenario()
	one := Assess(sc, procmodel.ProcessRestart{})
	two := Assess(sc, procmodel.ActivePassive{})
	if two.Utilization >= one.Utilization {
		t.Errorf("replicated per-server utilization (%v) should drop below single (%v)",
			two.Utilization, one.Utilization)
	}
}

func TestSavingsVsEdges(t *testing.T) {
	a := Assessment{OperationalKgCO2e: 100, EmbodiedKgCO2e: 0}
	b := Assessment{OperationalKgCO2e: 200, EmbodiedKgCO2e: 0}
	if s := SavingsVs(a, b); s != 0.5 {
		t.Errorf("SavingsVs = %v, want 0.5", s)
	}
	if s := SavingsVs(a, Assessment{}); s != 0 {
		t.Errorf("SavingsVs zero baseline = %v, want 0", s)
	}
}

func TestRecoveryEnergyScalesWithDuration(t *testing.T) {
	s := DefaultServer()
	short := RecoveryEnergy(s, 3500*time.Nanosecond)
	long := RecoveryEnergy(s, 2*time.Minute)
	if short >= long {
		t.Error("longer recovery should cost more energy")
	}
	// A 3.5µs rewind costs essentially nothing (~2 mJ at full wall
	// power); a 2-minute restart costs tens of kJ.
	if short > 0.01 {
		t.Errorf("rewind energy = %vJ, want < 10mJ", short)
	}
	if long < 10_000 {
		t.Errorf("restart energy = %vJ, want > 10kJ", long)
	}
}

func TestZeroBaseUtilizationDefaulted(t *testing.T) {
	sc := DefaultScenario()
	sc.BaseUtilization = 0
	a := Assess(sc, procmodel.ProcessRestart{})
	if a.Utilization <= 0 {
		t.Error("zero base utilization not defaulted")
	}
}

func TestDefaultScenarioMatchesPaper(t *testing.T) {
	sc := DefaultScenario()
	if sc.StateBytes != 10_000_000_000 {
		t.Errorf("state = %d, want 10GB", sc.StateBytes)
	}
	if sc.FaultsPerYear != 3 {
		t.Errorf("faults/yr = %v, want 3", sc.FaultsPerYear)
	}
	if sc.TargetAvailability != avail.NinesTarget(5) {
		t.Errorf("target = %v, want five nines", sc.TargetAvailability)
	}
}
