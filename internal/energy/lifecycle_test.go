package energy

import (
	"math"
	"testing"

	"repro/internal/avail"
	"repro/internal/procmodel"
)

func TestDevEffortDefaults(t *testing.T) {
	manual := DefaultDevEffortFor("manual-sdrad")
	ffi := DefaultDevEffortFor("sdrad-ffi")
	ops := DefaultDevEffortFor("replication-ops")
	other := DefaultDevEffortFor("something-else")
	if !(ffi.EngineerHours < manual.EngineerHours && manual.EngineerHours < ops.EngineerHours) {
		t.Errorf("effort ordering: ffi=%v manual=%v ops=%v",
			ffi.EngineerHours, manual.EngineerHours, ops.EngineerHours)
	}
	if other.EngineerHours <= 0 {
		t.Error("default effort should be positive")
	}
}

func TestDevEffortEnergyArithmetic(t *testing.T) {
	d := DevEffort{EngineerHours: 10, WorkstationWatts: 200, GridGCO2ePerKWh: 500}
	if got := d.KWh(); got != 2 {
		t.Errorf("KWh = %v, want 2", got)
	}
	if got := d.KgCO2e(); got != 1 {
		t.Errorf("KgCO2e = %v, want 1", got)
	}
	if got := d.AmortizedKgCO2ePerYear(4); got != 0.25 {
		t.Errorf("amortized = %v, want 0.25", got)
	}
	if got := d.AmortizedKgCO2ePerYear(0); got != 1 {
		t.Errorf("zero lifetime amortized = %v, want full", got)
	}
	// Zero fields get defaults.
	z := DevEffort{EngineerHours: 1}
	if z.KWh() <= 0 || z.KgCO2e() <= 0 {
		t.Error("defaults not applied")
	}
}

func TestDevEffortIsNegligibleVsReplication(t *testing.T) {
	// The paper's life-cycle argument: even the *manual* retrofit effort
	// (≈50 engineer-hours) is tiny compared to one year of running a
	// redundant server.
	sc := DefaultScenario()
	ap := Assess(sc, procmodel.ActivePassive{})
	rewind := Assess(sc, procmodel.SDRaDRewind{ZeroOnDiscard: true})
	annualSaving := ap.TotalKgCO2e() - rewind.TotalKgCO2e()
	effort := DefaultDevEffortFor("manual-sdrad").KgCO2e()
	if effort*100 > annualSaving {
		t.Errorf("retrofit effort %v kgCO2e should be <1%% of annual saving %v", effort, annualSaving)
	}
}

func TestBreakEven(t *testing.T) {
	sc := DefaultScenario()
	ap := Assess(sc, procmodel.ActivePassive{})
	rewind := Assess(sc, procmodel.SDRaDRewind{ZeroOnDiscard: true})
	manual := DefaultDevEffortFor("manual-sdrad")
	opsEffort := DefaultDevEffortFor("replication-ops")

	// SDRaD saves versus replication AND needs less engineering: break
	// even immediately.
	if y := BreakEvenYears(rewind, ap, manual, opsEffort); y != 0 {
		t.Errorf("break-even = %v, want 0 (less effort and cheaper)", y)
	}
	// Against a hypothetical zero-effort baseline, break-even is a small
	// fraction of a year.
	y := BreakEvenYears(rewind, ap, manual, DevEffort{})
	if y <= 0 || y > 0.1 {
		t.Errorf("break-even vs zero-effort = %v yr, want (0, 0.1]", y)
	}
	// No saving -> +Inf.
	if y := BreakEvenYears(ap, rewind, manual, manual); !math.IsInf(y, 1) {
		t.Errorf("negative saving break-even = %v, want +Inf", y)
	}
}

func TestRebound(t *testing.T) {
	if got := Rebound(100, 0.3); got != 70 {
		t.Errorf("Rebound(100, 0.3) = %v, want 70", got)
	}
	if got := Rebound(100, 0); got != 100 {
		t.Errorf("no rebound = %v", got)
	}
	if got := Rebound(100, 1.0); got != 0 {
		t.Errorf("backfire = %v, want 0", got)
	}
	if got := Rebound(100, 1.5); got != 0 {
		t.Errorf("super-backfire = %v, want 0", got)
	}
	if got := Rebound(100, -0.2); got != 100 {
		t.Errorf("negative factor = %v, want clamped to 100", got)
	}
}

func TestLifecycleSummary(t *testing.T) {
	sc := DefaultScenario()
	a := Assess(sc, procmodel.SDRaDRewind{ZeroOnDiscard: true})
	effort := DefaultDevEffortFor("manual-sdrad")
	ls := Lifecycle(a, effort, 4)
	if ls.NetAnnualKgCO2e <= a.TotalKgCO2e() {
		t.Error("lifecycle must add the amortized effort")
	}
	if ls.NetAnnualKgCO2e-a.TotalKgCO2e() > 2 {
		t.Errorf("amortized effort %v kg/yr implausibly large",
			ls.NetAnnualKgCO2e-a.TotalKgCO2e())
	}
}

func TestRecoveriesPerBudget(t *testing.T) {
	n := RecoveriesPerBudget(avail.NinesTarget(5), 3.5e-6)
	if n < 9e7 {
		t.Errorf("recoveries at 3.5µs = %.3g, want > 9e7 (the paper's number)", n)
	}
	if !math.IsInf(RecoveriesPerBudget(0.99999, 0), 1) {
		t.Error("zero recovery should be +Inf")
	}
}
