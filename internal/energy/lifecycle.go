package energy

import (
	"math"

	"repro/internal/avail"
)

// This file extends the operational model with the life-cycle dimensions
// §IV of the paper calls for: the energy cost of the *development effort*
// a retrofit requires ("that drives up the cost of software development,
// both in terms of money and energy consumption") and rebound effects
// (Gossart's ICT rebound literature, the paper's [4]) that eat into
// projected savings.

// DevEffort models the one-time engineering cost of retrofitting a
// resilience approach into an application.
type DevEffort struct {
	// EngineerHours is the estimated implementation + review effort.
	EngineerHours float64
	// WorkstationWatts is the developer-equipment draw (default 150 W:
	// workstation + share of office overheads).
	WorkstationWatts float64
	// GridGCO2ePerKWh is the carbon intensity at the development site.
	GridGCO2ePerKWh float64
}

// DefaultDevEffortFor returns calibrated retrofit efforts. Manual SDRaD
// compartmentalization of Memcached took 484 lines of wrapper code across
// 2 files (paper §II); at a conservative 10 delivered-and-reviewed lines
// per hour that is ≈50 engineer-hours. The SDRaD-FFI annotation path is
// one registration per wrapped function.
func DefaultDevEffortFor(approach string) DevEffort {
	base := DevEffort{WorkstationWatts: 150, GridGCO2ePerKWh: 350}
	switch approach {
	case "manual-sdrad":
		base.EngineerHours = 50
	case "sdrad-ffi":
		base.EngineerHours = 4
	case "replication-ops":
		// Standing up and operating a replicated pair: deployment automation,
		// failover runbooks, drills (annualized share of a platform team).
		base.EngineerHours = 120
	default:
		base.EngineerHours = 8
	}
	return base
}

// KWh returns the electricity of the development effort.
func (d DevEffort) KWh() float64 {
	w := d.WorkstationWatts
	if w <= 0 {
		w = 150
	}
	return d.EngineerHours * w / 1000
}

// KgCO2e returns the emissions of the development effort.
func (d DevEffort) KgCO2e() float64 {
	g := d.GridGCO2ePerKWh
	if g <= 0 {
		g = 350
	}
	return d.KWh() * g / 1000
}

// AmortizedKgCO2ePerYear spreads the one-time effort over the service's
// expected lifetime in years.
func (d DevEffort) AmortizedKgCO2ePerYear(lifetimeYears float64) float64 {
	if lifetimeYears <= 0 {
		return d.KgCO2e()
	}
	return d.KgCO2e() / lifetimeYears
}

// Rebound applies a rebound factor to a projected saving: a rebound of
// 0.3 means 30% of the saved capacity is re-consumed (e.g. freed servers
// absorb new workloads), so only 70% of the projected saving
// materializes. Factors at or above 1 (backfire) eliminate the saving.
func Rebound(projectedSavingKgCO2e, factor float64) float64 {
	if factor < 0 {
		factor = 0
	}
	if factor >= 1 {
		return 0
	}
	return projectedSavingKgCO2e * (1 - factor)
}

// BreakEvenYears returns how long the annual operational saving of a vs
// b must accrue to pay back the extra development effort of a. Returns
// +Inf when a does not save anything.
func BreakEvenYears(a, b Assessment, effortA, effortB DevEffort) float64 {
	annualSaving := b.TotalKgCO2e() - a.TotalKgCO2e()
	extraEffort := effortA.KgCO2e() - effortB.KgCO2e()
	if annualSaving <= 0 {
		return math.Inf(1)
	}
	if extraEffort <= 0 {
		return 0
	}
	return extraEffort / annualSaving
}

// LifecycleSummary combines the operational assessment with the
// development effort and a rebound discount.
type LifecycleSummary struct {
	Assessment Assessment
	Effort     DevEffort
	// NetAnnualKgCO2e includes amortized development emissions.
	NetAnnualKgCO2e float64
}

// Lifecycle builds the combined view for one strategy.
func Lifecycle(a Assessment, effort DevEffort, lifetimeYears float64) LifecycleSummary {
	return LifecycleSummary{
		Assessment:      a,
		Effort:          effort,
		NetAnnualKgCO2e: a.TotalKgCO2e() + effort.AmortizedKgCO2ePerYear(lifetimeYears),
	}
}

// RecoveriesPerBudget is a convenience re-export tying the availability
// arithmetic into sustainability reports.
func RecoveriesPerBudget(target float64, recoverySeconds float64) float64 {
	if recoverySeconds <= 0 {
		return math.Inf(1)
	}
	return avail.DowntimeBudget(target).Seconds() / recoverySeconds
}
