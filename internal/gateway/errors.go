package gateway

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/vclock"
)

// This file defines the gateway's typed-error vocabulary. Every
// admission rejection is a distinct error type so servers can classify
// it (errors.As via the Is* helpers, per the errclass lint invariant)
// and map it onto the right wire response: 401 for authentication, 429
// with a Retry-After hint for rate/quota/quarantine rejections, and 503
// while draining. Retry hints are virtual-cycle quantities — derived
// from per-request cycle budgets, never from wall time — so campaign
// traces that include them stay byte-identical across runs and hosts.

// RetryQuantum is the resolution of retry hints in virtual cycles
// (2^20 cycles ≈ 350µs at vclock.DefaultCPUHz). Quantizing hints keeps
// them deterministic currency: two runs that reject for the same reason
// at the same queue depth render the same hint bytes.
const RetryQuantum = 1 << 20

// QuantizeRetryCycles rounds a cycle count up to the retry-hint
// quantum; the minimum hint is one quantum, so a rejection never
// advertises "retry immediately".
func QuantizeRetryCycles(cycles uint64) uint64 {
	if cycles == 0 {
		return RetryQuantum
	}
	return (cycles + RetryQuantum - 1) / RetryQuantum * RetryQuantum
}

// RetrySeconds converts a cycle hint to the whole seconds an HTTP
// Retry-After header carries, rounding up (minimum 1: the header has no
// sub-second resolution).
func RetrySeconds(cycles uint64) int {
	d := vclock.CyclesToDuration(cycles, vclock.DefaultCPUHz)
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// AuthError reports a failed tenant authentication: missing, malformed,
// or unknown credentials. The reason is for the server log; the wire
// response is a uniform 401 so the error never leaks which part of the
// credential was wrong.
type AuthError struct {
	// Reason describes the failure for operators ("missing token",
	// "unknown token", ...).
	Reason string
}

// Error implements error.
func (e *AuthError) Error() string { return "gateway: unauthorized: " + e.Reason }

// IsAuth reports whether err is (or wraps) an *AuthError, returning it.
func IsAuth(err error) (*AuthError, bool) {
	var a *AuthError
	if errors.As(err, &a) {
		return a, true
	}
	return nil, false
}

// RateLimitError reports a token-bucket rejection: the tenant exceeded
// its admission rate. RetryCycles is the quantized virtual-cycle hint
// until the bucket refills.
type RateLimitError struct {
	// Tenant is the rejected tenant.
	Tenant string
	// RetryCycles is the quantized virtual-cycle retry hint.
	RetryCycles uint64
}

// Error implements error.
func (e *RateLimitError) Error() string {
	return fmt.Sprintf("gateway: tenant %s rate limited, retry-after-cycles=%d", e.Tenant, e.RetryCycles)
}

// IsRateLimit reports whether err is (or wraps) a *RateLimitError,
// returning it.
func IsRateLimit(err error) (*RateLimitError, bool) {
	var r *RateLimitError
	if errors.As(err, &r) {
		return r, true
	}
	return nil, false
}

// QuotaError reports a per-tenant inflight-quota rejection: the tenant
// has too many admitted-but-unfinished requests. It is the per-tenant
// analogue of submit's pool-wide OverloadError.
type QuotaError struct {
	// Tenant is the rejected tenant.
	Tenant string
	// Inflight and Limit describe the quota at rejection.
	Inflight, Limit int
	// RetryCycles is the quantized virtual-cycle retry hint.
	RetryCycles uint64
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("gateway: tenant %s inflight quota full (%d/%d), retry-after-cycles=%d",
		e.Tenant, e.Inflight, e.Limit, e.RetryCycles)
}

// IsQuota reports whether err is (or wraps) a *QuotaError, returning it.
func IsQuota(err error) (*QuotaError, bool) {
	var q *QuotaError
	if errors.As(err, &q) {
		return q, true
	}
	return nil, false
}

// QuarantinedError reports that the circuit breaker has the tenant
// quarantined: it accumulated QuarantineAfter detections inside the
// sliding window and is rejected until an auto-probe completes cleanly.
type QuarantinedError struct {
	// Tenant is the quarantined tenant.
	Tenant string
	// Detections is the detection count in the window when the breaker
	// tripped.
	Detections int
	// ProbeIn is how many further arrivals until the next probe
	// admission (0 = the probe is in flight).
	ProbeIn uint64
}

// Error implements error.
func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("gateway: tenant %s quarantined (%d detections), probe-in=%d",
		e.Tenant, e.Detections, e.ProbeIn)
}

// IsQuarantined reports whether err is (or wraps) a *QuarantinedError,
// returning it.
func IsQuarantined(err error) (*QuarantinedError, bool) {
	var q *QuarantinedError
	if errors.As(err, &q) {
		return q, true
	}
	return nil, false
}

// DrainingError reports that the gateway has stopped admission for a
// graceful drain; no request admitted after StartDrain will execute.
type DrainingError struct{}

// Error implements error.
func (e *DrainingError) Error() string { return "gateway: draining, admission stopped" }

// IsDraining reports whether err is (or wraps) a *DrainingError.
func IsDraining(err error) bool {
	var d *DrainingError
	return errors.As(err, &d)
}

// RetryHintError decorates an admission rejection (the wrapped cause,
// typically submit's *OverloadError) with a deterministic, quantized
// retry hint. Its Error string deliberately omits the cause: the cause
// may carry host-timing-dependent detail (which worker's queue
// rejected), while the wire bytes of an overload response must be
// byte-identical across runs. Unwrap keeps the cause classifiable.
type RetryHintError struct {
	// Cycles is the quantized virtual-cycle retry hint.
	Cycles uint64
	// Cause is the underlying rejection.
	Cause error
}

// Error implements error with a fully deterministic rendering.
func (e *RetryHintError) Error() string {
	return fmt.Sprintf("busy retry-after-cycles=%d", e.Cycles)
}

// Unwrap exposes the underlying rejection to errors.Is/errors.As.
func (e *RetryHintError) Unwrap() error { return e.Cause }

// RetryAfterCycles extracts the quantized retry hint from a gateway or
// overload rejection (rate limit, quota, retry-hint wrapper), comma-ok
// style.
func RetryAfterCycles(err error) (uint64, bool) {
	// The outermost hint decorator wins: a *RetryHintError may wrap a
	// hintless cause (e.g. a bare quota error), and its Cycles is the
	// authoritative quantized value.
	var h *RetryHintError
	if errors.As(err, &h) {
		return h.Cycles, true
	}
	if r, ok := IsRateLimit(err); ok {
		return r.RetryCycles, true
	}
	if q, ok := IsQuota(err); ok {
		return q.RetryCycles, true
	}
	return 0, false
}
