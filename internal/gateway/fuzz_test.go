package gateway

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzGatewayAuth drives the full untrusted-input path — bearer-token
// extraction from a raw request head followed by table lookup — with
// arbitrary bytes. Invariants: never panic, malformed auth always
// yields a typed *AuthError (the wire 401), and a lookup may only ever
// resolve to the tenant whose exact token was presented — hostile
// bytes can never surface another tenant's identity.
func FuzzGatewayAuth(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\nAuthorization: Bearer tok-alice\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nauthorization: bearer tok-bob\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nHost: h\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nAuthorization: Basic dXNlcg==\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nAuthorization: Bearer\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nAuthorization: Bearer a b c\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nAuthorization: Bearer t1\r\nAuthorization: Bearer t2\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nAuthorization: Bearer " + strings.Repeat("x", 400) + "\r\n\r\n"))
	f.Add([]byte("\r\n\r\n"))
	f.Add([]byte(""))
	f.Add([]byte("garbage\x00\xff\r\nAuthorization:Bearer tok-alice\r\n"))
	f.Add([]byte("Authorization: Bearer tok-alice")) // header on the request line: must not authenticate

	tab, err := NewTable(map[string]string{
		"alice": "tok-alice",
		"bob":   "tok-bob",
	})
	if err != nil {
		f.Fatalf("NewTable: %v", err)
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		token, aerr := BearerToken(raw)
		if aerr != nil {
			if token != nil {
				t.Fatalf("auth error %v but token %q returned", aerr, token)
			}
			if aerr.Reason == "" {
				t.Fatal("auth error with empty reason")
			}
			return
		}
		if len(token) == 0 || len(token) > MaxTokenLen {
			t.Fatalf("accepted token with invalid length %d", len(token))
		}
		tenant, ok := tab.Lookup(token)
		if !ok {
			return // unknown token: server side would 401 uniformly
		}
		// Identity non-leak: a successful lookup must be exactly the
		// presented credential's owner.
		want := map[string]string{"alice": "tok-alice", "bob": "tok-bob"}
		if want[tenant] != string(token) {
			t.Fatalf("token %q resolved to tenant %q", token, tenant)
		}
		// And the credential must have arrived in a real header line,
		// not the request line.
		if !bytes.Contains(raw, []byte(token)) {
			t.Fatalf("resolved token %q absent from input", token)
		}
	})
}
