package gateway

import (
	"strings"
	"testing"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable(map[string]string{
		"alice": "tok-alice-1",
		"bob":   "tok-bob-2",
	})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tab
}

func TestParseTable(t *testing.T) {
	tab, err := ParseTable(strings.NewReader(`
# comment
beta  tok-b
alpha tok-a
`))
	if err != nil {
		t.Fatalf("ParseTable: %v", err)
	}
	got := tab.Tenants()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Tenants() = %v, want [alpha beta]", got)
	}
	if name, ok := tab.Lookup([]byte("tok-b")); !ok || name != "beta" {
		t.Fatalf("Lookup(tok-b) = %q,%v", name, ok)
	}
	if _, ok := tab.Lookup([]byte("tok-x")); ok {
		t.Fatal("Lookup(tok-x) matched")
	}
	if _, ok := tab.Lookup(nil); ok {
		t.Fatal("Lookup(nil) matched")
	}
}

func TestParseTableRejects(t *testing.T) {
	cases := map[string]string{
		"fields":    "alpha\n",
		"name":      "Alpha tok-a\n",
		"dup-name":  "a t1\na t2\n",
		"dup-token": "a t1\nb t1\n",
		"empty":     "# nothing\n",
		"long":      "a " + strings.Repeat("x", MaxTokenLen+1) + "\n",
	}
	for name, src := range cases {
		if _, err := ParseTable(strings.NewReader(src)); err == nil {
			t.Errorf("%s: ParseTable accepted %q", name, src)
		}
	}
}

func TestBearerToken(t *testing.T) {
	head := []byte("GET / HTTP/1.1\r\nHost: h\r\nAuthorization: Bearer tok-1\r\n\r\nbody")
	tok, aerr := BearerToken(head)
	if aerr != nil || string(tok) != "tok-1" {
		t.Fatalf("BearerToken = %q, %v", tok, aerr)
	}
	// Case-insensitive header name and scheme.
	tok, aerr = BearerToken([]byte("GET / HTTP/1.1\r\nauthorization: bearer tok-2\r\n\r\n"))
	if aerr != nil || string(tok) != "tok-2" {
		t.Fatalf("BearerToken lower = %q, %v", tok, aerr)
	}
	bad := [][]byte{
		[]byte("GET / HTTP/1.1\r\nHost: h\r\n\r\n"),                                                // missing
		[]byte("GET / HTTP/1.1\r\nAuthorization: Basic dXNlcg==\r\n\r\n"),                          // wrong scheme
		[]byte("GET / HTTP/1.1\r\nAuthorization: Bearer\r\n\r\n"),                                  // no token
		[]byte("GET / HTTP/1.1\r\nAuthorization: Bearer a b\r\n\r\n"),                              // space in token
		[]byte("GET / HTTP/1.1\r\nAuthorization: Bearer t1\r\nAuthorization: Bearer t2\r\n\r\n"),   // duplicate
		[]byte("GET / HTTP/1.1\r\nAuthorization: Bearer " + strings.Repeat("x", 300) + "\r\n\r\n"), // oversized
	}
	for i, raw := range bad {
		if _, aerr := BearerToken(raw); aerr == nil {
			t.Errorf("case %d: BearerToken accepted %q", i, raw)
		}
	}
}

func TestRateLimitDeterministic(t *testing.T) {
	run := func() []string {
		g, err := New(Config{
			Table:  testTable(t),
			Limits: Limits{Burst: 2, RefillEvery: 3, MaxInflight: 8},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var out []string
		for i := 0; i < 20; i++ {
			tk, err := g.Admit("alice")
			if err != nil {
				out = append(out, err.Error())
				continue
			}
			out = append(out, "ok")
			tk.Done(false, false)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("admission sequence diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// Burst of 2 plus the refill landing on the 3rd arrival admits the
	// first three; arrival 4 is the first rate limit.
	if a[0] != "ok" || a[1] != "ok" || a[2] != "ok" {
		t.Fatalf("burst not admitted: %v", a[:3])
	}
	if !strings.Contains(a[3], "rate limited") {
		t.Fatalf("arrival 3: want rate limit, got %q", a[3])
	}
	okCount := 0
	for _, s := range a {
		if s == "ok" {
			okCount++
		}
	}
	if okCount != 2+6 { // burst 2 + 18 remaining arrivals / 3
		t.Fatalf("okCount = %d, want 8 (sequence %v)", okCount, a)
	}
}

func TestQuota(t *testing.T) {
	g, err := New(Config{
		Table:  testTable(t),
		Limits: Limits{Burst: 100, RefillEvery: 1, MaxInflight: 2},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t1, err := g.Admit("alice")
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	if _, err = g.Admit("alice"); err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	_, err = g.Admit("alice")
	q, ok := IsQuota(err)
	if !ok {
		t.Fatalf("admit 3: want *QuotaError, got %v", err)
	}
	if q.Inflight != 2 || q.Limit != 2 {
		t.Fatalf("QuotaError = %+v", q)
	}
	if q.RetryCycles%RetryQuantum != 0 || q.RetryCycles == 0 {
		t.Fatalf("RetryCycles %d not quantized", q.RetryCycles)
	}
	// Bob's quota is independent of alice's.
	if _, err := g.Admit("bob"); err != nil {
		t.Fatalf("bob admit: %v", err)
	}
	t1.Done(false, false)
	if _, err := g.Admit("alice"); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestQuarantineAndProbe(t *testing.T) {
	g, err := New(Config{
		Table:           testTable(t),
		Limits:          Limits{Burst: 100, RefillEvery: 1, MaxInflight: 100},
		QuarantineAfter: 3,
		Window:          8,
		ProbeEvery:      4,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Three detected completions trip the breaker.
	for i := 0; i < 3; i++ {
		tk, err := g.Admit("alice")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		tk.Done(true, false)
	}
	if !g.Quarantined("alice") {
		t.Fatal("alice not quarantined after 3 detections")
	}
	// Quarantine rejects with typed error and a probe countdown.
	_, err = g.Admit("alice")
	qe, ok := IsQuarantined(err)
	if !ok {
		t.Fatalf("want *QuarantinedError, got %v", err)
	}
	if qe.ProbeIn != 3 {
		t.Fatalf("ProbeIn = %d, want 3", qe.ProbeIn)
	}
	// Bob is unaffected.
	if _, err := g.Admit("bob"); err != nil {
		t.Fatalf("bob admit during alice quarantine: %v", err)
	}
	// Arrivals 2..3 still rejected; the 4th is the probe.
	for i := 0; i < 2; i++ {
		if _, err := g.Admit("alice"); !isQuarantinedErr(err) {
			t.Fatalf("pre-probe arrival %d: %v", i, err)
		}
	}
	probe, err := g.Admit("alice")
	if err != nil {
		t.Fatalf("probe admit: %v", err)
	}
	if !probe.Probe() {
		t.Fatal("4th arrival not marked as probe")
	}
	// A dirty probe keeps the quarantine.
	probe.Done(true, false)
	if !g.Quarantined("alice") {
		t.Fatal("quarantine lifted by dirty probe")
	}
	// Next probe cycle: 4 arrivals, last is a probe; clean → readmitted.
	var probe2 *Ticket
	for i := 0; i < 4; i++ {
		tk, err := g.Admit("alice")
		if err == nil {
			probe2 = tk
		}
	}
	if probe2 == nil || !probe2.Probe() {
		t.Fatalf("no second probe admitted (ticket %v)", probe2)
	}
	probe2.Done(false, false)
	if g.Quarantined("alice") {
		t.Fatal("quarantine not lifted by clean probe")
	}
	if _, err := g.Admit("alice"); err != nil {
		t.Fatalf("post-readmission admit: %v", err)
	}
	st := g.Stats().Get("alice")
	if st.Quarantines != 1 || st.Probes != 2 || st.Readmissions != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

func isQuarantinedErr(err error) bool {
	_, ok := IsQuarantined(err)
	return ok
}

func TestDrain(t *testing.T) {
	g, err := New(Config{Table: testTable(t)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tk, err := g.Admit("alice")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if !g.StartDrain() {
		t.Fatal("first StartDrain returned false")
	}
	if g.StartDrain() {
		t.Fatal("second StartDrain returned true")
	}
	if !g.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	if _, err := g.Admit("alice"); !IsDraining(err) {
		t.Fatalf("post-drain admit: want *DrainingError, got %v", err)
	}
	// Outstanding tickets still complete.
	tk.Done(false, false)
	st := g.Stats().Get("alice")
	if st.Completed != 1 || st.Drained != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

func TestDoneIdempotent(t *testing.T) {
	g, err := New(Config{Table: testTable(t), Limits: Limits{MaxInflight: 1, Burst: 100, RefillEvery: 1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tk, err := g.Admit("alice")
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	tk.Done(false, false)
	tk.Done(false, false)
	if st := g.Stats().Get("alice"); st.Completed != 1 {
		t.Fatalf("Completed = %d after double Done", st.Completed)
	}
	if _, err := g.Admit("alice"); err != nil {
		t.Fatalf("inflight not released exactly once: %v", err)
	}
}

func TestRetryHints(t *testing.T) {
	if q := QuantizeRetryCycles(0); q != RetryQuantum {
		t.Fatalf("QuantizeRetryCycles(0) = %d", q)
	}
	if q := QuantizeRetryCycles(1); q != RetryQuantum {
		t.Fatalf("QuantizeRetryCycles(1) = %d", q)
	}
	if q := QuantizeRetryCycles(RetryQuantum + 1); q != 2*RetryQuantum {
		t.Fatalf("QuantizeRetryCycles(quantum+1) = %d", q)
	}
	if s := RetrySeconds(RetryQuantum); s != 1 {
		t.Fatalf("RetrySeconds(quantum) = %d", s)
	}
	// The hint extractor sees through every hinted rejection type.
	hint := &RetryHintError{Cycles: 3 * RetryQuantum, Cause: &QuotaError{Tenant: "a"}}
	if got, ok := RetryAfterCycles(hint); !ok || got != 3*RetryQuantum {
		t.Fatalf("RetryAfterCycles(hint) = %d,%v", got, ok)
	}
	if got := hint.Error(); got != "busy retry-after-cycles=3145728" {
		t.Fatalf("hint rendering = %q", got)
	}
	if _, ok := RetryAfterCycles(&DrainingError{}); ok {
		t.Fatal("RetryAfterCycles matched a drain error")
	}
}
