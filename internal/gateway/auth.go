package gateway

import (
	"bufio"
	"bytes"
	"crypto/subtle"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements tenant identity: a static token→tenant table
// loaded from a config file, looked up with a constant-time scan, plus
// the host-side bearer-token extraction for raw HTTP request heads.
// Everything here runs on the trusted side before a request touches a
// domain, so it must be total over hostile bytes (FuzzGatewayAuth pins
// no-panic and no-identity-leak) and free of wall-clock reads.

// MaxTokenLen bounds accepted credential lengths; longer tokens are
// rejected before comparison so a hostile header cannot force unbounded
// work in the constant-time scan.
const MaxTokenLen = 256

// Table is the static token→tenant map. Entries are fixed at parse
// time and scanned in full on every lookup (constant-time compare per
// entry, no early exit on match), so lookup timing does not depend on
// which tenant — if any — the token belongs to.
type Table struct {
	tenants []string
	tokens  [][]byte
}

// ParseTable reads a tenant table: one "<tenant> <token>" pair per
// line, '#' comments and blank lines ignored. Tenant names and tokens
// must be unique; names are restricted to [a-z0-9-] so they embed
// cleanly in metrics and trace keys. Entries are sorted by tenant name,
// making Tenants deterministic regardless of file order.
func ParseTable(r io.Reader) (*Table, error) {
	type entry struct {
		tenant string
		token  string
	}
	var entries []entry
	seenTenant := make(map[string]bool)
	seenToken := make(map[string]bool)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("gateway: tenants file line %d: want \"<tenant> <token>\", got %d fields", line, len(fields))
		}
		tenant, token := fields[0], fields[1]
		if !validTenantName(tenant) {
			return nil, fmt.Errorf("gateway: tenants file line %d: invalid tenant name %q (want [a-z0-9-]+)", line, tenant)
		}
		if len(token) > MaxTokenLen {
			return nil, fmt.Errorf("gateway: tenants file line %d: token exceeds %d bytes", line, MaxTokenLen)
		}
		if seenTenant[tenant] {
			return nil, fmt.Errorf("gateway: tenants file line %d: duplicate tenant %q", line, tenant)
		}
		if seenToken[token] {
			return nil, fmt.Errorf("gateway: tenants file line %d: duplicate token", line)
		}
		seenTenant[tenant] = true
		seenToken[token] = true
		entries = append(entries, entry{tenant: tenant, token: token})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gateway: tenants file: %w", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("gateway: tenants file holds no entries")
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].tenant < entries[j].tenant })
	t := &Table{
		tenants: make([]string, len(entries)),
		tokens:  make([][]byte, len(entries)),
	}
	for i, e := range entries {
		t.tenants[i] = e.tenant
		t.tokens[i] = []byte(e.token)
	}
	return t, nil
}

// NewTable builds a table from an in-memory tenant→token map (tests and
// the campaign engine). Same validation as ParseTable.
func NewTable(tokens map[string]string) (*Table, error) {
	var sb strings.Builder
	// Deterministic render order: host map iteration is randomized.
	names := make([]string, 0, len(tokens))
	for name := range tokens {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "%s %s\n", name, tokens[name])
	}
	return ParseTable(strings.NewReader(sb.String()))
}

// validTenantName reports whether s is a non-empty [a-z0-9-] string.
func validTenantName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// Tenants returns the configured tenant names in sorted order.
func (t *Table) Tenants() []string {
	out := make([]string, len(t.tenants))
	copy(out, t.tenants)
	return out
}

// Lookup resolves a presented token to its tenant. The scan visits
// every entry and compares each with crypto/subtle regardless of
// earlier matches, so timing reveals only the table size and the
// presented token's length — never which entry (if any) matched.
func (t *Table) Lookup(token []byte) (string, bool) {
	if len(token) == 0 || len(token) > MaxTokenLen {
		return "", false
	}
	match := -1
	for i, tk := range t.tokens {
		// subtle.ConstantTimeCompare is length-gated internally; the
		// explicit length check keeps the branch shape uniform per entry.
		if len(tk) == len(token) && subtle.ConstantTimeCompare(tk, token) == 1 {
			match = i
		}
	}
	if match < 0 {
		return "", false
	}
	return t.tenants[match], true
}

// BearerToken extracts the bearer credential from a raw HTTP/1.x
// request head: exactly one Authorization header (case-insensitive
// name and scheme) of the form "Bearer <token>". Every failure mode —
// missing, malformed, duplicated, oversized — returns a typed
// *AuthError and never panics, whatever the input bytes.
func BearerToken(raw []byte) ([]byte, *AuthError) {
	head := raw
	if i := bytes.Index(head, []byte("\r\n\r\n")); i >= 0 {
		head = head[:i]
	}
	lines := bytes.Split(head, []byte("\r\n"))
	var token []byte
	found := false
	for _, line := range lines[1:] { // lines[0] is the request line
		name, value, ok := bytes.Cut(line, []byte(":"))
		if !ok {
			continue
		}
		if !strings.EqualFold(string(bytes.TrimSpace(name)), "authorization") {
			continue
		}
		if found {
			return nil, &AuthError{Reason: "duplicate authorization header"}
		}
		found = true
		scheme, cred, ok := bytes.Cut(bytes.TrimSpace(value), []byte(" "))
		if !ok || !strings.EqualFold(string(scheme), "bearer") {
			return nil, &AuthError{Reason: "authorization scheme is not Bearer"}
		}
		cred = bytes.TrimSpace(cred)
		if len(cred) == 0 {
			return nil, &AuthError{Reason: "empty bearer token"}
		}
		if len(cred) > MaxTokenLen {
			return nil, &AuthError{Reason: "bearer token too long"}
		}
		if bytes.ContainsAny(cred, " \t") {
			return nil, &AuthError{Reason: "malformed bearer token"}
		}
		token = cred
	}
	if !found {
		return nil, &AuthError{Reason: "missing authorization header"}
	}
	return token, nil
}
