// Package gateway is the production front tier for the demo servers:
// tenant identity from static bearer tokens, per-tenant token-bucket
// rate limiting and inflight quotas, per-tenant fault isolation with
// repeated-offender circuit breaking, and graceful-drain lifecycle
// state. The package is protocol-agnostic — the kvstore and httpd
// NetServers translate its typed rejections onto their wires — and
// fully deterministic: every limiter advances on tenant-local request
// arrivals and every retry hint is a quantized virtual-cycle quantity,
// so no decision ever reads the wall clock (DESIGN.md §12).
//
// Tenant locality is the load-bearing design decision: buckets,
// windows, and quotas are keyed and clocked per tenant, never globally,
// so one tenant's traffic cannot move another tenant's admission
// decisions. The campaign isolation oracle (internal/campaign) holds
// this as a differential: a benign tenant's outcomes must be
// byte-identical with and without a hostile co-tenant.
package gateway

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// Limits bounds one tenant's admission.
type Limits struct {
	// Burst is the token-bucket capacity (default 8): how many requests
	// a tenant may issue back to back before the refill rate gates it.
	Burst int
	// RefillEvery grants one token per this many tenant-local arrivals
	// (default 2): a steady offered load is admitted at 1/RefillEvery of
	// its rate once the burst is spent.
	RefillEvery uint64
	// MaxInflight caps admitted-but-unfinished requests (default 64) —
	// the per-tenant share of the pool-wide submission backlog.
	MaxInflight int
}

func (l *Limits) fill() {
	if l.Burst <= 0 {
		l.Burst = 8
	}
	if l.RefillEvery == 0 {
		l.RefillEvery = 2
	}
	if l.MaxInflight <= 0 {
		l.MaxInflight = 64
	}
}

// Config configures a Gateway.
type Config struct {
	// Table is the static token→tenant map (required).
	Table *Table
	// Limits is the default per-tenant admission bound; Overrides
	// replaces it for named tenants.
	Limits Limits
	// Overrides maps tenant names to tenant-specific limits.
	Overrides map[string]Limits
	// QuarantineAfter trips the circuit breaker when a tenant
	// accumulates this many detections inside the sliding window
	// (default 3; <0 disables quarantine).
	QuarantineAfter int
	// Window is the sliding-window length in completed requests
	// (default 16).
	Window int
	// ProbeEvery admits every Nth arrival of a quarantined tenant as a
	// re-admission probe (default 8): a clean probe lifts the
	// quarantine, a detected one keeps it.
	ProbeEvery uint64
	// RetryCyclesPerRequest is the virtual-cycle cost estimate behind
	// retry hints (default 300_000 ≈ the servers' 100µs inter-arrival at
	// vclock.DefaultCPUHz).
	RetryCyclesPerRequest uint64
}

func (c *Config) fill() {
	c.Limits.fill()
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 3
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 8
	}
	if c.RetryCyclesPerRequest == 0 {
		c.RetryCyclesPerRequest = 300_000
	}
}

// tenantState is one tenant's admission machinery. Every field advances
// only on that tenant's own arrivals and completions — the clock is the
// tenant's traffic, so state evolution is a pure function of the
// tenant's request sequence.
type tenantState struct {
	lim Limits

	// arrivals counts admission attempts; refillMark is the arrival
	// count already converted into tokens.
	arrivals   uint64
	refillMark uint64
	tokens     int

	inflight int

	// window is a ring of the last lim completions' detection bits; hot
	// counts the true entries.
	window []bool
	wpos   int
	wlen   int
	hot    int

	quarantined   bool
	sinceProbe    uint64
	probeInflight bool
}

// Gateway is the admission front tier. Safe for concurrent use; all
// state transitions happen under one mutex, so admission decisions and
// outcome observations serialize into a single deterministic
// per-tenant history.
type Gateway struct {
	mu       sync.Mutex
	cfg      Config
	stats    *metrics.TenantStats
	tenants  map[string]*tenantState
	draining bool
}

// New builds a Gateway; cfg.Table is required and every configured
// tenant gets its state eagerly so health output is stable from the
// first request.
func New(cfg Config) (*Gateway, error) {
	if cfg.Table == nil {
		return nil, fmt.Errorf("gateway: config needs a tenant table")
	}
	cfg.fill()
	g := &Gateway{
		cfg:     cfg,
		stats:   metrics.NewTenantStats(),
		tenants: make(map[string]*tenantState),
	}
	for _, name := range cfg.Table.Tenants() {
		lim := cfg.Limits
		if o, ok := cfg.Overrides[name]; ok {
			o.fill()
			lim = o
		}
		g.tenants[name] = &tenantState{
			lim:    lim,
			tokens: lim.Burst,
			window: make([]bool, cfg.Window),
		}
	}
	return g, nil
}

// Authenticate resolves a presented token to a tenant name
// (constant-time table scan) or returns a typed *AuthError.
func (g *Gateway) Authenticate(token []byte) (string, error) {
	tenant, ok := g.cfg.Table.Lookup(token)
	if !ok {
		return "", &AuthError{Reason: "unknown token"}
	}
	return tenant, nil
}

// Ticket is one admitted request. Exactly one Done call per ticket
// releases the inflight slot and feeds the tenant's detection window.
type Ticket struct {
	g      *Gateway
	tenant string
	probe  bool
	done   bool
}

// Probe reports whether this admission is a quarantine re-admission
// probe.
func (t *Ticket) Probe() bool { return t.probe }

// Admit runs the admission pipeline for one arrival of tenant: drain
// gate, token-bucket refill and charge, circuit-breaker gate (with
// probe scheduling), and inflight quota. It returns a Ticket, or a
// typed rejection (*DrainingError, *RateLimitError, *QuarantinedError,
// *QuotaError). The tenant must exist in the table; unknown tenants are
// rejected as an auth failure.
func (g *Gateway) Admit(tenant string) (*Ticket, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ts := g.tenants[tenant]
	if ts == nil {
		return nil, &AuthError{Reason: "unknown tenant"}
	}
	if g.draining {
		g.stats.Observe(tenant, func(c *metrics.TenantCounters) { c.Drained++ })
		return nil, &DrainingError{}
	}
	ts.arrivals++
	// Refill on the tenant-local arrival clock: one token per
	// RefillEvery arrivals, capped at Burst. refillMark tracks arrivals
	// already converted, so fractional progress carries across calls.
	if delta := ts.arrivals - ts.refillMark; delta >= ts.lim.RefillEvery {
		grant := delta / ts.lim.RefillEvery
		ts.refillMark += grant * ts.lim.RefillEvery
		ts.tokens += int(grant)
		if ts.tokens > ts.lim.Burst {
			ts.tokens = ts.lim.Burst
		}
	}
	if ts.quarantined {
		ts.sinceProbe++
		if ts.sinceProbe >= g.cfg.ProbeEvery && !ts.probeInflight {
			ts.probeInflight = true
			ts.sinceProbe = 0
			ts.inflight++
			g.stats.Observe(tenant, func(c *metrics.TenantCounters) {
				c.Admitted++
				c.Probes++
			})
			return &Ticket{g: g, tenant: tenant, probe: true}, nil
		}
		probeIn := uint64(0)
		if !ts.probeInflight {
			probeIn = g.cfg.ProbeEvery - ts.sinceProbe
		}
		g.stats.Observe(tenant, func(c *metrics.TenantCounters) { c.QuarantineRejected++ })
		return nil, &QuarantinedError{Tenant: tenant, Detections: ts.hot, ProbeIn: probeIn}
	}
	if ts.tokens <= 0 {
		need := ts.lim.RefillEvery - (ts.arrivals - ts.refillMark)
		g.stats.Observe(tenant, func(c *metrics.TenantCounters) { c.Throttled++ })
		return nil, &RateLimitError{
			Tenant:      tenant,
			RetryCycles: QuantizeRetryCycles(need * g.cfg.RetryCyclesPerRequest),
		}
	}
	if ts.inflight >= ts.lim.MaxInflight {
		g.stats.Observe(tenant, func(c *metrics.TenantCounters) { c.QuotaRejected++ })
		return nil, &QuotaError{
			Tenant:      tenant,
			Inflight:    ts.inflight,
			Limit:       ts.lim.MaxInflight,
			RetryCycles: QuantizeRetryCycles(uint64(ts.inflight) * g.cfg.RetryCyclesPerRequest),
		}
	}
	ts.tokens--
	ts.inflight++
	g.stats.Observe(tenant, func(c *metrics.TenantCounters) { c.Admitted++ })
	return &Ticket{g: g, tenant: tenant}, nil
}

// Done records the admitted request's outcome: detected reports a
// contained memory-safety violation attributed to the tenant, preempted
// a budget preemption. It releases the inflight slot, advances the
// sliding window, and drives the circuit breaker — a window that
// reaches QuarantineAfter detections trips quarantine; a clean probe
// lifts it. Done is idempotent per ticket.
func (t *Ticket) Done(detected, preempted bool) {
	g := t.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	ts := g.tenants[t.tenant]
	if ts.inflight > 0 {
		ts.inflight--
	}
	g.stats.Observe(t.tenant, func(c *metrics.TenantCounters) {
		c.Completed++
		if detected {
			c.Detections++
		}
		if preempted {
			c.Preemptions++
		}
	})
	if t.probe {
		ts.probeInflight = false
		if !detected {
			// Clean probe: lift the quarantine and reset the window, so
			// the tenant re-enters with a clean slate rather than
			// re-tripping on stale history.
			ts.quarantined = false
			for i := range ts.window {
				ts.window[i] = false
			}
			ts.wpos, ts.wlen, ts.hot = 0, 0, 0
			g.stats.Observe(t.tenant, func(c *metrics.TenantCounters) { c.Readmissions++ })
		}
		return
	}
	// Slide the window: evict the oldest completion's bit, record this
	// one.
	if ts.wlen == len(ts.window) {
		if ts.window[ts.wpos] {
			ts.hot--
		}
	} else {
		ts.wlen++
	}
	ts.window[ts.wpos] = detected
	if detected {
		ts.hot++
	}
	ts.wpos = (ts.wpos + 1) % len(ts.window)
	if detected && !ts.quarantined && g.cfg.QuarantineAfter > 0 && ts.hot >= g.cfg.QuarantineAfter {
		ts.quarantined = true
		ts.sinceProbe = 0
		ts.probeInflight = false
		g.stats.Observe(t.tenant, func(c *metrics.TenantCounters) { c.Quarantines++ })
	}
}

// Quarantined reports whether tenant is currently quarantined.
func (g *Gateway) Quarantined(tenant string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	ts := g.tenants[tenant]
	return ts != nil && ts.quarantined
}

// StartDrain stops admission permanently: every later Admit returns
// *DrainingError. It returns true on the first call, false if the
// gateway was already draining (idempotent).
func (g *Gateway) StartDrain() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.draining = true
	return true
}

// Draining reports whether drain has started.
func (g *Gateway) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Stats exposes the per-tenant counters.
func (g *Gateway) Stats() *metrics.TenantStats { return g.stats }
