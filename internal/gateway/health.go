package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/metrics"
)

// This file defines the health surface the lifecycle endpoints render:
// /healthz on httpd and the health command on kvstore. The shape is
// protocol-agnostic — servers fill in their shard states (including the
// persist tier's fail-stop/degraded split from the durability layer)
// and the gateway contributes drain state and per-tenant counters.

// Shard states reported by Health.
const (
	// ShardOK is a fully serving shard.
	ShardOK = "ok"
	// ShardFailStop is a shard that stopped serving after a WAL commit
	// failure (acks could no longer be made durable).
	ShardFailStop = "fail-stop"
	// ShardDegraded is a shard serving log-only after a snapshot
	// failure; acked writes are durable but recovery replays a longer
	// WAL.
	ShardDegraded = "degraded"
	// ShardDrained is a shard that finished a graceful drain.
	ShardDrained = "drained"
)

// ShardHealth is one shard's health row.
type ShardHealth struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// State is one of the Shard* constants.
	State string `json:"state"`
	// Detail carries the failure description for non-ok states.
	Detail string `json:"detail,omitempty"`
}

// Health is the full health document a lifecycle endpoint renders.
type Health struct {
	// State summarizes the whole server: "ok" when every shard is ok and
	// the server is not draining, "draining" during a drain, "degraded"
	// when any shard is degraded or drained, "fail-stop" when any shard
	// fail-stopped.
	State string `json:"state"`
	// Draining reports whether admission has stopped.
	Draining bool `json:"draining"`
	// Workers is the shard/worker count.
	Workers int `json:"workers"`
	// Shards lists per-shard states (empty for servers without a
	// durable shard tier).
	Shards []ShardHealth `json:"shards,omitempty"`
	// Tenants lists per-tenant gateway counters in sorted order.
	Tenants []metrics.TenantSnapshot `json:"tenants,omitempty"`
}

// BuildHealth assembles the document and derives the summary state from
// the shard rows and drain flag: fail-stop dominates, then draining,
// then degraded/drained shards, then ok.
func BuildHealth(draining bool, workers int, shards []ShardHealth, tenants []metrics.TenantSnapshot) *Health {
	h := &Health{State: ShardOK, Draining: draining, Workers: workers, Shards: shards, Tenants: tenants}
	for _, sh := range shards {
		switch sh.State {
		case ShardFailStop:
			h.State = ShardFailStop
		case ShardDegraded, ShardDrained:
			if h.State == ShardOK {
				h.State = ShardDegraded
			}
		}
	}
	if draining && h.State == ShardOK {
		h.State = "draining"
	}
	return h
}

// Status maps the health document to an HTTP status: 200 while the
// server can make acked progress (ok, degraded — durable but log-only),
// 503 once it cannot or will not admit (fail-stop, draining).
func (h *Health) Status() int {
	if h.State == ShardFailStop || h.Draining {
		return 503
	}
	return 200
}

// JSON renders the document as stable, indented JSON ending in a
// newline.
func (h *Health) JSON() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h); err != nil {
		// The document is plain data; encoding cannot fail on it.
		return []byte(fmt.Sprintf("{\"state\":%q}\n", h.State))
	}
	return buf.Bytes()
}
