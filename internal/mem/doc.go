// Package mem implements the paged virtual memory of the simulated
// machine underneath the SDRaD reproduction.
//
// Memory is organized as 4 KiB pages. Each mapped page carries normal
// page protections (read/write) and a PKU protection-key tag. Every load
// and store is checked against both the page protections and the caller's
// PKRU register value, exactly as the hardware page walk + PKU check
// would do; violations surface as *Fault errors carrying the same
// information a SIGSEGV siginfo would (faulting address, access type,
// protection key). SDRaD's isolation guarantee — a memory defect inside a
// domain can only touch that domain's pages — is enforced here.
//
// # Host-side fast path
//
// Translation is a two-level radix walk (a dense leaf array indexed by
// the low page-number bits under a growable top-level table) fronted by a
// small direct-mapped software TLB that caches the outcome of the full
// page-walk + PKU check per (page, PKRU) pair. The TLB is flushed on
// Unmap/Protect/TagKey — the simulated equivalents of the operations that
// shoot down a hardware TLB — and a PKRU change needs no flush because
// the register value is part of the entry tag. Stores additionally
// maintain a per-page dirty bitmap so Zero can scrub only pages that were
// actually written since they were last known-zero. The fast path itself
// never changes virtual-cycle accounting — benign loads, stores, maps,
// and zeroes charge exactly the cycles the seed implementation charged
// (see the package tests for the pinned values). Two deliberate
// accounting changes ride alongside it: Protect/TagKey charge
// PkeyMprotect per page (the syscall updates every PTE in the range),
// and Load8/Store8 charge before the permission check, unifying the
// charge-before-fault ordering LoadBytes/StoreBytes already had.
//
// # Invariants
//
//   - Isolation: every Load/Store is checked against page protections
//     and the caller's PKRU value; no unchecked access path exists
//     outside the explicitly kernel-side Peek/Poke helpers (which the
//     trusted runtime uses for in-band metadata, never domain code).
//   - Accounting stability: benign accesses charge exactly the cycles
//     the seed implementation charged; host-side caching (TLB, dirty
//     bitmaps) never changes virtual cost (pinned by the package tests).
//   - Fault fidelity: denied accesses yield *Fault values carrying the
//     faulting address, access type, and protection key — the siginfo
//     the detection layer (internal/detect) classifies.
//
// DESIGN.md §7 documents the performance architecture in full.
package mem
