package mem

import (
	"bytes"
	"testing"

	"repro/internal/pku"
	"repro/internal/vclock"
)

// TestTLBHitsOnRepeatAccess: repeated accesses to the same page under the
// same PKRU are served by the software TLB.
func TestTLBHitsOnRepeatAccess(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	for i := 0; i < 10; i++ {
		if err := m.Store8(pku.PKRUAllowAll, base+Addr(i), byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.TLBHits < 9 {
		t.Errorf("TLBHits = %d, want >= 9 after 10 same-page stores", st.TLBHits)
	}
	if st.TLBMisses < 1 {
		t.Errorf("TLBMisses = %d, want >= 1 (first access walks)", st.TLBMisses)
	}
}

// TestTLBInvalidationOnUnmap: a cached translation must not survive the
// page being unmapped.
func TestTLBInvalidationOnUnmap(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	if _, err := m.Load8(pku.PKRUAllowAll, base); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmap(base, 1); err != nil {
		t.Fatal(err)
	}
	_, err := m.Load8(pku.PKRUAllowAll, base)
	if f, ok := IsFault(err); !ok || f.Kind != FaultUnmapped {
		t.Errorf("post-unmap load = %v, want FaultUnmapped (stale TLB entry?)", err)
	}
}

// TestTLBInvalidationOnProtect: a cached write permission must not
// survive the page being made read-only.
func TestTLBInvalidationOnProtect(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	if err := m.Store8(pku.PKRUAllowAll, base, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(base, 1, ProtRead); err != nil {
		t.Fatal(err)
	}
	err := m.Store8(pku.PKRUAllowAll, base, 2)
	if f, ok := IsFault(err); !ok || f.Kind != FaultProt {
		t.Errorf("post-Protect store = %v, want FaultProt (stale TLB entry?)", err)
	}
}

// TestTLBInvalidationOnTagKey: the PKU outcome is cached per (page,
// PKRU), so re-tagging a page to a key the same PKRU cannot access must
// invalidate the cached allow decision. This is the exact hazard of heap
// adoption: the adopting TagKey moves pages to the root key while the
// old PKRU value is still in circulation.
func TestTLBInvalidationOnTagKey(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.Key(2))
	pkru := pku.OnlyKeys(pku.DefaultKey, pku.Key(2))
	if err := m.Store8(pkru, base, 1); err != nil {
		t.Fatal(err)
	}
	// Re-tag to key 5, which pkru has no rights to.
	if err := m.TagKey(base, 1, pku.Key(5)); err != nil {
		t.Fatal(err)
	}
	err := m.Store8(pkru, base, 2)
	if f, ok := IsFault(err); !ok || f.Kind != FaultPkey {
		t.Errorf("post-TagKey store = %v, want FaultPkey (stale TLB entry?)", err)
	}
	if _, err := m.Load8(pkru, base); err == nil {
		t.Error("post-TagKey load succeeded, want FaultPkey")
	}
}

// TestTLBKeyedByPKRU: a translation cached under one PKRU value must not
// leak rights to a different PKRU (no flush happens on a PKRU change —
// the register value is part of the entry tag).
func TestTLBKeyedByPKRU(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.Key(3))
	allowed := pku.OnlyKeys(pku.DefaultKey, pku.Key(3))
	if err := m.Store8(allowed, base, 1); err != nil {
		t.Fatal(err)
	}
	denied := pku.OnlyKeys(pku.DefaultKey) // no rights to key 3
	if _, err := m.Load8(denied, base); err == nil {
		t.Error("denied PKRU read succeeded via cached translation")
	}
	wd := allowed.WithWriteDisabled(pku.Key(3))
	if _, err := m.Load8(wd, base); err != nil {
		t.Errorf("WD read should succeed: %v", err)
	}
	if err := m.Store8(wd, base, 2); err == nil {
		t.Error("WD write succeeded via cached translation")
	}
}

// TestDirtyTracking: stores mark pages dirty, Zero scrubs and re-cleans
// exactly the dirtied pages.
func TestDirtyTracking(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(8, ProtRW, pku.DefaultKey)
	if got := m.DirtyPages(); got != 0 {
		t.Fatalf("fresh mapping DirtyPages = %d, want 0", got)
	}
	// Dirty pages 1 and 5.
	if err := m.Store8(pku.PKRUAllowAll, base+1*PageSize+17, 0xaa); err != nil {
		t.Fatal(err)
	}
	if err := m.Store8(pku.PKRUAllowAll, base+5*PageSize, 0xbb); err != nil {
		t.Fatal(err)
	}
	if got := m.DirtyPages(); got != 2 {
		t.Errorf("DirtyPages = %d, want 2", got)
	}
	// A multi-page store dirties every page it touches.
	big := make([]byte, 2*PageSize)
	if err := m.StoreBytes(pku.PKRUAllowAll, base+2*PageSize, big); err != nil {
		t.Fatal(err)
	}
	if got := m.DirtyPages(); got != 4 {
		t.Errorf("DirtyPages = %d, want 4 after bulk store", got)
	}
	if err := m.Zero(base, 8); err != nil {
		t.Fatal(err)
	}
	if got := m.DirtyPages(); got != 0 {
		t.Errorf("DirtyPages = %d after Zero, want 0", got)
	}
}

// TestZeroDirtyBoundedIsByteIdenticalToFullScrub: the differential test —
// dirty-tracked Zero must leave memory in exactly the state a full scrub
// would: every byte zero, regardless of write pattern.
func TestZeroDirtyBoundedIsByteIdenticalToFullScrub(t *testing.T) {
	m := newMem(t)
	const pages = 67 // not a multiple of the bitmap word size
	base, _ := m.Map(pages, ProtRW, pku.DefaultKey)
	// Write a scattered pattern: whole pages, partial pages, cross-page.
	writes := []struct {
		off Addr
		n   int
	}{
		{0, PageSize},                   // page 0 fully
		{3*PageSize + 100, 50},          // page 3 partially
		{9*PageSize - 8, 16},            // pages 8+9 cross-boundary
		{33 * PageSize, 2 * PageSize},   // pages 33,34
		{66*PageSize + PageSize - 1, 1}, // last byte of last page
	}
	for _, w := range writes {
		buf := bytes.Repeat([]byte{0x5a}, w.n)
		if err := m.StoreBytes(pku.PKRUAllowAll, base+w.off, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Zero a second time after re-dirtying to exercise the re-clean path.
	if err := m.Zero(base, pages); err != nil {
		t.Fatal(err)
	}
	if err := m.Store8(pku.PKRUAllowAll, base+40*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Zero(base, pages); err != nil {
		t.Fatal(err)
	}
	// Differential check: every byte of the whole range must read zero.
	buf := make([]byte, PageSize)
	zero := make([]byte, PageSize)
	for p := 0; p < pages; p++ {
		if err := m.LoadBytes(pku.PKRUAllowAll, base+Addr(p)*PageSize, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, zero) {
			t.Fatalf("page %d not fully zeroed after dirty-bounded Zero", p)
		}
	}
}

// TestZeroChargesFullRange: the host-side dirty-bounded scrub must not
// change virtual accounting — Zero charges PageZero per page over the
// whole range whether or not pages were dirty.
func TestZeroChargesFullRange(t *testing.T) {
	clk := vclock.New(vclock.DefaultCostModel())
	m := New(clk)
	base, _ := m.Map(16, ProtRW, pku.DefaultKey)
	// First zero: nothing dirty at all.
	before := clk.Cycles()
	if err := m.Zero(base, 16); err != nil {
		t.Fatal(err)
	}
	cleanCost := clk.Cycles() - before
	if want := clk.Model().PageZero * 16; cleanCost != want {
		t.Errorf("Zero(clean range) charged %d cycles, want %d", cleanCost, want)
	}
	// Second zero: one dirty page — identical charge.
	_ = m.Store8(pku.PKRUAllowAll, base, 1)
	before = clk.Cycles()
	if err := m.Zero(base, 16); err != nil {
		t.Fatal(err)
	}
	if dirtyCost := clk.Cycles() - before; dirtyCost != cleanCost {
		t.Errorf("Zero charge depends on dirtiness: clean=%d dirty=%d", cleanCost, dirtyCost)
	}
}

// TestChargeBeforeFault: the unified charge ordering — every access
// charges its cycle cost whether or not it faults, for Load8/Store8
// exactly as for LoadBytes/StoreBytes.
func TestChargeBeforeFault(t *testing.T) {
	mdl := vclock.DefaultCostModel()
	cases := []struct {
		name string
		op   func(m *Memory) error
		want uint64
	}{
		{"Load8", func(m *Memory) error { _, err := m.Load8(pku.PKRUAllowAll, 0xdead0000); return err }, mdl.MemLoad},
		{"Store8", func(m *Memory) error { return m.Store8(pku.PKRUAllowAll, 0xdead0000, 1) }, mdl.MemStore},
		{"LoadBytes", func(m *Memory) error {
			return m.LoadBytes(pku.PKRUAllowAll, 0xdead0000, make([]byte, 10))
		}, mdl.MemLoad + 10*mdl.MemPerByte},
		{"StoreBytes", func(m *Memory) error {
			return m.StoreBytes(pku.PKRUAllowAll, 0xdead0000, make([]byte, 10))
		}, mdl.MemStore + 10*mdl.MemPerByte},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := vclock.New(mdl)
			m := New(clk)
			before := clk.Cycles()
			err := tc.op(m)
			if f, ok := IsFault(err); !ok || f.Kind != FaultUnmapped {
				t.Fatalf("err = %v, want FaultUnmapped", err)
			}
			if got := clk.Cycles() - before; got != tc.want {
				t.Errorf("faulting %s charged %d cycles, want %d (charge-before-fault)", tc.name, got, tc.want)
			}
		})
	}
}

// TestProtectTagKeyChargePerPage: pkey_mprotect over n pages charges n
// single-page operations, not a flat cost.
func TestProtectTagKeyChargePerPage(t *testing.T) {
	clk := vclock.New(vclock.DefaultCostModel())
	m := New(clk)
	base, _ := m.Map(5, ProtRW, pku.DefaultKey)
	mdl := clk.Model()

	before := clk.Cycles()
	if err := m.Protect(base, 5, ProtRead); err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Cycles()-before, mdl.PkeyMprotect*5; got != want {
		t.Errorf("Protect(5 pages) charged %d, want %d", got, want)
	}

	before = clk.Cycles()
	if err := m.TagKey(base, 3, pku.Key(4)); err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Cycles()-before, mdl.PkeyMprotect*3; got != want {
		t.Errorf("TagKey(3 pages) charged %d, want %d", got, want)
	}
}

// TestPeekPokeUnchargedAndDirty: kernel-side metadata accesses charge no
// cycles; Poke64 still marks the page dirty so Zero scrubs it.
func TestPeekPokeUnchargedAndDirty(t *testing.T) {
	clk := vclock.New(vclock.DefaultCostModel())
	m := New(clk)
	base, _ := m.Map(1, ProtNone, pku.Key(9)) // no prot, foreign key: Peek/Poke bypass both
	before := clk.Cycles()
	if err := m.Poke64(base+8, 0x1234); err != nil {
		t.Fatal(err)
	}
	v, err := m.Peek64(base + 8)
	if err != nil || v != 0x1234 {
		t.Fatalf("Peek64 = %#x, %v", v, err)
	}
	if clk.Cycles() != before {
		t.Errorf("Peek/Poke charged %d cycles, want 0", clk.Cycles()-before)
	}
	if m.DirtyPages() != 1 {
		t.Errorf("DirtyPages = %d after Poke64, want 1", m.DirtyPages())
	}
	if err := m.Zero(base, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Peek64(base + 8); v != 0 {
		t.Errorf("Poked value survived Zero: %#x", v)
	}
	if _, err := m.Peek64(0xdead0000); err == nil {
		t.Error("Peek64 of unmapped address should fail")
	}
}

// TestRadixSparseAddresses: the radix table handles page numbers far
// apart (distinct leaves) and leaf reclamation on unmap.
func TestRadixSparseAddresses(t *testing.T) {
	m := newMem(t)
	var bases []Addr
	// Map many small regions to spread across leaves (the bump pointer
	// only moves forward; force it across a leaf boundary).
	total := 0
	for total < 3*leafSize {
		b, err := m.Map(100, ProtRW, pku.DefaultKey)
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, b)
		total += 100
	}
	for i, b := range bases {
		if err := m.Store8(pku.PKRUAllowAll, b+Addr(i%100)*PageSize, byte(i)); err != nil {
			t.Fatalf("region %d: %v", i, err)
		}
	}
	for i, b := range bases {
		v, err := m.Load8(pku.PKRUAllowAll, b+Addr(i%100)*PageSize)
		if err != nil || v != byte(i) {
			t.Fatalf("region %d readback = %d, %v", i, v, err)
		}
	}
	mapped := m.MappedPages()
	for _, b := range bases {
		if err := m.Unmap(b, 100); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.MappedPages(); got != mapped-len(bases)*100 {
		t.Errorf("MappedPages = %d after unmaps, want %d", got, mapped-len(bases)*100)
	}
	if m.DirtyPages() != 0 {
		t.Errorf("DirtyPages = %d after unmapping everything, want 0", m.DirtyPages())
	}
	// Fresh mappings after reclamation still work.
	b, err := m.Map(1, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store8(pku.PKRUAllowAll, b, 1); err != nil {
		t.Fatal(err)
	}
}

// TestFaultsNotCachedByTLB: a faulting access must not poison the TLB for
// a later access that should succeed, and fault stats count every fault.
func TestFaultsNotCachedByTLB(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRead, pku.DefaultKey)
	before := m.Stats().Faults
	for i := 0; i < 3; i++ {
		if err := m.Store8(pku.PKRUAllowAll, base, 1); err == nil {
			t.Fatal("write to read-only page succeeded")
		}
	}
	if got := m.Stats().Faults - before; got != 3 {
		t.Errorf("Faults = %d, want 3 (faults must not be TLB-cached)", got)
	}
	// Reads still succeed after the faulting writes.
	if _, err := m.Load8(pku.PKRUAllowAll, base); err != nil {
		t.Errorf("read after faulting writes: %v", err)
	}
}

// TestUnmapChargeUnchanged guards the seed's flat-per-page Unmap/Map
// charges alongside the new per-page Protect/TagKey accounting.
func TestMapUnmapChargePerPage(t *testing.T) {
	clk := vclock.New(vclock.DefaultCostModel())
	m := New(clk)
	mdl := clk.Model()
	before := clk.Cycles()
	base, err := m.Map(7, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Cycles()-before, mdl.PageMap*7; got != want {
		t.Errorf("Map(7) charged %d, want %d", got, want)
	}
	before = clk.Cycles()
	if err := m.Unmap(base, 7); err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Cycles()-before, mdl.PageUnmap*7; got != want {
		t.Errorf("Unmap(7) charged %d, want %d", got, want)
	}
}
