package mem

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pku"
	"repro/internal/vclock"
)

// PageSize is the size of one page in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Addr is a virtual address in the simulated address space.
type Addr uint64

// PageBase returns the address rounded down to its page boundary.
func (a Addr) PageBase() Addr { return a &^ (PageSize - 1) }

// PageNumber returns the virtual page number containing a.
func (a Addr) PageNumber() uint64 { return uint64(a) >> PageShift }

// Offset returns the offset of a within its page.
func (a Addr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// Prot is a page protection bit set.
type Prot uint8

// Page protections.
const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
	ProtRW         = ProtRead | ProtWrite
)

// String implements fmt.Stringer.
func (p Prot) String() string {
	r, w := byte('-'), byte('-')
	if p&ProtRead != 0 {
		r = 'r'
	}
	if p&ProtWrite != 0 {
		w = 'w'
	}
	return string([]byte{r, w})
}

// FaultKind classifies a memory fault.
type FaultKind uint8

// Fault kinds, mirroring the information in siginfo_t for SIGSEGV.
const (
	// FaultUnmapped: access to an address with no mapping (SEGV_MAPERR).
	FaultUnmapped FaultKind = iota + 1
	// FaultProt: access violating page protections (SEGV_ACCERR).
	FaultProt
	// FaultPkey: access denied by the PKRU register (SEGV_PKUERR). This
	// is the fault SDRaD interprets as a domain violation.
	FaultPkey
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "SEGV_MAPERR"
	case FaultProt:
		return "SEGV_ACCERR"
	case FaultPkey:
		return "SEGV_PKUERR"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Fault is a memory access fault. It implements error.
type Fault struct {
	Kind  FaultKind
	Addr  Addr
	Write bool
	// Key is the protection key of the faulting page (valid for
	// FaultProt/FaultPkey).
	Key pku.Key
}

// Error implements error.
func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("mem: %s fault (%s) at %#x key=%v", op, f.Kind, uint64(f.Addr), f.Key)
}

// IsFault reports whether err is (or wraps) a *Fault, returning it.
func IsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// ErrBadRange is returned for invalid map/unmap/protect ranges.
var ErrBadRange = errors.New("mem: invalid page range")

// ErrDoubleMap is returned when mapping over an existing mapping.
var ErrDoubleMap = errors.New("mem: page already mapped")

type page struct {
	data []byte
	prot Prot
	key  pku.Key
}

// Radix-table geometry: the page-number space is split into leaves of
// leafSize pages. The top level is a growable slice (page numbers are
// handed out by a monotone bump pointer, so they are dense from zero),
// the second level is a fixed array — one pointer chase per walk instead
// of a map probe, and leaf storage doubles as the dirty bitmap.
const (
	leafBits  = 10
	leafSize  = 1 << leafBits // pages per leaf (4 MiB of address space)
	leafMask  = leafSize - 1
	leafWords = leafSize / 64
)

type leaf struct {
	pages [leafSize]*page
	// dirty marks pages whose contents may differ from all-zero: the bit
	// is set on every store and cleared when Zero scrubs the page. Fresh
	// mappings start clean (Map hands out zeroed pages).
	dirty [leafWords]uint64
	// snap marks pages whose contents may have changed since the last
	// ClearModified — the incremental-snapshot bitmap. Maintained only
	// while TrackModified is on; unlike dirty it is never cleared by Zero
	// (a scrub is a modification), only by ClearModified and Unmap.
	snap   [leafWords]uint64
	mapped int // non-nil entries; the leaf is freed when it reaches 0
}

// Software-TLB geometry. The TLB is direct-mapped and caches the result
// of a successful page walk + protection + PKU check for one (page
// number, PKRU) pair. Faulting outcomes are never cached, so the fault
// bookkeeping below stays on the slow path.
const (
	tlbBits = 8
	tlbSize = 1 << tlbBits
	tlbMask = tlbSize - 1
)

type tlbEntry struct {
	pg    *page // nil marks an invalid entry
	lf    *leaf // leaf holding pn, for the store path's dirty-bit update
	pn    uint64
	pkru  pku.PKRU
	read  bool // pkru+prot permit reads of this page
	write bool // pkru+prot permit writes to this page
}

// Memory is the simulated address space. The zero value is not usable;
// call New. Memory is not safe for concurrent use: the simulation is
// single-core (matching the deterministic virtual clock).
type Memory struct {
	leaves []*leaf
	tlb    [tlbSize]tlbEntry
	clock  *vclock.Clock
	// cost caches the clock's cost model (immutable after vclock.New) so
	// the access paths never re-copy the full CostModel struct.
	cost vclock.CostModel
	// next is the bump pointer for fresh mappings, in pages. Start well
	// above zero so that address 0 is never valid (null dereferences
	// fault as unmapped). Page numbers are never reused.
	next       uint64
	mapped     int
	dirtyPages int
	// trackMod enables the modified-since-snapshot bitmaps (snapshot.go).
	// Off by default so the memory-only hot path is unchanged.
	trackMod bool

	stats Stats
}

// Stats counts memory traffic, for diagnostics and for proving
// zero-copy properties (heap adoption must not move bytes).
type Stats struct {
	// Loads and Stores count access operations.
	Loads, Stores uint64
	// BytesRead and BytesWritten count payload bytes moved.
	BytesRead, BytesWritten uint64
	// Faults counts failed accesses.
	Faults uint64
	// TLBHits and TLBMisses count software-TLB outcomes on the access
	// path (host-side instrumentation; no virtual cost).
	TLBHits, TLBMisses uint64
}

// Stats returns a snapshot of the traffic counters.
func (m *Memory) Stats() Stats { return m.stats }

// New returns an empty address space. The clock may be nil, in which case
// no cycle costs are charged.
func New(clock *vclock.Clock) *Memory {
	m := &Memory{
		clock: clock,
		next:  0x10, // first mapping at 0x10000
	}
	if clock != nil {
		m.cost = clock.Model()
	}
	return m
}

// Clock returns the attached virtual clock (may be nil).
func (m *Memory) Clock() *vclock.Clock { return m.clock }

func (m *Memory) charge(n uint64) {
	if m.clock != nil {
		m.clock.Advance(n)
	}
}

// lookup walks the radix table, returning the page and its leaf (nil,
// nil when unmapped).
func (m *Memory) lookup(pn uint64) (*page, *leaf) {
	li := pn >> leafBits
	if li >= uint64(len(m.leaves)) {
		return nil, nil
	}
	lf := m.leaves[li]
	if lf == nil {
		return nil, nil
	}
	return lf.pages[pn&leafMask], lf
}

// leafAt returns the leaf for pn, growing the table as needed.
func (m *Memory) leafAt(pn uint64) *leaf {
	li := pn >> leafBits
	for uint64(len(m.leaves)) <= li {
		m.leaves = append(m.leaves, nil)
	}
	if m.leaves[li] == nil {
		m.leaves[li] = new(leaf)
	}
	return m.leaves[li]
}

// flushTLB invalidates every cached translation. Called by the mapping
// operations (Unmap/Protect/TagKey) — the simulated counterparts of the
// kernel paths that perform TLB shootdowns. PKRU writes need no flush:
// the register value tags each entry.
func (m *Memory) flushTLB() {
	for i := range m.tlb {
		m.tlb[i].pg = nil
	}
}

// markDirty records that page pn (held by lf) may now hold nonzero
// bytes, and — when modified-page tracking is on — that it changed
// since the last snapshot baseline. The snap bit must be set even when
// the dirty bit already was: a page written before a snapshot and again
// after it is dirty throughout, but only the second write makes it part
// of the next incremental capture.
func (m *Memory) markDirty(lf *leaf, pn uint64) {
	idx := pn & leafMask
	bit := uint64(1) << (idx & 63)
	w := &lf.dirty[idx>>6]
	if *w&bit == 0 {
		*w |= bit
		m.dirtyPages++
	}
	if m.trackMod {
		lf.snap[idx>>6] |= bit
	}
}

// DirtyPages returns the number of mapped pages currently marked dirty
// (written since they were last known all-zero).
func (m *Memory) DirtyPages() int { return m.dirtyPages }

// Map allocates npages fresh pages with the given protections and key tag
// and returns the base address of the new region.
func (m *Memory) Map(npages int, prot Prot, key pku.Key) (Addr, error) {
	if npages <= 0 {
		return 0, fmt.Errorf("%w: %d pages", ErrBadRange, npages)
	}
	if !key.Valid() {
		return 0, fmt.Errorf("mem: %w: %v", pku.ErrKeyNotAllocated, key)
	}
	base := m.next
	for i := 0; i < npages; i++ {
		pn := base + uint64(i)
		lf := m.leafAt(pn)
		lf.pages[pn&leafMask] = &page{
			data: make([]byte, PageSize),
			prot: prot,
			key:  key,
		}
		lf.mapped++
	}
	m.mapped += npages
	m.next = base + uint64(npages)
	m.charge(m.cost.PageMap * uint64(npages))
	return Addr(base << PageShift), nil
}

// Unmap removes npages pages starting at base. Base must be page-aligned
// and all pages must be mapped.
func (m *Memory) Unmap(base Addr, npages int) error {
	if err := m.checkRange(base, npages); err != nil {
		return err
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		p := pn + uint64(i)
		li := p >> leafBits
		lf := m.leaves[li]
		idx := p & leafMask
		lf.pages[idx] = nil
		bit := uint64(1) << (idx & 63)
		w := &lf.dirty[idx>>6]
		if *w&bit != 0 {
			*w &^= bit
			m.dirtyPages--
		}
		lf.snap[idx>>6] &^= bit
		lf.mapped--
		if lf.mapped == 0 {
			m.leaves[li] = nil
		}
	}
	m.mapped -= npages
	m.flushTLB()
	m.charge(m.cost.PageUnmap * uint64(npages))
	return nil
}

// Protect changes the page protections of npages pages starting at base,
// like mprotect(2). The pkey_mprotect cost is charged per page: the
// syscall updates every PTE in the range (and shoots down its TLB
// entries), so an n-page range costs n times the single-page operation.
func (m *Memory) Protect(base Addr, npages int, prot Prot) error {
	if err := m.checkRange(base, npages); err != nil {
		return err
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		pg, _ := m.lookup(pn + uint64(i))
		pg.prot = prot
	}
	m.flushTLB()
	m.charge(m.cost.PkeyMprotect * uint64(npages))
	return nil
}

// TagKey assigns protection key to npages pages starting at base, like
// pkey_mprotect(2) without changing protections. Charged per page, like
// Protect.
func (m *Memory) TagKey(base Addr, npages int, key pku.Key) error {
	if !key.Valid() {
		return fmt.Errorf("mem: %w: %v", pku.ErrKeyNotAllocated, key)
	}
	if err := m.checkRange(base, npages); err != nil {
		return err
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		pg, _ := m.lookup(pn + uint64(i))
		pg.key = key
	}
	m.flushTLB()
	m.charge(m.cost.PkeyMprotect * uint64(npages))
	return nil
}

// Zero clears the contents of npages pages starting at base without any
// permission checks (kernel-side operation used by domain discard).
//
// The virtual cost is PageZero per page over the whole range — the
// simulated machine scrubs every page — but the host only memsets pages
// whose dirty bit is set: a page that was never written since its last
// Zero (or since Map) is already all-zero, so skipping it is
// unobservable. This is what makes discard O(pages touched) instead of
// O(pages mapped) on the host.
func (m *Memory) Zero(base Addr, npages int) error {
	if err := m.checkRange(base, npages); err != nil {
		return err
	}
	pn := base.PageNumber()
	for i := 0; i < npages; {
		p := pn + uint64(i)
		lf := m.leaves[p>>leafBits]
		idx := p & leafMask
		// Skip a whole clean bitmap word when the range covers it.
		if idx&63 == 0 && npages-i >= 64 && lf.dirty[idx>>6] == 0 {
			i += 64
			continue
		}
		w := &lf.dirty[idx>>6]
		if bit := uint64(1) << (idx & 63); *w&bit != 0 {
			clear(lf.pages[idx].data)
			*w &^= bit
			m.dirtyPages--
			if m.trackMod {
				// The scrub changed the page relative to the snapshot
				// baseline (it held nonzero bytes a moment ago), so the
				// next incremental capture must re-serialize it. Pages
				// the fast path above skips are already all-zero and are
				// not modified by Zero.
				lf.snap[idx>>6] |= bit
			}
		}
		i++
	}
	m.charge(m.cost.PageZero * uint64(npages))
	return nil
}

// KeyOf returns the protection key tag of the page containing addr.
func (m *Memory) KeyOf(addr Addr) (pku.Key, error) {
	pg, _ := m.lookup(addr.PageNumber())
	if pg == nil {
		return 0, &Fault{Kind: FaultUnmapped, Addr: addr}
	}
	return pg.key, nil
}

// ProtOf returns the protections of the page containing addr.
func (m *Memory) ProtOf(addr Addr) (Prot, error) {
	pg, _ := m.lookup(addr.PageNumber())
	if pg == nil {
		return 0, &Fault{Kind: FaultUnmapped, Addr: addr}
	}
	return pg.prot, nil
}

// Mapped reports whether the page containing addr is mapped.
func (m *Memory) Mapped(addr Addr) bool {
	pg, _ := m.lookup(addr.PageNumber())
	return pg != nil
}

// MappedPages returns the number of currently mapped pages.
func (m *Memory) MappedPages() int { return m.mapped }

func (m *Memory) checkRange(base Addr, npages int) error {
	if npages <= 0 || base.Offset() != 0 {
		return fmt.Errorf("%w: base=%#x npages=%d", ErrBadRange, uint64(base), npages)
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		if pg, _ := m.lookup(pn + uint64(i)); pg == nil {
			return fmt.Errorf("%w: page %#x not mapped", ErrBadRange, (pn+uint64(i))<<PageShift)
		}
	}
	return nil
}

// access validates a single-page access and returns the page. The TLB
// fast path serves repeat accesses to the same (page, PKRU) pair without
// re-walking the table or re-evaluating protections; misses and faults
// take accessSlow.
func (m *Memory) access(pkru pku.PKRU, addr Addr, write bool) (*page, error) {
	pn := addr.PageNumber()
	e := &m.tlb[pn&tlbMask]
	if e.pg != nil && e.pn == pn && e.pkru == pkru {
		if write {
			if e.write {
				m.stats.TLBHits++
				m.markDirty(e.lf, pn)
				return e.pg, nil
			}
		} else if e.read {
			m.stats.TLBHits++
			return e.pg, nil
		}
	}
	return m.accessSlow(pkru, addr, write)
}

func (m *Memory) accessSlow(pkru pku.PKRU, addr Addr, write bool) (*page, error) {
	m.stats.TLBMisses++
	pn := addr.PageNumber()
	pg, lf := m.lookup(pn)
	if pg == nil {
		m.stats.Faults++
		return nil, &Fault{Kind: FaultUnmapped, Addr: addr, Write: write}
	}
	need := ProtRead
	if write {
		need = ProtWrite
	}
	if pg.prot&need == 0 {
		m.stats.Faults++
		return nil, &Fault{Kind: FaultProt, Addr: addr, Write: write, Key: pg.key}
	}
	// PKU check: reads need CanRead, writes need CanWrite.
	if write {
		if !pkru.CanWrite(pg.key) {
			m.stats.Faults++
			return nil, &Fault{Kind: FaultPkey, Addr: addr, Write: true, Key: pg.key}
		}
	} else if !pkru.CanRead(pg.key) {
		m.stats.Faults++
		return nil, &Fault{Kind: FaultPkey, Addr: addr, Write: false, Key: pg.key}
	}
	// Successful walk: cache the full outcome for this (page, PKRU).
	m.tlb[pn&tlbMask] = tlbEntry{
		pg:    pg,
		lf:    lf,
		pn:    pn,
		pkru:  pkru,
		read:  pg.prot&ProtRead != 0 && pkru.CanRead(pg.key),
		write: pg.prot&ProtWrite != 0 && pkru.CanWrite(pg.key),
	}
	if write {
		m.markDirty(lf, pn)
	}
	return pg, nil
}

// LoadBytes copies len(dst) bytes starting at addr into dst, checking
// permissions page by page. On fault, dst contents are unspecified.
// Cycles are charged before the permission check (charge-before-fault):
// the access consumes its cost whether or not it faults.
func (m *Memory) LoadBytes(pkru pku.PKRU, addr Addr, dst []byte) error {
	m.charge(m.cost.MemLoad + m.cost.MemPerByte*uint64(len(dst)))
	m.stats.Loads++
	m.stats.BytesRead += uint64(len(dst))
	for len(dst) > 0 {
		pg, err := m.access(pkru, addr, false)
		if err != nil {
			return err
		}
		off := addr.Offset()
		n := copy(dst, pg.data[off:])
		dst = dst[n:]
		addr += Addr(n)
	}
	return nil
}

// StoreBytes copies src into memory starting at addr, checking
// permissions page by page. A fault midway leaves earlier pages written
// (matching hardware semantics of a multi-page copy). Cycles are charged
// before the permission check, like LoadBytes.
func (m *Memory) StoreBytes(pkru pku.PKRU, addr Addr, src []byte) error {
	m.charge(m.cost.MemStore + m.cost.MemPerByte*uint64(len(src)))
	m.stats.Stores++
	m.stats.BytesWritten += uint64(len(src))
	for len(src) > 0 {
		pg, err := m.access(pkru, addr, true)
		if err != nil {
			return err
		}
		off := addr.Offset()
		n := copy(pg.data[off:], src)
		src = src[n:]
		addr += Addr(n)
	}
	return nil
}

// Load8 loads one byte. Charge-before-fault, like LoadBytes.
func (m *Memory) Load8(pkru pku.PKRU, addr Addr) (byte, error) {
	m.charge(m.cost.MemLoad)
	m.stats.Loads++
	m.stats.BytesRead++
	pg, err := m.access(pkru, addr, false)
	if err != nil {
		return 0, err
	}
	return pg.data[addr.Offset()], nil
}

// Store8 stores one byte. Charge-before-fault, like StoreBytes.
func (m *Memory) Store8(pkru pku.PKRU, addr Addr, v byte) error {
	m.charge(m.cost.MemStore)
	m.stats.Stores++
	m.stats.BytesWritten++
	pg, err := m.access(pkru, addr, true)
	if err != nil {
		return err
	}
	pg.data[addr.Offset()] = v
	return nil
}

// Load32 loads a little-endian uint32 (may span pages).
func (m *Memory) Load32(pkru pku.PKRU, addr Addr) (uint32, error) {
	var buf [4]byte
	if err := m.LoadBytes(pkru, addr, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// Store32 stores a little-endian uint32 (may span pages).
func (m *Memory) Store32(pkru pku.PKRU, addr Addr, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return m.StoreBytes(pkru, addr, buf[:])
}

// Load64 loads a little-endian uint64 (may span pages).
func (m *Memory) Load64(pkru pku.PKRU, addr Addr) (uint64, error) {
	var buf [8]byte
	if err := m.LoadBytes(pkru, addr, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Store64 stores a little-endian uint64 (may span pages).
func (m *Memory) Store64(pkru pku.PKRU, addr Addr, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return m.StoreBytes(pkru, addr, buf[:])
}

// PeekBytes copies bytes out of mapped memory without permission checks
// or cycle charges — kernel-side metadata access, in the same class as
// KeyOf/ProtOf. The allocator uses it to walk its in-band chunk headers
// at the same (zero) virtual cost its former host-side side tables had,
// keeping cycle accounting identical to the seed.
//
//lint:uncharged
func (m *Memory) PeekBytes(addr Addr, dst []byte) error {
	for len(dst) > 0 {
		pg, _ := m.lookup(addr.PageNumber())
		if pg == nil {
			return &Fault{Kind: FaultUnmapped, Addr: addr}
		}
		n := copy(dst, pg.data[addr.Offset():])
		dst = dst[n:]
		addr += Addr(n)
	}
	return nil
}

// Peek64 reads a little-endian uint64 without permission checks or cycle
// charges (see PeekBytes).
//
//lint:uncharged
func (m *Memory) Peek64(addr Addr) (uint64, error) {
	var buf [8]byte
	if err := m.PeekBytes(addr, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Poke64 writes a little-endian uint64 without permission checks or
// cycle charges — the store-side counterpart of Peek64, for allocator
// metadata maintenance. The touched page is marked dirty so a later Zero
// still scrubs it.
//
//lint:uncharged
func (m *Memory) Poke64(addr Addr, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	src := buf[:]
	for len(src) > 0 {
		pn := addr.PageNumber()
		pg, lf := m.lookup(pn)
		if pg == nil {
			return &Fault{Kind: FaultUnmapped, Addr: addr, Write: true}
		}
		n := copy(pg.data[addr.Offset():], src)
		m.markDirty(lf, pn)
		src = src[n:]
		addr += Addr(n)
	}
	return nil
}
