// Package mem implements the paged virtual memory of the simulated
// machine underneath the SDRaD reproduction.
//
// Memory is organized as 4 KiB pages. Each mapped page carries normal
// page protections (read/write) and a PKU protection-key tag. Every load
// and store is checked against both the page protections and the caller's
// PKRU register value, exactly as the hardware page walk + PKU check
// would do; violations surface as *Fault errors carrying the same
// information a SIGSEGV siginfo would (faulting address, access type,
// protection key). SDRaD's isolation guarantee — a memory defect inside a
// domain can only touch that domain's pages — is enforced here.
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pku"
	"repro/internal/vclock"
)

// PageSize is the size of one page in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Addr is a virtual address in the simulated address space.
type Addr uint64

// PageBase returns the address rounded down to its page boundary.
func (a Addr) PageBase() Addr { return a &^ (PageSize - 1) }

// PageNumber returns the virtual page number containing a.
func (a Addr) PageNumber() uint64 { return uint64(a) >> PageShift }

// Offset returns the offset of a within its page.
func (a Addr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// Prot is a page protection bit set.
type Prot uint8

// Page protections.
const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
	ProtRW         = ProtRead | ProtWrite
)

// String implements fmt.Stringer.
func (p Prot) String() string {
	r, w := byte('-'), byte('-')
	if p&ProtRead != 0 {
		r = 'r'
	}
	if p&ProtWrite != 0 {
		w = 'w'
	}
	return string([]byte{r, w})
}

// FaultKind classifies a memory fault.
type FaultKind uint8

// Fault kinds, mirroring the information in siginfo_t for SIGSEGV.
const (
	// FaultUnmapped: access to an address with no mapping (SEGV_MAPERR).
	FaultUnmapped FaultKind = iota + 1
	// FaultProt: access violating page protections (SEGV_ACCERR).
	FaultProt
	// FaultPkey: access denied by the PKRU register (SEGV_PKUERR). This
	// is the fault SDRaD interprets as a domain violation.
	FaultPkey
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "SEGV_MAPERR"
	case FaultProt:
		return "SEGV_ACCERR"
	case FaultPkey:
		return "SEGV_PKUERR"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Fault is a memory access fault. It implements error.
type Fault struct {
	Kind  FaultKind
	Addr  Addr
	Write bool
	// Key is the protection key of the faulting page (valid for
	// FaultProt/FaultPkey).
	Key pku.Key
}

// Error implements error.
func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("mem: %s fault (%s) at %#x key=%v", op, f.Kind, uint64(f.Addr), f.Key)
}

// IsFault reports whether err is (or wraps) a *Fault, returning it.
func IsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// ErrBadRange is returned for invalid map/unmap/protect ranges.
var ErrBadRange = errors.New("mem: invalid page range")

// ErrDoubleMap is returned when mapping over an existing mapping.
var ErrDoubleMap = errors.New("mem: page already mapped")

type page struct {
	data []byte
	prot Prot
	key  pku.Key
}

// Memory is the simulated address space. The zero value is not usable;
// call New. Memory is not safe for concurrent use: the simulation is
// single-core (matching the deterministic virtual clock).
type Memory struct {
	pages map[uint64]*page
	clock *vclock.Clock
	// next is the bump pointer for fresh mappings, in pages. Start well
	// above zero so that address 0 is never valid (null dereferences
	// fault as unmapped).
	next uint64

	stats Stats
}

// Stats counts memory traffic, for diagnostics and for proving
// zero-copy properties (heap adoption must not move bytes).
type Stats struct {
	// Loads and Stores count access operations.
	Loads, Stores uint64
	// BytesRead and BytesWritten count payload bytes moved.
	BytesRead, BytesWritten uint64
	// Faults counts failed accesses.
	Faults uint64
}

// Stats returns a snapshot of the traffic counters.
func (m *Memory) Stats() Stats { return m.stats }

// New returns an empty address space. The clock may be nil, in which case
// no cycle costs are charged.
func New(clock *vclock.Clock) *Memory {
	return &Memory{
		pages: make(map[uint64]*page),
		clock: clock,
		next:  0x10, // first mapping at 0x10000
	}
}

// Clock returns the attached virtual clock (may be nil).
func (m *Memory) Clock() *vclock.Clock { return m.clock }

func (m *Memory) charge(n uint64) {
	if m.clock != nil {
		m.clock.Advance(n)
	}
}

func (m *Memory) model() vclock.CostModel {
	if m.clock != nil {
		return m.clock.Model()
	}
	return vclock.CostModel{}
}

// Map allocates npages fresh pages with the given protections and key tag
// and returns the base address of the new region.
func (m *Memory) Map(npages int, prot Prot, key pku.Key) (Addr, error) {
	if npages <= 0 {
		return 0, fmt.Errorf("%w: %d pages", ErrBadRange, npages)
	}
	if !key.Valid() {
		return 0, fmt.Errorf("mem: %w: %v", pku.ErrKeyNotAllocated, key)
	}
	base := m.next
	for i := 0; i < npages; i++ {
		m.pages[base+uint64(i)] = &page{
			data: make([]byte, PageSize),
			prot: prot,
			key:  key,
		}
	}
	m.next = base + uint64(npages)
	m.charge(m.model().PageMap * uint64(npages))
	return Addr(base << PageShift), nil
}

// Unmap removes npages pages starting at base. Base must be page-aligned
// and all pages must be mapped.
func (m *Memory) Unmap(base Addr, npages int) error {
	if err := m.checkRange(base, npages); err != nil {
		return err
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		delete(m.pages, pn+uint64(i))
	}
	m.charge(m.model().PageUnmap * uint64(npages))
	return nil
}

// Protect changes the page protections of npages pages starting at base,
// like mprotect(2).
func (m *Memory) Protect(base Addr, npages int, prot Prot) error {
	if err := m.checkRange(base, npages); err != nil {
		return err
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		m.pages[pn+uint64(i)].prot = prot
	}
	m.charge(m.model().PkeyMprotect)
	return nil
}

// TagKey assigns protection key to npages pages starting at base, like
// pkey_mprotect(2) without changing protections.
func (m *Memory) TagKey(base Addr, npages int, key pku.Key) error {
	if !key.Valid() {
		return fmt.Errorf("mem: %w: %v", pku.ErrKeyNotAllocated, key)
	}
	if err := m.checkRange(base, npages); err != nil {
		return err
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		m.pages[pn+uint64(i)].key = key
	}
	m.charge(m.model().PkeyMprotect)
	return nil
}

// Zero clears the contents of npages pages starting at base without any
// permission checks (kernel-side operation used by domain discard).
func (m *Memory) Zero(base Addr, npages int) error {
	if err := m.checkRange(base, npages); err != nil {
		return err
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		clear(m.pages[pn+uint64(i)].data)
	}
	m.charge(m.model().PageZero * uint64(npages))
	return nil
}

// KeyOf returns the protection key tag of the page containing addr.
func (m *Memory) KeyOf(addr Addr) (pku.Key, error) {
	pg, ok := m.pages[addr.PageNumber()]
	if !ok {
		return 0, &Fault{Kind: FaultUnmapped, Addr: addr}
	}
	return pg.key, nil
}

// ProtOf returns the protections of the page containing addr.
func (m *Memory) ProtOf(addr Addr) (Prot, error) {
	pg, ok := m.pages[addr.PageNumber()]
	if !ok {
		return 0, &Fault{Kind: FaultUnmapped, Addr: addr}
	}
	return pg.prot, nil
}

// Mapped reports whether the page containing addr is mapped.
func (m *Memory) Mapped(addr Addr) bool {
	_, ok := m.pages[addr.PageNumber()]
	return ok
}

// MappedPages returns the number of currently mapped pages.
func (m *Memory) MappedPages() int { return len(m.pages) }

func (m *Memory) checkRange(base Addr, npages int) error {
	if npages <= 0 || base.Offset() != 0 {
		return fmt.Errorf("%w: base=%#x npages=%d", ErrBadRange, uint64(base), npages)
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		if _, ok := m.pages[pn+uint64(i)]; !ok {
			return fmt.Errorf("%w: page %#x not mapped", ErrBadRange, (pn+uint64(i))<<PageShift)
		}
	}
	return nil
}

// access validates a single-page access and returns the page.
func (m *Memory) access(pkru pku.PKRU, addr Addr, write bool) (*page, error) {
	pg, ok := m.pages[addr.PageNumber()]
	if !ok {
		m.stats.Faults++
		return nil, &Fault{Kind: FaultUnmapped, Addr: addr, Write: write}
	}
	need := ProtRead
	if write {
		need = ProtWrite
	}
	if pg.prot&need == 0 {
		m.stats.Faults++
		return nil, &Fault{Kind: FaultProt, Addr: addr, Write: write, Key: pg.key}
	}
	// PKU check: reads need CanRead, writes need CanWrite.
	if write {
		if !pkru.CanWrite(pg.key) {
			m.stats.Faults++
			return nil, &Fault{Kind: FaultPkey, Addr: addr, Write: true, Key: pg.key}
		}
	} else if !pkru.CanRead(pg.key) {
		m.stats.Faults++
		return nil, &Fault{Kind: FaultPkey, Addr: addr, Write: false, Key: pg.key}
	}
	return pg, nil
}

// LoadBytes copies len(dst) bytes starting at addr into dst, checking
// permissions page by page. On fault, dst contents are unspecified.
func (m *Memory) LoadBytes(pkru pku.PKRU, addr Addr, dst []byte) error {
	mdl := m.model()
	m.charge(mdl.MemLoad + mdl.MemPerByte*uint64(len(dst)))
	m.stats.Loads++
	m.stats.BytesRead += uint64(len(dst))
	for len(dst) > 0 {
		pg, err := m.access(pkru, addr, false)
		if err != nil {
			return err
		}
		off := addr.Offset()
		n := copy(dst, pg.data[off:])
		dst = dst[n:]
		addr += Addr(n)
	}
	return nil
}

// StoreBytes copies src into memory starting at addr, checking
// permissions page by page. A fault midway leaves earlier pages written
// (matching hardware semantics of a multi-page copy).
func (m *Memory) StoreBytes(pkru pku.PKRU, addr Addr, src []byte) error {
	mdl := m.model()
	m.charge(mdl.MemStore + mdl.MemPerByte*uint64(len(src)))
	m.stats.Stores++
	m.stats.BytesWritten += uint64(len(src))
	for len(src) > 0 {
		pg, err := m.access(pkru, addr, true)
		if err != nil {
			return err
		}
		off := addr.Offset()
		n := copy(pg.data[off:], src)
		src = src[n:]
		addr += Addr(n)
	}
	return nil
}

// Load8 loads one byte.
func (m *Memory) Load8(pkru pku.PKRU, addr Addr) (byte, error) {
	pg, err := m.access(pkru, addr, false)
	if err != nil {
		return 0, err
	}
	m.charge(m.model().MemLoad)
	m.stats.Loads++
	m.stats.BytesRead++
	return pg.data[addr.Offset()], nil
}

// Store8 stores one byte.
func (m *Memory) Store8(pkru pku.PKRU, addr Addr, v byte) error {
	pg, err := m.access(pkru, addr, true)
	if err != nil {
		return err
	}
	m.charge(m.model().MemStore)
	m.stats.Stores++
	m.stats.BytesWritten++
	pg.data[addr.Offset()] = v
	return nil
}

// Load32 loads a little-endian uint32 (may span pages).
func (m *Memory) Load32(pkru pku.PKRU, addr Addr) (uint32, error) {
	var buf [4]byte
	if err := m.LoadBytes(pkru, addr, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// Store32 stores a little-endian uint32 (may span pages).
func (m *Memory) Store32(pkru pku.PKRU, addr Addr, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return m.StoreBytes(pkru, addr, buf[:])
}

// Load64 loads a little-endian uint64 (may span pages).
func (m *Memory) Load64(pkru pku.PKRU, addr Addr) (uint64, error) {
	var buf [8]byte
	if err := m.LoadBytes(pkru, addr, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Store64 stores a little-endian uint64 (may span pages).
func (m *Memory) Store64(pkru pku.PKRU, addr Addr, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return m.StoreBytes(pkru, addr, buf[:])
}
