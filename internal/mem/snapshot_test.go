package mem

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/pku"
)

func TestModifiedPagesTracksStores(t *testing.T) {
	m := newMem(t)
	m.TrackModified(true)
	base, err := m.Map(4, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	pkru := pku.PKRUAllowAll
	if err := m.Store8(pkru, base+PageSize, 0xaa); err != nil {
		t.Fatalf("Store8: %v", err)
	}
	if err := m.Store8(pkru, base+3*PageSize+17, 0xbb); err != nil {
		t.Fatalf("Store8: %v", err)
	}
	pns, err := m.ModifiedPages(base, 4)
	if err != nil {
		t.Fatalf("ModifiedPages: %v", err)
	}
	want := []uint64{uint64(base+PageSize) >> PageShift, uint64(base+3*PageSize) >> PageShift}
	if len(pns) != 2 || pns[0] != want[0] || pns[1] != want[1] {
		t.Fatalf("ModifiedPages = %#x, want %#x", pns, want)
	}

	// The baseline reset clears the set; a new store repopulates it.
	if err := m.ClearModified(base, 4); err != nil {
		t.Fatalf("ClearModified: %v", err)
	}
	pns, err = m.ModifiedPages(base, 4)
	if err != nil {
		t.Fatalf("ModifiedPages: %v", err)
	}
	if len(pns) != 0 {
		t.Fatalf("after clear, ModifiedPages = %#x", pns)
	}
	if err := m.Store8(pkru, base, 1); err != nil {
		t.Fatalf("Store8: %v", err)
	}
	pns, err = m.ModifiedPages(base, 4)
	if err != nil {
		t.Fatalf("ModifiedPages: %v", err)
	}
	if len(pns) != 1 || pns[0] != uint64(base)>>PageShift {
		t.Fatalf("after re-store, ModifiedPages = %#x", pns)
	}
}

func TestModifiedSurvivesZeroScrub(t *testing.T) {
	// Zero clears the dirty bitmap (the page holds no data) but a scrub
	// IS a modification for snapshot purposes: a restored image must
	// reproduce the zeroes, or stale bytes from an older snapshot leak.
	m := newMem(t)
	m.TrackModified(true)
	base, err := m.Map(1, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := m.Store8(pku.PKRUAllowAll, base, 0xcc); err != nil {
		t.Fatalf("Store8: %v", err)
	}
	if err := m.ClearModified(base, 1); err != nil {
		t.Fatalf("ClearModified: %v", err)
	}
	if err := m.Zero(base, 1); err != nil {
		t.Fatalf("Zero: %v", err)
	}
	pns, err := m.ModifiedPages(base, 1)
	if err != nil {
		t.Fatalf("ModifiedPages: %v", err)
	}
	if len(pns) != 1 {
		t.Fatalf("scrubbed page not in modified set: %#x", pns)
	}
	nz, err := m.NonZeroPages(base, 1)
	if err != nil {
		t.Fatalf("NonZeroPages: %v", err)
	}
	if len(nz) != 0 {
		t.Fatalf("zeroed page still in nonzero set: %#x", nz)
	}
}

func TestTrackingOffCostsNothing(t *testing.T) {
	m := newMem(t)
	base, err := m.Map(1, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := m.Store8(pku.PKRUAllowAll, base, 1); err != nil {
		t.Fatalf("Store8: %v", err)
	}
	pns, err := m.ModifiedPages(base, 1)
	if err != nil {
		t.Fatalf("ModifiedPages: %v", err)
	}
	if len(pns) != 0 {
		t.Fatalf("modified set populated with tracking off: %#x", pns)
	}
	if m.TrackingModified() {
		t.Fatal("TrackingModified true by default")
	}
}

func TestMapAtRestoresOriginalAddresses(t *testing.T) {
	m := newMem(t)
	a, err := m.Map(2, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	m.Unmap(a, 2)

	// Remap at the original address, as a restore does.
	if err := m.MapAt(a, 2, ProtRW, pku.DefaultKey); err != nil {
		t.Fatalf("MapAt: %v", err)
	}
	if !m.Mapped(a) || !m.Mapped(a+PageSize) {
		t.Fatal("MapAt pages not mapped")
	}
	// Double-map rejected.
	if err := m.MapAt(a, 1, ProtRW, pku.DefaultKey); !errors.Is(err, ErrDoubleMap) {
		t.Fatalf("double MapAt = %v, want ErrDoubleMap", err)
	}
	// Unaligned rejected.
	if err := m.MapAt(a+1, 1, ProtRW, pku.DefaultKey); !errors.Is(err, ErrBadRange) {
		t.Fatalf("unaligned MapAt = %v, want ErrBadRange", err)
	}
	// Fresh Map never collides with the restored range.
	b, err := m.Map(1, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if b < a+2*PageSize {
		t.Fatalf("Map handed out overlapping range: a=%#x b=%#x", uint64(a), uint64(b))
	}
}

func TestPokePeekBytesRoundTrip(t *testing.T) {
	m := newMem(t)
	m.TrackModified(true)
	base, err := m.Map(2, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	src := make([]byte, PageSize+100)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := m.PokeBytes(base+10, src); err != nil {
		t.Fatalf("PokeBytes: %v", err)
	}
	got := make([]byte, len(src))
	if err := m.PeekBytes(base+10, got); err != nil {
		t.Fatalf("PeekBytes: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("round-trip mismatch")
	}
	// Kernel-side writes still mark pages modified (restore relies on
	// the subsequent capture seeing them).
	pns, err := m.ModifiedPages(base, 2)
	if err != nil {
		t.Fatalf("ModifiedPages: %v", err)
	}
	if len(pns) != 2 {
		t.Fatalf("ModifiedPages = %#x, want both pages", pns)
	}
	// Unmapped target faults, never partially writes silently.
	if err := m.PokeBytes(base+2*PageSize-1, []byte{1, 2}); err == nil {
		t.Fatal("PokeBytes across unmapped boundary succeeded")
	}
}
