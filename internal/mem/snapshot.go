package mem

import (
	"fmt"

	"repro/internal/pku"
)

// This file is the page-table interface of the durability engine
// (internal/persist): opt-in tracking of pages modified since the last
// snapshot baseline, enumeration of page sets for full and incremental
// capture, a fixed-address mapping primitive so recovery can rebuild a
// grown heap at its original addresses, and a kernel-side page write for
// restoring captured contents. Everything here is host-side snapshot
// machinery — none of it runs on behalf of simulated code — so, like
// the dirty bitmap itself, it charges no virtual cycles except MapAt,
// which is an ordinary mapping operation.

// TrackModified enables (or disables) the modified-since-snapshot
// bitmaps. While on, every store — charged or kernel-side — marks its
// page in a second per-leaf bitmap that only ClearModified resets, so
// an incremental snapshot can serialize exactly the pages that changed
// since the previous one. Off (the default), the bitmaps are not
// maintained and the access hot path is unchanged.
func (m *Memory) TrackModified(on bool) { m.trackMod = on }

// TrackingModified reports whether modified-page tracking is on.
func (m *Memory) TrackingModified() bool { return m.trackMod }

// NonZeroPages returns, in ascending order, the page numbers in
// [base, base+npages) whose contents may be nonzero (the dirty bitmap).
// This is the page set of a full snapshot: every page it omits is
// all-zero, which is what a freshly restored mapping holds anyway.
func (m *Memory) NonZeroPages(base Addr, npages int) ([]uint64, error) {
	return m.pagesWithBit(base, npages, func(lf *leaf, word int, bit uint64) bool {
		return lf.dirty[word]&bit != 0
	})
}

// ModifiedPages returns, in ascending order, the page numbers in
// [base, base+npages) modified since the last ClearModified — the page
// set of an incremental snapshot. Meaningful only while TrackModified
// is on; with tracking off it returns pages modified before it was
// switched off (or nothing).
func (m *Memory) ModifiedPages(base Addr, npages int) ([]uint64, error) {
	return m.pagesWithBit(base, npages, func(lf *leaf, word int, bit uint64) bool {
		return lf.snap[word]&bit != 0
	})
}

func (m *Memory) pagesWithBit(base Addr, npages int, pick func(lf *leaf, word int, bit uint64) bool) ([]uint64, error) {
	if err := m.checkRange(base, npages); err != nil {
		return nil, err
	}
	var out []uint64
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		p := pn + uint64(i)
		lf := m.leaves[p>>leafBits]
		idx := p & leafMask
		if pick(lf, int(idx>>6), uint64(1)<<(idx&63)) {
			out = append(out, p)
		}
	}
	return out, nil
}

// ClearModified resets the modified-since-snapshot bits for
// [base, base+npages), establishing a new incremental baseline. Called
// after the pages returned by ModifiedPages (or NonZeroPages, for the
// first capture) have been serialized.
func (m *Memory) ClearModified(base Addr, npages int) error {
	if err := m.checkRange(base, npages); err != nil {
		return err
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		p := pn + uint64(i)
		lf := m.leaves[p>>leafBits]
		idx := p & leafMask
		lf.snap[idx>>6] &^= uint64(1) << (idx & 63)
	}
	return nil
}

// MapAt maps npages fresh zeroed pages at the fixed base address — the
// MAP_FIXED analog recovery uses to rebuild grown heap regions at the
// addresses the captured allocator metadata (sizes, canaries) was
// computed for. Base must be page-aligned and the whole range unmapped;
// mapping over an existing page is ErrDoubleMap. The bump pointer
// advances past the region so later Map calls never collide with it.
func (m *Memory) MapAt(base Addr, npages int, prot Prot, key pku.Key) error {
	if npages <= 0 || base.Offset() != 0 {
		return fmt.Errorf("%w: base=%#x npages=%d", ErrBadRange, uint64(base), npages)
	}
	if !key.Valid() {
		return fmt.Errorf("mem: %w: %v", pku.ErrKeyNotAllocated, key)
	}
	pn := base.PageNumber()
	for i := 0; i < npages; i++ {
		if pg, _ := m.lookup(pn + uint64(i)); pg != nil {
			return fmt.Errorf("%w: page %#x", ErrDoubleMap, (pn+uint64(i))<<PageShift)
		}
	}
	for i := 0; i < npages; i++ {
		p := pn + uint64(i)
		lf := m.leafAt(p)
		lf.pages[p&leafMask] = &page{
			data: make([]byte, PageSize),
			prot: prot,
			key:  key,
		}
		lf.mapped++
	}
	m.mapped += npages
	if end := pn + uint64(npages); end > m.next {
		m.next = end
	}
	m.charge(m.cost.PageMap * uint64(npages))
	return nil
}

// PokeBytes copies src into mapped memory without permission checks or
// cycle charges — the bulk counterpart of Poke64, used by snapshot
// restore to write captured page images back. Touched pages are marked
// dirty (and, under TrackModified, modified) so a later Zero still
// scrubs them and the next incremental capture sees them.
//
//lint:uncharged
func (m *Memory) PokeBytes(addr Addr, src []byte) error {
	for len(src) > 0 {
		pn := addr.PageNumber()
		pg, lf := m.lookup(pn)
		if pg == nil {
			return &Fault{Kind: FaultUnmapped, Addr: addr, Write: true}
		}
		n := copy(pg.data[addr.Offset():], src)
		m.markDirty(lf, pn)
		src = src[n:]
		addr += Addr(n)
	}
	return nil
}
