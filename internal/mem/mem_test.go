package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/pku"
	"repro/internal/vclock"
)

func newMem(t *testing.T) *Memory {
	t.Helper()
	return New(vclock.New(vclock.DefaultCostModel()))
}

func TestMapReturnsPageAlignedDistinctRegions(t *testing.T) {
	m := newMem(t)
	a, err := m.Map(2, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	b, err := m.Map(1, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if a.Offset() != 0 || b.Offset() != 0 {
		t.Error("mappings not page aligned")
	}
	if b < a+2*PageSize {
		t.Errorf("regions overlap: a=%#x b=%#x", uint64(a), uint64(b))
	}
	if got := m.MappedPages(); got != 3 {
		t.Errorf("MappedPages = %d, want 3", got)
	}
}

func TestMapRejectsBadArgs(t *testing.T) {
	m := newMem(t)
	if _, err := m.Map(0, ProtRW, pku.DefaultKey); !errors.Is(err, ErrBadRange) {
		t.Errorf("Map(0 pages) = %v, want ErrBadRange", err)
	}
	if _, err := m.Map(1, ProtRW, pku.Key(99)); err == nil {
		t.Error("Map with invalid key should fail")
	}
}

func TestAddressZeroNeverMapped(t *testing.T) {
	m := newMem(t)
	if m.Mapped(0) {
		t.Fatal("address 0 mapped")
	}
	_, err := m.Load8(pku.PKRUAllowAll, 0)
	f, ok := IsFault(err)
	if !ok || f.Kind != FaultUnmapped {
		t.Errorf("null deref err = %v, want FaultUnmapped", err)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	if err := m.Store64(pku.PKRUAllowAll, base+8, 0xdeadbeefcafe); err != nil {
		t.Fatalf("Store64: %v", err)
	}
	v, err := m.Load64(pku.PKRUAllowAll, base+8)
	if err != nil {
		t.Fatalf("Load64: %v", err)
	}
	if v != 0xdeadbeefcafe {
		t.Errorf("Load64 = %#x", v)
	}
	if err := m.Store32(pku.PKRUAllowAll, base, 0x1234); err != nil {
		t.Fatalf("Store32: %v", err)
	}
	v32, err := m.Load32(pku.PKRUAllowAll, base)
	if err != nil || v32 != 0x1234 {
		t.Errorf("Load32 = %#x, %v", v32, err)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(2, ProtRW, pku.DefaultKey)
	addr := base + PageSize - 3 // straddles the boundary
	if err := m.Store64(pku.PKRUAllowAll, addr, 0x1122334455667788); err != nil {
		t.Fatalf("cross-page Store64: %v", err)
	}
	v, err := m.Load64(pku.PKRUAllowAll, addr)
	if err != nil || v != 0x1122334455667788 {
		t.Errorf("cross-page Load64 = %#x, %v", v, err)
	}
}

func TestCrossPageFaultsAtUnmappedSecondPage(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	addr := base + PageSize - 3
	err := m.Store64(pku.PKRUAllowAll, addr, 1)
	f, ok := IsFault(err)
	if !ok || f.Kind != FaultUnmapped {
		t.Errorf("err = %v, want FaultUnmapped on second page", err)
	}
	if f != nil && f.Addr.PageNumber() != (base+PageSize).PageNumber() {
		t.Errorf("fault addr = %#x, want on second page", uint64(f.Addr))
	}
}

func TestProtNoneGuardPage(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtNone, pku.DefaultKey)
	_, err := m.Load8(pku.PKRUAllowAll, base)
	f, ok := IsFault(err)
	if !ok || f.Kind != FaultProt {
		t.Errorf("read of guard page = %v, want FaultProt", err)
	}
	err = m.Store8(pku.PKRUAllowAll, base, 1)
	if f, ok = IsFault(err); !ok || f.Kind != FaultProt || !f.Write {
		t.Errorf("write of guard page = %v, want write FaultProt", err)
	}
}

func TestReadOnlyPage(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRead, pku.DefaultKey)
	if _, err := m.Load8(pku.PKRUAllowAll, base); err != nil {
		t.Errorf("read of r-- page: %v", err)
	}
	err := m.Store8(pku.PKRUAllowAll, base, 1)
	if f, ok := IsFault(err); !ok || f.Kind != FaultProt {
		t.Errorf("write of r-- page = %v, want FaultProt", err)
	}
}

func TestPkeyViolationRead(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.Key(3))
	pkru := pku.PKRUAllowAll.WithAccessDisabled(3)
	_, err := m.Load8(pkru, base)
	f, ok := IsFault(err)
	if !ok || f.Kind != FaultPkey {
		t.Fatalf("err = %v, want FaultPkey", err)
	}
	if f.Key != 3 || f.Write {
		t.Errorf("fault = %+v, want key 3 read", f)
	}
}

func TestPkeyWriteDisable(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.Key(5))
	pkru := pku.PKRUAllowAll.WithWriteDisabled(5)
	if _, err := m.Load8(pkru, base); err != nil {
		t.Errorf("WD read should succeed: %v", err)
	}
	err := m.Store8(pkru, base, 7)
	if f, ok := IsFault(err); !ok || f.Kind != FaultPkey || !f.Write {
		t.Errorf("WD write = %v, want write FaultPkey", err)
	}
}

func TestTagKeyChangesEnforcement(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	if err := m.TagKey(base, 1, pku.Key(7)); err != nil {
		t.Fatalf("TagKey: %v", err)
	}
	k, err := m.KeyOf(base)
	if err != nil || k != 7 {
		t.Fatalf("KeyOf = %v, %v", k, err)
	}
	pkru := pku.OnlyKeys(pku.DefaultKey) // no access to key 7
	_, err = m.Load8(pkru, base)
	if f, ok := IsFault(err); !ok || f.Kind != FaultPkey {
		t.Errorf("err = %v, want FaultPkey after retag", err)
	}
}

func TestUnmapThenAccessFaults(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(2, ProtRW, pku.DefaultKey)
	if err := m.Unmap(base, 2); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if m.MappedPages() != 0 {
		t.Errorf("MappedPages = %d after unmap", m.MappedPages())
	}
	_, err := m.Load8(pku.PKRUAllowAll, base)
	if f, ok := IsFault(err); !ok || f.Kind != FaultUnmapped {
		t.Errorf("err = %v, want FaultUnmapped", err)
	}
}

func TestUnmapBadRange(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	if err := m.Unmap(base+1, 1); !errors.Is(err, ErrBadRange) {
		t.Errorf("unaligned Unmap = %v, want ErrBadRange", err)
	}
	if err := m.Unmap(base, 2); !errors.Is(err, ErrBadRange) {
		t.Errorf("oversized Unmap = %v, want ErrBadRange", err)
	}
	// Partially-unmapped ranges are rejected atomically: the mapped page
	// survives a failed Unmap.
	if !m.Mapped(base) {
		t.Error("failed Unmap removed pages")
	}
}

func TestZeroClearsContents(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	_ = m.StoreBytes(pku.PKRUAllowAll, base, []byte("secret data"))
	if err := m.Zero(base, 1); err != nil {
		t.Fatalf("Zero: %v", err)
	}
	buf := make([]byte, 16)
	_ = m.LoadBytes(pku.PKRUAllowAll, base, buf)
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Errorf("page not zeroed: %q", buf)
	}
}

func TestProtectTransitions(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	if err := m.Protect(base, 1, ProtRead); err != nil {
		t.Fatalf("Protect: %v", err)
	}
	p, err := m.ProtOf(base)
	if err != nil || p != ProtRead {
		t.Fatalf("ProtOf = %v, %v", p, err)
	}
	if err := m.Store8(pku.PKRUAllowAll, base, 1); err == nil {
		t.Error("write after Protect(read) should fault")
	}
	if err := m.Protect(base, 1, ProtRW); err != nil {
		t.Fatalf("Protect back: %v", err)
	}
	if err := m.Store8(pku.PKRUAllowAll, base, 1); err != nil {
		t.Errorf("write after re-enable: %v", err)
	}
}

func TestAccessesChargeCycles(t *testing.T) {
	clk := vclock.New(vclock.DefaultCostModel())
	m := New(clk)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	before := clk.Cycles()
	_ = m.Store64(pku.PKRUAllowAll, base, 1)
	if clk.Cycles() <= before {
		t.Error("Store64 charged no cycles")
	}
}

func TestNilClockIsAllowed(t *testing.T) {
	m := New(nil)
	base, err := m.Map(1, ProtRW, pku.DefaultKey)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := m.Store8(pku.PKRUAllowAll, base, 1); err != nil {
		t.Errorf("Store8: %v", err)
	}
	if m.Clock() != nil {
		t.Error("Clock() should be nil")
	}
}

func TestFaultErrorString(t *testing.T) {
	f := &Fault{Kind: FaultPkey, Addr: 0x1000, Write: true, Key: 3}
	s := f.Error()
	if s == "" {
		t.Fatal("empty fault string")
	}
	var err error = f
	got, ok := IsFault(err)
	if !ok || got != f {
		t.Error("IsFault failed to recover fault")
	}
	if _, ok := IsFault(errors.New("other")); ok {
		t.Error("IsFault matched a non-fault")
	}
}

// Property: bytes stored at any in-range offset/length read back equal.
func TestStoreLoadProperty(t *testing.T) {
	m := newMem(t)
	const npages = 4
	base, _ := m.Map(npages, ProtRW, pku.DefaultKey)
	f := func(off uint16, data []byte) bool {
		o := uint64(off) % (npages*PageSize - 1)
		if len(data) > int(npages*PageSize-o) {
			data = data[:npages*PageSize-o]
		}
		addr := base + Addr(o)
		if err := m.StoreBytes(pku.PKRUAllowAll, addr, data); err != nil {
			return false
		}
		back := make([]byte, len(data))
		if err := m.LoadBytes(pku.PKRUAllowAll, addr, back); err != nil {
			return false
		}
		return bytes.Equal(data, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a PKRU that only grants key A can never touch a page tagged
// with a different key B — the core isolation invariant of SDRaD.
func TestIsolationInvariantProperty(t *testing.T) {
	m := newMem(t)
	pages := map[pku.Key]Addr{}
	for k := pku.Key(1); k <= 4; k++ {
		a, err := m.Map(1, ProtRW, k)
		if err != nil {
			t.Fatal(err)
		}
		pages[k] = a
	}
	f := func(aRaw, bRaw uint8) bool {
		a := pku.Key(aRaw%4) + 1
		b := pku.Key(bRaw%4) + 1
		if a == b {
			return true
		}
		pkru := pku.OnlyKeys(pku.DefaultKey, a)
		_, rerr := m.Load8(pkru, pages[b])
		werr := m.Store8(pkru, pages[b], 0xff)
		fr, okr := IsFault(rerr)
		fw, okw := IsFault(werr)
		return okr && okw && fr.Kind == FaultPkey && fw.Kind == FaultPkey
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProtString(t *testing.T) {
	cases := map[Prot]string{ProtNone: "--", ProtRead: "r-", ProtWrite: "-w", ProtRW: "rw"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestFaultKindString(t *testing.T) {
	if FaultUnmapped.String() != "SEGV_MAPERR" || FaultPkey.String() != "SEGV_PKUERR" || FaultProt.String() != "SEGV_ACCERR" {
		t.Error("unexpected FaultKind strings")
	}
	if FaultKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestStatsCounters(t *testing.T) {
	m := newMem(t)
	base, _ := m.Map(1, ProtRW, pku.DefaultKey)
	before := m.Stats()
	_ = m.StoreBytes(pku.PKRUAllowAll, base, make([]byte, 100))
	buf := make([]byte, 50)
	_ = m.LoadBytes(pku.PKRUAllowAll, base, buf)
	_, _ = m.Load8(pku.PKRUAllowAll, base)
	_ = m.Store8(pku.PKRUAllowAll, base, 1)
	_, _ = m.Load8(pku.PKRUAllowAll, 0xdead0000) // fault

	st := m.Stats()
	// Accesses are counted before the permission check (matching the
	// charge-before-fault ordering), so the faulting Load8 counts as an
	// issued load of one byte.
	if st.Stores-before.Stores != 2 || st.Loads-before.Loads != 3 {
		t.Errorf("op counters: %+v", st)
	}
	if st.BytesWritten-before.BytesWritten != 101 || st.BytesRead-before.BytesRead != 52 {
		t.Errorf("byte counters: %+v", st)
	}
	if st.Faults-before.Faults != 1 {
		t.Errorf("fault counter: %+v", st)
	}
}
