package vclock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultCostModelSanity(t *testing.T) {
	m := DefaultCostModel()
	if m.CPUHz != DefaultCPUHz {
		t.Fatalf("CPUHz = %d, want %d", m.CPUHz, DefaultCPUHz)
	}
	// The ordering of costs is what the paper's argument depends on:
	// domain switch (2x WRPKRU) << syscall << context switch << fork/exec.
	if 2*m.WRPKRU >= m.Syscall {
		t.Errorf("2*WRPKRU (%d) should be well below Syscall (%d)", 2*m.WRPKRU, m.Syscall)
	}
	if m.Syscall >= m.ContextSwitch {
		t.Errorf("Syscall (%d) should be below ContextSwitch (%d)", m.Syscall, m.ContextSwitch)
	}
	if m.ContextSwitch >= m.ForkExec {
		t.Errorf("ContextSwitch (%d) should be far below ForkExec (%d)", m.ContextSwitch, m.ForkExec)
	}
}

func TestTenGBWarmupIsRoughlyTwoMinutes(t *testing.T) {
	// The paper reports ~2 min to restart memcached with a 10 GB database.
	m := DefaultCostModel()
	const tenGB = 10_000_000_000
	secs := float64(tenGB) / float64(m.WarmupBytesPerSec)
	if secs < 90 || secs > 150 {
		t.Errorf("10GB warm-up = %.1fs, want within [90s, 150s] (~2 min)", secs)
	}
}

func TestClockAdvance(t *testing.T) {
	c := New(DefaultCostModel())
	if c.Cycles() != 0 {
		t.Fatalf("new clock cycles = %d, want 0", c.Cycles())
	}
	c.Advance(3_000_000_000) // one second at 3 GHz
	if got := c.Now(); got != time.Second {
		t.Errorf("Now() = %v, want 1s", got)
	}
	start := c.Cycles()
	c.Advance(3_000) // 1 µs
	if got := c.Since(start); got != time.Microsecond {
		t.Errorf("Since = %v, want 1µs", got)
	}
}

func TestClockAdvanceTime(t *testing.T) {
	c := New(DefaultCostModel())
	c.AdvanceTime(2 * time.Millisecond)
	if got := c.Cycles(); got != 6_000_000 {
		t.Errorf("cycles = %d, want 6e6", got)
	}
	c.AdvanceTime(-time.Second) // negative durations are ignored
	if got := c.Cycles(); got != 6_000_000 {
		t.Errorf("cycles after negative advance = %d, want unchanged", got)
	}
}

func TestClockReset(t *testing.T) {
	c := New(DefaultCostModel())
	c.Advance(42)
	c.Reset()
	if c.Cycles() != 0 || c.Now() != 0 {
		t.Errorf("after Reset: cycles=%d now=%v, want zeros", c.Cycles(), c.Now())
	}
}

func TestSinceBeforeStart(t *testing.T) {
	c := New(DefaultCostModel())
	c.Advance(10)
	if got := c.Since(100); got != 0 {
		t.Errorf("Since(future) = %v, want 0", got)
	}
}

func TestZeroHzFallsBackToDefault(t *testing.T) {
	c := New(CostModel{})
	if c.Model().CPUHz != DefaultCPUHz {
		t.Errorf("zero CPUHz not defaulted: %d", c.Model().CPUHz)
	}
	if d := CyclesToDuration(DefaultCPUHz, 0); d != time.Second {
		t.Errorf("CyclesToDuration with hz=0 = %v, want 1s", d)
	}
	if n := DurationToCycles(time.Second, 0); n != DefaultCPUHz {
		t.Errorf("DurationToCycles with hz=0 = %d, want %d", n, DefaultCPUHz)
	}
}

func TestDurationCyclesRoundTrip(t *testing.T) {
	// Property: converting cycles->duration->cycles at the default
	// frequency is lossless for multiples of 3 cycles (1 ns granularity).
	f := func(n uint32) bool {
		cycles := uint64(n) * 3
		d := CyclesToDuration(cycles, DefaultCPUHz)
		return DurationToCycles(d, DefaultCPUHz) == cycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationToCyclesNegative(t *testing.T) {
	if n := DurationToCycles(-time.Second, DefaultCPUHz); n != 0 {
		t.Errorf("negative duration = %d cycles, want 0", n)
	}
}

func TestStringContainsCycleCount(t *testing.T) {
	c := New(DefaultCostModel())
	c.Advance(7)
	if s := c.String(); s == "" {
		t.Error("String() empty")
	}
}

func TestCyclesUntilDeadlineNeverZeroAndSaturates(t *testing.T) {
	// Expired deadline: minimal non-zero budget.
	if got := CyclesUntilDeadline(time.Now().Add(-time.Second), DefaultCPUHz); got != 1 {
		t.Errorf("expired deadline budget = %d, want 1", got)
	}
	// Near deadline: quantized up, never 0.
	if got := CyclesUntilDeadline(time.Now().Add(time.Millisecond), DefaultCPUHz); got == 0 || got < DurationToCycles(DeadlineQuantum, DefaultCPUHz) {
		t.Errorf("near deadline budget = %d, want >= one quantum", got)
	}
	// Far-future deadline: saturates instead of overflowing to 0 (which
	// would silently erase an explicit WithCycleBudget in the min-merge).
	far := time.Now().Add(100 * 365 * 24 * time.Hour)
	if got := CyclesUntilDeadline(far, DefaultCPUHz); got != math.MaxUint64 {
		t.Errorf("far-future deadline budget = %d, want MaxUint64", got)
	}
}
