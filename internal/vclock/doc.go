// Package vclock provides deterministic virtual time for the simulated
// machine that the SDRaD reproduction runs on.
//
// Every operation on the simulated substrate (memory access, PKRU write,
// syscall, context switch, ...) charges a cycle cost to a Clock. Reported
// latencies in the experiment harness are derived from virtual cycles, so
// runs are deterministic and independent of the host machine. The cost
// constants are collected in a CostModel and are calibrated against
// published measurements (see DefaultCostModel); all of them can be
// overridden to study sensitivity.
//
// # Invariants
//
//   - Virtual time only moves via explicit Advance calls with
//     CostModel-derived amounts; nothing in library code reads the wall
//     clock (enforced by the clock-guardrail test in the root package).
//   - CyclesUntilDeadline is the single sanctioned bridge from wall-clock
//     deadlines to virtual budgets: it quantizes the remaining time (100ms
//     buckets) so that context deadlines yield reproducible cycle budgets.
//   - Conversions are exact in cycles; durations round through CPUHz, so
//     oracles that need exactness compare cycles, not durations.
//
// See DESIGN.md §2 for why virtual time replaces wall time everywhere.
//
//lint:allow wallclock vclock owns the one sanctioned wall-clock read: converting context deadlines into virtual-cycle budgets
package vclock
