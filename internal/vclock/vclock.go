package vclock

import (
	"fmt"
	"math"
	"time"
)

// DefaultCPUHz is the simulated core frequency. 3 GHz keeps the
// cycles-to-nanoseconds conversion easy to reason about (3 cycles = 1 ns)
// and is close to the Xeon parts used in the SDRaD evaluation.
const DefaultCPUHz = 3_000_000_000

// CostModel holds the cycle costs of the primitive operations of the
// simulated machine. The defaults follow published microbenchmarks:
// WRPKRU latency from Park et al. (libmpk, ATC'19), context-switch and
// syscall costs from classic lmbench-style measurements.
type CostModel struct {
	// CPUHz is the simulated core frequency used to convert cycles to time.
	CPUHz uint64

	// MemLoad and MemStore are per-access costs for a hit in the simulated
	// cache hierarchy (we model a flat cost; the experiments compare
	// mechanisms, not cache behaviour).
	MemLoad  uint64
	MemStore uint64

	// MemPerByte is the additional per-byte cost of bulk copies
	// (memcpy-style transfers, serialization buffers).
	MemPerByte uint64

	// WRPKRU and RDPKRU are the costs of writing/reading the protection-key
	// rights register. Intel measures WRPKRU at ~23 cycles; reads are a few
	// cycles.
	WRPKRU uint64
	RDPKRU uint64

	// PkeyAlloc etc. are syscall-path costs for key management and page
	// tagging (pkey_alloc(2), pkey_free(2), pkey_mprotect(2)).
	PkeyAlloc    uint64
	PkeyFree     uint64
	PkeyMprotect uint64

	// PageMap and PageUnmap model mmap/munmap of a single page.
	PageMap   uint64
	PageUnmap uint64

	// PageZero is the cost of zeroing one 4 KiB page (used by discard).
	PageZero uint64

	// Syscall is the bare user-kernel-user round trip.
	Syscall uint64

	// ContextSwitch is a full process context switch (scheduler + TLB
	// effects), used by the process-isolation baseline.
	ContextSwitch uint64

	// SignalDeliver is the cost of delivering a signal to a user handler
	// (SDRaD's fault path enters via SIGSEGV).
	SignalDeliver uint64

	// SnapshotCtx and RestoreCtx model setjmp/longjmp-like register-file
	// save/restore.
	SnapshotCtx uint64
	RestoreCtx  uint64

	// ForkExec is the cost of fork+exec of a fresh process, excluding
	// application warm-up (used by the restart baselines).
	ForkExec uint64

	// ContainerStart is the additional runtime setup for a container
	// restart (namespace + cgroup + image layer setup), excluding warm-up.
	ContainerStart uint64

	// WarmupBytesPerSec is the rate at which a restarted service can
	// repopulate state (disk/network-bound), in bytes per second of
	// virtual time. 10 GB at ~85 MB/s gives the paper's ≈2 min restart.
	WarmupBytesPerSec uint64
}

// DefaultCostModel returns the calibrated cost model described in
// DESIGN.md §2. Callers may copy and modify it.
func DefaultCostModel() CostModel {
	return CostModel{
		CPUHz:             DefaultCPUHz,
		MemLoad:           4,
		MemStore:          4,
		MemPerByte:        1,
		WRPKRU:            23,
		RDPKRU:            2,
		PkeyAlloc:         900,
		PkeyFree:          700,
		PkeyMprotect:      1_200,
		PageMap:           1_800,
		PageUnmap:         1_500,
		PageZero:          600,
		Syscall:           4_500,
		ContextSwitch:     9_000,
		SignalDeliver:     6_000,
		SnapshotCtx:       60,
		RestoreCtx:        60,
		ForkExec:          1_500_000,
		ContainerStart:    900_000_000,
		WarmupBytesPerSec: 85_000_000,
	}
}

// Clock accumulates virtual cycles. The zero value is unusable; use New.
// Clock is not safe for concurrent use: each simulated execution context
// owns its own Clock (matching a single hardware thread).
type Clock struct {
	model  CostModel
	cycles uint64
}

// New returns a Clock at cycle zero using the given cost model.
func New(model CostModel) *Clock {
	if model.CPUHz == 0 {
		model.CPUHz = DefaultCPUHz
	}
	return &Clock{model: model}
}

// Model returns the clock's cost model.
func (c *Clock) Model() CostModel { return c.model }

// Advance charges n cycles.
func (c *Clock) Advance(n uint64) { c.cycles += n }

// AdvanceTime charges the cycle equivalent of d.
func (c *Clock) AdvanceTime(d time.Duration) {
	c.cycles += DurationToCycles(d, c.model.CPUHz)
}

// Cycles returns the total cycles charged so far.
func (c *Clock) Cycles() uint64 { return c.cycles }

// Now returns the virtual time elapsed since cycle zero.
func (c *Clock) Now() time.Duration { return CyclesToDuration(c.cycles, c.model.CPUHz) }

// Reset rewinds the clock to cycle zero.
func (c *Clock) Reset() { c.cycles = 0 }

// Since returns the virtual time elapsed since the given earlier cycle
// count (typically captured with Cycles).
func (c *Clock) Since(start uint64) time.Duration {
	if c.cycles < start {
		return 0
	}
	return CyclesToDuration(c.cycles-start, c.model.CPUHz)
}

// DeadlineQuantum is the granularity to which wall-clock deadlines are
// rounded when mapped to virtual-cycle budgets. Rounding the remaining
// wall time *up* to the next quantum makes the derived budget — and
// therefore the virtual cycle at which a budgeted run is preempted —
// reproducible across runs despite host scheduling jitter: any capture
// point within the same 100 ms band yields the same budget.
const DeadlineQuantum = 100 * time.Millisecond

// maxBudgetWindow caps the wall-time horizon a deadline can impose as a
// cycle budget: anything further out is effectively unlimited for a
// single domain run, and capping it keeps the quantization and
// cycles-conversion arithmetic far away from int64/uint64 overflow.
const maxBudgetWindow = 24 * time.Hour

// CyclesUntilDeadline converts the wall time remaining until deadline
// into a virtual-cycle budget at hz, quantized to DeadlineQuantum. An
// already-expired deadline yields a 1-cycle budget (which preempts a run
// at its first simulated-machine operation); a deadline beyond
// maxBudgetWindow yields the saturating "effectively unlimited" budget.
// The result is never 0, so callers can use 0 to mean "no budget". This
// is the only place the library consults the wall clock: everything
// downstream of the returned budget is deterministic virtual time.
func CyclesUntilDeadline(deadline time.Time, hz uint64) uint64 {
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return 1
	}
	if remaining >= maxBudgetWindow {
		return math.MaxUint64
	}
	quanta := (remaining + DeadlineQuantum - 1) / DeadlineQuantum
	return DurationToCycles(quanta*DeadlineQuantum, hz)
}

// CyclesToDuration converts a cycle count at hz to a duration. The
// computation is done in integer arithmetic (split into whole seconds and
// remainder) so that exact cycle counts convert exactly.
func CyclesToDuration(cycles, hz uint64) time.Duration {
	if hz == 0 {
		hz = DefaultCPUHz
	}
	secs := cycles / hz
	rem := cycles % hz
	return time.Duration(secs)*time.Second + time.Duration(rem*1e9/hz)
}

// DurationToCycles converts a duration to cycles at hz using exact
// integer arithmetic.
func DurationToCycles(d time.Duration, hz uint64) uint64 {
	if hz == 0 {
		hz = DefaultCPUHz
	}
	if d <= 0 {
		return 0
	}
	ns := uint64(d.Nanoseconds())
	secs := ns / 1e9
	rem := ns % 1e9
	return secs*hz + rem*hz/1e9
}

// String implements fmt.Stringer for debugging.
func (c *Clock) String() string {
	return fmt.Sprintf("vclock{cycles=%d, t=%s}", c.cycles, c.Now())
}
