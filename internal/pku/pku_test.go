package pku

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPKRUAllowAllGrantsEverything(t *testing.T) {
	for k := Key(0); k < NumKeys; k++ {
		if !PKRUAllowAll.CanRead(k) {
			t.Errorf("AllowAll.CanRead(%v) = false", k)
		}
		if !PKRUAllowAll.CanWrite(k) {
			t.Errorf("AllowAll.CanWrite(%v) = false", k)
		}
	}
}

func TestPKRUDenyAllDeniesEverything(t *testing.T) {
	for k := Key(0); k < NumKeys; k++ {
		if PKRUDenyAll.CanRead(k) {
			t.Errorf("DenyAll.CanRead(%v) = true", k)
		}
		if PKRUDenyAll.CanWrite(k) {
			t.Errorf("DenyAll.CanWrite(%v) = true", k)
		}
	}
}

func TestWriteDisableStillAllowsRead(t *testing.T) {
	p := PKRUAllowAll.WithWriteDisabled(3)
	if !p.CanRead(3) {
		t.Error("WD should not affect reads")
	}
	if p.CanWrite(3) {
		t.Error("WD should deny writes")
	}
	// Other keys untouched.
	if !p.CanWrite(2) || !p.CanWrite(4) {
		t.Error("WD leaked to neighbouring keys")
	}
}

func TestAccessDisableDeniesBoth(t *testing.T) {
	p := PKRUAllowAll.WithAccessDisabled(5)
	if p.CanRead(5) || p.CanWrite(5) {
		t.Error("AD should deny read and write")
	}
}

func TestWithAllowedClearsBothBits(t *testing.T) {
	p := PKRUDenyAll.WithAllowed(7)
	if !p.CanRead(7) || !p.CanWrite(7) {
		t.Error("WithAllowed should grant rw")
	}
	if p.CanRead(6) || p.CanRead(8) {
		t.Error("WithAllowed leaked to neighbouring keys")
	}
}

func TestOnlyKeys(t *testing.T) {
	p := OnlyKeys(0, 4)
	for k := Key(0); k < NumKeys; k++ {
		want := k == 0 || k == 4
		if got := p.CanRead(k) && p.CanWrite(k); got != want {
			t.Errorf("OnlyKeys(0,4): key %v rw = %v, want %v", k, got, want)
		}
	}
}

// Property: for any PKRU value and key, CanWrite implies CanRead
// (hardware AD dominates WD).
func TestWriteImpliesReadProperty(t *testing.T) {
	f := func(raw uint32, kRaw uint8) bool {
		p := PKRU(raw)
		k := Key(kRaw % NumKeys)
		return !p.CanWrite(k) || p.CanRead(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: WithAllowed then WithAccessDisabled round-trips to denied.
func TestDisableAfterAllowProperty(t *testing.T) {
	f := func(raw uint32, kRaw uint8) bool {
		k := Key(kRaw % NumKeys)
		p := PKRU(raw).WithAllowed(k).WithAccessDisabled(k)
		return !p.CanRead(k) && !p.CanWrite(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocatorHandsOutFifteenKeys(t *testing.T) {
	var a Allocator
	seen := map[Key]bool{}
	for i := 0; i < NumKeys-1; i++ {
		k, err := a.Alloc()
		if err != nil {
			t.Fatalf("Alloc #%d: %v", i, err)
		}
		if k == DefaultKey {
			t.Fatalf("Alloc returned the default key")
		}
		if seen[k] {
			t.Fatalf("Alloc returned duplicate key %v", k)
		}
		seen[k] = true
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrNoKeys) {
		t.Fatalf("16th Alloc err = %v, want ErrNoKeys", err)
	}
}

func TestAllocatorFreeAndReuse(t *testing.T) {
	var a Allocator
	k1, _ := a.Alloc()
	if err := a.Free(k1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if a.Allocated(k1) {
		t.Error("key still allocated after Free")
	}
	k2, err := a.Alloc()
	if err != nil {
		t.Fatalf("Alloc after free: %v", err)
	}
	if k2 != k1 {
		t.Errorf("lowest-free allocation: got %v, want %v", k2, k1)
	}
}

func TestAllocatorErrors(t *testing.T) {
	var a Allocator
	if err := a.Free(DefaultKey); !errors.Is(err, ErrDefaultKey) {
		t.Errorf("Free(0) = %v, want ErrDefaultKey", err)
	}
	if err := a.Free(9); !errors.Is(err, ErrKeyNotAllocated) {
		t.Errorf("Free(unallocated) = %v, want ErrKeyNotAllocated", err)
	}
	if err := a.Free(200); !errors.Is(err, ErrKeyNotAllocated) {
		t.Errorf("Free(invalid) = %v, want ErrKeyNotAllocated", err)
	}
}

func TestAllocatorCounts(t *testing.T) {
	var a Allocator
	if got := a.InUse(); got != 1 { // key 0
		t.Fatalf("fresh InUse = %d, want 1", got)
	}
	if got := a.Available(); got != 15 {
		t.Fatalf("fresh Available = %d, want 15", got)
	}
	k, _ := a.Alloc()
	if got := a.InUse(); got != 2 {
		t.Errorf("InUse after alloc = %d, want 2", got)
	}
	_ = a.Free(k)
	if got := a.Available(); got != 15 {
		t.Errorf("Available after free = %d, want 15", got)
	}
}

func TestDefaultKeyAlwaysAllocated(t *testing.T) {
	var a Allocator
	if !a.Allocated(DefaultKey) {
		t.Error("default key should be permanently allocated")
	}
}

func TestKeyValidity(t *testing.T) {
	if !Key(15).Valid() {
		t.Error("key 15 should be valid")
	}
	if Key(16).Valid() {
		t.Error("key 16 should be invalid")
	}
}

func TestPKRUString(t *testing.T) {
	s := PKRUAllowAll.String()
	if s == "" {
		t.Error("empty PKRU string")
	}
	if got := OnlyKeys(1).String(); got == PKRUAllowAll.String() {
		t.Error("distinct PKRU values rendered identically")
	}
}
