// Package pku implements the semantics of Intel Memory Protection Keys
// for Userspace (PKU) in software.
//
// The real SDRaD library relies on PKU hardware: each page of memory is
// tagged with one of 16 protection keys, and a per-thread PKRU register
// holds two bits per key — Access Disable (AD) and Write Disable (WD).
// Because PKU hardware is unavailable in this environment (and Go's
// scheduler conflicts with per-thread PKRU state), this package
// reproduces the architectural state machine exactly: 16 keys, key 0 as
// the always-allocated default, AD/WD bit semantics, and a userspace key
// allocator mirroring pkey_alloc(2)/pkey_free(2).
package pku

import (
	"errors"
	"fmt"
)

// NumKeys is the number of protection keys provided by the architecture.
const NumKeys = 16

// DefaultKey is protection key 0, which tags all memory not explicitly
// assigned to another key. It is permanently allocated.
const DefaultKey Key = 0

// Key identifies one of the 16 protection keys.
type Key uint8

// Valid reports whether k is an architecturally valid key.
func (k Key) Valid() bool { return k < NumKeys }

// String implements fmt.Stringer.
func (k Key) String() string { return fmt.Sprintf("pkey%d", uint8(k)) }

// PKRU is the protection-key rights register: two bits per key.
// Bit 2k   = AD (access disable: all access to pages tagged k faults).
// Bit 2k+1 = WD (write disable: writes to pages tagged k fault).
// A zero PKRU grants full access to every key.
type PKRU uint32

// PKRU values of note.
const (
	// PKRUAllowAll grants read and write access to every key.
	PKRUAllowAll PKRU = 0
	// PKRUDenyAll disables access to every key, including key 0.
	// (On real hardware this would make the thread unable to run; the
	// simulation permits it for testing fault paths.)
	PKRUDenyAll PKRU = 0x5555_5555
)

func adBit(k Key) PKRU { return 1 << (2 * uint(k)) }
func wdBit(k Key) PKRU { return 1 << (2*uint(k) + 1) }

// CanRead reports whether the register permits reads of pages tagged k.
func (p PKRU) CanRead(k Key) bool { return p&adBit(k) == 0 }

// CanWrite reports whether the register permits writes to pages tagged k.
// Write permission requires both AD and WD clear, matching hardware.
func (p PKRU) CanWrite(k Key) bool { return p&(adBit(k)|wdBit(k)) == 0 }

// WithAccessDisabled returns a copy of p with all access to key k denied.
func (p PKRU) WithAccessDisabled(k Key) PKRU { return p | adBit(k) }

// WithWriteDisabled returns a copy of p with writes to key k denied.
func (p PKRU) WithWriteDisabled(k Key) PKRU { return p | wdBit(k) }

// WithAllowed returns a copy of p granting full access to key k.
func (p PKRU) WithAllowed(k Key) PKRU { return p &^ (adBit(k) | wdBit(k)) }

// OnlyKeys returns a PKRU that grants full access to exactly the given
// keys (plus nothing else) and denies all access to every other key.
// This is the register value SDRaD installs when entering a domain: the
// domain sees its own key (and, transitively, its parents' keys when
// configured for nested access) and nothing else.
func OnlyKeys(keys ...Key) PKRU {
	p := PKRUDenyAll
	for _, k := range keys {
		p = p.WithAllowed(k)
	}
	return p
}

// String renders the register as a per-key rights list, e.g. "0:rw 1:-- 2:r-".
func (p PKRU) String() string {
	buf := make([]byte, 0, NumKeys*6)
	for k := Key(0); k < NumKeys; k++ {
		if k > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, fmt.Sprintf("%d:", k)...)
		if p.CanRead(k) {
			buf = append(buf, 'r')
		} else {
			buf = append(buf, '-')
		}
		if p.CanWrite(k) {
			buf = append(buf, 'w')
		} else {
			buf = append(buf, '-')
		}
	}
	return string(buf)
}

// ErrNoKeys is returned by Allocator.Alloc when all 15 allocatable keys
// are in use, mirroring pkey_alloc(2) returning ENOSPC.
var ErrNoKeys = errors.New("pku: no protection keys available")

// ErrKeyNotAllocated is returned when freeing or using a key that is not
// currently allocated.
var ErrKeyNotAllocated = errors.New("pku: key not allocated")

// ErrDefaultKey is returned when attempting to free key 0.
var ErrDefaultKey = errors.New("pku: cannot free default key 0")

// Allocator hands out protection keys, mirroring the kernel's per-process
// key bitmap. Key 0 is permanently allocated. The zero value is ready to
// use. Allocator is not safe for concurrent use.
type Allocator struct {
	inUse [NumKeys]bool
	init  bool
}

func (a *Allocator) lazyInit() {
	if !a.init {
		a.inUse[DefaultKey] = true
		a.init = true
	}
}

// Alloc returns the lowest free key, or ErrNoKeys if none remain.
func (a *Allocator) Alloc() (Key, error) {
	a.lazyInit()
	for k := Key(1); k < NumKeys; k++ {
		if !a.inUse[k] {
			a.inUse[k] = true
			return k, nil
		}
	}
	return 0, ErrNoKeys
}

// Free releases a previously allocated key.
func (a *Allocator) Free(k Key) error {
	a.lazyInit()
	if k == DefaultKey {
		return ErrDefaultKey
	}
	if !k.Valid() || !a.inUse[k] {
		return fmt.Errorf("%w: %v", ErrKeyNotAllocated, k)
	}
	a.inUse[k] = false
	return nil
}

// Allocated reports whether k is currently allocated.
func (a *Allocator) Allocated(k Key) bool {
	a.lazyInit()
	return k.Valid() && a.inUse[k]
}

// InUse returns the number of allocated keys, including key 0.
func (a *Allocator) InUse() int {
	a.lazyInit()
	n := 0
	for _, b := range a.inUse {
		if b {
			n++
		}
	}
	return n
}

// Available returns the number of keys that Alloc can still hand out.
func (a *Allocator) Available() int { return NumKeys - a.InUse() }
