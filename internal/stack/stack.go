// Package stack implements per-domain execution stacks for the SDRaD
// reproduction.
//
// Each SDRaD domain runs on its own stack, allocated from pages tagged
// with the domain's protection key and protected below by a guard page.
// Call frames carry stack canaries (the -fstack-protector mechanism the
// paper lists among its pre-existing detectors): a canary word is placed
// at the top of each frame when it is pushed and validated when the frame
// is popped. A smashed canary is reported as ErrStackSmash, which SDRaD
// treats as a domain violation triggering secure rewind.
//
// The push/pop canary traffic rides the memory subsystem's software-TLB
// fast path: frames cluster on the top stack pages, so repeat pushes hit
// cached translations, while the ProtNone guard page below can never be
// TLB-resident (only successful accesses are cached) — a stack overflow
// always takes the slow-path walk and faults exactly as before.
package stack

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/pku"
)

// Sentinel errors.
var (
	// ErrStackSmash is returned when a frame canary has been overwritten.
	ErrStackSmash = errors.New("stack: smashing detected")
	// ErrStackOverflow is returned when a push would cross into the guard
	// page.
	ErrStackOverflow = errors.New("stack: overflow")
	// ErrBadFrame is returned when frames are popped out of order.
	ErrBadFrame = errors.New("stack: frame mismatch")
)

const canarySize = 8

// Stack is a downward-growing domain stack with a low guard page.
// Create with New; not safe for concurrent use.
type Stack struct {
	m      *mem.Memory
	key    pku.Key
	pkru   pku.PKRU
	guard  mem.Addr // base of the guard page
	bottom mem.Addr // lowest usable address (guard + PageSize)
	top    mem.Addr // highest usable address + 1
	sp     mem.Addr
	secret uint64
	frames []frame
}

type frame struct {
	base mem.Addr // address of the canary word (top of frame)
	sp   mem.Addr // sp value to restore on pop
}

// New maps a stack of npages usable pages (plus one guard page below)
// tagged with the domain key.
func New(m *mem.Memory, key pku.Key, npages int, secret uint64) (*Stack, error) {
	if npages <= 0 {
		return nil, fmt.Errorf("stack: %w: %d pages", mem.ErrBadRange, npages)
	}
	if secret == 0 {
		secret = 0xfe57_ca4a_12d0_0d1e ^ uint64(key)<<48
	}
	base, err := m.Map(npages+1, mem.ProtRW, key)
	if err != nil {
		return nil, fmt.Errorf("stack: map: %w", err)
	}
	// The lowest page is the guard page.
	if err := m.Protect(base, 1, mem.ProtNone); err != nil {
		return nil, fmt.Errorf("stack: guard: %w", err)
	}
	s := &Stack{
		m:      m,
		key:    key,
		pkru:   pku.OnlyKeys(pku.DefaultKey, key),
		guard:  base,
		bottom: base + mem.PageSize,
		top:    base + mem.Addr(npages+1)*mem.PageSize,
		secret: secret,
	}
	s.sp = s.top
	return s, nil
}

// Key returns the stack's protection key.
func (s *Stack) Key() pku.Key { return s.key }

// SP returns the current stack pointer.
func (s *Stack) SP() mem.Addr { return s.sp }

// Guard returns the base address of the guard page.
func (s *Stack) Guard() mem.Addr { return s.guard }

// Depth returns the number of live frames.
func (s *Stack) Depth() int { return len(s.frames) }

// Remaining returns the bytes of stack space left before the guard page.
func (s *Stack) Remaining() int { return int(s.sp - s.bottom) }

func (s *Stack) canary(at mem.Addr) uint64 {
	x := uint64(at) ^ s.secret
	x ^= x << 7
	x ^= x >> 9
	if x == 0 {
		x = s.secret | 1
	}
	return x
}

// Frame identifies a pushed call frame.
type Frame struct {
	// Base is the lowest address of the frame's local storage.
	Base mem.Addr
	// Size is the usable local storage size in bytes.
	Size int

	canaryAt mem.Addr
}

// Push allocates a call frame of size bytes of local storage, placing a
// canary word above the locals (between this frame's locals and the
// caller's frame, where a linear overflow of a local buffer lands first).
func (s *Stack) Push(size int) (Frame, error) {
	if size < 0 {
		return Frame{}, fmt.Errorf("stack: %w: negative frame", mem.ErrBadRange)
	}
	need := mem.Addr(size + canarySize)
	if s.sp < s.bottom+need {
		return Frame{}, fmt.Errorf("%w: need %d bytes, %d remaining", ErrStackOverflow, need, s.Remaining())
	}
	oldSP := s.sp
	canaryAt := s.sp - canarySize
	if err := s.m.Store64(s.pkru, canaryAt, s.canary(canaryAt)); err != nil {
		return Frame{}, fmt.Errorf("stack: canary store: %w", err)
	}
	s.sp -= need
	fr := Frame{Base: s.sp, Size: size, canaryAt: canaryAt}
	s.frames = append(s.frames, frame{base: canaryAt, sp: oldSP})
	return fr, nil
}

// Pop validates the frame's canary and releases it. Frames must pop in
// LIFO order.
func (s *Stack) Pop(fr Frame) error {
	if len(s.frames) == 0 {
		return fmt.Errorf("%w: pop of empty stack", ErrBadFrame)
	}
	top := s.frames[len(s.frames)-1]
	if top.base != fr.canaryAt {
		return fmt.Errorf("%w: pop of non-top frame", ErrBadFrame)
	}
	got, err := s.m.Load64(s.pkru, fr.canaryAt)
	if err != nil {
		return fmt.Errorf("stack: canary load: %w", err)
	}
	if got != s.canary(fr.canaryAt) {
		return fmt.Errorf("%w: canary at %#x clobbered", ErrStackSmash, uint64(fr.canaryAt))
	}
	s.frames = s.frames[:len(s.frames)-1]
	s.sp = top.sp
	return nil
}

// CheckTop validates the canary of the current top frame without popping,
// mirroring a mid-function __stack_chk probe.
func (s *Stack) CheckTop() error {
	if len(s.frames) == 0 {
		return nil
	}
	at := s.frames[len(s.frames)-1].base
	got, err := s.m.Load64(s.pkru, at)
	if err != nil {
		return fmt.Errorf("stack: canary load: %w", err)
	}
	if got != s.canary(at) {
		return fmt.Errorf("%w: canary at %#x clobbered", ErrStackSmash, uint64(at))
	}
	return nil
}

// Snapshot captures the stack pointer and frame depth for later rewind.
type Snapshot struct {
	sp     mem.Addr
	nframe int
}

// Snapshot returns a restore point at the current stack state.
func (s *Stack) Snapshot() Snapshot {
	return Snapshot{sp: s.sp, nframe: len(s.frames)}
}

// Rewind discards all frames pushed since the snapshot and restores the
// stack pointer, without validating canaries (the frames being discarded
// may be arbitrarily corrupted — that is the point of rewinding).
func (s *Stack) Rewind(snap Snapshot) error {
	if snap.nframe > len(s.frames) || snap.sp < s.sp {
		return fmt.Errorf("%w: snapshot is newer than current state", ErrBadFrame)
	}
	s.frames = s.frames[:snap.nframe]
	s.sp = snap.sp
	return nil
}

// Release unmaps the stack pages (guard included).
func (s *Stack) Release() error {
	npages := int((s.top - s.guard) / mem.PageSize)
	if err := s.m.Unmap(s.guard, npages); err != nil {
		return fmt.Errorf("stack: release: %w", err)
	}
	s.frames = nil
	return nil
}
