package stack

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/pku"
)

func newStack(t *testing.T) (*Stack, *mem.Memory) {
	t.Helper()
	m := mem.New(nil)
	s, err := New(m, pku.Key(2), 4, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, m
}

func TestPushPop(t *testing.T) {
	s, m := newStack(t)
	top := s.SP()
	fr, err := s.Push(128)
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	if fr.Size != 128 {
		t.Errorf("frame size = %d", fr.Size)
	}
	if s.Depth() != 1 {
		t.Errorf("Depth = %d, want 1", s.Depth())
	}
	// Locals are usable.
	pkru := pku.OnlyKeys(pku.DefaultKey, s.Key())
	if err := m.StoreBytes(pkru, fr.Base, make([]byte, 128)); err != nil {
		t.Fatalf("write locals: %v", err)
	}
	if err := s.Pop(fr); err != nil {
		t.Fatalf("Pop: %v", err)
	}
	if s.SP() != top || s.Depth() != 0 {
		t.Errorf("state after pop: sp=%#x depth=%d", uint64(s.SP()), s.Depth())
	}
}

func TestLinearOverflowSmashesCanary(t *testing.T) {
	s, m := newStack(t)
	fr, _ := s.Push(64)
	pkru := pku.OnlyKeys(pku.DefaultKey, s.Key())
	// Overflow a 64-byte local buffer by 8 bytes: hits the canary that
	// sits directly above the locals.
	evil := make([]byte, 72)
	for i := range evil {
		evil[i] = 0x41
	}
	if err := m.StoreBytes(pkru, fr.Base, evil); err != nil {
		t.Fatalf("overflow write: %v", err)
	}
	if err := s.CheckTop(); !errors.Is(err, ErrStackSmash) {
		t.Errorf("CheckTop = %v, want ErrStackSmash", err)
	}
	if err := s.Pop(fr); !errors.Is(err, ErrStackSmash) {
		t.Errorf("Pop = %v, want ErrStackSmash", err)
	}
}

func TestNestedFramesLIFO(t *testing.T) {
	s, _ := newStack(t)
	f1, _ := s.Push(32)
	f2, _ := s.Push(32)
	if err := s.Pop(f1); !errors.Is(err, ErrBadFrame) {
		t.Errorf("out-of-order pop = %v, want ErrBadFrame", err)
	}
	if err := s.Pop(f2); err != nil {
		t.Fatalf("Pop f2: %v", err)
	}
	if err := s.Pop(f1); err != nil {
		t.Fatalf("Pop f1: %v", err)
	}
	if err := s.Pop(f1); !errors.Is(err, ErrBadFrame) {
		t.Errorf("pop of empty = %v, want ErrBadFrame", err)
	}
}

func TestStackOverflowGuard(t *testing.T) {
	s, _ := newStack(t)
	// 4 usable pages = 16384 bytes; a 1-page frame fits, too many don't.
	var err error
	for i := 0; i < 10; i++ {
		if _, err = s.Push(4096); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrStackOverflow) {
		t.Errorf("err = %v, want ErrStackOverflow", err)
	}
}

func TestGuardPageFaultsOnAccess(t *testing.T) {
	s, m := newStack(t)
	pkru := pku.OnlyKeys(pku.DefaultKey, s.Key())
	err := m.Store8(pkru, s.Guard()+100, 0xff)
	f, ok := mem.IsFault(err)
	if !ok || f.Kind != mem.FaultProt {
		t.Errorf("guard write = %v, want FaultProt", err)
	}
}

func TestSnapshotRewind(t *testing.T) {
	s, m := newStack(t)
	f0, _ := s.Push(64)
	snap := s.Snapshot()
	sp0 := s.SP()
	// Push frames and smash one — rewind must still succeed.
	fr, _ := s.Push(64)
	_, _ = s.Push(256)
	pkru := pku.OnlyKeys(pku.DefaultKey, s.Key())
	_ = m.StoreBytes(pkru, fr.Base, make([]byte, 80)) // smash
	if err := s.Rewind(snap); err != nil {
		t.Fatalf("Rewind: %v", err)
	}
	if s.SP() != sp0 || s.Depth() != 1 {
		t.Errorf("after rewind: sp=%#x depth=%d, want sp=%#x depth=1", uint64(s.SP()), s.Depth(), uint64(sp0))
	}
	// The pre-snapshot frame is intact and pops cleanly.
	if err := s.Pop(f0); err != nil {
		t.Errorf("Pop f0 after rewind: %v", err)
	}
}

func TestRewindToNewerSnapshotFails(t *testing.T) {
	s, _ := newStack(t)
	_, _ = s.Push(16)
	snap := s.Snapshot()
	// Unwind below the snapshot, then try to "rewind forward".
	s.frames = nil
	s.sp = s.top
	if err := s.Rewind(snap); !errors.Is(err, ErrBadFrame) {
		t.Errorf("forward rewind = %v, want ErrBadFrame", err)
	}
}

func TestStackPagesCarryKey(t *testing.T) {
	s, m := newStack(t)
	fr, _ := s.Push(16)
	// Foreign PKRU cannot read stack locals.
	_, err := m.Load8(pku.OnlyKeys(pku.DefaultKey), fr.Base)
	if f, ok := mem.IsFault(err); !ok || f.Kind != mem.FaultPkey {
		t.Errorf("foreign stack read = %v, want FaultPkey", err)
	}
}

func TestRelease(t *testing.T) {
	m := mem.New(nil)
	s, err := New(m, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if m.MappedPages() != 0 {
		t.Errorf("pages leaked: %d", m.MappedPages())
	}
}

func TestBadArgs(t *testing.T) {
	m := mem.New(nil)
	if _, err := New(m, 2, 0, 0); err == nil {
		t.Error("New with 0 pages should fail")
	}
	s, _ := New(m, 2, 2, 0)
	if _, err := s.Push(-1); err == nil {
		t.Error("Push(-1) should fail")
	}
}

// Property: any push/pop-balanced sequence with in-bounds writes leaves
// the stack at its initial SP with zero depth and no false canary trips.
func TestBalancedPushPopProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := mem.New(nil)
		s, err := New(m, 2, 8, 0)
		if err != nil {
			return false
		}
		top := s.SP()
		pkru := pku.OnlyKeys(pku.DefaultKey, s.Key())
		var frames []Frame
		for _, raw := range sizes {
			size := int(raw)%512 + 1
			fr, err := s.Push(size)
			if err != nil {
				// Overflow is acceptable; stop pushing.
				break
			}
			if m.StoreBytes(pkru, fr.Base, make([]byte, size)) != nil {
				return false
			}
			frames = append(frames, fr)
		}
		for i := len(frames) - 1; i >= 0; i-- {
			if s.Pop(frames[i]) != nil {
				return false
			}
		}
		return s.SP() == top && s.Depth() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCheckTopEmptyStack(t *testing.T) {
	s, _ := newStack(t)
	if err := s.CheckTop(); err != nil {
		t.Errorf("CheckTop on empty stack: %v", err)
	}
	fr, _ := s.Push(16)
	if err := s.CheckTop(); err != nil {
		t.Errorf("CheckTop on clean frame: %v", err)
	}
	_ = s.Pop(fr)
}

// TestGuardPageNeverTLBResident: the memory fast path only caches
// successful translations, so a warm stack working set must not weaken
// the guard page — overflowing into it faults on every attempt, even
// after heavy adjacent traffic.
func TestGuardPageNeverTLBResident(t *testing.T) {
	m := mem.New(nil)
	s, err := New(m, pku.Key(1), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the stack pages: push/pop frames that fill most of the stack.
	for i := 0; i < 50; i++ {
		fr, err := s.Push(1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.m.StoreBytes(s.pkru, fr.Base, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
		if err := s.Pop(fr); err != nil {
			t.Fatal(err)
		}
	}
	// A direct write into the guard page must fault every time.
	for i := 0; i < 3; i++ {
		err := s.m.Store8(s.pkru, s.Guard()+mem.Addr(i), 0x41)
		f, ok := mem.IsFault(err)
		if !ok || f.Kind != mem.FaultProt {
			t.Fatalf("guard write %d = %v, want FaultProt", i, err)
		}
	}
	// And a Push that would cross into the guard is still refused.
	if _, err := s.Push(s.Remaining() + 1); err == nil {
		t.Fatal("overflowing Push succeeded")
	}
}
