package ffi

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/serde"
)

func newBridge(t *testing.T, codec serde.Codec) (*Bridge, *core.System) {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	if _, err := sys.InitDomain(1, core.DomainConfig{}); err != nil {
		t.Fatal(err)
	}
	b, err := NewBridge(sys, 1, codec)
	if err != nil {
		t.Fatal(err)
	}
	return b, sys
}

func TestCallRoundTrip(t *testing.T) {
	for _, codec := range serde.Codecs() {
		if codec.Name() == "raw" {
			continue // raw cannot carry int results
		}
		t.Run(codec.Name(), func(t *testing.T) {
			b, _ := newBridge(t, codec)
			err := b.Register(Registration{
				Name: "add",
				Fn: func(_ *core.DomainCtx, args []any) ([]any, error) {
					return []any{args[0].(int64) + args[1].(int64)}, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := b.Call("add", int64(2), int64(40))
			if err != nil {
				t.Fatalf("Call: %v", err)
			}
			if len(res) != 1 || res[0] != int64(42) {
				t.Errorf("res = %#v", res)
			}
		})
	}
}

func TestRawCodecBytesRoundTrip(t *testing.T) {
	b, _ := newBridge(t, serde.Raw{})
	_ = b.Register(Registration{
		Name: "upper",
		Fn: func(_ *core.DomainCtx, args []any) ([]any, error) {
			in := args[0].([]byte)
			out := make([]byte, len(in))
			for i, ch := range in {
				if 'a' <= ch && ch <= 'z' {
					ch -= 32
				}
				out[i] = ch
			}
			return []any{out}, nil
		},
	})
	res, err := b.Call("upper", []byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(res[0].([]byte)) != "HELLO" {
		t.Errorf("res = %q", res[0])
	}
}

func TestUnknownFunc(t *testing.T) {
	b, _ := newBridge(t, nil)
	if _, err := b.Call("nope"); !errors.Is(err, ErrUnknownFunc) {
		t.Errorf("err = %v, want ErrUnknownFunc", err)
	}
}

func TestDefaultCodecIsBinary(t *testing.T) {
	b, _ := newBridge(t, nil)
	if b.Codec().Name() != "binary" {
		t.Errorf("default codec = %q", b.Codec().Name())
	}
}

func TestRegisterValidation(t *testing.T) {
	b, _ := newBridge(t, nil)
	if err := b.Register(Registration{Name: ""}); err == nil {
		t.Error("empty registration accepted")
	}
	if err := b.Register(Registration{Name: "f"}); err == nil {
		t.Error("nil Fn accepted")
	}
	if b.Funcs() != 0 {
		t.Error("invalid registrations were stored")
	}
}

func TestBridgeRequiresDomain(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig())
	if _, err := NewBridge(sys, 7, nil); !errors.Is(err, core.ErrNoDomain) {
		t.Errorf("err = %v, want ErrNoDomain", err)
	}
}

func TestViolationWithoutFallback(t *testing.T) {
	b, _ := newBridge(t, nil)
	_ = b.Register(Registration{
		Name: "crash",
		Fn: func(c *core.DomainCtx, _ []any) ([]any, error) {
			buf := make([]byte, 8)
			c.MustLoad(0xdead0000, buf) // wild read
			return nil, nil
		},
	})
	_, err := b.Call("crash")
	v, ok := core.IsViolation(err)
	if !ok {
		t.Fatalf("err = %v, want ViolationError", err)
	}
	if v.UDI != 1 {
		t.Errorf("UDI = %d", v.UDI)
	}
	st := b.Stats()
	if st.Violations != 1 || st.Fallbacks != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestViolationWithFallback(t *testing.T) {
	b, _ := newBridge(t, nil)
	_ = b.Register(Registration{
		Name: "parse",
		Fn: func(c *core.DomainCtx, args []any) ([]any, error) {
			if args[0].(string) == "evil" {
				p := c.MustAlloc(16)
				c.MustStore(p, make([]byte, 64)) // heap overflow
				_ = c.MustLoad64(0)              // never reached? overflow alone passes until exit sweep
			}
			return []any{int64(len(args[0].(string)))}, nil
		},
		Fallback: func(args []any, viol *core.ViolationError) ([]any, error) {
			return []any{int64(-1)}, nil
		},
	})
	// Benign call.
	res, err := b.Call("parse", "benign")
	if err != nil || res[0] != int64(6) {
		t.Fatalf("benign: %v, %v", res, err)
	}
	// Malicious call: fallback value, no error.
	res, err = b.Call("parse", "evil")
	if err != nil {
		t.Fatalf("evil call: %v", err)
	}
	if res[0] != int64(-1) {
		t.Errorf("fallback result = %v", res[0])
	}
	st := b.Stats()
	if st.Calls != 2 || st.Violations != 1 || st.Fallbacks != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The service keeps working after the violation.
	res, err = b.Call("parse", "again")
	if err != nil || res[0] != int64(5) {
		t.Errorf("post-violation call: %v, %v", res, err)
	}
}

func TestFallbackErrorPropagates(t *testing.T) {
	b, _ := newBridge(t, nil)
	sentinel := errors.New("fallback refused")
	_ = b.Register(Registration{
		Name: "f",
		Fn: func(c *core.DomainCtx, _ []any) ([]any, error) {
			c.Violate(errors.New("bad"))
			return nil, nil
		},
		Fallback: func([]any, *core.ViolationError) ([]any, error) {
			return nil, sentinel
		},
	})
	_, err := b.Call("f")
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestApplicationErrorPassesThrough(t *testing.T) {
	b, _ := newBridge(t, nil)
	sentinel := errors.New("app: invalid input")
	_ = b.Register(Registration{
		Name: "f",
		Fn: func(*core.DomainCtx, []any) ([]any, error) {
			return nil, sentinel
		},
		Fallback: func([]any, *core.ViolationError) ([]any, error) {
			t.Error("fallback must not run for app errors")
			return nil, nil
		},
	})
	_, err := b.Call("f")
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestEncodeErrorSurfaces(t *testing.T) {
	b, _ := newBridge(t, serde.Binary{})
	_ = b.Register(Registration{
		Name: "f",
		Fn:   func(*core.DomainCtx, []any) ([]any, error) { return []any{}, nil },
	})
	type unsupported struct{}
	if _, err := b.Call("f", unsupported{}); !errors.Is(err, serde.ErrUnsupportedType) {
		t.Errorf("err = %v, want ErrUnsupportedType", err)
	}
}

func TestEmptyResultVector(t *testing.T) {
	b, _ := newBridge(t, nil)
	_ = b.Register(Registration{
		Name: "void",
		Fn:   func(*core.DomainCtx, []any) ([]any, error) { return nil, nil },
	})
	res, err := b.Call("void")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if len(res) != 0 {
		t.Errorf("res = %#v, want empty", res)
	}
}

func TestBytesAccounting(t *testing.T) {
	b, _ := newBridge(t, nil)
	_ = b.Register(Registration{
		Name: "echo",
		Fn: func(_ *core.DomainCtx, args []any) ([]any, error) {
			return args, nil
		},
	})
	payload := make([]byte, 1024)
	if _, err := b.Call("echo", payload); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.BytesIn < 1024 || st.BytesOut < 1024 {
		t.Errorf("bytes accounting = %+v", st)
	}
}

func TestRepeatedViolationsDoNotExhaustDomain(t *testing.T) {
	b, sys := newBridge(t, nil)
	_ = b.Register(Registration{
		Name: "crash",
		Fn: func(c *core.DomainCtx, _ []any) ([]any, error) {
			c.Violate(fmt.Errorf("crash"))
			return nil, nil
		},
		Fallback: func([]any, *core.ViolationError) ([]any, error) {
			return []any{}, nil
		},
	})
	for i := 0; i < 200; i++ {
		if _, err := b.Call("crash"); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	d, _ := sys.Domain(1)
	if d.Stats().Rewinds != 200 {
		t.Errorf("rewinds = %d, want 200", d.Stats().Rewinds)
	}
	// Heap pages bounded: rewind discards allocations, so the in-buffers
	// must not accumulate.
	if hp := d.Heap().Stats().HeapPages; hp > 64 {
		t.Errorf("heap grew to %d pages despite discards", hp)
	}
}

func TestSuccessfulCallsDoNotLeakDomainHeap(t *testing.T) {
	b, sys := newBridge(t, nil)
	_ = b.Register(Registration{
		Name: "echo",
		Fn:   func(_ *core.DomainCtx, args []any) ([]any, error) { return args, nil },
	})
	for i := 0; i < 500; i++ {
		if _, err := b.Call("echo", make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	d, _ := sys.Domain(1)
	if live := d.Heap().Stats().LiveChunks; live != 0 {
		t.Errorf("%d chunks leaked across successful calls", live)
	}
}
