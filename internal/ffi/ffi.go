// Package ffi implements SDRaD-FFI (§III of the paper): calling "foreign"
// (memory-unsafe) functions inside isolated, rewindable domains, with
// serialized argument passing and alternate actions on violation.
//
// The Rust prototype the paper describes wraps annotated functions so
// that: (1) arguments are serialized with a serde crate and copied into
// the target domain's heap, (2) the function runs inside the domain with
// only that domain's protection key enabled, (3) results are serialized
// back out, and (4) on a memory violation the domain is rewound and a
// caller-supplied alternate action produces a fallback result. The Bridge
// type reproduces that pipeline on top of internal/core, with the codec
// choice pluggable (internal/serde) so experiment E8 can sweep it. Here
// "foreign code" is Go code that manipulates raw simulated memory through
// a *core.DomainCtx — the same trust model as C behind Rust FFI: it can
// scribble anywhere its protection key allows.
package ffi

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/serde"
	"repro/internal/vclock"
)

// Sentinel errors.
var (
	// ErrUnknownFunc is returned when calling an unregistered function.
	ErrUnknownFunc = errors.New("ffi: unknown foreign function")
	// ErrNoResult is returned when the foreign function did not produce a
	// result.
	ErrNoResult = errors.New("ffi: foreign function set no result")
)

// Func is a foreign function. It receives the decoded argument vector and
// a domain context for raw ("unsafe") memory work, and returns a result
// vector. Anything it does to memory is confined to the domain; a fault,
// canary smash, or panic rewinds the domain and surfaces at Call.
type Func func(c *core.DomainCtx, args []any) ([]any, error)

// Fallback is an alternate action invoked when the foreign function's
// domain suffers a violation. It receives the original arguments and the
// violation and produces substitute results (or an error to propagate).
type Fallback func(args []any, viol *core.ViolationError) ([]any, error)

// Registration describes a wrapped foreign function.
type Registration struct {
	// Name is the call identifier.
	Name string
	// Fn is the foreign implementation.
	Fn Func
	// Fallback, if non-nil, is the alternate action on violation.
	Fallback Fallback
}

// Bridge connects a trusted caller to foreign functions running inside a
// dedicated SDRaD domain. Create with NewBridge. Not safe for concurrent
// use.
type Bridge struct {
	sys   *core.System
	udi   core.UDI
	codec serde.Codec
	funcs map[string]Registration

	// stats
	calls      uint64
	violations uint64
	fallbacks  uint64
	bytesIn    uint64
	bytesOut   uint64
}

// NewBridge creates a bridge that runs foreign functions in domain udi
// (which must already be initialized) using the given codec.
func NewBridge(sys *core.System, udi core.UDI, codec serde.Codec) (*Bridge, error) {
	if _, err := sys.Domain(udi); err != nil {
		return nil, fmt.Errorf("ffi: %w", err)
	}
	if codec == nil {
		codec = serde.Binary{}
	}
	return &Bridge{
		sys:   sys,
		udi:   udi,
		codec: codec,
		funcs: make(map[string]Registration),
	}, nil
}

// Codec returns the bridge's codec.
func (b *Bridge) Codec() serde.Codec { return b.codec }

// Register wraps a foreign function; it replaces any previous
// registration with the same name. This is the analogue of annotating a
// Rust function with the SDRaD-FFI macro.
func (b *Bridge) Register(reg Registration) error {
	if reg.Name == "" || reg.Fn == nil {
		return fmt.Errorf("ffi: registration needs a name and a function")
	}
	b.funcs[reg.Name] = reg
	return nil
}

// Funcs returns the number of registered foreign functions.
func (b *Bridge) Funcs() int { return len(b.funcs) }

// Stats reports bridge accounting.
type Stats struct {
	Calls      uint64
	Violations uint64
	Fallbacks  uint64
	BytesIn    uint64
	BytesOut   uint64
}

// Stats returns a snapshot of bridge accounting.
func (b *Bridge) Stats() Stats {
	return Stats{
		Calls:      b.calls,
		Violations: b.violations,
		Fallbacks:  b.fallbacks,
		BytesIn:    b.bytesIn,
		BytesOut:   b.bytesOut,
	}
}

// Call invokes the named foreign function with args. It is CallContext
// with a background context.
func (b *Bridge) Call(name string, args ...any) ([]any, error) {
	return b.CallContext(context.Background(), name, args...)
}

// CallContext invokes the named foreign function with args.
//
// The full SDRaD-FFI pipeline runs: args are encoded with the codec and
// copied into the foreign domain's heap; the domain is entered; inside,
// the bytes are loaded and decoded, the function runs, and its results
// are encoded into a fresh domain allocation; after a clean exit the
// trusted side copies the result bytes out and decodes them. On a domain
// violation the domain has been rewound and discarded; if the function
// has a Fallback it supplies substitute results, otherwise the
// *core.ViolationError is returned.
//
// A ctx deadline maps to a virtual-cycle budget for the foreign run: an
// exhausted budget rewinds and discards the domain the same way and
// returns a *core.BudgetError (the Fallback does not apply — the foreign
// code was slow, not faulty). A ctx cancelled before entry returns
// ctx.Err().
func (b *Bridge) CallContext(ctx context.Context, name string, args ...any) ([]any, error) {
	reg, ok := b.funcs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFunc, name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.calls++

	enc, err := b.codec.Encode(args)
	if err != nil {
		return nil, fmt.Errorf("ffi: encode args for %q: %w", name, err)
	}
	b.bytesIn += uint64(len(enc))

	d, err := b.sys.Domain(b.udi)
	if err != nil {
		return nil, fmt.Errorf("ffi: %w", err)
	}
	// Trusted side allocates the in-buffer in the target domain's heap
	// and copies the serialized arguments in (sdrad_malloc + memcpy).
	inAddr, err := d.Heap().Alloc(len(enc) + 1)
	if err != nil {
		return nil, fmt.Errorf("ffi: allocate in-buffer: %w", err)
	}
	if err := b.sys.CopyToDomain(inAddr, enc); err != nil {
		return nil, fmt.Errorf("ffi: copy-in: %w", err)
	}

	var budget uint64
	if deadline, ok := ctx.Deadline(); ok {
		budget = vclock.CyclesUntilDeadline(deadline, b.sys.Clock().Model().CPUHz)
	}

	var outAddr mem.Addr
	var outLen int
	callErr := b.sys.EnterWithBudget(b.udi, budget, func(c *core.DomainCtx) error {
		// Inside the domain: load + decode the arguments.
		raw := make([]byte, len(enc))
		c.MustLoad(inAddr, raw)
		decoded, err := b.codec.Decode(raw)
		if err != nil {
			return fmt.Errorf("ffi: decode inside domain: %w", err)
		}
		results, err := reg.Fn(c, decoded)
		if err != nil {
			return err
		}
		// Encode results into a fresh domain allocation for copy-out.
		renc, err := b.codec.Encode(results)
		if err != nil {
			return fmt.Errorf("ffi: encode results: %w", err)
		}
		if len(renc) == 0 {
			renc = []byte{0}
		}
		p := c.MustAlloc(len(renc))
		c.MustStore(p, renc)
		outAddr, outLen = p, len(renc)
		return nil
	})

	// If the bridge domain itself was rewound — by a violation or a
	// budget preemption — the discard already released every domain
	// allocation, including the in-buffer; on all other paths (clean
	// exit, application errors, a *nested* domain's rewind propagating
	// through) the trusted side frees it (sdrad_free).
	if !core.RewoundBy(callErr, b.sys, b.udi) {
		if err := d.Heap().Free(inAddr); err != nil {
			return nil, fmt.Errorf("ffi: free in-buffer: %w", err)
		}
	}

	if viol, isViol := core.IsViolation(callErr); isViol {
		b.violations++
		if reg.Fallback != nil {
			b.fallbacks++
			res, ferr := reg.Fallback(args, viol)
			if ferr != nil {
				return nil, fmt.Errorf("ffi: fallback for %q: %w", name, ferr)
			}
			return res, nil
		}
		return nil, viol
	}
	if callErr != nil {
		return nil, callErr
	}
	if outAddr == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoResult, name)
	}

	// Trusted side copies the result out, frees the domain-side buffer,
	// and decodes.
	renc, err := b.sys.CopyFromDomain(outAddr, outLen)
	if err != nil {
		return nil, fmt.Errorf("ffi: copy-out: %w", err)
	}
	if err := d.Heap().Free(outAddr); err != nil {
		return nil, fmt.Errorf("ffi: free out-buffer: %w", err)
	}
	b.bytesOut += uint64(len(renc))
	results, err := b.codec.Decode(renc)
	if err != nil {
		return nil, fmt.Errorf("ffi: decode results of %q: %w", name, err)
	}
	return results, nil
}
