// Package trace provides a lightweight event log for domain lifecycle
// auditing: every init, enter, exit, violation, rewind, discard, and
// deinit can be recorded with its virtual timestamp. Operators of the paper's
// service-oriented scenarios need exactly this record ("which client
// triggered how many violations, when") to drive policies like
// quarantine and to feed incident forensics; tests use it to assert
// event ordering.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Kind classifies a lifecycle event.
type Kind uint8

// Event kinds.
const (
	KindInit Kind = iota + 1
	KindEnter
	KindExit
	KindViolation
	KindRewind
	KindDiscard
	KindDeinit
	KindGrant
	KindRevoke
	KindAdopt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInit:
		return "init"
	case KindEnter:
		return "enter"
	case KindExit:
		return "exit"
	case KindViolation:
		return "violation"
	case KindRewind:
		return "rewind"
	case KindDiscard:
		return "discard"
	case KindDeinit:
		return "deinit"
	case KindGrant:
		return "grant"
	case KindRevoke:
		return "revoke"
	case KindAdopt:
		return "adopt"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one lifecycle record.
type Event struct {
	// Seq is a monotonically increasing sequence number.
	Seq uint64
	// At is the virtual time of the event.
	At time.Duration
	// Kind classifies the event.
	Kind Kind
	// UDI is the domain involved.
	UDI int
	// Detail is free-form context (mechanism name, peer UDI, ...).
	Detail string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("#%d %v %s udi=%d", e.Seq, e.At, e.Kind, e.UDI)
	}
	return fmt.Sprintf("#%d %v %s udi=%d %s", e.Seq, e.At, e.Kind, e.UDI, e.Detail)
}

// Recorder consumes lifecycle events.
type Recorder interface {
	Record(Event)
}

// Ring is a fixed-capacity ring buffer Recorder: the newest events
// overwrite the oldest. The zero value is unusable; use NewRing. Not
// safe for concurrent use.
type Ring struct {
	buf  []Event
	next int
	full bool
	seq  uint64
}

// NewRing returns a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Recorder, stamping the sequence number.
func (r *Ring) Record(e Event) {
	r.seq++
	e.Seq = r.seq
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Total returns the number of events ever recorded (including evicted).
func (r *Ring) Total() uint64 { return r.seq }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns the retained events of the given kind, oldest first.
func (r *Ring) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events one per line.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Interface compliance check.
var _ Recorder = (*Ring)(nil)

// Multi fans events out to several recorders.
type Multi []Recorder

// Record implements Recorder.
func (m Multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}
