package trace_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestRingBasics(t *testing.T) {
	r := trace.NewRing(4)
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < 3; i++ {
		r.Record(trace.Event{Kind: trace.KindEnter, UDI: i})
	}
	if r.Len() != 3 || r.Total() != 3 {
		t.Errorf("len=%d total=%d", r.Len(), r.Total())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.UDI != i || e.Seq != uint64(i+1) {
			t.Errorf("event %d = %+v", i, e)
		}
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r := trace.NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(trace.Event{Kind: trace.KindEnter, UDI: i})
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	evs := r.Events()
	want := []int{2, 3, 4}
	for i, e := range evs {
		if e.UDI != want[i] {
			t.Errorf("event %d UDI = %d, want %d", i, e.UDI, want[i])
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := trace.NewRing(0)
	r.Record(trace.Event{Kind: trace.KindInit})
	r.Record(trace.Event{Kind: trace.KindEnter})
	if r.Len() != 1 || r.Events()[0].Kind != trace.KindEnter {
		t.Errorf("capacity-1 ring: %+v", r.Events())
	}
}

func TestFilter(t *testing.T) {
	r := trace.NewRing(10)
	r.Record(trace.Event{Kind: trace.KindEnter, UDI: 1})
	r.Record(trace.Event{Kind: trace.KindViolation, UDI: 1})
	r.Record(trace.Event{Kind: trace.KindEnter, UDI: 2})
	got := r.Filter(trace.KindEnter)
	if len(got) != 2 || got[0].UDI != 1 || got[1].UDI != 2 {
		t.Errorf("Filter = %+v", got)
	}
}

func TestDumpAndString(t *testing.T) {
	r := trace.NewRing(4)
	r.Record(trace.Event{At: time.Microsecond, Kind: trace.KindViolation, UDI: 3, Detail: "stack-canary"})
	r.Record(trace.Event{Kind: trace.KindExit, UDI: 3})
	dump := r.Dump()
	for _, want := range []string{"violation", "udi=3", "stack-canary", "exit"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := trace.KindInit; k <= trace.KindAdopt; k++ {
		if k.String() == "" {
			t.Errorf("kind %d empty", k)
		}
	}
	if trace.Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := trace.NewRing(4), trace.NewRing(4)
	m := trace.Multi{a, b}
	m.Record(trace.Event{Kind: trace.KindInit, UDI: 7})
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("Multi did not fan out")
	}
}

// End-to-end: the core runtime emits the expected lifecycle sequence.
func TestCoreEmitsLifecycle(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig())
	ring := trace.NewRing(64)
	sys.SetTracer(ring)

	if _, err := sys.InitDomain(1, core.DomainConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Enter(1, func(*core.DomainCtx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	_ = sys.Enter(1, func(c *core.DomainCtx) error {
		c.Violate(errors.New("bug"))
		return nil
	})
	if err := sys.DeinitDomain(1); err != nil {
		t.Fatal(err)
	}

	var kinds []trace.Kind
	for _, e := range ring.Events() {
		kinds = append(kinds, e.Kind)
		if e.UDI != 1 {
			t.Errorf("event for UDI %d", e.UDI)
		}
	}
	want := []trace.Kind{trace.KindInit, trace.KindEnter, trace.KindExit, trace.KindEnter, trace.KindViolation, trace.KindRewind, trace.KindDeinit}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// Timestamps are monotone.
	evs := ring.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Error("timestamps not monotone")
		}
	}
}

func TestCoreTracerOffByDefault(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig())
	if _, err := sys.InitDomain(1, core.DomainConfig{}); err != nil {
		t.Fatal(err)
	}
	// No tracer installed: operations simply do not record.
	if err := sys.Enter(1, func(*core.DomainCtx) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
