package httpd

import (
	"bufio"
	"net"
	"strings"
	"testing"

	"repro/internal/core"
)

func startNet(t *testing.T, mode Mode) (string, func()) {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	srv, err := NewServer(sys, Config{Mode: mode, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.HandleFunc("/", []byte("<html>home</html>"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ns := NewNetServer(srv, nil)
	done := make(chan error, 1)
	go func() { done <- ns.Serve(ln) }()
	return ln.Addr().String(), func() {
		if err := ln.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

func httpGet(t *testing.T, addr string, headers map[string]string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil {
			t.Logf("close: %v", cerr)
		}
	}()
	if _, err := conn.Write(BuildRequest("GET", "/", headers)); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := conn.Read(buf)
		out.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return out.String()
}

func TestHTTPNetServerServes(t *testing.T) {
	addr, stop := startNet(t, ModeSDRaD)
	defer stop()
	out := httpGet(t, addr, nil)
	if !strings.HasPrefix(out, "HTTP/1.1 200 OK\r\n") {
		t.Errorf("response: %q", out)
	}
	if !strings.Contains(out, "<html>home</html>") {
		t.Errorf("body missing: %q", out)
	}
}

func TestHTTPNetServerContainsExploit(t *testing.T) {
	addr, stop := startNet(t, ModeSDRaD)
	defer stop()
	out := httpGet(t, addr, map[string]string{AttackHeader: "1"})
	if !strings.HasPrefix(out, "HTTP/1.1 400") {
		t.Errorf("attack response: %q", out)
	}
	// Server still up.
	out = httpGet(t, addr, nil)
	if !strings.HasPrefix(out, "HTTP/1.1 200") {
		t.Errorf("post-attack response: %q", out)
	}
}

func TestReadRequestHead(t *testing.T) {
	raw := "GET / HTTP/1.1\r\nhost: x\r\n\r\ntrailing-not-read"
	head, err := ReadRequestHead(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if string(head) != "GET / HTTP/1.1\r\nhost: x\r\n\r\n" {
		t.Errorf("head = %q", head)
	}
	// EOF without terminator still returns what arrived.
	head, err = ReadRequestHead(bufio.NewReader(strings.NewReader("GET / HTTP/1.1\r\n")))
	if err != nil || len(head) == 0 {
		t.Errorf("partial head: %q, %v", head, err)
	}
	// Empty stream errors.
	if _, err := ReadRequestHead(bufio.NewReader(strings.NewReader(""))); err == nil {
		t.Error("empty stream accepted")
	}
	// Oversized head rejected.
	big := strings.Repeat("h: v\r\n", 20_000)
	if _, err := ReadRequestHead(bufio.NewReader(strings.NewReader("GET / HTTP/1.1\r\n" + big))); err == nil {
		t.Error("oversized head accepted")
	}
}

func TestWriteHTTPResponseForms(t *testing.T) {
	var b strings.Builder
	WriteHTTPResponse(&b, Response{Status: 200, Body: []byte("hi")})
	if !strings.HasPrefix(b.String(), "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n") {
		t.Errorf("200: %q", b.String())
	}
	b.Reset()
	WriteHTTPResponse(&b, Response{}) // zero status defaults to 500
	if !strings.HasPrefix(b.String(), "HTTP/1.1 500") {
		t.Errorf("default: %q", b.String())
	}
	b.Reset()
	WriteHTTPResponse(&b, Response{Status: 503, Err: ErrUnavailable})
	if !strings.Contains(b.String(), "503 Service Unavailable") || !strings.Contains(b.String(), "restarting") {
		t.Errorf("503: %q", b.String())
	}
}

func TestStatusText(t *testing.T) {
	cases := map[int]string{200: "OK", 400: "Bad Request", 404: "Not Found",
		405: "Method Not Allowed", 503: "Service Unavailable", 599: "Internal Server Error"}
	for code, want := range cases {
		if got := StatusText(code); got != want {
			t.Errorf("StatusText(%d) = %q", code, got)
		}
	}
}
