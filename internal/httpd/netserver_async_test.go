package httpd

import (
	"errors"
	"testing"

	"repro/internal/submit"
)

// TestRespondAsyncClosedQueue pins a regression sdradlint's errclass
// analyzer surfaced: a request admitted to the submission queues but
// resolved by Close (so the drain loop never filled its response) was
// answered with a zero-value Response — status 0, no error — instead of
// a 503 carrying the typed ErrClosed.
func TestRespondAsyncClosedQueue(t *testing.T) {
	resp := respondAsync(&asyncReq{}, submit.Resolved(submit.ErrClosed))
	if !errors.Is(resp.Err, submit.ErrClosed) {
		t.Fatalf("closed-queue response carries err %v, want submit.ErrClosed", resp.Err)
	}
	if resp.Status != 503 {
		t.Fatalf("closed-queue response has status %d, want 503", resp.Status)
	}
}

// TestRespondAsyncFilled returns the drain loop's response verbatim on
// clean resolution.
func TestRespondAsyncFilled(t *testing.T) {
	a := &asyncReq{resp: Response{Status: 200, Body: []byte("ok")}}
	resp := respondAsync(a, submit.Resolved(nil))
	if resp.Status != 200 || string(resp.Body) != "ok" || resp.Err != nil {
		t.Fatalf("clean resolution returned %+v, want the drain loop's response", resp)
	}
}
