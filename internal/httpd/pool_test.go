package httpd

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// startNetWith serves ns on a real TCP listener and returns its address
// plus a shutdown func.
func startNetWith(t *testing.T, ns *NetServer) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ns.Serve(ln) }()
	return ln.Addr().String(), func() {
		if err := ln.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

func newPool(t *testing.T, workers int) *Pool {
	t.Helper()
	p, err := NewPool(core.DefaultConfig(), Config{Mode: ModeSDRaD, Workers: 2}, workers)
	if err != nil {
		t.Fatal(err)
	}
	p.HandleFunc("/", []byte("<html>pooled</html>"))
	return p
}

// TestPoolParallelMixedTraffic hammers the pool from many goroutines
// with benign and exploit requests (run under -race): every benign
// request gets 200, every exploit is contained as 400, and the
// aggregated stats account for all of it.
func TestPoolParallelMixedTraffic(t *testing.T) {
	const goroutines, iterations = 8, 60
	p := newPool(t, 4)
	benign := BuildRequest("GET", "/", nil)
	evil := BuildRequest("GET", "/", map[string]string{AttackHeader: "pwn"})

	var wg sync.WaitGroup
	var attacks, failures atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				if i%10 == g%10 {
					attacks.Add(1)
					resp := p.Serve(g, evil)
					if resp.Status != 400 || !resp.Contained {
						t.Errorf("goroutine %d: exploit -> %d contained=%v err=%v",
							g, resp.Status, resp.Contained, resp.Err)
						failures.Add(1)
					}
					continue
				}
				resp := p.Serve(g, benign)
				if resp.Status != 200 {
					t.Errorf("goroutine %d: benign -> %d err=%v", g, resp.Status, resp.Err)
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d requests misbehaved", failures.Load())
	}
	st := p.Stats()
	if st.Requests != goroutines*iterations {
		t.Errorf("Requests = %d, want %d", st.Requests, goroutines*iterations)
	}
	if st.Violations != attacks.Load() {
		t.Errorf("Violations = %d, want %d", st.Violations, attacks.Load())
	}
	if st.Crashes != 0 {
		t.Errorf("Crashes = %d", st.Crashes)
	}
	if p.TotalVirtualTime() < p.VirtualTime() {
		t.Error("total virtual time below parallel makespan")
	}
}

// TestPoolNetServerEndToEnd drives the pooled TCP path.
func TestPoolNetServerEndToEnd(t *testing.T) {
	p := newPool(t, 3)
	addr, stop := startNetWith(t, NewNetServerPool(p, nil))
	defer stop()

	out := httpGet(t, addr, nil)
	if !strings.HasPrefix(out, "HTTP/1.1 200 OK\r\n") || !strings.Contains(out, "<html>pooled</html>") {
		t.Errorf("response: %q", out)
	}
	out = httpGet(t, addr, map[string]string{AttackHeader: "1"})
	if !strings.HasPrefix(out, "HTTP/1.1 400") {
		t.Errorf("attack response: %q", out)
	}
	// Still serving after containment.
	out = httpGet(t, addr, nil)
	if !strings.HasPrefix(out, "HTTP/1.1 200") {
		t.Errorf("post-attack response: %q", out)
	}
	if st := p.Stats(); st.Violations != 1 {
		t.Errorf("Violations = %d, want 1", st.Violations)
	}
}

func TestPoolDefaults(t *testing.T) {
	p, err := NewPool(core.DefaultConfig(), Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() != 1 {
		t.Errorf("Workers = %d, want 1", p.Workers())
	}
	if p.Mode() != ModeSDRaD {
		t.Errorf("Mode = %v", p.Mode())
	}
}
