package httpd

import (
	"strings"
	"testing"

	"repro/internal/attackgen"
	"repro/internal/core"
)

// FuzzParse checks the HTTP head parser never panics and that accepted
// requests satisfy the structural limits.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"GET / HTTP/1.1\r\n\r\n",
		"GET /path HTTP/1.0\r\nhost: x\r\naccept: */*\r\n\r\n",
		"POST /x HTTP/1.1\r\ncontent-length: 3\r\n\r\n",
		"GET / HTTP/1.1\r\nbad header\r\n\r\n",
		"\r\n\r\n",
		"GET  HTTP/1.1\r\n\r\n",
		strings.Repeat("A", 5000) + "\r\n\r\n",
		"GET / HTTP/1.1\r\n" + strings.Repeat("h: v\r\n", 200) + "\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		pr, err := parse(in)
		if err != nil {
			return
		}
		if pr.Method == "" || !strings.HasPrefix(pr.Path, "/") || !strings.HasPrefix(pr.Proto, "HTTP/") {
			t.Errorf("accepted malformed request line: %+v", pr)
		}
		if len(pr.Headers) > MaxHeaders {
			t.Errorf("accepted %d headers", len(pr.Headers))
		}
	})
}

// FuzzServeSDRaD drives arbitrary request bytes through the full SDRaD
// serve path — in-domain parse, attack-header injection, routing — and
// asserts the supervisor contract: malformed input gets a 4xx, a
// triggered parser bug is contained as a detection (the parse domain
// rewinds), and the supervisor never panics and keeps serving.
func FuzzServeSDRaD(f *testing.F) {
	seeds := [][]byte{
		[]byte("GET / HTTP/1.1\r\nhost: x\r\n\r\n"),
		[]byte("HEAD /index.html HTTP/1.1\r\n\r\n"),
		[]byte("GET /missing HTTP/1.1\r\n\r\n"),
		[]byte("POST / HTTP/1.1\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\n" + AttackHeader + ": 1\r\n\r\n"),
		[]byte("GET  HTTP/1.1\r\n\r\n"),
		[]byte("\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nbad header\r\n\r\n"),
	}
	seeds = append(seeds, attackgen.MalformedHTTPCorpus(1, 16)...)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		sys := core.NewSystem(core.DefaultConfig())
		srv, err := NewServer(sys, Config{Mode: ModeSDRaD, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		srv.HandleFunc("/", []byte("home"))
		srv.HandleFunc("/index.html", []byte("index"))

		pr, perr := parse(in)
		_, attacked := pr.Headers[AttackHeader]
		attacked = attacked && perr == nil

		resp := srv.Serve(0, in)
		if attacked {
			// The injected parser bug must surface as a contained
			// detection, never a panic or a silent success.
			if !resp.Contained {
				t.Errorf("attack request not contained: %+v", resp)
			}
			if sys.Counters().Total() == 0 {
				t.Error("contained violation recorded no detection")
			}
			if st := srv.Stats(); st.Violations == 0 {
				t.Error("violation not accounted")
			}
		} else {
			if resp.Contained {
				t.Errorf("benign request %q reported contained", in)
			}
			if perr != nil && resp.Status != 400 && resp.Status != 500 {
				t.Errorf("malformed request %q got status %d, want 400", in, resp.Status)
			}
		}
		// The survivor keeps serving after any single request.
		probe := srv.Serve(1, []byte("GET / HTTP/1.1\r\n\r\n"))
		if probe.Status != 200 || probe.Contained {
			t.Errorf("server unserviceable after %q: %+v", in, probe)
		}
	})
}
