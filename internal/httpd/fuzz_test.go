package httpd

import (
	"strings"
	"testing"
)

// FuzzParse checks the HTTP head parser never panics and that accepted
// requests satisfy the structural limits.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"GET / HTTP/1.1\r\n\r\n",
		"GET /path HTTP/1.0\r\nhost: x\r\naccept: */*\r\n\r\n",
		"POST /x HTTP/1.1\r\ncontent-length: 3\r\n\r\n",
		"GET / HTTP/1.1\r\nbad header\r\n\r\n",
		"\r\n\r\n",
		"GET  HTTP/1.1\r\n\r\n",
		strings.Repeat("A", 5000) + "\r\n\r\n",
		"GET / HTTP/1.1\r\n" + strings.Repeat("h: v\r\n", 200) + "\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		pr, err := parse(in)
		if err != nil {
			return
		}
		if pr.Method == "" || !strings.HasPrefix(pr.Path, "/") || !strings.HasPrefix(pr.Proto, "HTTP/") {
			t.Errorf("accepted malformed request line: %+v", pr)
		}
		if len(pr.Headers) > MaxHeaders {
			t.Errorf("accepted %d headers", len(pr.Headers))
		}
	})
}
