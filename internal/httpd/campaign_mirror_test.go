package httpd

import (
	"strings"
	"testing"

	"repro/internal/attackgen"
	"repro/internal/campaign"
	"repro/internal/workload"
)

// TestCampaignParserMirrorsParse pins campaign.ParseHTTP (the engine's
// in-domain grammar mirror, which cannot import this package) to the
// production head parser: on every corpus input the two must agree on
// acceptance, and on accepted inputs the method and path must match.
// Unlike the kvstore pair, both parsers consume one complete head, so
// the equivalence is exact in both directions.
func TestCampaignParserMirrorsParse(t *testing.T) {
	gen, err := workload.NewHTTP(workload.HTTPConfig{Seed: 5, ExtraHeaders: 3})
	if err != nil {
		t.Fatal(err)
	}
	var corpus [][]byte
	for i := 0; i < 200; i++ {
		corpus = append(corpus, gen.Next().Raw)
	}
	corpus = append(corpus, attackgen.MalformedHTTPCorpus(5, 200)...)
	corpus = append(corpus,
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		[]byte("HEAD /x HTTP/1.0\r\nhost: h\r\n\r\n"),
		[]byte("GET "+strings.Repeat("a", MaxRequestLine+10)+" HTTP/1.1\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nh: "+strings.Repeat("v", MaxHeaderLine+10)+"\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\n"+strings.Repeat("a: b\r\n", MaxHeaders+5)+"\r\n"),
		[]byte("GET / HTTP/1.1\r\nbad header\r\n\r\n"),
		[]byte("GET  HTTP/1.1\r\n\r\n"),
		[]byte("GET x HTTP/1.1\r\n\r\n"),
		[]byte("GET / FTP/1.1\r\n\r\n"),
		[]byte("\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\n"),
	)

	for _, in := range corpus {
		method, path, ok := campaign.ParseHTTP(in)
		pr, perr := parse(in)
		if ok != (perr == nil) {
			t.Errorf("parsers disagree on acceptance of %q: campaign %v, httpd err %v", in, ok, perr)
			continue
		}
		if ok && (pr.Method != method || pr.Path != path) {
			t.Errorf("parsers disagree on %q: campaign %s %s vs httpd %s %s",
				in, method, path, pr.Method, pr.Path)
		}
	}
}
