// Package httpd implements the NGINX-like static web server used as the
// paper's second use case.
//
// The compartmentalization pattern matches the SDRaD NGINX retrofit:
// request parsing — the code that touches untrusted bytes — runs inside a
// per-request isolated domain, while the routing table and content
// (trusted, long-lived state) stay in the root. A malicious request that
// triggers a parser bug (the injectable bug here is a stack-buffer
// overflow, the classic nginx CVE shape) is contained: the parsing domain
// is rewound and the connection dropped, with no worker crash and no
// impact on other clients. Native mode provides the crash-and-restart
// baseline.
package httpd

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	sdrad "repro"
	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pku"
	"repro/internal/procmodel"
	"repro/internal/vclock"
)

// Parser limits, mirroring nginx defaults.
const (
	// MaxRequestLine bounds the request line length.
	MaxRequestLine = 4096
	// MaxHeaders bounds the number of header lines.
	MaxHeaders = 100
	// MaxHeaderLine bounds one header line's length.
	MaxHeaderLine = 4096
)

// Sentinel errors.
var (
	// ErrMalformed is returned for syntactically invalid requests (maps
	// to a 400 response).
	ErrMalformed = errors.New("httpd: malformed request")
	// ErrUnavailable is the client-visible failure during a native
	// restart window (maps to a 503).
	ErrUnavailable = errors.New("httpd: service unavailable (restarting)")
)

// AttackHeader marks a request as triggering the injected parser bug
// (standing in for a crafted exploit payload).
const AttackHeader = "x-exploit"

// ParsedRequest is the outcome of parsing one HTTP/1.1 request.
type ParsedRequest struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string
}

// parse parses an HTTP/1.1 request head from b. It is deliberately
// strict: any structural error returns ErrMalformed.
func parse(b []byte) (ParsedRequest, error) {
	text := string(b)
	head, _, found := strings.Cut(text, "\r\n\r\n")
	if !found {
		return ParsedRequest{}, fmt.Errorf("%w: missing head terminator", ErrMalformed)
	}
	lines := strings.Split(head, "\r\n")
	if len(lines[0]) > MaxRequestLine {
		return ParsedRequest{}, fmt.Errorf("%w: request line too long", ErrMalformed)
	}
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 {
		return ParsedRequest{}, fmt.Errorf("%w: bad request line %q", ErrMalformed, lines[0])
	}
	pr := ParsedRequest{
		Method:  parts[0],
		Path:    parts[1],
		Proto:   parts[2],
		Headers: make(map[string]string, len(lines)-1),
	}
	if pr.Method == "" || !strings.HasPrefix(pr.Path, "/") || !strings.HasPrefix(pr.Proto, "HTTP/") {
		return ParsedRequest{}, fmt.Errorf("%w: bad request line %q", ErrMalformed, lines[0])
	}
	if len(lines)-1 > MaxHeaders {
		return ParsedRequest{}, fmt.Errorf("%w: too many headers", ErrMalformed)
	}
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		if len(ln) > MaxHeaderLine {
			return ParsedRequest{}, fmt.Errorf("%w: header line too long", ErrMalformed)
		}
		name, value, found := strings.Cut(ln, ":")
		if !found || name == "" {
			return ParsedRequest{}, fmt.Errorf("%w: bad header %q", ErrMalformed, ln)
		}
		pr.Headers[strings.ToLower(strings.TrimSpace(name))] = strings.TrimSpace(value)
	}
	return pr, nil
}

// Mode selects the server's resilience strategy.
type Mode uint8

// Server modes.
const (
	ModeNative Mode = iota + 1
	ModeSDRaD
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeSDRaD:
		return "sdrad"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Response is the outcome of serving one request.
type Response struct {
	Status int
	Body   []byte
	// Err is the transport-level failure, if any.
	Err error
	// Latency is the virtual service time.
	Latency time.Duration
	// Contained reports a rewound parser-domain violation.
	Contained bool
	// RetryAfterCycles, when nonzero, is the quantized virtual-cycle
	// retry hint an overload/admission rejection carries; the wire
	// response renders it as a Retry-After header.
	RetryAfterCycles uint64
}

// Config configures a Server.
type Config struct {
	// Mode selects native vs SDRaD (default SDRaD).
	Mode Mode
	// Workers is the number of parsing domains (default 4).
	Workers int
	// FirstWorkerUDI is the UDI of the first parsing domain (default 30).
	FirstWorkerUDI core.UDI
	// InterArrival spaces request arrivals (default 100µs).
	InterArrival time.Duration
	// AttackKind is the injected parser bug class (default StackSmash).
	AttackKind fault.Kind
}

func (c *Config) fill() {
	if c.Mode == 0 {
		c.Mode = ModeSDRaD
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.FirstWorkerUDI == 0 {
		c.FirstWorkerUDI = 30
	}
	if c.InterArrival <= 0 {
		c.InterArrival = 100 * time.Microsecond
	}
	if c.AttackKind == 0 {
		c.AttackKind = fault.StackSmash
	}
}

// Server is the static web server. Create with NewServer; not safe for
// concurrent use.
type Server struct {
	sys     *core.System
	cfg     Config
	routes  map[string][]byte
	workers []*sdrad.Domain
	scratch *alloc.Heap
	// parseBuf and headBuf are reusable host-side staging buffers (the
	// server is single-threaded): parseBuf stages the request bytes for
	// the parse, headBuf the fixed-size response head.
	parseBuf []byte
	headBuf  []byte

	downUntil uint64

	requests   uint64
	violations uint64
	crashes    uint64
	dropped    uint64
	preempted  uint64
}

// NewServer builds a server on sys.
func NewServer(sys *core.System, cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{sys: sys, cfg: cfg, routes: make(map[string][]byte)}
	switch cfg.Mode {
	case ModeSDRaD:
		sup := sdrad.Attach(sys)
		for i := 0; i < cfg.Workers; i++ {
			udi := cfg.FirstWorkerUDI + core.UDI(i)
			if _, err := sys.InitDomain(udi, core.DomainConfig{
				HeapPages:  8,
				StackPages: 4,
			}); err != nil {
				return nil, fmt.Errorf("httpd: worker %d: %w", i, err)
			}
			d, err := sup.DomainAt(int(udi))
			if err != nil {
				return nil, fmt.Errorf("httpd: worker %d: %w", i, err)
			}
			s.workers = append(s.workers, d)
		}
	case ModeNative:
		h, err := alloc.New(sys.Mem(), pku.DefaultKey, alloc.Config{InitialPages: 8})
		if err != nil {
			return nil, fmt.Errorf("httpd: scratch heap: %w", err)
		}
		s.scratch = h
	default:
		return nil, fmt.Errorf("httpd: unknown mode %v", cfg.Mode)
	}
	return s, nil
}

// Mode returns the server's mode.
func (s *Server) Mode() Mode { return s.cfg.Mode }

// Workers returns the live parsing-domain count (0 outside SDRaD mode).
func (s *Server) Workers() int { return len(s.workers) }

// MaxResizeWorkers caps ResizeWorkers: each parsing domain consumes one
// of the simulated machine's 16 protection keys, and the default key
// and the root-protected key are spoken for.
const MaxResizeWorkers = 12

// ResizeWorkers grows or shrinks the parsing-domain set to n (SDRaD
// mode only). Parsing domains are pristine between requests, so the
// count is purely a concurrency/placement knob: a request's response is
// identical whichever domain parses it. Grown workers are fresh domains
// at the next UDIs; shrinking deinitializes the tail workers (releasing
// their protection keys and pages).
func (s *Server) ResizeWorkers(n int) error {
	if s.cfg.Mode != ModeSDRaD {
		return fmt.Errorf("httpd: resize workers: mode %v has no parsing domains", s.cfg.Mode)
	}
	if n < 1 || n > MaxResizeWorkers {
		return fmt.Errorf("httpd: resize workers: %d out of range [1, %d]", n, MaxResizeWorkers)
	}
	cur := len(s.workers)
	if n > cur {
		sup := sdrad.Attach(s.sys)
		for i := cur; i < n; i++ {
			udi := s.cfg.FirstWorkerUDI + core.UDI(i)
			if _, err := s.sys.InitDomain(udi, core.DomainConfig{
				HeapPages:  8,
				StackPages: 4,
			}); err != nil {
				return fmt.Errorf("httpd: resize worker %d: %w", i, err)
			}
			d, err := sup.DomainAt(int(udi))
			if err != nil {
				return fmt.Errorf("httpd: resize worker %d: %w", i, err)
			}
			s.workers = append(s.workers, d)
		}
	}
	for i := cur - 1; i >= n; i-- {
		if err := s.workers[i].Close(); err != nil {
			return fmt.Errorf("httpd: retire worker %d: %w", i, err)
		}
		s.workers = s.workers[:i]
	}
	s.cfg.Workers = n
	return nil
}

// HandleFunc registers static content for GET path.
func (s *Server) HandleFunc(path string, content []byte) {
	s.routes[path] = content
}

// Stats reports server accounting.
type Stats struct {
	Requests   uint64
	Violations uint64
	Crashes    uint64
	Dropped    uint64
	// Preempted counts requests cancelled by their context: the parse
	// run exhausted its deadline-derived virtual-cycle budget, or the
	// context expired before the domain was entered.
	Preempted uint64
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{Requests: s.requests, Violations: s.violations, Crashes: s.crashes, Dropped: s.dropped, Preempted: s.preempted}
}

// ContentBytes returns the total bytes of registered content (the state a
// restart reloads).
func (s *Server) ContentBytes() uint64 {
	var n uint64
	//lint:detorder commutative uint64 sum; iteration order cannot change the total
	for _, c := range s.routes {
		n += uint64(len(c))
	}
	return n
}

// Serve handles one raw HTTP request from clientID. It is ServeContext
// with a background context.
func (s *Server) Serve(clientID int, raw []byte) Response {
	return s.ServeContext(context.Background(), clientID, raw)
}

// ServeContext handles one raw HTTP request from clientID. In SDRaD mode
// a ctx deadline bounds the parse run with a virtual-cycle budget: a
// request that exhausts it gets a 408 and the parsing domain is rewound,
// exactly like a contained exploit.
func (s *Server) ServeContext(ctx context.Context, clientID int, raw []byte) Response {
	s.requests++
	clk := s.sys.Clock()
	cost := clk.Model()
	clk.AdvanceTime(s.cfg.InterArrival)

	if s.cfg.Mode == ModeNative && clk.Cycles() < s.downUntil {
		s.dropped++
		return Response{Status: 503, Err: ErrUnavailable}
	}

	start := clk.Cycles()
	clk.Advance(2 * cost.Syscall) // accept/read + write/close

	var resp Response
	switch s.cfg.Mode {
	case ModeSDRaD:
		resp = s.serveSDRaD(ctx, clientID, raw)
	default:
		resp = s.serveNative(raw)
	}
	resp.Latency = vclock.CyclesToDuration(clk.Cycles()-start, cost.CPUHz)
	return resp
}

// serveSDRaD parses inside the client's parsing domain via the Runner
// API; routing and content live in the trusted root.
func (s *Server) serveSDRaD(ctx context.Context, clientID int, raw []byte) Response {
	d := s.workers[clientID%len(s.workers)]
	var pr ParsedRequest
	var perr error
	verr := d.Do(ctx, s.parseFn(raw, &pr, &perr))
	return s.finishSDRaD(d, pr, perr, verr)
}

// parseFn builds the in-domain half of one request: stage the raw bytes
// into the parsing domain, parse them there, trigger the injected bug
// on attack-marked requests. The results land in *pr/*perr (overwritten
// on a batch replay — the at-least-once contract). Shared by the serial
// and batched paths.
func (s *Server) parseFn(raw []byte, pr *ParsedRequest, perr *error) func(*sdrad.Ctx) error {
	return func(c *sdrad.Ctx) error {
		buf := c.MustAlloc(len(raw) + 1)
		c.MustStore(buf, raw)
		tmp := s.stage(len(raw))
		c.MustLoad(buf, tmp)
		*pr, *perr = parse(tmp)
		if *perr == nil {
			if _, attacked := pr.Headers[AttackHeader]; attacked {
				fault.Inject(c, s.cfg.AttackKind, 0)
			}
		}
		c.MustFree(buf)
		return nil
	}
}

// finishSDRaD classifies the parse outcome and, for clean requests,
// routes and stages the response head into the parsing domain.
func (s *Server) finishSDRaD(d *sdrad.Domain, pr ParsedRequest, perr error, verr error) Response {
	if v, ok := core.IsViolation(verr); ok {
		s.violations++
		return Response{Status: 400, Err: v, Contained: true}
	}
	if b, ok := core.IsBudget(verr); ok {
		s.preempted++
		return Response{Status: 408, Err: b}
	}
	if errors.Is(verr, context.DeadlineExceeded) || errors.Is(verr, context.Canceled) {
		// The deadline passed (or the caller cancelled) before the parse
		// domain was ever entered — e.g. the request sat queued behind a
		// busy shard. Same client-visible outcome as a mid-run preemption.
		s.preempted++
		return Response{Status: 408, Err: verr}
	}
	if verr != nil {
		return Response{Status: 500, Err: verr}
	}
	if perr != nil {
		return Response{Status: 400, Err: perr}
	}
	resp := s.route(pr)
	// Response staging: the status line and headers are written into the
	// connection's output buffer, which belongs to the parsing domain.
	// This cross-boundary copy exists only in SDRaD mode.
	const headLen = 128
	out, aerr := d.Alloc(headLen)
	if aerr != nil {
		return Response{Status: 500, Err: aerr}
	}
	if cap(s.headBuf) < headLen {
		s.headBuf = make([]byte, headLen)
	}
	head := s.headBuf[:headLen]
	clear(head)
	copy(head, fmt.Sprintf("HTTP/1.1 %d\r\ncontent-length: %d\r\n\r\n", resp.Status, len(resp.Body)))
	if cerr := d.Write(out, head); cerr != nil {
		return Response{Status: 500, Err: cerr}
	}
	if ferr := d.Free(out); ferr != nil {
		return Response{Status: 500, Err: ferr}
	}
	return resp
}

// BatchRequest is one request of a server batch: the submitting client,
// the raw request bytes, and its own context (whose deadline maps to
// that request's virtual-cycle budget). A nil Ctx means no deadline.
type BatchRequest struct {
	Ctx      context.Context
	ClientID int
	Raw      []byte
}

// ServeBatch serves a batch of pipelined requests as one unit — the
// submission-queue fast path. In SDRaD mode the batch pays one network
// round trip and groups requests per parsing domain so each group
// shares one domain Enter/Exit and one integrity sweep
// (Domain.DoBatchItems; a faulting group transparently re-derives
// outcomes serially, so per-request results match serial ServeContext).
// Routing runs in arrival order after the parses. Native mode falls
// back to per-request handling.
func (s *Server) ServeBatch(batch []BatchRequest) []Response {
	out := make([]Response, len(batch))
	if len(batch) == 0 {
		return out
	}
	if s.cfg.Mode != ModeSDRaD || len(batch) == 1 {
		for i, r := range batch {
			out[i] = s.ServeContext(batchCtx(r.Ctx), r.ClientID, r.Raw)
		}
		return out
	}
	clk := s.sys.Clock()
	cost := clk.Model()
	s.requests += uint64(len(batch))
	clk.AdvanceTime(time.Duration(len(batch)) * s.cfg.InterArrival) // arrival spacing
	start := clk.Cycles()
	clk.Advance(2 * cost.Syscall) // one pipelined accept/read + write for the batch

	// Partition by parsing domain (stable): every group shares one entry.
	type parseResult struct {
		pr   ParsedRequest
		perr error
		verr error
	}
	res := make([]parseResult, len(batch))
	groups := make([][]int, len(s.workers))
	for i, r := range batch {
		w := r.ClientID % len(s.workers)
		groups[w] = append(groups[w], i)
	}
	for w, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		items := make([]sdrad.BatchItem, len(idxs))
		for k, i := range idxs {
			items[k] = sdrad.BatchItem{
				Ctx: batchCtx(batch[i].Ctx),
				Fn:  s.parseFn(batch[i].Raw, &res[i].pr, &res[i].perr),
			}
		}
		for k, err := range s.workers[w].DoBatchItems(items) {
			res[idxs[k]].verr = err
		}
	}

	// Route in arrival order.
	for i, r := range batch {
		d := s.workers[r.ClientID%len(s.workers)]
		resp := s.finishSDRaD(d, res[i].pr, res[i].perr, res[i].verr)
		resp.Latency = vclock.CyclesToDuration(clk.Cycles()-start, cost.CPUHz)
		out[i] = resp
	}
	return out
}

func batchCtx(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// serveNative parses in unprotected memory; the injected bug crashes the
// process.
func (s *Server) serveNative(raw []byte) Response {
	buf, err := s.scratch.Alloc(len(raw) + 1)
	if err != nil {
		return Response{Status: 500, Err: err}
	}
	m := s.sys.Mem()
	if err := m.StoreBytes(pku.PKRUAllowAll, buf, raw); err != nil {
		return Response{Status: 500, Err: err}
	}
	tmp := s.stage(len(raw))
	if err := m.LoadBytes(pku.PKRUAllowAll, buf, tmp); err != nil {
		return Response{Status: 500, Err: err}
	}
	pr, perr := parse(tmp)
	if perr == nil {
		if _, attacked := pr.Headers[AttackHeader]; attacked {
			return s.crash()
		}
	}
	if err := s.scratch.Free(buf); err != nil {
		return Response{Status: 500, Err: err}
	}
	if perr != nil {
		return Response{Status: 400, Err: perr}
	}
	return s.route(pr)
}

func (s *Server) crash() Response {
	s.crashes++
	clk := s.sys.Clock()
	restart := procmodel.ProcessRestart{Cost: clk.Model()}.RecoveryTime(s.ContentBytes())
	s.downUntil = clk.Cycles() + vclock.DurationToCycles(restart, clk.Model().CPUHz)
	if err := s.scratch.ResetNoZero(); err != nil {
		return Response{Status: 500, Err: err}
	}
	return Response{Status: 500, Err: fmt.Errorf("httpd: worker crashed (restart %v): %w", restart, ErrUnavailable)}
}

// route resolves the parsed request against the static routing table and
// charges the content copy.
func (s *Server) route(pr ParsedRequest) Response {
	if pr.Method != "GET" && pr.Method != "HEAD" {
		return Response{Status: 405}
	}
	content, ok := s.routes[pr.Path]
	if !ok {
		return Response{Status: 404}
	}
	// Charge the body copy (sendfile-ish per-byte cost).
	s.sys.Clock().Advance(s.sys.Clock().Model().MemPerByte * uint64(len(content)))
	if pr.Method == "HEAD" {
		return Response{Status: 200}
	}
	body := make([]byte, len(content))
	copy(body, content)
	return Response{Status: 200, Body: body}
}

// BuildRequest renders a well-formed HTTP/1.1 request for tests and
// load generators. Headers are emitted in sorted key order so two
// renders of the same request are byte-identical: request bytes feed
// workload streams and campaign traces, where map-iteration order would
// show up as a same-seed trace diff.
func BuildRequest(method, path string, headers map[string]string) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", method, path)
	b.WriteString("host: localhost\r\n")
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, headers[k])
	}
	b.WriteString("\r\n")
	return []byte(b.String())
}

// Interface compliance check.
var _ fmt.Stringer = ModeNative

// stage returns the server's reusable n-byte parse staging buffer.
func (s *Server) stage(n int) []byte {
	if cap(s.parseBuf) < n {
		s.parseBuf = make([]byte, n)
	}
	return s.parseBuf[:n]
}
