package httpd

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dispatch"
	"repro/internal/submit"
)

// NetServer serves HTTP/1.1 over TCP on top of a Server or a Pool, with
// connections multiplexing on real sockets. One request per connection
// (Connection: close semantics) keeps the demo loop simple.
type NetServer struct {
	handle func(ctx context.Context, clientID int, raw []byte) Response
	log    *log.Logger

	// reqTimeout, when non-zero, caps each request with a context
	// deadline (mapped to a virtual-cycle budget by the server).
	reqTimeout time.Duration

	// queues is the async submission layer (batched servers only).
	queues *submit.Queues

	connMu sync.Mutex
	nextID int
	wg     sync.WaitGroup
}

// NewNetServer wraps srv for TCP serving; logger may be nil. The single
// Server owns one simulated core, so request handling is serialized
// behind a mutex.
func NewNetServer(srv *Server, logger *log.Logger) *NetServer {
	var mu sync.Mutex
	return &NetServer{
		log: logger,
		handle: func(ctx context.Context, clientID int, raw []byte) Response {
			mu.Lock()
			defer mu.Unlock()
			return srv.ServeContext(ctx, clientID, raw)
		},
	}
}

// NewNetServerPool wraps a Pool for TCP serving; logger may be nil. The
// pool synchronizes internally per worker, so requests on different
// workers execute in parallel.
func NewNetServerPool(p *Pool, logger *log.Logger) *NetServer {
	return &NetServer{log: logger, handle: p.ServeContext}
}

// asyncReq is one connection request in flight through the submission
// queues; the drain loop fills resp before resolving the future.
type asyncReq struct {
	clientID int
	raw      []byte
	resp     Response
}

// NewBatchedNetServerPool wraps a Pool for TCP serving through the
// asynchronous submission layer: connections enqueue into bounded
// per-worker queues (internal/submit) and one drain loop per worker
// coalesces up to maxBatch queued requests into a single pipelined
// Server.ServeBatch — one domain Enter per parsing-domain group instead
// of per request. maxInflight bounds admitted-but-unanswered requests
// across the pool (<= 0 means 1024); at capacity new requests are
// answered 503 immediately (admission control / backpressure). Call
// Close after Serve returns to stop the drain loops.
func NewBatchedNetServerPool(p *Pool, logger *log.Logger, maxInflight, maxBatch int) (*NetServer, error) {
	if maxInflight <= 0 {
		maxInflight = 1024
	}
	depth := maxInflight / p.Workers()
	if depth < 1 {
		depth = 1
	}
	var rr atomic.Uint64
	q, err := submit.New(submit.Config{
		Workers:  p.Workers(),
		Depth:    depth,
		MaxBatch: maxBatch,
		Exec: func(si int, tasks []*submit.Task) {
			batch := make([]BatchRequest, len(tasks))
			for i, t := range tasks {
				a := t.Payload.(*asyncReq)
				batch[i] = BatchRequest{Ctx: t.Ctx, ClientID: a.clientID, Raw: a.raw}
			}
			resps := p.serveBatch(si, batch)
			for i, t := range tasks {
				t.Payload.(*asyncReq).resp = resps[i]
				t.Resolve(nil)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	n := &NetServer{log: logger, queues: q}
	n.handle = func(ctx context.Context, clientID int, raw []byte) Response {
		a := &asyncReq{clientID: clientID, raw: raw}
		w := dispatch.LeastLoaded(p.Workers(), int(rr.Add(1)-1), q.Load)
		fut, err := q.Submit(w, ctx, a)
		if _, over := submit.IsOverload(err); over {
			// Requests are stateless, so a full first pick fails over to
			// any other worker's queue; only a pool-wide full sheds.
			for i := 1; i < p.Workers(); i++ {
				fut, err = q.Submit((w+i)%p.Workers(), ctx, a)
				if _, over = submit.IsOverload(err); !over {
					break
				}
			}
		}
		if err != nil {
			// Overload (every queue full) or closed: shed with 503.
			return Response{Status: 503, Err: err}
		}
		return respondAsync(a, fut)
	}
	return n, nil
}

// respondAsync maps an admitted request's future onto its response,
// waiting for resolution. A non-nil resolution means the drain loop
// never filled resp (the queues closed underneath the admitted
// request), so answer 503 with the typed error instead of a zero
// Response.
func respondAsync(a *asyncReq, fut *submit.Future) Response {
	if ferr := fut.Err(); ferr != nil {
		return Response{Status: 503, Err: ferr}
	}
	return a.resp
}

// Close stops the batched submission layer, if this server has one:
// queued requests are answered and the drain loops exit. Serve must
// have returned (or never been called).
func (n *NetServer) Close() {
	if n.queues != nil {
		n.queues.Flush()
		n.queues.Close()
	}
}

// SetRequestTimeout installs a per-request deadline (0 disables it, the
// default). Call before Serve.
func (n *NetServer) SetRequestTimeout(d time.Duration) { n.reqTimeout = d }

func (n *NetServer) logf(format string, args ...any) {
	if n.log != nil {
		n.log.Printf(format, args...)
	}
}

// Serve accepts connections until ln closes, then drains in-flight
// connections.
func (n *NetServer) Serve(ln net.Listener) error {
	defer n.wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("httpd: accept: %w", err)
		}
		n.connMu.Lock()
		n.nextID++
		id := n.nextID
		n.connMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				if cerr := conn.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
					n.logf("conn %d close: %v", id, cerr)
				}
			}()
			n.serveConn(id, conn)
		}()
	}
}

func (n *NetServer) serveConn(id int, conn io.ReadWriter) {
	raw, err := ReadRequestHead(bufio.NewReader(conn))
	if err != nil {
		n.logf("conn %d read: %v", id, err)
		return
	}
	ctx := context.Background()
	if n.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.reqTimeout)
		defer cancel()
	}
	resp := n.handle(ctx, id, raw)
	if resp.Contained {
		n.logf("conn %d: contained parser exploit (domain rewound)", id)
	}
	WriteHTTPResponse(conn, resp)
}

// ReadRequestHead reads bytes up to and including the blank line that
// terminates an HTTP request head.
func ReadRequestHead(r *bufio.Reader) ([]byte, error) {
	var buf []byte
	for {
		line, err := r.ReadBytes('\n')
		buf = append(buf, line...)
		if err != nil {
			if errors.Is(err, io.EOF) && len(buf) > 0 {
				return buf, nil
			}
			return nil, err
		}
		if string(line) == "\r\n" || string(line) == "\n" {
			return buf, nil
		}
		if len(buf) > 64<<10 {
			return nil, errors.New("httpd: request head too large")
		}
	}
}

// WriteHTTPResponse renders resp on the wire with Connection: close.
func WriteHTTPResponse(w io.Writer, resp Response) {
	status := resp.Status
	if status == 0 {
		status = 500
	}
	body := resp.Body
	if body == nil && resp.Err != nil {
		body = []byte(resp.Err.Error() + "\n")
	}
	_, err := fmt.Fprintf(w, "HTTP/1.1 %d %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
		status, StatusText(status), len(body))
	if err != nil {
		return
	}
	_, _ = w.Write(body)
}

// StatusText returns the reason phrase for the status codes the server
// emits.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 408:
		return "Request Timeout"
	case 503:
		return "Service Unavailable"
	default:
		return "Internal Server Error"
	}
}
