package httpd

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dispatch"
	"repro/internal/gateway"
	"repro/internal/lifecycle"
	"repro/internal/submit"
)

// overloadRetryCyclesPerSlot is the virtual-cycle cost estimate behind
// the batched path's overload retry hint (one queue slot ≈ one request's
// service time). The hint is configured depth × this, quantized — the
// bare OverloadError's worker/occupancy detail depends on host timing
// and must never reach the wire.
const overloadRetryCyclesPerSlot = 300_000

// NetServer serves HTTP/1.1 over TCP on top of a Server or a Pool, with
// connections multiplexing on real sockets. One request per connection
// (Connection: close semantics) keeps the demo loop simple.
type NetServer struct {
	handle func(ctx context.Context, clientID int, raw []byte) Response
	log    *log.Logger

	// reqTimeout, when non-zero, caps each request with a context
	// deadline (mapped to a virtual-cycle budget by the server).
	reqTimeout time.Duration

	// queues is the async submission layer (batched servers only).
	queues *submit.Queues

	// gw, when set, fronts every request with tenant admission and adds
	// the /healthz and /drainz lifecycle endpoints.
	gw      *gateway.Gateway
	workers int

	// resizeFn/workersFn abstract the parsing-domain resize over the
	// Server/Pool split (nil when the backend cannot resize).
	resizeFn  func(int) error
	workersFn func() int

	// lc is the shared lifecycle state machine: it memoizes Drain and
	// Close and rejects illegal transitions with a typed
	// *LifecycleError. The eager constructors return it pre-advanced to
	// Healthy; the deferred constructor leaves it Initializing.
	lc *lifecycle.Machine

	// elastic, when enabled, autoscales the parsing domains from
	// submission-queue backlog (batched pool servers only).
	elasticMu sync.Mutex
	elastic   *netElastic

	connMu sync.Mutex
	nextID int
	wg     sync.WaitGroup
}

// NewNetServer wraps srv for TCP serving; logger may be nil. The single
// Server owns one simulated core, so request handling is serialized
// behind a mutex.
func NewNetServer(srv *Server, logger *log.Logger) *NetServer {
	var mu sync.Mutex
	return servingNet(&NetServer{
		log: logger,
		handle: func(ctx context.Context, clientID int, raw []byte) Response {
			mu.Lock()
			defer mu.Unlock()
			return srv.ServeContext(ctx, clientID, raw)
		},
		workers: 1,
		resizeFn: func(k int) error {
			mu.Lock()
			defer mu.Unlock()
			return srv.ResizeWorkers(k)
		},
		workersFn: func() int {
			mu.Lock()
			defer mu.Unlock()
			return srv.Workers()
		},
	})
}

// servingNet advances a freshly built NetServer's lifecycle machine to
// Healthy — the eager-constructor pattern (resources were allocated
// inline, the server serves immediately).
func servingNet(n *NetServer) *NetServer {
	n.lc = lifecycle.NewMachine("httpd.NetServer")
	_ = n.lc.Init(nil)  //lint:errclass fresh machine; Init from StateInitializing cannot fail
	_ = n.lc.Start(nil) //lint:errclass inited machine; Start cannot fail
	return n
}

// NewNetServerPool wraps a Pool for TCP serving; logger may be nil. The
// pool synchronizes internally per worker, so requests on different
// workers execute in parallel.
func NewNetServerPool(p *Pool, logger *log.Logger) *NetServer {
	return servingNet(NewDeferredNetServerPool(p, logger))
}

// NewDeferredNetServerPool is NewNetServerPool without the lifecycle
// advancement: the returned server is Initializing, and Init + Start
// must run before it may Drain, Stop, or resize (Serve itself does not
// consult the machine — legacy constructors advance it for you).
func NewDeferredNetServerPool(p *Pool, logger *log.Logger) *NetServer {
	return &NetServer{
		log:       logger,
		handle:    p.ServeContext,
		workers:   p.Workers(),
		resizeFn:  p.ResizeWorkers,
		workersFn: p.ShardWorkers,
		lc:        lifecycle.NewMachine("httpd.NetServer"),
	}
}

// asyncReq is one connection request in flight through the submission
// queues; the drain loop fills resp before resolving the future.
type asyncReq struct {
	clientID int
	raw      []byte
	resp     Response
}

// NewBatchedNetServerPool wraps a Pool for TCP serving through the
// asynchronous submission layer: connections enqueue into bounded
// per-worker queues (internal/submit) and one drain loop per worker
// coalesces up to maxBatch queued requests into a single pipelined
// Server.ServeBatch — one domain Enter per parsing-domain group instead
// of per request. maxInflight bounds admitted-but-unanswered requests
// across the pool (<= 0 means 1024); at capacity new requests are
// answered 503 immediately with a deterministic Retry-After hint
// (admission control / backpressure). Call Close after Serve returns to
// stop the drain loops.
func NewBatchedNetServerPool(p *Pool, logger *log.Logger, maxInflight, maxBatch int) (*NetServer, error) {
	if maxInflight <= 0 {
		maxInflight = 1024
	}
	depth := maxInflight / p.Workers()
	if depth < 1 {
		depth = 1
	}
	var rr atomic.Uint64
	// n is assigned below; the drain loops only observe it after a task
	// travels through a queue, which happens-after the constructor
	// returns.
	var n *NetServer
	q, err := submit.New(submit.Config{
		Workers:  p.Workers(),
		Depth:    depth,
		MaxBatch: maxBatch,
		Exec: func(si int, tasks []*submit.Task) {
			batch := make([]BatchRequest, len(tasks))
			for i, t := range tasks {
				a := t.Payload.(*asyncReq)
				batch[i] = BatchRequest{Ctx: t.Ctx, ClientID: a.clientID, Raw: a.raw}
			}
			resps := p.serveBatch(si, batch)
			for i, t := range tasks {
				t.Payload.(*asyncReq).resp = resps[i]
				t.Resolve(nil)
			}
			// Elastic evaluation is event-driven (per executed batch):
			// no wall-clock timers on the simulated-machine side.
			n.maybeScale()
		},
	})
	if err != nil {
		return nil, err
	}
	n = servingNet(&NetServer{
		log:       logger,
		queues:    q,
		workers:   p.Workers(),
		resizeFn:  p.ResizeWorkers,
		workersFn: p.ShardWorkers,
	})
	n.handle = func(ctx context.Context, clientID int, raw []byte) Response {
		a := &asyncReq{clientID: clientID, raw: raw}
		w := dispatch.LeastLoaded(p.Workers(), int(rr.Add(1)-1), q.Load)
		fut, err := q.Submit(w, ctx, a)
		if _, over := submit.IsOverload(err); over {
			// Requests are stateless, so a full first pick fails over to
			// any other worker's queue; only a pool-wide full sheds.
			for i := 1; i < p.Workers(); i++ {
				fut, err = q.Submit((w+i)%p.Workers(), ctx, a)
				if _, over = submit.IsOverload(err); !over {
					break
				}
			}
		}
		if err != nil {
			// Overload (every queue full) or closed: shed with 503. The
			// overload case carries a deterministic cycles-quantized hint
			// computed from configuration, not from which queue rejected.
			if _, over := submit.IsOverload(err); over {
				cycles := gateway.QuantizeRetryCycles(uint64(q.Depth()) * overloadRetryCyclesPerSlot)
				return Response{
					Status:           503,
					Err:              &gateway.RetryHintError{Cycles: cycles, Cause: err},
					RetryAfterCycles: cycles,
				}
			}
			return Response{Status: 503, Err: err}
		}
		return respondAsync(a, fut)
	}
	return n, nil
}

// respondAsync maps an admitted request's future onto its response,
// waiting for resolution. A non-nil resolution means the drain loop
// never filled resp (the queues closed underneath the admitted
// request), so answer 503 with the typed error instead of a zero
// Response.
func respondAsync(a *asyncReq, fut *submit.Future) Response {
	if ferr := fut.Err(); ferr != nil {
		return Response{Status: 503, Err: ferr}
	}
	return a.resp
}

// SetGateway installs the tenant admission front tier: every request
// then requires a bearer token, passes per-tenant admission, and the
// /healthz and /drainz lifecycle endpoints come alive. Call before
// Serve.
func (n *NetServer) SetGateway(gw *gateway.Gateway) { n.gw = gw }

// Close stops the batched submission layer, if this server has one:
// queued requests are answered and the drain loops exit. Idempotent.
// Serve must have returned (or never been called).
func (n *NetServer) Close() error { return n.lc.Close(n.closeImpl) }

// Stop is the strict lifecycle form of Close: same teardown, but a
// second Stop returns a typed *LifecycleError instead of the memoized
// outcome. ctx is accepted for interface symmetry; teardown is bounded
// by the queue flush.
func (n *NetServer) Stop(ctx context.Context) error {
	_ = ctx
	return n.lc.Stop(n.closeImpl)
}

// closeImpl is the teardown the lifecycle machine memoizes.
func (n *NetServer) closeImpl() error {
	if n.queues != nil {
		n.queues.Flush()
		n.queues.Close()
	}
	return nil
}

// Init advances the lifecycle machine past resource allocation (the
// wrapped server or pool was allocated at construction). Only servers
// from NewDeferredNetServerPool need it; the eager constructors have
// already advanced the machine.
func (n *NetServer) Init() error { return n.lc.Init(nil) }

// Start moves the server to StateHealthy (see Init).
func (n *NetServer) Start() error { return n.lc.Start(nil) }

// State returns the server's lifecycle state.
func (n *NetServer) State() lifecycle.State { return n.lc.State() }

// Drain shuts the server down gracefully: stop admission (the gateway
// answers 503 draining), flush the submission queues so every admitted
// request is answered, then close them so stragglers get typed
// ErrClosed. The httpd tier holds no durable state, so the drain is
// complete once the queues are empty. Idempotent.
func (n *NetServer) Drain() error {
	return n.lc.Drain(func() error {
		if n.gw != nil {
			n.gw.StartDrain()
		}
		if n.queues != nil {
			n.queues.Flush()
			n.queues.Close()
		}
		return nil
	})
}

// Draining reports whether Drain has been called (and Stop has not yet
// superseded it).
func (n *NetServer) Draining() bool {
	return n.lc.State() == lifecycle.StateDraining
}

// ResizeWorkers grows or shrinks the parsing-domain set of the wrapped
// server (or of every worker of the wrapped pool) to k. Legal while
// Healthy or Degraded.
func (n *NetServer) ResizeWorkers(k int) error {
	if err := n.lc.Resizable(); err != nil {
		return err
	}
	if n.resizeFn == nil {
		return fmt.Errorf("httpd: resize workers: server has no resizable backend")
	}
	return n.resizeFn(k)
}

// netElastic is the parsing-domain autoscaler state. The controller is
// deliberately wall-clock-free: it evaluates once per executed batch
// (an event the virtual-time side already generates) and scales from
// submission-queue backlog.
type netElastic struct {
	min, max int
	// idle counts consecutive low-backlog evaluations; netShrinkIdleEvals
	// of them halve the worker set.
	idle    int
	grown   uint64
	shrunk  uint64
	maxSeen int
}

// netShrinkIdleEvals is the number of consecutive low-backlog batch
// evaluations before the elastic controller shrinks.
const netShrinkIdleEvals = 16

// EnableElastic turns on parsing-domain autoscaling between min and max
// domains per worker: the set doubles when the queued backlog reaches
// two batches per live domain and halves after a sustained idle
// stretch. Requires a batched pool server; call before Serve. The
// server starts at min domains.
func (n *NetServer) EnableElastic(min, max int) error {
	if err := n.lc.Resizable(); err != nil {
		return err
	}
	if n.queues == nil || n.resizeFn == nil {
		return fmt.Errorf("httpd: elastic mode needs a batched pool server")
	}
	if min < 1 || max < min || max > MaxResizeWorkers {
		return fmt.Errorf("httpd: elastic bounds [%d, %d] out of range [1, %d]", min, max, MaxResizeWorkers)
	}
	if err := n.resizeFn(min); err != nil {
		return err
	}
	n.elasticMu.Lock()
	defer n.elasticMu.Unlock()
	n.elastic = &netElastic{min: min, max: max, maxSeen: min}
	return nil
}

// NetElasticStats reports the autoscaler's activity.
type NetElasticStats struct {
	// Grown and Shrunk count resize operations in each direction.
	Grown, Shrunk uint64
	// MaxWorkers is the highest per-worker parsing-domain count reached;
	// Workers is the current one.
	MaxWorkers, Workers int
}

// ElasticStats returns the autoscaler's counters (zero value when
// elastic mode is off).
func (n *NetServer) ElasticStats() NetElasticStats {
	n.elasticMu.Lock()
	defer n.elasticMu.Unlock()
	if n.elastic == nil {
		return NetElasticStats{}
	}
	return NetElasticStats{
		Grown:      n.elastic.grown,
		Shrunk:     n.elastic.shrunk,
		MaxWorkers: n.elastic.maxSeen,
		Workers:    n.workersFn(),
	}
}

// maybeScale runs one elastic evaluation: grow (double, capped) when
// the queued backlog reaches two requests per live parsing domain per
// worker, shrink (halve, floored) after netShrinkIdleEvals consecutive
// evaluations with at most one queued request per live domain.
func (n *NetServer) maybeScale() {
	n.elasticMu.Lock()
	defer n.elasticMu.Unlock()
	e := n.elastic
	if e == nil {
		return
	}
	perShard := n.queues.TotalLoad() / int64(n.workers)
	cur := n.workersFn()
	switch {
	case perShard >= int64(2*cur) && cur < e.max:
		next := cur * 2
		if next > e.max {
			next = e.max
		}
		if err := n.resizeFn(next); err == nil {
			e.grown++
			e.idle = 0
			if next > e.maxSeen {
				e.maxSeen = next
			}
		}
	case perShard <= int64(cur):
		e.idle++
		if e.idle >= netShrinkIdleEvals && cur > e.min {
			next := cur / 2
			if next < e.min {
				next = e.min
			}
			if err := n.resizeFn(next); err == nil {
				e.shrunk++
			}
			e.idle = 0
		}
	default:
		e.idle = 0
	}
}

// Interface compliance: the net server implements the shared lifecycle
// contract.
var _ lifecycle.Component = (*NetServer)(nil)

// SetRequestTimeout installs a per-request deadline (0 disables it, the
// default). Call before Serve.
func (n *NetServer) SetRequestTimeout(d time.Duration) { n.reqTimeout = d }

func (n *NetServer) logf(format string, args ...any) {
	if n.log != nil {
		n.log.Printf(format, args...)
	}
}

// Serve accepts connections until ln closes, then drains in-flight
// connections.
func (n *NetServer) Serve(ln net.Listener) error {
	defer n.wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("httpd: accept: %w", err)
		}
		n.connMu.Lock()
		n.nextID++
		id := n.nextID
		n.connMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				if cerr := conn.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
					n.logf("conn %d close: %v", id, cerr)
				}
			}()
			n.serveConn(id, conn)
		}()
	}
}

func (n *NetServer) serveConn(id int, conn io.ReadWriter) {
	raw, err := ReadRequestHead(bufio.NewReader(conn))
	if err != nil {
		n.logf("conn %d read: %v", id, err)
		return
	}
	ctx := context.Background()
	if n.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.reqTimeout)
		defer cancel()
	}
	resp := n.dispatch(ctx, id, raw)
	if resp.Contained {
		n.logf("conn %d: contained parser exploit (domain rewound)", id)
	}
	WriteHTTPResponse(conn, resp)
}

// dispatch routes one request: without a gateway it goes straight to
// the backend; with one, lifecycle endpoints are answered host-side and
// everything else runs the admission pipeline — bearer auth (401),
// per-tenant rate/quota/quarantine (429 + Retry-After), drain (503) —
// before the backend sees a byte, and reports its outcome to the
// tenant's circuit breaker afterwards.
func (n *NetServer) dispatch(ctx context.Context, id int, raw []byte) Response {
	if n.gw == nil {
		return n.handle(ctx, id, raw)
	}
	path := requestPath(raw)
	if path == "/healthz" {
		// Unauthenticated by design: load-balancer probes carry no
		// credentials, and the document holds no tenant secrets (only
		// tenant names and counters).
		return n.healthResponse()
	}
	token, aerr := gateway.BearerToken(raw)
	if aerr != nil {
		n.logf("conn %d auth rejected: %v", id, aerr)
		return Response{Status: 401, Body: []byte("unauthorized\n")}
	}
	tenant, err := n.gw.Authenticate(token)
	if err != nil {
		n.logf("conn %d auth rejected: %v", id, err)
		return Response{Status: 401, Body: []byte("unauthorized\n")}
	}
	if path == "/drainz" {
		if derr := n.Drain(); derr != nil {
			return Response{Status: 500, Err: derr}
		}
		return Response{Status: 200, Body: []byte("draining\n")}
	}
	ticket, err := n.gw.Admit(tenant)
	if err != nil {
		return admissionResponse(err)
	}
	resp := n.handle(ctx, id, raw)
	// 408 is the wire mapping of a budget preemption (see finishSDRaD).
	ticket.Done(resp.Contained, resp.Status == 408)
	return resp
}

// admissionResponse maps a typed gateway rejection onto the wire:
// rate/quota/quarantine answer 429 with a deterministic Retry-After,
// drain answers 503.
func admissionResponse(err error) Response {
	if gateway.IsDraining(err) {
		return Response{Status: 503, Err: err}
	}
	if qe, ok := gateway.IsQuarantined(err); ok {
		return Response{
			Status:           429,
			Err:              err,
			RetryAfterCycles: gateway.QuantizeRetryCycles(qe.ProbeIn * overloadRetryCyclesPerSlot),
		}
	}
	if cycles, ok := gateway.RetryAfterCycles(err); ok {
		return Response{Status: 429, Err: err, RetryAfterCycles: cycles}
	}
	return Response{Status: 503, Err: err}
}

// healthResponse renders the health document (shard tier states are the
// gateway owner's concern on kvstore; httpd's workers hold no durable
// state, so the document carries drain state and tenant counters).
func (n *NetServer) healthResponse() Response {
	draining := n.Draining() || n.gw.Draining()
	h := gateway.BuildHealth(draining, n.workers, nil, n.gw.Stats().Snapshot())
	return Response{Status: h.Status(), Body: h.JSON()}
}

// requestPath extracts the path from an HTTP/1.x request line, "" when
// malformed (the backend parser then produces the 400).
func requestPath(raw []byte) string {
	line := raw
	if i := bytes.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	parts := bytes.Split(bytes.TrimRight(line, "\r"), []byte(" "))
	if len(parts) != 3 {
		return ""
	}
	return string(parts[1])
}

// ReadRequestHead reads bytes up to and including the blank line that
// terminates an HTTP request head.
func ReadRequestHead(r *bufio.Reader) ([]byte, error) {
	var buf []byte
	for {
		line, err := r.ReadBytes('\n')
		buf = append(buf, line...)
		if err != nil {
			if errors.Is(err, io.EOF) && len(buf) > 0 {
				return buf, nil
			}
			return nil, err
		}
		if string(line) == "\r\n" || string(line) == "\n" {
			return buf, nil
		}
		if len(buf) > 64<<10 {
			return nil, errors.New("httpd: request head too large")
		}
	}
}

// WriteHTTPResponse renders resp on the wire with Connection: close,
// including a Retry-After header when the response carries a retry
// hint.
func WriteHTTPResponse(w io.Writer, resp Response) {
	status := resp.Status
	if status == 0 {
		status = 500
	}
	body := resp.Body
	if body == nil && resp.Err != nil {
		body = []byte(resp.Err.Error() + "\n")
	}
	retry := ""
	if resp.RetryAfterCycles > 0 {
		retry = fmt.Sprintf("Retry-After: %d\r\n", gateway.RetrySeconds(resp.RetryAfterCycles))
	}
	_, err := fmt.Fprintf(w, "HTTP/1.1 %d %s\r\nContent-Length: %d\r\n%sConnection: close\r\n\r\n",
		status, StatusText(status), len(body), retry)
	if err != nil {
		return
	}
	_, _ = w.Write(body)
}

// StatusText returns the reason phrase for the status codes the server
// emits.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 401:
		return "Unauthorized"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 408:
		return "Request Timeout"
	case 429:
		return "Too Many Requests"
	case 503:
		return "Service Unavailable"
	default:
		return "Internal Server Error"
	}
}
