package httpd

import (
	"bytes"
	"testing"
)

// TestBuildRequestDeterministic pins a determinism fix sdradlint's
// detorder analyzer surfaced: BuildRequest iterated the headers map
// directly, so two renders of the same request could emit different
// bytes — and request bytes feed workload streams and campaign traces,
// where that shows up as a same-seed trace diff. Headers must come out
// byte-identical and in sorted key order.
func TestBuildRequestDeterministic(t *testing.T) {
	h := map[string]string{"x-b": "2", "x-d": "4", "x-a": "1", "x-c": "3"}
	first := BuildRequest("GET", "/items/1", h)
	for i := 0; i < 64; i++ {
		if got := BuildRequest("GET", "/items/1", h); !bytes.Equal(got, first) {
			t.Fatalf("render %d differs:\n%q\n%q", i, got, first)
		}
	}
	prev := -1
	for _, k := range []string{"x-a", "x-b", "x-c", "x-d"} {
		idx := bytes.Index(first, []byte(k+": "))
		if idx < 0 {
			t.Fatalf("header %s missing from %q", k, first)
		}
		if idx < prev {
			t.Errorf("header %s emitted out of sorted order in %q", k, first)
		}
		prev = idx
	}
}
