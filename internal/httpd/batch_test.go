package httpd

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestServeBatchMatchesSerial drives the same mixed benign/malformed/
// attack request stream through ServeContext and ServeBatch and asserts
// identical per-request statuses and containment.
func TestServeBatchMatchesSerial(t *testing.T) {
	build := func() *Server {
		srv, err := NewServer(core.NewSystem(core.DefaultConfig()),
			Config{Mode: ModeSDRaD, InterArrival: time.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		srv.HandleFunc("/", []byte("<html>index</html>"))
		srv.HandleFunc("/a", []byte("aaaa"))
		return srv
	}
	raws := func() [][]byte {
		gen, err := workload.NewHTTP(workload.HTTPConfig{Seed: 3, Paths: 8})
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, 80)
		for i := range out {
			switch {
			case i%17 == 4:
				out[i] = BuildRequest("GET", "/", map[string]string{AttackHeader: "1"})
			case i%11 == 7:
				out[i] = []byte("BOGUS nonsense\r\n\r\n")
			default:
				out[i] = gen.Next().Raw
			}
		}
		return out
	}

	classify := func(r Response) string {
		return fmt.Sprintf("%d/%v", r.Status, r.Contained)
	}

	serialSrv := build()
	var serial []string
	for i, raw := range raws() {
		serial = append(serial, classify(serialSrv.Serve(i%8, raw)))
	}

	batchSrv := build()
	var batched []string
	rs := raws()
	for i := 0; i < len(rs); i += 16 {
		batch := make([]BatchRequest, 16)
		for j := range batch {
			batch[j] = BatchRequest{ClientID: (i + j) % 8, Raw: rs[i+j]}
		}
		for _, resp := range batchSrv.ServeBatch(batch) {
			batched = append(batched, classify(resp))
		}
	}
	for i := range serial {
		if serial[i] != batched[i] {
			t.Errorf("request %d: serial %q vs batched %q", i, serial[i], batched[i])
		}
	}
	s1, s2 := serialSrv.Stats(), batchSrv.Stats()
	if s1.Violations != s2.Violations || s1.Requests != s2.Requests {
		t.Errorf("stats diverged: serial %+v vs batched %+v", s1, s2)
	}
}

// TestBatchedHTTPNetServerEndToEnd: the pipelined TCP path serves,
// contains exploits, and keeps serving under concurrent clients.
func TestBatchedHTTPNetServerEndToEnd(t *testing.T) {
	pool, err := NewPool(core.DefaultConfig(), Config{Mode: ModeSDRaD, Workers: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.HandleFunc("/", []byte("<html>home</html>"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NewBatchedNetServerPool(pool, nil, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ns.Serve(ln) }()
	defer func() {
		if err := ln.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		ns.Close()
	}()
	addr := ln.Addr().String()

	if out := httpGet(t, addr, nil); !strings.Contains(out, "200 OK") || !strings.Contains(out, "home") {
		t.Fatalf("GET / through batched server:\n%s", out)
	}
	if out := httpGet(t, addr, map[string]string{AttackHeader: "1"}); !strings.Contains(out, "400") {
		t.Fatalf("exploit not contained as 400:\n%s", out)
	}
	if out := httpGet(t, addr, nil); !strings.Contains(out, "200 OK") {
		t.Fatalf("service down after contained exploit:\n%s", out)
	}
	if st := pool.Stats(); st.Violations == 0 {
		t.Error("no contained violation recorded")
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = conn.Close() }()
			if _, err := conn.Write(BuildRequest("GET", "/", nil)); err != nil {
				errCh <- err
				return
			}
			buf := make([]byte, 4096)
			var out strings.Builder
			for {
				n, rerr := conn.Read(buf)
				out.Write(buf[:n])
				if rerr != nil {
					break
				}
			}
			if !strings.Contains(out.String(), "200 OK") {
				errCh <- fmt.Errorf("concurrent GET: %q", out.String())
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
