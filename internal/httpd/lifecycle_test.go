package httpd

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/lifecycle/lifecycletest"
)

// TestLifecycleConformance runs the shared lifecycle battery against the
// deferred network server. Resize exercises the per-worker parsing-domain
// set (dispatch is least-loaded, so the count is a pure concurrency knob).
func TestLifecycleConformance(t *testing.T) {
	lifecycletest.Run(t, []lifecycletest.Case{
		{
			Name: "httpd.NetServer",
			New: func(t *testing.T) lifecycle.Component {
				p, err := NewPool(core.DefaultConfig(), Config{Mode: ModeSDRaD}, 2)
				if err != nil {
					t.Fatal(err)
				}
				p.HandleFunc("/", []byte("ok\n"))
				return NewDeferredNetServerPool(p, nil)
			},
			Resize: func(c lifecycle.Component, n int) error {
				return c.(*NetServer).ResizeWorkers(n)
			},
			Grow:   6,
			Shrink: 2,
		},
	})
}
