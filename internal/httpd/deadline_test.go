package httpd

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vclock"
)

// slowConfig returns a system config with a 1 MHz simulated core, so a
// modest request exceeds a deadline-derived cycle budget.
func slowConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Cost.CPUHz = 1_000_000
	return cfg
}

// bigRequest renders a request whose in-domain parse traffic (~64 KiB
// stored + loaded) exceeds the 100k-cycle budget a sub-quantum deadline
// maps to at 1 MHz.
func bigRequest() []byte {
	headers := make(map[string]string, 16)
	filler := strings.Repeat("x", 4000)
	for i := 0; i < 16; i++ {
		name := "x-filler-" + string(rune('a'+i))
		headers[name] = filler
	}
	return BuildRequest("GET", "/", headers)
}

// TestServeContextDeadlinePreempts: a request deadline becomes a
// virtual-cycle budget; a request whose parse exceeds it is preempted,
// its domain rewound, and the client answered 408 — deterministically,
// at the same virtual cycle on every run.
func TestServeContextDeadlinePreempts(t *testing.T) {
	run := func() (Response, Stats) {
		sys := core.NewSystem(slowConfig())
		srv, err := NewServer(sys, Config{Mode: ModeSDRaD})
		if err != nil {
			t.Fatal(err)
		}
		srv.HandleFunc("/", []byte("content"))
		ctx, cancel := context.WithTimeout(context.Background(), vclock.DeadlineQuantum/2)
		defer cancel()
		resp := srv.ServeContext(ctx, 0, bigRequest())
		return resp, srv.Stats()
	}

	resp1, st1 := run()
	if resp1.Status != 408 {
		t.Fatalf("status = %d (err %v), want 408", resp1.Status, resp1.Err)
	}
	if _, ok := core.IsBudget(resp1.Err); !ok {
		t.Fatalf("err = %v, want *core.BudgetError", resp1.Err)
	}
	if st1.Preempted != 1 || st1.Violations != 0 {
		t.Errorf("stats = %+v, want 1 preemption and no violations", st1)
	}

	// Deterministic: the second run preempts at the same virtual cycle.
	resp2, _ := run()
	b1, _ := core.IsBudget(resp1.Err)
	b2, ok := core.IsBudget(resp2.Err)
	if !ok {
		t.Fatalf("second run err = %v, want *core.BudgetError", resp2.Err)
	}
	if b1.Used != b2.Used || b1.Budget != b2.Budget {
		t.Errorf("preemption point differs across runs: used %d/%d vs %d/%d",
			b1.Used, b1.Budget, b2.Used, b2.Budget)
	}
}

// TestServeContextExpiredDeadline: a context that is already dead when
// the request arrives gets a 408 without entering a domain, and counts
// as preempted.
func TestServeContextExpiredDeadline(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig())
	srv, err := NewServer(sys, Config{Mode: ModeSDRaD})
	if err != nil {
		t.Fatal(err)
	}
	srv.HandleFunc("/", []byte("content"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp := srv.ServeContext(ctx, 0, BuildRequest("GET", "/", nil))
	if resp.Status != 408 {
		t.Fatalf("status = %d (err %v), want 408", resp.Status, resp.Err)
	}
	if st := srv.Stats(); st.Preempted != 1 {
		t.Errorf("Preempted = %d, want 1", st.Preempted)
	}
}

// TestServeContextNoDeadlineUnbounded: the same request succeeds without
// a deadline, proving the 408 above came from the budget.
func TestServeContextNoDeadlineUnbounded(t *testing.T) {
	sys := core.NewSystem(slowConfig())
	srv, err := NewServer(sys, Config{Mode: ModeSDRaD})
	if err != nil {
		t.Fatal(err)
	}
	srv.HandleFunc("/", []byte("content"))
	resp := srv.ServeContext(context.Background(), 0, bigRequest())
	if resp.Status != 200 {
		t.Fatalf("status = %d (err %v), want 200", resp.Status, resp.Err)
	}
}
