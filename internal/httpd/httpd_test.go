package httpd

import (
	"bufio"
	"bytes"
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseValidRequest(t *testing.T) {
	raw := BuildRequest("GET", "/index.html", map[string]string{"accept": "text/html"})
	pr, err := parse(raw)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if pr.Method != "GET" || pr.Path != "/index.html" || pr.Proto != "HTTP/1.1" {
		t.Errorf("parsed = %+v", pr)
	}
	if pr.Headers["accept"] != "text/html" || pr.Headers["host"] != "localhost" {
		t.Errorf("headers = %v", pr.Headers)
	}
}

func TestParseHeaderNormalization(t *testing.T) {
	raw := []byte("GET / HTTP/1.1\r\nX-Custom-Header:   spaced value  \r\n\r\n")
	pr, err := parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Headers["x-custom-header"] != "spaced value" {
		t.Errorf("header = %q", pr.Headers["x-custom-header"])
	}
}

func TestParseMalformed(t *testing.T) {
	cases := map[string]string{
		"no terminator":     "GET / HTTP/1.1\r\n",
		"bad request line":  "GET /\r\n\r\n",
		"empty method":      " / HTTP/1.1\r\n\r\n",
		"relative path":     "GET index.html HTTP/1.1\r\n\r\n",
		"bad proto":         "GET / FTP/1.1\r\n\r\n",
		"header no colon":   "GET / HTTP/1.1\r\nbadheader\r\n\r\n",
		"header empty name": "GET / HTTP/1.1\r\n: value\r\n\r\n",
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := parse([]byte(raw)); !errors.Is(err, ErrMalformed) {
				t.Errorf("err = %v, want ErrMalformed", err)
			}
		})
	}
}

func TestParseLimits(t *testing.T) {
	long := "GET /" + strings.Repeat("a", MaxRequestLine) + " HTTP/1.1\r\n\r\n"
	if _, err := parse([]byte(long)); !errors.Is(err, ErrMalformed) {
		t.Error("overlong request line accepted")
	}
	var b strings.Builder
	b.WriteString("GET / HTTP/1.1\r\n")
	for i := 0; i < MaxHeaders+1; i++ {
		b.WriteString("h: v\r\n")
	}
	b.WriteString("\r\n")
	if _, err := parse([]byte(b.String())); !errors.Is(err, ErrMalformed) {
		t.Error("too many headers accepted")
	}
	hugeHeader := "GET / HTTP/1.1\r\nh: " + strings.Repeat("v", MaxHeaderLine) + "\r\n\r\n"
	if _, err := parse([]byte(hugeHeader)); !errors.Is(err, ErrMalformed) {
		t.Error("overlong header accepted")
	}
}

func newServer(t *testing.T, mode Mode) (*Server, *core.System) {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	srv, err := NewServer(sys, Config{Mode: mode, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.HandleFunc("/", []byte("<html>home</html>"))
	srv.HandleFunc("/big", make([]byte, 64<<10))
	return srv, sys
}

func TestServeStatic(t *testing.T) {
	for _, mode := range []Mode{ModeNative, ModeSDRaD} {
		t.Run(mode.String(), func(t *testing.T) {
			srv, _ := newServer(t, mode)
			resp := srv.Serve(0, BuildRequest("GET", "/", nil))
			if resp.Status != 200 || string(resp.Body) != "<html>home</html>" || resp.Err != nil {
				t.Fatalf("resp = %+v", resp)
			}
			if resp.Latency <= 0 {
				t.Error("no latency")
			}
			if r := srv.Serve(0, BuildRequest("GET", "/missing", nil)); r.Status != 404 {
				t.Errorf("missing = %d", r.Status)
			}
			if r := srv.Serve(0, BuildRequest("POST", "/", nil)); r.Status != 405 {
				t.Errorf("POST = %d", r.Status)
			}
			if r := srv.Serve(0, BuildRequest("HEAD", "/", nil)); r.Status != 200 || r.Body != nil {
				t.Errorf("HEAD = %+v", r)
			}
			if r := srv.Serve(0, []byte("garbage\r\n\r\n")); r.Status != 400 {
				t.Errorf("garbage = %d", r.Status)
			}
		})
	}
}

func TestSDRaDContainsParserExploit(t *testing.T) {
	srv, _ := newServer(t, ModeSDRaD)
	evil := BuildRequest("GET", "/", map[string]string{AttackHeader: "1"})
	resp := srv.Serve(1, evil)
	if !resp.Contained || resp.Status != 400 {
		t.Fatalf("attack resp = %+v", resp)
	}
	if srv.Stats().Violations != 1 {
		t.Errorf("violations = %d", srv.Stats().Violations)
	}
	// Service unaffected.
	r := srv.Serve(0, BuildRequest("GET", "/", nil))
	if r.Status != 200 || r.Err != nil {
		t.Errorf("post-attack request: %+v", r)
	}
	if srv.Stats().Crashes != 0 {
		t.Error("SDRaD mode crashed")
	}
}

func TestNativeExploitCausesCrashAndDowntime(t *testing.T) {
	srv, _ := newServer(t, ModeNative)
	// Enough content to make the restart window span many arrivals.
	srv.HandleFunc("/bulk", make([]byte, 4<<20))
	evil := BuildRequest("GET", "/", map[string]string{AttackHeader: "1"})
	resp := srv.Serve(1, evil)
	if !errors.Is(resp.Err, ErrUnavailable) || resp.Status != 500 {
		t.Fatalf("crash resp = %+v", resp)
	}
	if srv.Stats().Crashes != 1 {
		t.Errorf("crashes = %d", srv.Stats().Crashes)
	}
	dropped := 0
	for i := 0; i < 50; i++ {
		if r := srv.Serve(0, BuildRequest("GET", "/", nil)); errors.Is(r.Err, ErrUnavailable) {
			dropped++
		}
	}
	if dropped != 50 {
		t.Errorf("dropped %d/50 during restart", dropped)
	}
}

func TestRepeatedAttacksSDRaDStaysUp(t *testing.T) {
	srv, _ := newServer(t, ModeSDRaD)
	evil := BuildRequest("GET", "/", map[string]string{AttackHeader: "1"})
	good := BuildRequest("GET", "/", nil)
	for i := 0; i < 100; i++ {
		_ = srv.Serve(i, evil)
		if r := srv.Serve(i, good); r.Status != 200 {
			t.Fatalf("iteration %d: benign request failed: %+v", i, r)
		}
	}
	if srv.Stats().Violations != 100 {
		t.Errorf("violations = %d", srv.Stats().Violations)
	}
}

func TestConfigValidation(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig())
	if _, err := NewServer(sys, Config{Mode: Mode(42)}); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestContentBytes(t *testing.T) {
	srv, _ := newServer(t, ModeSDRaD)
	if srv.ContentBytes() != uint64(len("<html>home</html>"))+64<<10 {
		t.Errorf("ContentBytes = %d", srv.ContentBytes())
	}
}

func TestModeString(t *testing.T) {
	if ModeNative.String() != "native" || ModeSDRaD.String() != "sdrad" || Mode(7).String() == "" {
		t.Error("mode strings")
	}
}

// TestParseAgainstStdlibOracle checks our parser against net/http's
// request reader on a corpus of valid requests: anything both accept
// must agree on method, path, and header values.
func TestParseAgainstStdlibOracle(t *testing.T) {
	corpus := [][]byte{
		BuildRequest("GET", "/", nil),
		BuildRequest("GET", "/a/b/c?q=1", map[string]string{"accept": "text/html"}),
		BuildRequest("HEAD", "/x", map[string]string{"x-custom": "v1"}),
		BuildRequest("POST", "/submit", map[string]string{"content-type": "application/json"}),
		[]byte("GET /spaced HTTP/1.1\r\nname:   padded value \r\n\r\n"),
	}
	for i, raw := range corpus {
		ours, ourErr := parse(raw)
		std, stdErr := http.ReadRequest(bufio.NewReader(bytes.NewReader(raw)))
		if ourErr != nil || stdErr != nil {
			t.Fatalf("corpus %d: ours=%v stdlib=%v", i, ourErr, stdErr)
		}
		if ours.Method != std.Method {
			t.Errorf("corpus %d: method %q vs stdlib %q", i, ours.Method, std.Method)
		}
		if ours.Path != std.URL.RequestURI() {
			t.Errorf("corpus %d: path %q vs stdlib %q", i, ours.Path, std.URL.RequestURI())
		}
		for name, vals := range std.Header {
			want := strings.Join(vals, ", ")
			if got := ours.Headers[strings.ToLower(name)]; got != want {
				t.Errorf("corpus %d: header %s = %q vs stdlib %q", i, name, got, want)
			}
		}
	}
}

// And on garbage: we must never accept something stdlib rejects as
// structurally broken at the request-line level.
func TestParseNotLaxerThanStdlibOnRequestLine(t *testing.T) {
	bad := [][]byte{
		[]byte("GET\r\n\r\n"),
		[]byte("GET  HTTP/1.1\r\n\r\n"),
		[]byte(" / HTTP/1.1\r\n\r\n"),
		[]byte("\r\n\r\n"),
	}
	for i, raw := range bad {
		if _, err := parse(raw); err == nil {
			if _, stdErr := http.ReadRequest(bufio.NewReader(bytes.NewReader(raw))); stdErr != nil {
				t.Errorf("corpus %d: we accepted what stdlib rejects", i)
			}
		}
	}
}
