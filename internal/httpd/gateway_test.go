package httpd

import (
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gateway"
)

func testGateway(t *testing.T, lim gateway.Limits) *gateway.Gateway {
	t.Helper()
	table, err := gateway.NewTable(map[string]string{
		"alice": "tok-alice",
		"mal":   "tok-mal",
	})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	gw, err := gateway.New(gateway.Config{Table: table, Limits: lim})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	return gw
}

// startGatewayNet spins up a TCP httpd fronted by a gateway.
func startGatewayNet(t *testing.T, gw *gateway.Gateway) (string, *NetServer, func()) {
	t.Helper()
	pool, err := NewPool(core.DefaultConfig(), Config{Mode: ModeSDRaD, Workers: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.HandleFunc("/", []byte("<html>home</html>"))
	ns := NewNetServerPool(pool, nil)
	ns.SetGateway(gw)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ns.Serve(ln) }()
	return ln.Addr().String(), ns, func() {
		if err := ln.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// httpDo sends one raw request and returns the full response bytes.
func httpDo(t *testing.T, addr, method, path string, headers map[string]string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil {
			t.Logf("close: %v", cerr)
		}
	}()
	if _, err := conn.Write(BuildRequest(method, path, headers)); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	buf := make([]byte, 8192)
	for {
		n, rerr := conn.Read(buf)
		out.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return out.String()
}

// TestHTTPGatewayAuth drives the bearer-token pipeline over real TCP:
// missing or unknown credentials answer a uniform 401; a valid token
// reaches the backend.
func TestHTTPGatewayAuth(t *testing.T) {
	gw := testGateway(t, gateway.Limits{Burst: 100, RefillEvery: 1, MaxInflight: 8})
	addr, _, stop := startGatewayNet(t, gw)
	defer stop()

	out := httpDo(t, addr, "GET", "/", nil)
	if !strings.HasPrefix(out, "HTTP/1.1 401 Unauthorized\r\n") {
		t.Fatalf("no-auth response: %q", out)
	}
	bad := httpDo(t, addr, "GET", "/", map[string]string{"authorization": "Bearer wrong"})
	if !strings.HasPrefix(bad, "HTTP/1.1 401 Unauthorized\r\n") {
		t.Fatalf("bad-token response: %q", bad)
	}
	// The two rejections are byte-identical: the response reveals
	// nothing about which part of the credential failed.
	if out != bad {
		t.Fatalf("401 responses differ:\n%q\n%q", out, bad)
	}
	good := httpDo(t, addr, "GET", "/", map[string]string{"authorization": "Bearer tok-alice"})
	if !strings.HasPrefix(good, "HTTP/1.1 200 OK\r\n") || !strings.Contains(good, "<html>home</html>") {
		t.Fatalf("authed response: %q", good)
	}
}

// TestHTTPGatewayRateLimit floods one tenant past its burst and checks
// the 429 carries a deterministic Retry-After header while the other
// tenant is untouched.
func TestHTTPGatewayRateLimit(t *testing.T) {
	gw := testGateway(t, gateway.Limits{Burst: 2, RefillEvery: 100, MaxInflight: 8})
	addr, _, stop := startGatewayNet(t, gw)
	defer stop()

	hdr := map[string]string{"authorization": "Bearer tok-alice"}
	for i := 0; i < 2; i++ {
		if out := httpDo(t, addr, "GET", "/", hdr); !strings.HasPrefix(out, "HTTP/1.1 200") {
			t.Fatalf("burst request %d: %q", i, out)
		}
	}
	out := httpDo(t, addr, "GET", "/", hdr)
	if !strings.HasPrefix(out, "HTTP/1.1 429 Too Many Requests\r\n") {
		t.Fatalf("throttled response: %q", out)
	}
	if !strings.Contains(out, "\r\nRetry-After: 1\r\n") {
		t.Fatalf("throttled response missing Retry-After: %q", out)
	}
	if !strings.Contains(out, "rate limited, retry-after-cycles=") {
		t.Fatalf("throttled body not the typed rendering: %q", out)
	}
	// The co-tenant's bucket is untouched by the flood.
	other := httpDo(t, addr, "GET", "/", map[string]string{"authorization": "Bearer tok-mal"})
	if !strings.HasPrefix(other, "HTTP/1.1 200") {
		t.Fatalf("co-tenant response: %q", other)
	}
}

// TestHTTPGatewayLifecycle exercises /healthz and /drainz end to end:
// health is open and reports ok, drain requires credentials, and a
// drained server answers 503 with the health state flipped.
func TestHTTPGatewayLifecycle(t *testing.T) {
	gw := testGateway(t, gateway.Limits{Burst: 100, RefillEvery: 1, MaxInflight: 8})
	addr, ns, stop := startGatewayNet(t, gw)
	defer stop()

	out := httpDo(t, addr, "GET", "/healthz", nil)
	if !strings.HasPrefix(out, "HTTP/1.1 200 OK\r\n") || !strings.Contains(out, `"state": "ok"`) {
		t.Fatalf("healthz: %q", out)
	}
	// Drain without credentials is refused and changes nothing.
	if out := httpDo(t, addr, "GET", "/drainz", nil); !strings.HasPrefix(out, "HTTP/1.1 401") {
		t.Fatalf("unauthenticated drainz: %q", out)
	}
	if ns.Draining() {
		t.Fatal("unauthenticated drainz drained the server")
	}
	// Authenticated drain succeeds.
	hdr := map[string]string{"authorization": "Bearer tok-alice"}
	if out := httpDo(t, addr, "GET", "/drainz", hdr); !strings.HasPrefix(out, "HTTP/1.1 200") {
		t.Fatalf("drainz: %q", out)
	}
	// Admission now answers 503 draining; health flips and reports 503.
	out = httpDo(t, addr, "GET", "/", hdr)
	if !strings.HasPrefix(out, "HTTP/1.1 503 Service Unavailable\r\n") || !strings.Contains(out, "draining") {
		t.Fatalf("post-drain request: %q", out)
	}
	out = httpDo(t, addr, "GET", "/healthz", nil)
	if !strings.HasPrefix(out, "HTTP/1.1 503") || !strings.Contains(out, `"draining": true`) {
		t.Fatalf("post-drain healthz: %q", out)
	}
	if err := ns.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ns.Close(); err != nil {
		t.Fatalf("repeat Close: %v", err)
	}
}

// TestHTTPGatewayQuarantine trips the circuit breaker over the wire:
// repeated exploit requests quarantine the hostile tenant (429), while
// the benign tenant keeps serving.
func TestHTTPGatewayQuarantine(t *testing.T) {
	table, err := gateway.NewTable(map[string]string{"alice": "tok-alice", "mal": "tok-mal"})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New(gateway.Config{
		Table:           table,
		Limits:          gateway.Limits{Burst: 100, RefillEvery: 1, MaxInflight: 8},
		QuarantineAfter: 3,
		Window:          8,
		ProbeEvery:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, _, stop := startGatewayNet(t, gw)
	defer stop()

	evil := map[string]string{"authorization": "Bearer tok-mal", "x-exploit": "1"}
	for i := 0; i < 3; i++ {
		out := httpDo(t, addr, "GET", "/", evil)
		if !strings.HasPrefix(out, "HTTP/1.1 400") {
			t.Fatalf("exploit request %d: %q", i, out)
		}
	}
	if !gw.Quarantined("mal") {
		t.Fatal("hostile tenant not quarantined after 3 contained exploits")
	}
	out := httpDo(t, addr, "GET", "/", evil)
	if !strings.HasPrefix(out, "HTTP/1.1 429") || !strings.Contains(out, "quarantined") {
		t.Fatalf("quarantined response: %q", out)
	}
	// Benign tenant unaffected.
	good := httpDo(t, addr, "GET", "/", map[string]string{"authorization": "Bearer tok-alice"})
	if !strings.HasPrefix(good, "HTTP/1.1 200") {
		t.Fatalf("benign tenant during quarantine: %q", good)
	}
}
