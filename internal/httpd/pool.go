package httpd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
)

// Pool runs N Servers in parallel, one per worker, each on a private
// simulated machine. The single-Server path serializes every request
// behind one simulated core; the pool gives each worker its own core
// (system, PKU keyset, virtual clock) so requests on different workers
// execute concurrently. Requests are stateless (the routing table is
// replicated), so dispatch is least-loaded with a round-robin tiebreak.
//
// Pool is safe for concurrent use; per-worker locking upholds each
// simulated machine's single-goroutine contract.
type Pool struct {
	shards []*poolShard
	rr     atomic.Uint64
}

type poolShard struct {
	mu  sync.Mutex
	srv *Server
	// inflight drives least-loaded dispatch; read without the lock.
	inflight atomic.Int64
}

// NewPool builds n parallel Servers (n <= 0 means 1), each on a fresh
// core.System configured by syscfg, all sharing cfg.
func NewPool(syscfg core.Config, cfg Config, n int) (*Pool, error) {
	if n <= 0 {
		n = 1
	}
	p := &Pool{shards: make([]*poolShard, n)}
	for i := range p.shards {
		srv, err := NewServer(core.NewSystem(syscfg), cfg)
		if err != nil {
			return nil, fmt.Errorf("httpd: pool worker %d: %w", i, err)
		}
		p.shards[i] = &poolShard{srv: srv}
	}
	return p, nil
}

// Workers returns the number of parallel workers.
func (p *Pool) Workers() int { return len(p.shards) }

// ResizeWorkers grows or shrinks every worker's parsing-domain set to n
// (SDRaD mode only). The workers (simulated machines) themselves are
// fixed; the per-machine parsing domains are pristine between requests,
// so their count is purely a concurrency knob. A partial failure leaves
// workers at different counts and reports the first error.
func (p *Pool) ResizeWorkers(n int) error {
	var first error
	for i, sh := range p.shards {
		sh.mu.Lock()
		err := sh.srv.ResizeWorkers(n)
		sh.mu.Unlock()
		if err != nil && first == nil {
			first = fmt.Errorf("httpd: pool worker %d resize: %w", i, err)
		}
	}
	return first
}

// ShardWorkers returns worker 0's parsing-domain count (every worker is
// kept at the same count by ResizeWorkers).
func (p *Pool) ShardWorkers() int {
	sh := p.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv.Workers()
}

// Mode returns the pool's resilience mode.
func (p *Pool) Mode() Mode { return p.shards[0].srv.Mode() }

// HandleFunc registers static content for GET path on every worker (the
// routing table is trusted, replicated state).
func (p *Pool) HandleFunc(path string, content []byte) {
	for _, sh := range p.shards {
		sh.mu.Lock()
		sh.srv.HandleFunc(path, content)
		sh.mu.Unlock()
	}
}

// Serve handles one raw HTTP request on the least-loaded worker. It is
// ServeContext with a background context.
func (p *Pool) Serve(clientID int, raw []byte) Response {
	return p.ServeContext(context.Background(), clientID, raw)
}

// ServeContext handles one raw HTTP request on the least-loaded worker;
// the context's deadline bounds the request's parse run (see
// Server.ServeContext).
func (p *Pool) ServeContext(ctx context.Context, clientID int, raw []byte) Response {
	// Acquire reserves the inflight slot atomically with the pick, so a
	// burst of concurrent requests spreads across workers instead of all
	// observing the same idle shard (see sdrad.Pool.pick).
	best := dispatch.Acquire(len(p.shards), int(p.rr.Add(1)-1), func(i int) *atomic.Int64 {
		return &p.shards[i].inflight
	})
	sh := p.shards[best]
	defer sh.inflight.Add(-1)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv.ServeContext(ctx, clientID, raw)
}

// serveBatch serves a batch of requests on worker si as one pipelined
// unit (Server.ServeBatch) under the worker lock. The batched
// NetServer's per-worker submission queues pick si.
func (p *Pool) serveBatch(si int, batch []BatchRequest) []Response {
	sh := p.shards[si]
	sh.inflight.Add(int64(len(batch)))
	defer sh.inflight.Add(-int64(len(batch)))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.srv.ServeBatch(batch)
}

// Stats aggregates server accounting across workers.
func (p *Pool) Stats() Stats {
	var agg Stats
	for _, sh := range p.shards {
		sh.mu.Lock()
		st := sh.srv.Stats()
		sh.mu.Unlock()
		agg.Requests += st.Requests
		agg.Violations += st.Violations
		agg.Crashes += st.Crashes
		agg.Dropped += st.Dropped
		agg.Preempted += st.Preempted
	}
	return agg
}

// VirtualTime returns the pool's parallel makespan: the maximum virtual
// time across workers, which run concurrently.
func (p *Pool) VirtualTime() time.Duration {
	var max time.Duration
	for _, sh := range p.shards {
		sh.mu.Lock()
		vt := sh.srv.sys.Clock().Now()
		sh.mu.Unlock()
		if vt > max {
			max = vt
		}
	}
	return max
}

// TotalVirtualTime returns the summed virtual CPU time across workers.
func (p *Pool) TotalVirtualTime() time.Duration {
	var sum time.Duration
	for _, sh := range p.shards {
		sh.mu.Lock()
		sum += sh.srv.sys.Clock().Now()
		sh.mu.Unlock()
	}
	return sum
}
