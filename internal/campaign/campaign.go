package campaign

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Target selects which Runner implementation executes a scenario.
type Target uint8

// Targets.
const (
	// TargetDomain runs requests on per-worker Domains of one Supervisor
	// (persistent heaps across requests, one simulated machine).
	TargetDomain Target = iota + 1
	// TargetPool runs requests on a Pool (one simulated machine per
	// worker, pristine domain per request via discard-on-return).
	TargetPool
	// TargetBridge runs requests on per-worker FFI Bridges' backing
	// domains (one simulated machine).
	TargetBridge
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case TargetDomain:
		return "domain"
	case TargetPool:
		return "pool"
	case TargetBridge:
		return "bridge"
	default:
		return fmt.Sprintf("Target(%d)", uint8(t))
	}
}

// Workload selects the request shape a scenario drives.
type Workload uint8

// Workloads.
const (
	// WorkloadKV parses memcached-text commands in-domain and applies
	// them to a trusted survivor cache.
	WorkloadKV Workload = iota + 1
	// WorkloadHTTP parses HTTP/1.1 request heads in-domain and routes
	// them against a trusted table.
	WorkloadHTTP
	// WorkloadFFI round-trips codec-serialized argument vectors through
	// the domain (the SDRaD-FFI transfer path).
	WorkloadFFI
)

// String implements fmt.Stringer.
func (w Workload) String() string {
	switch w {
	case WorkloadKV:
		return "kv"
	case WorkloadHTTP:
		return "http"
	case WorkloadFFI:
		return "ffi"
	default:
		return fmt.Sprintf("Workload(%d)", uint8(w))
	}
}

// FaultClass is a campaign-level fault the schedule can inject into a
// request.
type FaultClass uint8

// Fault classes.
const (
	// FaultNone marks a benign request.
	FaultNone FaultClass = iota
	// FaultUAF writes through a dangling pointer (fault.UseAfterFree).
	FaultUAF
	// FaultHeapOverflow overruns a heap allocation (fault.HeapOverflow).
	FaultHeapOverflow
	// FaultFreedHeaderSmash corrupts a freed chunk's header
	// (fault.FreedHeaderSmash).
	FaultFreedHeaderSmash
	// FaultBudget makes the request consume cycles until its per-request
	// cycle budget preempts it (surfaces as a *BudgetError, not a
	// detection).
	FaultBudget
	// FaultCrash panics inside the domain (fault.Crash — an in-domain
	// worker crash the supervisor must contain).
	FaultCrash
	// FaultMalformedPayload replaces the request bytes with a
	// deterministically corrupted payload (attackgen.Corruptor). The
	// allowed outcomes are a parser/codec rejection or — when the
	// mutation leaves the payload syntactically valid — a silently
	// garbled request; never a memory-safety detection and never a
	// supervisor panic.
	FaultMalformedPayload
)

// String implements fmt.Stringer.
func (f FaultClass) String() string {
	switch f {
	case FaultNone:
		return ""
	case FaultUAF:
		return "uaf"
	case FaultHeapOverflow:
		return "heap-overflow"
	case FaultFreedHeaderSmash:
		return "freed-header-smash"
	case FaultBudget:
		return "budget-exhaustion"
	case FaultCrash:
		return "worker-crash"
	case FaultMalformedPayload:
		return "malformed-payload"
	default:
		return fmt.Sprintf("FaultClass(%d)", uint8(f))
	}
}

// FaultClasses returns every injectable class (FaultNone excluded).
func FaultClasses() []FaultClass {
	return []FaultClass{FaultUAF, FaultHeapOverflow, FaultFreedHeaderSmash, FaultBudget, FaultCrash, FaultMalformedPayload}
}

// Scenario is one table-driven workload/fault/backend composition. Add a
// scenario by appending a struct literal to scenarios.All (or passing
// your own to Config.Scenarios).
type Scenario struct {
	// Name identifies the scenario in traces and flags.
	Name string
	// Workload selects the request shape.
	Workload Workload
	// Target selects the Runner backend.
	Target Target
	// Faults is the set of classes the schedule draws from; empty means
	// benign-only.
	Faults []FaultClass
	// AttackEvery sets the expected fault spacing: each request is
	// malicious with probability 1/AttackEvery (PRNG-interleaved, so
	// attack positions vary with the seed). 0 with non-empty Faults is
	// invalid.
	AttackEvery int
	// Requests overrides Config.Requests for this scenario when > 0.
	Requests int
	// Codec names the serde codec for WorkloadFFI ("" = binary).
	Codec string
}

// Validate reports structural problems with the scenario definition.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return errors.New("campaign: scenario needs a name")
	}
	switch s.Workload {
	case WorkloadKV, WorkloadHTTP, WorkloadFFI:
	default:
		return fmt.Errorf("campaign: scenario %q: unknown workload %v", s.Name, s.Workload)
	}
	switch s.Target {
	case TargetDomain, TargetPool, TargetBridge:
	default:
		return fmt.Errorf("campaign: scenario %q: unknown target %v", s.Name, s.Target)
	}
	if len(s.Faults) > 0 && s.AttackEvery <= 0 {
		return fmt.Errorf("campaign: scenario %q: faults without AttackEvery", s.Name)
	}
	for _, f := range s.Faults {
		if f == FaultNone {
			return fmt.Errorf("campaign: scenario %q: FaultNone in fault set", s.Name)
		}
		known := false
		for _, k := range FaultClasses() {
			if f == k {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("campaign: scenario %q: unknown fault class %v", s.Name, f)
		}
	}
	if s.Codec != "" && s.Workload != WorkloadFFI {
		return fmt.Errorf("campaign: scenario %q: codec is only meaningful for the ffi workload", s.Name)
	}
	return nil
}

// Benign reports whether the scenario injects no faults.
func (s Scenario) Benign() bool { return len(s.Faults) == 0 || s.AttackEvery <= 0 }

// Config configures one campaign run.
type Config struct {
	// Seed drives every PRNG stream (workload, schedule, dispatch,
	// corruption). Same seed ⇒ bit-identical trace.
	Seed uint64
	// Workers is the number of isolated workers per scenario (default 4).
	Workers int
	// Requests is the per-scenario request count (default 400), unless a
	// scenario overrides it.
	Requests int
	// Scenarios is the scenario table to run, in order.
	Scenarios []Scenario
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Requests <= 0 {
		c.Requests = 400
	}
	return c
}

// Validate checks every scenario and the config itself.
func (c Config) Validate() error {
	if len(c.Scenarios) == 0 {
		return errors.New("campaign: no scenarios")
	}
	seen := make(map[string]bool, len(c.Scenarios))
	for _, s := range c.Scenarios {
		if err := s.Validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("campaign: duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// Executor is one provisioned backend: Workers isolated domains behind a
// Runner implementation. The engine is single-goroutine; executors need
// not be concurrency-safe.
type Executor interface {
	// Exec runs fn inside worker w's domain (w is taken modulo the
	// worker count) with an optional virtual-cycle budget (0 = none). A
	// violation must rewind-and-discard and surface as a
	// *core.ViolationError; a blown budget as a *core.BudgetError.
	Exec(worker int, budget uint64, fn func(*core.DomainCtx) error) error
	// Detections returns per-mechanism containment counts so far.
	Detections() map[string]uint64
	// Rewinds returns total rewind-and-discard recoveries (violations
	// plus budget preemptions) across workers.
	Rewinds() uint64
	// VirtualCycles returns the summed virtual cycles across the
	// executor's simulated machines.
	VirtualCycles() uint64
	// Close releases the executor's domains.
	Close() error
}

// ExecutorFactory provisions an Executor for a target with the given
// worker count. The engine creates one executor per scenario run and
// closes it afterwards.
type ExecutorFactory func(target Target, workers int) (Executor, error)

// BatchCall is one call of an executor batch: its in-domain function
// and per-request cycle budget (0 = none).
type BatchCall struct {
	Budget uint64
	Fn     func(*core.DomainCtx) error
}

// BatchExecutor is implemented by executors that can coalesce
// same-worker calls into one batched domain execution (one Enter/Exit,
// one integrity sweep, one discard decision). The contract RunBatched
// and the batched oracle rely on: results are positional and each
// errs[i] must be what serial Exec(worker, calls[i].Budget,
// calls[i].Fn) would have returned — batched backends achieve this by
// re-deriving outcomes serially whenever a batch faults (the replay
// rule, DESIGN.md §9). Calls may therefore execute more than once.
type BatchExecutor interface {
	Executor
	// ExecBatch runs calls back to back on worker w's domain.
	ExecBatch(worker int, calls []BatchCall) []error
}
