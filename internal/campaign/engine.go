package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/attackgen"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/serde"
	"repro/internal/workload"
)

// ErrRejected tags payloads the in-domain parser or codec refused —
// the benign failure mode malformed input must take (as opposed to a
// detection or a supervisor panic).
var ErrRejected = errors.New("campaign: payload rejected")

// budgetCycles is the per-request budget for FaultBudget requests. The
// burn loop below consumes far more, so the preemption is certain
// regardless of per-worker heap state.
const budgetCycles = 50_000

// subseed derives an independent, deterministic PRNG seed for one named
// stream of one scenario, so workload bytes, fault schedule, dispatch,
// and corruption never share draws (a benign run consumes exactly the
// same workload stream as an attacked one).
func subseed(seed uint64, scenario, stream string) uint64 {
	d := newDigest()
	d.str(scenario)
	d.str(stream)
	return seed ^ d.h
}

// schedule draws the fault interleave: each request is malicious with
// probability 1/AttackEvery, and the class is drawn uniformly from the
// scenario's fault set. Both draws come from a dedicated PRNG stream.
type schedule struct {
	rng    *workload.RNG
	faults []FaultClass
	every  int
}

func newSchedule(sc Scenario, seed uint64) *schedule {
	return &schedule{
		rng:    workload.NewRNG(subseed(seed, sc.Name, "schedule")),
		faults: sc.Faults,
		every:  sc.AttackEvery,
	}
}

func (s *schedule) next() FaultClass {
	if s.every <= 0 || len(s.faults) == 0 {
		return FaultNone
	}
	if s.rng.Intn(s.every) != 0 {
		return FaultNone
	}
	return s.faults[s.rng.Intn(len(s.faults))]
}

// injectFault performs the in-domain half of a fault class. Malformed
// payloads are handled before entry (they corrupt the request bytes);
// everything else happens here, after the parse, like a bug triggered
// by crafted input.
func injectFault(c *core.DomainCtx, fc FaultClass) {
	switch fc {
	case FaultUAF:
		fault.Inject(c, fault.UseAfterFree, 0)
	case FaultHeapOverflow:
		fault.Inject(c, fault.HeapOverflow, 0)
	case FaultFreedHeaderSmash:
		fault.Inject(c, fault.FreedHeaderSmash, 0)
	case FaultCrash:
		fault.Inject(c, fault.Crash, 0)
	case FaultBudget:
		// Model a runaway request: loop loads until the budget preempts.
		// 100k loads ≫ budgetCycles, so this never returns normally.
		p := c.MustAlloc(64)
		for i := 0; i < 100_000; i++ {
			_ = c.MustLoad64(p)
		}
		c.MustFree(p)
	}
}

// classify maps an Exec error to a trace outcome.
func classify(err error) (outcome, mech string) {
	switch {
	case err == nil:
		return OutcomeOK, ""
	case errors.Is(err, ErrRejected):
		return OutcomeRejected, ""
	}
	if _, ok := core.IsBudget(err); ok {
		return OutcomePreempted, ""
	}
	if v, ok := core.IsViolation(err); ok {
		return OutcomeDetected, v.Mechanism.String()
	}
	return OutcomeError, ""
}

// preparedCall is one request after its workload draws: the in-domain
// function (with its cycle budget) and the trusted-side completion.
// Splitting prepare from finish lets the batched pipeline draw a whole
// wave of requests in schedule order, execute them grouped per worker,
// and then apply outcomes in arrival order — consuming exactly the PRNG
// streams and survivor-state transitions of the serial loop.
type preparedCall struct {
	// budget is the per-request virtual-cycle budget (0 = none).
	budget uint64
	// fn is the in-domain half of the request.
	fn func(*core.DomainCtx) error
	// finish classifies the execution outcome and, on OutcomeOK, applies
	// the request to the adapter's survivor state. Must be called in
	// request order.
	finish func(err error) RequestOutcome
}

// adapter is one workload's per-request driver plus its trusted survivor
// state.
type adapter interface {
	// prepare draws request i for worker w with fault class fc from the
	// workload streams and returns its prepared call. Stream consumption
	// happens here, so prepare must be called in request order.
	prepare(w, i int, fc FaultClass) *preparedCall
	// digest fingerprints the survivor state.
	digest() string
}

// runOne executes one prepared request serially — the per-request path.
func runOne(ad adapter, ex Executor, w, i int, fc FaultClass) RequestOutcome {
	pc := ad.prepare(w, i, fc)
	return pc.finish(ex.Exec(w, pc.budget, pc.fn))
}

func newAdapter(sc Scenario, seed uint64) (adapter, error) {
	switch sc.Workload {
	case WorkloadKV:
		gen, err := workload.NewKV(workload.KVConfig{
			Seed: subseed(seed, sc.Name, "workload"), Keys: 512, ValueSize: 64,
		})
		if err != nil {
			return nil, err
		}
		return &kvAdapter{
			gen:   gen,
			corr:  attackgen.NewCorruptor(subseed(seed, sc.Name, "corrupt")),
			items: make(map[string][]byte),
		}, nil
	case WorkloadHTTP:
		gen, err := workload.NewHTTP(workload.HTTPConfig{
			Seed: subseed(seed, sc.Name, "workload"), Paths: 64,
		})
		if err != nil {
			return nil, err
		}
		a := &httpAdapter{
			gen:    gen,
			corr:   attackgen.NewCorruptor(subseed(seed, sc.Name, "corrupt")),
			routes: make(map[string]bool, 32),
			status: make(map[int]uint64),
			body:   newDigest(),
		}
		// Half the path population resolves; the rest 404s.
		for i := 0; i < 32; i++ {
			a.routes[workload.Path(i)] = true
		}
		return a, nil
	case WorkloadFFI:
		name := sc.Codec
		if name == "" {
			name = "binary"
		}
		codec, err := serde.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("campaign: scenario %q: %w", sc.Name, err)
		}
		return &ffiAdapter{
			rng:   workload.NewRNG(subseed(seed, sc.Name, "workload")),
			corr:  attackgen.NewCorruptor(subseed(seed, sc.Name, "corrupt")),
			codec: codec,
			sum:   newDigest(),
		}, nil
	default:
		return nil, fmt.Errorf("campaign: unknown workload %v", sc.Workload)
	}
}

// stageBuf is the shared host-side staging helper (one buffer per
// adapter; the engine is single-goroutine).
type stageBuf struct{ buf []byte }

func (s *stageBuf) stage(n int) []byte {
	if cap(s.buf) < n {
		s.buf = make([]byte, n)
	}
	return s.buf[:n]
}

// ---- kv workload ----

// kvAdapter drives memcached-text commands through the domain parser and
// applies clean ones to a trusted survivor cache (plain host map: the
// analogue of kvstore.Cache living in root-protected memory).
type kvAdapter struct {
	stageBuf
	gen  *workload.KVGenerator
	corr *attackgen.Corruptor

	items  map[string][]byte
	hits   uint64
	misses uint64
	sets   uint64
	dels   uint64
}

// ParseKV parses one complete memcached-text command from b. It mirrors
// kvstore.ReadCommand's grammar (get/gets, set with a length-prefixed
// data block, delete) as a pure function over in-domain bytes, with one
// deliberate difference: b must hold exactly one command (ReadCommand
// reads from a stream and tolerates trailing bytes). The kvstore
// package's differential test pins the two parsers to each other.
func ParseKV(b []byte) (op workload.Op, key string, value []byte, ok bool) {
	head, rest, found := bytes.Cut(b, []byte("\r\n"))
	if !found {
		return 0, "", nil, false
	}
	fields := strings.Fields(string(head))
	if len(fields) == 0 {
		return 0, "", nil, false
	}
	switch fields[0] {
	case "get", "gets":
		if len(fields) != 2 || len(rest) != 0 {
			return 0, "", nil, false
		}
		return workload.OpGet, fields[1], nil, true
	case "delete":
		if len(fields) != 2 || len(rest) != 0 {
			return 0, "", nil, false
		}
		return workload.OpDelete, fields[1], nil, true
	case "set":
		if len(fields) != 5 {
			return 0, "", nil, false
		}
		if _, err := strconv.ParseUint(fields[2], 10, 32); err != nil {
			return 0, "", nil, false
		}
		if exp, err := strconv.Atoi(fields[3]); err != nil || exp < 0 {
			return 0, "", nil, false
		}
		// 1<<20 mirrors kvstore.MaxValueSize (the differential test pins
		// the two).
		n, err := strconv.Atoi(fields[4])
		if err != nil || n < 0 || n > 1<<20 {
			return 0, "", nil, false
		}
		if len(rest) != n+2 || rest[n] != '\r' || rest[n+1] != '\n' {
			return 0, "", nil, false
		}
		return workload.OpSet, fields[1], rest[:n], true
	default:
		return 0, "", nil, false
	}
}

func (a *kvAdapter) prepare(w, i int, fc FaultClass) *preparedCall {
	req := a.gen.Next()
	payload := workload.RenderKVText(req)
	if fc == FaultMalformedPayload {
		payload, _ = a.corr.Corrupt(payload)
	}
	var budget uint64
	if fc == FaultBudget {
		budget = budgetCycles
	}
	var op workload.Op
	var key string
	var value []byte
	return &preparedCall{
		budget: budget,
		fn: func(c *core.DomainCtx) error {
			buf := c.MustAlloc(len(payload) + 1)
			c.MustStore(buf, payload)
			tmp := a.stage(len(payload))
			c.MustLoad(buf, tmp)
			var ok bool
			op, key, value, ok = ParseKV(tmp)
			if ok {
				// Copy out: tmp aliases the reusable staging buffer, which
				// the next call of a batch overwrites before finish runs.
				value = append([]byte(nil), value...)
			}
			injectFault(c, fc)
			c.MustFree(buf)
			if !ok {
				return ErrRejected
			}
			return nil
		},
		finish: func(err error) RequestOutcome {
			outcome, mech := classify(err)
			if outcome == OutcomeOK {
				a.apply(op, key, value)
			}
			return RequestOutcome{I: i, W: w, Fault: fc.String(), Outcome: outcome, Mech: mech}
		},
	}
}

func (a *kvAdapter) apply(op workload.Op, key string, value []byte) {
	switch op {
	case workload.OpSet:
		a.items[key] = value
		a.sets++
	case workload.OpDelete:
		delete(a.items, key)
		a.dels++
	default:
		if _, ok := a.items[key]; ok {
			a.hits++
		} else {
			a.misses++
		}
	}
}

func (a *kvAdapter) digest() string {
	keys := make([]string, 0, len(a.items))
	for k := range a.items {
		keys = append(keys, k)
	}
	// Deterministic order: host map iteration is randomized.
	sort.Strings(keys)
	d := newDigest()
	for _, k := range keys {
		d.str(k)
		d.bytes(a.items[k])
		d.bytes([]byte{0})
	}
	d.u64(a.hits)
	d.u64(a.misses)
	d.u64(a.sets)
	d.u64(a.dels)
	return d.hex()
}

// ---- http workload ----

// httpAdapter drives HTTP/1.1 request heads through the domain parser
// and routes clean ones against a trusted table, tallying statuses.
type httpAdapter struct {
	stageBuf
	gen  *workload.HTTPGenerator
	corr *attackgen.Corruptor

	routes map[string]bool
	status map[int]uint64
	body   *digest // rolling (path, status) stream fingerprint
	served uint64
}

// Parser limits mirrored from internal/httpd (which the engine cannot
// import — httpd depends on the root package that re-exports this
// engine); the httpd package's differential test pins them together.
const (
	maxRequestLine = 4096
	maxHeaders     = 100
	maxHeaderLine  = 4096
)

// ParseHTTP validates an HTTP/1.1 request head and extracts the method
// and path, mirroring httpd's strict parser (including its line and
// header-count limits) as a pure function over in-domain bytes.
func ParseHTTP(b []byte) (method, path string, ok bool) {
	text := string(b)
	head, _, found := strings.Cut(text, "\r\n\r\n")
	if !found {
		return "", "", false
	}
	lines := strings.Split(head, "\r\n")
	if len(lines[0]) > maxRequestLine {
		return "", "", false
	}
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 {
		return "", "", false
	}
	method, path, proto := parts[0], parts[1], parts[2]
	if method == "" || !strings.HasPrefix(path, "/") || !strings.HasPrefix(proto, "HTTP/") {
		return "", "", false
	}
	if len(lines)-1 > maxHeaders {
		return "", "", false
	}
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		if len(ln) > maxHeaderLine {
			return "", "", false
		}
		name, _, found := strings.Cut(ln, ":")
		if !found || name == "" {
			return "", "", false
		}
	}
	return method, path, true
}

func (a *httpAdapter) prepare(w, i int, fc FaultClass) *preparedCall {
	req := a.gen.Next()
	raw := req.Raw
	if fc == FaultMalformedPayload {
		raw, _ = a.corr.Corrupt(raw)
	}
	var budget uint64
	if fc == FaultBudget {
		budget = budgetCycles
	}
	var method, path string
	return &preparedCall{
		budget: budget,
		fn: func(c *core.DomainCtx) error {
			buf := c.MustAlloc(len(raw) + 1)
			c.MustStore(buf, raw)
			tmp := a.stage(len(raw))
			c.MustLoad(buf, tmp)
			var ok bool
			method, path, ok = ParseHTTP(tmp)
			injectFault(c, fc)
			c.MustFree(buf)
			if !ok {
				return ErrRejected
			}
			return nil
		},
		finish: func(err error) RequestOutcome {
			outcome, mech := classify(err)
			if outcome == OutcomeOK {
				a.routeAndTally(method, path)
			}
			return RequestOutcome{I: i, W: w, Fault: fc.String(), Outcome: outcome, Mech: mech}
		},
	}
}

func (a *httpAdapter) routeAndTally(method, path string) {
	status := 200
	switch {
	case method != "GET" && method != "HEAD":
		status = 405
	case !a.routes[path]:
		status = 404
	}
	a.status[status]++
	a.served++
	a.body.str(path)
	a.body.u64(uint64(status))
}

func (a *httpAdapter) digest() string {
	d := newDigest()
	for _, code := range []int{200, 404, 405} {
		d.u64(uint64(code))
		d.u64(a.status[code])
	}
	d.u64(a.served)
	d.u64(a.body.h)
	return d.hex()
}

// ---- ffi workload ----

// ffiAdapter round-trips codec-serialized argument vectors through the
// domain — the SDRaD-FFI transfer path — and folds the decoded values
// into a running checksum (the survivor state).
type ffiAdapter struct {
	stageBuf
	rng   *workload.RNG
	corr  *attackgen.Corruptor
	codec serde.Codec

	calls uint64
	sum   *digest
}

func (a *ffiAdapter) prepare(w, i int, fc FaultClass) *preparedCall {
	// Strings only, so every codec (including raw) carries the vector.
	args := []any{
		fmt.Sprintf("op-%04d", a.rng.Intn(1000)),
		fmt.Sprintf("%016x", a.rng.Uint64()),
	}
	payload, eerr := a.codec.Encode(args)
	if eerr != nil {
		// Codec encode of strings cannot fail; treat as engine error.
		return &preparedCall{
			fn: func(*core.DomainCtx) error { return nil },
			finish: func(error) RequestOutcome {
				return RequestOutcome{I: i, W: w, Fault: fc.String(), Outcome: OutcomeError}
			},
		}
	}
	if fc == FaultMalformedPayload {
		payload, _ = a.corr.Corrupt(payload)
	}
	var budget uint64
	if fc == FaultBudget {
		budget = budgetCycles
	}
	var vals []string
	return &preparedCall{
		budget: budget,
		fn: func(c *core.DomainCtx) error {
			buf := c.MustAlloc(len(payload) + 1)
			c.MustStore(buf, payload)
			tmp := a.stage(len(payload))
			c.MustLoad(buf, tmp)
			decoded, derr := a.codec.Decode(tmp)
			injectFault(c, fc)
			c.MustFree(buf)
			if derr != nil {
				return fmt.Errorf("%w: %v", ErrRejected, derr)
			}
			// Render inside the call: decoded values of the raw codec
			// alias the staging buffer, which the next call of a batch
			// reuses before finish runs.
			vals = vals[:0]
			for _, v := range decoded {
				vals = append(vals, fmt.Sprintf("%T:%v", v, v))
			}
			return nil
		},
		finish: func(err error) RequestOutcome {
			outcome, mech := classify(err)
			if outcome == OutcomeOK {
				a.calls++
				a.sum.u64(uint64(len(vals)))
				for _, s := range vals {
					a.sum.str(s)
				}
			}
			return RequestOutcome{I: i, W: w, Fault: fc.String(), Outcome: outcome, Mech: mech}
		},
	}
}

func (a *ffiAdapter) digest() string {
	d := newDigest()
	d.u64(a.calls)
	d.u64(a.sum.h)
	return d.hex()
}

// ---- engine ----

// Run executes every scenario in cfg against executors provisioned by
// factory and returns the campaign trace. It is a pure function of
// (cfg, factory behavior): same seed, same trace bytes.
func Run(cfg Config, factory ExecutorFactory) (*Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr := &Trace{Seed: cfg.Seed, Workers: cfg.Workers, Requests: cfg.Requests}
	for _, sc := range cfg.Scenarios {
		st, err := runScenario(sc, cfg, factory)
		if err != nil {
			return nil, fmt.Errorf("campaign: scenario %q: %w", sc.Name, err)
		}
		tr.Scenarios = append(tr.Scenarios, st)
	}
	return tr, nil
}

func scenarioRequests(sc Scenario, cfg Config) int {
	if sc.Requests > 0 {
		return sc.Requests
	}
	return cfg.Requests
}

func runScenario(sc Scenario, cfg Config, factory ExecutorFactory) (ScenarioTrace, error) {
	return runScenarioPlan(sc, cfg, factory, nil)
}

// runScenarioPlan is the serial scenario loop, optionally applying a
// resize plan (resize.go) between requests. plan == nil is the plain
// fixed-size run.
func runScenarioPlan(sc Scenario, cfg Config, factory ExecutorFactory, plan *ResizePlan) (st ScenarioTrace, err error) {
	ex, err := factory(sc.Target, cfg.Workers)
	if err != nil {
		return ScenarioTrace{}, err
	}
	// A teardown failure is a finding, not noise: an executor that cannot
	// close cleanly after a scenario invalidates the run, so surface the
	// error instead of discarding the typed result.
	defer func() {
		if cerr := ex.Close(); cerr != nil && err == nil {
			st, err = ScenarioTrace{}, fmt.Errorf("campaign: closing %s executor after %q: %w", sc.Target, sc.Name, cerr)
		}
	}()

	pa, err := newPlanApplier(ex, plan)
	if err != nil {
		return ScenarioTrace{}, err
	}
	ad, err := newAdapter(sc, cfg.Seed)
	if err != nil {
		return ScenarioTrace{}, err
	}
	sched := newSchedule(sc, cfg.Seed)
	dispatch := workload.NewRNG(subseed(cfg.Seed, sc.Name, "dispatch"))

	n := scenarioRequests(sc, cfg)
	st = ScenarioTrace{
		Scenario: sc.Name,
		Workload: sc.Workload.String(),
		Target:   sc.Target.String(),
		Requests: n,
		Outcomes: make([]RequestOutcome, 0, n),
	}
	for i := 0; i < n; i++ {
		if err := pa.before(i); err != nil {
			return ScenarioTrace{}, err
		}
		fc := sched.next()
		w := dispatch.Intn(cfg.Workers)
		out := runOne(ad, ex, w, i, fc)
		st.Outcomes = append(st.Outcomes, out)
		switch out.Outcome {
		case OutcomeOK:
			st.OK++
		case OutcomeRejected:
			st.Rejected++
		case OutcomePreempted:
			st.Preemptions++
		case OutcomeError:
			return ScenarioTrace{}, fmt.Errorf("request %d (worker %d, fault %q) failed unexpectedly", i, w, out.Fault)
		}
	}
	st.Detections = ex.Detections()
	//lint:detorder commutative uint64 sum; iteration order cannot change the total
	for _, v := range st.Detections {
		st.DetectionTotal += v
	}
	st.Rewinds = ex.Rewinds()
	st.VirtualCycles = ex.VirtualCycles()
	st.SurvivorDigest = ad.digest()
	return st, nil
}

// replayBenign re-executes a benign scenario through a minimal loop with
// none of the engine's bookkeeping — no schedule draws, no outcome
// records — and returns the executor's virtual cycles and the survivor
// digest. The benign oracle compares these against the campaign run to
// prove the engine adds no hidden virtual cost.
func replayBenign(sc Scenario, cfg Config, factory ExecutorFactory) (cycles uint64, dig string, err error) {
	cfg = cfg.withDefaults()
	if !sc.Benign() {
		return 0, "", fmt.Errorf("campaign: replay of non-benign scenario %q", sc.Name)
	}
	ex, err := factory(sc.Target, cfg.Workers)
	if err != nil {
		return 0, "", err
	}
	// As in runScenario: a Close failure invalidates the replay.
	defer func() {
		if cerr := ex.Close(); cerr != nil && err == nil {
			cycles, dig, err = 0, "", fmt.Errorf("campaign: closing %s executor after replay of %q: %w", sc.Target, sc.Name, cerr)
		}
	}()
	ad, err := newAdapter(sc, cfg.Seed)
	if err != nil {
		return 0, "", err
	}
	dispatch := workload.NewRNG(subseed(cfg.Seed, sc.Name, "dispatch"))
	n := scenarioRequests(sc, cfg)
	for i := 0; i < n; i++ {
		out := runOne(ad, ex, dispatch.Intn(cfg.Workers), i, FaultNone)
		if out.Outcome == OutcomeError {
			return 0, "", fmt.Errorf("campaign: replay request %d failed", i)
		}
	}
	return ex.VirtualCycles(), ad.digest(), nil
}

// RunBatched executes every scenario like Run, but drives requests
// through the batched execution path: requests are drawn in schedule
// order into waves of batchSize, each wave is partitioned per worker
// (stable), every worker group executes as one coalesced batch via the
// executor's ExecBatch, and outcomes are applied to the survivor state
// in arrival order. Scenario traces carry the same per-request outcome
// streams and survivor digests as the serial Run — the property
// CheckBatched asserts — while virtual cycles and detection totals may
// differ (amortized entries; aborted batches re-derive serially).
// Executors that do not implement BatchExecutor fall back to serial
// execution.
func RunBatched(cfg Config, factory ExecutorFactory, batchSize int) (*Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if batchSize < 1 {
		batchSize = 1
	}
	tr := &Trace{Seed: cfg.Seed, Workers: cfg.Workers, Requests: cfg.Requests}
	for _, sc := range cfg.Scenarios {
		st, err := runScenarioBatched(sc, cfg, factory, batchSize)
		if err != nil {
			return nil, fmt.Errorf("campaign: scenario %q: %w", sc.Name, err)
		}
		tr.Scenarios = append(tr.Scenarios, st)
	}
	return tr, nil
}

func runScenarioBatched(sc Scenario, cfg Config, factory ExecutorFactory, batchSize int) (ScenarioTrace, error) {
	return runScenarioBatchedPlan(sc, cfg, factory, batchSize, nil)
}

// runScenarioBatchedPlan is the batched scenario loop, optionally
// applying a resize plan between waves (waves split at resize
// boundaries so a resize never lands inside a coalesced batch). plan ==
// nil is the plain fixed-size run.
func runScenarioBatchedPlan(sc Scenario, cfg Config, factory ExecutorFactory, batchSize int, plan *ResizePlan) (st ScenarioTrace, err error) {
	ex, err := factory(sc.Target, cfg.Workers)
	if err != nil {
		return ScenarioTrace{}, err
	}
	// As in runScenario: a Close failure invalidates the run.
	defer func() {
		if cerr := ex.Close(); cerr != nil && err == nil {
			st, err = ScenarioTrace{}, fmt.Errorf("campaign: closing %s executor after %q: %w", sc.Target, sc.Name, cerr)
		}
	}()
	bex, batchable := ex.(BatchExecutor)
	pa, err := newPlanApplier(ex, plan)
	if err != nil {
		return ScenarioTrace{}, err
	}

	ad, err := newAdapter(sc, cfg.Seed)
	if err != nil {
		return ScenarioTrace{}, err
	}
	sched := newSchedule(sc, cfg.Seed)
	dispatch := workload.NewRNG(subseed(cfg.Seed, sc.Name, "dispatch"))

	n := scenarioRequests(sc, cfg)
	st = ScenarioTrace{
		Scenario: sc.Name,
		Workload: sc.Workload.String(),
		Target:   sc.Target.String(),
		Requests: n,
		Outcomes: make([]RequestOutcome, 0, n),
	}
	type pending struct {
		w   int
		fc  FaultClass
		pc  *preparedCall
		err error
	}
	for base := 0; base < n; {
		if err := pa.before(base); err != nil {
			return ScenarioTrace{}, err
		}
		end := base + batchSize
		if end > n {
			end = n
		}
		// A resize boundary inside the wave truncates it: the resize
		// happens between batches, never mid-batch.
		if stop := pa.nextBoundary(base, n); stop < end {
			end = stop
		}
		k := end - base
		// Draw the wave in request order: stream consumption (workload,
		// schedule, dispatch, corruption) is identical to the serial loop.
		wave := make([]pending, k)
		for j := range wave {
			fc := sched.next()
			w := dispatch.Intn(cfg.Workers)
			wave[j] = pending{w: w, fc: fc, pc: ad.prepare(w, base+j, fc)}
		}
		// Execute grouped per worker (stable partition): each group is
		// one coalesced batch on that worker's machine.
		if batchable && k > 1 {
			groups := make([][]int, cfg.Workers)
			for j := range wave {
				groups[wave[j].w] = append(groups[wave[j].w], j)
			}
			for w, idxs := range groups {
				if len(idxs) == 0 {
					continue
				}
				calls := make([]BatchCall, len(idxs))
				for k2, j := range idxs {
					calls[k2] = BatchCall{Budget: wave[j].pc.budget, Fn: wave[j].pc.fn}
				}
				for k2, berr := range bex.ExecBatch(w, calls) {
					wave[idxs[k2]].err = berr
				}
			}
		} else {
			for j := range wave {
				wave[j].err = ex.Exec(wave[j].w, wave[j].pc.budget, wave[j].pc.fn)
			}
		}
		// Apply in arrival order: survivor-state evolution matches serial.
		for j := range wave {
			out := wave[j].pc.finish(wave[j].err)
			st.Outcomes = append(st.Outcomes, out)
			switch out.Outcome {
			case OutcomeOK:
				st.OK++
			case OutcomeRejected:
				st.Rejected++
			case OutcomePreempted:
				st.Preemptions++
			case OutcomeError:
				return ScenarioTrace{}, fmt.Errorf("request %d (worker %d, fault %q) failed unexpectedly",
					out.I, out.W, out.Fault)
			}
		}
		base = end
	}
	st.Detections = ex.Detections()
	//lint:detorder commutative uint64 sum; iteration order cannot change the total
	for _, v := range st.Detections {
		st.DetectionTotal += v
	}
	st.Rewinds = ex.Rewinds()
	st.VirtualCycles = ex.VirtualCycles()
	st.SurvivorDigest = ad.digest()
	return st, nil
}
