package campaign

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
)

// coreExecutor is a test executor built directly on internal/core: w
// domains on one System, entered via EnterWithBudget. It proves the
// engine against the real detection/rewind substrate without the public
// Runner wiring (which the root package's tests cover).
type coreExecutor struct {
	sys  *core.System
	udis []core.UDI
}

func newCoreExecutor(workers int) (*coreExecutor, error) {
	sys := core.NewSystem(core.DefaultConfig())
	e := &coreExecutor{sys: sys}
	for i := 0; i < workers; i++ {
		d, err := sys.CreateDomain(core.DomainConfig{HeapPages: 8, StackPages: 4})
		if err != nil {
			return nil, err
		}
		e.udis = append(e.udis, d.UDI())
	}
	return e, nil
}

func coreFactory(t *testing.T) ExecutorFactory {
	return func(target Target, workers int) (Executor, error) {
		return newCoreExecutor(workers)
	}
}

func (e *coreExecutor) Exec(worker int, budget uint64, fn func(*core.DomainCtx) error) error {
	return e.sys.EnterWithBudget(e.udis[worker%len(e.udis)], budget, fn)
}

func (e *coreExecutor) Detections() map[string]uint64 {
	out := make(map[string]uint64)
	for m := detect.MechDomainViolation; m <= detect.MechSegfault; m++ {
		if n := e.sys.Counters().Count(m); n > 0 {
			out[m.String()] = n
		}
	}
	return out
}

func (e *coreExecutor) Rewinds() uint64 {
	var n uint64
	for _, udi := range e.udis {
		d, err := e.sys.Domain(udi)
		if err == nil {
			n += d.Stats().Rewinds
		}
	}
	return n
}

func (e *coreExecutor) VirtualCycles() uint64 { return e.sys.Clock().Cycles() }

func (e *coreExecutor) Close() error {
	for _, udi := range e.udis {
		if err := e.sys.DeinitDomain(udi); err != nil {
			return err
		}
	}
	return nil
}

func testScenarios() []Scenario {
	return []Scenario{
		{
			Name: "kv-mixed", Workload: WorkloadKV, Target: TargetDomain,
			Faults:      []FaultClass{FaultUAF, FaultHeapOverflow, FaultFreedHeaderSmash, FaultCrash, FaultBudget, FaultMalformedPayload},
			AttackEvery: 4,
		},
		{
			Name: "http-mixed", Workload: WorkloadHTTP, Target: TargetPool,
			Faults:      []FaultClass{FaultHeapOverflow, FaultCrash, FaultMalformedPayload},
			AttackEvery: 5,
		},
		{
			Name: "ffi-codec", Workload: WorkloadFFI, Target: TargetBridge,
			Faults:      []FaultClass{FaultMalformedPayload, FaultUAF, FaultBudget},
			AttackEvery: 4, Codec: "json",
		},
		{Name: "kv-benign", Workload: WorkloadKV, Target: TargetDomain},
		{Name: "http-benign", Workload: WorkloadHTTP, Target: TargetPool},
		{Name: "ffi-benign", Workload: WorkloadFFI, Target: TargetBridge, Codec: "raw"},
	}
}

func TestEngineSameSeedBitIdentical(t *testing.T) {
	cfg := Config{Seed: 42, Workers: 3, Requests: 150, Scenarios: testScenarios()}
	t1, err := Run(cfg, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Run(cfg, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := t1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := t2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("same seed produced different traces")
	}
	// A different seed must change the trace (the engine is actually
	// seed-driven, not constant).
	cfg.Seed = 43
	t3, err := Run(cfg, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	j3, err := t3.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(j1, j3) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestFaultClassOutcomes pins the outcome contract per fault class:
// memory-safety classes are detected (with the right mechanism class),
// budget exhaustion preempts, malformed payloads are rejected or pass
// through silently-garbled — never detected, never a supervisor panic.
func TestFaultClassOutcomes(t *testing.T) {
	cfg := Config{Seed: 7, Workers: 2, Requests: 600, Scenarios: testScenarios()[:3]}
	tr, err := Run(cfg, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	wantMech := map[string]string{
		FaultUAF.String():              "heap-canary",
		FaultHeapOverflow.String():     "heap-canary",
		FaultFreedHeaderSmash.String(): "heap-canary",
		FaultCrash.String():            "segfault",
	}
	seen := make(map[string]int)
	for _, st := range tr.Scenarios {
		for _, out := range st.Outcomes {
			seen[out.Fault]++
			switch out.Fault {
			case "":
				if out.Outcome != OutcomeOK && out.Outcome != OutcomeRejected {
					t.Errorf("%s: benign request %d got %q", st.Scenario, out.I, out.Outcome)
				}
			case FaultBudget.String():
				if out.Outcome != OutcomePreempted {
					t.Errorf("%s: budget request %d got %q, want preempted", st.Scenario, out.I, out.Outcome)
				}
			case FaultMalformedPayload.String():
				if out.Outcome != OutcomeRejected && out.Outcome != OutcomeOK {
					t.Errorf("%s: malformed request %d got %q/%q, want rejected or ok", st.Scenario, out.I, out.Outcome, out.Mech)
				}
			default:
				if out.Outcome != OutcomeDetected {
					t.Errorf("%s: %s request %d got %q, want detected", st.Scenario, out.Fault, out.I, out.Outcome)
				} else if want := wantMech[out.Fault]; want != "" && out.Mech != want {
					t.Errorf("%s: %s request %d detected by %q, want %q", st.Scenario, out.Fault, out.I, out.Mech, want)
				}
			}
		}
	}
	for fc := range wantMech {
		if seen[fc] == 0 {
			t.Errorf("schedule never drew fault class %q across 1800 requests", fc)
		}
	}
	if seen[FaultBudget.String()] == 0 || seen[FaultMalformedPayload.String()] == 0 {
		t.Error("schedule never drew budget or malformed classes")
	}
}

func TestDetectionAccountingConsistent(t *testing.T) {
	cfg := Config{Seed: 11, Workers: 2, Requests: 200, Scenarios: testScenarios()[:1]}
	tr, err := Run(cfg, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Scenarios[0]
	var detected uint64
	for _, out := range st.Outcomes {
		if out.Outcome == OutcomeDetected {
			detected++
		}
	}
	if st.DetectionTotal != detected {
		t.Errorf("executor counted %d detections, trace outcomes show %d", st.DetectionTotal, detected)
	}
	if st.Rewinds != detected+st.Preemptions {
		t.Errorf("rewinds %d != detections %d + preemptions %d", st.Rewinds, detected, st.Preemptions)
	}
	if st.OK+st.Rejected+detected+st.Preemptions != uint64(st.Requests) {
		t.Errorf("outcome counts do not partition %d requests", st.Requests)
	}
	if st.VirtualCycles == 0 {
		t.Error("no virtual cycles recorded")
	}
	if len(st.SurvivorDigest) != 16 {
		t.Errorf("bad survivor digest %q", st.SurvivorDigest)
	}
}

func TestConfigValidation(t *testing.T) {
	factory := coreFactory(t)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no scenarios", Config{Seed: 1}, "no scenarios"},
		{"unnamed", Config{Scenarios: []Scenario{{Workload: WorkloadKV, Target: TargetPool}}}, "needs a name"},
		{"bad workload", Config{Scenarios: []Scenario{{Name: "x", Target: TargetPool}}}, "unknown workload"},
		{"bad target", Config{Scenarios: []Scenario{{Name: "x", Workload: WorkloadKV}}}, "unknown target"},
		{"faults without every", Config{Scenarios: []Scenario{{Name: "x", Workload: WorkloadKV, Target: TargetPool, Faults: []FaultClass{FaultUAF}}}}, "without AttackEvery"},
		{"fault none", Config{Scenarios: []Scenario{{Name: "x", Workload: WorkloadKV, Target: TargetPool, Faults: []FaultClass{FaultNone}, AttackEvery: 2}}}, "FaultNone"},
		{"codec on kv", Config{Scenarios: []Scenario{{Name: "x", Workload: WorkloadKV, Target: TargetPool, Codec: "json"}}}, "only meaningful"},
		{"duplicate", Config{Scenarios: []Scenario{
			{Name: "x", Workload: WorkloadKV, Target: TargetPool},
			{Name: "x", Workload: WorkloadKV, Target: TargetPool},
		}}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.cfg, factory)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestSubseedStreamsIndependent(t *testing.T) {
	seen := make(map[uint64]string)
	for _, sc := range []string{"a", "b"} {
		for _, stream := range []string{"workload", "schedule", "dispatch", "corrupt"} {
			s := subseed(99, sc, stream)
			if prev, dup := seen[s]; dup {
				t.Errorf("subseed collision: %s/%s vs %s", sc, stream, prev)
			}
			seen[s] = sc + "/" + stream
		}
	}
	if subseed(1, "a", "workload") == subseed(2, "a", "workload") {
		t.Error("subseed ignores the seed")
	}
}

func TestParseKVTable(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		key  string
		val  string
		desc string
	}{
		{"get key-1\r\n", true, "key-1", "", "get"},
		{"gets key-1\r\n", true, "key-1", "", "gets"},
		{"delete key-1\r\n", true, "key-1", "", "delete"},
		{"set k 0 0 5\r\nhello\r\n", true, "k", "hello", "set"},
		{"set k 0 0 0\r\n\r\n", true, "k", "", "empty set"},
		{"set k 0 0 5\r\nhell\r\n", false, "", "", "short data"},
		{"set k 0 0 -1\r\n\r\n", false, "", "", "negative count"},
		{"get\r\n", false, "", "", "missing key"},
		{"get a b\r\n", false, "", "", "extra field"},
		{"get k\r\ntrailing", false, "", "", "trailing bytes"},
		{"bogus k\r\n", false, "", "", "unknown command"},
		{"no crlf", false, "", "", "unterminated"},
		{"", false, "", "", "empty"},
	}
	for _, tc := range cases {
		_, key, val, ok := ParseKV([]byte(tc.in))
		if ok != tc.ok {
			t.Errorf("%s: ParseKV(%q) ok=%v, want %v", tc.desc, tc.in, ok, tc.ok)
			continue
		}
		if ok && (key != tc.key || string(val) != tc.val) {
			t.Errorf("%s: ParseKV(%q) = %q/%q, want %q/%q", tc.desc, tc.in, key, val, tc.key, tc.val)
		}
	}
}

func TestParseHTTPTable(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"GET / HTTP/1.1\r\n\r\n", true},
		{"HEAD /x HTTP/1.1\r\nhost: h\r\n\r\n", true},
		{"GET /\r\n\r\n", false},
		{"GET x HTTP/1.1\r\n\r\n", false},
		{"GET / FTP/1.1\r\n\r\n", false},
		{"GET / HTTP/1.1\r\nbadheader\r\n\r\n", false},
		{"GET / HTTP/1.1\r\n", false},
		{"", false},
	}
	for _, tc := range cases {
		if _, _, ok := ParseHTTP([]byte(tc.in)); ok != tc.ok {
			t.Errorf("ParseHTTP(%q) ok=%v, want %v", tc.in, ok, tc.ok)
		}
	}
}

func TestTraceSummaryDeterministic(t *testing.T) {
	cfg := Config{Seed: 3, Workers: 2, Requests: 60, Scenarios: testScenarios()[:2]}
	tr, err := Run(cfg, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Summary() != tr.Summary() {
		t.Error("summary not deterministic")
	}
	if !strings.Contains(tr.Summary(), "kv-mixed") {
		t.Error("summary missing scenario name")
	}
}
