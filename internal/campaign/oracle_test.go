package campaign

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestOraclesPassOnCoreExecutor(t *testing.T) {
	cfg := Config{Seed: 21, Requests: 80, Scenarios: testScenarios()}
	results, err := CheckAll(cfg, coreFactory(t), 1, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no oracle results")
	}
	for _, r := range Failures(results) {
		t.Errorf("%s", r)
	}
	// Shape: one same-seed check, one worker-count check per scenario,
	// one benign check per benign scenario.
	var sameSeed, workerCount, benign int
	for _, r := range results {
		switch r.Oracle {
		case "same-seed":
			sameSeed++
		case "worker-count":
			workerCount++
		case "benign":
			benign++
		}
	}
	if sameSeed != 1 || workerCount != len(cfg.Scenarios) || benign != 3 {
		t.Errorf("oracle shape: same-seed=%d worker-count=%d benign=%d", sameSeed, workerCount, benign)
	}
}

// lyingExecutor wraps coreExecutor but reports detections that never
// happened — a stand-in for a containment bug that fires detectors on
// clean traffic. The benign oracle must catch it.
type lyingExecutor struct {
	*coreExecutor
	extraDetections uint64
}

func (e *lyingExecutor) Detections() map[string]uint64 {
	out := e.coreExecutor.Detections()
	out["segfault"] += e.extraDetections
	return out
}

func TestBenignOracleCatchesPhantomDetections(t *testing.T) {
	factory := func(target Target, workers int) (Executor, error) {
		ex, err := newCoreExecutor(workers)
		if err != nil {
			return nil, err
		}
		return &lyingExecutor{coreExecutor: ex, extraDetections: 2}, nil
	}
	cfg := Config{Seed: 5, Requests: 40, Scenarios: []Scenario{
		{Name: "kv-benign", Workload: WorkloadKV, Target: TargetDomain},
	}}
	results, err := CheckBenign(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	fails := Failures(results)
	if len(fails) != 1 || !strings.Contains(fails[0].Detail, "detections on benign traffic") {
		t.Errorf("benign oracle missed phantom detections: %v", results)
	}
}

// driftExecutor makes behavior depend on the worker count: with more
// than one worker it silently swallows violations on odd workers,
// modelling a containment bug that only shows under sharding. The
// worker-count oracle must catch the divergence.
type driftExecutor struct {
	*coreExecutor
	workers int
}

func (e *driftExecutor) Exec(worker int, budget uint64, fn func(*core.DomainCtx) error) error {
	err := e.coreExecutor.Exec(worker, budget, fn)
	if e.workers > 1 && worker%2 == 1 {
		if _, ok := core.IsViolation(err); ok {
			return nil
		}
	}
	return err
}

func TestWorkerCountOracleCatchesDrift(t *testing.T) {
	factory := func(target Target, workers int) (Executor, error) {
		ex, err := newCoreExecutor(workers)
		if err != nil {
			return nil, err
		}
		return &driftExecutor{coreExecutor: ex, workers: workers}, nil
	}
	cfg := Config{Seed: 9, Requests: 120, Scenarios: []Scenario{
		{Name: "kv-attack", Workload: WorkloadKV, Target: TargetDomain,
			Faults: []FaultClass{FaultUAF}, AttackEvery: 4},
	}}
	results, err := CheckWorkerCounts(cfg, factory, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(Failures(results)) == 0 {
		t.Error("worker-count oracle missed behavior drift")
	}
}

func TestSameSeedOracleCatchesNondeterminism(t *testing.T) {
	// A factory whose executor behavior depends on call order across
	// runs: the first constructed executor swallows nothing, the second
	// swallows violations — so run 1 and run 2 of the same seed differ.
	calls := 0
	factory := func(target Target, workers int) (Executor, error) {
		ex, err := newCoreExecutor(workers)
		if err != nil {
			return nil, err
		}
		calls++
		if calls > 1 {
			return &driftExecutor{coreExecutor: ex, workers: 2}, nil
		}
		return ex, nil
	}
	cfg := Config{Seed: 13, Requests: 80, Workers: 4, Scenarios: []Scenario{
		{Name: "kv-attack", Workload: WorkloadKV, Target: TargetDomain,
			Faults: []FaultClass{FaultCrash}, AttackEvery: 3},
	}}
	results, err := CheckSameSeed(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if len(Failures(results)) != 1 {
		t.Errorf("same-seed oracle missed nondeterminism: %v", results)
	}
}

func TestReplayRejectsNonBenign(t *testing.T) {
	sc := Scenario{Name: "x", Workload: WorkloadKV, Target: TargetDomain,
		Faults: []FaultClass{FaultUAF}, AttackEvery: 2}
	if _, _, err := replayBenign(sc, Config{Seed: 1, Requests: 10}, coreFactory(t)); err == nil {
		t.Error("replayBenign accepted a non-benign scenario")
	}
}
