// Package campaign is the deterministic resilience-campaign engine: it
// composes the repo's workloads (kvstore-style text protocol, httpd-style
// request parsing, FFI codec transfer) with injected memory-safety
// faults across the three public Runner backends (Domain, Pool, Bridge),
// interleaved by a seeded PRNG schedule, and records a structured
// outcome trace that differential oracles check:
//
//   - same seed ⇒ bit-identical trace (JSON byte equality);
//   - same scenario across worker counts ⇒ identical per-request
//     detection outcomes and survivor-state digests;
//   - benign-only campaigns ⇒ zero detections and virtual-cycle parity
//     with a direct replay that bypasses the engine's bookkeeping.
//
// The engine deliberately does not construct the public sdrad types
// itself (that would be an import cycle — the root package re-exports
// this engine as sdrad.RunCampaign); instead the caller supplies an
// ExecutorFactory that provisions workers behind one of the three
// Runner implementations. The root package's CampaignFactory is the
// production wiring; tests can substitute instrumented executors.
//
// Everything here is a pure function of (seed, scenario list, worker
// count): no wall clock, no map-iteration dependence, no goroutines.
// See DESIGN.md §8 for the scenario schema and oracle definitions.
//
// # Batched execution
//
// RunBatched drives the same scenarios through coalesced per-worker
// batches (campaign.BatchExecutor — the pool backend implements it via
// the batch engine's replay rule): requests are drawn in schedule
// order, executed in per-worker groups sharing one domain entry, and
// applied to survivor state in arrival order. CheckBatched asserts the
// resulting outcome streams and survivor digests are identical to the
// serial run — the batched==serial oracle. Virtual cycles and detection
// totals are exempt: amortized entries spend fewer cycles, and an
// aborted batch re-derives outcomes serially, legitimately recounting
// detections. DESIGN.md §9 develops the argument.
package campaign
