package campaign

import (
	"fmt"
	"sort"
)

// This file defines the crash-recovery differential oracle. The
// campaign's other oracles compare executions that all finish; this one
// compares an execution that is killed mid-batch — the durability
// engine's torn group commit — against the serially derived survivor
// state of the committed prefix. The runner lives in the kvstore layer
// (it needs a real server and store); the oracle here only defines the
// scenario seeding, the digest currency, and the verdict, keeping the
// import direction campaign ← kvstore-free.

// RecoveryScenario seeds one crash-recovery run: a deterministic
// workload of Requests requests over Workers worker domains, submitted
// in batches of Batch, with the executor killed mid-commit at a
// seed-derived batch.
type RecoveryScenario struct {
	Seed     uint64
	Workers  int
	Batch    int
	Requests int
}

// RecoveryRun is what a RecoveryRunner observed: the survivor digest of
// the state every acknowledged batch built (maintained host-side as the
// run progressed), and the digest of the state a fresh process
// recovered from the store after the kill.
type RecoveryRun struct {
	// CommittedDigest is DigestState of the acknowledged prefix's
	// expected state.
	CommittedDigest string
	// RecoveredDigest is DigestState of the state recovered from disk.
	RecoveredDigest string
	// AckedBatches is how many batches fully committed before the kill;
	// TotalBatches is how many the full run would have submitted.
	AckedBatches int
	TotalBatches int
	// TornTail reports that recovery truncated a torn WAL tail — the
	// kill landed mid-frame, the scenario's whole point.
	TornTail bool
}

// RecoveryRunner executes one crash-recovery scenario end to end:
// run, kill mid-commit, recover in a fresh process, digest both sides.
type RecoveryRunner interface {
	RunRecovery(RecoveryScenario) (RecoveryRun, error)
}

// DigestState deterministically digests a key→value state map — the
// shared currency between a runner's shadow survivor state and its
// recovered dump.
func DigestState(items map[string][]byte) string {
	keys := make([]string, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	// Deterministic order: host map iteration is randomized.
	sort.Strings(keys)
	d := newDigest()
	for _, k := range keys {
		d.str(k)
		d.bytes(items[k])
		d.bytes([]byte{0})
	}
	return d.hex()
}

// CheckRecovery runs the crash-recovery oracle across worker counts and
// batch sizes: for every combination the runner is killed mid-commit at
// a seeded point, recovered, and the recovered state must equal the
// survivor state of exactly the acknowledged batches — no committed
// write lost, no aborted write surviving. Defaults: workers 1/4/8,
// batches 8/32.
func CheckRecovery(r RecoveryRunner, seed uint64, requests int, workerCounts, batchSizes []int) ([]OracleResult, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}
	if len(batchSizes) == 0 {
		batchSizes = []int{8, 32}
	}
	if requests <= 0 {
		requests = 200
	}
	var results []OracleResult
	for _, w := range workerCounts {
		for _, b := range batchSizes {
			// The kill lands in the run's second half, and the verdict
			// requires at least one committed batch before it and one
			// killed after: a run shorter than four batches cannot place
			// that, so small -requests values are floored per batch size
			// rather than silently producing a vacuous scenario.
			n := requests
			if minReq := 4 * b; n < minReq {
				n = minReq
			}
			sc := RecoveryScenario{Seed: seed, Workers: w, Batch: b, Requests: n}
			run, err := r.RunRecovery(sc)
			if err != nil {
				return results, fmt.Errorf("campaign: recovery w=%d b=%d: %w", w, b, err)
			}
			res := OracleResult{
				Oracle:   "recovery",
				Scenario: fmt.Sprintf("kv-crash(w=%d,b=%d)", w, b),
				Pass:     true,
			}
			switch {
			case run.RecoveredDigest != run.CommittedDigest:
				res.Pass = false
				res.Detail = fmt.Sprintf("recovered state %s != committed prefix %s (acked %d/%d batches)",
					run.RecoveredDigest, run.CommittedDigest, run.AckedBatches, run.TotalBatches)
			case run.AckedBatches >= run.TotalBatches:
				res.Pass = false
				res.Detail = fmt.Sprintf("kill never fired: acked %d of %d batches", run.AckedBatches, run.TotalBatches)
			case run.AckedBatches == 0:
				res.Pass = false
				res.Detail = "no batch committed before the kill; scenario checks nothing"
			}
			results = append(results, res)
		}
	}
	return results, nil
}
