package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
)

// RequestOutcome records what one scheduled request did. The fields are
// exactly the ones the differential oracles compare, so the JSON stays
// compact and fully deterministic.
type RequestOutcome struct {
	// I is the request index within the scenario.
	I int `json:"i"`
	// W is the worker the request dispatched to.
	W int `json:"w"`
	// Fault is the injected fault class ("" = benign).
	Fault string `json:"f,omitempty"`
	// Outcome is one of "ok", "rejected", "detected", "preempted",
	// "error".
	Outcome string `json:"o"`
	// Mech is the detection mechanism for "detected" outcomes.
	Mech string `json:"m,omitempty"`
}

// Request outcomes.
const (
	// OutcomeOK: clean run, applied to the survivor state.
	OutcomeOK = "ok"
	// OutcomeRejected: the parser/codec rejected the payload — an
	// application error, not a detection.
	OutcomeRejected = "rejected"
	// OutcomeDetected: a memory-safety detection rewound the domain.
	OutcomeDetected = "detected"
	// OutcomePreempted: the cycle budget preempted the run.
	OutcomePreempted = "preempted"
	// OutcomeError: an unexpected engine-level failure (oracles treat
	// any occurrence as a bug).
	OutcomeError = "error"
	// OutcomeThrottled: the gateway rejected the arrival before any
	// domain work (token-bucket rate limit or inflight quota).
	OutcomeThrottled = "throttled"
	// OutcomeQuarantined: the gateway's circuit breaker rejected a
	// quarantined tenant's arrival.
	OutcomeQuarantined = "quarantined"
	// OutcomeDrained: the arrival landed after drain started; admission
	// was stopped.
	OutcomeDrained = "drained"
	// OutcomeUnavailable: the cluster router nacked the request because
	// its slot had no reachable primary (crash or partition window). The
	// nack is a promise the request executed nowhere; the differential
	// oracle's single-pool side mirrors it by skipping the request.
	OutcomeUnavailable = "unavailable"
)

// ScenarioTrace is the structured record of one scenario run.
type ScenarioTrace struct {
	Scenario string `json:"scenario"`
	Workload string `json:"workload"`
	Target   string `json:"target"`
	Requests int    `json:"requests"`
	// Outcomes has one entry per request, in schedule order.
	Outcomes []RequestOutcome `json:"outcomes"`
	// Detections counts contained violations by mechanism name
	// (encoding/json sorts map keys, so serialization is stable).
	Detections map[string]uint64 `json:"detections"`
	// DetectionTotal sums Detections.
	DetectionTotal uint64 `json:"detection_total"`
	// Preemptions counts budget-preempted requests.
	Preemptions uint64 `json:"preemptions"`
	// Rejected counts parser/codec rejections.
	Rejected uint64 `json:"rejected"`
	// OK counts clean requests.
	OK uint64 `json:"ok"`
	// Rewinds counts rewind-and-discard recoveries (violations plus
	// preemptions) reported by the executor.
	Rewinds uint64 `json:"rewinds"`
	// VirtualCycles is the summed virtual time across the executor's
	// machines, in cycles.
	VirtualCycles uint64 `json:"virtual_cycles"`
	// SurvivorDigest fingerprints the trusted survivor state (cache
	// contents, route tallies, FFI checksums) after the run.
	SurvivorDigest string `json:"survivor_digest"`
}

// Trace is the full campaign record.
type Trace struct {
	Seed      uint64          `json:"seed"`
	Workers   int             `json:"workers"`
	Requests  int             `json:"requests"`
	Scenarios []ScenarioTrace `json:"scenarios"`
}

// JSON renders the trace as stable, indented JSON: two runs with the
// same seed produce byte-identical output.
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Scenario returns the trace of the named scenario, or nil.
func (t *Trace) Scenario(name string) *ScenarioTrace {
	for i := range t.Scenarios {
		if t.Scenarios[i].Scenario == name {
			return &t.Scenarios[i]
		}
	}
	return nil
}

// Summary renders a deterministic one-line-per-scenario text report.
func (t *Trace) Summary() string {
	out := fmt.Sprintf("campaign seed=%d workers=%d requests=%d scenarios=%d\n",
		t.Seed, t.Workers, t.Requests, len(t.Scenarios))
	for _, s := range t.Scenarios {
		out += fmt.Sprintf("  %-28s %-5s %-7s ok=%-5d rejected=%-4d detected=%-4d preempted=%-4d rewinds=%-4d cycles=%-12d digest=%s\n",
			s.Scenario, s.Target, s.Workload, s.OK, s.Rejected, s.DetectionTotal, s.Preemptions, s.Rewinds, s.VirtualCycles, s.SurvivorDigest)
		mechs := make([]string, 0, len(s.Detections))
		for m := range s.Detections {
			mechs = append(mechs, m)
		}
		sort.Strings(mechs)
		for _, m := range mechs {
			out += fmt.Sprintf("    %-26s %d\n", m, s.Detections[m])
		}
	}
	return out
}

// digest is a FNV-1a 64 accumulator for survivor-state fingerprints.
type digest struct{ h uint64 }

func newDigest() *digest { return &digest{h: 0xcbf29ce484222325} }

func (d *digest) bytes(b []byte) {
	for _, c := range b {
		d.h ^= uint64(c)
		d.h *= 0x100000001b3
	}
}

func (d *digest) str(s string) {
	d.bytes([]byte(s))
	d.bytes([]byte{0}) // field separator: "ab","c" ≠ "a","bc"
}

func (d *digest) u64(v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	d.bytes(b[:])
}

func (d *digest) hex() string { return fmt.Sprintf("%016x", d.h) }
