package scenarios

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/gateway"
)

// Gateway returns the shipped multi-tenant gateway scenario table:
// noisy-neighbor flooding, attacking and benign tenants interleaved,
// graceful drain mid-run, and a quarantine/probe recovery cycle. Every
// scenario keeps per-tenant MaxInflight at or above the isolation
// oracle's largest batch size (32), so the inflight quota stays
// wave-shape-independent in batched mode (see campaign.runGateway).
func Gateway() []campaign.GatewayScenario {
	return []campaign.GatewayScenario{
		{
			// A hostile tenant floods six arrivals for every one of the
			// benign tenant's: the flood saturates its own token bucket
			// while the benign tenant's admission decisions never move.
			Name:   "gw-noisy-neighbor",
			Target: campaign.TargetPool,
			Limits: gateway.Limits{Burst: 8, RefillEvery: 2, MaxInflight: 64},
			Tenants: []campaign.TenantSpec{
				{Name: "tame", Workload: campaign.WorkloadKV, Weight: 1},
				{Name: "flood", Workload: campaign.WorkloadHTTP, Weight: 6, Hostile: true},
			},
		},
		{
			// An attacking tenant mixes memory-safety faults into its
			// traffic until the circuit breaker quarantines it; the benign
			// co-tenant's stream is untouched throughout.
			Name:            "gw-attack-tenants",
			Target:          campaign.TargetPool,
			Limits:          gateway.Limits{Burst: 64, RefillEvery: 1, MaxInflight: 64},
			QuarantineAfter: 3,
			Window:          16,
			ProbeEvery:      8,
			Tenants: []campaign.TenantSpec{
				{Name: "steady", Workload: campaign.WorkloadKV, Weight: 2},
				{
					Name: "attacker", Workload: campaign.WorkloadKV, Weight: 2, Hostile: true,
					Faults:      []campaign.FaultClass{campaign.FaultUAF, campaign.FaultHeapOverflow},
					AttackEvery: 2,
				},
			},
		},
		{
			// Drain fires two thirds of the way through a mixed run: every
			// later arrival — benign or hostile — is rejected as drained,
			// at the same composed position in the full and control runs.
			Name:     "gw-drain-mid-run",
			Target:   campaign.TargetPool,
			Limits:   gateway.Limits{Burst: 64, RefillEvery: 1, MaxInflight: 64},
			Requests: 240,
			DrainAt:  160,
			Tenants: []campaign.TenantSpec{
				{Name: "writer", Workload: campaign.WorkloadKV, Weight: 1},
				{Name: "reader", Workload: campaign.WorkloadHTTP, Weight: 1},
				{Name: "churn", Workload: campaign.WorkloadKV, Weight: 2, Hostile: true},
			},
		},
		{
			// Every one of the rogue tenant's requests faults: the breaker
			// trips fast, probes re-admit on cadence, and dirty probes keep
			// the quarantine — a full breaker lifecycle under traffic.
			Name:            "gw-quarantine-probe",
			Target:          campaign.TargetPool,
			Limits:          gateway.Limits{Burst: 64, RefillEvery: 1, MaxInflight: 64},
			QuarantineAfter: 2,
			Window:          8,
			ProbeEvery:      4,
			Tenants: []campaign.TenantSpec{
				{Name: "quiet", Workload: campaign.WorkloadFFI, Weight: 1},
				{
					Name: "rogue", Workload: campaign.WorkloadKV, Weight: 3, Hostile: true,
					Faults:      []campaign.FaultClass{campaign.FaultFreedHeaderSmash, campaign.FaultCrash},
					AttackEvery: 1,
				},
			},
		},
	}
}

// GatewayNames returns the shipped gateway scenario names, in table
// order.
func GatewayNames() []string {
	all := Gateway()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// SelectGateway resolves a comma-separated gateway scenario name list
// ("" or "all" selects the whole table), preserving table order.
func SelectGateway(list string) ([]campaign.GatewayScenario, error) {
	all := Gateway()
	list = strings.TrimSpace(list)
	if list == "" || list == "all" {
		return all, nil
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, s := range all {
			if s.Name == name {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("scenarios: unknown gateway scenario %q (have: %s)", name, strings.Join(GatewayNames(), ", "))
		}
		want[name] = true
	}
	var out []campaign.GatewayScenario
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out, nil
}
