// Package scenarios is the shipped scenario table for the resilience
// campaign engine. A scenario is one struct literal: to add a new
// attack/workload mix, append to All and the engine, cmd/sdrad-campaign,
// the oracles, and the C1 experiment pick it up automatically.
package scenarios

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
)

// All returns the shipped scenario table: every workload crossed with
// every Runner backend, mixing the paper's memory-safety bug classes
// with budget preemptions and malformed payloads, plus one benign
// control per workload for the zero-detection/cycle-parity oracle.
func All() []campaign.Scenario {
	return []campaign.Scenario{
		// KV text protocol.
		{
			Name:     "kv-pool-mixed",
			Workload: campaign.WorkloadKV,
			Target:   campaign.TargetPool,
			Faults: []campaign.FaultClass{
				campaign.FaultUAF, campaign.FaultHeapOverflow,
				campaign.FaultFreedHeaderSmash, campaign.FaultCrash,
			},
			AttackEvery: 7,
		},
		{
			Name:     "kv-domain-heap-attacks",
			Workload: campaign.WorkloadKV,
			Target:   campaign.TargetDomain,
			Faults: []campaign.FaultClass{
				campaign.FaultUAF, campaign.FaultFreedHeaderSmash,
			},
			AttackEvery: 5,
		},
		{
			Name:        "kv-bridge-malformed",
			Workload:    campaign.WorkloadKV,
			Target:      campaign.TargetBridge,
			Faults:      []campaign.FaultClass{campaign.FaultMalformedPayload},
			AttackEvery: 3,
		},
		{
			Name:     "kv-pool-benign",
			Workload: campaign.WorkloadKV,
			Target:   campaign.TargetPool,
		},
		{
			// kv-pool-resize carries the elastic-resize dimension: as a
			// pool-target scenario it is picked up by the resize oracle
			// (CheckResize), which replays it under the canonical
			// 1→4→8→2 grow/shrink schedule and pins outcome + digest
			// equality with the fixed-size run.
			Name:     "kv-pool-resize",
			Workload: campaign.WorkloadKV,
			Target:   campaign.TargetPool,
			Faults: []campaign.FaultClass{
				campaign.FaultHeapOverflow, campaign.FaultUAF, campaign.FaultBudget,
			},
			AttackEvery: 6,
		},
		// HTTP head parsing.
		{
			Name:     "http-pool-mixed",
			Workload: campaign.WorkloadHTTP,
			Target:   campaign.TargetPool,
			Faults: []campaign.FaultClass{
				campaign.FaultHeapOverflow, campaign.FaultCrash, campaign.FaultBudget,
			},
			AttackEvery: 6,
		},
		{
			Name:        "http-domain-malformed",
			Workload:    campaign.WorkloadHTTP,
			Target:      campaign.TargetDomain,
			Faults:      []campaign.FaultClass{campaign.FaultMalformedPayload, campaign.FaultUAF},
			AttackEvery: 4,
		},
		{
			Name:     "http-domain-benign",
			Workload: campaign.WorkloadHTTP,
			Target:   campaign.TargetDomain,
		},
		// FFI codec transfer.
		{
			Name:        "ffi-bridge-binary",
			Workload:    campaign.WorkloadFFI,
			Target:      campaign.TargetBridge,
			Faults:      []campaign.FaultClass{campaign.FaultMalformedPayload, campaign.FaultUAF},
			AttackEvery: 5,
			Codec:       "binary",
		},
		{
			Name:        "ffi-bridge-json-malformed",
			Workload:    campaign.WorkloadFFI,
			Target:      campaign.TargetBridge,
			Faults:      []campaign.FaultClass{campaign.FaultMalformedPayload},
			AttackEvery: 3,
			Codec:       "json",
		},
		{
			Name:        "ffi-pool-runaway",
			Workload:    campaign.WorkloadFFI,
			Target:      campaign.TargetPool,
			Faults:      []campaign.FaultClass{campaign.FaultBudget, campaign.FaultCrash},
			AttackEvery: 8,
		},
		{
			Name:     "ffi-domain-benign",
			Workload: campaign.WorkloadFFI,
			Target:   campaign.TargetDomain,
			Codec:    "raw",
		},
	}
}

// Names returns the shipped scenario names, in table order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// Select resolves a comma-separated scenario name list ("" or "all"
// selects the whole table), preserving table order.
func Select(list string) ([]campaign.Scenario, error) {
	all := All()
	list = strings.TrimSpace(list)
	if list == "" || list == "all" {
		return all, nil
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, s := range all {
			if s.Name == name {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("scenarios: unknown scenario %q (have: %s)", name, strings.Join(Names(), ", "))
		}
		want[name] = true
	}
	var out []campaign.Scenario
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out, nil
}
