package scenarios

import (
	"strings"
	"testing"

	"repro/internal/campaign"
)

func TestAllScenariosValidate(t *testing.T) {
	cfg := campaign.Config{Scenarios: All()}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTableCoversEveryWorkloadAndTarget(t *testing.T) {
	workloads := make(map[campaign.Workload]bool)
	targets := make(map[campaign.Target]bool)
	benign := make(map[campaign.Workload]bool)
	for _, s := range All() {
		workloads[s.Workload] = true
		targets[s.Target] = true
		if s.Benign() {
			benign[s.Workload] = true
		}
	}
	for _, w := range []campaign.Workload{campaign.WorkloadKV, campaign.WorkloadHTTP, campaign.WorkloadFFI} {
		if !workloads[w] {
			t.Errorf("no scenario drives workload %v", w)
		}
		if !benign[w] {
			t.Errorf("no benign control scenario for workload %v (the benign oracle needs one)", w)
		}
	}
	for _, tg := range []campaign.Target{campaign.TargetDomain, campaign.TargetPool, campaign.TargetBridge} {
		if !targets[tg] {
			t.Errorf("no scenario drives target %v", tg)
		}
	}
}

func TestEveryFaultClassIsShipped(t *testing.T) {
	shipped := make(map[campaign.FaultClass]bool)
	for _, s := range All() {
		for _, f := range s.Faults {
			shipped[f] = true
		}
	}
	for _, f := range campaign.FaultClasses() {
		if !shipped[f] {
			t.Errorf("fault class %v appears in no shipped scenario", f)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d scenarios, err %v", len(all), err)
	}
	all, err = Select("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"all\") = %d scenarios, err %v", len(all), err)
	}
	two, err := Select("kv-pool-benign, http-pool-mixed")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(two))
	}
	// Table order is preserved regardless of list order.
	if two[0].Name != "kv-pool-benign" || two[1].Name != "http-pool-mixed" {
		t.Errorf("unexpected order: %s, %s", two[0].Name, two[1].Name)
	}
	if _, err := Select("nope"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("Select(nope) err = %v", err)
	}
}
