package campaign

import (
	"fmt"
)

// This file defines the cluster differential oracle: a cluster of N
// sharded nodes behind the consistent-hash router must be
// observationally equal to one Pool given the same seeded schedule —
// same per-request outcomes, same survivor state digest — serially and
// batched, and across membership faults (node crash, rolling restart,
// partition). The runner lives in the cluster layer (it needs real
// routers and pools); this file only defines the scenario seeding, the
// outcome/digest currency, and the verdict, keeping the import
// direction campaign ← kvstore-free.
//
// Soundness of the comparison rests on three properties the cluster
// tier maintains (argued in DESIGN.md §14): (1) every request executes
// on exactly one primary in pristine per-request worker domains, so a
// request's outcome is a function of the request alone; (2) membership
// events are atomic plan steps between requests — failure detection
// advances deterministically on the arrival-counted membership clock
// and handoff completes before the next dispatch; (3) an unavailable
// nack is a promise the request executed nowhere, so the single-pool
// side may mirror it by skipping that index (shadow-skip) without
// changing any other request's outcome.

// ClusterEventKind names a membership fault injected between requests.
type ClusterEventKind string

// Membership event kinds.
const (
	// ClusterEventKill crash-kills a node (no drain, no goodbye); the
	// survivors' lease-based detection fires and slots fail over.
	ClusterEventKill ClusterEventKind = "kill"
	// ClusterEventRestart rejoins a previously killed or retired node id
	// as a fresh empty process; placement hands its slots back and the
	// handoff syncs refill it.
	ClusterEventRestart ClusterEventKind = "restart"
	// ClusterEventRetire gracefully drains a node, handing its slots off
	// while it is alive (the rolling-restart step; lossless at any
	// replica count).
	ClusterEventRetire ClusterEventKind = "retire"
	// ClusterEventPartition makes a node unreachable without killing it:
	// requests owned by it nack unavailable, replica writes skip it.
	ClusterEventPartition ClusterEventKind = "partition"
	// ClusterEventHeal reconnects a partitioned node and resyncs it.
	ClusterEventHeal ClusterEventKind = "heal"
)

// ClusterEvent is one membership fault, fired immediately before the
// request at index At (batched runs snap it to that request's wave
// boundary).
type ClusterEvent struct {
	// At is the request index the event precedes.
	At int
	// Kind is the fault.
	Kind ClusterEventKind
	// Node is the target node id.
	Node int
}

// ClusterScenario seeds one differential run: the same deterministic
// workload is played into a cluster of Nodes nodes and into one Pool,
// with Events injected cluster-side between requests.
type ClusterScenario struct {
	// Name labels the scenario family ("steady", "crash", ...).
	Name string
	// Seed derives the workload and every seeded choice.
	Seed uint64
	// Nodes is the cluster's node count; Replicas the extra copies per
	// slot.
	Nodes    int
	Replicas int
	// Requests is the schedule length.
	Requests int
	// Batch is the wave size; 0 means serial dispatch.
	Batch int
	// AttackEvery marks every Nth request malicious (0 = benign run).
	AttackEvery int
	// ReadReplicas routes cluster-side GETs across slot holders.
	ReadReplicas bool
	// Events is the membership fault plan, ascending by At.
	Events []ClusterEvent
}

// ClusterOutcome is one request's observable result, the per-index
// comparison currency: what happened, whether the operation reported
// success, and a hash of the returned value.
type ClusterOutcome struct {
	// I is the request's schedule index.
	I int `json:"i"`
	// Outcome is an Outcome* constant.
	Outcome string `json:"o"`
	// OK is the operation's success bit (hit/stored/deleted).
	OK bool `json:"ok"`
	// ValueHash digests the returned value (0 when none).
	ValueHash uint64 `json:"v,omitempty"`
}

// ClusterRun is what a ClusterRunner observed: both sides' per-request
// outcomes, both survivor digests, and the fault bookkeeping the
// verdict's vacuousness guards need.
type ClusterRun struct {
	// Cluster and Single hold per-request outcomes, schedule order.
	Cluster []ClusterOutcome
	Single  []ClusterOutcome
	// ClusterDigest is DigestState of the union of slot-primary states;
	// SingleDigest is DigestState of the pool's state.
	ClusterDigest string
	SingleDigest  string
	// Handoffs counts slot-primary moves; EventsApplied counts plan
	// events that fired; Unavailable counts cluster-side nacks.
	Handoffs      uint64
	EventsApplied int
	Unavailable   int
}

// ClusterRunner executes one cluster differential scenario end to end:
// build both sides, play the schedule with the fault plan, digest and
// classify both sides.
type ClusterRunner interface {
	RunCluster(ClusterScenario) (ClusterRun, error)
}

// clusterScenarios builds the scenario families for one node count:
// steady state, node crash (with rejoin), rolling restart across the
// whole fleet, a network partition window, and read-replica routing.
// Fault families need a second node to be non-vacuous, so n=1 runs
// steady only — which is itself the heart of the oracle: a one-node
// cluster IS a pool behind a router.
func clusterScenarios(seed uint64, n, requests, batch int) []ClusterScenario {
	base := ClusterScenario{
		Seed:        seed,
		Nodes:       n,
		Requests:    requests,
		Batch:       batch,
		AttackEvery: 7,
	}
	steady := base
	steady.Name = "steady"
	if n > 1 {
		steady.Replicas = 1
	}
	out := []ClusterScenario{steady}
	if n < 2 {
		return out
	}

	crash := base
	crash.Name = "crash"
	crash.Replicas = 1
	if n > 2 {
		crash.Replicas = 2
	}
	crash.Events = []ClusterEvent{
		{At: requests / 2, Kind: ClusterEventKill, Node: 1},
		{At: requests * 3 / 4, Kind: ClusterEventRestart, Node: 1},
	}
	out = append(out, crash)

	rolling := base
	rolling.Name = "rolling"
	// Replicas 0: the retire handoff itself must carry every byte.
	for i := 0; i < n; i++ {
		at := requests * (2*i + 1) / (2 * n)
		back := requests * (2*i + 2) / (2 * n)
		if back >= requests {
			back = requests - 1
		}
		rolling.Events = append(rolling.Events,
			ClusterEvent{At: at, Kind: ClusterEventRetire, Node: i},
			ClusterEvent{At: back, Kind: ClusterEventRestart, Node: i},
		)
	}
	out = append(out, rolling)

	part := base
	part.Name = "partition"
	part.Replicas = 1
	part.Events = []ClusterEvent{
		{At: requests / 3, Kind: ClusterEventPartition, Node: 0},
		{At: requests * 2 / 3, Kind: ClusterEventHeal, Node: 0},
	}
	out = append(out, part)

	rr := base
	rr.Name = "read-replica"
	rr.Replicas = 1
	if n > 2 {
		rr.Replicas = 2
	}
	rr.ReadReplicas = true
	out = append(out, rr)
	return out
}

// CheckCluster runs the cluster differential oracle across node counts
// and dispatch modes: for every combination the same seeded schedule
// plays into a cluster and into one Pool, and the two must agree on
// every request's outcome and on the survivor state digest. Defaults:
// nodes 1/2/4; dispatch serial plus batched 8/32. Fault scenarios
// carry vacuousness guards — a crash that triggered no handoff, a
// partition that nacked nothing, or a plan event that never fired
// fails the oracle rather than passing silently.
func CheckCluster(r ClusterRunner, seed uint64, requests int, nodeCounts, batchSizes []int) ([]OracleResult, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4}
	}
	if len(batchSizes) == 0 {
		batchSizes = []int{0, 8, 32}
	}
	if requests <= 0 {
		requests = 120
	}
	var results []OracleResult
	for _, n := range nodeCounts {
		for _, b := range batchSizes {
			// Floors: a batched run needs several waves, and a fault plan
			// needs room for every event window, or the scenario checks
			// nothing.
			req := requests
			if minReq := 4 * b; req < minReq {
				req = minReq
			}
			if minReq := 24 * n; req < minReq {
				req = minReq
			}
			for _, sc := range clusterScenarios(seed, n, req, b) {
				run, err := r.RunCluster(sc)
				if err != nil {
					return results, fmt.Errorf("campaign: cluster %s n=%d b=%d: %w", sc.Name, n, b, err)
				}
				results = append(results, judgeClusterRun(sc, run))
			}
		}
	}
	return results, nil
}

// judgeClusterRun renders one run's verdict: structural equality of
// the outcome streams, digest equality, and the scenario family's
// vacuousness guards.
func judgeClusterRun(sc ClusterScenario, run ClusterRun) OracleResult {
	res := OracleResult{
		Oracle:   "cluster",
		Scenario: fmt.Sprintf("kv-cluster-%s(n=%d,r=%d,b=%d)", sc.Name, sc.Nodes, sc.Replicas, sc.Batch),
		Pass:     true,
	}
	fail := func(format string, args ...any) OracleResult {
		res.Pass = false
		res.Detail = fmt.Sprintf(format, args...)
		return res
	}
	if len(run.Cluster) != sc.Requests || len(run.Single) != sc.Requests {
		return fail("outcome streams truncated: cluster %d, single %d, want %d",
			len(run.Cluster), len(run.Single), sc.Requests)
	}
	for i := range run.Cluster {
		c, s := run.Cluster[i], run.Single[i]
		if c.Outcome != s.Outcome || c.OK != s.OK || c.ValueHash != s.ValueHash {
			return fail("request %d diverged: cluster %s(ok=%v,v=%x) vs single %s(ok=%v,v=%x)",
				i, c.Outcome, c.OK, c.ValueHash, s.Outcome, s.OK, s.ValueHash)
		}
	}
	if run.ClusterDigest != run.SingleDigest {
		return fail("survivor digests diverged: cluster %s != single %s", run.ClusterDigest, run.SingleDigest)
	}
	if run.EventsApplied != len(sc.Events) {
		return fail("fault plan incomplete: %d of %d events fired", run.EventsApplied, len(sc.Events))
	}
	switch sc.Name {
	case "crash", "rolling":
		if sc.Nodes > 1 && run.Handoffs == 0 {
			return fail("%s scenario triggered no handoff; scenario checks nothing", sc.Name)
		}
	case "partition":
		if sc.Nodes > 1 && run.Unavailable == 0 {
			return fail("partition window nacked nothing; scenario checks nothing")
		}
	case "steady":
		if run.Unavailable != 0 {
			return fail("steady state produced %d unavailable nacks", run.Unavailable)
		}
	}
	return res
}
