package campaign

import (
	"errors"
	"strings"
	"testing"
)

// closeFail wraps a real executor so Close reports a failure after
// releasing the underlying domains.
type closeFail struct {
	Executor
	err error
}

func (c closeFail) Close() error {
	if err := c.Executor.Close(); err != nil {
		return err
	}
	return c.err
}

// TestScenarioCloseFailureInvalidatesRun pins a fix sdradlint's
// errclass analyzer surfaced: executor Close errors were silently
// swallowed after each scenario. A teardown failure is a finding — an
// executor that cannot close cleanly invalidates the run — so Run must
// fail and wrap the typed error.
func TestScenarioCloseFailureInvalidatesRun(t *testing.T) {
	base := coreFactory(t)
	wantErr := errors.New("stub: close failed")
	factory := func(target Target, workers int) (Executor, error) {
		ex, err := base(target, workers)
		if err != nil {
			return nil, err
		}
		return closeFail{Executor: ex, err: wantErr}, nil
	}
	cfg := Config{Seed: 11, Workers: 2, Requests: 30, Scenarios: testScenarios()[:1]}
	tr, err := Run(cfg, factory)
	if err == nil {
		t.Fatal("Run succeeded despite a failing executor Close")
	}
	if !errors.Is(err, wantErr) {
		t.Fatalf("Run error %v does not wrap the executor's Close error", err)
	}
	if !strings.Contains(err.Error(), "closing") {
		t.Errorf("Run error %q does not name the teardown phase", err)
	}
	if tr != nil {
		t.Errorf("Run returned a trace alongside the error: %+v", tr)
	}
}

// TestScenarioBatchedCloseFailureInvalidatesRun covers the batched
// engine path the same way.
func TestScenarioBatchedCloseFailureInvalidatesRun(t *testing.T) {
	base := coreFactory(t)
	wantErr := errors.New("stub: close failed")
	factory := func(target Target, workers int) (Executor, error) {
		ex, err := base(target, workers)
		if err != nil {
			return nil, err
		}
		return closeFail{Executor: ex, err: wantErr}, nil
	}
	cfg := Config{Seed: 11, Workers: 2, Requests: 30, Scenarios: testScenarios()[:1]}
	if _, err := RunBatched(cfg, factory, 8); err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("RunBatched error %v, want one wrapping the executor's Close error", err)
	}
}
