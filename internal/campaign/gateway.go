package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"regexp"

	"repro/internal/gateway"
	"repro/internal/workload"
)

// This file drives multi-tenant traffic through a real gateway.Gateway
// in front of a campaign executor, producing per-tenant outcome traces,
// and defines the isolation oracle on top: a benign tenant's outcomes
// and survivor digest must be byte-identical with and without a hostile
// co-tenant's traffic. The differential works because every stream a
// tenant consumes — workload bytes, fault schedule, worker dispatch,
// corruption — is seeded per tenant, and every gateway decision advances
// on tenant-local state (DESIGN.md §12): removing one tenant's arrivals
// cannot move any draw or any admission decision of another.

// TenantSpec describes one tenant's traffic in a gateway scenario.
type TenantSpec struct {
	// Name is the tenant identity ([a-z0-9-]+); the synthetic bearer
	// token is derived from it deterministically.
	Name string
	// Workload selects the request shape this tenant drives.
	Workload Workload
	// Faults is the fault set this tenant's schedule draws from; empty
	// means benign traffic.
	Faults []FaultClass
	// AttackEvery sets the expected fault spacing (as Scenario's field).
	AttackEvery int
	// Weight is the tenant's share of composed arrival slots (default 1):
	// a tenant with Weight 3 arrives three times as often as Weight 1.
	Weight int
	// Hostile marks the tenant the isolation oracle removes in its
	// control run; non-hostile tenants are the ones whose outcomes must
	// not move.
	Hostile bool
	// Limits overrides the scenario's default per-tenant limits.
	Limits *gateway.Limits
}

// GatewayScenario is one multi-tenant gateway composition: tenants with
// weighted interleaved arrivals in front of one executor, admission
// decided by a real gateway.Gateway.
type GatewayScenario struct {
	// Name identifies the scenario in traces and flags.
	Name string
	// Target selects the Runner backend behind the gateway.
	Target Target
	// Tenants is the tenant roster; at least one must be non-hostile.
	Tenants []TenantSpec
	// Requests overrides Config.Requests (composed arrivals across all
	// tenants) when > 0.
	Requests int
	// Limits is the default per-tenant admission bound (TenantSpec.Limits
	// overrides it per tenant).
	Limits gateway.Limits
	// QuarantineAfter, Window, and ProbeEvery configure the circuit
	// breaker exactly as gateway.Config does (zero values take the
	// gateway defaults; QuarantineAfter < 0 disables quarantine).
	QuarantineAfter int
	// Window is the breaker's sliding-window length.
	Window int
	// ProbeEvery is the quarantine probe cadence.
	ProbeEvery uint64
	// DrainAt fires gateway.StartDrain before composed arrival DrainAt
	// (0 = never): every later arrival is rejected as drained. The index
	// is in composed-arrival space, so the drain point is identical in
	// the isolation oracle's full and control runs.
	DrainAt int
}

var tenantName = regexp.MustCompile(`^[a-z0-9-]+$`)

// Validate reports structural problems with the gateway scenario.
func (s GatewayScenario) Validate() error {
	if s.Name == "" {
		return errors.New("campaign: gateway scenario needs a name")
	}
	switch s.Target {
	case TargetDomain, TargetPool, TargetBridge:
	default:
		return fmt.Errorf("campaign: gateway scenario %q: unknown target %v", s.Name, s.Target)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("campaign: gateway scenario %q: no tenants", s.Name)
	}
	seen := make(map[string]bool, len(s.Tenants))
	benign := false
	for _, t := range s.Tenants {
		if !tenantName.MatchString(t.Name) {
			return fmt.Errorf("campaign: gateway scenario %q: bad tenant name %q", s.Name, t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("campaign: gateway scenario %q: duplicate tenant %q", s.Name, t.Name)
		}
		seen[t.Name] = true
		if !t.Hostile {
			benign = true
		}
		switch t.Workload {
		case WorkloadKV, WorkloadHTTP, WorkloadFFI:
		default:
			return fmt.Errorf("campaign: gateway scenario %q tenant %q: unknown workload %v", s.Name, t.Name, t.Workload)
		}
		if len(t.Faults) > 0 && t.AttackEvery <= 0 {
			return fmt.Errorf("campaign: gateway scenario %q tenant %q: faults without AttackEvery", s.Name, t.Name)
		}
	}
	if !benign {
		return fmt.Errorf("campaign: gateway scenario %q: every tenant is hostile; the isolation differential needs a benign tenant", s.Name)
	}
	if s.DrainAt < 0 {
		return fmt.Errorf("campaign: gateway scenario %q: negative DrainAt", s.Name)
	}
	return nil
}

// GatewayOutcome is one composed arrival's record: the standard request
// outcome plus the tenant it belonged to. I is the composed arrival
// index, so full and control runs of the isolation oracle line up
// positionally.
type GatewayOutcome struct {
	// Tenant is the arriving tenant's name.
	Tenant string `json:"t"`
	RequestOutcome
}

// TenantTrace is one tenant's view of a gateway scenario run.
type TenantTrace struct {
	// Tenant is the tenant name; Hostile echoes the spec.
	Tenant  string `json:"tenant"`
	Hostile bool   `json:"hostile,omitempty"`
	// Arrivals counts the tenant's composed arrivals; the admission
	// fields partition them together with the execution outcomes.
	Arrivals    int    `json:"arrivals"`
	Throttled   uint64 `json:"throttled"`
	Quarantined uint64 `json:"quarantined"`
	Drained     uint64 `json:"drained"`
	OK          uint64 `json:"ok"`
	Rejected    uint64 `json:"rejected"`
	Detected    uint64 `json:"detected"`
	Preempted   uint64 `json:"preempted"`
	// Quarantines, Probes, and Readmissions are the tenant's circuit-
	// breaker lifecycle counts from the gateway's own metrics.
	Quarantines  uint64 `json:"quarantines"`
	Probes       uint64 `json:"probes"`
	Readmissions uint64 `json:"readmissions"`
	// SurvivorDigest fingerprints the tenant's trusted survivor state.
	SurvivorDigest string `json:"survivor_digest"`
}

// GatewayTrace is the structured record of one gateway scenario run.
type GatewayTrace struct {
	Scenario string `json:"scenario"`
	Target   string `json:"target"`
	Workers  int    `json:"workers"`
	Requests int    `json:"requests"`
	// Drained reports that StartDrain fired during the run.
	Drained bool `json:"drained,omitempty"`
	// Outcomes has one entry per composed arrival, in arrival order.
	Outcomes []GatewayOutcome `json:"outcomes"`
	// Tenants has one entry per tenant, in roster order.
	Tenants []TenantTrace `json:"tenants"`
	// VirtualCycles is the executor's summed virtual time.
	VirtualCycles uint64 `json:"virtual_cycles"`
}

// JSON renders the trace as stable, indented JSON: same seed, same
// bytes.
func (t *GatewayTrace) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Tenant returns the named tenant's trace, or nil.
func (t *GatewayTrace) Tenant(name string) *TenantTrace {
	for i := range t.Tenants {
		if t.Tenants[i].Tenant == name {
			return &t.Tenants[i]
		}
	}
	return nil
}

// Summary renders a deterministic one-line-per-tenant text report.
func (t *GatewayTrace) Summary() string {
	out := fmt.Sprintf("gateway %s target=%s workers=%d requests=%d drained=%v\n",
		t.Scenario, t.Target, t.Workers, t.Requests, t.Drained)
	for _, tt := range t.Tenants {
		role := "benign"
		if tt.Hostile {
			role = "hostile"
		}
		out += fmt.Sprintf("  %-16s %-7s arrivals=%-5d ok=%-5d rejected=%-4d detected=%-4d preempted=%-4d throttled=%-4d quarantined=%-4d drained=%-4d trips=%d probes=%d readmissions=%d digest=%s\n",
			tt.Tenant, role, tt.Arrivals, tt.OK, tt.Rejected, tt.Detected, tt.Preempted,
			tt.Throttled, tt.Quarantined, tt.Drained, tt.Quarantines, tt.Probes, tt.Readmissions, tt.SurvivorDigest)
	}
	return out
}

// gwRequests resolves the composed arrival count.
func gwRequests(sc GatewayScenario, cfg Config) int {
	if sc.Requests > 0 {
		return sc.Requests
	}
	return cfg.Requests
}

// newGatewayFor builds the real gateway for a scenario run: synthetic
// deterministic tokens, the scenario's limits and breaker settings.
func newGatewayFor(sc GatewayScenario) (*gateway.Gateway, error) {
	tokens := make(map[string]string, len(sc.Tenants))
	overrides := make(map[string]gateway.Limits)
	for _, t := range sc.Tenants {
		tokens[t.Name] = "tok-" + t.Name
		if t.Limits != nil {
			overrides[t.Name] = *t.Limits
		}
	}
	table, err := gateway.NewTable(tokens)
	if err != nil {
		return nil, err
	}
	return gateway.New(gateway.Config{
		Table:           table,
		Limits:          sc.Limits,
		Overrides:       overrides,
		QuarantineAfter: sc.QuarantineAfter,
		Window:          sc.Window,
		ProbeEvery:      sc.ProbeEvery,
	})
}

// slotOrder interleaves tenants by weight into the repeating composed
// arrival pattern: weights {2,1} yield tenant indexes [0,1,0].
func slotOrder(tenants []TenantSpec) []int {
	rem := make([]int, len(tenants))
	total := 0
	for i, t := range tenants {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		rem[i] = w
		total += w
	}
	out := make([]int, 0, total)
	for len(out) < total {
		for i := range rem {
			if rem[i] > 0 {
				out = append(out, i)
				rem[i]--
			}
		}
	}
	return out
}

// tenantRun is one tenant's live state during a scenario run: its own
// adapter (survivor state), fault schedule, and dispatch stream, all
// seeded under the pseudo-scenario name "<scenario>/<tenant>" so streams
// are independent across tenants and never shared with other scenarios.
type tenantRun struct {
	spec     TenantSpec
	ad       adapter
	sched    *schedule
	dispatch *workload.RNG
	arrivals int
}

func newTenantRuns(sc GatewayScenario, seed uint64) ([]*tenantRun, error) {
	runs := make([]*tenantRun, len(sc.Tenants))
	for i, t := range sc.Tenants {
		pseudo := Scenario{
			Name:        sc.Name + "/" + t.Name,
			Workload:    t.Workload,
			Target:      sc.Target,
			Faults:      t.Faults,
			AttackEvery: t.AttackEvery,
		}
		ad, err := newAdapter(pseudo, seed)
		if err != nil {
			return nil, err
		}
		runs[i] = &tenantRun{
			spec:     t,
			ad:       ad,
			sched:    newSchedule(pseudo, seed),
			dispatch: workload.NewRNG(subseed(seed, pseudo.Name, "dispatch")),
		}
	}
	return runs, nil
}

// admissionOutcome maps a typed gateway rejection to its trace outcome.
// Quota rejections land in "throttled" with the rate-limit ones: both
// are overload shedding. An unexpected error class maps to
// OutcomeError, which aborts the run.
func admissionOutcome(err error) string {
	if _, ok := gateway.IsRateLimit(err); ok {
		return OutcomeThrottled
	}
	if _, ok := gateway.IsQuota(err); ok {
		return OutcomeThrottled
	}
	if _, ok := gateway.IsQuarantined(err); ok {
		return OutcomeQuarantined
	}
	if gateway.IsDraining(err) {
		return OutcomeDrained
	}
	return OutcomeError
}

// RunGateway executes one gateway scenario serially: composed arrivals
// in weighted round-robin order, each drawn from its tenant's streams,
// admitted through a real gateway, and executed on the factory's
// backend. Same seed, same trace bytes.
func RunGateway(sc GatewayScenario, cfg Config, factory ExecutorFactory) (*GatewayTrace, error) {
	return runGateway(sc, cfg, factory, 1, false)
}

// RunGatewayBatched is RunGateway through the batched pipeline:
// arrivals are drawn and admitted in waves of batchSize, admitted calls
// coalesce per worker (one batched domain execution where the executor
// supports it), and outcomes complete in arrival order.
func RunGatewayBatched(sc GatewayScenario, cfg Config, factory ExecutorFactory, batchSize int) (*GatewayTrace, error) {
	if batchSize < 1 {
		batchSize = 1
	}
	return runGateway(sc, cfg, factory, batchSize, false)
}

// runGateway is the shared engine. skipHostile is the isolation
// oracle's control run: hostile tenants' arrivals simply never happen —
// their slots stay empty, so every other tenant keeps its composed
// arrival positions, wave boundaries, and stream draws.
//
// Admission (and the drain trigger) happens at draw time in arrival
// order; completions feed back to the gateway in arrival order after
// the wave executes. A tenant can therefore hold up to one wave of
// inflight admissions, which is why shipped scenarios keep per-tenant
// MaxInflight at or above the largest oracle batch size — it makes the
// quota check wave-shape-independent, preserving the isolation
// differential in batched mode.
func runGateway(sc GatewayScenario, cfg Config, factory ExecutorFactory, batchSize int, skipHostile bool) (tr *GatewayTrace, err error) {
	cfg = cfg.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	ex, err := factory(sc.Target, cfg.Workers)
	if err != nil {
		return nil, err
	}
	// As in runScenario: an executor that cannot close cleanly
	// invalidates the run.
	defer func() {
		if cerr := ex.Close(); cerr != nil && err == nil {
			tr, err = nil, fmt.Errorf("campaign: closing %s executor after %q: %w", sc.Target, sc.Name, cerr)
		}
	}()
	bex, batchable := ex.(BatchExecutor)

	gw, err := newGatewayFor(sc)
	if err != nil {
		return nil, err
	}
	runs, err := newTenantRuns(sc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	slots := slotOrder(sc.Tenants)

	n := gwRequests(sc, cfg)
	tr = &GatewayTrace{
		Scenario: sc.Name,
		Target:   sc.Target.String(),
		Workers:  cfg.Workers,
		Requests: n,
		Outcomes: make([]GatewayOutcome, 0, n),
	}

	type pending struct {
		t   *tenantRun
		idx int
		w   int
		fc  FaultClass
		pc  *preparedCall
		tk  *gateway.Ticket
		// rejected is the admission outcome ("" = admitted).
		rejected string
		err      error
	}
	for base := 0; base < n; base += batchSize {
		end := base + batchSize
		if end > n {
			end = n
		}
		// Draw and admit in composed arrival order. The drain trigger and
		// every admission decision happen here, before any execution, so
		// their order is a pure function of the arrival sequence.
		wave := make([]pending, 0, end-base)
		for idx := base; idx < end; idx++ {
			if sc.DrainAt > 0 && idx == sc.DrainAt {
				gw.StartDrain()
				tr.Drained = true
			}
			t := runs[slots[idx%len(slots)]]
			if skipHostile && t.spec.Hostile {
				continue
			}
			t.arrivals++
			fc := t.sched.next()
			w := t.dispatch.Intn(cfg.Workers)
			// Draw-and-discard: the workload stream advances on every
			// arrival, admitted or not, so a tenant's stream position
			// depends only on its own arrival count.
			pc := t.ad.prepare(w, idx, fc)
			p := pending{t: t, idx: idx, w: w, fc: fc, pc: pc}
			tk, aerr := gw.Admit(t.spec.Name)
			if aerr != nil {
				p.rejected = admissionOutcome(aerr)
				if p.rejected == OutcomeError {
					return nil, fmt.Errorf("campaign: gateway scenario %q: arrival %d (tenant %s): unexpected admission error: %w",
						sc.Name, idx, t.spec.Name, aerr)
				}
			} else {
				p.tk = tk
			}
			wave = append(wave, p)
		}
		// Execute admitted calls grouped per worker.
		if batchable && end-base > 1 {
			groups := make([][]int, cfg.Workers)
			for j := range wave {
				if wave[j].tk != nil {
					groups[wave[j].w] = append(groups[wave[j].w], j)
				}
			}
			for w, idxs := range groups {
				if len(idxs) == 0 {
					continue
				}
				calls := make([]BatchCall, len(idxs))
				for k, j := range idxs {
					calls[k] = BatchCall{Budget: wave[j].pc.budget, Fn: wave[j].pc.fn}
				}
				for k, berr := range bex.ExecBatch(w, calls) {
					wave[idxs[k]].err = berr
				}
			}
		} else {
			for j := range wave {
				if wave[j].tk != nil {
					wave[j].err = ex.Exec(wave[j].w, wave[j].pc.budget, wave[j].pc.fn)
				}
			}
		}
		// Complete in arrival order: survivor state and the gateway's
		// detection windows evolve exactly as the arrival sequence says.
		for j := range wave {
			p := &wave[j]
			var out RequestOutcome
			if p.tk == nil {
				out = RequestOutcome{I: p.idx, W: p.w, Fault: p.fc.String(), Outcome: p.rejected}
			} else {
				out = p.pc.finish(p.err)
				p.tk.Done(out.Outcome == OutcomeDetected, out.Outcome == OutcomePreempted)
				if out.Outcome == OutcomeError {
					return nil, fmt.Errorf("campaign: gateway scenario %q: arrival %d (tenant %s, fault %q) failed unexpectedly",
						sc.Name, out.I, p.t.spec.Name, out.Fault)
				}
			}
			tr.Outcomes = append(tr.Outcomes, GatewayOutcome{Tenant: p.t.spec.Name, RequestOutcome: out})
		}
	}

	for _, t := range runs {
		tt := TenantTrace{
			Tenant:         t.spec.Name,
			Hostile:        t.spec.Hostile,
			Arrivals:       t.arrivals,
			SurvivorDigest: t.ad.digest(),
		}
		c := gw.Stats().Get(t.spec.Name)
		tt.Quarantines, tt.Probes, tt.Readmissions = c.Quarantines, c.Probes, c.Readmissions
		for _, out := range tr.Outcomes {
			if out.Tenant != t.spec.Name {
				continue
			}
			switch out.Outcome {
			case OutcomeOK:
				tt.OK++
			case OutcomeRejected:
				tt.Rejected++
			case OutcomeDetected:
				tt.Detected++
			case OutcomePreempted:
				tt.Preempted++
			case OutcomeThrottled:
				tt.Throttled++
			case OutcomeQuarantined:
				tt.Quarantined++
			case OutcomeDrained:
				tt.Drained++
			}
		}
		tr.Tenants = append(tr.Tenants, tt)
	}
	tr.VirtualCycles = ex.VirtualCycles()
	return tr, nil
}

// CheckIsolation is the gateway tier's differential oracle: for every
// worker count (serial) and every worker-count × batch-size combination
// (batched), the scenario runs twice — once in full, once with every
// hostile tenant's arrivals removed — and each non-hostile tenant's
// per-arrival outcomes and survivor digest must be identical in both
// runs. A divergence means a hostile co-tenant moved a benign tenant's
// admission decisions, stream draws, or surviving state — the isolation
// property the gateway exists to provide. Defaults: workers 1/4/8,
// batches 8/32.
func CheckIsolation(sc GatewayScenario, cfg Config, factory ExecutorFactory, workerCounts, batchSizes []int) ([]OracleResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	hostile := false
	for _, t := range sc.Tenants {
		hostile = hostile || t.Hostile
	}
	if !hostile {
		return nil, fmt.Errorf("campaign: isolation oracle on %q: no hostile tenant to remove", sc.Name)
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}
	if len(batchSizes) == 0 {
		batchSizes = []int{8, 32}
	}
	var out []OracleResult
	check := func(oracle string, w, batch int) error {
		full, err := runGateway(sc, withWorkers(cfg, w), factory, batch, false)
		if err != nil {
			return fmt.Errorf("campaign: isolation full run (w=%d,b=%d): %w", w, batch, err)
		}
		ctrl, err := runGateway(sc, withWorkers(cfg, w), factory, batch, true)
		if err != nil {
			return fmt.Errorf("campaign: isolation control run (w=%d,b=%d): %w", w, batch, err)
		}
		res := OracleResult{Oracle: oracle, Scenario: fmt.Sprintf("%s(w=%d)", sc.Name, w), Pass: true}
		if d := diffIsolation(full, ctrl); d != "" {
			res.Pass, res.Detail = false, d
		}
		out = append(out, res)
		return nil
	}
	for _, w := range workerCounts {
		if err := check("isolation", w, 1); err != nil {
			return out, err
		}
	}
	for _, w := range workerCounts {
		for _, b := range batchSizes {
			if err := check(fmt.Sprintf("isolation(batch=%d)", b), w, b); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}

func withWorkers(cfg Config, w int) Config {
	cfg.Workers = w
	return cfg
}

// diffIsolation compares every non-hostile tenant between the full run
// and the hostile-removed control run and describes the first
// divergence.
func diffIsolation(full, ctrl *GatewayTrace) string {
	for _, tt := range full.Tenants {
		if tt.Hostile {
			continue
		}
		ct := ctrl.Tenant(tt.Tenant)
		if ct == nil {
			return fmt.Sprintf("tenant %s missing from control run", tt.Tenant)
		}
		var f, c []GatewayOutcome
		for _, o := range full.Outcomes {
			if o.Tenant == tt.Tenant {
				f = append(f, o)
			}
		}
		for _, o := range ctrl.Outcomes {
			if o.Tenant == tt.Tenant {
				c = append(c, o)
			}
		}
		if len(f) != len(c) {
			return fmt.Sprintf("tenant %s: %d arrivals in full run vs %d in control", tt.Tenant, len(f), len(c))
		}
		for i := range f {
			if f[i] != c[i] {
				return fmt.Sprintf("tenant %s arrival %d: %s/%s/%s@w%d(i=%d) in full run vs %s/%s/%s@w%d(i=%d) in control",
					tt.Tenant, i,
					f[i].Fault, f[i].Outcome, f[i].Mech, f[i].W, f[i].I,
					c[i].Fault, c[i].Outcome, c[i].Mech, c[i].W, c[i].I)
			}
		}
		if tt.SurvivorDigest != ct.SurvivorDigest {
			return fmt.Sprintf("tenant %s: survivor digest %s in full run vs %s in control",
				tt.Tenant, tt.SurvivorDigest, ct.SurvivorDigest)
		}
	}
	return ""
}
