package campaign

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gateway"
)

func testGatewayScenario() GatewayScenario {
	return GatewayScenario{
		Name:            "gw-test",
		Target:          TargetDomain,
		Limits:          gateway.Limits{Burst: 64, RefillEvery: 1, MaxInflight: 64},
		QuarantineAfter: 3,
		Window:          16,
		ProbeEvery:      8,
		Tenants: []TenantSpec{
			{Name: "benign", Workload: WorkloadKV, Weight: 2},
			{
				Name: "attacker", Workload: WorkloadKV, Weight: 2, Hostile: true,
				Faults: []FaultClass{FaultUAF, FaultHeapOverflow}, AttackEvery: 2,
			},
		},
	}
}

func TestGatewayScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*GatewayScenario)
		want string
	}{
		{"no name", func(s *GatewayScenario) { s.Name = "" }, "needs a name"},
		{"bad target", func(s *GatewayScenario) { s.Target = 0 }, "unknown target"},
		{"no tenants", func(s *GatewayScenario) { s.Tenants = nil }, "no tenants"},
		{"bad tenant name", func(s *GatewayScenario) { s.Tenants[0].Name = "Bad Name" }, "bad tenant name"},
		{"duplicate tenant", func(s *GatewayScenario) { s.Tenants[1].Name = s.Tenants[0].Name }, "duplicate tenant"},
		{"bad workload", func(s *GatewayScenario) { s.Tenants[0].Workload = 0 }, "unknown workload"},
		{"faults without every", func(s *GatewayScenario) { s.Tenants[1].AttackEvery = 0 }, "without AttackEvery"},
		{"all hostile", func(s *GatewayScenario) { s.Tenants[0].Hostile = true }, "every tenant is hostile"},
		{"negative drain", func(s *GatewayScenario) { s.DrainAt = -1 }, "negative DrainAt"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := testGatewayScenario()
			tc.mut(&sc)
			err := sc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
	if err := testGatewayScenario().Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestGatewaySameSeedBitIdentical(t *testing.T) {
	sc := testGatewayScenario()
	cfg := Config{Seed: 42, Workers: 3, Requests: 120}
	t1, err := RunGateway(sc, cfg, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunGateway(sc, cfg, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := t1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := t2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("same seed produced different gateway traces")
	}
	cfg.Seed = 43
	t3, err := RunGateway(sc, cfg, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	j3, err := t3.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(j1, j3) {
		t.Fatal("different seeds produced identical gateway traces")
	}
}

// TestGatewayThrottleAndQuarantine pins the tiered behaviors on a real
// run: a flooding tenant gets throttled, an attacking tenant gets
// quarantined, and the benign co-tenant sees neither.
func TestGatewayThrottleAndQuarantine(t *testing.T) {
	sc := GatewayScenario{
		Name:            "gw-mixed",
		Target:          TargetDomain,
		Limits:          gateway.Limits{Burst: 4, RefillEvery: 4, MaxInflight: 64},
		QuarantineAfter: 3,
		Window:          16,
		ProbeEvery:      8,
		Tenants: []TenantSpec{
			// The benign tenant's own bucket never binds: one arrival per
			// 4 slots against Burst 4 / RefillEvery 4 at Weight 1 vs 3.
			{Name: "calm", Workload: WorkloadHTTP, Weight: 1,
				Limits: &gateway.Limits{Burst: 64, RefillEvery: 1, MaxInflight: 64}},
			{
				Name: "rowdy", Workload: WorkloadKV, Weight: 3, Hostile: true,
				Faults: []FaultClass{FaultUAF}, AttackEvery: 3,
			},
		},
	}
	tr, err := RunGateway(sc, Config{Seed: 7, Workers: 2, Requests: 300}, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	calm, rowdy := tr.Tenant("calm"), tr.Tenant("rowdy")
	if calm == nil || rowdy == nil {
		t.Fatalf("missing tenant traces: %+v", tr.Tenants)
	}
	if calm.Throttled != 0 || calm.Quarantined != 0 || calm.Detected != 0 {
		t.Errorf("benign tenant saw gateway friction: %+v", *calm)
	}
	if rowdy.Throttled == 0 {
		t.Errorf("flooding tenant never throttled: %+v", *rowdy)
	}
	if rowdy.Quarantines == 0 || rowdy.Quarantined == 0 {
		t.Errorf("attacking tenant never quarantined: %+v", *rowdy)
	}
	// Outcome partition: every arrival is accounted for.
	for _, tt := range tr.Tenants {
		sum := tt.OK + tt.Rejected + tt.Detected + tt.Preempted + tt.Throttled + tt.Quarantined + tt.Drained
		if sum != uint64(tt.Arrivals) {
			t.Errorf("tenant %s: outcomes (%d) do not partition arrivals (%d)", tt.Tenant, sum, tt.Arrivals)
		}
	}
}

// TestGatewayDrain pins the drain cut: every arrival from DrainAt on is
// rejected as drained, for every tenant, and nothing before it is.
func TestGatewayDrain(t *testing.T) {
	sc := testGatewayScenario()
	sc.DrainAt = 60
	tr, err := RunGateway(sc, Config{Seed: 5, Workers: 2, Requests: 120}, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Drained {
		t.Fatal("trace does not report drain")
	}
	for _, out := range tr.Outcomes {
		if out.I >= sc.DrainAt && out.Outcome != OutcomeDrained {
			t.Errorf("arrival %d after drain got %q", out.I, out.Outcome)
		}
		if out.I < sc.DrainAt && out.Outcome == OutcomeDrained {
			t.Errorf("arrival %d before drain got drained", out.I)
		}
	}
}

// TestGatewayIsolationOracle runs the isolation differential on the
// core-backed executor: benign outcomes must be identical with and
// without the hostile tenant, serially and batched.
func TestGatewayIsolationOracle(t *testing.T) {
	sc := testGatewayScenario()
	cfg := Config{Seed: 21, Requests: 160}
	results, err := CheckIsolation(sc, cfg, coreFactory(t), []int{1, 2}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + 2; len(results) != want {
		t.Fatalf("got %d oracle results, want %d: %+v", len(results), want, results)
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s", r)
		}
	}
}

// TestGatewayIsolationRejectsHostileFree pins the oracle's vacuity
// guard: a scenario with nothing to remove is an error, not a pass.
func TestGatewayIsolationRejectsHostileFree(t *testing.T) {
	sc := testGatewayScenario()
	sc.Tenants[1].Hostile = false
	_, err := CheckIsolation(sc, Config{Seed: 1, Requests: 20}, coreFactory(t), []int{1}, []int{4})
	if err == nil || !strings.Contains(err.Error(), "no hostile tenant") {
		t.Fatalf("got %v, want hostile-free rejection", err)
	}
}

// TestGatewayDrainIsolation pins the composed-index drain contract: the
// drain point must not move for benign tenants when hostile traffic is
// removed, which is exactly what the isolation oracle checks on a
// drain scenario.
func TestGatewayDrainIsolation(t *testing.T) {
	sc := testGatewayScenario()
	sc.DrainAt = 80
	results, err := CheckIsolation(sc, Config{Seed: 9, Requests: 160}, coreFactory(t), []int{2}, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s", r)
		}
	}
}

func TestGatewaySummaryDeterministic(t *testing.T) {
	tr, err := RunGateway(testGatewayScenario(), Config{Seed: 3, Workers: 2, Requests: 60}, coreFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Summary() != tr.Summary() {
		t.Error("summary not deterministic")
	}
	if !strings.Contains(tr.Summary(), "gw-test") || !strings.Contains(tr.Summary(), "attacker") {
		t.Errorf("summary missing scenario or tenant name:\n%s", tr.Summary())
	}
}
