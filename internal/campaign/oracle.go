package campaign

import (
	"bytes"
	"fmt"
)

// This file implements the differential oracles — the regression net the
// campaign engine exists to provide. Each oracle re-runs campaigns and
// compares structured outcomes; none of them encodes absolute numbers,
// so they stay valid as the implementation gets faster (a perf PR that
// changes *behavior* trips them, one that only changes host-side speed
// does not).

// OracleResult is one oracle verdict.
type OracleResult struct {
	// Oracle names the check ("same-seed", "worker-count", "benign").
	Oracle string
	// Scenario is the scenario checked ("" for whole-trace checks).
	Scenario string
	// Pass reports the verdict.
	Pass bool
	// Detail explains a failure (empty on pass).
	Detail string
}

// String implements fmt.Stringer.
func (r OracleResult) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	s := fmt.Sprintf("%s oracle %q", verdict, r.Oracle)
	if r.Scenario != "" {
		s += fmt.Sprintf(" scenario %q", r.Scenario)
	}
	if r.Detail != "" {
		s += ": " + r.Detail
	}
	return s
}

// CheckSameSeed runs the campaign twice with identical configuration and
// asserts the two JSON traces are byte-identical — the determinism
// contract every other oracle (and every perf-regression bisect) builds
// on.
func CheckSameSeed(cfg Config, factory ExecutorFactory) ([]OracleResult, error) {
	t1, err := Run(cfg, factory)
	if err != nil {
		return nil, err
	}
	return CheckSameSeedAgainst(t1, cfg, factory)
}

// CheckSameSeedAgainst is CheckSameSeed with the first run supplied by
// the caller (a trace already produced with exactly cfg), saving one
// campaign execution.
func CheckSameSeedAgainst(t1 *Trace, cfg Config, factory ExecutorFactory) ([]OracleResult, error) {
	t2, err := Run(cfg, factory)
	if err != nil {
		return nil, err
	}
	j1, err := t1.JSON()
	if err != nil {
		return nil, err
	}
	j2, err := t2.JSON()
	if err != nil {
		return nil, err
	}
	res := OracleResult{Oracle: "same-seed", Pass: bytes.Equal(j1, j2)}
	if !res.Pass {
		res.Detail = fmt.Sprintf("traces differ: %d vs %d bytes", len(j1), len(j2))
		for i := 0; i < len(j1) && i < len(j2); i++ {
			if j1[i] != j2[i] {
				lo, hi := i-30, i+30
				if lo < 0 {
					lo = 0
				}
				if hi > len(j1) {
					hi = len(j1)
				}
				res.Detail = fmt.Sprintf("traces diverge at byte %d: ...%s...", i, j1[lo:hi])
				break
			}
		}
	}
	return []OracleResult{res}, nil
}

// CheckWorkerCounts runs the campaign at each worker count (default
// 1, 4, 8) and asserts, per scenario, identical per-request outcome
// streams (fault class, outcome, detection mechanism — the dispatched
// worker is allowed to differ) and identical survivor digests. This is
// the containment claim as a differential: how many isolated workers
// serve the traffic must not change what any single request experiences
// or what state survives.
func CheckWorkerCounts(cfg Config, factory ExecutorFactory, counts ...int) ([]OracleResult, error) {
	if len(counts) == 0 {
		counts = []int{1, 4, 8}
	}
	traces := make([]*Trace, len(counts))
	for i, w := range counts {
		c := cfg
		c.Workers = w
		t, err := Run(c, factory)
		if err != nil {
			return nil, fmt.Errorf("campaign: worker-count oracle at %d workers: %w", w, err)
		}
		traces[i] = t
	}
	base := traces[0]
	var out []OracleResult
	for _, sc := range base.Scenarios {
		res := OracleResult{Oracle: "worker-count", Scenario: sc.Scenario, Pass: true}
		for i := 1; i < len(traces) && res.Pass; i++ {
			other := traces[i].Scenario(sc.Scenario)
			if other == nil {
				res.Pass = false
				res.Detail = fmt.Sprintf("missing at %d workers", counts[i])
				break
			}
			if d := diffOutcomes(sc, *other, counts[0], counts[i]); d != "" {
				res.Pass = false
				res.Detail = d
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// diffOutcomes compares the worker-count-invariant fields of two
// scenario traces and describes the first divergence.
func diffOutcomes(a, b ScenarioTrace, wa, wb int) string {
	if len(a.Outcomes) != len(b.Outcomes) {
		return fmt.Sprintf("request counts differ: %d at %d workers vs %d at %d workers",
			len(a.Outcomes), wa, len(b.Outcomes), wb)
	}
	for i := range a.Outcomes {
		x, y := a.Outcomes[i], b.Outcomes[i]
		if x.Fault != y.Fault || x.Outcome != y.Outcome || x.Mech != y.Mech {
			return fmt.Sprintf("request %d: %s/%s/%s at %d workers vs %s/%s/%s at %d workers",
				i, x.Fault, x.Outcome, x.Mech, wa, y.Fault, y.Outcome, y.Mech, wb)
		}
	}
	if a.SurvivorDigest != b.SurvivorDigest {
		return fmt.Sprintf("survivor digests differ: %s at %d workers vs %s at %d workers",
			a.SurvivorDigest, wa, b.SurvivorDigest, wb)
	}
	if a.DetectionTotal != b.DetectionTotal {
		return fmt.Sprintf("detection totals differ: %d at %d workers vs %d at %d workers",
			a.DetectionTotal, wa, b.DetectionTotal, wb)
	}
	return ""
}

// CheckBenign asserts, for every benign-only scenario in cfg, that the
// campaign run recorded zero detections and zero rewinds, and that a
// direct replay — the same requests driven through a bare loop with no
// schedule or trace bookkeeping — lands on exactly the same virtual
// cycle count and survivor digest. Cycle parity proves the engine's
// orchestration is free on the simulated machine; a divergence means
// the engine itself perturbs the system under test.
func CheckBenign(cfg Config, factory ExecutorFactory) ([]OracleResult, error) {
	cfg = cfg.withDefaults()
	tr, err := Run(cfg, factory)
	if err != nil {
		return nil, err
	}
	return CheckBenignAgainst(tr, cfg, factory)
}

// CheckBenignAgainst is CheckBenign with the campaign run supplied by
// the caller (a trace already produced with exactly cfg); only the
// direct replays execute.
func CheckBenignAgainst(tr *Trace, cfg Config, factory ExecutorFactory) ([]OracleResult, error) {
	cfg = cfg.withDefaults()
	var out []OracleResult
	for _, sc := range cfg.Scenarios {
		if !sc.Benign() {
			continue
		}
		st := tr.Scenario(sc.Name)
		res := OracleResult{Oracle: "benign", Scenario: sc.Name, Pass: true}
		switch {
		case st == nil:
			res.Pass, res.Detail = false, "scenario missing from trace"
		case st.DetectionTotal != 0:
			res.Pass, res.Detail = false, fmt.Sprintf("%d detections on benign traffic", st.DetectionTotal)
		case st.Rewinds != 0:
			res.Pass, res.Detail = false, fmt.Sprintf("%d rewinds on benign traffic", st.Rewinds)
		case st.Preemptions != 0:
			res.Pass, res.Detail = false, fmt.Sprintf("%d preemptions on benign traffic", st.Preemptions)
		default:
			cycles, dig, rerr := replayBenign(sc, cfg, factory)
			if rerr != nil {
				return nil, rerr
			}
			if cycles != st.VirtualCycles {
				res.Pass = false
				res.Detail = fmt.Sprintf("cycle parity broken: campaign %d vs replay %d", st.VirtualCycles, cycles)
			} else if dig != st.SurvivorDigest {
				res.Pass = false
				res.Detail = fmt.Sprintf("survivor divergence: campaign %s vs replay %s", st.SurvivorDigest, dig)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// CheckBatched runs the campaign through the batched execution pipeline
// (RunBatched) at each batch size (default 8 and 32) and asserts, per
// scenario, per-request outcome streams (fault class, outcome, detection
// mechanism) and survivor digests identical to the serial base trace.
// This is the batched==serial contract: coalescing calls into shared
// domain entries must not change what any single request experiences or
// what state survives. Virtual cycles and detection totals are NOT
// compared — batching amortizes entry costs, and an aborted batch's
// serial re-derivation legitimately counts extra detections.
func CheckBatched(cfg Config, factory ExecutorFactory, batchSizes ...int) ([]OracleResult, error) {
	base, err := Run(cfg.withDefaults(), factory)
	if err != nil {
		return nil, err
	}
	return CheckBatchedAgainst(base, cfg, factory, batchSizes...)
}

// CheckBatchedAgainst is CheckBatched with the serial base trace
// supplied by the caller (a trace already produced with exactly cfg).
func CheckBatchedAgainst(base *Trace, cfg Config, factory ExecutorFactory, batchSizes ...int) ([]OracleResult, error) {
	cfg = cfg.withDefaults()
	if len(batchSizes) == 0 {
		batchSizes = []int{8, 32}
	}
	var out []OracleResult
	for _, k := range batchSizes {
		bt, err := RunBatched(cfg, factory, k)
		if err != nil {
			return nil, fmt.Errorf("campaign: batched oracle at batch %d: %w", k, err)
		}
		for _, sc := range base.Scenarios {
			res := OracleResult{Oracle: fmt.Sprintf("batched(%d)", k), Scenario: sc.Scenario, Pass: true}
			other := bt.Scenario(sc.Scenario)
			if other == nil {
				res.Pass, res.Detail = false, "missing from batched trace"
			} else if d := diffBatched(sc, *other, k); d != "" {
				res.Pass, res.Detail = false, d
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// diffBatched compares the batching-invariant fields of a serial and a
// batched scenario trace: outcome streams (including the dispatched
// worker — batching must not perturb placement) and survivor digests.
func diffBatched(serial, batched ScenarioTrace, k int) string {
	if len(serial.Outcomes) != len(batched.Outcomes) {
		return fmt.Sprintf("request counts differ: %d serial vs %d at batch %d",
			len(serial.Outcomes), len(batched.Outcomes), k)
	}
	for i := range serial.Outcomes {
		x, y := serial.Outcomes[i], batched.Outcomes[i]
		if x != y {
			return fmt.Sprintf("request %d: %s/%s/%s@w%d serial vs %s/%s/%s@w%d at batch %d",
				i, x.Fault, x.Outcome, x.Mech, x.W, y.Fault, y.Outcome, y.Mech, y.W, k)
		}
	}
	if serial.SurvivorDigest != batched.SurvivorDigest {
		return fmt.Sprintf("survivor digests differ: %s serial vs %s at batch %d",
			serial.SurvivorDigest, batched.SurvivorDigest, k)
	}
	return ""
}

// CheckResize runs the campaign's pool-target scenarios under the
// canonical grow/shrink schedule (workers 1→4→8→2 across the run's
// quarters, DefaultResizePlan) and asserts per-request outcomes,
// survivor digests, and detection totals identical to the fixed-size
// base run — serially and through the batched pipeline at each batch
// size (default 8 and 32). This is the resize-invisibility contract
// (DESIGN.md §13): growing or shrinking a live pool must not change
// what any single request experiences or what state survives. Virtual
// cycles are NOT compared — hot-added workers pay a warm-up entry.
func CheckResize(cfg Config, factory ExecutorFactory, batchSizes ...int) ([]OracleResult, error) {
	base, err := Run(cfg.withDefaults(), factory)
	if err != nil {
		return nil, err
	}
	return CheckResizeAgainst(base, cfg, factory, batchSizes...)
}

// CheckResizeAgainst is CheckResize with the fixed-size base trace
// supplied by the caller (a trace already produced with exactly cfg).
// Scenarios whose target cannot resize are skipped; with no resizable
// scenarios the result set is empty.
func CheckResizeAgainst(base *Trace, cfg Config, factory ExecutorFactory, batchSizes ...int) ([]OracleResult, error) {
	cfg = cfg.withDefaults()
	if len(batchSizes) == 0 {
		batchSizes = []int{8, 32}
	}
	// Keep only scenarios whose executor actually supports resizing:
	// probe one executor per distinct target (a factory may serve
	// TargetPool with a fixed-size backend, e.g. the in-package test
	// executor) and skip the rest.
	resizable := make(map[Target]bool)
	sub := cfg
	sub.Scenarios = nil
	for _, sc := range cfg.Scenarios {
		ok, probed := resizable[sc.Target]
		if !probed {
			ex, err := factory(sc.Target, cfg.Workers)
			if err != nil {
				return nil, fmt.Errorf("campaign: resize oracle probing %s executor: %w", sc.Target, err)
			}
			_, ok = ex.(ResizableExecutor)
			if err := ex.Close(); err != nil {
				return nil, fmt.Errorf("campaign: resize oracle closing %s probe: %w", sc.Target, err)
			}
			resizable[sc.Target] = ok
		}
		if ok {
			sub.Scenarios = append(sub.Scenarios, sc)
		}
	}
	if len(sub.Scenarios) == 0 {
		return nil, nil
	}
	plan := DefaultResizePlan(sub.Requests)
	var out []OracleResult

	rt, err := RunResized(sub, factory, plan)
	if err != nil {
		return nil, fmt.Errorf("campaign: resize oracle: %w", err)
	}
	for _, sc := range sub.Scenarios {
		res := OracleResult{Oracle: "resize", Scenario: sc.Name, Pass: true}
		b, r := base.Scenario(sc.Name), rt.Scenario(sc.Name)
		switch {
		case b == nil:
			res.Pass, res.Detail = false, "missing from base trace"
		case r == nil:
			res.Pass, res.Detail = false, "missing from resized trace"
		default:
			if d := diffOutcomes(*b, *r, cfg.Workers, -1); d != "" {
				res.Pass, res.Detail = false, d
			}
		}
		out = append(out, res)
	}

	for _, k := range batchSizes {
		bt, err := RunResizedBatched(sub, factory, k, plan)
		if err != nil {
			return nil, fmt.Errorf("campaign: resize oracle at batch %d: %w", k, err)
		}
		for _, sc := range sub.Scenarios {
			res := OracleResult{Oracle: fmt.Sprintf("resize-batched(%d)", k), Scenario: sc.Name, Pass: true}
			b, r := base.Scenario(sc.Name), bt.Scenario(sc.Name)
			switch {
			case b == nil:
				res.Pass, res.Detail = false, "missing from base trace"
			case r == nil:
				res.Pass, res.Detail = false, "missing from resized batched trace"
			default:
				if d := diffBatched(*b, *r, k); d != "" {
					res.Pass, res.Detail = false, d
				}
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// CheckAll runs every oracle: same-seed determinism, worker-count
// invariance at the given counts (default 1/4/8), the benign
// zero-detection + cycle-parity check, the batched==serial check at
// batch sizes 8 and 32, and the elastic-resize invariance check.
func CheckAll(cfg Config, factory ExecutorFactory, counts ...int) ([]OracleResult, error) {
	base, err := Run(cfg.withDefaults(), factory)
	if err != nil {
		return nil, err
	}
	return CheckAllAgainst(base, cfg, factory, counts...)
}

// CheckAllAgainst is CheckAll with the base campaign run supplied by
// the caller (a trace already produced with exactly cfg) — the CLI's
// -oracles path reuses the trace it just printed instead of re-running
// the campaign.
func CheckAllAgainst(base *Trace, cfg Config, factory ExecutorFactory, counts ...int) ([]OracleResult, error) {
	var all []OracleResult
	for _, f := range []func() ([]OracleResult, error){
		func() ([]OracleResult, error) { return CheckSameSeedAgainst(base, cfg, factory) },
		func() ([]OracleResult, error) { return CheckWorkerCounts(cfg, factory, counts...) },
		func() ([]OracleResult, error) { return CheckBenignAgainst(base, cfg.withDefaults(), factory) },
		func() ([]OracleResult, error) { return CheckBatchedAgainst(base, cfg, factory) },
		func() ([]OracleResult, error) { return CheckResizeAgainst(base, cfg, factory) },
	} {
		res, err := f()
		if err != nil {
			return all, err
		}
		all = append(all, res...)
	}
	return all, nil
}

// Failures filters results to the failed ones.
func Failures(results []OracleResult) []OracleResult {
	var out []OracleResult
	for _, r := range results {
		if !r.Pass {
			out = append(out, r)
		}
	}
	return out
}
