package campaign

import (
	"fmt"
	"testing"
)

// stubRecoveryRunner returns canned runs, recording the scenarios it
// was asked to execute.
type stubRecoveryRunner struct {
	run  func(RecoveryScenario) RecoveryRun
	seen []RecoveryScenario
	fail bool
}

func (s *stubRecoveryRunner) RunRecovery(sc RecoveryScenario) (RecoveryRun, error) {
	s.seen = append(s.seen, sc)
	if s.fail {
		return RecoveryRun{}, fmt.Errorf("boom")
	}
	return s.run(sc), nil
}

func healthyRun(RecoveryScenario) RecoveryRun {
	return RecoveryRun{
		CommittedDigest: "d1", RecoveredDigest: "d1",
		AckedBatches: 3, TotalBatches: 10, TornTail: true,
	}
}

func TestCheckRecoveryMatrixAndDefaults(t *testing.T) {
	s := &stubRecoveryRunner{run: healthyRun}
	results, err := CheckRecovery(s, 7, 0, nil, nil)
	if err != nil {
		t.Fatalf("CheckRecovery: %v", err)
	}
	// Defaults: workers 1/4/8 × batch 8/32.
	if len(results) != 6 || len(s.seen) != 6 {
		t.Fatalf("got %d results over %d runs, want 6", len(results), len(s.seen))
	}
	for _, r := range results {
		if !r.Pass || r.Oracle != "recovery" {
			t.Errorf("unexpected result: %s", r)
		}
	}
	wantScenarios := map[string]bool{}
	for _, sc := range s.seen {
		wantScenarios[fmt.Sprintf("w=%d,b=%d", sc.Workers, sc.Batch)] = true
		if sc.Seed != 7 || sc.Requests != 200 {
			t.Errorf("scenario not seeded/defaulted: %+v", sc)
		}
	}
	for _, w := range []int{1, 4, 8} {
		for _, b := range []int{8, 32} {
			if !wantScenarios[fmt.Sprintf("w=%d,b=%d", w, b)] {
				t.Errorf("matrix missing w=%d b=%d", w, b)
			}
		}
	}
}

func TestCheckRecoveryVerdicts(t *testing.T) {
	cases := []struct {
		name string
		run  RecoveryRun
		pass bool
	}{
		{"digest mismatch", RecoveryRun{CommittedDigest: "a", RecoveredDigest: "b", AckedBatches: 2, TotalBatches: 5}, false},
		{"kill never fired", RecoveryRun{CommittedDigest: "a", RecoveredDigest: "a", AckedBatches: 5, TotalBatches: 5}, false},
		{"nothing committed", RecoveryRun{CommittedDigest: "a", RecoveredDigest: "a", AckedBatches: 0, TotalBatches: 5}, false},
		{"healthy", RecoveryRun{CommittedDigest: "a", RecoveredDigest: "a", AckedBatches: 2, TotalBatches: 5}, true},
	}
	for _, tc := range cases {
		s := &stubRecoveryRunner{run: func(RecoveryScenario) RecoveryRun { return tc.run }}
		results, err := CheckRecovery(s, 1, 10, []int{1}, []int{4})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(results) != 1 || results[0].Pass != tc.pass {
			t.Errorf("%s: got %v", tc.name, results)
		}
		if !tc.pass && results[0].Detail == "" {
			t.Errorf("%s: failure carries no detail", tc.name)
		}
	}
}

func TestCheckRecoveryFloorsShortRuns(t *testing.T) {
	s := &stubRecoveryRunner{run: healthyRun}
	if _, err := CheckRecovery(s, 1, 30, []int{1}, []int{8, 32}); err != nil {
		t.Fatalf("CheckRecovery: %v", err)
	}
	// 30 requests fit under four batches at both sizes: floored so the
	// seeded kill always has a committed prefix to land behind.
	want := map[int]int{8: 32, 32: 128}
	for _, sc := range s.seen {
		if sc.Requests != want[sc.Batch] {
			t.Errorf("batch %d ran %d requests, want %d", sc.Batch, sc.Requests, want[sc.Batch])
		}
	}
}

func TestCheckRecoveryRunnerError(t *testing.T) {
	s := &stubRecoveryRunner{fail: true}
	if _, err := CheckRecovery(s, 1, 10, []int{1}, []int{4}); err == nil {
		t.Fatal("runner error swallowed")
	}
}

func TestDigestStateDeterministicAndSensitive(t *testing.T) {
	a := map[string][]byte{"k1": []byte("v1"), "k2": []byte("v2")}
	b := map[string][]byte{"k2": []byte("v2"), "k1": []byte("v1")}
	if DigestState(a) != DigestState(b) {
		t.Fatal("digest depends on construction order")
	}
	c := map[string][]byte{"k1": []byte("v1"), "k2": []byte("vX")}
	if DigestState(a) == DigestState(c) {
		t.Fatal("digest insensitive to values")
	}
	if DigestState(map[string][]byte{}) == DigestState(a) {
		t.Fatal("empty state collides")
	}
}
