package campaign

import (
	"fmt"
	"sort"
)

// This file adds the elastic-resize dimension to the campaign engine:
// a deterministic grow/shrink schedule (ResizePlan) applied to a
// resizable executor mid-run, and the RunResized/RunResizedBatched
// entry points the resize oracle (oracle.go CheckResize) compares
// against fixed-size runs. The engine's dispatch stream stays keyed by
// the configured worker count — a scheduled worker index is an affinity
// key, not a physical slot — so every PRNG draw, request placement
// label, and survivor-state transition is identical whatever the live
// worker count happens to be. That is the resize-invisibility argument
// (DESIGN.md §13), and the oracle makes it a regression test.

// ResizableExecutor is implemented by executors whose worker set can
// grow and shrink mid-scenario (the pool backend). Scheduled worker
// indices keep their meaning across resizes: they map onto the live
// set modulo its size.
type ResizableExecutor interface {
	Executor
	// Resize grows or shrinks the executor to n live workers.
	Resize(n int) error
	// Workers returns the current live worker count.
	Workers() int
}

// ResizeStep is one scheduled resize: when the engine reaches request
// index At (0-based, applied before that request executes), the live
// worker set becomes Workers.
type ResizeStep struct {
	// At is the request index the step fires before.
	At int
	// Workers is the live worker count to resize to.
	Workers int
}

// ResizePlan is a deterministic grow/shrink schedule for one scenario
// run: the worker count to start at and the steps to apply at fixed
// request indices. The plan is part of the experiment's identity — same
// (seed, plan) ⇒ same resize sequence.
type ResizePlan struct {
	// Initial is the live worker count before request 0 (0 leaves the
	// executor at the configured count).
	Initial int
	// Steps fire in At order; At indices must be strictly ascending.
	Steps []ResizeStep
}

// Validate reports structural problems with the plan.
func (p ResizePlan) Validate() error {
	if p.Initial < 0 {
		return fmt.Errorf("campaign: resize plan initial %d < 0", p.Initial)
	}
	if !sort.SliceIsSorted(p.Steps, func(i, j int) bool { return p.Steps[i].At < p.Steps[j].At }) {
		return fmt.Errorf("campaign: resize plan steps not ascending by At")
	}
	for i, s := range p.Steps {
		if s.Workers < 1 {
			return fmt.Errorf("campaign: resize plan step %d: %d workers (want >= 1)", i, s.Workers)
		}
		if i > 0 && p.Steps[i-1].At == s.At {
			return fmt.Errorf("campaign: resize plan has two steps at request %d", s.At)
		}
	}
	return nil
}

// DefaultResizePlan returns the canonical grow/shrink schedule over n
// requests: start at 1 worker, grow to 4 at the first quarter, to 8 at
// the half, and shrink to 2 at the last quarter — the workers
// 1→4→8→2 sequence the resize oracle pins.
func DefaultResizePlan(n int) ResizePlan {
	return ResizePlan{
		Initial: 1,
		Steps: []ResizeStep{
			{At: n / 4, Workers: 4},
			{At: n / 2, Workers: 8},
			{At: 3 * n / 4, Workers: 2},
		},
	}
}

// planApplier walks a plan's steps as the scenario loop advances. A nil
// applier (no plan) is valid and does nothing.
type planApplier struct {
	rex   ResizableExecutor
	steps []ResizeStep
	next  int
}

// newPlanApplier validates the plan against ex and applies the initial
// resize. plan == nil means a fixed-size run.
func newPlanApplier(ex Executor, plan *ResizePlan) (*planApplier, error) {
	if plan == nil {
		return nil, nil
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	rex, ok := ex.(ResizableExecutor)
	if !ok {
		return nil, fmt.Errorf("campaign: %T does not support resizing", ex)
	}
	if plan.Initial > 0 {
		if err := rex.Resize(plan.Initial); err != nil {
			return nil, fmt.Errorf("campaign: initial resize to %d: %w", plan.Initial, err)
		}
	}
	return &planApplier{rex: rex, steps: plan.Steps}, nil
}

// before applies every step scheduled at or before request index i.
func (p *planApplier) before(i int) error {
	if p == nil {
		return nil
	}
	for p.next < len(p.steps) && p.steps[p.next].At <= i {
		s := p.steps[p.next]
		if err := p.rex.Resize(s.Workers); err != nil {
			return fmt.Errorf("campaign: resize to %d before request %d: %w", s.Workers, s.At, err)
		}
		p.next++
	}
	return nil
}

// nextBoundary returns the first unapplied step index strictly after i,
// or n — the wave-split point for the batched pipeline, so a resize
// always lands between batches, never inside one.
func (p *planApplier) nextBoundary(i, n int) int {
	if p == nil {
		return n
	}
	for _, s := range p.steps[p.next:] {
		if s.At > i {
			if s.At < n {
				return s.At
			}
			break
		}
	}
	return n
}

// RunResized executes every scenario like Run, applying plan's
// grow/shrink schedule to the executor as the request loop advances.
// Every executor in cfg must support resizing (use pool-target
// scenarios). Per-request outcomes and survivor digests are identical
// to the fixed-size Run — the property CheckResize asserts; virtual
// cycles may differ (hot-added workers pay a warm-up entry).
func RunResized(cfg Config, factory ExecutorFactory, plan ResizePlan) (*Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr := &Trace{Seed: cfg.Seed, Workers: cfg.Workers, Requests: cfg.Requests}
	for _, sc := range cfg.Scenarios {
		st, err := runScenarioPlan(sc, cfg, factory, &plan)
		if err != nil {
			return nil, fmt.Errorf("campaign: scenario %q: %w", sc.Name, err)
		}
		tr.Scenarios = append(tr.Scenarios, st)
	}
	return tr, nil
}

// RunResizedBatched is RunResized through the batched execution
// pipeline: waves additionally split at resize boundaries so a resize
// always happens between coalesced batches. Outcomes and survivor
// digests match the fixed-size batched (and serial) runs.
func RunResizedBatched(cfg Config, factory ExecutorFactory, batchSize int, plan ResizePlan) (*Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if batchSize < 1 {
		batchSize = 1
	}
	tr := &Trace{Seed: cfg.Seed, Workers: cfg.Workers, Requests: cfg.Requests}
	for _, sc := range cfg.Scenarios {
		st, err := runScenarioBatchedPlan(sc, cfg, factory, batchSize, &plan)
		if err != nil {
			return nil, fmt.Errorf("campaign: scenario %q: %w", sc.Name, err)
		}
		tr.Scenarios = append(tr.Scenarios, st)
	}
	return tr, nil
}
