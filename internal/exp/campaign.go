package exp

import (
	"fmt"

	sdrad "repro"
	"repro/internal/campaign"
	"repro/internal/campaign/scenarios"
	"repro/internal/metrics"
)

// runC1 regenerates the containment claim as a campaign: every shipped
// scenario — seeded mixes of benign kvstore/httpd/FFI traffic with
// injected UAFs, overflows, freed-header smashes, crashes, runaway
// requests, and malformed payloads across the Domain, Pool, and Bridge
// backends — runs under the resilience-campaign engine, and the table
// reports what each recorded. The differential oracles (same-seed
// determinism, worker-count invariance, benign cycle parity) run as
// part of the experiment; their verdict is a shape check.
func (r Runner) runC1() (*Result, error) {
	cfg := campaign.Config{
		Seed:      r.seed(),
		Workers:   4,
		Requests:  r.requests(1000),
		Scenarios: scenarios.All(),
	}
	trace, err := sdrad.RunCampaign(cfg)
	if err != nil {
		return nil, err
	}

	table := metrics.NewTable(
		fmt.Sprintf("C1 — resilience campaign (seed %d, %d workers, %d requests/scenario)",
			cfg.Seed, cfg.Workers, cfg.Requests),
		"scenario", "target", "workload", "ok", "rejected", "detected", "preempted", "rewinds", "survivor digest")

	res := &Result{Table: table}
	var attackedWithDetections, attacked, benignClean, benign int
	var totalDetections uint64
	for _, sc := range scenarios.All() {
		st := trace.Scenario(sc.Name)
		if st == nil {
			return nil, fmt.Errorf("scenario %q missing from trace", sc.Name)
		}
		table.AddRow(st.Scenario, st.Target, st.Workload,
			st.OK, st.Rejected, st.DetectionTotal, st.Preemptions, st.Rewinds, st.SurvivorDigest)
		totalDetections += st.DetectionTotal
		if sc.Benign() {
			benign++
			if st.DetectionTotal == 0 && st.Rewinds == 0 && st.Preemptions == 0 {
				benignClean++
			}
		} else {
			attacked++
			// A malformed-payload-only scenario's containment event is
			// the parser rejection; the memory-safety classes show up as
			// detections and budget exhaustion as preemptions.
			if st.DetectionTotal > 0 || st.Preemptions > 0 || st.Rejected > 0 {
				attackedWithDetections++
			}
		}
	}

	// The oracles are the experiment's real product: run them at a
	// reduced request count (they re-execute every scenario five times).
	ocfg := cfg
	ocfg.Requests = r.requests(300)
	results, err := sdrad.CheckCampaignOracles(ocfg, 1, 4, 8)
	if err != nil {
		return nil, err
	}
	failures := campaign.Failures(results)

	res.metric("scenarios", float64(len(scenarios.All())))
	res.metric("total_detections", float64(totalDetections))
	res.metric("attacked_scenarios", float64(attacked))
	res.metric("attacked_with_events", float64(attackedWithDetections))
	res.metric("benign_scenarios", float64(benign))
	res.metric("benign_clean", float64(benignClean))
	res.metric("oracle_checks", float64(len(results)))
	res.metric("oracle_failures", float64(len(failures)))
	res.Notes = fmt.Sprintf("differential oracles: %d/%d pass (same-seed, worker counts 1/4/8, benign cycle parity)",
		len(results)-len(failures), len(results))
	if len(failures) > 0 {
		res.Notes += fmt.Sprintf("; first failure: %s", failures[0])
	}
	return res, nil
}
