package exp

import (
	"fmt"
	"time"

	"repro/internal/avail"
	"repro/internal/metrics"
	"repro/internal/procmodel"
	"repro/internal/vclock"
)

// runS1 — cost-model sensitivity: DESIGN.md §2 argues the paper's
// comparisons are preserved "under any reasonable constant choice". S1
// substantiates (and bounds) that: it sweeps the two most influential
// constants — the state warm-up bandwidth that sets restart time and the
// signal-delivery cost that dominates rewind time — across two orders of
// magnitude each. The rewind verdict (meets five nines at 3 faults/yr)
// and the ≥10³ restart/rewind separation hold everywhere. The restart
// verdict has an honest crossover: when state reloads at NVMe-like
// ≥850 MB/s, three ~12 s restarts per year fit back inside the five-nines
// budget — the paper's violation claim is specific to slow (network/disk
// bound) state repopulation, which S1 makes explicit.
func (r Runner) runS1() (*Result, error) {
	target := avail.NinesTarget(5)
	const tenGB = 10_000_000_000

	t := metrics.NewTable("S1 — cost-model sensitivity of the headline comparison",
		"warm-up B/s", "signal cost (cycles)", "restart(10GB)", "rewind", "ratio", "5-nines (restart/rewind)")

	res := &Result{}
	minRatio := 1e300
	rewindFlips := 0
	restartMeetsCount := 0
	for _, bw := range []uint64{8_500_000, 85_000_000, 850_000_000} {
		for _, sig := range []uint64{600, 6_000, 60_000} {
			cost := vclock.DefaultCostModel()
			cost.WarmupBytesPerSec = bw
			cost.SignalDeliver = sig

			restart := procmodel.ProcessRestart{Cost: cost}.RecoveryTime(tenGB)
			rewind := procmodel.SDRaDRewind{Cost: cost, HeapPages: 8, ZeroOnDiscard: true}.RecoveryTime(tenGB)
			ratio := float64(restart) / float64(rewind)
			if ratio < minRatio {
				minRatio = ratio
			}
			rMeets := avail.Meets(3, restart, target)
			wMeets := avail.Meets(3, rewind, target)
			if !wMeets {
				rewindFlips++
			}
			if rMeets {
				restartMeetsCount++
			}
			t.AddRow(
				fmt.Sprintf("%dM", bw/1_000_000),
				sig,
				metrics.FormatDuration(restart),
				metrics.FormatDuration(rewind),
				fmt.Sprintf("%.2g×", ratio),
				fmt.Sprintf("%v / %v", rMeets, wMeets),
			)
		}
	}
	t.Caption = "sweeping warm-up bandwidth ±10× and signal-delivery cost ±10× around the calibrated defaults"
	res.Table = t
	res.Notes = "rewind meets the target everywhere and stays ≥10³ below restart; restart re-enters the budget only at ≥850 MB/s warm-up (NVMe-local state) — the paper's violation claim presumes slow state repopulation"
	res.metric("min_ratio", minRatio)
	res.metric("rewind_flips", float64(rewindFlips))
	res.metric("restart_meets_count", float64(restartMeetsCount))
	return res, nil
}

// restartMeetsBound is exported for tests: the smallest state size at
// which a 3-faults/yr process-restart policy starts violating the target.
func RestartViolationThreshold(target float64, faultsPerYear float64) uint64 {
	budgetPerFault := time.Duration(float64(avail.DowntimeBudget(target)) / faultsPerYear)
	// Invert the restart model: exec + state/bw <= budgetPerFault.
	cost := vclock.DefaultCostModel()
	exec := vclock.CyclesToDuration(cost.ForkExec, cost.CPUHz)
	if budgetPerFault <= exec {
		return 0
	}
	return uint64(float64(budgetPerFault-exec) / float64(time.Second) * float64(cost.WarmupBytesPerSec))
}
