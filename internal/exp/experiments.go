package exp

import (
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/avail"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/httpd"
	"repro/internal/kvstore"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pku"
	"repro/internal/procmodel"
	"repro/internal/serde"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// ---- E1: steady-state overhead ----

// KVOverhead drives n benign requests through a fresh server in the given
// mode and returns virtual nanoseconds per request. Exported for the
// bench harness.
func KVOverhead(mode kvstore.Mode, n int, seed uint64) (float64, error) {
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := kvstore.NewCache(sys, 1, 64<<20)
	if err != nil {
		return 0, err
	}
	srv, err := kvstore.NewServer(sys, cache, kvstore.ServerConfig{Mode: mode, InterArrival: time.Nanosecond})
	if err != nil {
		return 0, err
	}
	gen, err := workload.NewKV(workload.KVConfig{Seed: seed, Keys: 5000})
	if err != nil {
		return 0, err
	}
	start := sys.Clock().Cycles()
	for i := 0; i < n; i++ {
		if resp := srv.Handle(i%8, gen.Next()); resp.Err != nil {
			return 0, fmt.Errorf("request %d failed: %w", i, resp.Err)
		}
	}
	total := sys.Clock().Since(start)
	return float64(total.Nanoseconds()) / float64(n), nil
}

// HTTPOverhead drives n benign GETs through a fresh web server.
func HTTPOverhead(mode httpd.Mode, n int, seed uint64) (float64, error) {
	sys := core.NewSystem(core.DefaultConfig())
	srv, err := httpd.NewServer(sys, httpd.Config{Mode: mode, InterArrival: time.Nanosecond})
	if err != nil {
		return 0, err
	}
	srv.HandleFunc("/", []byte("<html>index</html>"))
	srv.HandleFunc("/static", make([]byte, 8192))
	rng := workload.NewRNG(seed)
	paths := []string{"/", "/static"}
	start := sys.Clock().Cycles()
	for i := 0; i < n; i++ {
		raw := httpd.BuildRequest("GET", paths[rng.Intn(len(paths))], nil)
		if resp := srv.Serve(i%8, raw); resp.Err != nil {
			return 0, fmt.Errorf("request %d failed: %w", i, resp.Err)
		}
	}
	total := sys.Clock().Since(start)
	return float64(total.Nanoseconds()) / float64(n), nil
}

// TLSOverhead measures record digesting: native (unprotected scratch
// heap) vs sdrad (inside a domain). Returns ns/op.
func TLSOverhead(sdradMode bool, n int, seed uint64) (float64, error) {
	sys := core.NewSystem(core.DefaultConfig())
	cost := sys.Clock().Model()
	rng := workload.NewRNG(seed)
	record := make([]byte, 512)
	rng.Bytes(record)

	if !sdradMode {
		scratch, err := alloc.New(sys.Mem(), pku.DefaultKey, alloc.Config{InitialPages: 8})
		if err != nil {
			return 0, err
		}
		start := sys.Clock().Cycles()
		for i := 0; i < n; i++ {
			sys.Clock().Advance(2 * cost.Syscall) // read/write record
			buf, err := scratch.Alloc(len(record))
			if err != nil {
				return 0, err
			}
			if err := sys.Mem().StoreBytes(pku.PKRUAllowAll, buf, record); err != nil {
				return 0, err
			}
			tmp := make([]byte, len(record))
			if err := sys.Mem().LoadBytes(pku.PKRUAllowAll, buf, tmp); err != nil {
				return 0, err
			}
			if err := scratch.Free(buf); err != nil {
				return 0, err
			}
		}
		total := sys.Clock().Since(start)
		return float64(total.Nanoseconds()) / float64(n), nil
	}

	if _, err := sys.InitDomain(1, core.DomainConfig{}); err != nil {
		return 0, err
	}
	start := sys.Clock().Cycles()
	for i := 0; i < n; i++ {
		sys.Clock().Advance(2 * cost.Syscall)
		var out mem.Addr
		err := sys.Enter(1, func(c *core.DomainCtx) error {
			buf := c.MustAlloc(len(record))
			c.MustStore(buf, record)
			tmp := make([]byte, len(record))
			c.MustLoad(buf, tmp)
			c.MustFree(buf)
			// Stage the parse result (digest + validated header) for the
			// trusted caller.
			out = c.MustAlloc(64)
			c.MustStore(out, tmp[:64])
			return nil
		})
		if err != nil {
			return 0, err
		}
		// The trusted side copies the result out of the domain — this
		// boundary crossing exists only in the compartmentalized mode.
		if _, err := sys.CopyFromDomain(out, 64); err != nil {
			return 0, err
		}
		d, err := sys.Domain(1)
		if err != nil {
			return 0, err
		}
		if err := d.Heap().Free(out); err != nil {
			return 0, err
		}
	}
	total := sys.Clock().Since(start)
	return float64(total.Nanoseconds()) / float64(n), nil
}

func (r Runner) runE1() (*Result, error) {
	n := r.requests(20_000)
	type row struct {
		name           string
		native, sdradV float64
	}
	var rows []row

	kvN, err := KVOverhead(kvstore.ModeNative, n, r.seed())
	if err != nil {
		return nil, err
	}
	kvS, err := KVOverhead(kvstore.ModeSDRaD, n, r.seed())
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"memcached-like KV", kvN, kvS})

	// The conventional process-isolation sandbox (§IV's comparison
	// point): same containment, but IPC + context switches per request.
	kvSB, err := KVOverhead(kvstore.ModeSandbox, n, r.seed())
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"memcached-like KV (process sandbox)", kvN, kvSB})

	htN, err := HTTPOverhead(httpd.ModeNative, n, r.seed())
	if err != nil {
		return nil, err
	}
	htS, err := HTTPOverhead(httpd.ModeSDRaD, n, r.seed())
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"nginx-like httpd", htN, htS})

	tlN, err := TLSOverhead(false, n, r.seed())
	if err != nil {
		return nil, err
	}
	tlS, err := TLSOverhead(true, n, r.seed())
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"openssl-like tlslib", tlN, tlS})

	t := metrics.NewTable("E1 — steady-state overhead of SDRaD compartmentalization",
		"use case", "native ns/req", "isolated ns/req", "overhead")
	for _, rw := range rows {
		oh := (rw.sdradV - rw.native) / rw.native * 100
		t.AddRow(rw.name, fmt.Sprintf("%.0f", rw.native), fmt.Sprintf("%.0f", rw.sdradV),
			fmt.Sprintf("%.2f%%", oh))
	}
	t.Caption = fmt.Sprintf("paper: 2%%–4%% in realistic multi-processing scenarios; %d requests per cell, virtual time", n)
	res := &Result{Table: t, Notes: "per-request work includes modeled recv/send syscalls; overhead = domain enter/exit + PKRU switches + exit integrity sweep"}
	res.metric("kv_overhead_pct", (kvS-kvN)/kvN*100)
	res.metric("sandbox_overhead_pct", (kvSB-kvN)/kvN*100)
	res.metric("httpd_overhead_pct", (htS-htN)/htN*100)
	res.metric("tls_overhead_pct", (tlS-tlN)/tlN*100)
	return res, nil
}

// ---- E2: recovery latency vs state size ----

// MeasuredRewind triggers one violation in a fresh default domain and
// returns the measured virtual rewind time.
func MeasuredRewind(heapPages int) (time.Duration, error) {
	sys := core.NewSystem(core.DefaultConfig())
	if _, err := sys.InitDomain(1, core.DomainConfig{HeapPages: heapPages}); err != nil {
		return 0, err
	}
	err := sys.Enter(1, func(c *core.DomainCtx) error {
		c.MustStore64(0xbad000, 1)
		return nil
	})
	if _, ok := core.IsViolation(err); !ok {
		return 0, fmt.Errorf("expected violation, got %v", err)
	}
	cycles, err := sys.RewindCycles(1)
	if err != nil {
		return 0, err
	}
	return vclock.CyclesToDuration(cycles, sys.Clock().Model().CPUHz), nil
}

func (r Runner) runE2() (*Result, error) {
	rewind, err := MeasuredRewind(8)
	if err != nil {
		return nil, err
	}
	sizes := []uint64{100_000_000, 1_000_000_000, 10_000_000_000}
	t := metrics.NewTable("E2 — recovery latency vs application state size",
		"state", "process-restart", "container-restart", "checkpoint-restore", "sdrad-rewind", "restart/rewind")
	for _, sz := range sizes {
		pr := procmodel.ProcessRestart{}.RecoveryTime(sz)
		cr := procmodel.ContainerRestart{}.RecoveryTime(sz)
		cp := procmodel.CheckpointRestore{}.RecoveryTime(sz)
		t.AddRow(
			fmt.Sprintf("%d MB", sz/1_000_000),
			metrics.FormatDuration(pr),
			metrics.FormatDuration(cr),
			metrics.FormatDuration(cp),
			metrics.FormatDuration(rewind),
			fmt.Sprintf("%.2g×", float64(pr)/float64(rewind)),
		)
	}
	t.Caption = "paper: ~2 min restart at 10 GB vs 3.5 µs rewind; rewind is measured (8-page connection domain), restarts are cost-model"
	res := &Result{Table: t, Notes: "rewind latency is independent of state size: long-lived state survives in the root domain"}
	tenGB := procmodel.ProcessRestart{}.RecoveryTime(10_000_000_000)
	res.metric("rewind_us", float64(rewind.Nanoseconds())/1e3)
	res.metric("restart_10g_s", tenGB.Seconds())
	res.metric("restart_rewind_ratio", float64(tenGB)/float64(rewind))
	return res, nil
}

// ---- E3: availability arithmetic ----

func (r Runner) runE3() (*Result, error) {
	rewind, err := MeasuredRewind(8)
	if err != nil {
		return nil, err
	}
	restart := procmodel.ProcessRestart{}.RecoveryTime(10_000_000_000)
	target := avail.NinesTarget(5)

	t := metrics.NewTable("E3 — availability under memory-fault rates (five-nines target)",
		"faults/yr", "restart downtime", "restart nines", "rewind downtime", "rewind nines", "5-nines (restart/rewind)")
	for _, f := range []float64{1, 3, 10, 100, 10_000, 10_000_000} {
		dR := avail.Downtime(f, restart)
		dW := avail.Downtime(f, rewind)
		t.AddRow(
			fmt.Sprintf("%.0f", f),
			metrics.FormatDuration(dR),
			fmt.Sprintf("%.2f", avail.Nines(avail.Availability(dR))),
			metrics.FormatDuration(dW),
			fmt.Sprintf("%.2f", avail.Nines(avail.Availability(dW))),
			fmt.Sprintf("%v / %v", avail.Meets(f, restart, target), avail.Meets(f, rewind, target)),
		)
	}
	t.Caption = fmt.Sprintf(
		"budget %s/yr; max recoveries within budget: restart %.2g, rewind %.3g (paper: >9·10⁷ at 3.5µs)",
		metrics.FormatDuration(avail.DowntimeBudget(target)),
		avail.MaxRecoveries(target, restart),
		avail.MaxRecoveries(target, rewind),
	)
	res := &Result{Table: t, Notes: "reproduces §IV's arithmetic with the measured rewind time"}
	res.metric("budget_min_per_year", avail.DowntimeBudget(target).Minutes())
	res.metric("max_recoveries_rewind", avail.MaxRecoveries(target, rewind))
	res.metric("restart_meets_at_3", boolMetric(avail.Meets(3, restart, target)))
	res.metric("rewind_meets_at_3", boolMetric(avail.Meets(3, rewind, target)))
	return res, nil
}

// boolMetric encodes a boolean as 0/1 for the metric map.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ---- E4: malicious-client containment ----

// ContainmentResult summarizes one containment run.
type ContainmentResult struct {
	Mode              string
	Requests          int
	BenignRequests    int
	BenignFailures    int
	BenignP99         time.Duration
	AttacksContained  uint64
	Crashes           uint64
	DroppedInDowntime uint64
}

// RunContainment drives a mixed benign/malicious workload and reports
// the benign clients' experience.
func RunContainment(mode kvstore.Mode, requests, attackEvery int, seed uint64) (ContainmentResult, error) {
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := kvstore.NewCache(sys, 1, 64<<20)
	if err != nil {
		return ContainmentResult{}, err
	}
	srv, err := kvstore.NewServer(sys, cache, kvstore.ServerConfig{Mode: mode})
	if err != nil {
		return ContainmentResult{}, err
	}
	// Pre-warm so a native crash has real state to reload (the paper's
	// scenario: the 10 GB memcached; scaled to the quick run).
	if _, err := kvstore.Warmup(cache, 8<<20, 4096); err != nil {
		return ContainmentResult{}, err
	}
	gen, err := workload.NewKV(workload.KVConfig{Seed: seed, Keys: 2000})
	if err != nil {
		return ContainmentResult{}, err
	}
	mal := &workload.MaliciousEvery{G: gen, N: attackEvery}

	var res ContainmentResult
	res.Mode = mode.String()
	res.Requests = requests
	var h metrics.Histogram
	for i := 0; i < requests; i++ {
		req := mal.Next()
		resp := srv.Handle(i%8, req)
		if req.Malicious {
			continue
		}
		res.BenignRequests++
		if resp.Err != nil {
			res.BenignFailures++
			continue
		}
		h.ObserveDuration(resp.Latency)
	}
	st := srv.Stats()
	res.AttacksContained = st.Violations
	res.Crashes = st.Crashes
	res.DroppedInDowntime = st.Dropped
	res.BenignP99 = time.Duration(h.P99())
	return res, nil
}

// HTTPContainment drives a mixed benign/exploit request stream at the
// web server and reports the benign clients' experience.
func HTTPContainment(mode httpd.Mode, requests, attackEvery int, seed uint64) (ContainmentResult, error) {
	sys := core.NewSystem(core.DefaultConfig())
	srv, err := httpd.NewServer(sys, httpd.Config{Mode: mode})
	if err != nil {
		return ContainmentResult{}, err
	}
	srv.HandleFunc("/", []byte("<html>home</html>"))
	srv.HandleFunc("/asset", make([]byte, 4<<20)) // restart warm-up weight
	benign := httpd.BuildRequest("GET", "/", nil)
	evil := httpd.BuildRequest("GET", "/", map[string]string{httpd.AttackHeader: "1"})

	var res ContainmentResult
	res.Mode = "httpd-" + mode.String()
	res.Requests = requests
	var h metrics.Histogram
	for i := 0; i < requests; i++ {
		attack := attackEvery > 0 && i%attackEvery == attackEvery-1
		raw := benign
		if attack {
			raw = evil
		}
		resp := srv.Serve(i%8, raw)
		if attack {
			continue
		}
		res.BenignRequests++
		if resp.Err != nil {
			res.BenignFailures++
			continue
		}
		h.ObserveDuration(resp.Latency)
	}
	st := srv.Stats()
	res.AttacksContained = st.Violations
	res.Crashes = st.Crashes
	res.DroppedInDowntime = st.Dropped
	res.BenignP99 = time.Duration(h.P99())
	return res, nil
}

func (r Runner) runE4() (*Result, error) {
	n := r.requests(50_000)
	t := metrics.NewTable("E4 — impact of malicious clients on benign clients",
		"mode", "benign reqs", "benign failures", "failure rate", "benign p99", "contained", "crashes")
	addRow := func(cr ContainmentResult) {
		t.AddRow(
			cr.Mode,
			cr.BenignRequests,
			cr.BenignFailures,
			fmt.Sprintf("%.2f%%", float64(cr.BenignFailures)/float64(cr.BenignRequests)*100),
			metrics.FormatDuration(cr.BenignP99),
			cr.AttacksContained,
			cr.Crashes,
		)
	}
	results := map[kvstore.Mode]ContainmentResult{}
	for _, mode := range []kvstore.Mode{kvstore.ModeNative, kvstore.ModeSDRaD} {
		cr, err := RunContainment(mode, n, 200, r.seed())
		if err != nil {
			return nil, err
		}
		results[mode] = cr
		addRow(cr)
	}
	httpdResults := map[httpd.Mode]ContainmentResult{}
	for _, mode := range []httpd.Mode{httpd.ModeNative, httpd.ModeSDRaD} {
		cr, err := HTTPContainment(mode, n, 200, r.seed())
		if err != nil {
			return nil, err
		}
		httpdResults[mode] = cr
		addRow(cr)
	}
	t.Caption = fmt.Sprintf("%d requests, 1 attack per 200 requests, 8 clients; paper: SDRaD limits malicious clients' impact without disrupting service", n)
	res := &Result{Table: t, Notes: "native crashes flush the request path and drop arrivals for the whole restart window"}
	nat, sd := results[kvstore.ModeNative], results[kvstore.ModeSDRaD]
	res.metric("native_benign_fail_pct", float64(nat.BenignFailures)/float64(nat.BenignRequests)*100)
	res.metric("sdrad_benign_fail_pct", float64(sd.BenignFailures)/float64(sd.BenignRequests)*100)
	res.metric("sdrad_contained", float64(sd.AttacksContained))
	res.metric("native_crashes", float64(nat.Crashes))
	hNat, hSd := httpdResults[httpd.ModeNative], httpdResults[httpd.ModeSDRaD]
	res.metric("httpd_native_benign_fail_pct", float64(hNat.BenignFailures)/float64(hNat.BenignRequests)*100)
	res.metric("httpd_sdrad_benign_fail_pct", float64(hSd.BenignFailures)/float64(hSd.BenignRequests)*100)
	return res, nil
}

// ---- E5: retrofit effort ----

func (r Runner) runE5() (*Result, error) {
	// Manual-retrofit numbers reported by the SDRaD paper; the FFI
	// column counts the annotations our reproduction actually needs (one
	// Foreign registration per wrapped function). The energy columns
	// apply the development-effort model of internal/energy (§IV:
	// retrofit effort "drives up the cost of software development, both
	// in terms of money and energy consumption").
	manual := energy.DefaultDevEffortFor("manual-sdrad")
	ffiEff := energy.DefaultDevEffortFor("sdrad-ffi")
	ops := energy.DefaultDevEffortFor("replication-ops")

	t := metrics.NewTable("E5 — developer effort to retrofit resilience",
		"use case", "approach", "files changed", "wrapper LoC / annotations", "eng. hours", "effort kgCO2e")
	t.AddRow("Memcached (paper)", "manual SDRaD API", 2, "484 LoC",
		fmt.Sprintf("%.0f", manual.EngineerHours), fmt.Sprintf("%.2f", manual.KgCO2e()))
	t.AddRow("memcached-like KV (ours)", "domain-per-connection", 1, "~40 LoC handler split",
		fmt.Sprintf("%.0f", ffiEff.EngineerHours), fmt.Sprintf("%.2f", ffiEff.KgCO2e()))
	t.AddRow("tlslib via SDRaD-FFI (ours)", "Foreign registrations", 1, "3 annotations (1/function)",
		fmt.Sprintf("%.0f", ffiEff.EngineerHours), fmt.Sprintf("%.2f", ffiEff.KgCO2e()))
	t.AddRow("httpd (ours)", "domain-per-request", 1, "~35 LoC handler split",
		fmt.Sprintf("%.0f", ffiEff.EngineerHours), fmt.Sprintf("%.2f", ffiEff.KgCO2e()))
	t.AddRow("replicated pair (baseline)", "deploy + failover ops", "—", "runbooks, drills",
		fmt.Sprintf("%.0f", ops.EngineerHours), fmt.Sprintf("%.2f", ops.KgCO2e()))

	sc := energy.DefaultScenario()
	saving := energy.Assess(sc, procmodel.ActivePassive{}).TotalKgCO2e() -
		energy.Assess(sc, procmodel.SDRaDRewind{ZeroOnDiscard: true}).TotalKgCO2e()
	t.Caption = fmt.Sprintf(
		"even the manual retrofit (%.1f kgCO2e of engineering) repays in <1%% of a year against the %.0f kgCO2e/yr saved vs an active-passive pair",
		manual.KgCO2e(), saving)
	res := &Result{Table: t, Notes: "the FFI bridge hides argument marshalling, domain entry, and alternate actions behind one registration per function"}
	res.metric("manual_effort_kgco2e", manual.KgCO2e())
	res.metric("ffi_effort_kgco2e", ffiEff.KgCO2e())
	res.metric("annual_saving_kgco2e", saving)
	return res, nil
}

// ---- E6: isolation mechanism micro-costs ----

// MeasuredDomainRoundTrip measures a no-op Enter/exit in virtual time.
func MeasuredDomainRoundTrip() (time.Duration, error) {
	sys := core.NewSystem(core.DefaultConfig())
	if _, err := sys.InitDomain(1, core.DomainConfig{}); err != nil {
		return 0, err
	}
	const iters = 1000
	start := sys.Clock().Cycles()
	for i := 0; i < iters; i++ {
		if err := sys.Enter(1, func(*core.DomainCtx) error { return nil }); err != nil {
			return 0, err
		}
	}
	return sys.Clock().Since(start) / iters, nil
}

func (r Runner) runE6() (*Result, error) {
	measured, err := MeasuredDomainRoundTrip()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("E6 — compartment-crossing costs by isolation mechanism",
		"mechanism", "switch", "round trip", "source")
	for _, m := range procmodel.IsolationMechanisms(vclock.DefaultCostModel()) {
		t.AddRow(m.Name, metrics.FormatDuration(m.SwitchTime), metrics.FormatDuration(m.RoundTrip), "model")
	}
	t.AddRow("sdrad-enter/exit (measured)", "—", metrics.FormatDuration(measured), "measured")
	t.Caption = "paper §IV: conventional process isolation has high context-switching costs; MPK in-process isolation is lightweight"
	res := &Result{Table: t, Notes: "the measured row includes the context snapshot and both PKRU writes of a full sdrad_enter/sdrad_exit pair"}
	for _, m := range procmodel.IsolationMechanisms(vclock.DefaultCostModel()) {
		switch m.Name {
		case "mpk-domain":
			res.metric("mpk_roundtrip_ns", float64(m.RoundTrip.Nanoseconds()))
		case "process-sandbox":
			res.metric("process_roundtrip_ns", float64(m.RoundTrip.Nanoseconds()))
		}
	}
	res.metric("measured_roundtrip_ns", float64(measured.Nanoseconds()))
	return res, nil
}

// ---- E7: energy & carbon at equal availability ----

func (r Runner) runE7() (*Result, error) {
	sc := energy.DefaultScenario()
	as := energy.AssessAll(sc, procmodel.DefaultStrategies())
	var baseline2N energy.Assessment
	for _, a := range as {
		if a.Strategy == "active-passive" {
			baseline2N = a
		}
	}
	t := metrics.NewTable("E7 — annual energy & carbon per resilience strategy (10 GB service, 3 faults/yr, 5-nines target)",
		"strategy", "servers", "availability", "meets 5-nines", "kWh/yr", "op kgCO2e", "emb kgCO2e", "total kgCO2e", "vs 2N")
	for _, a := range as {
		t.AddRow(
			a.Strategy,
			fmt.Sprintf("%.2f", a.Servers),
			avail.FormatAvailability(a.AchievedAvailability),
			a.MeetsTarget,
			fmt.Sprintf("%.0f", a.KWhPerYear),
			fmt.Sprintf("%.0f", a.OperationalKgCO2e),
			fmt.Sprintf("%.0f", a.EmbodiedKgCO2e),
			fmt.Sprintf("%.0f", a.TotalKgCO2e()),
			fmt.Sprintf("%+.1f%%", -energy.SavingsVs(a, baseline2N)*100),
		)
	}
	t.Caption = "paper §I/§IV: replication over-provisions hardware; SDRaD reaches the availability target on one server with 2–4% runtime overhead"

	// Rebound sensitivity (the paper flags rebound effects, its ref [4]):
	// how much of the projected saving survives if freed capacity is
	// partially re-consumed.
	var rewindA energy.Assessment
	for _, a := range as {
		if a.Strategy == "sdrad-rewind" {
			rewindA = a
		}
	}
	projected := baseline2N.TotalKgCO2e() - rewindA.TotalKgCO2e()
	notes := fmt.Sprintf(
		"server model: 110–350 W, PUE 1.4, 1.3 tCO2e embodied over 4 years, 350 gCO2e/kWh grid; "+
			"rebound sensitivity of the %.0f kgCO2e/yr saving vs 2N: %.0f at 30%% rebound, %.0f at 60%%, 0 at backfire",
		projected, energy.Rebound(projected, 0.3), energy.Rebound(projected, 0.6))
	res := &Result{Table: t, Notes: notes}
	res.metric("sdrad_total_kgco2e", rewindA.TotalKgCO2e())
	res.metric("twoN_total_kgco2e", baseline2N.TotalKgCO2e())
	res.metric("saving_vs_2N_pct", energy.SavingsVs(rewindA, baseline2N)*100)
	res.metric("sdrad_meets_target", boolMetric(rewindA.MeetsTarget))
	return res, nil
}

// ---- E8: serialization codec sweep ----

// CodecCost measures one FFI echo call round trip for a payload size.
type CodecCost struct {
	Codec       string
	ArgBytes    int
	WireBytes   int
	PerCallTime time.Duration
}

// MeasureCodec runs n echo calls of size argBytes through a bridge using
// the named codec and reports averaged per-call virtual time and wire
// size.
func MeasureCodec(codecName string, argBytes, n int, seed uint64) (CodecCost, error) {
	codec, err := serde.ByName(codecName)
	if err != nil {
		return CodecCost{}, err
	}
	sys := core.NewSystem(core.DefaultConfig())
	if _, err := sys.InitDomain(1, core.DomainConfig{HeapPages: 64, MaxHeapPages: 1 << 16}); err != nil {
		return CodecCost{}, err
	}
	// Local bridge over the chosen codec.
	b, err := newBridge(sys, codec)
	if err != nil {
		return CodecCost{}, err
	}
	payload := make([]byte, argBytes)
	workload.NewRNG(seed).Bytes(payload)
	wire, err := codec.Encode([]any{payload})
	if err != nil {
		return CodecCost{}, err
	}
	start := sys.Clock().Cycles()
	for i := 0; i < n; i++ {
		if _, err := b.Call("echo", payload); err != nil {
			return CodecCost{}, err
		}
	}
	per := sys.Clock().Since(start) / time.Duration(n)
	return CodecCost{Codec: codecName, ArgBytes: argBytes, WireBytes: len(wire), PerCallTime: per}, nil
}

func (r Runner) runE8() (*Result, error) {
	n := r.requests(2_000)
	if n < 10 {
		n = 10
	}
	t := metrics.NewTable("E8 — SDRaD-FFI argument serialization codecs",
		"codec", "arg size", "wire size", "per-call time")
	measured := map[string]CodecCost{}
	for _, size := range []int{16, 256, 4096, 65536} {
		for _, codec := range []string{"raw", "binary", "json"} {
			c, err := MeasureCodec(codec, size, n, r.seed())
			if err != nil {
				return nil, err
			}
			measured[fmt.Sprintf("%s/%d", codec, size)] = c
			t.AddRow(c.Codec, c.ArgBytes, c.WireBytes, metrics.FormatDuration(c.PerCallTime))
		}
	}
	t.Caption = "paper §III: SDRaD-FFI supports arbitrary argument passing via serialization crates; cost grows with payload size and codec verbosity"
	res := &Result{Table: t, Notes: "each call encodes args, copies into the domain, decodes inside, echoes, and reverses the path"}
	res.metric("json_over_raw_time_64k", float64(measured["json/65536"].PerCallTime)/float64(measured["raw/65536"].PerCallTime))
	res.metric("json_over_raw_wire_64k", float64(measured["json/65536"].WireBytes)/float64(measured["raw/65536"].WireBytes))
	res.metric("raw_64k_us", float64(measured["raw/65536"].PerCallTime.Microseconds()))
	return res, nil
}
