package exp

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/httpd"
	"repro/internal/kvstore"
)

func quick() Runner { return Runner{Quick: true} }

func TestIDsAndClaims(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("IDs = %v", ids)
	}
	for _, id := range ids {
		c, err := Claim(id)
		if err != nil || c == "" {
			t.Errorf("Claim(%s) = %q, %v", id, c, err)
		}
	}
	if _, err := Claim("E99"); err == nil {
		t.Error("unknown claim accepted")
	}
	if _, err := quick().Run("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAllProducesTables(t *testing.T) {
	results, err := quick().RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 13 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Table == nil || r.Table.NumRows() == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
		if r.Claim == "" || r.ID == "" {
			t.Errorf("incomplete result: %+v", r)
		}
		if out := r.Table.String(); !strings.Contains(out, r.ID) {
			t.Errorf("%s: table title should carry the experiment id:\n%s", r.ID, out)
		}
		if md := r.Table.Markdown(); !strings.Contains(md, "|") {
			t.Errorf("%s: markdown rendering broken", r.ID)
		}
	}
}

// parseOverhead extracts "2.74%" -> 2.74 from an E1 row.
func parseOverhead(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad overhead cell %q", cell)
	}
	return v
}

func TestE1OverheadShape(t *testing.T) {
	res, err := quick().Run("E1")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Table.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		oh := parseOverhead(t, row[3])
		if strings.Contains(row[0], "sandbox") {
			// §IV: conventional process isolation costs far more than the
			// paper's 2–4% MPK overhead.
			if oh < 20 {
				t.Errorf("%s: overhead %.2f%%, want >> SDRaD's", row[0], oh)
			}
			continue
		}
		// Paper band is 2–4%; accept a slightly wider reproduction band.
		if oh < 0.5 || oh > 8 {
			t.Errorf("%s: overhead %.2f%% outside [0.5, 8]", row[0], oh)
		}
	}
}

func TestE1HelpersDirect(t *testing.T) {
	n, err := KVOverhead(kvstore.ModeNative, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := KVOverhead(kvstore.ModeSDRaD, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s <= n {
		t.Errorf("sdrad (%v) should cost more than native (%v)", s, n)
	}
	hn, err := HTTPOverhead(httpd.ModeNative, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := HTTPOverhead(httpd.ModeSDRaD, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hs <= hn {
		t.Errorf("httpd: sdrad (%v) should cost more than native (%v)", hs, hn)
	}
}

func TestE2RewindMicroseconds(t *testing.T) {
	rw, err := MeasuredRewind(8)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 3.5µs; require the same order of magnitude.
	if rw < time.Microsecond || rw > 10*time.Microsecond {
		t.Errorf("rewind = %v, want ≈3.5µs", rw)
	}
}

func TestE3ShapeMatchesPaperArithmetic(t *testing.T) {
	res, err := quick().Run("E3")
	if err != nil {
		t.Fatal(err)
	}
	// The 3-faults/yr row: restart must violate, rewind must meet.
	for _, row := range res.Table.Rows() {
		if row[0] == "3" {
			if row[5] != "false / true" {
				t.Errorf("3 faults/yr verdict = %q, want 'false / true'", row[5])
			}
			return
		}
	}
	t.Error("3 faults/yr row missing")
}

func TestE4ContainmentShape(t *testing.T) {
	native, err := RunContainment(kvstore.ModeNative, 3000, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	sdrad, err := RunContainment(kvstore.ModeSDRaD, 3000, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sdrad.BenignFailures != 0 {
		t.Errorf("sdrad benign failures = %d, want 0", sdrad.BenignFailures)
	}
	if native.BenignFailures == 0 {
		t.Error("native should drop benign traffic during restarts")
	}
	if sdrad.AttacksContained == 0 || sdrad.Crashes != 0 {
		t.Errorf("sdrad containment: %+v", sdrad)
	}
	if native.Crashes == 0 {
		t.Errorf("native crashes: %+v", native)
	}
}

func TestE6MeasuredRoundTripTiny(t *testing.T) {
	rt, err := MeasuredDomainRoundTrip()
	if err != nil {
		t.Fatal(err)
	}
	// Two WRPKRUs + snapshot ≈ 35ns; must stay well under a syscall.
	if rt <= 0 || rt > 500*time.Nanosecond {
		t.Errorf("domain round trip = %v, want tens of ns", rt)
	}
}

func TestE8CodecShape(t *testing.T) {
	raw, err := MeasureCodec("raw", 4096, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	js, err := MeasureCodec("json", 4096, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if js.WireBytes <= raw.WireBytes {
		t.Errorf("json wire (%d) should exceed raw (%d)", js.WireBytes, raw.WireBytes)
	}
	if js.PerCallTime <= raw.PerCallTime {
		t.Errorf("json call (%v) should cost more than raw (%v)", js.PerCallTime, raw.PerCallTime)
	}
	small, err := MeasureCodec("binary", 16, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.PerCallTime >= raw.PerCallTime {
		t.Error("small payloads should be cheaper than large")
	}
	if _, err := MeasureCodec("bogus", 16, 10, 1); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestRunnerSeedDefaults(t *testing.T) {
	if (Runner{}).seed() != 1 {
		t.Error("default seed")
	}
	if (Runner{Seed: 7}).seed() != 7 {
		t.Error("custom seed ignored")
	}
	if (Runner{Quick: true}).requests(1000) != 100 {
		t.Error("quick scaling")
	}
	if (Runner{}).requests(1000) != 1000 {
		t.Error("full scaling")
	}
}

func TestAblationShapes(t *testing.T) {
	r := quick()
	a1, err := r.Run("A1")
	if err != nil {
		t.Fatal(err)
	}
	// Zeroing must cost more than fast discard, increasingly so with heap
	// size: check the last row's speedup exceeds the first row's.
	rows := a1.Table.Rows()
	if len(rows) != 4 {
		t.Fatalf("A1 rows = %d", len(rows))
	}

	a2, err := r.Run("A2")
	if err != nil {
		t.Fatal(err)
	}
	a2rows := a2.Table.Rows()
	// Larger batches must not be slower per request than batch=1.
	if len(a2rows) != 4 {
		t.Fatalf("A2 rows = %d", len(a2rows))
	}

	a3, err := r.Run("A3")
	if err != nil {
		t.Fatal(err)
	}
	if a3.Table.NumRows() != 4 {
		t.Fatalf("A3 rows = %d", a3.Table.NumRows())
	}
}

// TestEveryShapeCheckPasses is the conformance test: every paper-shape
// assertion must hold on a quick run.
func TestEveryShapeCheckPasses(t *testing.T) {
	results, err := quick().RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		for _, c := range Verify(res) {
			if !c.Pass {
				t.Errorf("%s: %s — %s", res.ID, c.Name, c.Detail)
			}
		}
	}
}

func TestVerifyHelpers(t *testing.T) {
	if c := band("x", 5, 1, 10); !c.Pass {
		t.Error("band in-range failed")
	}
	if c := band("x", 11, 1, 10); c.Pass {
		t.Error("band out-of-range passed")
	}
	if !atLeast("x", 5, 5).Pass || atLeast("x", 4, 5).Pass {
		t.Error("atLeast")
	}
	if !atMost("x", 5, 5).Pass || atMost("x", 6, 5).Pass {
		t.Error("atMost")
	}
	if !isTrue("x", 1).Pass || isTrue("x", 0).Pass {
		t.Error("isTrue")
	}
	if !isFalse("x", 0).Pass || isFalse("x", 1).Pass {
		t.Error("isFalse")
	}
	if !AllPass([]Check{{Pass: true}, {Pass: true}}) {
		t.Error("AllPass true case")
	}
	if AllPass([]Check{{Pass: true}, {Pass: false}}) {
		t.Error("AllPass false case")
	}
}

func TestS1SensitivityNeverFlips(t *testing.T) {
	res, err := quick().Run("S1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["rewind_flips"] != 0 {
		t.Errorf("rewind verdict flipped %v times across the sweep", res.Metrics["rewind_flips"])
	}
	// The restart crossover exists exactly at the fast-warm-up corner
	// (3 of 9 cells).
	if res.Metrics["restart_meets_count"] != 3 {
		t.Errorf("restart meets target in %v cells, want 3 (fast-warm-up column)", res.Metrics["restart_meets_count"])
	}
	if res.Metrics["min_ratio"] < 1e3 {
		t.Errorf("min restart/rewind ratio = %v, want >= 1e3", res.Metrics["min_ratio"])
	}
	if res.Table.NumRows() != 9 {
		t.Errorf("rows = %d, want 9", res.Table.NumRows())
	}
}

func TestRestartViolationThreshold(t *testing.T) {
	// At 3 faults/yr and five nines, the threshold must sit well below
	// 10 GB (the paper's example violates) and above 1 MB.
	th := RestartViolationThreshold(0.99999, 3)
	if th >= 10_000_000_000 {
		t.Errorf("threshold %d: the paper's 10GB example would not violate", th)
	}
	if th < 1_000_000 {
		t.Errorf("threshold %d implausibly small", th)
	}
	// Impossible budget -> 0.
	if RestartViolationThreshold(1, 3) != 0 {
		t.Error("perfect availability should be unreachable by restart")
	}
}
