package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/vclock"
)

// This file implements the ablation experiments of DESIGN.md §5 as
// harness entries (A1..A3), measured in virtual time like E1..E8. The
// root-level testing.B benchmarks exercise the same axes in wall-clock.

// rewindTimeWith measures one rewind under a given system config and
// domain heap size.
func rewindTimeWith(cfg core.Config, heapPages int) (time.Duration, error) {
	sys := core.NewSystem(cfg)
	if _, err := sys.InitDomain(1, core.DomainConfig{HeapPages: heapPages}); err != nil {
		return 0, err
	}
	err := sys.Enter(1, func(c *core.DomainCtx) error {
		c.MustStore64(0xdead_beef_f000, 1)
		return nil
	})
	if _, ok := core.IsViolation(err); !ok {
		return 0, fmt.Errorf("expected violation, got %v", err)
	}
	cycles, err := sys.RewindCycles(1)
	if err != nil {
		return 0, err
	}
	return vclock.CyclesToDuration(cycles, sys.Clock().Model().CPUHz), nil
}

// runA1 — discard strategy: scrubbing vs fast discard across heap sizes.
func (r Runner) runA1() (*Result, error) {
	t := metrics.NewTable("A1 — discard strategy: page scrub vs fast discard",
		"domain heap", "rewind (zeroing)", "rewind (fast)", "speedup")
	for _, pages := range []int{8, 64, 512, 4096} {
		zero := core.DefaultConfig()
		fast := core.DefaultConfig()
		fast.ZeroOnDiscard = false
		tz, err := rewindTimeWith(zero, pages)
		if err != nil {
			return nil, err
		}
		tf, err := rewindTimeWith(fast, pages)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d KiB", pages*4),
			metrics.FormatDuration(tz),
			metrics.FormatDuration(tf),
			fmt.Sprintf("%.1f×", float64(tz)/float64(tf)),
		)
	}
	t.Caption = "zeroing scrubs discarded pages (confidentiality of dead data) at a per-page cost; fast discard is O(1) but leaves stale bytes"
	return &Result{Table: t, Notes: "both variants zero fresh allocations, so integrity is unaffected; only confidentiality of discarded data differs"}, nil
}

// runA2 — domain granularity: requests per domain entry.
func (r Runner) runA2() (*Result, error) {
	n := r.requests(20_000)
	t := metrics.NewTable("A2 — compartment granularity: requests batched per domain entry",
		"batch", "ns/request", "entry overhead amortized")
	var base float64
	for _, batch := range []int{1, 4, 16, 64} {
		sys := core.NewSystem(core.DefaultConfig())
		if _, err := sys.InitDomain(1, core.DomainConfig{}); err != nil {
			return nil, err
		}
		start := sys.Clock().Cycles()
		for i := 0; i < n; i += batch {
			cnt := batch
			if rem := n - i; rem < cnt {
				cnt = rem
			}
			err := sys.Enter(1, func(c *core.DomainCtx) error {
				for j := 0; j < cnt; j++ {
					p := c.MustAlloc(128)
					c.MustStore(p, make([]byte, 128))
					c.MustFree(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		perReq := float64(sys.Clock().Since(start).Nanoseconds()) / float64(n)
		if batch == 1 {
			base = perReq
		}
		t.AddRow(batch, fmt.Sprintf("%.1f", perReq),
			fmt.Sprintf("%.1f%%", (base-perReq)/base*100))
	}
	t.Caption = "per-request domains give the strongest isolation; batching amortizes the enter/exit cost at the price of a larger blast radius per rewind"
	return &Result{Table: t, Notes: "the kvstore/httpd servers use per-connection domains (batch ≈ connection lifetime)"}, nil
}

// runA3 — detection surface: cost of the exit-time integrity sweep as a
// function of live heap objects.
func (r Runner) runA3() (*Result, error) {
	n := r.requests(5_000)
	t := metrics.NewTable("A3 — detection cost: exit-time heap canary sweep",
		"live chunks", "ns/entry (sweep on)", "ns/entry (sweep off)", "sweep cost")
	for _, chunks := range []int{0, 16, 128, 1024} {
		times := map[bool]float64{}
		for _, sweep := range []bool{true, false} {
			cfg := core.DefaultConfig()
			cfg.IntegrityCheckOnExit = sweep
			sys := core.NewSystem(cfg)
			if _, err := sys.InitDomain(1, core.DomainConfig{MaxHeapPages: 1 << 14}); err != nil {
				return nil, err
			}
			// Populate the live set once.
			if err := sys.Enter(1, func(c *core.DomainCtx) error {
				for j := 0; j < chunks; j++ {
					c.MustAlloc(64)
				}
				return nil
			}); err != nil && chunks > 0 {
				return nil, err
			}
			start := sys.Clock().Cycles()
			for i := 0; i < n; i++ {
				if err := sys.Enter(1, func(*core.DomainCtx) error { return nil }); err != nil {
					return nil, err
				}
			}
			times[sweep] = float64(sys.Clock().Since(start).Nanoseconds()) / float64(n)
		}
		t.AddRow(chunks,
			fmt.Sprintf("%.1f", times[true]),
			fmt.Sprintf("%.1f", times[false]),
			fmt.Sprintf("%.1f ns", times[true]-times[false]))
	}
	t.Caption = "the sweep walks every live chunk's canaries on clean exit; short-lived request domains keep the live set (and this cost) small"
	return &Result{Table: t, Notes: "disabling the sweep trades heap-overflow detection latency (caught at next free instead of at exit) for per-entry cost"}, nil
}
