package exp

import "fmt"

// This file encodes the paper's expected shapes as machine-checkable
// predicates over Result.Metrics, so "does the reproduction match the
// paper?" is a command (`sdrad-report` prints a verdict per experiment)
// and a test, not a manual reading exercise.

// Check is one shape assertion.
type Check struct {
	// Name describes the assertion.
	Name string
	// Pass reports whether the measured value satisfies it.
	Pass bool
	// Detail shows the measured value and the expected band.
	Detail string
}

// band asserts lo <= got <= hi.
func band(name string, got, lo, hi float64) Check {
	return Check{
		Name:   name,
		Pass:   got >= lo && got <= hi,
		Detail: fmt.Sprintf("measured %.4g, expected [%.4g, %.4g]", got, lo, hi),
	}
}

// atLeast asserts got >= lo.
func atLeast(name string, got, lo float64) Check {
	return Check{
		Name:   name,
		Pass:   got >= lo,
		Detail: fmt.Sprintf("measured %.4g, expected >= %.4g", got, lo),
	}
}

// atMost asserts got <= hi.
func atMost(name string, got, hi float64) Check {
	return Check{
		Name:   name,
		Pass:   got <= hi,
		Detail: fmt.Sprintf("measured %.4g, expected <= %.4g", got, hi),
	}
}

// isTrue asserts a 0/1 metric is 1.
func isTrue(name string, got float64) Check {
	return Check{Name: name, Pass: got == 1, Detail: fmt.Sprintf("got %v, expected true", got == 1)}
}

// isFalse asserts a 0/1 metric is 0.
func isFalse(name string, got float64) Check {
	return Check{Name: name, Pass: got == 0, Detail: fmt.Sprintf("got %v, expected false", got == 0)}
}

// Verify returns the shape checks for a result. Experiments without
// encoded expectations (E5 effort table, ablations) return descriptive
// checks that always hold structurally.
func Verify(r *Result) []Check {
	m := r.Metrics
	switch r.ID {
	case "E1":
		return []Check{
			// Paper band 2–4%; accept [0.5, 8] as a faithful reproduction.
			band("KV overhead in low single digits %", m["kv_overhead_pct"], 0.5, 8),
			band("httpd overhead in low single digits %", m["httpd_overhead_pct"], 0.5, 8),
			band("tls overhead in low single digits %", m["tls_overhead_pct"], 0.5, 8),
			atLeast("process sandbox costs an order of magnitude more %", m["sandbox_overhead_pct"], 20),
		}
	case "E2":
		return []Check{
			band("rewind is µs-scale (paper 3.5µs)", m["rewind_us"], 1, 10),
			band("10 GB restart ≈ 2 min (paper ~120s)", m["restart_10g_s"], 90, 150),
			atLeast("restart/rewind ratio ≥ 10⁶", m["restart_rewind_ratio"], 1e6),
		}
	case "E3":
		return []Check{
			band("five-nines budget ≈ 5.26 min/yr", m["budget_min_per_year"], 5.0, 5.6),
			atLeast("max rewind recoveries > 10⁷ (paper >9·10⁷)", m["max_recoveries_rewind"], 1e7),
			isFalse("3 faults/yr × 2 min restart violates five nines", m["restart_meets_at_3"]),
			isTrue("3 faults/yr × rewind meets five nines", m["rewind_meets_at_3"]),
		}
	case "E4":
		return []Check{
			atMost("SDRaD benign failure rate is zero", m["sdrad_benign_fail_pct"], 0),
			atLeast("native drops benign traffic under attack", m["native_benign_fail_pct"], 1),
			atLeast("SDRaD contains every attack", m["sdrad_contained"], 1),
			atLeast("native crashes under attack", m["native_crashes"], 1),
			atMost("httpd SDRaD benign failure rate is zero", m["httpd_sdrad_benign_fail_pct"], 0),
			atLeast("httpd native drops benign traffic under attack", m["httpd_native_benign_fail_pct"], 1),
		}
	case "E5":
		return []Check{
			atMost("FFI effort below manual effort", m["ffi_effort_kgco2e"], m["manual_effort_kgco2e"]),
			atLeast("retrofit effort ≪ annual replication saving", m["annual_saving_kgco2e"], m["manual_effort_kgco2e"]*10),
		}
	case "E6":
		return []Check{
			atMost("MPK round trip ≤ 100 ns", m["mpk_roundtrip_ns"], 100),
			atLeast("process sandbox ≥ 50× MPK cost", m["process_roundtrip_ns"], m["mpk_roundtrip_ns"]*50),
			atMost("measured enter/exit within 3× of model", m["measured_roundtrip_ns"], m["mpk_roundtrip_ns"]*3),
		}
	case "E7":
		return []Check{
			isTrue("SDRaD meets five nines on one server", m["sdrad_meets_target"]),
			atLeast("CO₂e saving vs 2N ≥ 25%", m["saving_vs_2N_pct"], 25),
		}
	case "E8":
		return []Check{
			atLeast("JSON wire size exceeds raw at 64 KiB", m["json_over_raw_wire_64k"], 1.05),
			atLeast("JSON per-call time exceeds raw at 64 KiB", m["json_over_raw_time_64k"], 1.05),
		}
	case "S1":
		return []Check{
			atMost("rewind verdict never flips across the sweep", m["rewind_flips"], 0),
			atLeast("restart/rewind separation ≥ 10³ everywhere", m["min_ratio"], 1e3),
			atMost("restart crossover limited to the fast-warm-up corner", m["restart_meets_count"], 3),
		}
	case "C1":
		return []Check{
			atMost("no differential oracle fails", m["oracle_failures"], 0),
			atLeast("oracle suite actually ran", m["oracle_checks"], 10),
			isTrue("every attacked scenario recorded containment events", boolMetric(m["attacked_with_events"] == m["attacked_scenarios"])),
			isTrue("every benign scenario stayed clean", boolMetric(m["benign_clean"] == m["benign_scenarios"])),
			atLeast("campaign detected injected faults", m["total_detections"], 1),
		}
	default:
		// Ablations: structural check only (tables were produced).
		return []Check{{
			Name:   "ablation table produced",
			Pass:   r.Table != nil && r.Table.NumRows() > 0,
			Detail: fmt.Sprintf("%d rows", r.Table.NumRows()),
		}}
	}
}

// AllPass reports whether every check passes.
func AllPass(checks []Check) bool {
	for _, c := range checks {
		if !c.Pass {
			return false
		}
	}
	return true
}
