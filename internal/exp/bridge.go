package exp

import (
	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/serde"
)

// newBridge builds an FFI bridge on domain 1 with an "echo" foreign
// function, used by the codec sweep.
func newBridge(sys *core.System, codec serde.Codec) (*ffi.Bridge, error) {
	b, err := ffi.NewBridge(sys, 1, codec)
	if err != nil {
		return nil, err
	}
	err = b.Register(ffi.Registration{
		Name: "echo",
		Fn: func(_ *core.DomainCtx, args []any) ([]any, error) {
			return args, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}
