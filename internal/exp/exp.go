// Package exp is the experiment harness: it regenerates, as printable
// tables, every quantitative claim of the reproduced paper (the
// per-experiment index lives in DESIGN.md §4 and EXPERIMENTS.md).
//
// Each experiment builds fresh simulated systems, drives deterministic
// workloads, and reports virtual-time measurements plus model outputs.
// The harness is shared by cmd/sdrad-bench, cmd/sdrad-report, and the
// root-level testing.B benchmarks.
package exp

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Result is one experiment's regenerated table.
type Result struct {
	// ID is the experiment identifier (E1..E8, A1..A3).
	ID string
	// Claim is the paper claim the experiment checks.
	Claim string
	// Table is the regenerated data.
	Table *metrics.Table
	// Notes carries per-run commentary (substitutions, caveats).
	Notes string
	// Metrics carries the key measured numbers for programmatic shape
	// verification (see Verify).
	Metrics map[string]float64
}

// metric records a key number on the result (allocating lazily).
func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// Runner runs experiments. The zero value runs full-size experiments;
// set Quick for CI-sized runs.
type Runner struct {
	// Quick shrinks request counts for fast runs (same shapes).
	Quick bool
	// Seed is the workload seed (default 1).
	Seed uint64
}

func (r Runner) seed() uint64 {
	if r.Seed == 0 {
		return 1
	}
	return r.Seed
}

func (r Runner) requests(full int) int {
	if r.Quick {
		return full / 10
	}
	return full
}

// experiment ties an ID to its implementation.
type experiment struct {
	id    string
	claim string
	run   func(Runner) (*Result, error)
}

func registry() []experiment {
	return []experiment{
		{"E1", "SDRaD adds 2–4% runtime overhead (Memcached, NGINX, OpenSSL)", Runner.runE1},
		{"E2", "Recovery: ~2 min restart at 10 GB vs 3.5 µs in-process rewind", Runner.runE2},
		{"E3", "Three 2-min restarts/yr violate five nines; rewind allows >9·10⁷ recoveries", Runner.runE3},
		{"E4", "Malicious clients are contained without disrupting other clients", Runner.runE4},
		{"E5", "Retrofit effort: 484 wrapper LoC manual vs annotation-style SDRaD-FFI", Runner.runE5},
		{"E6", "MPK domain switching is far cheaper than process-based isolation", Runner.runE6},
		{"E7", "Equal availability with ~half the energy/CO₂e of replication", Runner.runE7},
		{"E8", "Cross-domain argument serialization: codec cost trade-offs", Runner.runE8},
		{"A1", "Ablation — discard strategy: page scrub vs fast discard", Runner.runA1},
		{"A2", "Ablation — compartment granularity vs switch overhead", Runner.runA2},
		{"A3", "Ablation — exit-time integrity sweep cost", Runner.runA3},
		{"S1", "Sensitivity — headline verdicts are stable under cost-model error", Runner.runS1},
		{"C1", "Campaign — seeded fault campaigns are contained and pass the differential oracles", Runner.runC1},
	}
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	regs := registry()
	ids := make([]string, len(regs))
	for i, e := range regs {
		ids[i] = e.id
	}
	return ids
}

// Claim returns the paper claim for an experiment ID.
func Claim(id string) (string, error) {
	for _, e := range registry() {
		if e.id == id {
			return e.claim, nil
		}
	}
	return "", fmt.Errorf("exp: unknown experiment %q", id)
}

// Run executes one experiment by ID.
func (r Runner) Run(id string) (*Result, error) {
	for _, e := range registry() {
		if e.id == id {
			res, err := e.run(r)
			if err != nil {
				return nil, fmt.Errorf("exp: %s: %w", id, err)
			}
			res.ID = e.id
			res.Claim = e.claim
			return res, nil
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, known)
}

// RunAll executes every experiment in order.
func (r Runner) RunAll() ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		res, err := r.Run(id)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
