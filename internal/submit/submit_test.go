package submit

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// echoExec resolves every task with nil and records batches.
type echoExec struct {
	mu      sync.Mutex
	batches [][]int // payloads per batch, in execution order
}

func (e *echoExec) exec(w int, batch []*Task) {
	ids := make([]int, len(batch))
	for i, t := range batch {
		ids[i] = t.Payload.(int)
		t.Resolve(nil)
	}
	e.mu.Lock()
	e.batches = append(e.batches, ids)
	e.mu.Unlock()
}

func TestSubmitResolvesInFIFOOrder(t *testing.T) {
	e := &echoExec{}
	q, err := New(Config{Workers: 1, Depth: 128, MaxBatch: 8, Exec: e.exec})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var futs []*Future
	for i := 0; i < 50; i++ {
		f, err := q.Submit(0, context.Background(), i)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		futs = append(futs, f)
	}
	q.Flush()
	for i, f := range futs {
		select {
		case <-f.Done():
		default:
			t.Fatalf("future %d unresolved after Flush", i)
		}
		if err := f.Err(); err != nil {
			t.Errorf("task %d: %v", i, err)
		}
	}
	// FIFO across batches: concatenating batch payloads gives 0..49.
	e.mu.Lock()
	defer e.mu.Unlock()
	want := 0
	for _, b := range e.batches {
		if len(b) > 8 {
			t.Errorf("batch of %d exceeds MaxBatch 8", len(b))
		}
		for _, id := range b {
			if id != want {
				t.Fatalf("execution order broken: got %d, want %d", id, want)
			}
			want++
		}
	}
	if want != 50 {
		t.Errorf("executed %d tasks, want 50", want)
	}
}

// TestBatchesCoalesce proves the drain loop actually batches: with the
// consumer blocked, everything queued behind the first task comes out in
// maximal batches.
func TestBatchesCoalesce(t *testing.T) {
	gate := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	e := &echoExec{}
	exec := func(w int, batch []*Task) {
		once.Do(func() { close(first); <-gate })
		e.exec(w, batch)
	}
	q, err := New(Config{Workers: 1, Depth: 128, MaxBatch: 16, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	if _, err := q.Submit(0, context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	<-first // consumer is now stalled inside batch 1
	for i := 1; i <= 32; i++ {
		if _, err := q.Submit(0, context.Background(), i); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	close(gate)
	q.Flush()

	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.batches) != 3 {
		t.Fatalf("got %d batches %v, want 3 (1 + 16 + 16)", len(e.batches), e.batches)
	}
	if len(e.batches[1]) != 16 || len(e.batches[2]) != 16 {
		t.Errorf("stalled backlog drained as %d+%d, want 16+16", len(e.batches[1]), len(e.batches[2]))
	}
}

func TestOverloadRejection(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	exec := func(w int, batch []*Task) {
		once.Do(func() { close(started) })
		<-gate
		for _, t := range batch {
			t.Resolve(nil)
		}
	}
	q, err := New(Config{Workers: 1, Depth: 4, MaxBatch: 4, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	// One task occupies the (blocked) executor; then fill the queue.
	if _, err := q.Submit(0, context.Background(), -1); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 4; i++ {
		if _, err := q.Submit(0, context.Background(), i); err != nil {
			t.Fatalf("Submit %d within depth: %v", i, err)
		}
	}
	_, err = q.Submit(0, context.Background(), 99)
	o, ok := IsOverload(err)
	if !ok {
		t.Fatalf("Submit over depth = %v, want *OverloadError", err)
	}
	if o.Worker != 0 || o.Capacity != 4 || o.Depth != 4 {
		t.Errorf("OverloadError = %+v, want worker 0 depth 4/4", o)
	}
	if st := q.Stats(0); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	close(gate)
	q.Flush()
}

func TestSubmitWaitBlocksInsteadOfRejecting(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var resolved atomic.Int64
	exec := func(w int, batch []*Task) {
		select {
		case <-started:
		default:
			close(started)
		}
		<-gate
		for _, t := range batch {
			t.Resolve(nil)
			resolved.Add(1)
		}
	}
	q, err := New(Config{Workers: 1, Depth: 2, MaxBatch: 2, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	if _, err := q.Submit(0, context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(0, context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := q.SubmitWait(0, context.Background(), 3)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("SubmitWait returned %v before space freed", err)
	default:
	}
	close(gate) // executor drains, space frees, SubmitWait lands
	if err := <-done; err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	q.Flush()
	if n := resolved.Load(); n != 4 {
		t.Errorf("resolved %d tasks, want 4", n)
	}
}

func TestCloseFailsBacklogAndRejectsNewSubmits(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	exec := func(w int, batch []*Task) {
		once.Do(func() { close(started) })
		<-gate
		for _, t := range batch {
			t.Resolve(nil)
		}
	}
	q, err := New(Config{Workers: 1, Depth: 8, MaxBatch: 1, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(0, context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := q.Submit(0, context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Order matters for determinism: make Close mark the queues closed
	// while the executor is still stalled on batch 1, so the drain loop
	// cannot start a second batch with the queued task before it sees
	// the close.
	closed := make(chan struct{})
	go func() { q.Close(); close(closed) }()
	for !q.closed.Load() {
		runtime.Gosched()
	}
	close(gate)
	<-closed
	if err := queued.Err(); !errors.Is(err, ErrClosed) {
		t.Errorf("backlog task resolved with %v, want ErrClosed", err)
	}
	if _, err := q.Submit(0, context.Background(), 2); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

// TestUnresolvedTaskBackstop: an executor that forgets to resolve must
// not hang producers.
func TestUnresolvedTaskBackstop(t *testing.T) {
	q, err := New(Config{Workers: 1, Exec: func(w int, batch []*Task) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	f, err := q.Submit(0, context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Err(); !errors.Is(err, errUnresolved) {
		t.Errorf("Err = %v, want errUnresolved backstop", err)
	}
}

func TestFutureWaitHonorsContext(t *testing.T) {
	gate := make(chan struct{})
	q, err := New(Config{Workers: 1, Exec: func(w int, batch []*Task) {
		<-gate
		for _, t := range batch {
			t.Resolve(nil)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	f, err := q.Submit(0, context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait with cancelled ctx = %v, want context.Canceled", err)
	}
	close(gate)
	if err := f.Err(); err != nil {
		t.Errorf("abandoned task still executed, Err = %v", err)
	}
}

// TestConcurrentSubmitFlushHammer drives many producers across several
// workers under -race: every accepted task resolves, per-worker order
// holds, and Flush observes completion.
func TestConcurrentSubmitFlushHammer(t *testing.T) {
	const workers, producers, perProducer = 4, 8, 200
	type rec struct {
		mu   sync.Mutex
		seen map[string]bool
		last map[int]int // worker -> last sequence per producer key
	}
	r := &rec{seen: make(map[string]bool)}
	exec := func(w int, batch []*Task) {
		r.mu.Lock()
		for _, t := range batch {
			r.seen[t.Payload.(string)] = true
			t.Resolve(nil)
		}
		r.mu.Unlock()
	}
	q, err := New(Config{Workers: workers, Depth: 1 << 16, MaxBatch: 32, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var wg sync.WaitGroup
	var accepted atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				w := (p + i) % workers
				if _, err := q.Submit(w, context.Background(), fmt.Sprintf("p%d-i%d", p, i)); err == nil {
					accepted.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
	q.Flush()
	r.mu.Lock()
	defer r.mu.Unlock()
	if int64(len(r.seen)) != accepted.Load() {
		t.Errorf("executed %d tasks, accepted %d", len(r.seen), accepted.Load())
	}
}
