// Package submit implements the bounded submission-queue machinery under
// the asynchronous batched execution layer (sdrad.AsyncPool and the
// pipelined network servers): per-worker FIFO queues, futures, worker
// drain loops, and typed admission-control errors.
//
// The design follows the io_uring shape. Producers Submit tasks into a
// per-worker bounded queue and receive a Future; one consumer goroutine
// per worker drains up to MaxBatch queued tasks at a time and hands the
// batch to an executor callback, which amortizes a fixed per-entry cost
// (for SDRaD: one domain Enter/Exit, one heap-integrity sweep, one
// discard decision) across the whole batch and resolves each task's
// Future. A full queue rejects immediately with *OverloadError — the
// backpressure signal servers translate into 503/SERVER_ERROR — instead
// of queueing unboundedly.
//
// Invariants:
//
//   - Per-worker FIFO: tasks submitted to one worker are handed to the
//     executor in submission order, and batches never interleave (one
//     batch per worker is in flight at a time).
//   - Every accepted task is resolved exactly once — by the executor,
//     or by the drain loop's backstop if the executor misses one, or
//     with ErrClosed when Close discards it. Futures never leak.
//   - Flush returns only when every task accepted before the call has
//     been resolved.
//
// The package is deliberately free of simulated-machine dependencies:
// batching policy lives here, batch *semantics* (the replay rule that
// makes batched results match serial execution) live in the sdrad root
// package. See DESIGN.md §9 for the full async architecture.
package submit
