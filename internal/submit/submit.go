package submit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Submit after Close, and resolves any task
// still queued when Close discards the backlog.
var ErrClosed = errors.New("submit: queues closed")

// errUnresolved is the backstop outcome for a task an executor failed to
// resolve; seeing it means the executor callback is buggy.
var errUnresolved = errors.New("submit: executor did not resolve task")

// OverloadError reports that a submission was rejected because the
// target worker's queue was full — the admission-control signal. It is
// an error value (not a panic or a block) so servers can translate it
// into a load-shedding response. A queue that is being removed by a
// shrink rejects with the same error: the submitter fails over exactly
// as it would from a full queue.
type OverloadError struct {
	// Worker is the queue that rejected the submission.
	Worker int
	// Depth is the queue occupancy observed at rejection.
	Depth int
	// Capacity is the queue's configured bound.
	Capacity int
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("submit: worker %d queue full (%d/%d)", e.Worker, e.Depth, e.Capacity)
}

// IsOverload reports whether err is (or wraps) an *OverloadError,
// returning it.
func IsOverload(err error) (*OverloadError, bool) {
	var o *OverloadError
	if errors.As(err, &o) {
		return o, true
	}
	return nil, false
}

// Future is the pending result of a submitted task. It is resolved
// exactly once; Done is closed at resolution.
type Future struct {
	done chan struct{}
	once sync.Once
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

// Resolved returns a future that is already resolved with err, for
// callers that must hand back a Future on a rejected submission.
func Resolved(err error) *Future {
	f := newFuture()
	f.resolve(err)
	return f
}

// resolve sets the outcome (first resolution wins) and closes Done.
func (f *Future) resolve(err error) {
	f.once.Do(func() {
		f.err = err
		close(f.done)
	})
}

// Done returns a channel closed when the task has been resolved.
func (f *Future) Done() <-chan struct{} { return f.done }

// Err blocks until the task is resolved and returns its outcome.
func (f *Future) Err() error {
	<-f.done
	return f.err
}

// Wait blocks until the task resolves or ctx is done, returning the
// task's outcome or ctx.Err(). A task abandoned by Wait still executes;
// its outcome is simply no longer observed.
func (f *Future) Wait(ctx context.Context) error {
	select {
	case <-f.done:
		return f.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Task is one queued call: an opaque payload for the executor plus the
// future producers wait on.
type Task struct {
	// Ctx is the submitter's context; executors should honor it.
	Ctx context.Context
	// Payload carries the executor-defined call description.
	Payload any
	fut     *Future
}

// Future returns the task's future.
func (t *Task) Future() *Future { return t.fut }

// Resolve records the task's outcome (first resolution wins).
func (t *Task) Resolve(err error) { t.fut.resolve(err) }

// Config configures Queues.
type Config struct {
	// Workers is the number of queues, each with its own drain loop.
	Workers int
	// Depth is the per-worker queue capacity (default 64).
	Depth int
	// MaxBatch bounds how many tasks one executor call receives
	// (default 16).
	MaxBatch int
	// Exec executes one batch for one worker and must resolve every
	// task. Batches for the same worker never overlap; batches for
	// different workers run concurrently.
	Exec func(worker int, batch []*Task)
}

func (c *Config) fill() error {
	if c.Workers <= 0 {
		return fmt.Errorf("submit: config needs Workers > 0, got %d", c.Workers)
	}
	if c.Exec == nil {
		return errors.New("submit: config needs an Exec callback")
	}
	if c.Depth <= 0 {
		c.Depth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	return nil
}

// workerQ is one bounded FIFO plus its synchronization. A mutex/cond
// pair (rather than a channel) lets Close, Resize, and blocking submits
// interact without send-on-closed races.
type workerQ struct {
	mu    sync.Mutex
	fill  sync.Cond // signaled when a task arrives or the queue closes
	space sync.Cond // signaled when the drain loop takes tasks
	items []*Task

	// closing marks a queue being removed by Resize: new submissions
	// are rejected (overload, so submitters fail over), the backlog is
	// executed to completion, then the drain loop exits. Under mu.
	closing bool
	// done is closed when the drain loop has exited; Resize waits on
	// it so the removed queue's backlog is fully executed — every
	// admitted task resolved, every durable effect committed — before
	// Resize returns.
	done chan struct{}

	// load counts queued plus executing tasks; read lock-free by
	// dispatch policies.
	load atomic.Int64

	// counters (under mu)
	submitted uint64
	rejected  uint64
	batches   uint64
	maxBatch  int
}

func newWorkerQ() *workerQ {
	wq := &workerQ{done: make(chan struct{})}
	wq.fill.L = &wq.mu
	wq.space.L = &wq.mu
	return wq
}

// Queues is a set of per-worker bounded submission queues with one drain
// goroutine per worker. The queue set is elastic: Resize adds queues
// (fresh drain loops) or removes them from the tail (backlog executed,
// then the loop exits). Create with New; safe for concurrent use.
type Queues struct {
	cfg Config
	// qs is the published queue snapshot: readers (Submit, Load,
	// Stats) load it atomically, Resize swaps it under resizeMu.
	qs     atomic.Pointer[[]*workerQ]
	closed atomic.Bool

	// resizeMu serializes Resize and Close against each other.
	resizeMu sync.Mutex

	// pending tracks accepted-but-unresolved tasks for Flush.
	flushMu   sync.Mutex
	flushCond sync.Cond
	pending   int

	wg sync.WaitGroup
}

// New creates the queues and starts one drain loop per worker.
func New(cfg Config) (*Queues, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	q := &Queues{cfg: cfg}
	q.flushCond.L = &q.flushMu
	qs := make([]*workerQ, cfg.Workers)
	for i := range qs {
		qs[i] = newWorkerQ()
	}
	q.qs.Store(&qs)
	for i, wq := range qs {
		q.wg.Add(1)
		go q.drain(wq, i)
	}
	return q, nil
}

// snapshot returns the published queue set.
func (q *Queues) snapshot() []*workerQ { return *q.qs.Load() }

// at maps a possibly stale worker index onto the current snapshot.
func at(qs []*workerQ, w int) (*workerQ, int) {
	w %= len(qs)
	if w < 0 {
		w += len(qs)
	}
	return qs[w], w
}

// Workers returns the current number of queues.
func (q *Queues) Workers() int { return len(q.snapshot()) }

// Depth returns the per-worker queue capacity. Servers use it to derive
// deterministic retry hints: the capacity is configuration, not load, so
// a hint computed from it is identical across runs.
func (q *Queues) Depth() int { return q.cfg.Depth }

// Load returns worker w's current occupancy (queued + executing),
// suitable as a least-loaded dispatch signal. A stale index (from a
// concurrent shrink) maps onto the current queue set.
func (q *Queues) Load(w int) int64 {
	wq, _ := at(q.snapshot(), w)
	return wq.load.Load()
}

// TotalLoad returns the summed occupancy across all queues — the
// queue-depth pressure signal elastic controllers scale on.
func (q *Queues) TotalLoad() int64 {
	var n int64
	for _, wq := range q.snapshot() {
		n += wq.load.Load()
	}
	return n
}

// Submit enqueues a task for worker w without blocking. It returns the
// task's future, an *OverloadError when the queue is full (or being
// removed by a shrink), or ErrClosed after Close. ctx is attached to
// the task for the executor; a ctx already cancelled is still accepted
// (the executor resolves it).
func (q *Queues) Submit(w int, ctx context.Context, payload any) (*Future, error) {
	return q.submit(w, ctx, payload, false)
}

// SubmitWait is Submit, but when the queue is full it blocks until space
// frees up (or the queue closes or shrinks away) instead of rejecting.
// It exists for callers that provide their own admission control, like
// DoBatch.
func (q *Queues) SubmitWait(w int, ctx context.Context, payload any) (*Future, error) {
	return q.submit(w, ctx, payload, true)
}

func (q *Queues) submit(w int, ctx context.Context, payload any, wait bool) (*Future, error) {
	wq, w := at(q.snapshot(), w)
	wq.mu.Lock()
	for {
		if q.closed.Load() {
			wq.mu.Unlock()
			return nil, ErrClosed
		}
		if wq.closing {
			// The queue is being removed: reject as overload so the
			// submitter's failover path re-dispatches to a live queue.
			depth := len(wq.items)
			wq.rejected++
			wq.mu.Unlock()
			return nil, &OverloadError{Worker: w, Depth: depth, Capacity: q.cfg.Depth}
		}
		if len(wq.items) < q.cfg.Depth {
			break
		}
		if !wait {
			depth := len(wq.items)
			wq.rejected++
			wq.mu.Unlock()
			return nil, &OverloadError{Worker: w, Depth: depth, Capacity: q.cfg.Depth}
		}
		wq.space.Wait()
	}
	t := &Task{Ctx: ctx, Payload: payload, fut: newFuture()}
	wq.items = append(wq.items, t)
	wq.submitted++
	wq.load.Add(1)
	// Count the task for Flush before releasing the queue lock: the
	// drain loop needs wq.mu to take the task, so pending can never
	// lag behind a resolution (which would let Flush return early).
	q.flushMu.Lock()
	q.pending++
	q.flushMu.Unlock()
	wq.fill.Signal()
	wq.mu.Unlock()
	return t.fut, nil
}

// drain is one queue's loop: block for the first task, take up to
// MaxBatch, execute, repeat. On Close it fails the remaining backlog
// with ErrClosed; on a shrink (closing) it executes the full backlog —
// preserving every admitted task's effects — and then exits.
func (q *Queues) drain(wq *workerQ, w int) {
	defer q.wg.Done()
	defer close(wq.done)
	for {
		wq.mu.Lock()
		for len(wq.items) == 0 && !q.closed.Load() && !wq.closing {
			wq.fill.Wait()
		}
		if q.closed.Load() {
			rest := wq.items
			wq.items = nil
			wq.mu.Unlock()
			for _, t := range rest {
				t.Resolve(ErrClosed)
				wq.load.Add(-1)
			}
			q.finish(len(rest))
			return
		}
		if wq.closing && len(wq.items) == 0 {
			// Shrink exit: the backlog has fully executed (admitted
			// tasks resolved, their batches committed) — only now may
			// the queue disappear.
			wq.mu.Unlock()
			return
		}
		n := len(wq.items)
		if n > q.cfg.MaxBatch {
			n = q.cfg.MaxBatch
		}
		batch := make([]*Task, n)
		copy(batch, wq.items)
		wq.items = append(wq.items[:0], wq.items[n:]...)
		wq.batches++
		if n > wq.maxBatch {
			wq.maxBatch = n
		}
		wq.space.Broadcast()
		wq.mu.Unlock()

		q.cfg.Exec(w, batch)
		for _, t := range batch {
			t.Resolve(errUnresolved) // backstop; no-op if Exec resolved
			wq.load.Add(-1)
		}
		q.finish(n)
	}
}

// finish retires n tasks from the pending count and wakes Flush.
func (q *Queues) finish(n int) {
	if n == 0 {
		return
	}
	q.flushMu.Lock()
	q.pending -= n
	if q.pending == 0 {
		q.flushCond.Broadcast()
	}
	q.flushMu.Unlock()
}

// Flush blocks until every task accepted before the call has been
// resolved. Tasks submitted concurrently with Flush may or may not be
// covered.
func (q *Queues) Flush() {
	q.flushMu.Lock()
	for q.pending > 0 {
		q.flushCond.Wait()
	}
	q.flushMu.Unlock()
}

// Resize grows or shrinks the queue set to n. Growing appends fresh
// queues with their own drain loops; shrinking removes queues from the
// tail in the acked-work-preserving order: the queue is first
// unpublished (new submissions cannot reach it; racing stale
// submissions are rejected as overload and fail over), then its entire
// backlog executes through Exec — so every admitted task resolves and
// every durable effect its batch carries commits — and only then does
// its drain loop exit. Resize returns once every removed queue has
// fully drained. Returns ErrClosed after Close.
func (q *Queues) Resize(n int) error {
	if n < 1 {
		return fmt.Errorf("submit: resize to %d queues (want >= 1)", n)
	}
	q.resizeMu.Lock()
	defer q.resizeMu.Unlock()
	if q.closed.Load() {
		return ErrClosed
	}
	cur := q.snapshot()
	if n == len(cur) {
		return nil
	}
	if n > len(cur) {
		next := make([]*workerQ, n)
		copy(next, cur)
		for i := len(cur); i < n; i++ {
			wq := newWorkerQ()
			next[i] = wq
			q.wg.Add(1)
			go q.drain(wq, i)
		}
		q.qs.Store(&next)
		return nil
	}
	next := make([]*workerQ, n)
	copy(next, cur[:n])
	q.qs.Store(&next)
	removed := cur[n:]
	for _, wq := range removed {
		wq.mu.Lock()
		wq.closing = true
		wq.fill.Broadcast()
		wq.space.Broadcast()
		wq.mu.Unlock()
	}
	for _, wq := range removed {
		<-wq.done
	}
	return nil
}

// Close stops accepting submissions, fails the queued backlog with
// ErrClosed, waits for in-flight batches to finish, and returns. It is
// idempotent. Call Flush first for a graceful drain.
func (q *Queues) Close() {
	q.resizeMu.Lock()
	if q.closed.Swap(true) {
		q.resizeMu.Unlock()
		q.wg.Wait()
		return
	}
	for _, wq := range q.snapshot() {
		wq.mu.Lock()
		wq.fill.Broadcast()
		wq.space.Broadcast()
		wq.mu.Unlock()
	}
	q.resizeMu.Unlock()
	q.wg.Wait()
}

// QueueStats reports one worker queue's counters.
type QueueStats struct {
	// Submitted and Rejected count accepted and overload-rejected
	// submissions.
	Submitted, Rejected uint64
	// Batches is the number of executor calls; MaxBatch the largest
	// batch handed to one.
	Batches  uint64
	MaxBatch int
}

// Stats returns a snapshot of worker w's queue counters. A stale index
// maps onto the current queue set.
func (q *Queues) Stats(w int) QueueStats {
	wq, _ := at(q.snapshot(), w)
	wq.mu.Lock()
	defer wq.mu.Unlock()
	return QueueStats{
		Submitted: wq.submitted,
		Rejected:  wq.rejected,
		Batches:   wq.batches,
		MaxBatch:  wq.maxBatch,
	}
}
