package alloc

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/pku"
	"repro/internal/vclock"
)

func newParityHeap(t *testing.T) (*Heap, *vclock.Clock) {
	t.Helper()
	clk := vclock.New(vclock.DefaultCostModel())
	m := mem.New(clk)
	h, err := New(m, pku.Key(1), Config{InitialPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	return h, clk
}

// store64Cost is the virtual cost of one 8-byte header/canary access.
func store64Cost(mdl vclock.CostModel) uint64 { return mdl.MemStore + 8*mdl.MemPerByte }
func load64Cost(mdl vclock.CostModel) uint64  { return mdl.MemLoad + 8*mdl.MemPerByte }

// TestAllocFreeCycleParity pins the virtual cost of the benign
// Alloc/Free paths to the seed implementation's formula: the in-band
// metadata redesign (header-derived classes, freed markers) must not
// change what the simulated machine charges.
//
// Seed accounting:
//
//	Alloc(n) = Store64(size) + Store64(canary) + StoreBytes(ClassSize(c)) + Store64(redzone)
//	Free(p)  = Load64(canary) + Load64(size or redzone) + Load64(redzone or size)
func TestAllocFreeCycleParity(t *testing.T) {
	h, clk := newParityHeap(t)
	mdl := clk.Model()

	for _, n := range []int{1, 16, 100, 1000} {
		c, err := classFor(n)
		if err != nil {
			t.Fatal(err)
		}
		wantAlloc := 3*store64Cost(mdl) + mdl.MemStore + uint64(ClassSize(c))*mdl.MemPerByte

		before := clk.Cycles()
		p, err := h.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := clk.Cycles() - before; got != wantAlloc {
			t.Errorf("Alloc(%d) charged %d cycles, want %d", n, got, wantAlloc)
		}

		wantFree := 3 * load64Cost(mdl)
		before = clk.Cycles()
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
		if got := clk.Cycles() - before; got != wantFree {
			t.Errorf("Free(%d bytes) charged %d cycles, want %d", n, got, wantFree)
		}
	}
}

// TestCheckIntegrityCycleParity: the sweep charges exactly the canary +
// redzone validation per live chunk; freed chunks (walked via kernel-side
// peeks) cost nothing — matching the seed's live-map sweep.
func TestCheckIntegrityCycleParity(t *testing.T) {
	h, clk := newParityHeap(t)
	mdl := clk.Model()

	var live []mem.Addr
	for i := 0; i < 6; i++ {
		p, err := h.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
	}
	// Free half: the freed chunks must not add charged traffic.
	for _, p := range live[:3] {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	before := clk.Cycles()
	if err := h.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	want := uint64(3) * 2 * load64Cost(mdl) // 3 live chunks x (canary + redzone)
	if got := clk.Cycles() - before; got != want {
		t.Errorf("CheckIntegrity charged %d cycles, want %d (2 loads per live chunk)", got, want)
	}
}

// TestDoubleFreeDetectedByMarker: the freed-marker canary (tcache-key
// style) catches double frees without a host-side map.
func TestDoubleFreeDetectedByMarker(t *testing.T) {
	h, _ := newParityHeap(t)
	p, err := h.Alloc(48)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free = %v, want ErrBadFree", err)
	}
	// Alloc reuses the chunk and rewrites a live canary: freeing again is
	// legal.
	q, err := h.Alloc(48)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("free-list reuse: got %#x, want %#x", uint64(q), uint64(p))
	}
	if err := h.Free(q); err != nil {
		t.Errorf("free after reuse: %v", err)
	}
}

// TestFreedMarkerSmashDetectedBySweep: overwriting a freed chunk's header
// (a use-after-free write) is caught by CheckIntegrity — detection the
// live-map design could not provide.
func TestFreedMarkerSmashDetectedBySweep(t *testing.T) {
	h, _ := newParityHeap(t)
	p, err := h.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("sweep over freed chunk: %v", err)
	}
	// Smash the freed chunk's header canary via a raw write.
	if err := h.m.Poke64(p-headerSize+8, 0x4141414141414141); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckIntegrity(); !errors.Is(err, ErrHeapCorruption) {
		t.Errorf("sweep after freed-header smash = %v, want ErrHeapCorruption", err)
	}
}

// TestSizeFieldSmashDetected: a corrupted size field is caught at Free
// (the redzone lands at the wrong offset, or the class is invalid).
func TestSizeFieldSmashDetected(t *testing.T) {
	h, _ := newParityHeap(t)
	p, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.m.Poke64(p-headerSize, 1<<40); err != nil { // absurd size
		t.Fatal(err)
	}
	if err := h.Free(p); !errors.Is(err, ErrHeapCorruption) {
		t.Errorf("free with smashed size = %v, want ErrHeapCorruption", err)
	}
}

// TestSweepDeterministicOrder: with two corrupted chunks, the sweep
// always reports the lower-addressed one — the former map-order sweep
// reported a random one.
func TestSweepDeterministicOrder(t *testing.T) {
	var first string
	for trial := 0; trial < 8; trial++ {
		h, _ := newParityHeap(t)
		a, err := h.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		b, err := h.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []mem.Addr{a, b} {
			if err := h.m.Poke64(p-headerSize+8, 0xbad); err != nil {
				t.Fatal(err)
			}
		}
		err = h.CheckIntegrity()
		if !errors.Is(err, ErrHeapCorruption) {
			t.Fatalf("sweep = %v, want ErrHeapCorruption", err)
		}
		if trial == 0 {
			first = err.Error()
			if !strings.Contains(first, "header canary") {
				t.Fatalf("unexpected corruption report: %v", err)
			}
		} else if err.Error() != first {
			t.Fatalf("sweep order nondeterministic: %q vs %q", err.Error(), first)
		}
	}
}

// TestStaleFreeAfterReset: pointers from before a Reset are rejected (the
// bump offset range check replaces the live-map membership test).
func TestStaleFreeAfterReset(t *testing.T) {
	h, _ := newParityHeap(t)
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); !errors.Is(err, ErrBadFree) {
		t.Errorf("stale free after Reset = %v, want ErrBadFree", err)
	}
	if err := h.ResetNoZero(); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); !errors.Is(err, ErrBadFree) {
		t.Errorf("stale free after ResetNoZero = %v, want ErrBadFree", err)
	}
}

// TestResetLeavesHeapByteIdenticalToFullScrub: the allocator-level
// differential test — after heavy churn and a Reset, every byte of every
// heap region reads zero, exactly as the seed's unconditional scrub left
// it.
func TestResetLeavesHeapByteIdenticalToFullScrub(t *testing.T) {
	h, _ := newParityHeap(t)
	var ps []mem.Addr
	for i := 0; i < 200; i++ {
		p, err := h.Alloc(16 + (i%8)*97)
		if err != nil {
			t.Fatal(err)
		}
		fill := make([]byte, 16+(i%8)*97)
		for j := range fill {
			fill[j] = byte(i + j)
		}
		if err := h.m.StoreBytes(h.pkru, p, fill); err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for i, p := range ps {
		if i%3 == 0 {
			if err := h.Free(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := h.Reset(); err != nil {
		t.Fatal(err)
	}
	for _, r := range h.Regions() {
		for pg := 0; pg < r.NPages; pg++ {
			buf := make([]byte, mem.PageSize)
			if err := h.m.PeekBytes(r.Base+mem.Addr(pg)*mem.PageSize, buf); err != nil {
				t.Fatal(err)
			}
			for off, b := range buf {
				if b != 0 {
					t.Fatalf("byte %#x of region %#x nonzero (%#x) after Reset",
						pg*mem.PageSize+off, uint64(r.Base), b)
				}
			}
		}
	}
	// The pristine heap bump-allocates from the start of its newest
	// region again (bump offsets were reset).
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	last := h.Regions()[len(h.Regions())-1]
	if p != last.Base+headerSize {
		t.Errorf("post-Reset alloc at %#x, want region start %#x", uint64(p), uint64(last.Base+headerSize))
	}
}

// TestInteriorPointerFreeIsBadFree: freeing a pointer into the middle of
// an allocation is an invalid free (seed semantics, consistent with
// UsableSize) — not a heap-corruption violation — and must not disturb
// the real allocation.
func TestInteriorPointerFreeIsBadFree(t *testing.T) {
	h, _ := newParityHeap(t)
	p, err := h.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []mem.Addr{p + 16, p + 100, p - 8} {
		if err := h.Free(bad); !errors.Is(err, ErrBadFree) {
			t.Errorf("Free(%#x) = %v, want ErrBadFree", uint64(bad), err)
		}
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Errorf("sweep after interior-pointer frees: %v", err)
	}
	if err := h.Free(p); err != nil {
		t.Errorf("real free after interior-pointer frees: %v", err)
	}
}

// TestFreedSizeSmashDetectedBySweep: overwriting a freed chunk's size
// field with a different valid size must not desync the sweep into
// skipping later chunks — the freed chunk's redzone no longer matches
// the claimed size, and the sweep reports corruption.
func TestFreedSizeSmashDetectedBySweep(t *testing.T) {
	h, _ := newParityHeap(t)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	// UAF write: grow the freed chunk's size to a larger (valid) class,
	// which would make a naive walk jump over chunk b...
	if err := h.m.Poke64(a-headerSize, 4000); err != nil {
		t.Fatal(err)
	}
	// ...and smash b's canary, which a desynced walk would never visit.
	if err := h.m.Poke64(b-headerSize+8, 0xbad); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckIntegrity(); !errors.Is(err, ErrHeapCorruption) {
		t.Errorf("sweep after freed-size smash = %v, want ErrHeapCorruption", err)
	}
}
