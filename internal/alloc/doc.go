// Package alloc implements the per-domain heap allocator of the SDRaD
// reproduction.
//
// Each SDRaD domain owns a private heap backed by pages tagged with the
// domain's protection key. The allocator is a segregated free-list
// allocator (power-of-two size classes, no coalescing — matching the
// slab-style allocation the SDRaD use cases rely on). Every chunk is
// framed by a canaried header and a trailing redzone word; the canary is
// derived from the chunk's address and a per-heap secret, so a linear
// heap overflow that reaches the next chunk is detected either at Free
// time or by an explicit CheckIntegrity sweep. These canaries are one of
// the "pre-existing detection mechanisms" (§II of the paper) that trigger
// secure rewind.
//
// # Metadata
//
// All per-chunk metadata is in-band: the header holds the requested size
// (from which the size class is derived) and the canary word, which
// doubles as the liveness marker — a live chunk carries canary(chunk), a
// freed chunk carries canary(chunk) XOR freedMark. There is no host-side
// per-chunk map; Free and the integrity sweep walk the headers. Double
// frees surface as ErrBadFree via the freed marker (the tcache-key
// technique of hardened glibc), and a smashed size field is now itself
// detectable: the redzone check lands at the wrong offset and fails.
//
// Virtual-cycle accounting on the benign Alloc/Free paths is identical
// to the seed implementation (see TestAllocFreeCycleParity): the header
// walk uses kernel-side Peek/Poke accesses, which cost nothing — exactly
// what the former host-side live map cost.
//
// # Invariants
//
//   - All metadata is in-band and canaried: a corruption that touches a
//     header, redzone, or freed chunk is detectable — at Free, at the
//     CheckIntegrity sweep, or (for freed chunks) at reuse time, where
//     Alloc validates the freed marker and redzone before recycling
//     (the tcache-key check). Corruption evidence is never silently
//     overwritten, which is what lets batched execution share one sweep
//     across many calls (DESIGN.md §9).
//   - Determinism: allocation addresses, sweep order (address order),
//     and detection outcomes are pure functions of the call sequence.
//   - Virtual-cycle parity: benign Alloc/Free charge exactly what the
//     seed implementation charged; kernel-side header walks are free,
//     like the host-side map they replaced (see the parity tests).
//
//lint:allow unchargedmem the allocator sweep is the sanctioned consumer of the uncharged header walk; its zero cost is pinned by the parity tests
package alloc
