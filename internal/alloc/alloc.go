// Package alloc implements the per-domain heap allocator of the SDRaD
// reproduction.
//
// Each SDRaD domain owns a private heap backed by pages tagged with the
// domain's protection key. The allocator is a segregated free-list
// allocator (power-of-two size classes, no coalescing — matching the
// slab-style allocation the SDRaD use cases rely on). Every chunk is
// framed by a canaried header and a trailing redzone word; the canary is
// derived from the chunk's address and a per-heap secret, so a linear
// heap overflow that reaches the next chunk is detected either at Free
// time or by an explicit CheckIntegrity sweep. These canaries are one of
// the "pre-existing detection mechanisms" (§II of the paper) that trigger
// secure rewind.
package alloc

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/pku"
)

const (
	headerSize  = 16 // [size:8][canary:8]
	trailerSize = 8  // [canary:8]
	// minClass is the smallest chunk payload size class.
	minClass = 16
	// numClasses covers payloads 16 B .. 8 MiB.
	numClasses = 20
)

// Overhead is the per-allocation metadata overhead in bytes.
const Overhead = headerSize + trailerSize

// Sentinel errors.
var (
	// ErrHeapCorruption is returned when a canary or redzone check fails.
	// SDRaD treats this as a domain violation triggering rewind.
	ErrHeapCorruption = errors.New("alloc: heap corruption detected")
	// ErrBadFree is returned for frees of addresses that were never
	// allocated (or were already freed).
	ErrBadFree = errors.New("alloc: invalid free")
	// ErrOutOfMemory is returned when the heap cannot grow further.
	ErrOutOfMemory = errors.New("alloc: out of memory")
	// ErrTooLarge is returned for requests above the maximum size class.
	ErrTooLarge = errors.New("alloc: allocation too large")
)

// Heap is a per-domain heap. Create with New. Not safe for concurrent
// use: a domain executes on a single simulated hardware thread.
type Heap struct {
	m      *mem.Memory
	key    pku.Key
	pkru   pku.PKRU // rights the allocator itself runs with
	secret uint64

	regions []region
	// free[i] holds freed chunk base addresses for class i.
	free [numClasses][]mem.Addr
	// live maps chunk payload address -> class index.
	live map[mem.Addr]int

	maxPages   int
	allocated  uint64 // current live payload bytes
	totalAlloc uint64 // cumulative Alloc calls
	totalFree  uint64
	peak       uint64
}

type region struct {
	base   mem.Addr
	npages int
	used   uint64 // bump offset
}

// Config configures a Heap.
type Config struct {
	// InitialPages is the number of pages mapped up front (default 16).
	InitialPages int
	// MaxPages bounds heap growth (default 1 << 20 pages = 4 GiB).
	MaxPages int
	// Secret seeds the canary values. A zero secret is replaced by a
	// fixed non-zero constant so canaries are never trivially zero.
	Secret uint64
}

// New creates a heap whose pages are tagged with the domain's key.
func New(m *mem.Memory, key pku.Key, cfg Config) (*Heap, error) {
	if cfg.InitialPages <= 0 {
		cfg.InitialPages = 16
	}
	if cfg.MaxPages <= 0 {
		cfg.MaxPages = 1 << 20
	}
	if cfg.Secret == 0 {
		cfg.Secret = 0x5d8a_d0c4_ca12_71e5 ^ (uint64(key) << 56) ^ 0xa5a5_a5a5_5a5a_5a5a
	}
	h := &Heap{
		m:        m,
		key:      key,
		pkru:     pku.OnlyKeys(pku.DefaultKey, key),
		secret:   cfg.Secret,
		live:     make(map[mem.Addr]int),
		maxPages: cfg.MaxPages,
	}
	if err := h.grow(cfg.InitialPages); err != nil {
		return nil, err
	}
	return h, nil
}

// Key returns the protection key tagging the heap's pages.
func (h *Heap) Key() pku.Key { return h.key }

// Rekey updates the key the allocator believes its pages are tagged with
// (the caller must have re-tagged the pages via mem.TagKey). Used by the
// heap-adoption path, where a domain's pages move to the root key.
func (h *Heap) Rekey(key pku.Key) error {
	if !key.Valid() {
		return fmt.Errorf("alloc: %w: %v", pku.ErrKeyNotAllocated, key)
	}
	h.key = key
	h.pkru = pku.OnlyKeys(pku.DefaultKey, key)
	return nil
}

// Regions returns the base address and page count of each mapped region.
func (h *Heap) Regions() []struct {
	Base   mem.Addr
	NPages int
} {
	out := make([]struct {
		Base   mem.Addr
		NPages int
	}, len(h.regions))
	for i, r := range h.regions {
		out[i].Base = r.base
		out[i].NPages = r.npages
	}
	return out
}

func (h *Heap) grow(npages int) error {
	total := 0
	for _, r := range h.regions {
		total += r.npages
	}
	if total+npages > h.maxPages {
		return fmt.Errorf("%w: %d+%d pages exceeds max %d", ErrOutOfMemory, total, npages, h.maxPages)
	}
	base, err := h.m.Map(npages, mem.ProtRW, h.key)
	if err != nil {
		return fmt.Errorf("alloc: grow: %w", err)
	}
	h.regions = append(h.regions, region{base: base, npages: npages})
	return nil
}

// classFor returns the size-class index for a payload of n bytes.
func classFor(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: size %d", ErrTooLarge, n)
	}
	sz := minClass
	for c := 0; c < numClasses; c++ {
		if n <= sz {
			return c, nil
		}
		sz <<= 1
	}
	return 0, fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, n, minClass<<(numClasses-1))
}

// ClassSize returns the payload capacity of size class c.
func ClassSize(c int) int { return minClass << c }

func (h *Heap) canary(chunk mem.Addr) uint64 {
	// Mix the chunk address with the heap secret (xorshift-style).
	x := uint64(chunk) ^ h.secret
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	if x == 0 {
		x = h.secret | 1
	}
	return x
}

// Alloc allocates n bytes and returns the payload address. The payload is
// zeroed.
func (h *Heap) Alloc(n int) (mem.Addr, error) {
	c, err := classFor(n)
	if err != nil {
		return 0, err
	}
	chunkSize := uint64(ClassSize(c) + Overhead)

	var chunk mem.Addr
	if fl := h.free[c]; len(fl) > 0 {
		chunk = fl[len(fl)-1]
		h.free[c] = fl[:len(fl)-1]
	} else {
		chunk, err = h.bump(chunkSize)
		if err != nil {
			return 0, err
		}
	}

	payload := chunk + headerSize
	// Write header: size and canary.
	if err := h.m.Store64(h.pkru, chunk, uint64(n)); err != nil {
		return 0, fmt.Errorf("alloc: header write: %w", err)
	}
	if err := h.m.Store64(h.pkru, chunk+8, h.canary(chunk)); err != nil {
		return 0, fmt.Errorf("alloc: canary write: %w", err)
	}
	// Zero payload and write trailing redzone.
	zero := make([]byte, ClassSize(c))
	if err := h.m.StoreBytes(h.pkru, payload, zero); err != nil {
		return 0, fmt.Errorf("alloc: payload zero: %w", err)
	}
	if err := h.m.Store64(h.pkru, payload+mem.Addr(ClassSize(c)), h.canary(chunk)); err != nil {
		return 0, fmt.Errorf("alloc: redzone write: %w", err)
	}

	h.live[payload] = c
	h.allocated += uint64(n)
	h.totalAlloc++
	if h.allocated > h.peak {
		h.peak = h.allocated
	}
	return payload, nil
}

func (h *Heap) bump(chunkSize uint64) (mem.Addr, error) {
	r := &h.regions[len(h.regions)-1]
	capacity := uint64(r.npages) * mem.PageSize
	if r.used+chunkSize > capacity {
		// Double the last region size (at least enough for the chunk).
		np := r.npages * 2
		need := int((chunkSize + mem.PageSize - 1) / mem.PageSize)
		if np < need {
			np = need
		}
		if err := h.grow(np); err != nil {
			return 0, err
		}
		r = &h.regions[len(h.regions)-1]
	}
	chunk := r.base + mem.Addr(r.used)
	r.used += chunkSize
	return chunk, nil
}

// checkChunk verifies the canaries of the chunk whose payload is at p.
func (h *Heap) checkChunk(p mem.Addr, class int) error {
	chunk := p - headerSize
	want := h.canary(chunk)
	got, err := h.m.Load64(h.pkru, chunk+8)
	if err != nil {
		return fmt.Errorf("alloc: canary read: %w", err)
	}
	if got != want {
		return fmt.Errorf("%w: header canary at %#x (got %#x want %#x)",
			ErrHeapCorruption, uint64(chunk), got, want)
	}
	rz, err := h.m.Load64(h.pkru, p+mem.Addr(ClassSize(class)))
	if err != nil {
		return fmt.Errorf("alloc: redzone read: %w", err)
	}
	if rz != want {
		return fmt.Errorf("%w: redzone at %#x (got %#x want %#x)",
			ErrHeapCorruption, uint64(p)+uint64(ClassSize(class)), rz, want)
	}
	return nil
}

// Free releases the allocation whose payload address is p, after
// validating both canaries. A canary mismatch returns ErrHeapCorruption —
// SDRaD's cue to rewind the domain.
func (h *Heap) Free(p mem.Addr) error {
	c, ok := h.live[p]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, uint64(p))
	}
	if err := h.checkChunk(p, c); err != nil {
		return err
	}
	size, err := h.m.Load64(h.pkru, p-headerSize)
	if err != nil {
		return fmt.Errorf("alloc: size read: %w", err)
	}
	delete(h.live, p)
	h.free[c] = append(h.free[c], p-headerSize)
	if size <= h.allocated {
		h.allocated -= size
	} else {
		h.allocated = 0
	}
	h.totalFree++
	return nil
}

// UsableSize returns the payload capacity of the allocation at p.
func (h *Heap) UsableSize(p mem.Addr) (int, error) {
	c, ok := h.live[p]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrBadFree, uint64(p))
	}
	return ClassSize(c), nil
}

// CheckIntegrity sweeps every live chunk and validates its canaries,
// returning the first corruption found. This is the heap-integrity probe
// SDRaD runs when a domain exits cleanly.
func (h *Heap) CheckIntegrity() error {
	for p, c := range h.live {
		if err := h.checkChunk(p, c); err != nil {
			return err
		}
	}
	return nil
}

// Reset discards every allocation without individual frees and zeroes the
// heap pages. This is the "discard" half of secure rewind: the domain's
// heap returns to a pristine state in O(pages) page-zero operations, with
// no dependence on live object count.
func (h *Heap) Reset() error {
	for i := range h.free {
		h.free[i] = h.free[i][:0]
	}
	clear(h.live)
	h.allocated = 0
	for i := range h.regions {
		r := &h.regions[i]
		r.used = 0
		if err := h.m.Zero(r.base, r.npages); err != nil {
			return fmt.Errorf("alloc: reset: %w", err)
		}
	}
	return nil
}

// ResetNoZero discards every allocation like Reset but skips the page
// scrub. Rewind becomes O(1) in heap size at the cost of leaving stale
// (possibly attacker-written) bytes in the pages; fresh allocations still
// zero their payloads, so this is safe for integrity though not for
// confidentiality of discarded data. This is the "fast discard" ablation
// called out in DESIGN.md §5.
func (h *Heap) ResetNoZero() error {
	for i := range h.free {
		h.free[i] = h.free[i][:0]
	}
	clear(h.live)
	h.allocated = 0
	for i := range h.regions {
		h.regions[i].used = 0
	}
	return nil
}

// Release unmaps all heap pages. The heap must not be used afterwards.
func (h *Heap) Release() error {
	for _, r := range h.regions {
		if err := h.m.Unmap(r.base, r.npages); err != nil {
			return fmt.Errorf("alloc: release: %w", err)
		}
	}
	h.regions = nil
	clear(h.live)
	return nil
}

// Stats reports allocator statistics.
type Stats struct {
	LiveChunks  int
	LiveBytes   uint64
	PeakBytes   uint64
	TotalAllocs uint64
	TotalFrees  uint64
	HeapPages   int
}

// Stats returns a snapshot of allocator statistics.
func (h *Heap) Stats() Stats {
	pages := 0
	for _, r := range h.regions {
		pages += r.npages
	}
	return Stats{
		LiveChunks:  len(h.live),
		LiveBytes:   h.allocated,
		PeakBytes:   h.peak,
		TotalAllocs: h.totalAlloc,
		TotalFrees:  h.totalFree,
		HeapPages:   pages,
	}
}
