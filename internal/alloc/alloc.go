package alloc

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/pku"
)

const (
	headerSize  = 16 // [size:8][canary:8]
	trailerSize = 8  // [canary:8]
	// minClass is the smallest chunk payload size class.
	minClass = 16
	// numClasses covers payloads 16 B .. 8 MiB.
	numClasses = 20
)

// freedMark is XORed into the header canary when a chunk is freed: the
// marker is unforgeable without the heap secret (it is derived from the
// live canary) and never equals the live canary.
const freedMark = 0x6672_6565_6672_6565 // "freefree"

// Overhead is the per-allocation metadata overhead in bytes.
const Overhead = headerSize + trailerSize

// Sentinel errors.
var (
	// ErrHeapCorruption is returned when a canary or redzone check fails.
	// SDRaD treats this as a domain violation triggering rewind.
	ErrHeapCorruption = errors.New("alloc: heap corruption detected")
	// ErrBadFree is returned for frees of addresses that were never
	// allocated (or were already freed).
	ErrBadFree = errors.New("alloc: invalid free")
	// ErrOutOfMemory is returned when the heap cannot grow further.
	ErrOutOfMemory = errors.New("alloc: out of memory")
	// ErrTooLarge is returned for requests above the maximum size class.
	ErrTooLarge = errors.New("alloc: allocation too large")
)

// Heap is a per-domain heap. Create with New. Not safe for concurrent
// use: a domain executes on a single simulated hardware thread.
type Heap struct {
	m      *mem.Memory
	key    pku.Key
	pkru   pku.PKRU // rights the allocator itself runs with
	secret uint64

	regions []region
	// free[i] holds freed chunk base addresses for class i.
	free [numClasses][]mem.Addr
	// liveChunks counts allocations not yet freed (chunk liveness itself
	// is recorded in-band via the header canary marker).
	liveChunks int

	maxPages   int
	allocated  uint64 // current live payload bytes
	totalAlloc uint64 // cumulative Alloc calls
	totalFree  uint64
	peak       uint64
}

type region struct {
	base   mem.Addr
	npages int
	used   uint64 // bump offset
}

// Config configures a Heap.
type Config struct {
	// InitialPages is the number of pages mapped up front (default 16).
	InitialPages int
	// MaxPages bounds heap growth (default 1 << 20 pages = 4 GiB).
	MaxPages int
	// Secret seeds the canary values. A zero secret is replaced by a
	// fixed non-zero constant so canaries are never trivially zero.
	Secret uint64
}

// New creates a heap whose pages are tagged with the domain's key.
func New(m *mem.Memory, key pku.Key, cfg Config) (*Heap, error) {
	if cfg.InitialPages <= 0 {
		cfg.InitialPages = 16
	}
	if cfg.MaxPages <= 0 {
		cfg.MaxPages = 1 << 20
	}
	if cfg.Secret == 0 {
		cfg.Secret = 0x5d8a_d0c4_ca12_71e5 ^ (uint64(key) << 56) ^ 0xa5a5_a5a5_5a5a_5a5a
	}
	h := &Heap{
		m:        m,
		key:      key,
		pkru:     pku.OnlyKeys(pku.DefaultKey, key),
		secret:   cfg.Secret,
		maxPages: cfg.MaxPages,
	}
	if err := h.grow(cfg.InitialPages); err != nil {
		return nil, err
	}
	return h, nil
}

// Key returns the protection key tagging the heap's pages.
func (h *Heap) Key() pku.Key { return h.key }

// Rekey updates the key the allocator believes its pages are tagged with
// (the caller must have re-tagged the pages via mem.TagKey). Used by the
// heap-adoption path, where a domain's pages move to the root key.
func (h *Heap) Rekey(key pku.Key) error {
	if !key.Valid() {
		return fmt.Errorf("alloc: %w: %v", pku.ErrKeyNotAllocated, key)
	}
	h.key = key
	h.pkru = pku.OnlyKeys(pku.DefaultKey, key)
	return nil
}

// Regions returns the base address and page count of each mapped region.
func (h *Heap) Regions() []struct {
	Base   mem.Addr
	NPages int
} {
	out := make([]struct {
		Base   mem.Addr
		NPages int
	}, len(h.regions))
	for i, r := range h.regions {
		out[i].Base = r.base
		out[i].NPages = r.npages
	}
	return out
}

func (h *Heap) grow(npages int) error {
	total := 0
	for _, r := range h.regions {
		total += r.npages
	}
	if total+npages > h.maxPages {
		return fmt.Errorf("%w: %d+%d pages exceeds max %d", ErrOutOfMemory, total, npages, h.maxPages)
	}
	base, err := h.m.Map(npages, mem.ProtRW, h.key)
	if err != nil {
		return fmt.Errorf("alloc: grow: %w", err)
	}
	h.regions = append(h.regions, region{base: base, npages: npages})
	return nil
}

// classFor returns the size-class index for a payload of n bytes.
func classFor(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: size %d", ErrTooLarge, n)
	}
	if n <= minClass {
		return 0, nil
	}
	c := bits.Len64(uint64(n-1)) - 4 // smallest c with minClass<<c >= n
	if c >= numClasses {
		return 0, fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, n, minClass<<(numClasses-1))
	}
	return c, nil
}

// ClassSize returns the payload capacity of size class c.
func ClassSize(c int) int { return minClass << c }

// zeroSrc is a process-wide, grow-only all-zero buffer used as the
// source for payload scrubs: one buffer serves every heap (pool workers
// included) instead of each heap retaining its own up-to-8-MiB copy.
// Its contents are never written, so concurrent readers are safe; a
// racing grow is last-writer-wins, which only costs a re-allocation.
var zeroSrc atomic.Pointer[[]byte]

func zeroBuf(n int) []byte {
	if p := zeroSrc.Load(); p != nil && len(*p) >= n {
		return (*p)[:n]
	}
	b := make([]byte, n)
	zeroSrc.Store(&b)
	return b
}

func (h *Heap) canary(chunk mem.Addr) uint64 {
	// Mix the chunk address with the heap secret (xorshift-style).
	x := uint64(chunk) ^ h.secret
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	if x == 0 {
		x = h.secret | 1
	}
	return x
}

// isChunkStart walks the bump chain of the region containing chunk and
// reports whether chunk is an actual chunk base. Kernel-side peeks only
// (no virtual cost); used on Free's error path to classify bad
// pointers. A desynced walk (smashed size field en route) conservatively
// reports true: the heap is corrupt either way.
func (h *Heap) isChunkStart(chunk mem.Addr) bool {
	for ri := range h.regions {
		r := &h.regions[ri]
		if chunk < r.base || chunk >= r.base+mem.Addr(r.used) {
			continue
		}
		for off := uint64(0); off < r.used; {
			at := r.base + mem.Addr(off)
			if at == chunk {
				return true
			}
			if at > chunk {
				return false
			}
			size, err := h.m.Peek64(at)
			if err != nil {
				return true
			}
			c, err := classFor(int(size))
			if err != nil {
				return true
			}
			off += uint64(ClassSize(c)) + Overhead
		}
		return false
	}
	return false
}

// chunkOf reports whether p can be the payload address of a chunk in one
// of the heap's regions (in-band metadata range check — the replacement
// for the former live-map membership test, at the same zero virtual
// cost).
func (h *Heap) chunkOf(p mem.Addr) (mem.Addr, bool) {
	if p < headerSize {
		return 0, false
	}
	chunk := p - headerSize
	for i := range h.regions {
		r := &h.regions[i]
		if chunk >= r.base && chunk < r.base+mem.Addr(r.used) {
			return chunk, true
		}
	}
	return 0, false
}

// Alloc allocates n bytes and returns the payload address. The payload is
// zeroed.
func (h *Heap) Alloc(n int) (mem.Addr, error) {
	c, err := classFor(n)
	if err != nil {
		return 0, err
	}
	chunkSize := uint64(ClassSize(c) + Overhead)

	var chunk mem.Addr
	if fl := h.free[c]; len(fl) > 0 {
		chunk = fl[len(fl)-1]
		// Validate the chunk before recycling it — the tcache-key check of
		// hardened glibc. Reusing a corrupted freed chunk would overwrite
		// the evidence (header, canary, redzone are all rewritten below)
		// and let a use-after-free or freed-header smash escape the next
		// integrity sweep; detecting it here keeps "no corruption ever goes
		// unnoticed" true even when many calls share one sweep (the batched
		// execution path). Kernel-side peeks: no charged traffic, so the
		// benign Alloc cycle sequence is unchanged (TestAllocFreeCycleParity).
		if err := h.checkFreedChunk(chunk, c); err != nil {
			return 0, err
		}
		h.free[c] = fl[:len(fl)-1]
	} else {
		chunk, err = h.bump(chunkSize)
		if err != nil {
			return 0, err
		}
	}

	payload := chunk + headerSize
	// Write header: size and canary (the live canary also clears any
	// freed marker left by a previous Free of this chunk).
	if err := h.m.Store64(h.pkru, chunk, uint64(n)); err != nil {
		return 0, fmt.Errorf("alloc: header write: %w", err)
	}
	if err := h.m.Store64(h.pkru, chunk+8, h.canary(chunk)); err != nil {
		return 0, fmt.Errorf("alloc: canary write: %w", err)
	}
	// Zero payload and write trailing redzone.
	if err := h.m.StoreBytes(h.pkru, payload, zeroBuf(ClassSize(c))); err != nil {
		return 0, fmt.Errorf("alloc: payload zero: %w", err)
	}
	if err := h.m.Store64(h.pkru, payload+mem.Addr(ClassSize(c)), h.canary(chunk)); err != nil {
		return 0, fmt.Errorf("alloc: redzone write: %w", err)
	}

	h.liveChunks++
	h.allocated += uint64(n)
	h.totalAlloc++
	if h.allocated > h.peak {
		h.peak = h.allocated
	}
	return payload, nil
}

func (h *Heap) bump(chunkSize uint64) (mem.Addr, error) {
	r := &h.regions[len(h.regions)-1]
	capacity := uint64(r.npages) * mem.PageSize
	if r.used+chunkSize > capacity {
		// Double the last region size (at least enough for the chunk).
		np := r.npages * 2
		need := int((chunkSize + mem.PageSize - 1) / mem.PageSize)
		if np < need {
			np = need
		}
		if err := h.grow(np); err != nil {
			return 0, err
		}
		r = &h.regions[len(h.regions)-1]
	}
	chunk := r.base + mem.Addr(r.used)
	r.used += chunkSize
	return chunk, nil
}

// checkFreedChunk validates a free-list chunk of class c exactly as the
// integrity sweep would: the header canary must carry the freed marker
// and the redzone must still hold the live canary Free left behind.
// Kernel-side peeks only — no charged memory traffic.
func (h *Heap) checkFreedChunk(chunk mem.Addr, c int) error {
	want := h.canary(chunk)
	got, err := h.m.Peek64(chunk + 8)
	if err != nil {
		return fmt.Errorf("alloc: freed canary read: %w", err)
	}
	if got != want^freedMark {
		return fmt.Errorf("%w: freed chunk header at %#x smashed (got %#x want %#x)",
			ErrHeapCorruption, uint64(chunk), got, want^freedMark)
	}
	rz, err := h.m.Peek64(chunk + headerSize + mem.Addr(ClassSize(c)))
	if err != nil {
		return fmt.Errorf("alloc: freed redzone read: %w", err)
	}
	if rz != want {
		return fmt.Errorf("%w: freed chunk redzone at %#x smashed (got %#x want %#x)",
			ErrHeapCorruption, uint64(chunk), rz, want)
	}
	return nil
}

// checkChunk verifies the canaries of the chunk whose payload is at p.
func (h *Heap) checkChunk(p mem.Addr, class int) error {
	chunk := p - headerSize
	want := h.canary(chunk)
	got, err := h.m.Load64(h.pkru, chunk+8)
	if err != nil {
		return fmt.Errorf("alloc: canary read: %w", err)
	}
	if got != want {
		return fmt.Errorf("%w: header canary at %#x (got %#x want %#x)",
			ErrHeapCorruption, uint64(chunk), got, want)
	}
	rz, err := h.m.Load64(h.pkru, p+mem.Addr(ClassSize(class)))
	if err != nil {
		return fmt.Errorf("alloc: redzone read: %w", err)
	}
	if rz != want {
		return fmt.Errorf("%w: redzone at %#x (got %#x want %#x)",
			ErrHeapCorruption, uint64(p)+uint64(ClassSize(class)), rz, want)
	}
	return nil
}

// Free releases the allocation whose payload address is p, after
// validating both canaries. A canary mismatch returns ErrHeapCorruption —
// SDRaD's cue to rewind the domain. A double free (freed-marker canary)
// or an address outside any chunk returns ErrBadFree.
func (h *Heap) Free(p mem.Addr) error {
	chunk, ok := h.chunkOf(p)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, uint64(p))
	}
	want := h.canary(chunk)
	got, err := h.m.Load64(h.pkru, chunk+8)
	if err != nil {
		return fmt.Errorf("alloc: canary read: %w", err)
	}
	if got == want^freedMark {
		return fmt.Errorf("%w: double free of %#x", ErrBadFree, uint64(p))
	}
	if got != want {
		// The canary alone cannot tell a real chunk with a smashed
		// header from an interior/garbage pointer. Walk the region's
		// chunk chain (kernel-side, error path only) to decide: a true
		// chunk start means corruption (seed semantics — the live map
		// knew it was an allocation), anything else is an invalid free.
		if h.isChunkStart(chunk) {
			return fmt.Errorf("%w: header canary at %#x (got %#x want %#x)",
				ErrHeapCorruption, uint64(chunk), got, want)
		}
		return fmt.Errorf("%w: %#x is not an allocation", ErrBadFree, uint64(p))
	}
	size, err := h.m.Load64(h.pkru, chunk)
	if err != nil {
		return fmt.Errorf("alloc: size read: %w", err)
	}
	c, err := classFor(int(size))
	if err != nil {
		// The size field was overwritten: the header itself is corrupt.
		return fmt.Errorf("%w: size field at %#x smashed (%d)", ErrHeapCorruption, uint64(chunk), size)
	}
	rz, err := h.m.Load64(h.pkru, p+mem.Addr(ClassSize(c)))
	if err != nil {
		return fmt.Errorf("alloc: redzone read: %w", err)
	}
	if rz != want {
		return fmt.Errorf("%w: redzone at %#x (got %#x want %#x)",
			ErrHeapCorruption, uint64(p)+uint64(ClassSize(c)), rz, want)
	}
	// Mark the header freed. Kernel-side metadata write: no virtual cost,
	// matching the seed's host-side map delete.
	if err := h.m.Poke64(chunk+8, want^freedMark); err != nil {
		return fmt.Errorf("alloc: freed marker: %w", err)
	}
	h.free[c] = append(h.free[c], chunk)
	h.liveChunks--
	if size <= h.allocated {
		h.allocated -= size
	} else {
		h.allocated = 0
	}
	h.totalFree++
	return nil
}

// UsableSize returns the payload capacity of the allocation at p.
func (h *Heap) UsableSize(p mem.Addr) (int, error) {
	chunk, ok := h.chunkOf(p)
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrBadFree, uint64(p))
	}
	got, err := h.m.Peek64(chunk + 8)
	if err != nil {
		return 0, fmt.Errorf("alloc: canary read: %w", err)
	}
	if got != h.canary(chunk) {
		return 0, fmt.Errorf("%w: %#x", ErrBadFree, uint64(p))
	}
	size, err := h.m.Peek64(chunk)
	if err != nil {
		return 0, fmt.Errorf("alloc: size read: %w", err)
	}
	c, err := classFor(int(size))
	if err != nil {
		return 0, fmt.Errorf("%w: size field at %#x smashed (%d)", ErrHeapCorruption, uint64(chunk), size)
	}
	return ClassSize(c), nil
}

// CheckIntegrity walks every chunk in bump order and validates canaries,
// returning the first corruption found (in address order, so the report
// is deterministic — the former live-map sweep visited chunks in random
// order). Live chunks get the full charged canary + redzone validation
// the seed performed; freed chunks are checked against their freed
// marker via kernel-side peeks, which detects use-after-free header
// smashes at no extra virtual cost. This is the heap-integrity probe
// SDRaD runs when a domain exits cleanly.
func (h *Heap) CheckIntegrity() error {
	for ri := range h.regions {
		r := &h.regions[ri]
		for off := uint64(0); off < r.used; {
			chunk := r.base + mem.Addr(off)
			size, err := h.m.Peek64(chunk)
			if err != nil {
				return fmt.Errorf("alloc: sweep header read: %w", err)
			}
			c, err := classFor(int(size))
			if err != nil {
				return fmt.Errorf("%w: size field at %#x smashed (%d)", ErrHeapCorruption, uint64(chunk), size)
			}
			got, err := h.m.Peek64(chunk + 8)
			if err != nil {
				return fmt.Errorf("alloc: sweep canary read: %w", err)
			}
			want := h.canary(chunk)
			switch got {
			case want:
				// Live: the charged canary + redzone validation.
				if err := h.checkChunk(chunk+headerSize, c); err != nil {
					return err
				}
			case want ^ freedMark:
				// Freed: the marker proves the canary word, and the
				// redzone (left holding the live canary by Free) must sit
				// where the header's size says — otherwise the size field
				// was overwritten after the free, which would desync this
				// walk and let it skip later chunks. Kernel-side peek: no
				// charged traffic for freed chunks, matching the seed.
				rz, err := h.m.Peek64(chunk + headerSize + mem.Addr(ClassSize(c)))
				if err != nil {
					return fmt.Errorf("alloc: sweep redzone read: %w", err)
				}
				if rz != want {
					return fmt.Errorf("%w: freed chunk at %#x size/redzone mismatch (redzone %#x want %#x)",
						ErrHeapCorruption, uint64(chunk), rz, want)
				}
			default:
				return fmt.Errorf("%w: header canary at %#x (got %#x want %#x)",
					ErrHeapCorruption, uint64(chunk), got, want)
			}
			off += uint64(ClassSize(c)) + Overhead
		}
	}
	return nil
}

// reset clears the allocator's bookkeeping (free lists, bump offsets,
// counters) without touching page contents.
func (h *Heap) reset() {
	for i := range h.free {
		h.free[i] = h.free[i][:0]
	}
	h.liveChunks = 0
	h.allocated = 0
	for i := range h.regions {
		h.regions[i].used = 0
	}
}

// Reset discards every allocation without individual frees and zeroes the
// heap pages. This is the "discard" half of secure rewind: the domain's
// heap returns to a pristine state, with no dependence on live object
// count. The page scrub is dirty-page-bounded on the host (mem.Zero
// skips pages that are already all-zero) while still charging the full
// per-page virtual cost.
func (h *Heap) Reset() error {
	h.reset()
	for i := range h.regions {
		r := &h.regions[i]
		if err := h.m.Zero(r.base, r.npages); err != nil {
			return fmt.Errorf("alloc: reset: %w", err)
		}
	}
	return nil
}

// ResetNoZero discards every allocation like Reset but skips the page
// scrub. Rewind becomes O(1) in heap size at the cost of leaving stale
// (possibly attacker-written) bytes in the pages; fresh allocations still
// zero their payloads, so this is safe for integrity though not for
// confidentiality of discarded data. This is the "fast discard" ablation
// called out in DESIGN.md §5.
func (h *Heap) ResetNoZero() error {
	h.reset()
	return nil
}

// Release unmaps all heap pages. The heap must not be used afterwards.
func (h *Heap) Release() error {
	for _, r := range h.regions {
		if err := h.m.Unmap(r.base, r.npages); err != nil {
			return fmt.Errorf("alloc: release: %w", err)
		}
	}
	h.regions = nil
	h.liveChunks = 0
	return nil
}

// Stats reports allocator statistics.
type Stats struct {
	LiveChunks  int
	LiveBytes   uint64
	PeakBytes   uint64
	TotalAllocs uint64
	TotalFrees  uint64
	HeapPages   int
}

// Stats returns a snapshot of allocator statistics.
func (h *Heap) Stats() Stats {
	pages := 0
	for _, r := range h.regions {
		pages += r.npages
	}
	return Stats{
		LiveChunks:  h.liveChunks,
		LiveBytes:   h.allocated,
		PeakBytes:   h.peak,
		TotalAllocs: h.totalAlloc,
		TotalFrees:  h.totalFree,
		HeapPages:   pages,
	}
}
