package alloc

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/pku"
	"repro/internal/vclock"
)

func newTrackedHeap(t *testing.T) (*Heap, *mem.Memory) {
	t.Helper()
	m := mem.New(vclock.New(vclock.DefaultCostModel()))
	h, err := New(m, pku.Key(1), Config{InitialPages: 4, MaxPages: 4096})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.TrackModified()
	return h, m
}

// captureRestoreRoundTrip captures src, restores into a fresh heap with
// identical construction, and returns the restored heap.
func restoreFresh(t *testing.T, img *HeapImage) (*Heap, *mem.Memory) {
	t.Helper()
	m := mem.New(vclock.New(vclock.DefaultCostModel()))
	h, err := New(m, pku.Key(1), Config{InitialPages: 4, MaxPages: 4096})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := h.RestoreImage(img); err != nil {
		t.Fatalf("RestoreImage: %v", err)
	}
	return h, m
}

func TestImageRoundTripPreservesContentsAndIntegrity(t *testing.T) {
	h, m := newTrackedHeap(t)
	pkru := pku.OnlyKeys(pku.DefaultKey, h.Key())

	var live []mem.Addr
	for i := 0; i < 20; i++ {
		p, err := h.Alloc(48)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if err := m.StoreBytes(pkru, p, []byte{byte(i), byte(i + 1), byte(i + 2)}); err != nil {
			t.Fatalf("StoreBytes: %v", err)
		}
		if i%3 == 0 {
			if err := h.Free(p); err != nil {
				t.Fatalf("Free: %v", err)
			}
		} else {
			live = append(live, p)
		}
	}

	img, err := h.CaptureImage(false)
	if err != nil {
		t.Fatalf("CaptureImage: %v", err)
	}
	h2, m2 := restoreFresh(t, img)

	// The integrity sweep — the same one a domain exit runs — must pass
	// on the restored heap.
	if err := h2.CheckIntegrity(); err != nil {
		t.Fatalf("CheckIntegrity after restore: %v", err)
	}
	if got, want := h2.Stats().LiveChunks, h.Stats().LiveChunks; got != want {
		t.Fatalf("LiveChunks = %d, want %d", got, want)
	}
	pkru2 := pku.OnlyKeys(pku.DefaultKey, h2.Key())
	for i, p := range live {
		buf := make([]byte, 3)
		if err := m2.LoadBytes(pkru2, p, buf); err != nil {
			t.Fatalf("restored read %#x: %v", uint64(p), err)
		}
		if buf[1] != buf[0]+1 || buf[2] != buf[0]+2 {
			t.Fatalf("live chunk %d contents corrupted: %v", i, buf)
		}
	}
	// The restored heap keeps allocating: freed chunks rejoined the free
	// lists during reindex.
	if _, err := h2.Alloc(48); err != nil {
		t.Fatalf("Alloc after restore: %v", err)
	}
}

func TestIncrementalCaptureOnlyModifiedPages(t *testing.T) {
	h, m := newTrackedHeap(t)
	pkru := pku.OnlyKeys(pku.DefaultKey, h.Key())

	p, err := h.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	full, err := h.CaptureImage(false)
	if err != nil {
		t.Fatalf("full capture: %v", err)
	}
	if len(full.Pages) == 0 {
		t.Fatal("full capture empty")
	}

	// Nothing changed: the incremental delta is empty.
	inc, err := h.CaptureImage(true)
	if err != nil {
		t.Fatalf("incremental capture: %v", err)
	}
	if len(inc.Pages) != 0 {
		t.Fatalf("idle incremental captured %d pages", len(inc.Pages))
	}

	// One store dirties exactly one page.
	if err := m.StoreBytes(pkru, p, []byte("delta")); err != nil {
		t.Fatalf("StoreBytes: %v", err)
	}
	inc, err = h.CaptureImage(true)
	if err != nil {
		t.Fatalf("incremental capture: %v", err)
	}
	if len(inc.Pages) != 1 {
		t.Fatalf("incremental captured %d pages, want 1", len(inc.Pages))
	}

	// Merging full+delta (what the store backend does) restores the
	// latest contents.
	merged := &HeapImage{Regions: inc.Regions}
	byPN := map[uint64][]byte{}
	for _, pg := range full.Pages {
		byPN[pg.PN] = pg.Data
	}
	for _, pg := range inc.Pages {
		byPN[pg.PN] = pg.Data
	}
	for _, pg := range full.Pages {
		merged.Pages = append(merged.Pages, PageImage{PN: pg.PN, Data: byPN[pg.PN]})
	}
	h2, m2 := restoreFresh(t, merged)
	if err := h2.CheckIntegrity(); err != nil {
		t.Fatalf("CheckIntegrity: %v", err)
	}
	buf := make([]byte, 5)
	if err := m2.LoadBytes(pku.OnlyKeys(pku.DefaultKey, h2.Key()), p, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, []byte("delta")) {
		t.Fatalf("restored contents = %q", buf)
	}
}

func TestRestoreGrownHeapRemapsRegions(t *testing.T) {
	h, _ := newTrackedHeap(t)
	// Force growth past InitialPages: allocations large enough to need
	// new regions.
	var ptrs []mem.Addr
	for i := 0; i < 12; i++ {
		p, err := h.Alloc(8192)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		ptrs = append(ptrs, p)
	}
	if len(h.regions) < 2 {
		t.Skipf("heap did not grow (%d regions)", len(h.regions))
	}
	img, err := h.CaptureImage(false)
	if err != nil {
		t.Fatalf("CaptureImage: %v", err)
	}
	h2, _ := restoreFresh(t, img)
	if err := h2.CheckIntegrity(); err != nil {
		t.Fatalf("CheckIntegrity: %v", err)
	}
	if got, want := len(h2.regions), len(h.regions); got != want {
		t.Fatalf("restored %d regions, want %d", got, want)
	}
	// Every original pointer frees cleanly on the restored heap.
	for _, p := range ptrs {
		if err := h2.Free(p); err != nil {
			t.Fatalf("Free(%#x) after restore: %v", uint64(p), err)
		}
	}
}

func TestRestoreRejectsGeometryMismatch(t *testing.T) {
	h, _ := newTrackedHeap(t)
	if _, err := h.Alloc(32); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	img, err := h.CaptureImage(false)
	if err != nil {
		t.Fatalf("CaptureImage: %v", err)
	}

	m2 := mem.New(vclock.New(vclock.DefaultCostModel()))
	h2, err := New(m2, pku.Key(1), Config{InitialPages: 8, MaxPages: 4096})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := h2.RestoreImage(img); err == nil {
		t.Fatal("restore across mismatched geometry succeeded")
	}
	if err := h2.RestoreImage(&HeapImage{}); err == nil {
		t.Fatal("restore of empty image succeeded")
	}
}
