package alloc

import (
	"fmt"

	"repro/internal/mem"
)

// This file implements heap image capture and restore — the allocator
// half of the durability engine (internal/persist). A capture is the
// heap's region geometry plus the raw contents of the pages that
// changed since the previous capture; because the allocator's metadata
// (size fields, canaries, freed markers, redzones) lives in-band inside
// the heap pages, it travels free with the page images and no separate
// allocator serialization exists. Restore writes the pages back at
// their original addresses and re-derives the host-side bookkeeping
// (free lists, live counters) by walking the in-band chunk chain — the
// same walk CheckIntegrity performs — so a restored heap validates
// under the existing integrity sweep.

// PageImage is one captured page: its page number and its full
// PageSize contents at capture time.
type PageImage struct {
	PN   uint64
	Data []byte
}

// RegionImage records one heap region's geometry at capture time.
type RegionImage struct {
	Base   mem.Addr
	NPages int
	// Used is the region's bump offset: the byte boundary up to which
	// the in-band chunk chain is valid.
	Used uint64
}

// HeapImage is a point-in-time heap capture: full region geometry plus
// the page set that changed since the previous capture (every page for
// a full capture). Page images within one capture are in ascending
// page-number order.
type HeapImage struct {
	Regions []RegionImage
	Pages   []PageImage
}

// TrackModified enables modified-page tracking on the heap's backing
// memory, so incremental captures can enumerate exactly the pages
// written since the previous one. Call once, before the first write
// that a later CaptureImage(true) must observe. Tracking is a property
// of the whole address space, so every heap on the same Memory shares
// it; only captured regions are ever enumerated.
func (h *Heap) TrackModified() { h.m.TrackModified(true) }

// CaptureImage captures the heap: region geometry plus page contents.
// With incremental=false every potentially nonzero page is captured
// (pages omitted are all-zero, which is what a restored mapping holds
// anyway); with incremental=true only pages modified since the previous
// capture are included, which requires TrackModified to have been on
// since before those modifications. Either way the call resets the
// modified baseline, so the next incremental capture starts here.
func (h *Heap) CaptureImage(incremental bool) (*HeapImage, error) {
	img := &HeapImage{Regions: make([]RegionImage, len(h.regions))}
	for i, r := range h.regions {
		img.Regions[i] = RegionImage{Base: r.base, NPages: r.npages, Used: r.used}
		var (
			pns []uint64
			err error
		)
		if incremental {
			pns, err = h.m.ModifiedPages(r.base, r.npages)
		} else {
			pns, err = h.m.NonZeroPages(r.base, r.npages)
		}
		if err != nil {
			return nil, fmt.Errorf("alloc: capture region %d: %w", i, err)
		}
		for _, pn := range pns {
			data := make([]byte, mem.PageSize)
			if err := h.m.PeekBytes(mem.Addr(pn<<mem.PageShift), data); err != nil {
				return nil, fmt.Errorf("alloc: capture page %#x: %w", pn, err)
			}
			img.Pages = append(img.Pages, PageImage{PN: pn, Data: data})
		}
		if err := h.m.ClearModified(r.base, r.npages); err != nil {
			return nil, fmt.Errorf("alloc: capture baseline region %d: %w", i, err)
		}
	}
	return img, nil
}

// RestoreImage rebuilds the heap from a (merged) capture. The heap must
// be freshly constructed with the same configuration as the captured
// one: its existing regions must match the image's leading regions
// exactly (a deterministic construction order makes the bases line up),
// and regions the captured heap grew are re-mapped at their original
// addresses via MapAt. Page contents are written back kernel-side, and
// the free lists and live counters are re-derived from the in-band
// chunk chain. RestoreImage does not validate canaries — run
// CheckIntegrity afterwards, exactly as a domain exit would, to prove
// the restored heap sound. Free lists are rebuilt in address order, so
// post-restore allocations may recycle chunks in a different order than
// the uncrashed process would have; liveness and contents are
// unaffected. Cumulative counters (TotalAllocs/TotalFrees/PeakBytes)
// restart from the restored live state.
func (h *Heap) RestoreImage(img *HeapImage) error {
	if len(img.Regions) == 0 {
		return fmt.Errorf("alloc: restore: image has no regions")
	}
	if len(h.regions) > len(img.Regions) {
		return fmt.Errorf("alloc: restore: heap has %d regions, image %d", len(h.regions), len(img.Regions))
	}
	for i, r := range img.Regions {
		if i < len(h.regions) {
			if h.regions[i].base != r.Base || h.regions[i].npages != r.NPages {
				return fmt.Errorf("alloc: restore: region %d geometry mismatch: heap %#x/%d vs image %#x/%d",
					i, uint64(h.regions[i].base), h.regions[i].npages, uint64(r.Base), r.NPages)
			}
		} else {
			if err := h.m.MapAt(r.Base, r.NPages, mem.ProtRW, h.key); err != nil {
				return fmt.Errorf("alloc: restore: region %d: %w", i, err)
			}
			h.regions = append(h.regions, region{base: r.Base, npages: r.NPages})
		}
		if r.Used > uint64(r.NPages)*mem.PageSize {
			return fmt.Errorf("alloc: restore: region %d used %d exceeds %d pages", i, r.Used, r.NPages)
		}
		h.regions[i].used = r.Used
	}
	for _, p := range img.Pages {
		if len(p.Data) != mem.PageSize {
			return fmt.Errorf("alloc: restore: page %#x image is %d bytes", p.PN, len(p.Data))
		}
		if err := h.m.PokeBytes(mem.Addr(p.PN<<mem.PageShift), p.Data); err != nil {
			return fmt.Errorf("alloc: restore: page %#x: %w", p.PN, err)
		}
	}
	return h.reindex()
}

// reindex rebuilds the host-side bookkeeping from the in-band chunk
// chain: freed chunks (identified by their freed-marker canary) rejoin
// their size-class free lists, live chunks rebuild the live counters.
// The walk terminates at each region's bump offset, like
// CheckIntegrity; a size field that does not parse means the image is
// corrupt.
func (h *Heap) reindex() error {
	for i := range h.free {
		h.free[i] = h.free[i][:0]
	}
	h.liveChunks = 0
	h.allocated = 0
	h.totalAlloc = 0
	h.totalFree = 0
	for ri := range h.regions {
		r := &h.regions[ri]
		for off := uint64(0); off < r.used; {
			chunk := r.base + mem.Addr(off)
			size, err := h.m.Peek64(chunk)
			if err != nil {
				return fmt.Errorf("alloc: reindex header read: %w", err)
			}
			c, err := classFor(int(size))
			if err != nil {
				return fmt.Errorf("%w: restored size field at %#x (%d)", ErrHeapCorruption, uint64(chunk), size)
			}
			got, err := h.m.Peek64(chunk + 8)
			if err != nil {
				return fmt.Errorf("alloc: reindex canary read: %w", err)
			}
			if got == h.canary(chunk)^freedMark {
				h.free[c] = append(h.free[c], chunk)
				h.totalFree++
			} else {
				h.liveChunks++
				h.allocated += size
				h.totalAlloc++
			}
			off += uint64(ClassSize(c)) + Overhead
		}
	}
	h.peak = h.allocated
	return nil
}
