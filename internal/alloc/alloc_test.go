package alloc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/pku"
	"repro/internal/vclock"
)

func newHeap(t *testing.T) (*Heap, *mem.Memory) {
	t.Helper()
	m := mem.New(vclock.New(vclock.DefaultCostModel()))
	h, err := New(m, pku.Key(1), Config{InitialPages: 4, MaxPages: 4096})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h, m
}

func TestAllocReturnsZeroedWritablePayload(t *testing.T) {
	h, m := newHeap(t)
	p, err := h.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	pkru := pku.OnlyKeys(pku.DefaultKey, h.Key())
	buf := make([]byte, 100)
	if err := m.LoadBytes(pkru, p, buf); err != nil {
		t.Fatalf("read payload: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, 100)) {
		t.Error("payload not zeroed")
	}
	if err := m.StoreBytes(pkru, p, []byte("hello")); err != nil {
		t.Errorf("write payload: %v", err)
	}
}

func TestAllocFreeCycle(t *testing.T) {
	h, _ := newHeap(t)
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := h.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	st := h.Stats()
	if st.LiveChunks != 0 || st.LiveBytes != 0 {
		t.Errorf("stats after free: %+v", st)
	}
	// Freed chunk is reused for the same class.
	p2, err := h.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc 2: %v", err)
	}
	if p2 != p {
		t.Errorf("free chunk not reused: %#x vs %#x", uint64(p2), uint64(p))
	}
}

func TestDoubleFree(t *testing.T) {
	h, _ := newHeap(t)
	p, _ := h.Alloc(16)
	if err := h.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := h.Free(p); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free = %v, want ErrBadFree", err)
	}
}

func TestFreeOfWildPointer(t *testing.T) {
	h, _ := newHeap(t)
	if err := h.Free(0xdead000); !errors.Is(err, ErrBadFree) {
		t.Errorf("wild free = %v, want ErrBadFree", err)
	}
}

func TestOverflowDetectedAtFree(t *testing.T) {
	h, m := newHeap(t)
	p, _ := h.Alloc(32)
	// Simulate a linear heap overflow: write past the 32-byte class
	// payload into the redzone.
	pkru := pku.OnlyKeys(pku.DefaultKey, h.Key())
	evil := make([]byte, 48) // 32-byte class + 16 bytes into the redzone
	for i := range evil {
		evil[i] = 0x41
	}
	if err := m.StoreBytes(pkru, p, evil); err != nil {
		t.Fatalf("overflow write: %v", err)
	}
	if err := h.Free(p); !errors.Is(err, ErrHeapCorruption) {
		t.Errorf("Free after overflow = %v, want ErrHeapCorruption", err)
	}
}

func TestOverflowDetectedByIntegritySweep(t *testing.T) {
	h, m := newHeap(t)
	p1, _ := h.Alloc(16)
	_, _ = h.Alloc(16)
	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("clean heap flagged: %v", err)
	}
	// Overflow p1 far enough to smash the next chunk's header canary.
	pkru := pku.OnlyKeys(pku.DefaultKey, h.Key())
	evil := make([]byte, 64)
	if err := m.StoreBytes(pkru, p1, evil); err != nil {
		t.Fatalf("overflow: %v", err)
	}
	if err := h.CheckIntegrity(); !errors.Is(err, ErrHeapCorruption) {
		t.Errorf("CheckIntegrity = %v, want ErrHeapCorruption", err)
	}
}

func TestHeaderCanarySmashDetected(t *testing.T) {
	h, m := newHeap(t)
	p, _ := h.Alloc(16)
	pkru := pku.OnlyKeys(pku.DefaultKey, h.Key())
	// Underflow: overwrite the chunk's own header canary.
	if err := m.Store64(pkru, p-8, 0x4141414141414141); err != nil {
		t.Fatalf("underflow write: %v", err)
	}
	if err := h.Free(p); !errors.Is(err, ErrHeapCorruption) {
		t.Errorf("Free after underflow = %v, want ErrHeapCorruption", err)
	}
}

func TestHeapGrows(t *testing.T) {
	h, _ := newHeap(t)
	// 4 initial pages = 16 KiB; allocate far more.
	var ps []mem.Addr
	for i := 0; i < 100; i++ {
		p, err := h.Alloc(1024)
		if err != nil {
			t.Fatalf("Alloc #%d: %v", i, err)
		}
		ps = append(ps, p)
	}
	if h.Stats().HeapPages <= 4 {
		t.Error("heap did not grow")
	}
	for _, p := range ps {
		if err := h.Free(p); err != nil {
			t.Fatalf("Free: %v", err)
		}
	}
}

func TestMaxPagesEnforced(t *testing.T) {
	m := mem.New(nil)
	h, err := New(m, 1, Config{InitialPages: 1, MaxPages: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var lastErr error
	for i := 0; i < 100; i++ {
		if _, lastErr = h.Alloc(2048); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", lastErr)
	}
}

func TestTooLargeAndZeroAlloc(t *testing.T) {
	h, _ := newHeap(t)
	if _, err := h.Alloc(0); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Alloc(0) = %v, want ErrTooLarge", err)
	}
	if _, err := h.Alloc(-5); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Alloc(-5) = %v, want ErrTooLarge", err)
	}
	if _, err := h.Alloc(1 << 30); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Alloc(1GiB) = %v, want ErrTooLarge", err)
	}
}

func TestResetDiscardsEverything(t *testing.T) {
	h, m := newHeap(t)
	p, _ := h.Alloc(128)
	pkru := pku.OnlyKeys(pku.DefaultKey, h.Key())
	_ = m.StoreBytes(pkru, p, []byte("sensitive"))
	if err := h.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	st := h.Stats()
	if st.LiveChunks != 0 || st.LiveBytes != 0 {
		t.Errorf("stats after reset: %+v", st)
	}
	// Old data is gone (pages zeroed).
	buf := make([]byte, 9)
	if err := m.LoadBytes(pkru, p, buf); err != nil {
		t.Fatalf("read after reset: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, 9)) {
		t.Errorf("data survived reset: %q", buf)
	}
	// Heap is reusable after reset.
	if _, err := h.Alloc(64); err != nil {
		t.Errorf("Alloc after reset: %v", err)
	}
}

func TestReleaseUnmapsPages(t *testing.T) {
	m := mem.New(nil)
	h, err := New(m, 1, Config{InitialPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := m.MappedPages()
	if err := h.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := m.MappedPages(); got != before-4 {
		t.Errorf("MappedPages = %d, want %d", got, before-4)
	}
}

func TestHeapPagesCarryDomainKey(t *testing.T) {
	h, m := newHeap(t)
	p, _ := h.Alloc(16)
	k, err := m.KeyOf(p)
	if err != nil || k != h.Key() {
		t.Errorf("KeyOf = %v, %v; want key %v", k, err, h.Key())
	}
	// A PKRU without the domain key cannot touch the payload.
	_, lerr := m.Load8(pku.OnlyKeys(pku.DefaultKey), p)
	if f, ok := mem.IsFault(lerr); !ok || f.Kind != mem.FaultPkey {
		t.Errorf("foreign read = %v, want FaultPkey", lerr)
	}
}

func TestUsableSize(t *testing.T) {
	h, _ := newHeap(t)
	p, _ := h.Alloc(100)
	n, err := h.UsableSize(p)
	if err != nil || n != 128 {
		t.Errorf("UsableSize = %d, %v; want 128", n, err)
	}
	if _, err := h.UsableSize(0x123); !errors.Is(err, ErrBadFree) {
		t.Errorf("UsableSize(wild) = %v, want ErrBadFree", err)
	}
}

func TestClassForBoundaries(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {16, 0}, {17, 1}, {32, 1}, {33, 2}, {4096, 8},
	}
	for _, c := range cases {
		got, err := classFor(c.n)
		if err != nil || got != c.class {
			t.Errorf("classFor(%d) = %d, %v; want %d", c.n, got, err, c.class)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	h, _ := newHeap(t)
	p1, _ := h.Alloc(100)
	p2, _ := h.Alloc(200)
	st := h.Stats()
	if st.LiveChunks != 2 || st.LiveBytes != 300 || st.TotalAllocs != 2 {
		t.Errorf("stats = %+v", st)
	}
	_ = h.Free(p1)
	_ = h.Free(p2)
	st = h.Stats()
	if st.PeakBytes != 300 || st.TotalFrees != 2 {
		t.Errorf("stats after frees = %+v", st)
	}
}

// Property: any sequence of small allocations yields non-overlapping,
// canary-clean chunks, and freeing them all returns the heap to zero
// live bytes.
func TestAllocNonOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := mem.New(nil)
		h, err := New(m, 2, Config{InitialPages: 8, MaxPages: 1 << 16})
		if err != nil {
			return false
		}
		type span struct{ lo, hi uint64 }
		var spans []span
		var ptrs []mem.Addr
		for _, s := range sizes {
			n := int(s%2048) + 1
			p, err := h.Alloc(n)
			if err != nil {
				return false
			}
			lo, hi := uint64(p), uint64(p)+uint64(n)
			for _, sp := range spans {
				if lo < sp.hi && sp.lo < hi {
					return false // overlap
				}
			}
			spans = append(spans, span{lo, hi})
			ptrs = append(ptrs, p)
		}
		if h.CheckIntegrity() != nil {
			return false
		}
		for _, p := range ptrs {
			if h.Free(p) != nil {
				return false
			}
		}
		return h.Stats().LiveBytes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: writes that stay within the requested size never trip the
// canaries (no false positives).
func TestNoFalsePositiveProperty(t *testing.T) {
	m := mem.New(nil)
	h, err := New(m, 3, Config{InitialPages: 8, MaxPages: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	pkru := pku.OnlyKeys(pku.DefaultKey, h.Key())
	f := func(data []byte) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		p, err := h.Alloc(len(data))
		if err != nil {
			return false
		}
		if m.StoreBytes(pkru, p, data) != nil {
			return false
		}
		return h.Free(p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRekey(t *testing.T) {
	m := mem.New(nil)
	h, err := New(m, pku.Key(2), Config{InitialPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := h.Alloc(64)
	// Re-tag the pages then rekey the allocator's view.
	for _, r := range h.Regions() {
		if err := m.TagKey(r.Base, r.NPages, pku.Key(5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Rekey(pku.Key(5)); err != nil {
		t.Fatal(err)
	}
	if h.Key() != pku.Key(5) {
		t.Errorf("Key = %v", h.Key())
	}
	// Metadata operations work under the new key.
	if err := h.Free(p); err != nil {
		t.Errorf("Free after rekey: %v", err)
	}
	if _, err := h.Alloc(32); err != nil {
		t.Errorf("Alloc after rekey: %v", err)
	}
	if err := h.Rekey(pku.Key(200)); err == nil {
		t.Error("invalid key accepted")
	}
}

func TestRegionsReflectGrowth(t *testing.T) {
	m := mem.New(nil)
	h, err := New(m, pku.Key(1), Config{InitialPages: 1, MaxPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Regions(); len(got) != 1 || got[0].NPages != 1 {
		t.Fatalf("initial regions: %+v", got)
	}
	// Force growth past the first region.
	for i := 0; i < 8; i++ {
		if _, err := h.Alloc(2048); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Regions(); len(got) < 2 {
		t.Errorf("regions after growth: %+v", got)
	}
}

func TestResetNoZeroKeepsBytesButResetsState(t *testing.T) {
	m := mem.New(nil)
	h, err := New(m, pku.Key(1), Config{InitialPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	pkru := pku.OnlyKeys(pku.DefaultKey, h.Key())
	p, _ := h.Alloc(16)
	_ = m.StoreBytes(pkru, p, []byte("stale!"))
	if err := h.ResetNoZero(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.LiveChunks != 0 || st.LiveBytes != 0 {
		t.Errorf("state after fast reset: %+v", st)
	}
	// Stale bytes remain in the page (the confidentiality trade-off)...
	buf := make([]byte, 6)
	_ = m.LoadBytes(pkru, p, buf)
	if string(buf) == "\x00\x00\x00\x00\x00\x00" {
		t.Skip("allocator header landed over the probe; stale-bytes check inconclusive")
	}
	// ...but fresh allocations still hand out zeroed payloads.
	p2, _ := h.Alloc(16)
	buf2 := make([]byte, 16)
	_ = m.LoadBytes(pkru, p2, buf2)
	if !bytes.Equal(buf2, make([]byte, 16)) {
		t.Error("fresh allocation not zeroed after fast reset")
	}
}

// TestFreedChunkSmashDetectedAtReuse pins the reuse-time validation: a
// freed chunk whose header canary or redzone was smashed after the free
// (use-after-free / tcache-poisoning shapes) must fail the next Alloc of
// its class with ErrHeapCorruption instead of being silently recycled —
// recycling would rewrite the header and erase the evidence before the
// next integrity sweep (the batched execution path shares one sweep
// across many calls).
func TestFreedChunkSmashDetectedAtReuse(t *testing.T) {
	t.Run("header-canary", func(t *testing.T) {
		h, m := newHeap(t)
		p, err := h.Alloc(32)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if err := h.Free(p); err != nil {
			t.Fatalf("Free: %v", err)
		}
		// Smash the freed-marker canary word (payload-8).
		if err := m.Poke64(p-8, 0x4141414141414141); err != nil {
			t.Fatalf("Poke64: %v", err)
		}
		if _, err := h.Alloc(32); !errors.Is(err, ErrHeapCorruption) {
			t.Fatalf("Alloc after freed-header smash = %v, want ErrHeapCorruption", err)
		}
	})
	t.Run("redzone", func(t *testing.T) {
		h, m := newHeap(t)
		p, err := h.Alloc(64)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if err := h.Free(p); err != nil {
			t.Fatalf("Free: %v", err)
		}
		// A dangling write runs over the freed payload into the redzone.
		if err := m.Poke64(p+64, 0x5555555555555555); err != nil {
			t.Fatalf("Poke64: %v", err)
		}
		if _, err := h.Alloc(64); !errors.Is(err, ErrHeapCorruption) {
			t.Fatalf("Alloc after freed-redzone smash = %v, want ErrHeapCorruption", err)
		}
	})
	t.Run("clean-reuse-still-works", func(t *testing.T) {
		h, _ := newHeap(t)
		p, err := h.Alloc(48)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if err := h.Free(p); err != nil {
			t.Fatalf("Free: %v", err)
		}
		q, err := h.Alloc(48)
		if err != nil {
			t.Fatalf("Alloc reuse: %v", err)
		}
		if q != p {
			t.Errorf("clean reuse returned %#x, want recycled chunk %#x", uint64(q), uint64(p))
		}
	})
}
