package tlslib

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/serde"
)

func newBridge(t *testing.T) (*ffi.Bridge, *core.System) {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	if _, err := sys.InitDomain(1, core.DomainConfig{HeapPages: 4}); err != nil {
		t.Fatal(err)
	}
	b, err := ffi.NewBridge(sys, 1, serde.Raw{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(b); err != nil {
		t.Fatal(err)
	}
	return b, sys
}

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{Type: TypeHandshake, Version: 0x0303, Payload: []byte("client hello")}
	wire, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecord(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != rec.Type || back.Version != rec.Version || !bytes.Equal(back.Payload, rec.Payload) {
		t.Errorf("round trip: %+v", back)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	if _, err := DecodeRecord([]byte{1, 2}); !errors.Is(err, ErrBadRecord) {
		t.Error("short header accepted")
	}
	// Declared length beyond actual bytes.
	wire, _ := EncodeRecord(Record{Type: 22, Version: 0x0303, Payload: []byte("abcd")})
	if _, err := DecodeRecord(wire[:len(wire)-2]); !errors.Is(err, ErrBadRecord) {
		t.Error("truncated record accepted")
	}
	if _, err := EncodeRecord(Record{Payload: make([]byte, MaxRecordLen+1)}); !errors.Is(err, ErrBadRecord) {
		t.Error("oversized record accepted")
	}
}

func TestBenignHeartbeat(t *testing.T) {
	b, _ := newBridge(t)
	payload := []byte("ping")
	wire, err := BuildHeartbeat(payload, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeRecord(wire)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Call(FuncHeartbeat, rec.Payload)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	resp := res[0].([]byte)
	if resp[0] != HeartbeatResponse {
		t.Errorf("response type = %d", resp[0])
	}
	if !bytes.Equal(resp[HeartbeatHeaderLen:HeartbeatHeaderLen+4], payload) {
		t.Errorf("echo payload = %q", resp[HeartbeatHeaderLen:HeartbeatHeaderLen+4])
	}
}

func TestHeartbleedContainedByRewind(t *testing.T) {
	b, sys := newBridge(t)
	// Declared length 0xffff with a 4-byte payload: the classic attack.
	wire, err := BuildHeartbeat([]byte("evil"), 0xffff)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeRecord(wire)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Call(FuncHeartbeat, rec.Payload)
	if err != nil {
		t.Fatalf("attack call should hit the fallback, got err: %v", err)
	}
	// The alternate action returns an empty response (silent discard).
	if out := res[0].([]byte); len(out) != 0 {
		t.Errorf("attack leaked %d bytes", len(out))
	}
	if b.Stats().Violations != 1 || b.Stats().Fallbacks != 1 {
		t.Errorf("bridge stats = %+v", b.Stats())
	}
	d, _ := sys.Domain(1)
	if d.Stats().Rewinds != 1 {
		t.Errorf("rewinds = %d", d.Stats().Rewinds)
	}
	// The library keeps serving benign traffic.
	wire, _ = BuildHeartbeat([]byte("ok"), 2)
	rec, _ = DecodeRecord(wire)
	if _, err := b.Call(FuncHeartbeat, rec.Payload); err != nil {
		t.Errorf("post-attack benign call: %v", err)
	}
}

func TestFixedHandlerRejectsAttack(t *testing.T) {
	b, _ := newBridge(t)
	wire, _ := BuildHeartbeat([]byte("evil"), 0xffff)
	rec, _ := DecodeRecord(wire)
	_, err := b.Call(FuncHeartbeatFixed, rec.Payload)
	if !errors.Is(err, ErrBadHeartbeat) {
		t.Errorf("fixed handler err = %v, want ErrBadHeartbeat", err)
	}
	if b.Stats().Violations != 0 {
		t.Error("fixed handler should not fault")
	}
	// And it still answers benign requests.
	wire, _ = BuildHeartbeat([]byte("ping"), 4)
	rec, _ = DecodeRecord(wire)
	res, err := b.Call(FuncHeartbeatFixed, rec.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp := res[0].([]byte); resp[0] != HeartbeatResponse {
		t.Errorf("response = %v", resp[0])
	}
}

func TestHandshakeDigestDeterministic(t *testing.T) {
	// The digest returns an int64, so it needs the binary codec (the raw
	// codec carries only byte strings).
	sys := core.NewSystem(core.DefaultConfig())
	_, _ = sys.InitDomain(1, core.DomainConfig{})
	bb, _ := ffi.NewBridge(sys, 1, serde.Binary{})
	if err := Register(bb); err != nil {
		t.Fatal(err)
	}
	d1, err := bb.Call(FuncHandshakeDigest, []byte("transcript"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := bb.Call(FuncHandshakeDigest, []byte("transcript"))
	if err != nil {
		t.Fatal(err)
	}
	if d1[0] != d2[0] {
		t.Errorf("digest not deterministic: %v vs %v", d1[0], d2[0])
	}
	d3, _ := bb.Call(FuncHandshakeDigest, []byte("different"))
	if d3[0] == d1[0] {
		t.Error("different inputs hashed equal")
	}
}

func TestShortHeartbeatRejected(t *testing.T) {
	b, _ := newBridge(t)
	if _, err := b.Call(FuncHeartbeat, []byte{1}); !errors.Is(err, ErrBadRecord) {
		t.Errorf("short heartbeat = %v, want ErrBadRecord", err)
	}
	if _, err := b.Call(FuncHeartbeatFixed, []byte{1}); !errors.Is(err, ErrBadRecord) {
		t.Errorf("short fixed heartbeat = %v, want ErrBadRecord", err)
	}
}

func TestArgumentValidation(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig())
	_, _ = sys.InitDomain(1, core.DomainConfig{})
	b, _ := ffi.NewBridge(sys, 1, serde.Binary{})
	if err := Register(b); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Call(FuncHeartbeat); err == nil {
		t.Error("missing argument accepted")
	}
	if _, err := b.Call(FuncHeartbeat, int64(7)); err == nil {
		t.Error("non-bytes argument accepted")
	}
}
