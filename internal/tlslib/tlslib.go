// Package tlslib is the OpenSSL-stand-in of the reproduction: a small
// "legacy C library" that parses TLS-style records and heartbeat
// messages, reached through the SDRaD-FFI bridge exactly as the paper's
// §III proposes for unsafe code behind Rust FFI.
//
// The library deliberately contains the Heartbleed bug class
// (CVE-2014-0160): the heartbeat handler trusts the attacker-controlled
// payload_length field and reads that many bytes from a much smaller
// buffer. Run natively, that leaks (or faults on) adjacent memory; run
// inside an SDRaD domain, the out-of-bounds read hits a page the domain's
// protection key does not cover and the domain is rewound, with the
// caller's alternate action producing a clean error instead of a leak or
// a crash. A fixed handler (the patched bounds check) is provided for the
// overhead comparison.
package tlslib

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ffi"
)

// Record and heartbeat framing constants (TLS 1.2 style).
const (
	// RecordHeaderLen is type(1) + version(2) + length(2).
	RecordHeaderLen = 5
	// HeartbeatHeaderLen is type(1) + payload_length(2).
	HeartbeatHeaderLen = 3
	// PaddingLen is the mandatory heartbeat padding.
	PaddingLen = 16
	// MaxRecordLen bounds one record's payload.
	MaxRecordLen = 1 << 14
)

// Record content types.
const (
	TypeHandshake = 22
	TypeHeartbeat = 24
)

// Heartbeat message types.
const (
	HeartbeatRequest  = 1
	HeartbeatResponse = 2
)

// Sentinel errors.
var (
	// ErrBadRecord is returned for malformed records.
	ErrBadRecord = errors.New("tlslib: malformed record")
	// ErrBadHeartbeat is returned by the *fixed* heartbeat handler when
	// payload_length exceeds the actual payload (RFC 6520 silent-discard
	// condition).
	ErrBadHeartbeat = errors.New("tlslib: heartbeat length exceeds record")
)

// Record is a parsed TLS record.
type Record struct {
	Type    byte
	Version uint16
	Payload []byte
}

// EncodeRecord renders a record to wire format.
func EncodeRecord(r Record) ([]byte, error) {
	if len(r.Payload) > MaxRecordLen {
		return nil, fmt.Errorf("%w: payload %d > max", ErrBadRecord, len(r.Payload))
	}
	out := make([]byte, RecordHeaderLen+len(r.Payload))
	out[0] = r.Type
	binary.BigEndian.PutUint16(out[1:3], r.Version)
	binary.BigEndian.PutUint16(out[3:5], uint16(len(r.Payload)))
	copy(out[RecordHeaderLen:], r.Payload)
	return out, nil
}

// DecodeRecord parses wire bytes into a Record.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < RecordHeaderLen {
		return Record{}, fmt.Errorf("%w: short header (%d bytes)", ErrBadRecord, len(b))
	}
	n := int(binary.BigEndian.Uint16(b[3:5]))
	if n > MaxRecordLen {
		return Record{}, fmt.Errorf("%w: declared length %d > max", ErrBadRecord, n)
	}
	if len(b) < RecordHeaderLen+n {
		return Record{}, fmt.Errorf("%w: declared %d, have %d", ErrBadRecord, n, len(b)-RecordHeaderLen)
	}
	return Record{
		Type:    b[0],
		Version: binary.BigEndian.Uint16(b[1:3]),
		Payload: b[RecordHeaderLen : RecordHeaderLen+n],
	}, nil
}

// BuildHeartbeat renders a heartbeat request record whose header declares
// declaredLen payload bytes while actually carrying payload. Setting
// declaredLen > len(payload) is the Heartbleed attack.
func BuildHeartbeat(payload []byte, declaredLen int) ([]byte, error) {
	msg := make([]byte, HeartbeatHeaderLen+len(payload)+PaddingLen)
	msg[0] = HeartbeatRequest
	binary.BigEndian.PutUint16(msg[1:3], uint16(declaredLen))
	copy(msg[HeartbeatHeaderLen:], payload)
	return EncodeRecord(Record{Type: TypeHeartbeat, Version: 0x0303, Payload: msg})
}

// heartbeatVulnerable is the buggy handler: it copies declaredLen bytes
// out of the in-domain message buffer without checking the actual length,
// reading out of bounds through the domain context — the faithful
// Heartbleed data flow against simulated memory.
func heartbeatVulnerable(c *core.DomainCtx, rec []byte) ([]byte, error) {
	if len(rec) < HeartbeatHeaderLen {
		return nil, fmt.Errorf("%w: short heartbeat", ErrBadRecord)
	}
	declared := int(binary.BigEndian.Uint16(rec[1:3]))
	// "Allocate" the message in domain memory, as the C library would.
	buf := c.MustAlloc(len(rec))
	c.MustStore(buf, rec)
	// BUG: memcpy(bp, pl, payload) with attacker-controlled payload —
	// reads `declared` bytes from a len(rec)-byte buffer.
	leak := make([]byte, declared)
	c.MustLoad(buf+HeartbeatHeaderLen, leak)
	c.MustFree(buf)
	resp := make([]byte, HeartbeatHeaderLen+declared+PaddingLen)
	resp[0] = HeartbeatResponse
	binary.BigEndian.PutUint16(resp[1:3], uint16(declared))
	copy(resp[HeartbeatHeaderLen:], leak)
	return resp, nil
}

// heartbeatFixed is the patched handler with the bounds check.
func heartbeatFixed(c *core.DomainCtx, rec []byte) ([]byte, error) {
	if len(rec) < HeartbeatHeaderLen+PaddingLen {
		return nil, fmt.Errorf("%w: short heartbeat", ErrBadRecord)
	}
	declared := int(binary.BigEndian.Uint16(rec[1:3]))
	if HeartbeatHeaderLen+declared+PaddingLen > len(rec) {
		return nil, fmt.Errorf("%w: declared %d, record %d", ErrBadHeartbeat, declared, len(rec))
	}
	buf := c.MustAlloc(len(rec))
	c.MustStore(buf, rec)
	pl := make([]byte, declared)
	c.MustLoad(buf+HeartbeatHeaderLen, pl)
	c.MustFree(buf)
	resp := make([]byte, HeartbeatHeaderLen+declared+PaddingLen)
	resp[0] = HeartbeatResponse
	binary.BigEndian.PutUint16(resp[1:3], uint16(declared))
	copy(resp[HeartbeatHeaderLen:], pl)
	return resp, nil
}

// Function names registered on the bridge.
const (
	// FuncHeartbeat is the vulnerable handler.
	FuncHeartbeat = "tls_heartbeat"
	// FuncHeartbeatFixed is the patched handler.
	FuncHeartbeatFixed = "tls_heartbeat_fixed"
	// FuncHandshakeDigest is a benign compute-heavy handler used for
	// overhead measurements.
	FuncHandshakeDigest = "tls_handshake_digest"
)

// Register installs the library's functions on an FFI bridge. The
// heartbeat handlers get an alternate action that reports a clean
// protocol error instead of leaking or crashing.
func Register(b *ffi.Bridge) error {
	regs := []ffi.Registration{
		{
			Name: FuncHeartbeat,
			Fn: func(c *core.DomainCtx, args []any) ([]any, error) {
				rec, err := argBytes(args, 0)
				if err != nil {
					return nil, err
				}
				resp, err := heartbeatVulnerable(c, rec)
				if err != nil {
					return nil, err
				}
				return []any{resp}, nil
			},
			Fallback: func(args []any, viol *core.ViolationError) ([]any, error) {
				// Alternate action: drop the heartbeat, report a clean
				// error (RFC 6520 says discard silently).
				return []any{[]byte(nil)}, nil
			},
		},
		{
			Name: FuncHeartbeatFixed,
			Fn: func(c *core.DomainCtx, args []any) ([]any, error) {
				rec, err := argBytes(args, 0)
				if err != nil {
					return nil, err
				}
				resp, err := heartbeatFixed(c, rec)
				if err != nil {
					return nil, err
				}
				return []any{resp}, nil
			},
		},
		{
			Name: FuncHandshakeDigest,
			Fn: func(c *core.DomainCtx, args []any) ([]any, error) {
				data, err := argBytes(args, 0)
				if err != nil {
					return nil, err
				}
				return []any{int64(digest(c, data))}, nil
			},
		},
	}
	for _, r := range regs {
		if err := b.Register(r); err != nil {
			return fmt.Errorf("tlslib: %w", err)
		}
	}
	return nil
}

// digest runs an FNV-style hash over the data staged in domain memory —
// a stand-in for the transcript hashing of a handshake.
func digest(c *core.DomainCtx, data []byte) uint64 {
	if len(data) == 0 {
		return 14695981039346656037
	}
	buf := c.MustAlloc(len(data))
	c.MustStore(buf, data)
	tmp := make([]byte, len(data))
	c.MustLoad(buf, tmp)
	c.MustFree(buf)
	h := uint64(14695981039346656037)
	for _, b := range tmp {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func argBytes(args []any, i int) ([]byte, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("tlslib: missing argument %d", i)
	}
	b, ok := args[i].([]byte)
	if !ok {
		return nil, fmt.Errorf("tlslib: argument %d is %T, want []byte", i, args[i])
	}
	return b, nil
}
