package tlslib

import "testing"

// FuzzDecodeRecord checks the record decoder never panics and that
// accepted records satisfy the framing invariants.
func FuzzDecodeRecord(f *testing.F) {
	benign, _ := BuildHeartbeat([]byte("ping"), 4)
	attack, _ := BuildHeartbeat([]byte("evil"), 0xffff)
	f.Add(benign)
	f.Add(attack)
	f.Add([]byte{22, 3, 3, 0, 0})
	f.Add([]byte{})
	f.Add([]byte{24, 3, 3, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, in []byte) {
		rec, err := DecodeRecord(in)
		if err != nil {
			return
		}
		if len(rec.Payload) > MaxRecordLen {
			t.Errorf("accepted payload of %d bytes", len(rec.Payload))
		}
		// Re-encoding an accepted record must succeed and round-trip.
		wire, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := DecodeRecord(wire)
		if err != nil || back.Type != rec.Type || len(back.Payload) != len(rec.Payload) {
			t.Errorf("round trip mismatch: %v", err)
		}
	})
}
