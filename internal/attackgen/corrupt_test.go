package attackgen

import (
	"bytes"
	"testing"
)

func TestCorruptIsDeterministic(t *testing.T) {
	a, b := NewCorruptor(7), NewCorruptor(7)
	payload := []byte("set key-0001 0 0 5\r\nhello\r\n")
	for i := 0; i < 200; i++ {
		ba, ma := a.Corrupt(payload)
		bb, mb := b.Corrupt(payload)
		if ma != mb || !bytes.Equal(ba, bb) {
			t.Fatalf("iteration %d: same seed diverged: %v/%q vs %v/%q", i, ma, ba, mb, bb)
		}
	}
}

func TestCorruptNeverMutatesInput(t *testing.T) {
	c := NewCorruptor(3)
	payload := []byte("get key-0042\r\n")
	orig := append([]byte{}, payload...)
	for i := 0; i < 100; i++ {
		c.Corrupt(payload)
		if !bytes.Equal(payload, orig) {
			t.Fatalf("iteration %d: input mutated to %q", i, payload)
		}
	}
}

func TestCorruptChangesPayload(t *testing.T) {
	c := NewCorruptor(11)
	payload := []byte("delete key-0007\r\n")
	changed := 0
	for i := 0; i < 100; i++ {
		out, _ := c.Corrupt(payload)
		if !bytes.Equal(out, payload) {
			changed++
		}
	}
	// A bit flip or zero fill can in principle be a no-op only when it
	// lands on matching bytes; with this payload every mutation differs.
	if changed != 100 {
		t.Errorf("only %d/100 corruptions changed the payload", changed)
	}
}

func TestCorruptEmptyPayload(t *testing.T) {
	c := NewCorruptor(5)
	out, m := c.Corrupt(nil)
	if m != MutGarbageInsert || len(out) == 0 {
		t.Errorf("empty payload: got %v len=%d, want garbage-insert non-empty", m, len(out))
	}
}

func TestMalformedCorporaDeterministic(t *testing.T) {
	kv1, kv2 := MalformedKVCorpus(42, 32), MalformedKVCorpus(42, 32)
	if len(kv1) != 32 {
		t.Fatalf("kv corpus size %d", len(kv1))
	}
	for i := range kv1 {
		if !bytes.Equal(kv1[i], kv2[i]) {
			t.Fatalf("kv corpus entry %d differs", i)
		}
	}
	h1, h2 := MalformedHTTPCorpus(42, 32), MalformedHTTPCorpus(42, 32)
	for i := range h1 {
		if !bytes.Equal(h1[i], h2[i]) {
			t.Fatalf("http corpus entry %d differs", i)
		}
	}
}

func TestMutationStrings(t *testing.T) {
	for _, m := range Mutations() {
		if s := m.String(); s == "" || s[0] == 'M' {
			t.Errorf("mutation %d has bad name %q", m, s)
		}
	}
}

// TestConfigDefaults lives in-package (Config.fill is unexported); the
// TCP attack tests are external to avoid a test-only import cycle
// through kvstore -> repro -> campaign -> attackgen.
func TestConfigDefaults(t *testing.T) {
	c := Config{}
	c.fill()
	if c.Requests <= 0 || c.Clients <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}
