// Package attackgen drives a live memcached-protocol server (sdrad-kvd)
// over TCP with a mixed benign/malicious workload — the real-network
// client side of the containment experiment (E4). It is the library
// behind cmd/sdrad-attack and the integration tests.
package attackgen

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"repro/internal/workload"
)

// AttackValue is the payload prefix that makes sdrad-kvd treat a SET as
// an exploit (kvstore.AttackMarker).
const AttackValue = "!!exploit"

// Config configures one attack run.
type Config struct {
	// Addr is the target server.
	Addr string
	// Requests is the total request count across all clients.
	Requests int
	// AttackEvery injects one malicious SET per N requests (0 = none).
	AttackEvery int
	// Clients is the number of concurrent benign connections.
	Clients int
	// Seed seeds the workload.
	Seed uint64
}

func (c *Config) fill() {
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
}

// Report summarizes what the clients experienced.
type Report struct {
	Requests       int
	BenignRequests int
	BenignFailures int
	AttacksSent    int
	AttacksErrored int
	Hits           int
	Misses         int
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests:         %d\n", r.Requests)
	fmt.Fprintf(&b, "benign:           %d (failures: %d, %.2f%%)\n",
		r.BenignRequests, r.BenignFailures,
		100*float64(r.BenignFailures)/float64(max(1, r.BenignRequests)))
	fmt.Fprintf(&b, "attacks sent:     %d (server errored: %d)\n", r.AttacksSent, r.AttacksErrored)
	fmt.Fprintf(&b, "get hits/misses:  %d/%d\n", r.Hits, r.Misses)
	if r.BenignFailures == 0 {
		b.WriteString("verdict: benign traffic fully served under attack (containment holds)\n")
	} else {
		b.WriteString("verdict: benign traffic disrupted (no containment)\n")
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// client is one benign connection speaking the memcached text protocol.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(addr string) (*client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("attackgen: dial %s: %w", addr, err)
	}
	return &client{conn: conn, r: bufio.NewReader(conn)}, nil
}

func (c *client) close() { _ = c.conn.Close() }

// set issues a SET and returns the response line.
func (c *client) set(key string, value []byte) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "set %s 0 0 %d\r\n%s\r\n", key, len(value), value); err != nil {
		return "", err
	}
	return c.readLine()
}

// get issues a GET; returns (hit, error).
func (c *client) get(key string) (bool, error) {
	if _, err := fmt.Fprintf(c.conn, "get %s\r\n", key); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	if strings.HasPrefix(line, "END") {
		return false, nil
	}
	if strings.HasPrefix(line, "SERVER_ERROR") {
		return false, fmt.Errorf("attackgen: %s", strings.TrimSpace(line))
	}
	if !strings.HasPrefix(line, "VALUE ") {
		return false, fmt.Errorf("attackgen: unexpected response %q", line)
	}
	// Parse "VALUE <key> <flags> <bytes>" and consume exactly the data
	// block (binary-safe: values may contain newlines) plus CRLF and the
	// END line.
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 4 {
		return false, fmt.Errorf("attackgen: malformed VALUE line %q", line)
	}
	var n int
	if _, err := fmt.Sscanf(fields[3], "%d", &n); err != nil {
		return false, fmt.Errorf("attackgen: bad byte count in %q", line)
	}
	if _, err := io.ReadFull(c.r, make([]byte, n+2)); err != nil {
		return false, err
	}
	if _, err := c.readLine(); err != nil { // END
		return false, err
	}
	return true, nil
}

func (c *client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return line, nil
}

// Run executes the workload and returns the report.
func Run(cfg Config) (Report, error) {
	cfg.fill()

	// Benign clients each run their share of the workload; one extra
	// connection is the attacker.
	var (
		mu     sync.Mutex
		report Report
		wg     sync.WaitGroup
		errCh  = make(chan error, cfg.Clients+1)
	)

	perClient := cfg.Requests / cfg.Clients
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := dial(cfg.Addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.close()
			gen, err := workload.NewKV(workload.KVConfig{Seed: cfg.Seed + uint64(id), Keys: 500})
			if err != nil {
				errCh <- err
				return
			}
			local := Report{}
			for i := 0; i < perClient; i++ {
				req := gen.Next()
				local.Requests++
				local.BenignRequests++
				switch req.Op {
				case workload.OpSet:
					line, err := c.set(req.Key, req.Value)
					if err != nil {
						errCh <- err
						return
					}
					if !strings.HasPrefix(line, "STORED") {
						local.BenignFailures++
					}
				default:
					hit, err := c.get(req.Key)
					if err != nil {
						if errors.Is(err, io.EOF) {
							errCh <- err
							return
						}
						local.BenignFailures++
					} else if hit {
						local.Hits++
					} else {
						local.Misses++
					}
				}
			}
			mu.Lock()
			report.Requests += local.Requests
			report.BenignRequests += local.BenignRequests
			report.BenignFailures += local.BenignFailures
			report.Hits += local.Hits
			report.Misses += local.Misses
			mu.Unlock()
		}(cl)
	}

	// The attacker interleaves exploit payloads on its own connection.
	if cfg.AttackEvery > 0 {
		attacks := cfg.Requests / cfg.AttackEvery
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < attacks; i++ {
				// A fresh connection per attack: the server drops the
				// connection of a contained exploit.
				c, err := dial(cfg.Addr)
				if err != nil {
					errCh <- err
					return
				}
				line, err := c.set("x", []byte(AttackValue))
				c.close()
				mu.Lock()
				report.Requests++
				report.AttacksSent++
				if err != nil || strings.HasPrefix(line, "SERVER_ERROR") {
					report.AttacksErrored++
				}
				mu.Unlock()
			}
		}()
	}

	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return report, err
	}
	return report, nil
}
