package attackgen_test

import (
	"net"
	"strings"
	"testing"

	"repro/internal/attackgen"
	"repro/internal/core"
	"repro/internal/kvstore"
)

// startServer brings up a real sdrad-kvd-equivalent TCP server.
func startServer(t *testing.T, mode kvstore.Mode) (string, func()) {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := kvstore.NewCache(sys, 1, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := kvstore.NewServer(sys, cache, kvstore.ServerConfig{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ns := kvstore.NewNetServer(srv, nil)
	done := make(chan error, 1)
	go func() { done <- ns.Serve(ln) }()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

func TestAttackRunAgainstSDRaD(t *testing.T) {
	addr, stop := startServer(t, kvstore.ModeSDRaD)
	defer stop()

	report, err := attackgen.Run(attackgen.Config{Addr: addr, Requests: 400, AttackEvery: 40, Clients: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if report.BenignFailures != 0 {
		t.Errorf("benign failures = %d under SDRaD containment", report.BenignFailures)
	}
	if report.AttacksSent == 0 {
		t.Error("no attacks were sent")
	}
	if report.AttacksErrored != report.AttacksSent {
		t.Errorf("attacks errored %d/%d — every exploit should get SERVER_ERROR",
			report.AttacksErrored, report.AttacksSent)
	}
	if report.Hits+report.Misses == 0 {
		t.Error("no GET traffic observed")
	}
	out := report.String()
	if !strings.Contains(out, "containment holds") {
		t.Errorf("report verdict wrong:\n%s", out)
	}
}

func TestAttackRunWithoutAttacks(t *testing.T) {
	addr, stop := startServer(t, kvstore.ModeSDRaD)
	defer stop()
	report, err := attackgen.Run(attackgen.Config{Addr: addr, Requests: 100, AttackEvery: 0, Clients: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if report.AttacksSent != 0 {
		t.Errorf("attacks sent = %d with AttackEvery=0", report.AttacksSent)
	}
	if report.BenignFailures != 0 {
		t.Errorf("benign failures = %d without attacks", report.BenignFailures)
	}
}

func TestAttackRunBadAddress(t *testing.T) {
	if _, err := attackgen.Run(attackgen.Config{Addr: "127.0.0.1:1", Requests: 10, Clients: 1}); err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestReportString(t *testing.T) {
	r := attackgen.Report{Requests: 10, BenignRequests: 8, BenignFailures: 2, AttacksSent: 2, AttacksErrored: 2}
	out := r.String()
	if !strings.Contains(out, "disrupted") {
		t.Errorf("failure verdict missing:\n%s", out)
	}
	if !strings.Contains(out, "25.00%") {
		t.Errorf("failure rate missing:\n%s", out)
	}
}
