package attackgen

import (
	"fmt"

	"repro/internal/workload"
)

// This file is the offline half of the attack generator: deterministic
// malformed-payload synthesis. Where attackgen.Run drives a live server
// over TCP, the Corruptor produces the byte-level garbage itself —
// protocol lines and serialized codec buffers mutated the way a fuzzer
// or a hostile client would mutate them — so the campaign engine
// (internal/campaign) and the parsers' fuzz seeds can exercise the
// reject paths without a network in the loop.
//
// Every mutation is a pure function of the Corruptor's PRNG stream, so a
// campaign seeded twice produces bit-identical malformed payloads.

// Mutation identifies one way a payload can be malformed.
type Mutation uint8

// Mutations, in schedule order.
const (
	// MutBitFlip flips a single bit somewhere in the payload.
	MutBitFlip Mutation = iota + 1
	// MutTruncate cuts the payload short (framing underrun).
	MutTruncate
	// MutInflateLength corrupts a digit run, the classic length-field
	// inflation against text protocols ("set k 0 0 5" → huge count).
	MutInflateLength
	// MutGarbageInsert splices random bytes into the middle.
	MutGarbageInsert
	// MutZeroFill overwrites a span with NUL bytes.
	MutZeroFill
)

// String implements fmt.Stringer.
func (m Mutation) String() string {
	switch m {
	case MutBitFlip:
		return "bit-flip"
	case MutTruncate:
		return "truncate"
	case MutInflateLength:
		return "inflate-length"
	case MutGarbageInsert:
		return "garbage-insert"
	case MutZeroFill:
		return "zero-fill"
	default:
		return fmt.Sprintf("Mutation(%d)", uint8(m))
	}
}

// Mutations returns all mutation kinds.
func Mutations() []Mutation {
	return []Mutation{MutBitFlip, MutTruncate, MutInflateLength, MutGarbageInsert, MutZeroFill}
}

// Corruptor deterministically malforms payloads. Create with
// NewCorruptor; not safe for concurrent use.
type Corruptor struct {
	rng *workload.RNG
}

// NewCorruptor returns a corruptor seeded with seed.
func NewCorruptor(seed uint64) *Corruptor {
	return &Corruptor{rng: workload.NewRNG(seed)}
}

// Corrupt returns a malformed copy of payload (the input is never
// modified) and the mutation applied. Empty payloads get garbage
// inserted, so the result is always non-trivial.
func (c *Corruptor) Corrupt(payload []byte) ([]byte, Mutation) {
	muts := Mutations()
	m := muts[c.rng.Intn(len(muts))]
	if len(payload) == 0 {
		m = MutGarbageInsert
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	switch m {
	case MutBitFlip:
		i := c.rng.Intn(len(out))
		out[i] ^= 1 << uint(c.rng.Intn(8))
	case MutTruncate:
		out = out[:c.rng.Intn(len(out))]
	case MutInflateLength:
		// Find a digit and replace it with a digit run that inflates any
		// length field it sits in. Payloads without digits degrade to a
		// bit flip.
		at := -1
		for i, b := range out {
			if b >= '0' && b <= '9' {
				at = i
				break
			}
		}
		if at < 0 {
			i := c.rng.Intn(len(out))
			out[i] ^= 1 << uint(c.rng.Intn(8))
			m = MutBitFlip
			break
		}
		inflated := append([]byte{}, out[:at]...)
		inflated = append(inflated, []byte(fmt.Sprintf("%d", 1<<40+c.rng.Intn(1<<20)))...)
		inflated = append(inflated, out[at+1:]...)
		out = inflated
	case MutGarbageInsert:
		n := 1 + c.rng.Intn(16)
		garbage := make([]byte, n)
		c.rng.Bytes(garbage)
		at := 0
		if len(out) > 0 {
			at = c.rng.Intn(len(out) + 1)
		}
		spliced := append([]byte{}, out[:at]...)
		spliced = append(spliced, garbage...)
		spliced = append(spliced, out[at:]...)
		out = spliced
	case MutZeroFill:
		from := c.rng.Intn(len(out))
		to := from + 1 + c.rng.Intn(len(out)-from)
		for i := from; i < to; i++ {
			out[i] = 0
		}
	}
	return out, m
}

// MalformedKVCorpus returns n deterministic malformed memcached-text
// command payloads: well-formed commands from a seeded KV workload run
// through the corruptor. The corpus seeds the kvstore parser fuzz target
// and the campaign engine's malformed-payload fault class.
func MalformedKVCorpus(seed uint64, n int) [][]byte {
	c := NewCorruptor(seed)
	gen, err := workload.NewKV(workload.KVConfig{Seed: seed, Keys: 64, ValueSize: 24})
	if err != nil {
		// KVConfig defaults are valid by construction.
		panic(err)
	}
	out := make([][]byte, 0, n)
	for len(out) < n {
		bad, _ := c.Corrupt(workload.RenderKVText(gen.Next()))
		out = append(out, bad)
	}
	return out
}

// MalformedHTTPCorpus returns n deterministic malformed HTTP request
// heads, for the httpd parser fuzz target and the campaign engine.
func MalformedHTTPCorpus(seed uint64, n int) [][]byte {
	c := NewCorruptor(seed)
	gen, err := workload.NewHTTP(workload.HTTPConfig{Seed: seed})
	if err != nil {
		// HTTPConfig defaults are valid by construction.
		panic(err)
	}
	out := make([][]byte, 0, n)
	for len(out) < n {
		bad, _ := c.Corrupt(gen.Next().Raw)
		out = append(out, bad)
	}
	return out
}
