// Package kvstore implements the Memcached-like key-value store used as
// the paper's primary use case.
//
// The compartmentalization pattern follows the SDRaD Memcached retrofit:
// the cache contents (the long-lived 10 GB state whose loss makes a
// restart cost two minutes) live in a dedicated storage domain whose
// protection key no worker ever enables, while request parsing and
// handling run inside per-connection worker domains. A memory-safety bug
// triggered by a malicious request corrupts only the worker domain, which
// is rewound and discarded in microseconds — the cache, and every other
// client's traffic, survive untouched. The same server can run in
// "native" mode (no domains, crash-on-fault + process restart) as the
// baseline.
package kvstore

import (
	"container/list"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
)

// Sentinel errors.
var (
	// ErrTooLarge is returned for values above the per-item limit.
	ErrTooLarge = errors.New("kvstore: value too large")
	// ErrCapacity is returned when an item cannot fit even after evicting
	// everything else.
	ErrCapacity = errors.New("kvstore: item exceeds cache capacity")
)

// MaxValueSize is the per-item value limit (memcached's classic 1 MiB).
const MaxValueSize = 1 << 20

// Cache is the root-protected cache: values live in the heap of a
// storage domain that is never entered, so its protection key is never
// enabled while untrusted request-handling code runs. Items are LRU
// evicted. Not safe for concurrent use.
type Cache struct {
	sys  *core.System
	dom  *core.Domain
	item map[string]*list.Element
	lru  *list.List // front = most recently used
	used uint64
	cap  uint64

	hits      uint64
	misses    uint64
	evictions uint64
	expired   uint64
}

type entry struct {
	key  string
	addr mem.Addr
	size int
	// flags is the client's opaque flags word (memcached semantics).
	flags uint32
	// expireAt is the virtual time after which the item is dead
	// (0 = never expires).
	expireAt time.Duration
}

// NewCache creates a cache backed by a fresh storage domain at udi with
// the given capacity in bytes.
func NewCache(sys *core.System, udi core.UDI, capacityBytes uint64) (*Cache, error) {
	if capacityBytes == 0 {
		capacityBytes = 64 << 20
	}
	// Size the storage domain's heap to the capacity (pages, rounded up,
	// plus allocator slack).
	maxPages := int(capacityBytes/mem.PageSize)*2 + 64
	dom, err := sys.InitDomain(udi, core.DomainConfig{
		HeapPages:    64,
		MaxHeapPages: maxPages,
		StackPages:   1,
	})
	if err != nil {
		return nil, fmt.Errorf("kvstore: storage domain: %w", err)
	}
	return &Cache{
		sys:  sys,
		dom:  dom,
		item: make(map[string]*list.Element),
		lru:  list.New(),
		cap:  capacityBytes,
	}, nil
}

// StorageUDI returns the storage domain's UDI.
func (c *Cache) StorageUDI() core.UDI { return c.dom.UDI() }

// StorageKey returns the storage domain's protection key (used by tests
// to verify workers cannot touch it).
func (c *Cache) StorageKey() mem.Addr { return mem.Addr(c.dom.Key()) }

// Get returns a copy of the value for key, with a hit flag. Expired
// items are lazily removed and count as misses (memcached semantics).
func (c *Cache) Get(key string) ([]byte, bool, error) {
	el, ok := c.item[key]
	if !ok {
		c.misses++
		return nil, false, nil
	}
	e := el.Value.(*entry)
	if e.expireAt > 0 && c.sys.Clock().Now() >= e.expireAt {
		if err := c.removeElement(el); err != nil {
			return nil, false, err
		}
		c.expired++
		c.misses++
		return nil, false, nil
	}
	val, err := c.sys.CopyFromDomain(e.addr, e.size)
	if err != nil {
		return nil, false, fmt.Errorf("kvstore: get %q: %w", key, err)
	}
	c.lru.MoveToFront(el)
	c.hits++
	return val, true, nil
}

// Set stores a copy of val under key, evicting LRU items as needed.
func (c *Cache) Set(key string, val []byte) error {
	return c.SetItem(key, val, 0, 0)
}

// SetTTL stores a copy of val under key with a lifetime (0 = no expiry),
// measured in virtual time.
func (c *Cache) SetTTL(key string, val []byte, ttl time.Duration) error {
	return c.SetItem(key, val, ttl, 0)
}

// SetItem stores a copy of val with a lifetime and an opaque flags word.
func (c *Cache) SetItem(key string, val []byte, ttl time.Duration, flags uint32) error {
	if len(val) > MaxValueSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(val))
	}
	if uint64(len(val)) > c.cap {
		return fmt.Errorf("%w: %d > %d", ErrCapacity, len(val), c.cap)
	}
	// Replace in place if present.
	if el, ok := c.item[key]; ok {
		if err := c.removeElement(el); err != nil {
			return err
		}
	}
	for c.used+uint64(len(val)) > c.cap {
		if err := c.evictOne(); err != nil {
			return err
		}
	}
	size := len(val)
	store := val
	if size == 0 {
		// The allocator needs at least one byte; remember true size.
		store = []byte{0}
	}
	addr, err := c.dom.Heap().Alloc(len(store))
	if err != nil {
		return fmt.Errorf("kvstore: set %q: %w", key, err)
	}
	if err := c.sys.CopyToDomain(addr, store); err != nil {
		return fmt.Errorf("kvstore: set %q: %w", key, err)
	}
	var expireAt time.Duration
	if ttl > 0 {
		expireAt = c.sys.Clock().Now() + ttl
	}
	el := c.lru.PushFront(&entry{key: key, addr: addr, size: size, flags: flags, expireAt: expireAt})
	c.item[key] = el
	c.used += uint64(size)
	return nil
}

// Flags returns the flags word stored with key (0 when absent).
func (c *Cache) Flags(key string) uint32 {
	if el, ok := c.item[key]; ok {
		return el.Value.(*entry).flags
	}
	return 0
}

// Delete removes key, reporting whether it was present.
func (c *Cache) Delete(key string) (bool, error) {
	el, ok := c.item[key]
	if !ok {
		return false, nil
	}
	if err := c.removeElement(el); err != nil {
		return false, err
	}
	return true, nil
}

func (c *Cache) evictOne() error {
	back := c.lru.Back()
	if back == nil {
		return ErrCapacity
	}
	c.evictions++
	return c.removeElement(back)
}

func (c *Cache) removeElement(el *list.Element) error {
	e := el.Value.(*entry)
	if err := c.dom.Heap().Free(e.addr); err != nil {
		return fmt.Errorf("kvstore: free %q: %w", e.key, err)
	}
	c.lru.Remove(el)
	delete(c.item, e.key)
	c.used -= uint64(e.size)
	return nil
}

// Flush drops every item (the cold-cache state after a crash without
// state reload).
func (c *Cache) Flush() error {
	if err := c.dom.Heap().Reset(); err != nil {
		return fmt.Errorf("kvstore: flush: %w", err)
	}
	c.item = make(map[string]*list.Element)
	c.lru = list.New()
	c.used = 0
	return nil
}

// Items returns the number of cached items.
func (c *Cache) Items() int { return len(c.item) }

// Bytes returns the cached value bytes (the application state size that
// a restart must repopulate).
func (c *Cache) Bytes() uint64 { return c.used }

// Capacity returns the configured capacity.
func (c *Cache) Capacity() uint64 { return c.cap }

// CacheStats reports hit/miss/eviction/expiry counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Expired   uint64
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Expired: c.expired}
}
