package kvstore

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/persist"
)

// This file wires the durability engine (internal/persist) into the
// server. The contract mirrors the SDRaD commit rule: a mutation is
// staged when the normal apply path executes it, and the staged records
// flush to the WAL as one group commit when the enclosing batch
// resolves — one framed append and at most one fsync per batch,
// regardless of batch size. Requests whose parse was rewound
// (violation, budget preemption) never reach apply, so a detection
// logically aborts the batch's would-be records: the log records
// exactly the acknowledged, sweep-verified history.
//
// Snapshots checkpoint the storage domain's heap as raw page images:
// the allocator's metadata is in-band, so the heap travels as pages
// plus the host-side cache index (serialized into the snapshot meta
// blob). Recovery restores the pages at their original addresses,
// re-derives the allocator state, runs the same integrity sweep a
// domain exit runs, and replays the committed WAL suffix through the
// normal apply path.
//
// Two documented approximations: GETs are not logged, so LRU *eviction
// order* after recovery reflects write recency only (exact state
// recovery is guaranteed when no eviction occurred since the last
// snapshot); and item expiries are stored as absolute virtual times,
// so a recovered process — whose virtual clock restarts — honors at
// least the remaining lifetime.

// PersistConfig enables durable persistence on a Server (or, via
// NewPool, one subdirectory per shard).
type PersistConfig struct {
	// Dir is the store directory. Empty disables persistence —
	// memory-only operation, byte-identical to a server built without
	// the config.
	Dir string
	// Fsync syncs the WAL on every group commit (ack == durable).
	Fsync bool
	// SnapshotEvery takes an incremental snapshot every N committed
	// batches (0 = never; the WAL then holds the full history).
	SnapshotEvery int
	// Metrics receives durability counters (optional; shared across
	// shards when set on a pool config).
	Metrics *metrics.Persist
}

// Mutation record opcodes.
const (
	recSet    = 'S'
	recDelete = 'D'
)

// encodeSet builds a SET record: opcode, key, flags, the absolute
// virtual expiry, and the value bytes.
//
//	['S'][u32 keylen][key][u32 flags][i64 expireAt][value...]
func encodeSet(key string, flags uint32, expireAt time.Duration, val []byte) []byte {
	out := make([]byte, 0, 1+4+len(key)+4+8+len(val))
	out = append(out, recSet)
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(key)))
	out = append(out, b8[:4]...)
	out = append(out, key...)
	binary.LittleEndian.PutUint32(b8[:4], flags)
	out = append(out, b8[:4]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(expireAt))
	out = append(out, b8[:]...)
	return append(out, val...)
}

// encodeDelete builds a DELETE record: ['D'][key...].
func encodeDelete(key string) []byte {
	out := make([]byte, 0, 1+len(key))
	out = append(out, recDelete)
	return append(out, key...)
}

// mutation is one decoded WAL record.
type mutation struct {
	op       byte
	key      string
	flags    uint32
	expireAt time.Duration
	value    []byte
}

func decodeRecord(rec []byte) (mutation, error) {
	if len(rec) == 0 {
		return mutation{}, fmt.Errorf("kvstore: empty wal record")
	}
	switch rec[0] {
	case recDelete:
		return mutation{op: recDelete, key: string(rec[1:])}, nil
	case recSet:
		rest := rec[1:]
		if len(rest) < 4 {
			return mutation{}, fmt.Errorf("kvstore: wal set record truncated")
		}
		klen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(len(rest)) < uint64(klen)+12 {
			return mutation{}, fmt.Errorf("kvstore: wal set record truncated")
		}
		key := string(rest[:klen])
		rest = rest[klen:]
		flags := binary.LittleEndian.Uint32(rest)
		expire := time.Duration(binary.LittleEndian.Uint64(rest[4:12]))
		return mutation{op: recSet, key: key, flags: flags, expireAt: expire, value: rest[12:]}, nil
	default:
		return mutation{}, fmt.Errorf("kvstore: unknown wal opcode %#x", rec[0])
	}
}

// indexEntry is one cache-index item inside the snapshot meta blob.
type indexEntry struct {
	key      string
	addr     mem.Addr
	size     int
	flags    uint32
	expireAt time.Duration
}

// encodeMeta serializes the snapshot metadata: the heap's region
// geometry plus the cache index. Items are emitted LRU-last first
// (back to front), so the restore's PushFront loop reproduces the
// recency order.
//
//	[u32 nregions]{u64 base, u32 npages, u64 used}*
//	[u32 nitems]{u32 keylen, key, u64 addr, u32 size, u32 flags, u64 expireAt}*
func encodeMeta(regions []alloc.RegionImage, c *Cache) []byte {
	var b8 [8]byte
	out := make([]byte, 0, 8+20*len(regions)+32*c.Items())
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(regions)))
	out = append(out, b8[:4]...)
	for _, r := range regions {
		binary.LittleEndian.PutUint64(b8[:], uint64(r.Base))
		out = append(out, b8[:]...)
		binary.LittleEndian.PutUint32(b8[:4], uint32(r.NPages))
		out = append(out, b8[:4]...)
		binary.LittleEndian.PutUint64(b8[:], r.Used)
		out = append(out, b8[:]...)
	}
	binary.LittleEndian.PutUint32(b8[:4], uint32(c.lru.Len()))
	out = append(out, b8[:4]...)
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		binary.LittleEndian.PutUint32(b8[:4], uint32(len(e.key)))
		out = append(out, b8[:4]...)
		out = append(out, e.key...)
		binary.LittleEndian.PutUint64(b8[:], uint64(e.addr))
		out = append(out, b8[:]...)
		binary.LittleEndian.PutUint32(b8[:4], uint32(e.size))
		out = append(out, b8[:4]...)
		binary.LittleEndian.PutUint32(b8[:4], e.flags)
		out = append(out, b8[:4]...)
		binary.LittleEndian.PutUint64(b8[:], uint64(e.expireAt))
		out = append(out, b8[:]...)
	}
	return out
}

func decodeMeta(meta []byte) ([]alloc.RegionImage, []indexEntry, error) {
	bad := func(what string) ([]alloc.RegionImage, []indexEntry, error) {
		return nil, nil, fmt.Errorf("kvstore: snapshot meta: %s truncated", what)
	}
	if len(meta) < 4 {
		return bad("region count")
	}
	nr := binary.LittleEndian.Uint32(meta)
	rest := meta[4:]
	if uint64(nr)*20 > uint64(len(rest)) {
		return bad("regions")
	}
	regions := make([]alloc.RegionImage, nr)
	for i := range regions {
		regions[i] = alloc.RegionImage{
			Base:   mem.Addr(binary.LittleEndian.Uint64(rest)),
			NPages: int(binary.LittleEndian.Uint32(rest[8:])),
			Used:   binary.LittleEndian.Uint64(rest[12:]),
		}
		rest = rest[20:]
	}
	if len(rest) < 4 {
		return bad("item count")
	}
	ni := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(ni)*24 > uint64(len(rest)) {
		return bad("items")
	}
	items := make([]indexEntry, 0, ni)
	for i := uint32(0); i < ni; i++ {
		if len(rest) < 4 {
			return bad("item key length")
		}
		klen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(len(rest)) < uint64(klen)+24 {
			return bad("item")
		}
		key := string(rest[:klen])
		rest = rest[klen:]
		items = append(items, indexEntry{
			key:      key,
			addr:     mem.Addr(binary.LittleEndian.Uint64(rest)),
			size:     int(binary.LittleEndian.Uint32(rest[8:])),
			flags:    binary.LittleEndian.Uint32(rest[12:]),
			expireAt: time.Duration(binary.LittleEndian.Uint64(rest[16:24])),
		})
		rest = rest[24:]
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("kvstore: snapshot meta: %d trailing bytes", len(rest))
	}
	return regions, items, nil
}

// restoreIndex rebuilds the cache's host-side index from snapshot
// items (LRU-last first, as encodeMeta emits them). The entries' value
// addresses point into the restored storage heap.
func (c *Cache) restoreIndex(items []indexEntry) {
	c.item = make(map[string]*list.Element, len(items))
	c.lru = list.New()
	c.used = 0
	for _, it := range items {
		el := c.lru.PushFront(&entry{
			key: it.key, addr: it.addr, size: it.size,
			flags: it.flags, expireAt: it.expireAt,
		})
		c.item[it.key] = el
		c.used += uint64(it.size)
	}
}

// setExpire overwrites key's absolute expiry — the WAL replay path
// restoring the exact expiry the original SET computed.
func (c *Cache) setExpire(key string, at time.Duration) {
	if el, ok := c.item[key]; ok {
		el.Value.(*entry).expireAt = at
	}
}

// Dump copies every resident item out of the storage domain, in no
// particular recency meaning, without touching the hit/miss counters or
// the LRU order. Differential recovery oracles digest its result.
func (c *Cache) Dump() (map[string][]byte, error) {
	out := make(map[string][]byte, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.size == 0 {
			out[e.key] = []byte{}
			continue
		}
		val, err := c.sys.CopyFromDomain(e.addr, e.size)
		if err != nil {
			return nil, fmt.Errorf("kvstore: dump %q: %w", e.key, err)
		}
		out[e.key] = val
	}
	return out, nil
}

// AttachStore attaches a durability backend to the server: it runs
// recovery (restore the snapshot, verify the heap with the integrity
// sweep, replay the committed WAL suffix through the normal apply
// path) and then begins logging. snapEvery > 0 snapshots every N
// committed batches. NewServer calls this for PersistConfig; tests
// attach instrumented stores directly.
func (s *Server) AttachStore(st persist.Store, snapEvery int) error {
	if s.store != nil {
		return fmt.Errorf("kvstore: store already attached")
	}
	heap := s.cache.dom.Heap()
	// Tracking must be on before any write a later incremental capture
	// has to observe — including the restore writes below.
	heap.TrackModified()
	snap, records, err := st.Recover()
	if err != nil {
		return fmt.Errorf("kvstore: recover: %w", err)
	}
	if snap != nil {
		regions, items, err := decodeMeta(snap.Meta)
		if err != nil {
			return err
		}
		img := &alloc.HeapImage{Regions: regions, Pages: make([]alloc.PageImage, len(snap.Pages))}
		for i, p := range snap.Pages {
			img.Pages[i] = alloc.PageImage{PN: p.PN, Data: p.Data}
		}
		if err := heap.RestoreImage(img); err != nil {
			return fmt.Errorf("kvstore: restore heap: %w", err)
		}
		// The same sweep a domain exit runs proves the restored heap
		// sound before any recovered value is served.
		if err := heap.CheckIntegrity(); err != nil {
			return fmt.Errorf("kvstore: restored heap failed integrity sweep: %w", err)
		}
		s.cache.restoreIndex(items)
		s.snapCount++
	}
	if len(records) > 0 {
		s.replaying = true
		for i, rec := range records {
			if err := s.applyRecord(rec); err != nil {
				s.replaying = false
				return fmt.Errorf("kvstore: replay record %d: %w", i, err)
			}
		}
		s.replaying = false
	}
	s.store = st
	s.snapEvery = snapEvery
	return nil
}

// applyRecord replays one recovered mutation through the cache's
// normal mutation entry points.
func (s *Server) applyRecord(rec []byte) error {
	m, err := decodeRecord(rec)
	if err != nil {
		return err
	}
	switch m.op {
	case recSet:
		if err := s.cache.SetItem(m.key, m.value, 0, m.flags); err != nil {
			return err
		}
		s.cache.setExpire(m.key, m.expireAt)
		return nil
	default:
		_, err := s.cache.Delete(m.key)
		return err
	}
}

// stageSet stages the SET that apply just executed. The staged expiry
// is read back from the entry, so replay restores the exact absolute
// virtual time the original computed.
func (s *Server) stageSet(key string, flags uint32, val []byte) {
	if s.store == nil || s.replaying {
		return
	}
	var expireAt time.Duration
	if el, ok := s.cache.item[key]; ok {
		expireAt = el.Value.(*entry).expireAt
	}
	s.pending = append(s.pending, encodeSet(key, flags, expireAt, val))
}

// stageDelete stages a DELETE that found its key.
func (s *Server) stageDelete(key string) {
	if s.store == nil || s.replaying {
		return
	}
	s.pending = append(s.pending, encodeDelete(key))
}

// flushWAL group-commits the staged records: one Append (one frame, at
// most one fsync) for everything the resolved batch acknowledged. On
// the configured cadence it then takes an incremental snapshot.
//
// The two failure modes are deliberately asymmetric. A failed Append
// means the batch's records are NOT durable while its mutations are
// already in the cache: the caller withdraws the acks and the shard
// fail-stops (persistErr) so the divergent in-memory state can never
// reach a reader or a snapshot. A failed snapshot is the opposite —
// the records ARE durably committed, so the acks must stand; the shard
// degrades to log-only operation (snapErr) and retries on the next
// cadence point (the Store contract retains the delta).
func (s *Server) flushWAL() error {
	if s.store == nil || len(s.pending) == 0 {
		return nil
	}
	recs := s.pending
	s.pending = nil
	if err := s.store.Append(recs); err != nil {
		err = fmt.Errorf("kvstore: wal commit: %w", err)
		s.persistErr = err
		return err
	}
	s.sinceSnap++
	if s.snapEvery > 0 && s.sinceSnap >= s.snapEvery {
		if err := s.snapshotNow(); err != nil {
			// Degraded, never nacked: everything acknowledged is in the
			// WAL, which recovery replays whether or not a newer snapshot
			// exists. The WAL just keeps growing until a snapshot lands.
			s.snapErr = err
		}
	}
	return nil
}

// failStopResponse is the response every request receives after the
// shard fail-stopped (see flushWAL and ErrShardFailed).
func (s *Server) failStopResponse() Response {
	return Response{Err: fmt.Errorf("%w: %w", ErrShardFailed, s.persistErr)}
}

// SnapshotErr returns the last snapshot failure, nil once a later
// snapshot commits — the observable "degraded log-only" condition.
func (s *Server) SnapshotErr() error { return s.snapErr }

// snapshotNow checkpoints the storage heap: the first snapshot of a
// process captures every nonzero page, later ones only the pages
// modified since the previous capture. The capture resets the
// modified-page baseline even when the backend commit then fails; that
// is safe because the Store contract requires a failed Snapshot to
// retain the handed-in delta, so the retry on the next cadence point
// (sinceSnap is not reset on failure) commits the union.
func (s *Server) snapshotNow() error {
	heap := s.cache.dom.Heap()
	img, err := heap.CaptureImage(s.snapCount > 0)
	if err != nil {
		return fmt.Errorf("kvstore: snapshot capture: %w", err)
	}
	pages := make([]persist.SnapshotPage, len(img.Pages))
	for i, p := range img.Pages {
		pages[i] = persist.SnapshotPage{PN: p.PN, Data: p.Data}
	}
	if err := s.store.Snapshot(encodeMeta(img.Regions, s.cache), pages); err != nil {
		return fmt.Errorf("kvstore: snapshot commit: %w", err)
	}
	s.snapCount++
	s.sinceSnap = 0
	s.snapErr = nil
	return nil
}

// Close flushes any staged records and releases the durability backend.
// A server without one closes trivially.
func (s *Server) Close() error {
	if s.store == nil {
		return nil
	}
	ferr := s.flushWAL()
	cerr := s.store.Close()
	s.store = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Store returns the attached durability backend (nil when memory-only).
func (s *Server) Store() persist.Store { return s.store }

// PersistErr returns the fatal group-commit failure that fail-stopped
// the shard, nil while the shard serves (the health surface's
// fail-stop signal).
func (s *Server) PersistErr() error { return s.persistErr }

// Drained reports whether a graceful drain completed on this shard.
func (s *Server) Drained() bool { return s.drained }

// Drain finishes the shard gracefully: commit any staged WAL records,
// take a final snapshot so recovery is cheap, release the store, and
// stop accepting requests. The WAL commit precedes the drained flag —
// the drain contract is that every acknowledged write is durable and no
// later request can be acknowledged at all. A fail-stopped shard drains
// without touching durable state (its WAL already holds exactly the
// acked prefix); a snapshot failure degrades the drain (the WAL alone
// recovers) rather than failing it. Idempotent.
func (s *Server) Drain() error {
	if s.drained {
		return nil
	}
	s.drained = true
	if s.store == nil {
		return nil
	}
	var ferr, serr error
	if s.persistErr == nil {
		ferr = s.flushWAL()
		if ferr == nil {
			if err := s.snapshotNow(); err != nil {
				// Degrade, don't fail: the committed WAL recovers alone.
				s.snapErr = err
				serr = err
			}
		}
	}
	cerr := s.store.Close()
	s.store = nil
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		return cerr
	}
	return serr
}
