package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/workload"
)

// TestRecoveryHammer drives concurrent writers against a persistent
// pool, kills one shard's store mid-run (from a different goroutine —
// the race detector checks the store's locking), reopens the pool, and
// asserts the durability contract per key: no acknowledged write lost,
// no unacknowledged write surviving. Run under `make race` as the
// concurrency half of the recovery test suite.
func TestRecoveryHammer(t *testing.T) {
	dir := t.TempDir()
	cfg := ServerConfig{
		Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond,
		Persist: &PersistConfig{Dir: dir, Fsync: false, SnapshotEvery: 16},
	}
	pool, err := NewPool(core.DefaultConfig(), cfg, 4, 64<<20)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}

	const (
		writers      = 8
		keysPerG     = 5
		seqsPerPhase = 40
	)
	val := func(key string, seq int) string { return fmt.Sprintf("%s#%06d", key, seq) }

	// lastAcked[key] is the highest sequence the pool acknowledged;
	// lastTried[key] the highest submitted. Written only by the key's
	// owning goroutine, read by the test after Wait — no locking needed.
	lastAcked := make([]map[string]int, writers)
	lastTried := make([]map[string]int, writers)

	phase := func(g, fromSeq, toSeq int) {
		for seq := fromSeq; seq < toSeq; seq++ {
			for k := 0; k < keysPerG; k++ {
				key := fmt.Sprintf("g%d-k%d", g, k)
				lastTried[g][key] = seq
				resp := pool.Handle(g, workload.Request{
					Op: workload.OpSet, Key: key, Value: []byte(val(key, seq)),
				})
				if resp.OK && resp.Err == nil {
					lastAcked[g][key] = seq
				}
			}
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		lastAcked[g] = map[string]int{}
		lastTried[g] = map[string]int{}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			phase(g, 1, seqsPerPhase)
		}(g)
	}
	wg.Wait()

	// Mid-run crash: arm the kill on one shard from this goroutine while
	// the writers hammer on — the cross-goroutine surface the race
	// detector is here to check.
	fs, ok := pool.Shard(1).Store().(*persist.FileStore)
	if !ok {
		t.Fatalf("shard store is %T", pool.Shard(1).Store())
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			phase(g, seqsPerPhase, 2*seqsPerPhase)
		}(g)
	}
	fs.KillNextAppend(0.5)
	wg.Wait()

	if err := pool.Close(); err != nil && !errors.Is(err, persist.ErrClosed) {
		t.Fatalf("Close: %v", err)
	}

	pool2, err := NewPool(core.DefaultConfig(), cfg, 4, 64<<20)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := pool2.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	sawKill := false
	for g := 0; g < writers; g++ {
		for key, tried := range lastTried[g] {
			acked := lastAcked[g][key]
			if acked < tried {
				sawKill = true
			}
			resp := pool2.Handle(0, workload.Request{Op: workload.OpGet, Key: key})
			if resp.Err != nil {
				t.Fatalf("recovered get %q: %v", key, resp.Err)
			}
			if !resp.OK {
				t.Fatalf("key %q lost entirely (acked seq %d)", key, acked)
			}
			var gotSeq int
			if n, err := fmt.Sscanf(string(resp.Value), key+"#%06d", &gotSeq); n != 1 || err != nil {
				t.Fatalf("key %q recovered malformed value %q", key, resp.Value)
			}
			// No acknowledged write lost...
			if gotSeq < acked {
				t.Errorf("key %q recovered seq %d < last acked %d", key, gotSeq, acked)
			}
			// ...and nothing that was never submitted survives.
			if gotSeq > tried {
				t.Errorf("key %q recovered seq %d > last tried %d", key, gotSeq, tried)
			}
			if want := val(key, gotSeq); string(resp.Value) != want {
				t.Errorf("key %q value %q is not the submitted bytes %q", key, resp.Value, want)
			}
		}
	}
	if !sawKill {
		t.Log("kill landed after the last write; contract still verified, but consider more phases")
	}
}
