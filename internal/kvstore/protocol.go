package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/workload"
)

// This file implements the subset of the memcached text protocol the
// TCP demo binary (cmd/sdrad-kvd) speaks:
//
//	get <key>\r\n
//	set <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//	delete <key>\r\n
//	stats\r\n
//	quit\r\n
//
// plus two gateway extensions:
//
//	auth <token>\r\n    (bind the connection to a tenant)
//	health\r\n          (shard + tenant state as STAT lines)
//
// and the paginated scan extension:
//
//	scan <prefix> <limit> [cursor]\r\n
//
// where prefix "*" means every key, limit is clamped to MaxScanPage,
// and a non-empty cursor resumes strictly after that key. A scan page
// answers with VALUE lines, then "SCAN_MORE <cursor>\r\n" when more
// remain, then END. Every page is admitted through the tenant's
// gateway quota like any other request.
//
// Responses follow the memcached wire format (VALUE/END, STORED,
// DELETED, NOT_FOUND, ERROR, SERVER_ERROR <msg>).

// ErrProtocol is returned for malformed protocol input.
var ErrProtocol = errors.New("kvstore: protocol error")

// Command is a parsed protocol command.
type Command struct {
	// Req is the key-value operation for get/set/delete commands.
	Req workload.Request
	// Stats and Quit flag the non-data commands.
	Stats bool
	Quit  bool
	// Auth flags the gateway extension "auth <token>"; Token carries the
	// presented credential.
	Auth  bool
	Token string
	// Health flags the gateway extension "health" (shard + tenant
	// state).
	Health bool
	// Scan flags the paginated scan extension; ScanPrefix, ScanCursor,
	// and ScanLimit carry its arguments (empty prefix = every key).
	Scan       bool
	ScanPrefix string
	ScanCursor string
	ScanLimit  int
}

// ReadCommand reads and parses one command from r.
func ReadCommand(r *bufio.Reader) (Command, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return Command{}, err
	}
	line = strings.TrimRight(line, "\r\n")
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Command{}, fmt.Errorf("%w: empty command", ErrProtocol)
	}
	switch fields[0] {
	case "get", "gets":
		if len(fields) != 2 {
			return Command{}, fmt.Errorf("%w: get wants 1 key", ErrProtocol)
		}
		return Command{Req: workload.Request{Op: workload.OpGet, Key: fields[1]}}, nil
	case "delete":
		if len(fields) != 2 {
			return Command{}, fmt.Errorf("%w: delete wants 1 key", ErrProtocol)
		}
		return Command{Req: workload.Request{Op: workload.OpDelete, Key: fields[1]}}, nil
	case "set":
		if len(fields) != 5 {
			return Command{}, fmt.Errorf("%w: set wants key flags exptime bytes", ErrProtocol)
		}
		flags, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return Command{}, fmt.Errorf("%w: bad flags %q", ErrProtocol, fields[2])
		}
		exp, err := strconv.Atoi(fields[3])
		if err != nil || exp < 0 {
			return Command{}, fmt.Errorf("%w: bad exptime %q", ErrProtocol, fields[3])
		}
		n, err := strconv.Atoi(fields[4])
		if err != nil || n < 0 || n > MaxValueSize {
			return Command{}, fmt.Errorf("%w: bad byte count %q", ErrProtocol, fields[4])
		}
		data := make([]byte, n+2)
		if _, err := io.ReadFull(r, data); err != nil {
			return Command{}, fmt.Errorf("%w: short data block: %v", ErrProtocol, err)
		}
		if data[n] != '\r' || data[n+1] != '\n' {
			return Command{}, fmt.Errorf("%w: data block not CRLF terminated", ErrProtocol)
		}
		return Command{Req: workload.Request{
			Op:    workload.OpSet,
			Key:   fields[1],
			Value: data[:n],
			TTL:   time.Duration(exp) * time.Second,
			Flags: uint32(flags),
		}}, nil
	case "stats":
		return Command{Stats: true}, nil
	case "auth":
		if len(fields) != 2 {
			return Command{}, fmt.Errorf("%w: auth wants 1 token", ErrProtocol)
		}
		return Command{Auth: true, Token: fields[1]}, nil
	case "health":
		return Command{Health: true}, nil
	case "scan":
		if len(fields) != 3 && len(fields) != 4 {
			return Command{}, fmt.Errorf("%w: scan wants prefix limit [cursor]", ErrProtocol)
		}
		limit, err := strconv.Atoi(fields[2])
		if err != nil || limit <= 0 {
			return Command{}, fmt.Errorf("%w: bad scan limit %q", ErrProtocol, fields[2])
		}
		if limit > MaxScanPage {
			limit = MaxScanPage
		}
		prefix := fields[1]
		if prefix == "*" {
			prefix = ""
		}
		cmd := Command{Scan: true, ScanPrefix: prefix, ScanLimit: limit}
		if len(fields) == 4 {
			cmd.ScanCursor = fields[3]
		}
		return cmd, nil
	case "quit":
		return Command{Quit: true}, nil
	default:
		return Command{}, fmt.Errorf("%w: unknown command %q", ErrProtocol, fields[0])
	}
}

// WriteResponse renders resp for req in the memcached wire format.
func WriteResponse(w io.Writer, req workload.Request, resp Response) error {
	switch {
	case resp.Err != nil:
		_, err := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", resp.Err)
		return err
	case req.Op == workload.OpGet && resp.OK:
		if _, err := fmt.Fprintf(w, "VALUE %s %d %d\r\n", req.Key, resp.Flags, len(resp.Value)); err != nil {
			return err
		}
		if _, err := w.Write(resp.Value); err != nil {
			return err
		}
		_, err := io.WriteString(w, "\r\nEND\r\n")
		return err
	case req.Op == workload.OpGet:
		_, err := io.WriteString(w, "END\r\n")
		return err
	case req.Op == workload.OpSet:
		_, err := io.WriteString(w, "STORED\r\n")
		return err
	case req.Op == workload.OpDelete && resp.OK:
		_, err := io.WriteString(w, "DELETED\r\n")
		return err
	case req.Op == workload.OpDelete:
		_, err := io.WriteString(w, "NOT_FOUND\r\n")
		return err
	default:
		_, err := io.WriteString(w, "ERROR\r\n")
		return err
	}
}

// WriteScanResponse renders one scan page: a VALUE line (with data
// block) per item in key order, then "SCAN_MORE <cursor>" when the
// table has more matching keys, then END.
func WriteScanResponse(w io.Writer, res ScanResult) error {
	for _, it := range res.Items {
		if _, err := fmt.Fprintf(w, "VALUE %s %d %d\r\n", it.Key, it.Flags, len(it.Value)); err != nil {
			return err
		}
		if _, err := w.Write(it.Value); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\r\n"); err != nil {
			return err
		}
	}
	if res.Cursor != "" {
		if _, err := fmt.Fprintf(w, "SCAN_MORE %s\r\n", res.Cursor); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "END\r\n")
	return err
}

// StatsSource is the accounting surface the stats command renders; both
// Server and Pool implement it (the pool's counters are aggregates over
// its shards).
type StatsSource interface {
	Stats() ServerStats
	CacheStats() CacheStats
	CacheBytes() uint64
	CacheItems() int
}

// WriteStats renders the stats command output.
func WriteStats(w io.Writer, s StatsSource) error {
	st := s.Stats()
	cs := s.CacheStats()
	rows := []struct {
		k string
		v uint64
	}{
		{"cmd_total", st.Requests},
		{"contained_violations", st.Violations},
		{"crashes", st.Crashes},
		{"dropped", st.Dropped},
		{"get_hits", cs.Hits},
		{"get_misses", cs.Misses},
		{"evictions", cs.Evictions},
		{"expired", cs.Expired},
		{"bytes", s.CacheBytes()},
		{"curr_items", uint64(s.CacheItems())},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "STAT %s %d\r\n", r.k, r.v); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "END\r\n")
	return err
}
