package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func reader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

func TestReadCommandGet(t *testing.T) {
	cmd, err := ReadCommand(reader("get foo\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Req.Op != workload.OpGet || cmd.Req.Key != "foo" {
		t.Errorf("cmd = %+v", cmd)
	}
	// gets is an accepted alias.
	cmd, err = ReadCommand(reader("gets bar\r\n"))
	if err != nil || cmd.Req.Key != "bar" {
		t.Errorf("gets: %+v, %v", cmd, err)
	}
}

func TestReadCommandSet(t *testing.T) {
	cmd, err := ReadCommand(reader("set k 0 0 5\r\nhello\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Req.Op != workload.OpSet || cmd.Req.Key != "k" || string(cmd.Req.Value) != "hello" {
		t.Errorf("cmd = %+v", cmd)
	}
}

func TestReadCommandSetEmptyValue(t *testing.T) {
	cmd, err := ReadCommand(reader("set k 0 0 0\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmd.Req.Value) != 0 {
		t.Errorf("value = %q", cmd.Req.Value)
	}
}

func TestReadCommandDeleteStatsQuit(t *testing.T) {
	cmd, err := ReadCommand(reader("delete k\r\n"))
	if err != nil || cmd.Req.Op != workload.OpDelete {
		t.Errorf("delete: %+v, %v", cmd, err)
	}
	cmd, err = ReadCommand(reader("stats\r\n"))
	if err != nil || !cmd.Stats {
		t.Errorf("stats: %+v, %v", cmd, err)
	}
	cmd, err = ReadCommand(reader("quit\r\n"))
	if err != nil || !cmd.Quit {
		t.Errorf("quit: %+v, %v", cmd, err)
	}
}

func TestReadCommandMalformed(t *testing.T) {
	cases := []string{
		"\r\n",                      // empty
		"get\r\n",                   // missing key
		"get a b\r\n",               // too many keys
		"delete\r\n",                // missing key
		"set k 0 0\r\n",             // missing byte count
		"set k 0 0 abc\r\n",         // non-numeric count
		"set k 0 0 -1\r\n",          // negative count
		"set k 0 0 99999999\r\n",    // over limit
		"set k 0 0 5\r\nhelloXX",    // bad terminator
		"frobnicate\r\n",            // unknown command
		"set k 0 0 10\r\nshort\r\n", // short data
	}
	for _, in := range cases {
		if _, err := ReadCommand(reader(in)); err == nil {
			t.Errorf("%q accepted", in)
		}
	}
	// Protocol errors carry the sentinel.
	if _, err := ReadCommand(reader("bogus\r\n")); !errors.Is(err, ErrProtocol) {
		t.Errorf("err = %v, want ErrProtocol", err)
	}
}

func TestReadCommandEOF(t *testing.T) {
	if _, err := ReadCommand(reader("")); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestWriteResponseForms(t *testing.T) {
	cases := []struct {
		name string
		req  workload.Request
		resp Response
		want string
	}{
		{"get hit", workload.Request{Op: workload.OpGet, Key: "k"},
			Response{OK: true, Value: []byte("vv")}, "VALUE k 0 2\r\nvv\r\nEND\r\n"},
		{"get miss", workload.Request{Op: workload.OpGet, Key: "k"},
			Response{}, "END\r\n"},
		{"set", workload.Request{Op: workload.OpSet, Key: "k"},
			Response{OK: true}, "STORED\r\n"},
		{"delete hit", workload.Request{Op: workload.OpDelete, Key: "k"},
			Response{OK: true}, "DELETED\r\n"},
		{"delete miss", workload.Request{Op: workload.OpDelete, Key: "k"},
			Response{}, "NOT_FOUND\r\n"},
		{"error", workload.Request{Op: workload.OpGet, Key: "k"},
			Response{Err: errors.New("boom")}, "SERVER_ERROR boom\r\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteResponse(&buf, c.req, c.resp); err != nil {
				t.Fatal(err)
			}
			if buf.String() != c.want {
				t.Errorf("got %q, want %q", buf.String(), c.want)
			}
		})
	}
}

func TestWriteStats(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig())
	cache, _ := NewCache(sys, 1, 1<<20)
	srv, _ := NewServer(sys, cache, ServerConfig{Mode: ModeSDRaD})
	_ = srv.Handle(0, workload.Request{Op: workload.OpSet, Key: "a", Value: []byte("b")})
	var buf bytes.Buffer
	if err := WriteStats(&buf, srv); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"STAT cmd_total 1", "STAT curr_items 1", "END\r\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
}

// Round trip: encode a response, parse it the way a client would.
func TestProtocolRoundTripThroughServer(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig())
	cache, _ := NewCache(sys, 1, 1<<20)
	srv, _ := NewServer(sys, cache, ServerConfig{Mode: ModeSDRaD})

	script := "set greeting 0 0 5\r\nhello\r\nget greeting\r\ndelete greeting\r\nget greeting\r\n"
	r := bufio.NewReader(strings.NewReader(script))
	var out bytes.Buffer
	for i := 0; i < 4; i++ {
		cmd, err := ReadCommand(r)
		if err != nil {
			t.Fatal(err)
		}
		resp := srv.Handle(1, cmd.Req)
		if err := WriteResponse(&out, cmd.Req, resp); err != nil {
			t.Fatal(err)
		}
	}
	want := "STORED\r\nVALUE greeting 0 5\r\nhello\r\nEND\r\nDELETED\r\nEND\r\n"
	if out.String() != want {
		t.Errorf("transcript:\n%q\nwant:\n%q", out.String(), want)
	}
}
