package kvstore

import (
	"testing"

	"repro/internal/campaign"
)

// TestCheckRecoveryAllGreen is the acceptance gate for the crash-
// recovery oracle: workers 1/4/8 × batch 8/32, each run killed
// mid-commit at a seeded point, each recovered state equal to the
// survivor state of exactly the acknowledged batches.
func TestCheckRecoveryAllGreen(t *testing.T) {
	h := &RecoveryHarness{Dir: t.TempDir()}
	results, err := campaign.CheckRecovery(h, 42, 200, []int{1, 4, 8}, []int{8, 32})
	if err != nil {
		t.Fatalf("CheckRecovery: %v", err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s", r)
		}
	}
}

// TestRecoveryRunTearsTail asserts the seeded kill actually produces a
// torn WAL tail in at least one of a few seeds — the scenario's whole
// point is exercising torn-tail truncation, not just clean shutdown.
func TestRecoveryRunTearsTail(t *testing.T) {
	h := &RecoveryHarness{Dir: t.TempDir()}
	torn := false
	for seed := uint64(1); seed <= 5 && !torn; seed++ {
		run, err := h.RunRecovery(campaign.RecoveryScenario{Seed: seed, Workers: 4, Batch: 8, Requests: 160})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if run.RecoveredDigest != run.CommittedDigest {
			t.Fatalf("seed %d: digest mismatch (acked %d/%d)", seed, run.AckedBatches, run.TotalBatches)
		}
		torn = torn || run.TornTail
	}
	if !torn {
		t.Fatal("no seed produced a torn tail")
	}
}
