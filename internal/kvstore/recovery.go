package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/workload"
)

// RecoveryHarness implements campaign.RecoveryRunner over a real
// durable server: phase one drives a deterministic malicious-mixed
// workload in batches and kills the store mid-group-commit at a
// seed-derived point; phase two recovers in a fresh server from the
// same directory. The harness maintains a host-side shadow of every
// acknowledged mutation, so the oracle can compare the recovered state
// against exactly the committed prefix.
type RecoveryHarness struct {
	// Dir is the scratch root; every run uses a fresh subdirectory.
	Dir  string
	runs int
}

// recoveryCapacity is sized so the scenario never evicts: recovered
// state is then exactly the acknowledged history (the documented LRU
// caveat in persist.go never kicks in).
const recoveryCapacity = 64 << 20

func (h *RecoveryHarness) newServer(dir string, workers int) (*Server, error) {
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := NewCache(sys, 1, recoveryCapacity)
	if err != nil {
		return nil, err
	}
	return NewServer(sys, cache, ServerConfig{
		Mode:         ModeSDRaD,
		Workers:      workers,
		InterArrival: time.Nanosecond,
		Persist:      &PersistConfig{Dir: dir, Fsync: true, SnapshotEvery: 4},
	})
}

// RunRecovery implements campaign.RecoveryRunner.
func (h *RecoveryHarness) RunRecovery(sc campaign.RecoveryScenario) (campaign.RecoveryRun, error) {
	h.runs++
	dir := filepath.Join(h.Dir, fmt.Sprintf("run-%03d", h.runs))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return campaign.RecoveryRun{}, err
	}
	workers := sc.Workers
	if workers <= 0 {
		workers = 1
	}
	batchSize := sc.Batch
	if batchSize <= 0 {
		batchSize = 8
	}
	requests := sc.Requests
	if requests <= 0 {
		requests = 200
	}
	totalBatches := (requests + batchSize - 1) / batchSize

	srv, err := h.newServer(dir, workers)
	if err != nil {
		return campaign.RecoveryRun{}, fmt.Errorf("kvstore: recovery phase 1: %w", err)
	}
	fs, ok := srv.Store().(*persist.FileStore)
	if !ok {
		return campaign.RecoveryRun{}, fmt.Errorf("kvstore: recovery needs a FileStore, got %T", srv.Store())
	}

	kv, err := workload.NewKV(workload.KVConfig{
		Seed:        sc.Seed,
		Keys:        256,
		ValueSize:   96,
		GetFraction: 0.4, // write-heavy: commits to tear
	})
	if err != nil {
		return campaign.RecoveryRun{}, err
	}
	// Every 7th request is malicious, so killed commits and rewound
	// batches interleave — the interaction the oracle exists to check.
	gen := &workload.MaliciousEvery{G: kv, N: 7}

	// Seed-derived kill point: a batch in the second half of the run,
	// torn at a fraction deep enough to leave header bytes behind.
	rng := workload.NewRNG(sc.Seed ^ 0x7265636f76657279) // "recovery"
	killBatch := totalBatches/2 + int(rng.Uint64()%uint64((totalBatches+1)/2))
	if killBatch >= totalBatches {
		killBatch = totalBatches - 1
	}
	killFrac := 0.1 + 0.8*float64(rng.Uint64()%1000)/1000

	shadow := make(map[string][]byte)
	acked := 0
	killed := false
	reqIdx := 0
	for b := 0; b < totalBatches && !killed; b++ {
		n := batchSize
		if remain := requests - reqIdx; remain < n {
			n = remain
		}
		batch := make([]BatchRequest, n)
		for i := range batch {
			batch[i] = BatchRequest{ClientID: reqIdx, Req: gen.Next()}
			reqIdx++
		}
		if b == killBatch {
			fs.KillNextAppend(killFrac)
		}
		out := srv.HandleBatch(batch)
		// A torn group commit withdraws the batch's mutation acks; any
		// such response marks the whole batch uncommitted.
		for _, resp := range out {
			if errors.Is(resp.Err, persist.ErrKilled) || errors.Is(resp.Err, persist.ErrClosed) {
				killed = true
			}
		}
		if killed {
			break
		}
		acked++
		for i, resp := range out {
			if !resp.OK || resp.Err != nil || resp.Contained {
				continue
			}
			switch batch[i].Req.Op {
			case workload.OpSet:
				shadow[batch[i].Req.Key] = append([]byte(nil), batch[i].Req.Value...)
			case workload.OpDelete:
				delete(shadow, batch[i].Req.Key)
			}
		}
	}
	// The doomed process "crashes": its dead store closes without flush.
	if cerr := srv.Close(); cerr != nil && !errors.Is(cerr, persist.ErrClosed) {
		return campaign.RecoveryRun{}, fmt.Errorf("kvstore: recovery phase 1 close: %w", cerr)
	}

	// Phase 2: a fresh server recovers from the same directory.
	srv2, err := h.newServer(dir, workers)
	if err != nil {
		return campaign.RecoveryRun{}, fmt.Errorf("kvstore: recovery phase 2: %w", err)
	}
	recovered, err := srv2.Cache().Dump()
	if err != nil {
		return campaign.RecoveryRun{}, fmt.Errorf("kvstore: recovery dump: %w", err)
	}
	fs2, ok := srv2.Store().(*persist.FileStore)
	if !ok {
		return campaign.RecoveryRun{}, fmt.Errorf("kvstore: recovery phase 2 store is %T", srv2.Store())
	}
	info := fs2.Info()
	if err := srv2.Close(); err != nil {
		return campaign.RecoveryRun{}, fmt.Errorf("kvstore: recovery phase 2 close: %w", err)
	}

	return campaign.RecoveryRun{
		CommittedDigest: campaign.DigestState(shadow),
		RecoveredDigest: campaign.DigestState(recovered),
		AckedBatches:    acked,
		TotalBatches:    totalBatches,
		TornTail:        info.TornBytes > 0,
	}, nil
}
