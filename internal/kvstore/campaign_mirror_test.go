package kvstore

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"repro/internal/attackgen"
	"repro/internal/campaign"
	"repro/internal/workload"
)

// TestCampaignParserMirrorsReadCommand pins campaign.ParseKV (the
// engine's in-domain grammar mirror, which cannot import this package)
// to the production parser:
//
//   - every ParseKV-accepted input must be accepted by ReadCommand with
//     identical op/key/value and no unconsumed bytes;
//   - every well-formed rendered request must be accepted identically
//     by both.
//
// ReadCommand is deliberately laxer in stream-shaped ways (trailing
// bytes after a complete command, bare-LF line endings), so
// ParseKV-rejection implies nothing; acceptance is what must agree.
func TestCampaignParserMirrorsReadCommand(t *testing.T) {
	gen, err := workload.NewKV(workload.KVConfig{Seed: 5, Keys: 64, ValueSize: 24, GetFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var corpus [][]byte
	for i := 0; i < 200; i++ {
		corpus = append(corpus, workload.RenderKVText(gen.Next()))
	}
	corpus = append(corpus, attackgen.MalformedKVCorpus(5, 200)...)
	corpus = append(corpus,
		[]byte("set k x 0 5\r\nhello\r\n"),  // bad flags
		[]byte("set k 0 -1 5\r\nhello\r\n"), // bad exptime
		[]byte("set k 0 0 1048577\r\n"),     // over MaxValueSize
		[]byte("gets key-1\r\n"),            //
		[]byte("get k\nno-crlf"),            // bare LF: stream parser territory
		[]byte("stats\r\n"), []byte("quit\r\n"),
	)

	for _, in := range corpus {
		op, key, value, ok := campaign.ParseKV(in)
		r := bufio.NewReader(bytes.NewReader(in))
		cmd, rerr := ReadCommand(r)
		leftover, _ := io.ReadAll(r)
		if ok {
			if rerr != nil {
				t.Errorf("ParseKV accepted %q but ReadCommand rejected: %v", in, rerr)
				continue
			}
			if cmd.Stats || cmd.Quit {
				t.Errorf("ParseKV accepted control command %q", in)
				continue
			}
			if cmd.Req.Op != op || cmd.Req.Key != key || !bytes.Equal(cmd.Req.Value, value) {
				t.Errorf("parsers disagree on %q: campaign %v/%q/%q vs kvstore %v/%q/%q",
					in, op, key, value, cmd.Req.Op, cmd.Req.Key, cmd.Req.Value)
			}
			if len(leftover) != 0 {
				t.Errorf("ParseKV accepted %q though ReadCommand left %q unconsumed", in, leftover)
			}
		}
		// Reverse direction: a CRLF-only, fully-consumed data command the
		// production parser accepts must be accepted by the mirror.
		// ReadCommand's stream leniencies (bare-LF endings, trailing
		// bytes) are excluded by the leftover and framing guards.
		if !ok && rerr == nil && !cmd.Stats && !cmd.Quit && len(leftover) == 0 && crlfFramed(in) {
			t.Errorf("ReadCommand accepted complete command %q but ParseKV rejected it", in)
		}
	}
}

// crlfFramed reports whether every line break in b is a CRLF (the
// framing ParseKV requires; ReadCommand also tolerates bare LF).
func crlfFramed(b []byte) bool {
	if !bytes.HasSuffix(b, []byte("\r\n")) {
		return false
	}
	for i, c := range b {
		if c == '\n' && (i == 0 || b[i-1] != '\r') {
			return false
		}
	}
	return true
}
