package kvstore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/lifecycle/lifecycletest"
)

// TestLifecycleConformance runs the shared lifecycle battery against the
// sharded KV pool and the deferred network server wrapping it. Resize
// exercises the per-shard parser worker-domain set (key placement is
// untouched, so resizing is invisible to stored data).
func TestLifecycleConformance(t *testing.T) {
	lifecycletest.Run(t, []lifecycletest.Case{
		{
			Name: "kvstore.Pool",
			New: func(t *testing.T) lifecycle.Component {
				return NewDeferredPool(core.DefaultConfig(), ServerConfig{Mode: ModeSDRaD}, 2, 16<<20)
			},
			Resize: func(c lifecycle.Component, n int) error {
				return c.(*Pool).ResizeWorkers(n)
			},
			Grow:   6,
			Shrink: 2,
		},
		{
			Name: "kvstore.NetServer",
			New: func(t *testing.T) lifecycle.Component {
				p, err := NewPool(core.DefaultConfig(), ServerConfig{Mode: ModeSDRaD}, 2, 16<<20)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = p.Close() })
				return NewDeferredNetServerPool(p, nil)
			},
			Resize: func(c lifecycle.Component, n int) error {
				return c.(*NetServer).ResizeWorkers(n)
			},
			Grow:   6,
			Shrink: 2,
		},
	})
}
