package kvstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/workload"
)

func testGateway(t *testing.T, lim gateway.Limits) *gateway.Gateway {
	t.Helper()
	table, err := gateway.NewTable(map[string]string{
		"alice": "tok-alice",
		"mal":   "tok-mal",
	})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	gw, err := gateway.New(gateway.Config{Table: table, Limits: lim})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	return gw
}

// TestPoolCloseIdempotent pins the double-close fix: the second Close
// must not re-run the shard closes (which would double-close the
// released stores) and must report the first call's outcome.
func TestPoolCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	cfg := ServerConfig{
		Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond,
		Persist: &PersistConfig{Dir: dir},
	}
	pool, err := NewPool(core.DefaultConfig(), cfg, 2, 16<<20)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	if resp := pool.Handle(0, setReq("k", "v")); !resp.OK || resp.Err != nil {
		t.Fatalf("set: %+v", resp)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := pool.Close(); err != nil {
			t.Fatalf("repeat Close %d: %v", i, err)
		}
	}
}

// TestNetServerCloseIdempotent pins the same property one layer up: the
// batched NetServer's Close closes the queues and the pool exactly
// once, and every later call reports the first outcome.
func TestNetServerCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	cfg := ServerConfig{
		Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond,
		Persist: &PersistConfig{Dir: dir},
	}
	pool, err := NewPool(core.DefaultConfig(), cfg, 2, 16<<20)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	n, err := NewBatchedNetServerPool(pool, nil, 64, 8)
	if err != nil {
		t.Fatalf("NewBatchedNetServerPool: %v", err)
	}
	if resp := n.handle(context.Background(), 0, setReq("k", "v")); !resp.OK || resp.Err != nil {
		t.Fatalf("set: %+v", resp)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := n.Close(); err != nil {
			t.Fatalf("repeat Close %d: %v", i, err)
		}
	}
	// The pool was closed through the NetServer; closing it directly
	// again must also be a memoized no-op.
	if err := pool.Close(); err != nil {
		t.Fatalf("pool Close after server Close: %v", err)
	}
}

// TestBatchedOverloadRetryHintBytes pins the exact wire bytes of a
// batched-path overload rejection. The hint derives from the configured
// queue depth, never from which queue rejected or its momentary
// occupancy, so two identically configured servers render identical
// rejections — the byte-identity campaign traces rely on.
func TestBatchedOverloadRetryHintBytes(t *testing.T) {
	render := func() string {
		pool, err := NewPool(core.DefaultConfig(),
			ServerConfig{Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond}, 1, 16<<20)
		if err != nil {
			t.Fatalf("NewPool: %v", err)
		}
		// maxInflight 1 over 1 shard: queue depth 1.
		n, err := NewBatchedNetServerPool(pool, nil, 1, 8)
		if err != nil {
			t.Fatalf("NewBatchedNetServerPool: %v", err)
		}
		defer func() {
			if cerr := n.Close(); cerr != nil {
				t.Errorf("close: %v", cerr)
			}
		}()
		// Hold the shard lock so the drain loop blocks mid-batch, then
		// fill the queue: one request executing (blocked), one queued.
		sh := pool.shards[0]
		sh.mu.Lock()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp := n.handle(context.Background(), i, setReq(fmt.Sprintf("k%d", i), "v"))
				if resp.Err != nil {
					t.Errorf("admitted request %d failed: %v", i, resp.Err)
				}
			}(i)
			// Admissions are sequential: wait for the first task to be
			// taken by the drain loop (Batches=1) before the second fills
			// the queue (Submitted=2).
			want := uint64(i + 1)
			for n.queues.Stats(0).Submitted != want || n.queues.Stats(0).Batches != 1 {
				time.Sleep(100 * time.Microsecond)
			}
		}
		// Queue full: the third submission sheds with the hint.
		req := setReq("k-shed", "v")
		resp := n.handle(context.Background(), 9, req)
		sh.mu.Unlock()
		wg.Wait()
		var hint *gateway.RetryHintError
		if !errors.As(resp.Err, &hint) {
			t.Fatalf("overload response err = %v, want *gateway.RetryHintError", resp.Err)
		}
		var buf bytes.Buffer
		if err := WriteResponse(&buf, req, resp); err != nil {
			t.Fatalf("WriteResponse: %v", err)
		}
		return buf.String()
	}
	a, b := render(), render()
	want := "SERVER_ERROR busy retry-after-cycles=1048576\r\n"
	if a != want {
		t.Fatalf("overload bytes = %q, want %q", a, want)
	}
	if a != b {
		t.Fatalf("overload bytes differ across runs: %q vs %q", a, b)
	}
}

// TestDrainHammer fires a graceful drain while concurrent writers hit
// all four shards, then checks the drain contract both ways: every
// acknowledged write is recovered from disk, and no admission after
// Drain returns succeeds. Run with -race in CI.
func TestDrainHammer(t *testing.T) {
	dir := t.TempDir()
	cfg := ServerConfig{
		Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond,
		Persist: &PersistConfig{Dir: dir, SnapshotEvery: 4},
	}
	pool, err := NewPool(core.DefaultConfig(), cfg, 4, 32<<20)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	n, err := NewBatchedNetServerPool(pool, nil, 64, 8)
	if err != nil {
		t.Fatalf("NewBatchedNetServerPool: %v", err)
	}

	const writers = 8
	var mu sync.Mutex
	acked := make(map[string]string)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", wr, seq)
				val := fmt.Sprintf("v%d-%d", wr, seq)
				resp := n.handle(context.Background(), wr, setReq(key, val))
				if resp.Err == nil && resp.OK {
					mu.Lock()
					acked[key] = val
					mu.Unlock()
				}
			}
		}(wr)
	}

	// Let the writers build up traffic, then drain mid-stream.
	for {
		mu.Lock()
		enough := len(acked) >= 200
		mu.Unlock()
		if enough {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := n.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	close(stop)
	wg.Wait()

	// Post-drain admission must fail with a typed error on both paths.
	if resp := n.handle(context.Background(), 99, setReq("late", "x")); resp.Err == nil {
		t.Fatal("post-drain batched write was admitted")
	}
	resp := pool.Handle(99, setReq("late-direct", "x"))
	if !errors.Is(resp.Err, ErrDrained) {
		t.Fatalf("post-drain direct write err = %v, want ErrDrained", resp.Err)
	}
	if err := n.Drain(); err != nil {
		t.Fatalf("repeat Drain: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close after Drain: %v", err)
	}

	// Recover from disk: every acked write must be present, byte for
	// byte. (The drained pool released its stores, so reopening is
	// safe.)
	pool2, err := NewPool(core.DefaultConfig(), cfg, 4, 32<<20)
	if err != nil {
		t.Fatalf("reopen pool: %v", err)
	}
	defer func() {
		if cerr := pool2.Close(); cerr != nil {
			t.Errorf("close recovered pool: %v", cerr)
		}
	}()
	recovered := make(map[string]string)
	for i := 0; i < pool2.Workers(); i++ {
		for k, v := range dumpOrFatal(t, pool2.Shard(i).Cache()) {
			recovered[k] = string(v)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	t.Logf("drain hammer: %d acked writes, %d recovered keys", len(acked), len(recovered))
	for k, v := range acked {
		got, ok := recovered[k]
		if !ok {
			t.Fatalf("acked write %s lost after drain", k)
		}
		if got != v {
			t.Fatalf("acked write %s recovered as %q, want %q", k, got, v)
		}
	}
}

// startGatewayNet spins up a TCP server fronted by a gateway.
func startGatewayNet(t *testing.T, gw *gateway.Gateway) (string, *NetServer, func()) {
	t.Helper()
	pool, err := NewPool(core.DefaultConfig(),
		ServerConfig{Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond}, 2, 16<<20)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	ns := NewNetServerPool(pool, nil)
	ns.SetGateway(gw)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ns.Serve(ln) }()
	return ln.Addr().String(), ns, func() {
		if err := ln.Close(); err != nil {
			t.Errorf("close listener: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// TestNetServerGatewayEndToEnd drives the tenant flow over real TCP:
// auth required, uniform rejection on bad credentials, admission after
// auth, deterministic rate-limit rejections, and the health command.
func TestNetServerGatewayEndToEnd(t *testing.T) {
	gw := testGateway(t, gateway.Limits{Burst: 2, RefillEvery: 100, MaxInflight: 8})
	addr, _, stop := startGatewayNet(t, gw)
	defer stop()

	// Data before auth is refused.
	if out := talk(t, addr, "set k 0 0 1\r\nv\r\nquit\r\n"); out != "CLIENT_ERROR auth required\r\n" {
		t.Fatalf("unauthenticated set: %q", out)
	}
	// Bad credentials: one uniform line, no hint which part failed.
	if out := talk(t, addr, "auth nope\r\nquit\r\n"); out != "CLIENT_ERROR unauthorized\r\n" {
		t.Fatalf("bad auth: %q", out)
	}
	// Good credentials bind the connection; data flows.
	out := talk(t, addr, "auth tok-alice\r\nset k 0 0 5\r\nhello\r\nget k\r\nquit\r\n")
	want := "OK\r\nSTORED\r\nVALUE k 0 5\r\nhello\r\nEND\r\n"
	if out != want {
		t.Fatalf("authed session: %q, want %q", out, want)
	}
	// Burst 2 with a glacial refill: the third data command of this
	// session (alice's 4th overall arrival, tokens spent) is throttled
	// with the typed rendering.
	out = talk(t, addr, "auth tok-alice\r\nget k\r\nget k\r\nquit\r\n")
	if !strings.Contains(out, "SERVER_ERROR gateway: tenant alice rate limited, retry-after-cycles=") {
		t.Fatalf("throttle transcript: %q", out)
	}
	// Health command renders shard and tenant state.
	out = talk(t, addr, "health\r\nquit\r\n")
	for _, frag := range []string{"STAT state ok", "STAT draining 0", "STAT workers 2", "STAT shard_0 ok", "STAT tenant_alice "} {
		if !strings.Contains(out, frag) {
			t.Fatalf("health output missing %q: %q", frag, out)
		}
	}
}

// TestNetServerGatewayDrain verifies the wire behavior of a drain:
// in-flight tenants finish, later requests get the typed draining
// rejection, and health flips to draining/drained.
func TestNetServerGatewayDrain(t *testing.T) {
	gw := testGateway(t, gateway.Limits{Burst: 100, RefillEvery: 1, MaxInflight: 8})
	addr, ns, stop := startGatewayNet(t, gw)
	defer stop()

	if out := talk(t, addr, "auth tok-alice\r\nset k 0 0 5\r\nhello\r\nquit\r\n"); !strings.Contains(out, "STORED") {
		t.Fatalf("pre-drain set: %q", out)
	}
	if err := ns.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	out := talk(t, addr, "auth tok-alice\r\nget k\r\nquit\r\n")
	if !strings.Contains(out, "SERVER_ERROR gateway: draining") {
		t.Fatalf("post-drain transcript: %q", out)
	}
	out = talk(t, addr, "health\r\nquit\r\n")
	if !strings.Contains(out, "STAT draining 1") {
		t.Fatalf("health after drain: %q", out)
	}
}

// TestGatewayIsolationDirect pins the per-tenant isolation property at
// the handler level: a hostile tenant hammering exploit payloads
// changes nothing about the benign tenant's admission decisions or
// outcomes.
func TestGatewayIsolationDirect(t *testing.T) {
	run := func(hostile bool) []string {
		gw := testGateway(t, gateway.Limits{Burst: 4, RefillEvery: 2, MaxInflight: 8})
		pool, err := NewPool(core.DefaultConfig(),
			ServerConfig{Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond}, 2, 16<<20)
		if err != nil {
			t.Fatalf("NewPool: %v", err)
		}
		var outcomes []string
		for i := 0; i < 30; i++ {
			if hostile {
				// Interleave the attacker's traffic 2:1.
				for j := 0; j < 2; j++ {
					tk, aerr := gw.Admit("mal")
					if aerr != nil {
						continue
					}
					req := workload.Request{Op: workload.OpSet, Key: fmt.Sprintf("m%d-%d", i, j),
						Value: []byte(AttackMarker), Malicious: true}
					resp := pool.Handle(1, req)
					tk.Done(resp.Contained, false)
				}
			}
			tk, aerr := gw.Admit("alice")
			if aerr != nil {
				outcomes = append(outcomes, "rejected:"+aerr.Error())
				continue
			}
			resp := pool.Handle(0, setReq(fmt.Sprintf("a%d", i), "v"))
			tk.Done(resp.Contained, false)
			if resp.Err != nil {
				outcomes = append(outcomes, "err")
			} else {
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	solo, contended := run(false), run(true)
	if len(solo) != len(contended) {
		t.Fatalf("outcome counts differ: %d vs %d", len(solo), len(contended))
	}
	for i := range solo {
		if solo[i] != contended[i] {
			t.Fatalf("benign tenant outcome %d diverged: %q (solo) vs %q (with hostile tenant)", i, solo[i], contended[i])
		}
	}
}
