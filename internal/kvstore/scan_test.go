package kvstore

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/workload"
)

func scanTestServer(t *testing.T) (*Server, *core.System) {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	cache, err := NewCache(sys, 1, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys, cache, ServerConfig{
		Mode:         ModeSDRaD,
		Workers:      2,
		InterArrival: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, sys
}

func mustSet(t *testing.T, srv *Server, key, val string) {
	t.Helper()
	resp := srv.Handle(0, workload.Request{Op: workload.OpSet, Key: key, Value: []byte(val)})
	if !resp.OK || resp.Err != nil {
		t.Fatalf("set %q: %+v", key, resp)
	}
}

// TestScanPaginationCoversTable walks a table through small pages and
// asserts every key appears exactly once, in ascending order, with its
// value and flags.
func TestScanPaginationCoversTable(t *testing.T) {
	srv, _ := scanTestServer(t)
	const n = 53
	for i := 0; i < n; i++ {
		mustSet(t, srv, fmt.Sprintf("key-%08d", i), fmt.Sprintf("val-%d", i))
	}
	seen := make(map[string]string)
	cursor := ""
	last := ""
	for pages := 0; ; pages++ {
		if pages > n {
			t.Fatal("scan did not terminate")
		}
		res, err := srv.Scan("", cursor, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range res.Items {
			if it.Key <= last {
				t.Fatalf("keys out of order: %q after %q", it.Key, last)
			}
			last = it.Key
			if _, dup := seen[it.Key]; dup {
				t.Fatalf("key %q returned twice", it.Key)
			}
			seen[it.Key] = string(it.Value)
		}
		if res.Cursor == "" {
			break
		}
		if len(res.Items) != 7 {
			t.Fatalf("partial page %d items with cursor set", len(res.Items))
		}
		cursor = res.Cursor
	}
	if len(seen) != n {
		t.Fatalf("scan covered %d keys, want %d", len(seen), n)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%08d", i)
		if seen[k] != fmt.Sprintf("val-%d", i) {
			t.Errorf("key %q = %q", k, seen[k])
		}
	}
}

// TestScanPrefixFilterAndClamp checks the prefix filter and the
// MaxScanPage clamp.
func TestScanPrefixFilterAndClamp(t *testing.T) {
	srv, _ := scanTestServer(t)
	for i := 0; i < 10; i++ {
		mustSet(t, srv, fmt.Sprintf("aaa-%02d", i), "a")
		mustSet(t, srv, fmt.Sprintf("bbb-%02d", i), "b")
	}
	res, err := srv.Scan("aaa-", "", 0) // 0 clamps to MaxScanPage
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 10 || res.Cursor != "" {
		t.Fatalf("prefix scan = %d items cursor %q, want 10 items no cursor", len(res.Items), res.Cursor)
	}
	for _, it := range res.Items {
		if !strings.HasPrefix(it.Key, "aaa-") {
			t.Errorf("prefix leak: %q", it.Key)
		}
	}
	if _, err := srv.Scan("", "", MaxScanPage+1000); err != nil {
		t.Fatalf("over-limit scan: %v", err)
	}
}

// TestScanChargesVirtualClock asserts a scan is not free: the virtual
// clock advances, and walking more data charges more.
func TestScanChargesVirtualClock(t *testing.T) {
	small, smallSys := scanTestServer(t)
	large, largeSys := scanTestServer(t)
	for i := 0; i < 4; i++ {
		mustSet(t, small, fmt.Sprintf("key-%08d", i), strings.Repeat("x", 32))
	}
	for i := 0; i < 64; i++ {
		mustSet(t, large, fmt.Sprintf("key-%08d", i), strings.Repeat("x", 512))
	}
	beforeSmall := smallSys.Clock().Now()
	if _, err := small.Scan("", "", MaxScanPage); err != nil {
		t.Fatal(err)
	}
	chargeSmall := smallSys.Clock().Now() - beforeSmall
	beforeLarge := largeSys.Clock().Now()
	if _, err := large.Scan("", "", MaxScanPage); err != nil {
		t.Fatal(err)
	}
	chargeLarge := largeSys.Clock().Now() - beforeLarge
	if chargeSmall <= 0 {
		t.Fatalf("small scan charged nothing")
	}
	if chargeLarge <= chargeSmall {
		t.Fatalf("64x512B scan charged %v, not more than 4x32B scan's %v", chargeLarge, chargeSmall)
	}
}

// TestScanDeterministic asserts two servers fed the same operations
// return byte-identical scan pages.
func TestScanDeterministic(t *testing.T) {
	a, _ := scanTestServer(t)
	b, _ := scanTestServer(t)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%08d", i*7%20)
		mustSet(t, a, k, fmt.Sprintf("v%d", i))
		mustSet(t, b, k, fmt.Sprintf("v%d", i))
	}
	ra, err := a.Scan("", "", 16)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Scan("", "", 16)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cursor != rb.Cursor || len(ra.Items) != len(rb.Items) {
		t.Fatalf("shape diverged: %d/%q vs %d/%q", len(ra.Items), ra.Cursor, len(rb.Items), rb.Cursor)
	}
	for i := range ra.Items {
		if ra.Items[i].Key != rb.Items[i].Key || !bytes.Equal(ra.Items[i].Value, rb.Items[i].Value) {
			t.Fatalf("item %d diverged: %+v vs %+v", i, ra.Items[i], rb.Items[i])
		}
	}
}

// TestScanExpiredLazyRemoval checks expired items are skipped (and
// lazily removed) by the walk.
func TestScanExpiredLazyRemoval(t *testing.T) {
	srv, _ := scanTestServer(t)
	resp := srv.Handle(0, workload.Request{Op: workload.OpSet, Key: "fleeting", Value: []byte("x"), TTL: time.Nanosecond})
	if !resp.OK || resp.Err != nil {
		t.Fatalf("set: %+v", resp)
	}
	mustSet(t, srv, "lasting", "y")
	// Push virtual time past the TTL with more arrivals.
	for i := 0; i < 5; i++ {
		srv.Handle(0, workload.Request{Op: workload.OpGet, Key: "lasting"})
	}
	res, err := srv.Scan("", "", MaxScanPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].Key != "lasting" {
		t.Fatalf("scan = %+v, want only %q", res.Items, "lasting")
	}
}

// TestScanDrainedGate asserts a drained server refuses scans with the
// typed drain error.
func TestScanDrainedGate(t *testing.T) {
	srv, _ := scanTestServer(t)
	mustSet(t, srv, "k", "v")
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Scan("", "", 8); err != ErrDrained {
		t.Fatalf("drained scan err = %v, want ErrDrained", err)
	}
}

// TestPoolScanMergesShards asserts a pool scan merges per-shard pages
// into one globally sorted cursor walk with no duplicates or holes.
func TestPoolScanMergesShards(t *testing.T) {
	pool, err := NewPool(core.DefaultConfig(), ServerConfig{
		Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond,
	}, 4, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	const n = 60
	for i := 0; i < n; i++ {
		resp := pool.Handle(0, workload.Request{Op: workload.OpSet, Key: fmt.Sprintf("key-%08d", i), Value: []byte("v")})
		if !resp.OK || resp.Err != nil {
			t.Fatalf("set %d: %+v", i, resp)
		}
	}
	seen := make(map[string]bool)
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > n {
			t.Fatal("pool scan did not terminate")
		}
		res, err := pool.Scan("key-", cursor, 9)
		if err != nil {
			t.Fatal(err)
		}
		for i, it := range res.Items {
			if seen[it.Key] {
				t.Fatalf("key %q returned twice", it.Key)
			}
			if i > 0 && res.Items[i-1].Key >= it.Key {
				t.Fatalf("page out of order at %d", i)
			}
			seen[it.Key] = true
		}
		if res.Cursor == "" {
			break
		}
		cursor = res.Cursor
	}
	if len(seen) != n {
		t.Fatalf("pool scan covered %d keys, want %d", len(seen), n)
	}
}

// duplexConn adapts an input script and output buffer to the
// io.ReadWriter serveConn wants.
type duplexConn struct {
	io.Reader
	io.Writer
}

// TestNetServerScanCommand drives the protocol surface end to end:
// scan pages as VALUE lines with SCAN_MORE cursors, and — with a
// gateway installed — per-page quota admission that throttles a
// tenant's table walk once its burst is spent.
func TestNetServerScanCommand(t *testing.T) {
	pool, err := NewPool(core.DefaultConfig(), ServerConfig{
		Mode: ModeSDRaD, Workers: 2, InterArrival: time.Nanosecond,
	}, 2, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ns := NewNetServerPool(pool, nil)
	for i := 0; i < 6; i++ {
		resp := pool.Handle(0, workload.Request{Op: workload.OpSet, Key: fmt.Sprintf("key-%d", i), Value: []byte("v")})
		if !resp.OK || resp.Err != nil {
			t.Fatalf("seed %d: %+v", i, resp)
		}
	}

	var out bytes.Buffer
	ns.serveConn(1, &duplexConn{strings.NewReader("scan key- 4\r\nscan key- 4 key-3\r\nscan * 64\r\nquit\r\n"), &out})
	got := out.String()
	if !strings.Contains(got, "VALUE key-0 0 1") || !strings.Contains(got, "SCAN_MORE key-3") {
		t.Fatalf("first page missing VALUE/SCAN_MORE: %q", got)
	}
	if !strings.Contains(got, "VALUE key-4 0 1") || !strings.Contains(got, "VALUE key-5 0 1") {
		t.Fatalf("resumed page missing tail keys: %q", got)
	}

	// Gateway: two pages within burst, third throttled.
	table, err := gateway.NewTable(map[string]string{"alice": "tok-alice"})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New(gateway.Config{
		Table:  table,
		Limits: gateway.Limits{Burst: 2, RefillEvery: 1 << 30, MaxInflight: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	ns.SetGateway(gw)
	out.Reset()
	ns.serveConn(2, &duplexConn{strings.NewReader("scan key- 2\r\nauth tok-alice\r\nscan key- 2\r\nscan key- 2 key-1\r\nscan key- 2 key-3\r\nquit\r\n"), &out})
	got = out.String()
	if !strings.Contains(got, "CLIENT_ERROR auth required") {
		t.Fatalf("unauthenticated scan not refused: %q", got)
	}
	pages := strings.Count(got, "SCAN_MORE")
	if pages != 2 {
		t.Fatalf("admitted pages = %d, want 2 (burst)", pages)
	}
	if !strings.Contains(got, "SERVER_ERROR") {
		t.Fatalf("third page not throttled: %q", got)
	}
}
