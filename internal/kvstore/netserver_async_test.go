package kvstore

import (
	"errors"
	"testing"

	"repro/internal/submit"
)

// TestRespondAsyncClosedQueue pins a regression sdradlint's errclass
// analyzer surfaced: a request admitted to the submission queues but
// resolved by Close (so the drain loop never filled its response) was
// answered with a zero-value Response, silently dropping the typed
// ErrClosed. The classification must reach the wire.
func TestRespondAsyncClosedQueue(t *testing.T) {
	resp := respondAsync(&asyncReq{}, submit.Resolved(submit.ErrClosed))
	if !errors.Is(resp.Err, submit.ErrClosed) {
		t.Fatalf("closed-queue response carries err %v, want submit.ErrClosed", resp.Err)
	}
	if resp.OK {
		t.Error("closed-queue response reports OK")
	}
}

// TestRespondAsyncFilled returns the drain loop's response verbatim on
// clean resolution.
func TestRespondAsyncFilled(t *testing.T) {
	a := &asyncReq{resp: Response{OK: true, Value: []byte("v")}}
	resp := respondAsync(a, submit.Resolved(nil))
	if !resp.OK || string(resp.Value) != "v" || resp.Err != nil {
		t.Fatalf("clean resolution returned %+v, want the drain loop's response", resp)
	}
}
