package kvstore

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/workload"
)

// AttackMarker makes a SET over the wire malicious: values with this
// prefix stand in for crafted exploit payloads against the parser.
const AttackMarker = "!!exploit"

// NetServer serves the memcached text protocol over TCP on top of a
// Server or a Pool, with connections multiplexing on real sockets.
type NetServer struct {
	handle func(ctx context.Context, clientID int, req workload.Request) Response
	stats  func(w io.Writer) error
	log    *log.Logger

	// reqTimeout, when non-zero, caps each request with a context
	// deadline (mapped to a virtual-cycle budget by the server).
	reqTimeout time.Duration

	connMu sync.Mutex
	nextID int

	wg sync.WaitGroup
}

// NewNetServer wraps srv for TCP serving. logger may be nil to disable
// logging. The single Server owns one simulated core, so request
// handling is serialized behind a mutex.
func NewNetServer(srv *Server, logger *log.Logger) *NetServer {
	var mu sync.Mutex
	return &NetServer{
		log: logger,
		handle: func(ctx context.Context, clientID int, req workload.Request) Response {
			mu.Lock()
			defer mu.Unlock()
			return srv.HandleContext(ctx, clientID, req)
		},
		stats: func(w io.Writer) error {
			mu.Lock()
			defer mu.Unlock()
			return WriteStats(w, srv)
		},
	}
}

// NewNetServerPool wraps a Pool for TCP serving; logger may be nil. The
// pool synchronizes internally per shard, so requests for keys on
// different shards execute in parallel.
func NewNetServerPool(p *Pool, logger *log.Logger) *NetServer {
	return &NetServer{
		log:    logger,
		handle: p.HandleContext,
		stats:  func(w io.Writer) error { return WriteStats(w, p) },
	}
}

// SetRequestTimeout installs a per-request deadline (0 disables it, the
// default). Call before Serve.
func (n *NetServer) SetRequestTimeout(d time.Duration) { n.reqTimeout = d }

func (n *NetServer) logf(format string, args ...any) {
	if n.log != nil {
		n.log.Printf(format, args...)
	}
}

// Serve accepts connections on ln until it is closed, then waits for
// in-flight connections to finish.
func (n *NetServer) Serve(ln net.Listener) error {
	defer n.wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("kvstore: accept: %w", err)
		}
		n.connMu.Lock()
		n.nextID++
		id := n.nextID
		n.connMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				if cerr := conn.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
					n.logf("conn %d close: %v", id, cerr)
				}
			}()
			n.serveConn(id, conn)
		}()
	}
}

// serveConn runs the command loop for one connection.
func (n *NetServer) serveConn(id int, conn io.ReadWriter) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		cmd, err := ReadCommand(r)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				_, _ = fmt.Fprintf(w, "CLIENT_ERROR %v\r\n", err)
				_ = w.Flush()
			}
			return
		}
		switch {
		case cmd.Quit:
			_ = w.Flush()
			return
		case cmd.Stats:
			err = n.stats(w)
		default:
			req := cmd.Req
			if bytes.HasPrefix(req.Value, []byte(AttackMarker)) {
				req.Malicious = true
			}
			resp := n.handleTimed(id, req)
			if resp.Contained {
				n.logf("conn %d: contained memory-safety violation (domain rewound)", id)
			}
			err = WriteResponse(w, req, resp)
		}
		if err != nil {
			n.logf("conn %d write: %v", id, err)
			return
		}
		if err := w.Flush(); err != nil {
			n.logf("conn %d flush: %v", id, err)
			return
		}
	}
}

// handleTimed wraps handle with the per-request deadline, when one is
// configured.
func (n *NetServer) handleTimed(id int, req workload.Request) Response {
	ctx := context.Background()
	if n.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.reqTimeout)
		defer cancel()
	}
	return n.handle(ctx, id, req)
}
