package kvstore

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/submit"
	"repro/internal/workload"
)

// AttackMarker makes a SET over the wire malicious: values with this
// prefix stand in for crafted exploit payloads against the parser.
const AttackMarker = "!!exploit"

// NetServer serves the memcached text protocol over TCP on top of a
// Server or a Pool, with connections multiplexing on real sockets.
type NetServer struct {
	handle func(ctx context.Context, clientID int, req workload.Request) Response
	stats  func(w io.Writer) error
	log    *log.Logger

	// reqTimeout, when non-zero, caps each request with a context
	// deadline (mapped to a virtual-cycle budget by the server).
	reqTimeout time.Duration

	// queues is the async submission layer (batched servers only).
	queues *submit.Queues

	connMu sync.Mutex
	nextID int

	wg sync.WaitGroup
}

// NewNetServer wraps srv for TCP serving. logger may be nil to disable
// logging. The single Server owns one simulated core, so request
// handling is serialized behind a mutex.
func NewNetServer(srv *Server, logger *log.Logger) *NetServer {
	var mu sync.Mutex
	return &NetServer{
		log: logger,
		handle: func(ctx context.Context, clientID int, req workload.Request) Response {
			mu.Lock()
			defer mu.Unlock()
			return srv.HandleContext(ctx, clientID, req)
		},
		stats: func(w io.Writer) error {
			mu.Lock()
			defer mu.Unlock()
			return WriteStats(w, srv)
		},
	}
}

// NewNetServerPool wraps a Pool for TCP serving; logger may be nil. The
// pool synchronizes internally per shard, so requests for keys on
// different shards execute in parallel.
func NewNetServerPool(p *Pool, logger *log.Logger) *NetServer {
	return &NetServer{
		log:    logger,
		handle: p.HandleContext,
		stats:  func(w io.Writer) error { return WriteStats(w, p) },
	}
}

// asyncReq is one connection request in flight through the submission
// queues; the drain loop fills resp before resolving the future.
type asyncReq struct {
	clientID int
	req      workload.Request
	resp     Response
}

// NewBatchedNetServerPool wraps a Pool for TCP serving through the
// asynchronous submission layer: instead of every connection contending
// on the shard locks, connections enqueue into bounded per-shard
// queues (internal/submit) and one drain loop per shard coalesces up
// to maxBatch queued requests into a single pipelined
// Server.HandleBatch — one domain Enter per worker group instead of per
// request. maxInflight bounds admitted-but-unanswered requests across
// the pool (<= 0 means 1024); at capacity new requests are answered
// SERVER_ERROR immediately (admission control / backpressure). Call
// Close after Serve returns to stop the drain loops.
func NewBatchedNetServerPool(p *Pool, logger *log.Logger, maxInflight, maxBatch int) (*NetServer, error) {
	if maxInflight <= 0 {
		maxInflight = 1024
	}
	depth := maxInflight / p.Workers()
	if depth < 1 {
		depth = 1
	}
	q, err := submit.New(submit.Config{
		Workers:  p.Workers(),
		Depth:    depth,
		MaxBatch: maxBatch,
		Exec: func(si int, tasks []*submit.Task) {
			batch := make([]BatchRequest, len(tasks))
			for i, t := range tasks {
				a := t.Payload.(*asyncReq)
				batch[i] = BatchRequest{Ctx: t.Ctx, ClientID: a.clientID, Req: a.req}
			}
			resps := p.handleBatch(si, batch)
			for i, t := range tasks {
				t.Payload.(*asyncReq).resp = resps[i]
				t.Resolve(nil)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	n := &NetServer{
		log:    logger,
		stats:  func(w io.Writer) error { return WriteStats(w, p) },
		queues: q,
	}
	n.handle = func(ctx context.Context, clientID int, req workload.Request) Response {
		a := &asyncReq{clientID: clientID, req: req}
		fut, err := q.Submit(p.shardIndex(req.Key), ctx, a)
		if err != nil {
			// Overload (queue full) or closed: shed the request.
			return Response{Err: err}
		}
		// The future resolves when the drain loop answered; the request's
		// ctx still governs its in-domain budget (deadlines that expire
		// while queued surface as preemptions, as on the serial path).
		return respondAsync(a, fut)
	}
	return n, nil
}

// respondAsync maps an admitted request's future onto its wire
// response, waiting for resolution. A non-nil resolution means the
// drain loop never filled resp (the queues closed underneath the
// admitted request), so the typed error must reach the wire instead of
// a zero-value Response.
func respondAsync(a *asyncReq, fut *submit.Future) Response {
	if ferr := fut.Err(); ferr != nil {
		return Response{Err: ferr}
	}
	return a.resp
}

// Close stops the batched submission layer, if this server has one:
// queued requests are answered and the drain loops exit. Serve must
// have returned (or never been called).
func (n *NetServer) Close() {
	if n.queues != nil {
		n.queues.Flush()
		n.queues.Close()
	}
}

// SetRequestTimeout installs a per-request deadline (0 disables it, the
// default). Call before Serve.
func (n *NetServer) SetRequestTimeout(d time.Duration) { n.reqTimeout = d }

func (n *NetServer) logf(format string, args ...any) {
	if n.log != nil {
		n.log.Printf(format, args...)
	}
}

// Serve accepts connections on ln until it is closed, then waits for
// in-flight connections to finish.
func (n *NetServer) Serve(ln net.Listener) error {
	defer n.wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("kvstore: accept: %w", err)
		}
		n.connMu.Lock()
		n.nextID++
		id := n.nextID
		n.connMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				if cerr := conn.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
					n.logf("conn %d close: %v", id, cerr)
				}
			}()
			n.serveConn(id, conn)
		}()
	}
}

// serveConn runs the command loop for one connection.
func (n *NetServer) serveConn(id int, conn io.ReadWriter) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		cmd, err := ReadCommand(r)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				_, _ = fmt.Fprintf(w, "CLIENT_ERROR %v\r\n", err)
				_ = w.Flush()
			}
			return
		}
		switch {
		case cmd.Quit:
			_ = w.Flush()
			return
		case cmd.Stats:
			err = n.stats(w)
		default:
			req := cmd.Req
			if bytes.HasPrefix(req.Value, []byte(AttackMarker)) {
				req.Malicious = true
			}
			resp := n.handleTimed(id, req)
			if resp.Contained {
				n.logf("conn %d: contained memory-safety violation (domain rewound)", id)
			}
			err = WriteResponse(w, req, resp)
		}
		if err != nil {
			n.logf("conn %d write: %v", id, err)
			return
		}
		if err := w.Flush(); err != nil {
			n.logf("conn %d flush: %v", id, err)
			return
		}
	}
}

// handleTimed wraps handle with the per-request deadline, when one is
// configured.
func (n *NetServer) handleTimed(id int, req workload.Request) Response {
	ctx := context.Background()
	if n.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.reqTimeout)
		defer cancel()
	}
	return n.handle(ctx, id, req)
}
