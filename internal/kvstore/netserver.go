package kvstore

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/submit"
	"repro/internal/workload"
)

// AttackMarker makes a SET over the wire malicious: values with this
// prefix stand in for crafted exploit payloads against the parser.
const AttackMarker = "!!exploit"

// overloadRetryCyclesPerSlot is the virtual-cycle cost estimate behind
// the batched path's overload retry hint: one queue slot ≈ one request's
// service time (the servers' 100µs inter-arrival at the default clock).
// The hint is depth × this, quantized — pure configuration, so the
// rejection bytes are identical across runs and hosts.
const overloadRetryCyclesPerSlot = 300_000

// NetServer serves the memcached text protocol over TCP on top of a
// Server or a Pool, with connections multiplexing on real sockets.
type NetServer struct {
	handle func(ctx context.Context, clientID int, req workload.Request) Response
	stats  func(w io.Writer) error
	log    *log.Logger

	// reqTimeout, when non-zero, caps each request with a context
	// deadline (mapped to a virtual-cycle budget by the server).
	reqTimeout time.Duration

	// queues is the async submission layer (batched servers only).
	queues *submit.Queues

	// gw, when set, fronts every data command with tenant admission
	// (auth command, rate limits, quotas, quarantine, drain).
	gw *gateway.Gateway

	// workers, healthFn, drainFn, closeFn abstract over the Server/Pool
	// split for the lifecycle surface.
	workers  int
	healthFn func() []gateway.ShardHealth
	drainFn  func() error
	closeFn  func() error

	drainMu   sync.Mutex
	drainDone bool
	drainErr  error

	closeMu  sync.Mutex
	closed   bool
	closeErr error

	connMu sync.Mutex
	nextID int

	wg sync.WaitGroup
}

// NewNetServer wraps srv for TCP serving. logger may be nil to disable
// logging. The single Server owns one simulated core, so request
// handling is serialized behind a mutex.
func NewNetServer(srv *Server, logger *log.Logger) *NetServer {
	var mu sync.Mutex
	return &NetServer{
		log: logger,
		handle: func(ctx context.Context, clientID int, req workload.Request) Response {
			mu.Lock()
			defer mu.Unlock()
			return srv.HandleContext(ctx, clientID, req)
		},
		stats: func(w io.Writer) error {
			mu.Lock()
			defer mu.Unlock()
			return WriteStats(w, srv)
		},
		workers: 1,
		healthFn: func() []gateway.ShardHealth {
			mu.Lock()
			defer mu.Unlock()
			return serverHealth(srv)
		},
		drainFn: func() error {
			mu.Lock()
			defer mu.Unlock()
			return srv.Drain()
		},
		closeFn: func() error {
			mu.Lock()
			defer mu.Unlock()
			return srv.Close()
		},
	}
}

// serverHealth is the single-server shard-health row.
func serverHealth(srv *Server) []gateway.ShardHealth {
	h := gateway.ShardHealth{Shard: 0, State: gateway.ShardOK}
	switch {
	case srv.PersistErr() != nil:
		h.State = gateway.ShardFailStop
		h.Detail = srv.PersistErr().Error()
	case srv.Drained():
		h.State = gateway.ShardDrained
	case srv.SnapshotErr() != nil:
		h.State = gateway.ShardDegraded
		h.Detail = srv.SnapshotErr().Error()
	}
	return []gateway.ShardHealth{h}
}

// NewNetServerPool wraps a Pool for TCP serving; logger may be nil. The
// pool synchronizes internally per shard, so requests for keys on
// different shards execute in parallel.
func NewNetServerPool(p *Pool, logger *log.Logger) *NetServer {
	return &NetServer{
		log:      logger,
		handle:   p.HandleContext,
		stats:    func(w io.Writer) error { return WriteStats(w, p) },
		workers:  p.Workers(),
		healthFn: p.Health,
		drainFn:  p.Drain,
		closeFn:  p.Close,
	}
}

// asyncReq is one connection request in flight through the submission
// queues; the drain loop fills resp before resolving the future.
type asyncReq struct {
	clientID int
	req      workload.Request
	resp     Response
}

// NewBatchedNetServerPool wraps a Pool for TCP serving through the
// asynchronous submission layer: instead of every connection contending
// on the shard locks, connections enqueue into bounded per-shard
// queues (internal/submit) and one drain loop per shard coalesces up
// to maxBatch queued requests into a single pipelined
// Server.HandleBatch — one domain Enter per worker group instead of per
// request. maxInflight bounds admitted-but-unanswered requests across
// the pool (<= 0 means 1024); at capacity new requests are answered
// SERVER_ERROR immediately with a deterministic cycles-quantized retry
// hint (admission control / backpressure). Call Close after Serve
// returns to stop the drain loops.
func NewBatchedNetServerPool(p *Pool, logger *log.Logger, maxInflight, maxBatch int) (*NetServer, error) {
	if maxInflight <= 0 {
		maxInflight = 1024
	}
	depth := maxInflight / p.Workers()
	if depth < 1 {
		depth = 1
	}
	q, err := submit.New(submit.Config{
		Workers:  p.Workers(),
		Depth:    depth,
		MaxBatch: maxBatch,
		Exec: func(si int, tasks []*submit.Task) {
			batch := make([]BatchRequest, len(tasks))
			for i, t := range tasks {
				a := t.Payload.(*asyncReq)
				batch[i] = BatchRequest{Ctx: t.Ctx, ClientID: a.clientID, Req: a.req}
			}
			resps := p.handleBatch(si, batch)
			for i, t := range tasks {
				t.Payload.(*asyncReq).resp = resps[i]
				t.Resolve(nil)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	n := &NetServer{
		log:      logger,
		stats:    func(w io.Writer) error { return WriteStats(w, p) },
		queues:   q,
		workers:  p.Workers(),
		healthFn: p.Health,
		drainFn:  p.Drain,
		closeFn:  p.Close,
	}
	n.handle = func(ctx context.Context, clientID int, req workload.Request) Response {
		a := &asyncReq{clientID: clientID, req: req}
		fut, err := q.Submit(p.shardIndex(req.Key), ctx, a)
		if err != nil {
			// Overload (queue full) or closed: shed the request. An
			// overload is decorated with a deterministic retry hint derived
			// from the configured queue depth — the bare OverloadError's
			// occupancy detail is timing-dependent and must not reach the
			// wire (campaign traces pin the rejection bytes).
			if _, over := submit.IsOverload(err); over {
				err = &gateway.RetryHintError{
					Cycles: gateway.QuantizeRetryCycles(uint64(q.Depth()) * overloadRetryCyclesPerSlot),
					Cause:  err,
				}
			}
			return Response{Err: err}
		}
		// The future resolves when the drain loop answered; the request's
		// ctx still governs its in-domain budget (deadlines that expire
		// while queued surface as preemptions, as on the serial path).
		return respondAsync(a, fut)
	}
	return n, nil
}

// respondAsync maps an admitted request's future onto its wire
// response, waiting for resolution. A non-nil resolution means the
// drain loop never filled resp (the queues closed underneath the
// admitted request), so the typed error must reach the wire instead of
// a zero-value Response.
func respondAsync(a *asyncReq, fut *submit.Future) Response {
	if ferr := fut.Err(); ferr != nil {
		return Response{Err: ferr}
	}
	return a.resp
}

// SetGateway installs the tenant admission front tier: data commands
// then require a successful auth command on the connection and pass
// per-tenant admission before executing. Call before Serve.
func (n *NetServer) SetGateway(gw *gateway.Gateway) { n.gw = gw }

// Close stops the batched submission layer (queued requests are
// answered, drain loops exit) and releases the underlying server or
// pool, propagating its error. Idempotent: later calls return the first
// outcome. Serve must have returned (or never been called).
func (n *NetServer) Close() error {
	n.closeMu.Lock()
	defer n.closeMu.Unlock()
	if n.closed {
		return n.closeErr
	}
	n.closed = true
	if n.queues != nil {
		n.queues.Flush()
		n.queues.Close()
	}
	if n.closeFn != nil {
		n.closeErr = n.closeFn()
	}
	return n.closeErr
}

// Drain shuts the server down gracefully, in the order that makes
// "every ack durable, nothing after" true: (1) stop admission — the
// gateway rejects new arrivals with *DrainingError; (2) flush the
// submission queues — every admitted request executes and its batch
// group-commits to the WAL before its ack is written; (3) close the
// queues — stragglers get typed ErrClosed; (4) drain the shards — final
// WAL commit, snapshot, store release, and the ErrDrained gate for any
// request that still reaches a shard. Idempotent: later calls return
// the first outcome.
func (n *NetServer) Drain() error {
	n.drainMu.Lock()
	defer n.drainMu.Unlock()
	if n.drainDone {
		return n.drainErr
	}
	n.drainDone = true
	if n.gw != nil {
		n.gw.StartDrain()
	}
	if n.queues != nil {
		n.queues.Flush()
		n.queues.Close()
	}
	if n.drainFn != nil {
		n.drainErr = n.drainFn()
	}
	return n.drainErr
}

// Draining reports whether Drain has been called.
func (n *NetServer) Draining() bool {
	n.drainMu.Lock()
	defer n.drainMu.Unlock()
	return n.drainDone
}

// SetRequestTimeout installs a per-request deadline (0 disables it, the
// default). Call before Serve.
func (n *NetServer) SetRequestTimeout(d time.Duration) { n.reqTimeout = d }

func (n *NetServer) logf(format string, args ...any) {
	if n.log != nil {
		n.log.Printf(format, args...)
	}
}

// Serve accepts connections on ln until it is closed, then waits for
// in-flight connections to finish.
func (n *NetServer) Serve(ln net.Listener) error {
	defer n.wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("kvstore: accept: %w", err)
		}
		n.connMu.Lock()
		n.nextID++
		id := n.nextID
		n.connMu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				if cerr := conn.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
					n.logf("conn %d close: %v", id, cerr)
				}
			}()
			n.serveConn(id, conn)
		}()
	}
}

// serveConn runs the command loop for one connection. With a gateway
// installed the connection carries tenant state: data commands require
// a prior successful auth command and pass per-tenant admission.
func (n *NetServer) serveConn(id int, conn io.ReadWriter) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	tenant := ""
	authed := false
	for {
		cmd, err := ReadCommand(r)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				_, _ = fmt.Fprintf(w, "CLIENT_ERROR %v\r\n", err)
				_ = w.Flush()
			}
			return
		}
		switch {
		case cmd.Quit:
			_ = w.Flush()
			return
		case cmd.Auth:
			err = n.handleAuth(w, cmd.Token, &tenant, &authed)
		case cmd.Health:
			err = n.writeHealth(w)
		case cmd.Stats:
			err = n.stats(w)
		default:
			req := cmd.Req
			if bytes.HasPrefix(req.Value, []byte(AttackMarker)) {
				req.Malicious = true
			}
			err = n.handleData(w, id, req, tenant, authed)
		}
		if err != nil {
			n.logf("conn %d write: %v", id, err)
			return
		}
		if err := w.Flush(); err != nil {
			n.logf("conn %d flush: %v", id, err)
			return
		}
	}
}

// handleAuth binds the connection to a tenant. Every failure mode
// answers the same uniform line — the response never reveals whether
// the token was close to (or part of) a valid credential.
func (n *NetServer) handleAuth(w io.Writer, token string, tenant *string, authed *bool) error {
	if n.gw == nil {
		_, err := io.WriteString(w, "CLIENT_ERROR gateway disabled\r\n")
		return err
	}
	name, aerr := n.gw.Authenticate([]byte(token))
	if aerr != nil {
		*tenant = ""
		*authed = false
		n.logf("auth rejected: %v", aerr)
		_, err := io.WriteString(w, "CLIENT_ERROR unauthorized\r\n")
		return err
	}
	*tenant = name
	*authed = true
	_, err := io.WriteString(w, "OK\r\n")
	return err
}

// handleData executes one data command, running gateway admission first
// when a gateway is installed: rejections become SERVER_ERROR lines
// carrying the typed error's deterministic rendering, and admitted
// requests report their outcome (contained violation, budget
// preemption) back to the tenant's circuit breaker.
func (n *NetServer) handleData(w io.Writer, id int, req workload.Request, tenant string, authed bool) error {
	if n.gw == nil {
		resp := n.handleTimed(id, req)
		if resp.Contained {
			n.logf("conn %d: contained memory-safety violation (domain rewound)", id)
		}
		return WriteResponse(w, req, resp)
	}
	if !authed {
		_, err := io.WriteString(w, "CLIENT_ERROR auth required\r\n")
		return err
	}
	ticket, aerr := n.gw.Admit(tenant)
	if aerr != nil {
		return WriteResponse(w, req, Response{Err: aerr})
	}
	resp := n.handleTimed(id, req)
	_, preempted := core.IsBudget(resp.Err)
	ticket.Done(resp.Contained, preempted)
	if resp.Contained {
		n.logf("conn %d: tenant %s: contained memory-safety violation (domain rewound)", id, tenant)
	}
	return WriteResponse(w, req, resp)
}

// writeHealth renders the lifecycle health document as STAT lines: the
// summary state, drain flag, worker count, per-shard states, and (with
// a gateway) per-tenant counters, all in deterministic order.
func (n *NetServer) writeHealth(w io.Writer) error {
	var shards []gateway.ShardHealth
	if n.healthFn != nil {
		shards = n.healthFn()
	}
	var tenants []metrics.TenantSnapshot
	draining := n.Draining()
	if n.gw != nil {
		draining = draining || n.gw.Draining()
		tenants = n.gw.Stats().Snapshot()
	}
	h := gateway.BuildHealth(draining, n.workers, shards, tenants)
	drainInt := 0
	if h.Draining {
		drainInt = 1
	}
	if _, err := fmt.Fprintf(w, "STAT state %s\r\nSTAT draining %d\r\nSTAT workers %d\r\n",
		h.State, drainInt, h.Workers); err != nil {
		return err
	}
	for _, sh := range h.Shards {
		if _, err := fmt.Fprintf(w, "STAT shard_%d %s\r\n", sh.Shard, sh.State); err != nil {
			return err
		}
	}
	for _, t := range h.Tenants {
		if _, err := fmt.Fprintf(w,
			"STAT tenant_%s admitted=%d completed=%d throttled=%d quota=%d quarantine=%d drained=%d detections=%d preemptions=%d quarantines=%d\r\n",
			t.Tenant, t.Admitted, t.Completed, t.Throttled, t.QuotaRejected, t.QuarantineRejected,
			t.Drained, t.Detections, t.Preemptions, t.Quarantines); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "END\r\n")
	return err
}

// handleTimed wraps handle with the per-request deadline, when one is
// configured.
func (n *NetServer) handleTimed(id int, req workload.Request) Response {
	ctx := context.Background()
	if n.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.reqTimeout)
		defer cancel()
	}
	return n.handle(ctx, id, req)
}
